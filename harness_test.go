package varade

import (
	"testing"

	"varade/internal/edge"
)

func TestBuildDetectorsSmall(t *testing.T) {
	dets, err := BuildDetectors(5, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 6 {
		t.Fatalf("%d detectors, want 6", len(dets))
	}
	// Table 2 order and kinds.
	want := []struct {
		name string
		kind edge.Kind
	}{
		{"AR-LSTM", edge.KindNeural},
		{"GBRF", edge.KindForest},
		{"AE", edge.KindNeural},
		{"kNN", edge.KindSearch},
		{"Isolation Forest", edge.KindForest},
		{"VARADE", edge.KindNeural},
	}
	for i, w := range want {
		if dets[i].Detector.Name() != w.name {
			t.Errorf("slot %d is %q, want %q", i, dets[i].Detector.Name(), w.name)
		}
		if dets[i].Kind != w.kind {
			t.Errorf("%s has kind %d, want %d", w.name, dets[i].Kind, w.kind)
		}
	}
	// Neural models must report real parameter memory.
	for _, nd := range dets {
		if nd.Kind == edge.KindNeural && nd.ModelBytes <= 0 {
			t.Errorf("%s reports no model bytes", nd.Detector.Name())
		}
	}
}

func TestBuildDetectorsPaperScaleArchitecture(t *testing.T) {
	dets, err := BuildDetectors(NumChannels, ScalePaper)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range dets {
		if nd.Detector.Name() == "VARADE" {
			// Paper scale: T=512 context.
			if nd.Detector.WindowSize() != 512 {
				t.Fatalf("paper VARADE window %d, want 512", nd.Detector.WindowSize())
			}
		}
		if nd.Detector.Name() == "AR-LSTM" {
			if nd.Detector.WindowSize() != 513 { // context 512 + observed point
				t.Fatalf("paper AR-LSTM window %d, want 513", nd.Detector.WindowSize())
			}
		}
	}
}

func TestBuildDetectorsRejectsUnknownScale(t *testing.T) {
	if _, err := BuildDetectors(4, Scale(99)); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}

func TestMeasureWorkloadsAttachesAUC(t *testing.T) {
	cfg := SmallDatasetConfig()
	cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions = 60, 40, 2
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := InterestingChannels()
	sub := SelectChannels(ds.Test, idx)
	dets, err := BuildDetectors(len(idx), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	// Only the instant detectors need a fit for this smoke test.
	var quick []NamedDetector
	for _, nd := range dets {
		if nd.Kind != edge.KindNeural {
			if err := nd.Detector.Fit(SelectChannels(ds.Train, idx)); err != nil {
				t.Fatal(err)
			}
		}
		if nd.Detector.Name() == "kNN" || nd.Detector.Name() == "VARADE" {
			quick = append(quick, nd)
		}
	}
	loads := MeasureWorkloads(quick, sub, 3, map[string]float64{"kNN": 0.7, "VARADE": 0.85})
	if len(loads) != 2 {
		t.Fatalf("%d workloads, want 2", len(loads))
	}
	for _, w := range loads {
		if w.HostSecPerInf <= 0 {
			t.Errorf("%s measured non-positive cost", w.Name)
		}
	}
	if loads[1].AUCROC != 0.85 {
		t.Errorf("VARADE AUC not attached: %g", loads[1].AUCROC)
	}
}

func TestDatasetFacadeRoundTrip(t *testing.T) {
	cfg := SmallDatasetConfig()
	cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions = 60, 40, 3
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Train.Dim(1) != NumChannels {
		t.Fatalf("train width %d, want %d", ds.Train.Dim(1), NumChannels)
	}
	if len(Channels()) != NumChannels {
		t.Fatalf("schema has %d channels", len(Channels()))
	}
	if len(ds.Events) != 3 {
		t.Fatalf("%d events, want 3", len(ds.Events))
	}
}

func TestRunnerFacade(t *testing.T) {
	cfg := SmallDatasetConfig()
	cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions = 80, 40, 2
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := InterestingChannels()
	train := SelectChannels(ds.Train, idx)
	test := SelectChannels(ds.Test, idx)

	m, err := New(EdgeConfig(len(idx)))
	if err != nil {
		t.Fatal(err)
	}
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	m.SetTrainConfig(tc)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(m, len(idx))
	scored := 0
	for i := 0; i < test.Dim(0); i++ {
		if _, ok := r.Push(test.Row(i).Data()); ok {
			scored++
		}
	}
	want := test.Dim(0) - m.WindowSize() + 1
	if scored != want {
		t.Fatalf("runner produced %d scores, want %d", scored, want)
	}

	// Streaming scores must agree with batch ScoreSeries on the steady
	// state (identical windows → identical detector input).
	batch := ScoreSeries(m, test)
	r2 := NewRunner(m, len(idx))
	for i := 0; i < test.Dim(0); i++ {
		if s, ok := r2.Push(test.Row(i).Data()); ok {
			if diff := s.Value - batch[s.Index]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("stream score %g != batch score %g at %d", s.Value, batch[s.Index], s.Index)
			}
		}
	}
}
