package varade

// Fleet-serving benchmarks: the scaling story of the serving subsystem.
//
//	BenchmarkFleetServe64      — 64 concurrent device sessions through the
//	                             fleet server, windows coalesced across
//	                             sessions into batched forward passes
//	BenchmarkFleetPerDevice64  — the same 64 streams through 64 independent
//	                             per-device runners (the scalar Push path),
//	                             i.e. the aggregate a fleet of standalone
//	                             processes achieves on the same cores
//
// Both report windows/s on identical work, so the ratio is the serving
// layer's coalescing win. Run with:
//
//	go test -run='^$' -bench=Fleet -benchtime=1x
import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"varade/internal/core"
	"varade/internal/route"
	"varade/internal/serve"
	"varade/internal/stream"
	"varade/internal/tensor"
)

const (
	fleetSessions = 64
	fleetSteps    = 72 // samples per device per iteration
	fleetChannels = 17
)

// fleetModel returns the deterministic serving model: EdgeConfig
// topology at its seeded initialisation (scoring cost is identical to a
// trained model's).
func fleetModel(b *testing.B) *core.Model {
	b.Helper()
	m, err := core.New(core.EdgeConfig(fleetChannels))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// fleetStreams builds one deterministic series per device.
func fleetStreams(b *testing.B) []*tensor.Tensor {
	b.Helper()
	out := make([]*tensor.Tensor, fleetSessions)
	for i := range out {
		rng := tensor.NewRNG(uint64(1000 + i))
		s := tensor.New(fleetSteps, fleetChannels)
		d := s.Data()
		for j := range d {
			d[j] = rng.NormFloat64()
		}
		out[i] = s
	}
	return out
}

func BenchmarkFleetServe64(b *testing.B) { benchFleetServe(b, "float64") }

// BenchmarkFleetServe64F32 serves the same fleet from a float32 model:
// the coalescer assembles float32 batches and scores through the
// reduced-precision engine.
func BenchmarkFleetServe64F32(b *testing.B) { benchFleetServe(b, "float32") }

// BenchmarkFleetServe64Int8 serves the fleet from an int8-quantized
// registry entry (the registry file itself is the VMF2 int8 container).
func BenchmarkFleetServe64Int8(b *testing.B) { benchFleetServe(b, "int8") }

// BenchmarkFleetServeMixed64 is the negotiated-session shape: ONE
// float64 registry entry, 64 protocol-v2 sessions requesting
// float64/float32/int8 round-robin, each precision coalesced in its own
// derived serving group.
func BenchmarkFleetServeMixed64(b *testing.B) { benchFleetServe(b, "mixed") }

// BenchmarkFleetServeBursty64 is the closed-loop scheduler's lane: the
// mixed fleet admits windows in 12-row bursts with idle gaps under a 5ms
// p99 SLO and a deliberately hopeless 50ms fallback flush interval, so
// every latency bound comes from the deadline scheduler. Reports the
// server-measured p50/p99 coalesce latency alongside windows/s (the
// throughput includes the idle gaps and is informational).
func BenchmarkFleetServeBursty64(b *testing.B) { benchFleetServe(b, "bursty") }

// BenchmarkFleetServeRouted64 is the sharded-tier lane: the mixed fleet
// dialed through a varade-router fronting two backend servers over one
// registry — each precision's sessions consistent-hash to one backend,
// so the number prices the relay hop plus the two-way split against
// BenchmarkFleetServeMixed64.
func BenchmarkFleetServeRouted64(b *testing.B) { benchFleetServe(b, "routed") }

func benchFleetServe(b *testing.B, precision string) {
	model := fleetModel(b)
	routed := precision == "routed"
	mixed := precision == "mixed" || precision == "bursty" || routed
	bursty := precision == "bursty"
	if !mixed {
		if err := model.SetPrecision(precision); err != nil {
			b.Fatal(err)
		}
	}
	streams := fleetStreams(b)
	w := model.WindowSize()

	reg, err := serve.OpenRegistry(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := reg.Register("varade", model); err != nil {
		b.Fatal(err)
	}
	flush := time.Millisecond
	var slo time.Duration
	if bursty {
		// The fallback interval is hopeless on purpose: the SLO deadline
		// scheduler must be what bounds the bursts' coalesce latency.
		flush, slo = 50*time.Millisecond, 5*time.Millisecond
	}
	backends := 1
	if routed {
		backends = 2
	}
	var srv *serve.Server // first backend, for Metrics()
	addrs := make([]string, backends)
	for i := 0; i < backends; i++ {
		s, err := serve.NewServer(serve.Config{
			Registry:      reg,
			DefaultModel:  "varade",
			FlushInterval: flush,
			SLOP99:        slo,
			QueueDepth:    fleetSteps + 8, // score every window: same work as per-device
		})
		if err != nil {
			b.Fatal(err)
		}
		if addrs[i], err = s.Serve("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer s.Shutdown(context.Background())
		if i == 0 {
			srv = s
		}
	}
	addr := addrs[0]
	if routed {
		rt := route.NewRouter(route.Config{DefaultModel: "varade", TTL: time.Hour})
		var err error
		if addr, err = rt.Serve("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer rt.Shutdown(context.Background())
		for i, baddr := range addrs {
			rt.Register(route.Announcement{ID: fmt.Sprintf("b%d", i+1), Addr: baddr})
		}
	}

	// Steady-state serving: the 64 sessions dial once; each iteration
	// replays every device's stream through its live session. Windows
	// keep completing across iteration boundaries (the ring stays
	// primed), so only the first iteration pays the w−1 warmup.
	precisions := []string{"float64", "float32", "int8"}
	clients := make([]*serve.Client, fleetSessions)
	for id := range clients {
		var cl *serve.Client
		var err error
		if mixed {
			cl, err = serve.DialWith(context.Background(), addr, "", fleetChannels,
				stream.SessionCaps{Precision: precisions[id%len(precisions)]})
		} else {
			cl, err = serve.Dial(context.Background(), addr, "", fleetChannels)
		}
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		clients[id] = cl
	}
	rows := make([][][]float64, fleetSessions)
	for id := range rows {
		rows[id] = make([][]float64, fleetSteps)
		for r := range rows[id] {
			rows[id][r] = streams[id].Row(r).Data()
		}
	}

	totalWindows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expect := fleetSteps
		if i == 0 {
			expect = fleetSteps - w + 1
		}
		totalWindows += fleetSessions * expect
		var wg sync.WaitGroup
		for id := 0; id < fleetSessions; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				cl := clients[id]
				step := fleetSteps
				if bursty {
					step = 12
				}
				for off := 0; off < fleetSteps; off += step {
					end := off + step
					if end > fleetSteps {
						end = fleetSteps
					}
					if err := cl.Send(rows[id][off:end]); err != nil {
						b.Error(err)
						return
					}
					if bursty && end < fleetSteps {
						time.Sleep(time.Millisecond)
					}
				}
				for got := 0; got < expect; {
					scores, err := cl.ReadScores()
					if err != nil {
						b.Error(err)
						return
					}
					got += len(scores)
				}
			}(id)
		}
		wg.Wait()
	}
	b.StopTimer()
	windowsPerSec := float64(totalWindows) / b.Elapsed().Seconds()
	b.ReportMetric(windowsPerSec, "windows/s")
	m := srv.Metrics()
	b.ReportMetric(m.AvgBatchSize, "windows/batch")
	if bursty {
		b.ReportMetric(m.P50CoalesceMs, "p50-coalesce-ms")
		b.ReportMetric(m.P99CoalesceMs, "p99-coalesce-ms")
	}
	for _, cl := range clients {
		cl.Bye()
	}
}

// BenchmarkFleetServeFailover64 is the fault-tolerance lane: the routed
// mixed fleet over two backends, with the backend serving session 0
// force-killed once every session has streamed half its rows. The
// orphaned sessions ride the router's transparent hand-off to the
// survivor (replay-ring warmup, duplicate suppression) while keeping
// their single client connection; sessions already on the survivor are
// the control group. Reports windows/s over scores actually received —
// windows in flight past the replay ring may be lost to the crash, so
// the number is survival throughput, not completeness — plus the
// router-measured hand-off p99. Each iteration builds a fresh fleet: a
// backend can only die once.
func BenchmarkFleetServeFailover64(b *testing.B) {
	model := fleetModel(b)
	streams := fleetStreams(b)
	rows := make([][][]float64, fleetSessions)
	for id := range rows {
		rows[id] = make([][]float64, fleetSteps)
		for r := range rows[id] {
			rows[id][r] = streams[id].Row(r).Data()
		}
	}
	precisions := []string{"float64", "float32", "int8"}

	totalScores := 0
	var handoffs, p99ns int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		reg, err := serve.OpenRegistry(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reg.Register("varade", model); err != nil {
			b.Fatal(err)
		}
		srvs := make([]*serve.Server, 2)
		addrs := make([]string, len(srvs))
		for j := range srvs {
			s, err := serve.NewServer(serve.Config{
				Registry:      reg,
				DefaultModel:  "varade",
				FlushInterval: time.Millisecond,
				QueueDepth:    fleetSteps + 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			if addrs[j], err = s.Serve("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			srvs[j] = s
		}
		rt := route.NewRouter(route.Config{DefaultModel: "varade", TTL: time.Hour})
		raddr, err := rt.Serve("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		for j, baddr := range addrs {
			rt.Register(route.Announcement{ID: fmt.Sprintf("b%d", j+1), Addr: baddr})
		}
		clients := make([]*serve.Client, fleetSessions)
		for id := range clients {
			cl, err := serve.DialWith(context.Background(), raddr, "", fleetChannels,
				stream.SessionCaps{Precision: precisions[id%len(precisions)]})
			if err != nil {
				b.Fatal(err)
			}
			clients[id] = cl
		}
		victim := srvs[0]
		if clients[0].Welcome().Backend == "b2" {
			victim = srvs[1]
		}
		dead, cancel := context.WithCancel(context.Background())
		cancel() // already expired: Shutdown force-closes instead of draining

		var sent, wg sync.WaitGroup
		sent.Add(fleetSessions)
		killed := make(chan struct{})
		go func() {
			sent.Wait()
			victim.Shutdown(dead)
			close(killed)
		}()
		got := make([]int, fleetSessions)
		b.StartTimer()
		for id := 0; id < fleetSessions; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				cl := clients[id]
				send := func(part [][]float64) bool {
					for off := 0; off < len(part); off += 4 {
						end := off + 4
						if end > len(part) {
							end = len(part)
						}
						if err := cl.Send(part[off:end]); err != nil {
							b.Error(err)
							return false
						}
					}
					return true
				}
				mid := fleetSteps / 2
				ok := send(rows[id][:mid])
				sent.Done()
				<-killed
				if ok {
					ok = send(rows[id][mid:])
				}
				if ok {
					cl.Bye()
				}
				for {
					scores, err := cl.ReadScores()
					got[id] += len(scores)
					if err != nil {
						return
					}
				}
			}(id)
		}
		wg.Wait()
		b.StopTimer()
		for _, n := range got {
			totalScores += n
		}
		ht, _, hp99 := rt.HandoffStats()
		handoffs += ht
		if hp99 > p99ns {
			p99ns = hp99
		}
		for _, cl := range clients {
			cl.Close()
		}
		rt.Shutdown(context.Background())
		for _, s := range srvs {
			s.Shutdown(context.Background())
		}
		b.StartTimer()
	}
	b.StopTimer()
	if handoffs < 1 {
		b.Fatalf("recorded %d hand-offs, want >= 1 — the kill missed every session", handoffs)
	}
	b.ReportMetric(float64(totalScores)/b.Elapsed().Seconds(), "windows/s")
	b.ReportMetric(float64(p99ns)/1e6, "p99-handoff-ms")
}

func BenchmarkFleetPerDevice64(b *testing.B) {
	model := fleetModel(b)
	streams := fleetStreams(b)
	w := model.WindowSize()

	windowsPerIter := fleetSessions * (fleetSteps - w + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for id := 0; id < fleetSessions; id++ {
			r := stream.NewRunner(model, fleetChannels)
			n := 0
			for row := 0; row < fleetSteps; row++ {
				if _, ok := r.Push(streams[id].Row(row).Data()); ok {
					n++
				}
			}
			if n != fleetSteps-w+1 {
				b.Fatalf("runner %d: %d scores want %d", id, n, fleetSteps-w+1)
			}
		}
	}
	b.StopTimer()
	windowsPerSec := float64(windowsPerIter*b.N) / b.Elapsed().Seconds()
	b.ReportMetric(windowsPerSec, "windows/s")
}
