package core

import (
	"testing"

	"varade/internal/tensor"
)

func TestCorruptContextsLeavesCleanSamplesUntouched(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.RandNormal(rng, 0, 1, 8, 3, 16)
	y := tensor.RandNormal(rng, 0, 1, 8, 3)
	xc, yc := x.Clone(), y.Clone()
	corruptContexts(xc, yc, 0, 1, tensor.NewRNG(2)) // prob 0: no-op
	if !tensor.Equal(x, xc, 0) || !tensor.Equal(y, yc, 0) {
		t.Fatal("prob=0 must not modify the batch")
	}
}

func TestCorruptContextsOnlyTouchesSuffix(t *testing.T) {
	rng := tensor.NewRNG(3)
	n, c, w := 16, 2, 16
	x := tensor.RandNormal(rng, 0, 1, n, c, w)
	orig := x.Clone()
	y := tensor.RandNormal(rng, 0, 1, n, c)
	corruptContexts(x, y, 1, 0.5, tensor.NewRNG(4))
	// The corruption segment is at most w/2+1 long and always suffix-
	// anchored, so the first w/2−1 steps of every channel are untouched
	// (the swap shape grafts only suffix positions of the donor too).
	limit := w - (w/2 + 1)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			for ts := 0; ts < limit; ts++ {
				if x.At3(i, ch, ts) != orig.At3(i, ch, ts) {
					t.Fatalf("sample %d ch %d t=%d modified outside the suffix", i, ch, ts)
				}
			}
		}
	}
}

func TestCorruptContextsModifiesSomething(t *testing.T) {
	rng := tensor.NewRNG(5)
	x := tensor.RandNormal(rng, 0, 1, 32, 2, 16)
	y := tensor.RandNormal(rng, 0, 1, 32, 2)
	xc, yc := x.Clone(), y.Clone()
	corruptContexts(xc, yc, 1, 0.5, tensor.NewRNG(6))
	if tensor.Equal(x, xc, 0) {
		t.Fatal("prob=1 must modify contexts")
	}
	if tensor.Equal(y, yc, 0) {
		t.Fatal("prob=1 must disturb targets")
	}
}

func TestCorruptContextsDeterministic(t *testing.T) {
	rng := tensor.NewRNG(7)
	x := tensor.RandNormal(rng, 0, 1, 8, 2, 16)
	y := tensor.RandNormal(rng, 0, 1, 8, 2)
	x1, y1 := x.Clone(), y.Clone()
	x2, y2 := x.Clone(), y.Clone()
	corruptContexts(x1, y1, 0.5, 1, tensor.NewRNG(9))
	corruptContexts(x2, y2, 0.5, 1, tensor.NewRNG(9))
	if !tensor.Equal(x1, x2, 0) || !tensor.Equal(y1, y2, 0) {
		t.Fatal("equal RNG seeds must corrupt identically")
	}
}

// TestAugmentationRaisesVarianceOnDisturbedSuffix asserts the mechanism
// the augmentation exists for: after training with disturbances, a window
// whose suffix carries an unpredictable transient must receive a higher
// predicted variance than the clean window.
func TestAugmentationRaisesVarianceOnDisturbedSuffix(t *testing.T) {
	series := syntheticSeries(1500, 2, 11)
	cfg := Config{Window: 32, Channels: 2, BaseMaps: 16, KLWeight: 0.1, Seed: 1}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := DefaultTrainConfig()
	tc.Epochs = 15
	tc.Stride = 2
	if err := m.FitWindows(series, tc); err != nil {
		t.Fatal(err)
	}
	meanVar := func(win *tensor.Tensor) float64 {
		_, v := m.Predict(win)
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	// Average over several windows to wash out per-window variation.
	probe := tensor.NewRNG(12)
	cleanSum, badSum := 0.0, 0.0
	n := 0
	for start := 100; start+32 < 1400; start += 90 {
		win := series.SliceRows(start, start+32).Clone()
		cleanSum += meanVar(win)
		bad := win.Clone()
		for ts := 24; ts < 32; ts++ {
			for ch := 0; ch < 2; ch++ {
				bad.Set2(bad.At2(ts, ch)+probe.Uniform(-0.8, 0.8), ts, ch)
			}
		}
		badSum += meanVar(bad)
		n++
	}
	if badSum <= cleanSum {
		t.Fatalf("disturbed suffixes must raise mean variance: clean %.5f disturbed %.5f",
			cleanSum/float64(n), badSum/float64(n))
	}
}
