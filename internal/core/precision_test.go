package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"varade/internal/detect"
	"varade/internal/eval"
	"varade/internal/modelio"
	"varade/internal/tensor"
)

// trainedTiny returns a briefly trained TinyConfig model and a test
// series with an obvious disturbance.
func trainedTiny(t *testing.T, channels int) (*Model, *tensor.Tensor) {
	t.Helper()
	cfg := TinyConfig(channels)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(11)
	train := tensor.New(400, channels)
	td := train.Data()
	for i := range td {
		td[i] = rng.NormFloat64() * 0.1
	}
	tc := DefaultTrainConfig()
	tc.Epochs = 3
	if err := m.FitWindows(train, tc); err != nil {
		t.Fatal(err)
	}
	test := tensor.New(120, channels)
	sd := test.Data()
	for i := range sd {
		sd[i] = rng.NormFloat64() * 0.1
	}
	for i := 60; i < 70; i++ { // injected transient
		for ch := 0; ch < channels; ch++ {
			sd[i*channels+ch] += 2
		}
	}
	return m, test
}

// TestFloat32ScoresWithinTolerance asserts the acceptance criterion: the
// float32 path agrees with the float64 oracle within a stated per-window
// tolerance, relative to the score scale.
func TestFloat32ScoresWithinTolerance(t *testing.T) {
	m, test := trainedTiny(t, 3)
	oracle := detect.ScoreSeriesBatched(m, test)

	if err := m.SetPrecision(PrecisionFloat32); err != nil {
		t.Fatal(err)
	}
	fast := detect.ScoreSeriesBatched(m, test)
	if len(fast) != len(oracle) {
		t.Fatalf("score lengths %d vs %d", len(fast), len(oracle))
	}
	const relTol = 1e-4 // float32 has ~7 decimal digits; the net is 3 layers deep
	worst := 0.0
	for i := range oracle {
		d := math.Abs(fast[i]-oracle[i]) / math.Max(1e-12, math.Abs(oracle[i]))
		if d > worst {
			worst = d
		}
	}
	if worst > relTol {
		t.Fatalf("float32 scores deviate rel %.3g from float64 oracle (tol %g)", worst, relTol)
	}
	if worst == 0 {
		t.Fatal("float32 path bit-identical to float64 — dispatch is not switching precision")
	}
	t.Logf("float32 vs float64 max relative score diff: %.3g", worst)

	// Scalar and batched paths must agree at reduced precision too.
	w := m.WindowSize()
	win := test.SliceRows(50, 50+w)
	if s1, s2 := m.Score(win), m.ScoreBatch(windowsOf(win))[0]; s1 != s2 {
		t.Fatalf("float32 Score %g != ScoreBatch %g", s1, s2)
	}
}

func windowsOf(win *tensor.Tensor) *tensor.Tensor {
	w, c := win.Dim(0), win.Dim(1)
	out := tensor.New(1, w, c)
	copy(out.Data(), win.Data())
	return out
}

// TestInt8SaveLoadRoundTrip asserts int8 payloads round-trip exactly: the
// reloaded model serves the identical quantized weights, so scores match
// bit for bit, and a re-save reproduces an identical payload.
func TestInt8SaveLoadRoundTrip(t *testing.T) {
	m, test := trainedTiny(t, 3)
	if err := m.SetPrecision(PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	qScores := detect.ScoreSeriesBatched(m, test)

	dir := t.TempDir()
	path := filepath.Join(dir, "model-int8.vmf")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	kind, dtype, err := modelio.Sniff(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != modelio.KindVARADE || dtype != modelio.DTypeInt8 {
		t.Fatalf("sniffed kind %q dtype %q", kind, dtype)
	}

	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Precision() != PrecisionInt8 {
		t.Fatalf("loaded precision %q", loaded.Precision())
	}
	got := detect.ScoreSeriesBatched(loaded, test)
	for i := range qScores {
		if got[i] != qScores[i] {
			t.Fatalf("int8 reload score %d: %g vs %g", i, got[i], qScores[i])
		}
	}

	// Re-saving the loaded model must produce an identical payload.
	path2 := filepath.Join(dir, "model-int8-resave.vmf")
	if err := loaded.Save(path2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("int8 re-save is not byte-identical")
	}
}

// TestInt8LegacyContainerNoActs guards the backward-compat acceptance
// criterion: an int8 model saved before any scoring carries no
// calibrated activation scales — byte-compatible with pre-activation-
// quantization VNNQ writers — and such a container must still load and
// score. Calibration is deterministic on the first batch, so the loaded
// model's scores match the in-process model exactly.
func TestInt8LegacyContainerNoActs(t *testing.T) {
	m, test := trainedTiny(t, 3)
	if err := m.SetPrecision(PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy-q.vmf")
	if err := m.Save(path); err != nil { // nothing scored yet: no ACTS section
		t.Fatal(err)
	}
	if _, dtype, err := modelio.Sniff(path); err != nil || dtype != modelio.DTypeInt8 {
		t.Fatalf("sniffed dtype %q err %v", dtype, err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	want := detect.ScoreSeriesBatched(m, test)
	got := detect.ScoreSeriesBatched(loaded, test)
	if len(got) != len(want) {
		t.Fatalf("score lengths %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("legacy int8 reload score %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestInt8AUCGapWithinOnePercent asserts the accuracy acceptance gate:
// on a labeled series with injected transients, the int8 lane's AUC-ROC
// stays within 0.01 of the float64 oracle's.
func TestInt8AUCGapWithinOnePercent(t *testing.T) {
	m, _ := trainedTiny(t, 3)
	rng := tensor.NewRNG(23)
	const n, ch = 600, 3
	test := tensor.New(n, ch)
	sd := test.Data()
	for i := range sd {
		sd[i] = rng.NormFloat64() * 0.1
	}
	anom := make([]bool, n)
	for _, start := range []int{100, 250, 400, 520} {
		for i := start; i < start+8; i++ {
			for c := 0; c < ch; c++ {
				sd[i*ch+c] += 1.5
			}
			anom[i] = true
		}
	}
	// Scores are per time step; the window ending at step i covers
	// [i-w+1, i], so a step is positive when its window saw a transient.
	scores64 := detect.ScoreSeriesBatched(m, test)
	w := m.WindowSize()
	labels := make([]bool, len(scores64))
	for i := range labels {
		for j := max(0, i-w+1); j <= i; j++ {
			if anom[j] {
				labels[i] = true
				break
			}
		}
	}
	auc64 := eval.AUCROC(scores64, labels)
	if err := m.SetPrecision(PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	auc8 := eval.AUCROC(detect.ScoreSeriesBatched(m, test), labels)
	if gap := math.Abs(auc64 - auc8); gap > 0.01 {
		t.Fatalf("int8 AUC %.4f vs float64 %.4f: gap %.4f above 1%%", auc8, auc64, gap)
	}
	t.Logf("AUC float64 %.4f, int8 %.4f", auc64, auc8)
}

// TestFloat32SaveLoadRoundTrip checks the float32 container: scores of the
// reloaded model match the saver's float32 scores exactly.
func TestFloat32SaveLoadRoundTrip(t *testing.T) {
	m, test := trainedTiny(t, 2)
	if err := m.SetPrecision(PrecisionFloat32); err != nil {
		t.Fatal(err)
	}
	want := detect.ScoreSeriesBatched(m, test)
	path := filepath.Join(t.TempDir(), "model-f32.vmf")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	_, dtype, err := modelio.Sniff(path)
	if err != nil {
		t.Fatal(err)
	}
	if dtype != modelio.DTypeFloat32 {
		t.Fatalf("sniffed dtype %q", dtype)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Precision() != PrecisionFloat32 {
		t.Fatalf("loaded precision %q", loaded.Precision())
	}
	got := detect.ScoreSeriesBatched(loaded, test)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("float32 reload score %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestFloat64SaveStaysLegacyFormat guards the compatibility acceptance
// criterion: a default-precision save still writes the v1 container whose
// bytes a pre-precision reader would accept, and legacy float64 files load
// and score bit-identically after a precision round trip.
func TestFloat64SaveStaysLegacyFormat(t *testing.T) {
	m, test := trainedTiny(t, 2)
	oracle := detect.ScoreSeriesBatched(m, test)
	path := filepath.Join(t.TempDir(), "model.vmf")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:4]) != modelio.Magic {
		t.Fatalf("default-precision save wrote magic %q, want legacy %q", b[:4], modelio.Magic)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Precision() != PrecisionFloat64 {
		t.Fatalf("loaded precision %q", loaded.Precision())
	}
	got := detect.ScoreSeriesBatched(loaded, test)
	for i := range oracle {
		if got[i] != oracle[i] {
			t.Fatalf("legacy reload score %d: %g vs %g", i, got[i], oracle[i])
		}
	}

	// Flipping a loaded float64 model to float32 and back must restore the
	// exact oracle scores (the float64 weights are untouched).
	if err := loaded.SetPrecision(PrecisionFloat32); err != nil {
		t.Fatal(err)
	}
	_ = detect.ScoreSeriesBatched(loaded, test)
	if err := loaded.SetPrecision(PrecisionFloat64); err != nil {
		t.Fatal(err)
	}
	back := detect.ScoreSeriesBatched(loaded, test)
	for i := range oracle {
		if back[i] != oracle[i] {
			t.Fatalf("precision round-trip drifted score %d", i)
		}
	}
}

// TestScoreBatch32MatchesScoreBatch checks the serving-layer entry point:
// float32 windows through ScoreBatch32 equal the model's own precision
// path given identical float32 inputs.
func TestScoreBatch32MatchesScoreBatch(t *testing.T) {
	m, test := trainedTiny(t, 3)
	if err := m.SetPrecision(PrecisionFloat32); err != nil {
		t.Fatal(err)
	}
	w, c := m.cfg.Window, m.cfg.Channels
	n := 9
	wins := tensor.New(n, w, c)
	wd, sd := wins.Data(), test.Data()
	for i := 0; i < n; i++ {
		copy(wd[i*w*c:(i+1)*w*c], sd[i*c:(i+w)*c])
	}
	wins32 := tensor.Convert[float32](wins)
	got := m.ScoreBatch32(wins32)
	// ScoreBatch converts float64 windows to float32 itself; since these
	// windows are float32-representable the inputs coincide exactly.
	want := m.ScoreBatch(tensor.Convert[float64](wins32))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScoreBatch32 %d: %g vs %g", i, got[i], want[i])
		}
	}
	var _ detect.Scorer = m
	caps := m.Capabilities()
	if !caps.Batched || !caps.Reduced || caps.Precision != PrecisionFloat32 {
		t.Fatalf("capabilities %+v, want batched+reduced float32", caps)
	}
	if !caps.Supports(PrecisionInt8) || caps.Supports("bf16") {
		t.Fatalf("capability precision set wrong: %+v", caps.Precisions)
	}
}
