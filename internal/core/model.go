package core

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"varade/internal/detect"
	"varade/internal/modelio"
	"varade/internal/nn"
	"varade/internal/tensor"
)

// Model is a VARADE network. It implements detect.Detector once fitted.
// Training always runs on the float64 layer stack; Score/ScoreBatch run in
// the precision selected by Config.Precision (see precision.go).
type Model struct {
	cfg   Config
	trunk *nn.Sequential // conv/ReLU cascade
	flat  *nn.Flatten
	head  *nn.Dense    // linear projection to (μ, logσ²)
	train *TrainConfig // optional override for Fit; nil uses defaults
	inf   inferState   // compiled reduced-precision inference programs
}

// New builds an untrained VARADE model from cfg.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	maps := cfg.LayerMaps()
	trunk := nn.NewSequential()
	inC := cfg.Channels
	for _, outC := range maps {
		trunk.Add(nn.NewConv1D(inC, outC, 2, 2, 0, rng))
		trunk.Add(nn.NewReLU())
		inC = outC
	}
	// After NumLayers halvings the time dimension is 2, so the projection
	// sees 2·lastMaps features and emits mean and log-variance per channel.
	head := nn.NewDense(2*maps[len(maps)-1], 2*cfg.Channels, rng)
	return &Model{cfg: cfg, trunk: trunk, flat: nn.NewFlatten(), head: head}, nil
}

// Config returns the model's architecture description.
func (m *Model) Config() Config { return m.cfg }

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	return append(m.trunk.Params(), m.head.Params()...)
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int { return nn.NumParams(m.Params()) }

// Forward predicts the distribution of the next time step for a batch of
// channel-major windows x of shape (N, C, W), returning the mean and
// log-variance, each of shape (N, C).
func (m *Model) Forward(x *tensor.Tensor) (mu, logVar *tensor.Tensor) {
	if x.Dims() != 3 || x.Dim(1) != m.cfg.Channels || x.Dim(2) != m.cfg.Window {
		panic(fmt.Sprintf("core: Forward shape %v, want (N,%d,%d)", x.Shape(), m.cfg.Channels, m.cfg.Window))
	}
	out := m.head.Forward(m.flat.Forward(m.trunk.Forward(x)))
	n, c := out.Dim(0), m.cfg.Channels
	mu = tensor.New(n, c)
	logVar = tensor.New(n, c)
	od, md, ld := out.Data(), mu.Data(), logVar.Data()
	for i := 0; i < n; i++ {
		copy(md[i*c:(i+1)*c], od[i*2*c:i*2*c+c])
		copy(ld[i*c:(i+1)*c], od[i*2*c+c:(i+1)*2*c])
	}
	return mu, logVar
}

// Backward propagates gradients with respect to mean and log-variance
// (each (N, C)) through the network, accumulating parameter gradients.
func (m *Model) Backward(dMu, dLogVar *tensor.Tensor) {
	n, c := dMu.Dim(0), m.cfg.Channels
	grad := tensor.New(n, 2*c)
	gd, md, ld := grad.Data(), dMu.Data(), dLogVar.Data()
	for i := 0; i < n; i++ {
		copy(gd[i*2*c:i*2*c+c], md[i*c:(i+1)*c])
		copy(gd[i*2*c+c:(i+1)*2*c], ld[i*c:(i+1)*c])
	}
	m.trunk.Backward(m.flat.Backward(m.head.Backward(grad)))
}

// Loss computes the full ELBO-derived objective of Eq. (7),
// L = L_recon + λ·D_KL, for predictions against target (N, C), and the
// gradients with respect to mu and logVar.
func (m *Model) Loss(mu, logVar, target *tensor.Tensor) (loss float64, dMu, dLogVar *tensor.Tensor) {
	nll, dMuN, dLvN := nn.GaussianNLL(mu, logVar, target)
	kl, dMuK, dLvK := nn.GaussianKL(mu, logVar)
	dMu = tensor.AXPY(m.cfg.KLWeight, dMuK, dMuN)
	dLogVar = tensor.AXPY(m.cfg.KLWeight, dLvK, dLvN)
	return nll + m.cfg.KLWeight*kl, dMu, dLogVar
}

// Name implements detect.Detector.
func (m *Model) Name() string { return "VARADE" }

// WindowSize implements detect.Detector: VARADE consumes exactly its
// context window and scores the point that follows it.
func (m *Model) WindowSize() int { return m.cfg.Window }

// Score implements detect.Detector. The window is time-major (W, C); the
// score is the mean predicted variance over channels — §3.2: "the variance
// is directly used as an anomaly score" (the mean prediction is discarded).
// It runs in the model's configured precision; float64 keeps the original
// bit-exact path.
func (m *Model) Score(window *tensor.Tensor) float64 {
	if m.Precision() != PrecisionFloat64 {
		out := m.forward32(windowToInput32(window, m.cfg.Channels, m.cfg.Window))
		return scoresFromOut32(out, m.cfg.Channels)[0]
	}
	_, logVar := m.Forward(windowToInput(window, m.cfg.Channels, m.cfg.Window))
	s := 0.0
	for _, lv := range logVar.Data() {
		s += math.Exp(lv)
	}
	return s / float64(logVar.Len())
}

// ScoreBatch implements detect.Scorer: it scores N time-major windows
// (N, W, C) in one batched forward pass, in the model's configured
// precision. Per-window arithmetic is identical to Score, so the scores
// match the scalar path exactly at every precision.
func (m *Model) ScoreBatch(windows *tensor.Tensor) []float64 {
	w, c := m.cfg.Window, m.cfg.Channels
	if windows.Dims() != 3 || windows.Dim(1) != w || windows.Dim(2) != c {
		panic(fmt.Sprintf("core: ScoreBatch windows %v, want (N,%d,%d)", windows.Shape(), w, c))
	}
	if m.Precision() != PrecisionFloat64 {
		return scoresFromOut32(m.forward32(windowsToChannelMajor32(windows)), c)
	}
	_, logVar := m.Forward(detect.ToChannelMajor(windows))
	n := windows.Dim(0)
	out := make([]float64, n)
	ld := logVar.Data()
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for _, lv := range ld[i*c : (i+1)*c] {
				s += math.Exp(lv)
			}
			out[i] = s / float64(c)
		}
	})
	return out
}

// Predict returns the per-channel mean and variance forecast for a single
// time-major window (W, C).
func (m *Model) Predict(window *tensor.Tensor) (mean, variance []float64) {
	mu, logVar := m.Forward(windowToInput(window, m.cfg.Channels, m.cfg.Window))
	mean = append([]float64(nil), mu.Data()...)
	variance = make([]float64, logVar.Len())
	for i, lv := range logVar.Data() {
		variance[i] = math.Exp(lv)
	}
	return mean, variance
}

// windowToInput converts one time-major window (W, C) to the (1, C, W)
// channel-major layout the convolutions consume.
func windowToInput(window *tensor.Tensor, c, w int) *tensor.Tensor {
	if window.Dims() != 2 || window.Dim(0) != w || window.Dim(1) != c {
		panic(fmt.Sprintf("core: window shape %v, want (%d,%d)", window.Shape(), w, c))
	}
	x := tensor.New(1, c, w)
	wd, xd := window.Data(), x.Data()
	for t := 0; t < w; t++ {
		for ch := 0; ch < c; ch++ {
			xd[ch*w+t] = wd[t*c+ch]
		}
	}
	return x
}

// Summary renders the architecture as a table: one row per layer with
// output shape and parameter count, mirroring Fig. 1 of the paper.
func (m *Model) Summary(w io.Writer) {
	maps := m.cfg.LayerMaps()
	fmt.Fprintf(w, "VARADE  T=%d  C=%d  λ=%g  (%d parameters)\n",
		m.cfg.Window, m.cfg.Channels, m.cfg.KLWeight, m.NumParams())
	fmt.Fprintf(w, "%-22s %-18s %s\n", "layer", "output shape", "params")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 52))
	length := m.cfg.Window
	inC := m.cfg.Channels
	for i, outC := range maps {
		length /= 2
		p := outC*inC*2 + outC
		fmt.Fprintf(w, "conv1d_%-2d k=2 s=2      (%d, %d)%*s %d\n", i+1, outC, length,
			14-len(fmt.Sprintf("(%d, %d)", outC, length)), "", p)
		inC = outC
	}
	last := maps[len(maps)-1]
	fmt.Fprintf(w, "%-22s %-18s %d\n", "linear → (μ, logσ²)",
		fmt.Sprintf("(2, %d)", m.cfg.Channels), (2*last)*(2*m.cfg.Channels)+2*m.cfg.Channels)
}

// Save writes the model to path in the self-describing container format:
// a versioned header carrying the architecture Config and payload dtype,
// then the weights in the model's precision — float64 files keep the
// legacy byte layout, float32 files store rounded weights, int8 files
// store the exact quantized blocks being served. Files written by Save
// reload with LoadModel without any architecture flags.
func (m *Model) Save(path string) error {
	switch m.Precision() {
	case PrecisionFloat32:
		return modelio.SaveFileDType(path, modelio.KindVARADE, modelio.DTypeFloat32, m.cfg,
			func(w io.Writer) error { return nn.SaveParamsF32(w, m.Params()) })
	case PrecisionInt8:
		cache := m.quantCacheLazy()
		acts := m.actSetLazy()
		return modelio.SaveFileDType(path, modelio.KindVARADE, modelio.DTypeInt8, m.cfg,
			func(w io.Writer) error {
				return nn.SaveParamsQuant(w, m.Params(), func(p *nn.Param) *nn.QuantTensor { return cache[p] }, acts)
			})
	default:
		return nn.SaveModelFile(path, modelio.KindVARADE, m.cfg, m.Params())
	}
}

// Load reads weights from path into the model. Files written by Save
// carry a config header, validated against this model's architecture; the
// model adopts the file's precision and payload (float64, float32 or
// int8). Bare legacy weight files (pre-header, magic "VNN1") still load
// positionally as before.
func (m *Model) Load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(len(modelio.Magic))
	if err != nil {
		return fmt.Errorf("core: reading %s: %w", path, err)
	}
	dtype := modelio.DTypeFloat64
	if string(head) == modelio.Magic || string(head) == modelio.MagicV2 {
		kind, d, cfgJSON, err := modelio.ReadHeaderDType(br)
		if err != nil {
			return err
		}
		if kind != modelio.KindVARADE {
			return fmt.Errorf("core: %s holds a %q model, not VARADE", path, kind)
		}
		var cfg Config
		if err := modelio.Unmarshal(cfgJSON, &cfg); err != nil {
			return err
		}
		if cfg.Window != m.cfg.Window || cfg.Channels != m.cfg.Channels || cfg.BaseMaps != m.cfg.BaseMaps {
			return fmt.Errorf("core: %s was trained as T=%d C=%d maps=%d, model is T=%d C=%d maps=%d",
				path, cfg.Window, cfg.Channels, cfg.BaseMaps, m.cfg.Window, m.cfg.Channels, m.cfg.BaseMaps)
		}
		dtype = d
		m.cfg.Precision = cfg.Precision
	}
	m.invalidateInference()
	return m.loadPayload(br, dtype)
}

// loadPayload fills the model's parameters from a payload of the given
// dtype, stashing exact quantized blocks for int8 files.
func (m *Model) loadPayload(r io.Reader, dtype string) error {
	switch dtype {
	case modelio.DTypeFloat32:
		return nn.LoadParamsF32(r, m.Params())
	case modelio.DTypeInt8:
		cache, acts, err := nn.LoadParamsQuant(r, m.Params())
		if err != nil {
			return err
		}
		m.inf.mu.Lock()
		m.inf.quant = cache
		m.inf.acts = acts // nil for legacy files: calibrates on first batch
		m.inf.mu.Unlock()
		return nil
	default:
		return nn.LoadParams(r, m.Params())
	}
}

// LoadModel reads a container file written by Save and reconstructs the
// model from its embedded Config — the registry/serving path, where no
// architecture flags are available. The file's dtype selects the payload
// decoder; the reconstructed model scores in the precision it was saved
// with.
func LoadModel(path string) (*Model, error) {
	var cfg Config
	var m *Model
	err := modelio.LoadFileDType(path, modelio.KindVARADE, &cfg, func(dtype string, r io.Reader) error {
		var err error
		if m, err = New(cfg); err != nil {
			return err
		}
		return m.loadPayload(r, dtype)
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}
