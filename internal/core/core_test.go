package core

import (
	"math"
	"strings"
	"testing"

	"varade/internal/detect"
	"varade/internal/nn"
	"varade/internal/tensor"
)

func TestPaperArchitecture(t *testing.T) {
	// §3.1: T=512 → 8 conv layers; maps 128 doubling every 2 layers → 1024.
	cfg := PaperConfig(86)
	if got := cfg.NumLayers(); got != 8 {
		t.Fatalf("paper config has %d layers, want 8", got)
	}
	maps := cfg.LayerMaps()
	want := []int{128, 128, 256, 256, 512, 512, 1024, 1024}
	for i, m := range maps {
		if m != want[i] {
			t.Fatalf("layer %d maps %d want %d", i, m, want[i])
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Window: 100, Channels: 2, BaseMaps: 4},             // not a power of two
		{Window: 2, Channels: 2, BaseMaps: 4},               // too small
		{Window: 8, Channels: 0, BaseMaps: 4},               // no channels
		{Window: 8, Channels: 2, BaseMaps: 0},               // no maps
		{Window: 8, Channels: 2, BaseMaps: 4, KLWeight: -1}, // negative λ
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	if err := TinyConfig(3).Validate(); err != nil {
		t.Fatalf("tiny config invalid: %v", err)
	}
}

func TestForwardShapes(t *testing.T) {
	m, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(tensor.NewRNG(1), 0, 1, 5, 3, 8)
	mu, lv := m.Forward(x)
	if mu.Dim(0) != 5 || mu.Dim(1) != 3 || lv.Dim(0) != 5 || lv.Dim(1) != 3 {
		t.Fatalf("output shapes %v %v", mu.Shape(), lv.Shape())
	}
}

func TestModelGradientsNumeric(t *testing.T) {
	// End-to-end check: the full ELBO gradient through the whole network
	// matches finite differences.
	m, err := New(Config{Window: 8, Channels: 2, BaseMaps: 3, KLWeight: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(4)
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 8)
	y := tensor.RandNormal(rng, 0, 1, 2, 2)

	lossFn := func() float64 {
		mu, lv := m.Forward(x)
		l, _, _ := m.Loss(mu, lv, y)
		return l
	}
	nn.ZeroGrads(m.Params())
	mu, lv := m.Forward(x)
	_, dMu, dLv := m.Loss(mu, lv, y)
	m.Backward(dMu, dLv)
	for _, p := range m.Params() {
		num := nn.NumericGradParam(p, lossFn, 1e-5)
		if d := nn.MaxRelDiff(p.Grad, num); d > 1e-5 {
			t.Errorf("param %s: grad error %.2e", p.Name, d)
		}
	}
}

func TestLossMatchesEquations(t *testing.T) {
	// Hand-computed Eq. 5–7 for a single element:
	// μ=1, logσ²=ln(2), y=0, λ=0.5.
	m, err := New(Config{Window: 8, Channels: 1, BaseMaps: 2, KLWeight: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mu := tensor.FromSlice([]float64{1}, 1, 1)
	lv := tensor.FromSlice([]float64{math.Log(2)}, 1, 1)
	y := tensor.FromSlice([]float64{0}, 1, 1)
	loss, _, _ := m.Loss(mu, lv, y)
	nll := 0.5 * (math.Log(2) + 1.0/2.0)   // ½(logσ² + (y-μ)²/σ²)
	kl := -0.5 * (1 + math.Log(2) - 1 - 2) // -½(1+logσ²-μ²-σ²)
	want := nll + 0.5*kl
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("loss=%g want %g", loss, want)
	}
}

// syntheticSeries returns a smooth multi-sine series (T, c).
func syntheticSeries(tlen, c int, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	s := tensor.New(tlen, c)
	phases := make([]float64, c)
	freqs := make([]float64, c)
	for j := range phases {
		phases[j] = rng.Uniform(0, 6)
		freqs[j] = rng.Uniform(0.02, 0.08)
	}
	for i := 0; i < tlen; i++ {
		for j := 0; j < c; j++ {
			v := math.Sin(2*math.Pi*freqs[j]*float64(i)+phases[j]) + 0.02*rng.NormFloat64()
			s.Set2(v, i, j)
		}
	}
	return s
}

func TestFitReducesLoss(t *testing.T) {
	cfg := Config{Window: 16, Channels: 2, BaseMaps: 4, KLWeight: 0.05, Seed: 2}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := syntheticSeries(400, 2, 5)
	wins, targets := detect.Windows(series, cfg.Window, 4)
	x := detect.ToChannelMajor(wins)
	lossAt := func() float64 {
		mu, lv := m.Forward(x)
		l, _, _ := m.Loss(mu, lv, targets)
		return l
	}
	before := lossAt()
	tc := DefaultTrainConfig()
	tc.Epochs = 8
	if err := m.FitWindows(series, tc); err != nil {
		t.Fatal(err)
	}
	after := lossAt()
	if after >= before {
		t.Fatalf("training did not reduce loss: %g → %g", before, after)
	}
}

func TestVarianceScoreSeparatesAnomalies(t *testing.T) {
	// Train on a predictable signal; inject an unpredictable burst into a
	// test copy. The predicted variance must be higher on the burst —
	// the paper's core claim (§3.2).
	cfg := Config{Window: 16, Channels: 2, BaseMaps: 6, KLWeight: 0.1, Seed: 3}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := syntheticSeries(1200, 2, 6)
	tc := DefaultTrainConfig()
	tc.Epochs = 10
	if err := m.FitWindows(train, tc); err != nil {
		t.Fatal(err)
	}

	test := syntheticSeries(400, 2, 7)
	rng := tensor.NewRNG(8)
	for i := 200; i < 230; i++ {
		for j := 0; j < 2; j++ {
			test.Set2(test.At2(i, j)+rng.Uniform(-1.5, 1.5), i, j)
		}
	}
	scores := detect.ScoreSeries(m, test)
	normal, anom := 0.0, 0.0
	nN, nA := 0, 0
	for i, s := range scores {
		if i >= 200 && i < 230 {
			anom += s
			nA++
		} else if i > cfg.Window {
			normal += s
			nN++
		}
	}
	if anom/float64(nA) <= normal/float64(nN) {
		t.Fatalf("mean anomaly score %.4f not above normal %.4f",
			anom/float64(nA), normal/float64(nN))
	}
}

func TestDetectorInterfaceCompliance(t *testing.T) {
	m, err := New(TinyConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var d detect.Detector = m
	if d.Name() != "VARADE" || d.WindowSize() != 8 {
		t.Fatalf("Name=%q WindowSize=%d", d.Name(), d.WindowSize())
	}
	var r detect.Detector = &ResidualScorer{Model: m}
	if r.WindowSize() != 9 {
		t.Fatalf("residual WindowSize=%d want 9", r.WindowSize())
	}
}

func TestSummaryMentionsAllLayers(t *testing.T) {
	m, err := New(PaperConfig(86))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	m.Summary(&sb)
	out := sb.String()
	for _, want := range []string{"conv1d_1", "conv1d_8", "T=512", "(1024, 2)", "linear"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := TinyConfig(2)
	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.vnn"
	if err := m1.Save(path); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99 // different init
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(path); err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(tensor.NewRNG(1), 0, 1, 1, 2, 8)
	mu1, lv1 := m1.Forward(x)
	mu2, lv2 := m2.Forward(x)
	if !tensor.Equal(mu1, mu2, 0) || !tensor.Equal(lv1, lv2, 0) {
		t.Fatal("loaded model differs from saved model")
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	m, err := New(TinyConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(tensor.New(100, 3)); err == nil {
		t.Fatal("expected channel-mismatch error")
	}
	if err := m.Fit(tensor.New(5, 2)); err == nil {
		t.Fatal("expected too-short error")
	}
}

func TestResidualScorerScore(t *testing.T) {
	m, err := New(TinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	r := &ResidualScorer{Model: m}
	win := tensor.RandNormal(tensor.NewRNG(2), 0, 1, 9, 1)
	// Score must equal |observed − μ| for a single channel.
	mean, _ := m.Predict(win.SliceRows(0, 8))
	want := math.Abs(win.At2(8, 0) - mean[0])
	if got := r.Score(win); math.Abs(got-want) > 1e-12 {
		t.Fatalf("residual score %g want %g", got, want)
	}
}
