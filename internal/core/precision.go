package core

import (
	"fmt"
	"math"
	"sync"

	"varade/internal/detect"
	"varade/internal/nn"
	"varade/internal/tensor"
)

// Precision-polymorphic inference. Training always runs in float64 on the
// nn layer stack; scoring runs in cfg.Precision. For float32 and int8 the
// trained weights are compiled once into a stateless inference program
// (nn.InferenceNet), cached here and invalidated whenever the weights or
// the precision change. The float64 path keeps using the layer stack
// directly, so legacy behaviour — and bit-exactness — is untouched.

// inferState caches the compiled reduced-precision programs.
type inferState struct {
	mu    sync.Mutex
	net32 *nn.InferenceNet[float32] // compiled float32 program
	qnet  *nn.InferenceNet[float32] // compiled int8-weight program
	quant nn.QuantCache             // authoritative int8 blocks (loaded or freshly quantized)
	acts  *nn.ActSet                // activation scales of the int8 lane (loaded or calibrated)
}

// Precision reports the effective inference precision ("float64",
// "float32" or "int8").
func (m *Model) Precision() string { return m.cfg.EffectivePrecision() }

// Capabilities implements detect.Scorer: VARADE batches natively, has a
// reduced-precision engine, and can be re-targeted to any precision via
// SetPrecision.
func (m *Model) Capabilities() detect.Capabilities {
	return detect.Capabilities{
		Batched:    true,
		Reduced:    true,
		Precision:  m.Precision(),
		Precisions: []string{PrecisionFloat64, PrecisionFloat32, PrecisionInt8},
	}
}

// SetPrecision switches the precision inference runs at. Training state is
// unaffected; compiled programs are rebuilt lazily on the next Score. An
// int8 model keeps previously loaded quantized weights only if the
// precision does not round-trip through another value.
func (m *Model) SetPrecision(p string) error {
	if !ValidPrecision(p) {
		return fmt.Errorf("core: unknown precision %q (want float64, float32 or int8)", p)
	}
	if p == PrecisionFloat64 {
		p = "" // keep default-precision config JSON byte-identical to legacy
	}
	if p == m.cfg.Precision {
		return nil
	}
	m.cfg.Precision = p
	m.inf.mu.Lock()
	m.inf.net32, m.inf.qnet = nil, nil
	m.inf.mu.Unlock()
	return nil
}

// invalidateInference drops every compiled program, quantization and
// activation calibration; called when the float64 weights change
// (training, loading).
func (m *Model) invalidateInference() {
	m.inf.mu.Lock()
	m.inf.net32, m.inf.qnet, m.inf.quant, m.inf.acts = nil, nil, nil, nil
	m.inf.mu.Unlock()
}

// Compiled scoring programs drop the μ half of the head projection: §3.2
// uses only the predicted variance as the anomaly score, so the scoring
// Dense keeps just the log-variance rows (c..2c) of W and b — half the
// head GEMM. The float64 oracle path keeps the full head (Predict and the
// residual ablation need μ, and legacy bit-identity must hold).

// headLogVarRows returns views of the head's log-variance weight rows and
// bias entries.
func (m *Model) headLogVarRows() (w, b *tensor.Tensor) {
	c := m.cfg.Channels
	return m.head.W.Value.SliceRows(c, 2*c), m.head.B.Value.SliceRows(c, 2*c)
}

// net32Lazy returns the compiled float32 scoring program, building it on
// first use.
func (m *Model) net32Lazy() *nn.InferenceNet[float32] {
	m.inf.mu.Lock()
	defer m.inf.mu.Unlock()
	if m.inf.net32 == nil {
		net, err := nn.Compile[float32](m.trunk, m.flat)
		if err != nil {
			panic(fmt.Sprintf("core: compiling float32 inference: %v", err))
		}
		hw, hb := m.headLogVarRows()
		net.AppendDense(tensor.Convert[float32](hw), tensor.Convert[float32](hb))
		m.inf.net32 = net
	}
	return m.inf.net32
}

// qnetLazy returns the compiled int8 scoring program, building it (and
// recording any fresh quantizations in the cache) on first use. The head's
// quantization always covers the full (2c, in) matrix — that is what Save
// persists and what int8 files restore — and the scoring op slices the
// exact stored log-variance rows out of it, so a loaded int8 model serves
// precisely the bytes in its file.
func (m *Model) qnetLazy() *nn.InferenceNet[float32] {
	m.inf.mu.Lock()
	defer m.inf.mu.Unlock()
	if m.inf.qnet == nil {
		if m.inf.quant == nil {
			m.inf.quant = make(nn.QuantCache)
		}
		if m.inf.acts == nil {
			// Fresh (or legacy-loaded) model: activation scales calibrate
			// on the first scored batch and persist with the next Save.
			m.inf.acts = nn.NewActSet()
		}
		net, err := nn.CompileQuantizedActs(m.inf.quant, m.inf.acts, m.trunk, m.flat)
		if err != nil {
			panic(fmt.Sprintf("core: compiling int8 inference: %v", err))
		}
		c := m.cfg.Channels
		qFull := m.inf.quant.Ensure(m.head.W, m.head.OutFeatures(), m.head.InFeatures())
		_, hb := m.headLogVarRows()
		b32 := make([]float32, c)
		tensor.ConvertSlice(b32, hb.Data())
		nn.AppendDenseQuant(net, m.inf.acts, qFull.SliceRows(c, 2*c), b32)
		m.inf.qnet = net
	}
	return m.inf.qnet
}

// actSetLazy ensures the int8 program (and with it the activation-scale
// registration) exists and returns the model's ActSet — the Save path
// and the calibration report read it.
func (m *Model) actSetLazy() *nn.ActSet {
	m.qnetLazy()
	m.inf.mu.Lock()
	defer m.inf.mu.Unlock()
	return m.inf.acts
}

// CalibrationStat is one activation-quantization entry of the int8 lane,
// as exposed by the training tool's calibration report: the stage label,
// the observed float range behind the latched scale/zero-point, and the
// live clipping statistics (what fraction of post-calibration activation
// values saturated the int8 boundary).
type CalibrationStat struct {
	Label      string  // stage input, e.g. "conv0.in", "head.in"
	Lo, Hi     float64 // observed calibration range (0-anchored)
	Scale      float32 // 0 until calibrated
	Zero       int8
	ClippedPct float64 // % of live values clamped to ±int8 range
	Observed   int64   // live values quantized since calibration
}

// CalibrationStats returns the int8 lane's activation-quantization
// entries in compile order. Entries report Scale 0 until a batch has been
// scored at int8 (calibration is lazy); restored containers report their
// scales but a zero observed range.
func (m *Model) CalibrationStats() []CalibrationStat {
	acts := m.actSetLazy()
	entries := acts.Entries()
	stats := make([]CalibrationStat, 0, len(entries))
	for _, e := range entries {
		lo, hi := e.Range()
		frac, total := e.ClippedFraction()
		stats = append(stats, CalibrationStat{
			Label: e.Label, Lo: lo, Hi: hi,
			Scale: e.Scale, Zero: e.Zero,
			ClippedPct: 100 * frac, Observed: total,
		})
	}
	return stats
}

// quantCacheLazy ensures every quantizable weight has an int8 block and
// returns the cache (the Save path).
func (m *Model) quantCacheLazy() nn.QuantCache {
	m.qnetLazy()
	m.inf.mu.Lock()
	defer m.inf.mu.Unlock()
	return m.inf.quant
}

// forward32 runs the compiled reduced-precision scoring program on a
// channel-major float32 batch (N, C, W) and returns the (N, C)
// log-variance output (the μ half is never computed — see above).
func (m *Model) forward32(x *tensor.Tensor32) *tensor.Tensor32 {
	if m.Precision() == PrecisionInt8 {
		return m.qnetLazy().Forward(x)
	}
	return m.net32Lazy().Forward(x)
}

// scoresFromOut32 turns the (N, C) float32 log-variance output into per-
// window scores: the mean predicted variance over channels, exactly the
// float64 scoring rule evaluated on float32 log-variances.
func scoresFromOut32(out *tensor.Tensor32, c int) []float64 {
	n := out.Dim(0)
	scores := make([]float64, n)
	od := out.Data()
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for _, lv := range od[i*c : (i+1)*c] {
				s += math.Exp(float64(lv))
			}
			scores[i] = s / float64(c)
		}
	})
	return scores
}

// windowToInput32 converts one time-major float64 window (W, C) to a
// single-element channel-major float32 batch (1, C, W).
func windowToInput32(window *tensor.Tensor, c, w int) *tensor.Tensor32 {
	if window.Dims() != 2 || window.Dim(0) != w || window.Dim(1) != c {
		panic(fmt.Sprintf("core: window shape %v, want (%d,%d)", window.Shape(), w, c))
	}
	x := tensor.NewOf[float32](1, c, w)
	wd, xd := window.Data(), x.Data()
	for t := 0; t < w; t++ {
		for ch := 0; ch < c; ch++ {
			xd[ch*w+t] = float32(wd[t*c+ch])
		}
	}
	return x
}

// windowsToChannelMajor32 fuses the float64→float32 conversion with the
// (N, W, C) → (N, C, W) permutation, so the reduced-precision batch path
// never materialises a float64 intermediate.
func windowsToChannelMajor32(windows *tensor.Tensor) *tensor.Tensor32 {
	n, w, c := windows.Dim(0), windows.Dim(1), windows.Dim(2)
	out := tensor.NewOf[float32](n, c, w)
	wd, od := windows.Data(), out.Data()
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for t := 0; t < w; t++ {
				for ch := 0; ch < c; ch++ {
					od[(i*c+ch)*w+t] = float32(wd[(i*w+t)*c+ch])
				}
			}
		}
	})
	return out
}

// ScoreBatch32 implements detect.Scorer: it scores N time-major
// float32 windows (N, W, C) in the model's own precision. For a float64
// model the windows are widened and routed through the oracle path.
func (m *Model) ScoreBatch32(windows *tensor.Tensor32) []float64 {
	w, c := m.cfg.Window, m.cfg.Channels
	if windows.Dims() != 3 || windows.Dim(1) != w || windows.Dim(2) != c {
		panic(fmt.Sprintf("core: ScoreBatch32 windows %v, want (N,%d,%d)", windows.Shape(), w, c))
	}
	if m.Precision() == PrecisionFloat64 {
		return m.ScoreBatch(tensor.Convert[float64](windows))
	}
	return scoresFromOut32(m.forward32(detect.ToChannelMajor(windows)), c)
}

// WeightBytes reports the byte size of the weights inference touches at
// the current precision — the number the edge memory projections use.
func (m *Model) WeightBytes() int {
	switch m.Precision() {
	case PrecisionFloat32:
		return m.net32Lazy().WeightBytes()
	case PrecisionInt8:
		return m.qnetLazy().WeightBytes()
	default:
		return 8 * m.NumParams()
	}
}
