package core

import (
	"fmt"
	"math"

	"varade/internal/detect"
	"varade/internal/nn"
	"varade/internal/tensor"
)

// TrainConfig controls Fit.
type TrainConfig struct {
	// Epochs is the number of passes over the training windows.
	Epochs int
	// Batch is the minibatch size.
	Batch int
	// LR is the Adam learning rate. The paper fixes 1e-5 for the full-scale
	// model (§3.4); the reduced configs train faster with larger rates.
	LR float64
	// Stride is the window sampling stride over the training series;
	// larger strides trade coverage for speed.
	Stride int
	// ClipNorm, when positive, clips the global gradient norm.
	ClipNorm float64
	// Seed shuffles minibatches deterministically.
	Seed uint64
	// Logf, when non-nil, receives one progress line per epoch.
	Logf func(format string, args ...any)

	// Shards is the number of worker replicas each minibatch's gradient
	// computation is sharded across: the batch is split into contiguous
	// row ranges, every shard runs forward/backward on its own replica
	// (parameter values shared, gradient accumulators private), and the
	// shard gradients are merged — scaled by shard size so the result
	// equals the unsharded gradient up to floating-point reordering.
	// 0 picks min(tensor.Workers(), Batch/4); 1 disables sharding.
	Shards int

	// AugmentProb is the fraction of training windows whose *context* is
	// corrupted with a random transient while the target stays untouched.
	// The model cannot forecast accurately from a corrupted context, so the
	// NLL term forces a large predicted variance there while the KL term
	// anchors it near the prior — this is what makes the variance respond
	// to off-manifold inputs at inference time, realising §3.2's "the model
	// learns to predict a higher variance when it is uncertain". Set to 0
	// to disable (the residual-vs-variance ablation does).
	AugmentProb float64
	// AugmentScale is the corruption amplitude in normalised data units.
	AugmentScale float64
}

// DefaultTrainConfig returns settings that converge in seconds for
// EdgeConfig-sized models.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 20, Batch: 16, LR: 1e-3, Stride: 4, ClipNorm: 5, Seed: 1,
		AugmentProb: 0.25, AugmentScale: 1.0}
}

// train holds the per-model training configuration used by Fit.
// SetTrainConfig overrides the defaults.
func (m *Model) SetTrainConfig(tc TrainConfig) { m.train = &tc }

// Fit implements detect.Detector: it trains the model on an anomaly-free
// time-major series (T, C) by minimising the ELBO objective over sliding
// (window → next point) pairs.
func (m *Model) Fit(series *tensor.Tensor) error {
	tc := DefaultTrainConfig()
	if m.train != nil {
		tc = *m.train
	}
	return m.FitWindows(series, tc)
}

// FitWindows trains with an explicit configuration and returns the final
// epoch's mean loss via Logf when set.
func (m *Model) FitWindows(series *tensor.Tensor, tc TrainConfig) error {
	if series.Dims() != 2 || series.Dim(1) != m.cfg.Channels {
		return fmt.Errorf("core: Fit series shape %v, want (T,%d)", series.Shape(), m.cfg.Channels)
	}
	if series.Dim(0) <= m.cfg.Window+1 {
		return fmt.Errorf("core: Fit series length %d too short for window %d", series.Dim(0), m.cfg.Window)
	}
	if tc.Epochs <= 0 || tc.Batch <= 0 || tc.Stride <= 0 {
		return fmt.Errorf("core: invalid train config %+v", tc)
	}
	wins, targets := detect.Windows(series, m.cfg.Window, tc.Stride)
	inputs := detect.ToChannelMajor(wins)
	n := inputs.Dim(0)
	opt := nn.NewAdam(tc.LR)
	rng := tensor.NewRNG(tc.Seed)
	params := m.Params()
	reps, err := m.gradReplicas(fitShards(tc))
	if err != nil {
		return err
	}
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		perm := rng.Perm(n)
		total, batches := 0.0, 0
		for start := 0; start < n; start += tc.Batch {
			end := start + tc.Batch
			if end > n {
				end = n
			}
			x, y := gatherBatch(inputs, targets, perm[start:end])
			if tc.AugmentProb > 0 {
				corruptContexts(x, y, tc.AugmentProb, tc.AugmentScale, rng)
			}
			var loss float64
			if len(reps) > 1 && x.Dim(0) >= 2*minShardRows {
				loss = shardedStep(m, reps, x, y)
			} else {
				mu, logVar := m.Forward(x)
				var dMu, dLv *tensor.Tensor
				loss, dMu, dLv = m.Loss(mu, logVar, y)
				m.Backward(dMu, dLv)
			}
			if tc.ClipNorm > 0 {
				nn.ClipGradNorm(params, tc.ClipNorm)
			}
			opt.Step(params)
			total += loss
			batches++
		}
		if tc.Logf != nil {
			tc.Logf("epoch %d/%d  loss %.5f", epoch+1, tc.Epochs, total/float64(batches))
		}
	}
	// The float64 weights changed: any compiled reduced-precision program
	// or quantization is stale.
	m.invalidateInference()
	return nil
}

// minShardRows is the smallest per-shard minibatch slice worth the
// goroutine handoff; batches below 2× this train unsharded.
const minShardRows = 4

// fitShards resolves the configured shard count against the worker pool.
func fitShards(tc TrainConfig) int {
	nrep := tc.Shards
	if nrep <= 0 {
		nrep = tensor.Workers()
		if lim := tc.Batch / minShardRows; nrep > lim {
			nrep = lim
		}
	}
	if nrep < 1 {
		nrep = 1
	}
	return nrep
}

// gradReplicas builds n models that alias m's parameter values but own
// private gradient accumulators, so concurrent backward passes never race
// on the shared weights. Returns nil for n <= 1 (sharding disabled).
func (m *Model) gradReplicas(n int) ([]*Model, error) {
	if n <= 1 {
		return nil, nil
	}
	mp := m.Params()
	reps := make([]*Model, n)
	for i := range reps {
		r, err := New(m.cfg)
		if err != nil {
			return nil, err
		}
		rp := r.Params()
		for j := range rp {
			rp[j].Value = mp[j].Value
		}
		reps[i] = r
	}
	return reps, nil
}

// shardedStep splits the minibatch (x, y) into contiguous row shards, runs
// forward/backward on one replica per shard in parallel, and merges the
// shard gradients into m's accumulators, each scaled by its row fraction
// so the merged gradient equals the unsharded one up to FP reordering.
// Returns the batch loss on the same normalisation as the unsharded path.
func shardedStep(m *Model, reps []*Model, x, y *tensor.Tensor) float64 {
	bn := x.Dim(0)
	nrep := len(reps)
	shard := (bn + nrep - 1) / nrep
	losses := make([]float64, nrep)
	rows := make([]int, nrep)
	tensor.ParallelItems(nrep, func(i int) {
		lo := i * shard
		hi := lo + shard
		if hi > bn {
			hi = bn
		}
		if lo >= hi {
			return
		}
		r := reps[i]
		mu, logVar := r.Forward(x.SliceRows(lo, hi))
		loss, dMu, dLv := r.Loss(mu, logVar, y.SliceRows(lo, hi))
		r.Backward(dMu, dLv)
		losses[i], rows[i] = loss, hi-lo
	})
	params := m.Params()
	loss := 0.0
	for i, r := range reps {
		if rows[i] == 0 {
			continue
		}
		scale := float64(rows[i]) / float64(bn)
		loss += losses[i] * scale
		for j, p := range r.Params() {
			tensor.AXPY(scale, p.Grad, params[j].Grad)
			p.Grad.Zero()
		}
	}
	return loss
}

// corruptContexts simulates process disturbances on, with probability prob
// per sample, the trailing segment of a window AND its forecast target.
// Three fault families are applied to a random channel subset: the suffix
// is replaced by the same channels of another window in the batch
// (trajectory break), frozen at its first value (stuck sensor), or
// overlaid with a decaying oscillation plus broadband jitter (impact
// transient). The *target* of a disturbed window receives independent
// noise of the same amplitude on the disturbed channels.
//
// Three properties matter. First, the segment always reaches the window's
// end: only a disturbance on the most recent samples is evidence about the
// next point (a forecaster correctly ignores mid-window glitches).
// Second, the target disturbance is *independent* of the context
// disturbance, so for a disturbed window the irreducible variance of
// target given context is the disturbance power — no amount of robust
// denoising can explain it away, and the NLL optimum is exactly "detect
// the disturbance in the suffix, predict a large variance". Third, this is
// the true statistical structure of a physical fault: during a collision
// both the observed context and the next sample carry unpredictable
// transients. The learned response therefore transfers to inference,
// realising §3.2's "the model learns to predict a higher variance when it
// is uncertain about the next value".
func corruptContexts(x, y *tensor.Tensor, prob, scale float64, rng *tensor.RNG) {
	n, c, w := x.Dim(0), x.Dim(1), x.Dim(2)
	xd, yd := x.Data(), y.Data()
	for i := 0; i < n; i++ {
		if rng.Float64() >= prob {
			continue
		}
		segLen := 2 + rng.Intn(w/2)
		segStart := w - segLen
		shape := rng.Intn(3)
		donor := rng.Intn(n)
		if donor == i {
			donor = (donor + 1) % n
		}
		amp := rng.Uniform(0.4, 1) * scale
		touched := false
		for ch := 0; ch < c; ch++ {
			if rng.Float64() < 0.3 && touched {
				continue
			}
			touched = true
			row := xd[(i*c+ch)*w : (i*c+ch+1)*w]
			switch shape {
			case 0: // trajectory break: graft another window's suffix
				drow := xd[(donor*c+ch)*w : (donor*c+ch+1)*w]
				copy(row[segStart:], drow[segStart:])
			case 1: // stuck sensor: freeze at the segment's first value
				v := row[segStart]
				for t := segStart + 1; t < w; t++ {
					row[t] = v
				}
			default: // impact transient: ring-down plus broadband jitter
				a := amp
				if rng.Float64() < 0.5 {
					a = -a
				}
				freq := rng.Uniform(0.05, 0.3)
				phase := rng.Uniform(0, 6.283)
				for t := segStart; t < w; t++ {
					dt := float64(t - segStart)
					env := math.Exp(-3 * dt / float64(segLen))
					row[t] += env * (a*math.Cos(6.283*freq*dt+phase) + amp*0.7*(2*rng.Float64()-1))
				}
			}
			// Independent target disturbance: the fault is still active at
			// the forecast horizon, so the next value is irreducibly
			// uncertain on the disturbed channels.
			yd[i*c+ch] += amp * (2*rng.Float64() - 1)
		}
	}
}

// gatherBatch assembles the selected window/target rows into dense batch
// tensors.
func gatherBatch(inputs, targets *tensor.Tensor, idx []int) (x, y *tensor.Tensor) {
	c, w := inputs.Dim(1), inputs.Dim(2)
	ch := targets.Dim(1)
	x = tensor.New(len(idx), c, w)
	y = tensor.New(len(idx), ch)
	id, td, xd, yd := inputs.Data(), targets.Data(), x.Data(), y.Data()
	for i, j := range idx {
		copy(xd[i*c*w:(i+1)*c*w], id[j*c*w:(j+1)*c*w])
		copy(yd[i*ch:(i+1)*ch], td[j*ch:(j+1)*ch])
	}
	return x, y
}
