package core

import (
	"fmt"
	"math"

	"varade/internal/detect"
	"varade/internal/tensor"
)

// ResidualScorer wraps a trained VARADE model but scores windows with the
// conventional forecasting criterion — the Euclidean norm between forecast
// mean and observed value — instead of the predicted variance. It exists
// for the paper's central ablation: §3.1 observes that edge-sized
// autoregressive models forecast too poorly for residual scores to work,
// which motivates the variational variance score.
//
// Its window is one step longer than the model's: the first Window rows
// form the forecasting context and the last row is the observed next point.
type ResidualScorer struct {
	Model *Model
}

// Name implements detect.Detector.
func (r *ResidualScorer) Name() string { return "VARADE-residual" }

// WindowSize implements detect.Detector (context + observed point).
func (r *ResidualScorer) WindowSize() int { return r.Model.cfg.Window + 1 }

// Fit trains the underlying model.
func (r *ResidualScorer) Fit(series *tensor.Tensor) error { return r.Model.Fit(series) }

// Score returns ‖observed − μ‖₂ for the window's final row.
func (r *ResidualScorer) Score(window *tensor.Tensor) float64 {
	w := r.Model.cfg.Window
	c := r.Model.cfg.Channels
	if window.Dims() != 2 || window.Dim(0) != w+1 || window.Dim(1) != c {
		panic(fmt.Sprintf("core: ResidualScorer window %v, want (%d,%d)", window.Shape(), w+1, c))
	}
	mean, _ := r.Model.Predict(window.SliceRows(0, w))
	obs := window.Row(w).Data()
	s := 0.0
	for i, m := range mean {
		d := obs[i] - m
		s += d * d
	}
	return math.Sqrt(s)
}

// Capabilities implements detect.Scorer: the residual criterion always
// evaluates through the float64 training head (Predict needs μ, which the
// reduced-precision programs discard).
func (r *ResidualScorer) Capabilities() detect.Capabilities { return detect.Float64Caps() }

// ScoreBatch32 implements detect.Scorer by widening to the float64 path.
func (r *ResidualScorer) ScoreBatch32(windows *tensor.Tensor32) []float64 {
	return detect.WidenScoreBatch32(r, windows)
}

// ScoreBatch implements detect.Scorer: windows are (N, W+1, C), the
// first W rows of each being the forecasting context and the last the
// observed point. One batched forward yields all N residual norms.
func (r *ResidualScorer) ScoreBatch(windows *tensor.Tensor) []float64 {
	w := r.Model.cfg.Window
	c := r.Model.cfg.Channels
	if windows.Dims() != 3 || windows.Dim(1) != w+1 || windows.Dim(2) != c {
		panic(fmt.Sprintf("core: ResidualScorer ScoreBatch windows %v, want (N,%d,%d)", windows.Shape(), w+1, c))
	}
	n := windows.Dim(0)
	// Channel-major contexts: x[i, ch, t] = windows[i, t, ch] for t < W.
	x := tensor.New(n, c, w)
	wd, xd := windows.Data(), x.Data()
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for t := 0; t < w; t++ {
				for ch := 0; ch < c; ch++ {
					xd[(i*c+ch)*w+t] = wd[(i*(w+1)+t)*c+ch]
				}
			}
		}
	})
	mu, _ := r.Model.Forward(x)
	out := make([]float64, n)
	md := mu.Data()
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			obs := wd[(i*(w+1)+w)*c : (i*(w+1)+w+1)*c]
			s := 0.0
			for j, m := range md[i*c : (i+1)*c] {
				d := obs[j] - m
				s += d * d
			}
			out[i] = math.Sqrt(s)
		}
	})
	return out
}
