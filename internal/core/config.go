// Package core implements VARADE, the paper's contribution: a light
// variational autoregressive anomaly detector. A cascade of kernel-2
// stride-2 1-D convolutions halves the time dimension at every layer
// (Fig. 1); a final linear projection emits the mean and log-variance of a
// Gaussian over the next time step. Training maximises the ELBO
// (Gaussian NLL + λ·KL, Eqs. 5–7) and at inference the predicted variance
// alone is the anomaly score (§3.2).
package core

import "fmt"

// Inference precisions. Training always runs in float64; Precision selects
// the numeric type the fitted model scores with. Float32 is the edge
// default trade-off (half the memory bandwidth, scores within float32
// rounding of the float64 oracle); int8 additionally quantizes Dense/Conv
// weights per output channel with float32 accumulation.
const (
	// PrecisionFloat64 scores with the float64 training weights — the
	// bit-exactness oracle path and the meaning of an empty Precision.
	PrecisionFloat64 = "float64"
	// PrecisionFloat32 compiles the weights to float32 and scores with the
	// float32 instantiation of the same kernels.
	PrecisionFloat32 = "float32"
	// PrecisionInt8 serves per-channel affine int8 Dense/Conv weights with
	// float32 accumulation.
	PrecisionInt8 = "int8"
)

// ValidPrecision reports whether p names a supported inference precision
// ("" counts as float64).
func ValidPrecision(p string) bool {
	switch p {
	case "", PrecisionFloat64, PrecisionFloat32, PrecisionInt8:
		return true
	}
	return false
}

// Config describes a VARADE architecture.
type Config struct {
	// Window is the input context length T. It must be a power of two of at
	// least 4; the network then has log2(T)−1 conv layers, ending with a
	// time dimension of 2 (the paper's T=512 yields 8 layers).
	Window int
	// Channels is the number of input (and forecast) variables C.
	Channels int
	// BaseMaps is the feature-map count of the first conv layer; it doubles
	// every two layers (the paper uses 128, reaching 1024 at layer 8).
	BaseMaps int
	// KLWeight is λ in L = L_recon + λ·D_KL (Eq. 7).
	KLWeight float64
	// Seed initialises the weight RNG.
	Seed uint64
	// Precision selects the numeric type inference runs in: "" or
	// "float64" (the training/oracle path), "float32" (the edge fast
	// path) or "int8" (quantized weights, float32 accumulation). Training
	// always runs in float64 regardless. Omitted from saved config JSON
	// when empty, so default-precision model files stay byte-identical to
	// the pre-precision format.
	Precision string `json:",omitempty"`
}

// EffectivePrecision resolves the empty default to float64.
func (c Config) EffectivePrecision() string {
	if c.Precision == "" {
		return PrecisionFloat64
	}
	return c.Precision
}

// PaperConfig returns the exact architecture evaluated in the paper:
// T=512, 8 conv layers, feature maps 128 doubling to 1024.
func PaperConfig(channels int) Config {
	return Config{Window: 512, Channels: channels, BaseMaps: 128, KLWeight: 0.1, Seed: 1}
}

// EdgeConfig returns a reduced architecture (T=8, maps 16) that trains in
// seconds on a single CPU core while preserving the paper's topology
// (layers = log2 T − 1, feature maps doubling every two layers). The
// short context is deliberate: at the simulator's 10 Hz stream rate the
// collisions last 5–20 samples, and the window ablation (cmd/varade-bench
// -exp ablation-window) shows detection accuracy degrading monotonically
// as the window grows past the event scale — a long context dilutes the
// variance response and keeps flagging the post-event tail. The paper's
// T=512 covers 2.56 s of its 200 Hz stream, i.e. also roughly the event
// scale.
func EdgeConfig(channels int) Config {
	return Config{Window: 8, Channels: channels, BaseMaps: 16, KLWeight: 0.1, Seed: 1}
}

// TinyConfig returns the smallest legal architecture (T=8), for unit tests.
func TinyConfig(channels int) Config {
	return Config{Window: 8, Channels: channels, BaseMaps: 4, KLWeight: 0.1, Seed: 1}
}

// Validate reports whether the configuration is structurally sound.
func (c Config) Validate() error {
	if c.Channels <= 0 {
		return fmt.Errorf("core: Channels must be positive, got %d", c.Channels)
	}
	if c.BaseMaps <= 0 {
		return fmt.Errorf("core: BaseMaps must be positive, got %d", c.BaseMaps)
	}
	if c.KLWeight < 0 {
		return fmt.Errorf("core: KLWeight must be non-negative, got %g", c.KLWeight)
	}
	if c.Window < 4 || c.Window&(c.Window-1) != 0 {
		return fmt.Errorf("core: Window must be a power of two ≥ 4, got %d", c.Window)
	}
	if !ValidPrecision(c.Precision) {
		return fmt.Errorf("core: unknown precision %q (want float64, float32 or int8)", c.Precision)
	}
	return nil
}

// NumLayers returns the number of conv layers: log2(Window) − 1.
func (c Config) NumLayers() int {
	n := 0
	for w := c.Window; w > 2; w /= 2 {
		n++
	}
	return n
}

// LayerMaps returns the feature-map count of each conv layer: BaseMaps
// doubled every two layers, e.g. 128,128,256,256,… for the paper config.
func (c Config) LayerMaps() []int {
	n := c.NumLayers()
	maps := make([]int, n)
	for i := range maps {
		maps[i] = c.BaseMaps << (i / 2)
	}
	return maps
}
