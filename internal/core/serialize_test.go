package core

import (
	"path/filepath"
	"testing"

	"varade/internal/nn"
	"varade/internal/tensor"
)

func probeWindow(cfg Config, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	w := tensor.New(cfg.Window, cfg.Channels)
	d := w.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return w
}

// TestSaveLoadRoundTripWithHeader saves a model in the self-describing
// format and reloads it two ways: into a matching architecture via Load,
// and from scratch via LoadModel (no flags). Both must score
// bit-identically.
func TestSaveLoadRoundTripWithHeader(t *testing.T) {
	cfg := Config{Window: 16, Channels: 3, BaseMaps: 4, KLWeight: 0.2, Seed: 9}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.vmf")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	win := probeWindow(cfg, 1)
	want := m.Score(win)

	same, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := same.Load(path); err != nil {
		t.Fatal(err)
	}
	if got := same.Score(win); got != want {
		t.Fatalf("Load score %g want %g", got, want)
	}

	auto, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Config() != cfg {
		t.Fatalf("LoadModel config %+v want %+v", auto.Config(), cfg)
	}
	if got := auto.Score(win); got != want {
		t.Fatalf("LoadModel score %g want %g", got, want)
	}
}

// TestLoadRejectsArchitectureMismatch: the config header must catch a
// wrong architecture instead of the old positional-shape error deep in
// the weight reader.
func TestLoadRejectsArchitectureMismatch(t *testing.T) {
	m, _ := New(Config{Window: 16, Channels: 3, BaseMaps: 4, KLWeight: 0.1, Seed: 1})
	path := filepath.Join(t.TempDir(), "model.vmf")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	other, _ := New(Config{Window: 8, Channels: 3, BaseMaps: 4, KLWeight: 0.1, Seed: 1})
	if err := other.Load(path); err == nil {
		t.Fatal("expected architecture-mismatch error")
	}
}

// TestLoadLegacyBareWeights: files written before the container existed
// (bare VNN1 payload) must keep loading into a flag-described model.
func TestLoadLegacyBareWeights(t *testing.T) {
	cfg := Config{Window: 8, Channels: 2, BaseMaps: 4, KLWeight: 0.1, Seed: 5}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.vnn")
	if err := nn.SaveFile(path, m.Params()); err != nil { // the pre-header writer
		t.Fatal(err)
	}
	loaded, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Load(path); err != nil {
		t.Fatal(err)
	}
	win := probeWindow(cfg, 2)
	if got, want := loaded.Score(win), m.Score(win); got != want {
		t.Fatalf("legacy load score %g want %g", got, want)
	}
	// LoadModel, by contrast, needs the header.
	if _, err := LoadModel(path); err == nil {
		t.Fatal("LoadModel accepted a headerless file")
	}
}
