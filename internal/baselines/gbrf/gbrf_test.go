package gbrf

import (
	"math"
	"testing"

	"varade/internal/detect"
	"varade/internal/tensor"
)

func TestTreeFitsStepFunction(t *testing.T) {
	// y = 1 when x₀ > 0.5 else 0 — one split suffices.
	n := 200
	x := tensor.New(n, 2)
	y := make([]float64, n)
	rng := tensor.NewRNG(1)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		x.Set2(rng.Float64(), i, 0)
		x.Set2(rng.Float64(), i, 1)
		if x.At2(i, 0) > 0.5 {
			y[i] = 1
		}
		idx[i] = i
	}
	tree := buildTree(x, y, idx, TreeConfig{MaxDepth: 2, MinSamplesLeaf: 2}, rng)
	errs := 0
	for i := 0; i < n; i++ {
		if math.Abs(tree.Predict(x.Row(i).Data())-y[i]) > 0.2 {
			errs++
		}
	}
	if errs > n/20 {
		t.Fatalf("%d/%d errors on a separable step function", errs, n)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := tensor.NewRNG(2)
	n := 300
	x := tensor.RandNormal(rng, 0, 1, n, 3)
	y := make([]float64, n)
	idx := make([]int, n)
	for i := range y {
		y[i] = rng.NormFloat64()
		idx[i] = i
	}
	tree := buildTree(x, y, idx, TreeConfig{MaxDepth: 2, MinSamplesLeaf: 1}, rng)
	// Depth-2 tree has at most 1 + 2 + 4 = 7 nodes.
	if tree.NumNodes() > 7 {
		t.Fatalf("%d nodes exceeds depth-2 bound", tree.NumNodes())
	}
}

func TestTreeConstantTargetIsLeaf(t *testing.T) {
	rng := tensor.NewRNG(3)
	n := 50
	x := tensor.RandNormal(rng, 0, 1, n, 2)
	y := make([]float64, n)
	idx := make([]int, n)
	for i := range y {
		y[i] = 3.5
		idx[i] = i
	}
	tree := buildTree(x, y, idx, TreeConfig{MaxDepth: 4, MinSamplesLeaf: 1}, rng)
	if tree.NumNodes() != 1 {
		t.Fatalf("constant target grew %d nodes", tree.NumNodes())
	}
	if tree.Predict(x.Row(0).Data()) != 3.5 {
		t.Fatal("leaf must predict the mean")
	}
}

func sineSeries(n, c int, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	s := tensor.New(n, c)
	for j := 0; j < c; j++ {
		f := rng.Uniform(0.02, 0.06)
		p := rng.Uniform(0, 6)
		for i := 0; i < n; i++ {
			s.Set2(math.Sin(2*math.Pi*f*float64(i)+p)+0.01*rng.NormFloat64(), i, j)
		}
	}
	return s
}

func TestBoostingReducesResidualWithRounds(t *testing.T) {
	series := sineSeries(500, 1, 4)
	errFor := func(trees int) float64 {
		cfg := PaperConfig(1)
		cfg.Trees = trees
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(series); err != nil {
			t.Fatal(err)
		}
		total := 0.0
		n := 0
		for start := 5; start+5 < 490; start += 3 {
			pred := m.Predict(series.SliceRows(start, start+4))[0]
			total += math.Abs(pred - series.At2(start+4, 0))
			n++
		}
		return total / float64(n)
	}
	e1, e30 := errFor(1), errFor(30)
	if e30 >= e1 {
		t.Fatalf("30 rounds (%.4f) not better than 1 round (%.4f)", e30, e1)
	}
}

func TestPaperConfigMatchesSection33(t *testing.T) {
	cfg := PaperConfig(3)
	if cfg.Trees != 30 {
		t.Fatalf("paper uses 30 trees, config has %d", cfg.Trees)
	}
}

func TestDetectorInterface(t *testing.T) {
	m, err := New(PaperConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var d detect.Detector = m
	if d.Name() != "GBRF" || d.WindowSize() != 5 {
		t.Fatalf("Name=%q WindowSize=%d", d.Name(), d.WindowSize())
	}
}

func TestScoreIsResidualNorm(t *testing.T) {
	m, err := New(PaperConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	series := sineSeries(300, 2, 5)
	if err := m.Fit(series); err != nil {
		t.Fatal(err)
	}
	win := series.SliceRows(50, 55)
	pred := m.Predict(win.SliceRows(0, 4))
	want := 0.0
	for j := 0; j < 2; j++ {
		d := win.At2(4, j) - pred[j]
		want += d * d
	}
	want = math.Sqrt(want)
	if got := m.Score(win); math.Abs(got-want) > 1e-12 {
		t.Fatalf("score %g want %g", got, want)
	}
}

func TestScoreSeparatesBurst(t *testing.T) {
	m, err := New(PaperConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	train := sineSeries(800, 1, 6)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	test := sineSeries(300, 1, 7)
	rng := tensor.NewRNG(8)
	for i := 150; i < 165; i++ {
		test.Set2(test.At2(i, 0)+rng.Uniform(-1, 1), i, 0)
	}
	scores := detect.ScoreSeries(m, test)
	normal, anom := 0.0, 0.0
	nN, nA := 0, 0
	for i := 10; i < 300; i++ {
		if i >= 150 && i < 167 {
			anom += scores[i]
			nA++
		} else {
			normal += scores[i]
			nN++
		}
	}
	if anom/float64(nA) <= normal/float64(nN) {
		t.Fatalf("burst not separated: %g vs %g", anom/float64(nA), normal/float64(nN))
	}
}

func TestMaxFeaturesSubsampling(t *testing.T) {
	cfg := EdgeConfig(2)
	if cfg.Tree.MaxFeatures == 0 {
		t.Fatal("edge config must subsample features")
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(sineSeries(300, 2, 9)); err != nil {
		t.Fatal(err)
	}
	if m.TotalNodes() == 0 {
		t.Fatal("no trees grown")
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	m, _ := New(PaperConfig(2))
	if err := m.Fit(tensor.New(100, 3)); err == nil {
		t.Fatal("expected channel mismatch error")
	}
	if err := m.Fit(tensor.New(3, 2)); err == nil {
		t.Fatal("expected too-short error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error for zero config")
	}
}
