// Package gbrf implements the Gradient Boosted Regression Forest baseline
// of §3.3 (after Huang et al. [9], with the paper's modifications: 30 trees
// instead of 5 and no dimensionality-reduction step). One boosted forest
// per channel forecasts the next value from a short flattened context
// window; the anomaly score is the Euclidean norm of the residual, as for
// AR-LSTM.
package gbrf

import (
	"fmt"
	"math"

	"varade/internal/detect"
	"varade/internal/tensor"
)

// Config describes a GBRF forecaster.
type Config struct {
	// Window is the context length whose flattened values are features.
	Window int
	// Channels is the number of variables (one forest each).
	Channels int
	// Trees is the boosting round count (paper: 30).
	Trees int
	// LearningRate is the boosting shrinkage.
	LearningRate float64
	// Tree controls individual tree growth.
	Tree TreeConfig
	// Stride subsamples training windows.
	Stride int
	// Seed drives feature subsampling.
	Seed uint64
}

// PaperConfig returns the configuration of §3.3: 30 trees, MSE criterion,
// recursive binary splitting. The context window is short (trees consume
// flattened lag features, not the conv window).
func PaperConfig(channels int) Config {
	return Config{
		Window: 4, Channels: channels, Trees: 30, LearningRate: 0.3,
		Tree:   TreeConfig{MaxDepth: 3, MinSamplesLeaf: 4, MaxFeatures: 0},
		Stride: 1, Seed: 1,
	}
}

// EdgeConfig returns a configuration with feature subsampling for fast
// training on wide streams.
func EdgeConfig(channels int) Config {
	cfg := PaperConfig(channels)
	cfg.Tree.MaxFeatures = 24
	cfg.Stride = 2
	return cfg
}

// Forest is one boosted ensemble predicting a single channel.
type Forest struct {
	base  float64
	trees []*Tree
	lr    float64
}

// Predict evaluates the boosted ensemble on one feature row.
func (f *Forest) Predict(row []float64) float64 {
	v := f.base
	for _, t := range f.trees {
		v += f.lr * t.Predict(row)
	}
	return v
}

// Model is the GBRF detector. It implements detect.Detector.
type Model struct {
	cfg     Config
	forests []*Forest
}

// New returns an untrained GBRF detector.
func New(cfg Config) (*Model, error) {
	if cfg.Window <= 0 || cfg.Channels <= 0 || cfg.Trees <= 0 || cfg.LearningRate <= 0 || cfg.Stride <= 0 {
		return nil, fmt.Errorf("gbrf: invalid config %+v", cfg)
	}
	return &Model{cfg: cfg}, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Name implements detect.Detector.
func (m *Model) Name() string { return "GBRF" }

// WindowSize implements detect.Detector (context + observed point).
func (m *Model) WindowSize() int { return m.cfg.Window + 1 }

// Fit grows Trees boosting rounds per channel on squared-error residuals.
func (m *Model) Fit(series *tensor.Tensor) error {
	if series.Dims() != 2 || series.Dim(1) != m.cfg.Channels {
		return fmt.Errorf("gbrf: Fit series shape %v, want (T,%d)", series.Shape(), m.cfg.Channels)
	}
	if series.Dim(0) <= m.cfg.Window+1 {
		return fmt.Errorf("gbrf: series length %d too short for window %d", series.Dim(0), m.cfg.Window)
	}
	wins, targets := detect.Windows(series, m.cfg.Window, m.cfg.Stride)
	n := wins.Dim(0)
	f := m.cfg.Window * m.cfg.Channels
	x := wins.Reshape(n, f)
	rng := tensor.NewRNG(m.cfg.Seed)

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	m.forests = make([]*Forest, m.cfg.Channels)
	y := make([]float64, n)
	resid := make([]float64, n)
	for ch := 0; ch < m.cfg.Channels; ch++ {
		for i := 0; i < n; i++ {
			y[i] = targets.At2(i, ch)
		}
		fst := &Forest{lr: m.cfg.LearningRate}
		fst.base = meanAll(y)
		copy(resid, y)
		for i := range resid {
			resid[i] -= fst.base
		}
		for t := 0; t < m.cfg.Trees; t++ {
			tree := buildTree(x, resid, idx, m.cfg.Tree, rng)
			fst.trees = append(fst.trees, tree)
			for i := 0; i < n; i++ {
				resid[i] -= m.cfg.LearningRate * tree.Predict(x.Row(i).Data())
			}
		}
		m.forests[ch] = fst
	}
	return nil
}

func meanAll(y []float64) float64 {
	s := 0.0
	for _, v := range y {
		s += v
	}
	return s / float64(len(y))
}

// Predict forecasts the next point from a (Window, C) context.
func (m *Model) Predict(context *tensor.Tensor) []float64 {
	if m.forests == nil {
		panic("gbrf: Predict before Fit")
	}
	row := context.Data() // flattened time-major context = feature layout
	out := make([]float64, m.cfg.Channels)
	for ch, fst := range m.forests {
		out[ch] = fst.Predict(row)
	}
	return out
}

// Score implements detect.Detector: ‖observed − forecast‖₂.
func (m *Model) Score(window *tensor.Tensor) float64 {
	w := m.cfg.Window
	if window.Dims() != 2 || window.Dim(0) != w+1 || window.Dim(1) != m.cfg.Channels {
		panic(fmt.Sprintf("gbrf: window shape %v, want (%d,%d)", window.Shape(), w+1, m.cfg.Channels))
	}
	pred := m.Predict(window.SliceRows(0, w))
	obs := window.Row(w).Data()
	s := 0.0
	for i, p := range pred {
		d := obs[i] - p
		s += d * d
	}
	return math.Sqrt(s)
}

// TotalNodes returns the summed node count over all forests (a proxy for
// model size in the edge-memory report).
func (m *Model) TotalNodes() int {
	total := 0
	for _, f := range m.forests {
		for _, t := range f.trees {
			total += t.NumNodes()
		}
	}
	return total
}
