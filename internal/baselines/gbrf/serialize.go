package gbrf

import (
	"fmt"
	"io"

	"varade/internal/modelio"
)

// maxTreesPerForest bounds the per-forest tree count read from disk so
// a corrupt file fails as a parse error rather than a huge allocation.
const maxTreesPerForest = 1 << 20

// Save writes the fitted forest ensemble to path in the self-describing
// container format: a header carrying the Config, then per-channel
// forests with their trees flattened column-wise.
func (m *Model) Save(path string) error {
	if m.forests == nil {
		return fmt.Errorf("gbrf: Save before Fit")
	}
	return modelio.SaveFile(path, modelio.KindGBRF, m.cfg, func(w io.Writer) error {
		if err := modelio.WriteU32(w, uint32(len(m.forests))); err != nil {
			return err
		}
		for _, fst := range m.forests {
			if err := writeForest(w, fst); err != nil {
				return err
			}
		}
		return nil
	})
}

// LoadModel reads a container file written by Save and reconstructs the
// fitted detector from its embedded Config and tree payload.
func LoadModel(path string) (*Model, error) {
	var cfg Config
	var m *Model
	err := modelio.LoadFile(path, modelio.KindGBRF, &cfg, func(r io.Reader) error {
		var err error
		if m, err = New(cfg); err != nil {
			return err
		}
		nf, err := modelio.ReadU32(r)
		if err != nil {
			return err
		}
		if int(nf) != cfg.Channels {
			return fmt.Errorf("gbrf: %s holds %d forests for %d channels", path, nf, cfg.Channels)
		}
		m.forests = make([]*Forest, nf)
		for i := range m.forests {
			if m.forests[i], err = readForest(r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

func writeForest(w io.Writer, f *Forest) error {
	if err := modelio.WriteF64(w, f.base); err != nil {
		return err
	}
	if err := modelio.WriteF64(w, f.lr); err != nil {
		return err
	}
	if err := modelio.WriteU32(w, uint32(len(f.trees))); err != nil {
		return err
	}
	for _, t := range f.trees {
		if err := writeTree(w, t); err != nil {
			return err
		}
	}
	return nil
}

func readForest(r io.Reader) (*Forest, error) {
	f := &Forest{}
	var err error
	if f.base, err = modelio.ReadF64(r); err != nil {
		return nil, err
	}
	if f.lr, err = modelio.ReadF64(r); err != nil {
		return nil, err
	}
	nt, err := modelio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	if nt > maxTreesPerForest {
		return nil, fmt.Errorf("gbrf: forest tree count %d exceeds cap", nt)
	}
	f.trees = make([]*Tree, nt)
	for i := range f.trees {
		if f.trees[i], err = readTree(r); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// writeTree flattens the node slice column-wise: one int/float slice per
// field, all of equal length.
func writeTree(w io.Writer, t *Tree) error {
	n := len(t.nodes)
	feats, lefts, rights := make([]int, n), make([]int, n), make([]int, n)
	thrs, vals := make([]float64, n), make([]float64, n)
	for i, nd := range t.nodes {
		feats[i], lefts[i], rights[i] = nd.feature, nd.left, nd.right
		thrs[i], vals[i] = nd.threshold, nd.value
	}
	if err := modelio.WriteI32Slice(w, feats); err != nil {
		return err
	}
	if err := modelio.WriteF64Slice(w, thrs); err != nil {
		return err
	}
	if err := modelio.WriteI32Slice(w, lefts); err != nil {
		return err
	}
	if err := modelio.WriteI32Slice(w, rights); err != nil {
		return err
	}
	return modelio.WriteF64Slice(w, vals)
}

func readTree(r io.Reader) (*Tree, error) {
	feats, err := modelio.ReadI32Slice(r)
	if err != nil {
		return nil, err
	}
	thrs, err := modelio.ReadF64Slice(r)
	if err != nil {
		return nil, err
	}
	lefts, err := modelio.ReadI32Slice(r)
	if err != nil {
		return nil, err
	}
	rights, err := modelio.ReadI32Slice(r)
	if err != nil {
		return nil, err
	}
	vals, err := modelio.ReadF64Slice(r)
	if err != nil {
		return nil, err
	}
	n := len(feats)
	if len(thrs) != n || len(lefts) != n || len(rights) != n || len(vals) != n {
		return nil, fmt.Errorf("gbrf: inconsistent tree column lengths")
	}
	t := &Tree{nodes: make([]node, n)}
	for i := range t.nodes {
		t.nodes[i] = node{feature: feats[i], threshold: thrs[i], left: lefts[i], right: rights[i], value: vals[i]}
	}
	return t, nil
}
