package gbrf

import (
	"sort"

	"varade/internal/tensor"
)

// TreeConfig controls CART regression tree growth.
type TreeConfig struct {
	// MaxDepth bounds tree height; a depth-d tree has at most 2^d leaves.
	MaxDepth int
	// MinSamplesLeaf is the minimum sample count in each child of a split.
	MinSamplesLeaf int
	// MaxFeatures is the number of candidate features examined per node;
	// 0 means all features.
	MaxFeatures int
}

// node is a tree node in the flat nodes slice; leaves have left == -1.
type node struct {
	feature   int
	threshold float64
	left      int
	right     int
	value     float64
}

// Tree is a CART regression tree grown with the mean-squared-error
// criterion and recursive binary splitting, following the reference
// implementation cited by the paper ([9], §3.3).
type Tree struct {
	nodes []node
}

// buildTree fits a regression tree to (x, y) restricted to the sample
// index set idx. x has shape (n, f).
func buildTree(x *tensor.Tensor, y []float64, idx []int, cfg TreeConfig, rng *tensor.RNG) *Tree {
	t := &Tree{}
	t.grow(x, y, idx, 0, cfg, rng)
	return t
}

func mean(y []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// grow appends the subtree for idx and returns its node index.
func (t *Tree) grow(x *tensor.Tensor, y []float64, idx []int, depth int, cfg TreeConfig, rng *tensor.RNG) int {
	id := len(t.nodes)
	t.nodes = append(t.nodes, node{left: -1, right: -1, value: mean(y, idx)})
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinSamplesLeaf {
		return id
	}
	feat, thr, ok := bestSplit(x, y, idx, cfg, rng)
	if !ok {
		return id
	}
	var left, right []int
	for _, i := range idx {
		if x.At2(i, feat) <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinSamplesLeaf || len(right) < cfg.MinSamplesLeaf {
		return id
	}
	t.nodes[id].feature = feat
	t.nodes[id].threshold = thr
	l := t.grow(x, y, left, depth+1, cfg, rng)
	r := t.grow(x, y, right, depth+1, cfg, rng)
	t.nodes[id].left = l
	t.nodes[id].right = r
	return id
}

// bestSplit scans candidate features with an exact sorted sweep and returns
// the split minimising the weighted child variance (equivalently maximising
// MSE reduction).
func bestSplit(x *tensor.Tensor, y []float64, idx []int, cfg TreeConfig, rng *tensor.RNG) (feat int, thr float64, ok bool) {
	f := x.Dim(1)
	features := make([]int, f)
	for i := range features {
		features[i] = i
	}
	if cfg.MaxFeatures > 0 && cfg.MaxFeatures < f {
		// Partial Fisher–Yates: the first MaxFeatures entries become a
		// uniform random subset.
		for i := 0; i < cfg.MaxFeatures; i++ {
			j := i + rng.Intn(f-i)
			features[i], features[j] = features[j], features[i]
		}
		features = features[:cfg.MaxFeatures]
	}

	n := len(idx)
	totalSum, totalSq := 0.0, 0.0
	for _, i := range idx {
		totalSum += y[i]
		totalSq += y[i] * y[i]
	}
	parentSSE := totalSq - totalSum*totalSum/float64(n)
	best := parentSSE - 1e-12
	ok = false

	order := make([]int, n)
	for _, ft := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x.At2(order[a], ft) < x.At2(order[b], ft) })
		leftSum, leftSq := 0.0, 0.0
		for pos := 0; pos < n-1; pos++ {
			yi := y[order[pos]]
			leftSum += yi
			leftSq += yi * yi
			nl := pos + 1
			nr := n - nl
			if nl < cfg.MinSamplesLeaf || nr < cfg.MinSamplesLeaf {
				continue
			}
			v0 := x.At2(order[pos], ft)
			v1 := x.At2(order[pos+1], ft)
			if v0 == v1 {
				continue // cannot split between equal values
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/float64(nl)) + (rightSq - rightSum*rightSum/float64(nr))
			if sse < best {
				best = sse
				feat = ft
				thr = (v0 + v1) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// Predict evaluates the tree on one feature row.
func (t *Tree) Predict(row []float64) float64 {
	i := 0
	for {
		nd := t.nodes[i]
		if nd.left < 0 {
			return nd.value
		}
		if row[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// NumNodes returns the number of nodes in the tree.
func (t *Tree) NumNodes() int { return len(t.nodes) }
