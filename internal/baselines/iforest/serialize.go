package iforest

import (
	"fmt"
	"io"

	"varade/internal/modelio"
)

// Save writes the fitted forest to path in the self-describing container
// format: a header carrying the Config, then the calibration scalars and
// every isolation tree flattened column-wise.
func (m *Model) Save(path string) error {
	if m.trees == nil {
		return fmt.Errorf("iforest: Save before Fit")
	}
	return modelio.SaveFile(path, modelio.KindIForest, m.cfg, func(w io.Writer) error {
		if err := modelio.WriteF64(w, m.c); err != nil {
			return err
		}
		if err := modelio.WriteF64(w, m.threshold); err != nil {
			return err
		}
		if err := modelio.WriteU32(w, uint32(m.dim)); err != nil {
			return err
		}
		if err := modelio.WriteU32(w, uint32(len(m.trees))); err != nil {
			return err
		}
		for i := range m.trees {
			if err := writeIsoTree(w, &m.trees[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// LoadModel reads a container file written by Save and reconstructs the
// fitted detector from its embedded Config and tree payload.
func LoadModel(path string) (*Model, error) {
	var cfg Config
	var m *Model
	err := modelio.LoadFile(path, modelio.KindIForest, &cfg, func(r io.Reader) error {
		var err error
		if m, err = New(cfg); err != nil {
			return err
		}
		if m.c, err = modelio.ReadF64(r); err != nil {
			return err
		}
		if m.threshold, err = modelio.ReadF64(r); err != nil {
			return err
		}
		dim, err := modelio.ReadU32(r)
		if err != nil {
			return err
		}
		m.dim = int(dim)
		nt, err := modelio.ReadU32(r)
		if err != nil {
			return err
		}
		if int(nt) != cfg.Trees {
			return fmt.Errorf("iforest: %s holds %d trees for an ensemble of %d", path, nt, cfg.Trees)
		}
		m.trees = make([]tree, nt)
		for i := range m.trees {
			if err := readIsoTree(r, &m.trees[i]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

func writeIsoTree(w io.Writer, t *tree) error {
	n := len(t.nodes)
	feats, lefts, rights, sizes := make([]int, n), make([]int, n), make([]int, n), make([]int, n)
	thrs := make([]float64, n)
	for i, nd := range t.nodes {
		feats[i], lefts[i], rights[i], sizes[i] = nd.feature, nd.left, nd.right, nd.size
		thrs[i] = nd.threshold
	}
	if err := modelio.WriteI32Slice(w, feats); err != nil {
		return err
	}
	if err := modelio.WriteF64Slice(w, thrs); err != nil {
		return err
	}
	if err := modelio.WriteI32Slice(w, lefts); err != nil {
		return err
	}
	if err := modelio.WriteI32Slice(w, rights); err != nil {
		return err
	}
	return modelio.WriteI32Slice(w, sizes)
}

func readIsoTree(r io.Reader, t *tree) error {
	feats, err := modelio.ReadI32Slice(r)
	if err != nil {
		return err
	}
	thrs, err := modelio.ReadF64Slice(r)
	if err != nil {
		return err
	}
	lefts, err := modelio.ReadI32Slice(r)
	if err != nil {
		return err
	}
	rights, err := modelio.ReadI32Slice(r)
	if err != nil {
		return err
	}
	sizes, err := modelio.ReadI32Slice(r)
	if err != nil {
		return err
	}
	n := len(feats)
	if len(thrs) != n || len(lefts) != n || len(rights) != n || len(sizes) != n {
		return fmt.Errorf("iforest: inconsistent tree column lengths")
	}
	t.nodes = make([]node, n)
	for i := range t.nodes {
		t.nodes[i] = node{feature: feats[i], threshold: thrs[i], left: lefts[i], right: rights[i], size: sizes[i]}
	}
	return nil
}
