// Package iforest implements the Isolation Forest baseline of §3.3,
// following Liu, Ting & Zhou [15]: an ensemble of 100 isolation trees built
// on subsamples of the training data. The anomaly score of a point is
// s(x) = 2^(−E[h(x)]/c(ψ)) where h is the path length to isolation and
// c(ψ) the average path length of an unsuccessful BST search. As in the
// reference, a contamination fraction (the paper uses 0.1) converts scores
// to a decision threshold.
package iforest

import (
	"fmt"
	"math"
	"sort"

	"varade/internal/tensor"
)

// Config describes an isolation forest.
type Config struct {
	// Trees is the ensemble size (paper: 100).
	Trees int
	// SubsampleSize ψ is the per-tree sample count (reference default 256).
	SubsampleSize int
	// Contamination is the assumed outlier fraction used by Threshold
	// (paper: 0.1, as recommended by [15]).
	Contamination float64
	// Seed drives subsampling and split selection.
	Seed uint64
}

// PaperConfig returns the paper's setting: 100 trees, contamination 0.1.
func PaperConfig() Config {
	return Config{Trees: 100, SubsampleSize: 256, Contamination: 0.1, Seed: 1}
}

type node struct {
	feature   int
	threshold float64
	left      int // -1 for leaf
	right     int
	size      int // leaf: number of training points isolated here
}

type tree struct {
	nodes []node
}

// Model is the Isolation Forest detector. It implements detect.Detector.
type Model struct {
	cfg       Config
	trees     []tree
	c         float64 // normaliser c(ψ)
	threshold float64 // score threshold from contamination
	dim       int
}

// New returns an untrained isolation forest.
func New(cfg Config) (*Model, error) {
	if cfg.Trees <= 0 || cfg.SubsampleSize <= 1 {
		return nil, fmt.Errorf("iforest: invalid config %+v", cfg)
	}
	if cfg.Contamination < 0 || cfg.Contamination >= 1 {
		return nil, fmt.Errorf("iforest: contamination %g outside [0,1)", cfg.Contamination)
	}
	return &Model{cfg: cfg}, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Name implements detect.Detector.
func (m *Model) Name() string { return "Isolation Forest" }

// WindowSize implements detect.Detector: the forest scores single points.
func (m *Model) WindowSize() int { return 1 }

// Channels returns the fitted stream width (0 before Fit).
func (m *Model) Channels() int { return m.dim }

// avgPathLength is c(n), the average path length of unsuccessful searches
// in a binary search tree of n nodes (Eq. 1 of [15]).
func avgPathLength(n int) float64 {
	if n <= 1 {
		return 0
	}
	fn := float64(n)
	h := math.Log(fn-1) + 0.5772156649015329 // harmonic number approximation
	return 2*h - 2*(fn-1)/fn
}

// Fit grows the ensemble and calibrates the contamination threshold on the
// training scores.
func (m *Model) Fit(series *tensor.Tensor) error {
	if series.Dims() != 2 {
		return fmt.Errorf("iforest: Fit series shape %v, want (T,C)", series.Shape())
	}
	n, c := series.Dim(0), series.Dim(1)
	if n < 2 {
		return fmt.Errorf("iforest: need at least 2 training points, got %d", n)
	}
	m.dim = c
	psi := m.cfg.SubsampleSize
	if psi > n {
		psi = n
	}
	m.c = avgPathLength(psi)
	maxDepth := int(math.Ceil(math.Log2(float64(psi))))
	rng := tensor.NewRNG(m.cfg.Seed)
	data := series.Data()

	m.trees = make([]tree, m.cfg.Trees)
	for ti := range m.trees {
		idx := make([]int, psi)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		var tr tree
		growIso(&tr, data, c, idx, 0, maxDepth, rng)
		m.trees[ti] = tr
	}

	// Calibrate: the contamination quantile of training scores becomes the
	// decision threshold.
	if m.cfg.Contamination > 0 {
		scores := make([]float64, n)
		for i := 0; i < n; i++ {
			scores[i] = m.scorePoint(data[i*c : (i+1)*c])
		}
		sort.Float64s(scores)
		k := int(float64(n) * (1 - m.cfg.Contamination))
		if k >= n {
			k = n - 1
		}
		m.threshold = scores[k]
	}
	return nil
}

// growIso appends the subtree for idx and returns its node id.
func growIso(t *tree, data []float64, dim int, idx []int, depth, maxDepth int, rng *tensor.RNG) int {
	id := len(t.nodes)
	t.nodes = append(t.nodes, node{left: -1, right: -1, size: len(idx)})
	if depth >= maxDepth || len(idx) <= 1 {
		return id
	}
	// Pick a random feature with spread; give up after dim attempts (all
	// remaining values identical).
	var feat int
	var lo, hi float64
	found := false
	for attempt := 0; attempt < dim; attempt++ {
		feat = rng.Intn(dim)
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			v := data[i*dim+feat]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > lo {
			found = true
			break
		}
	}
	if !found {
		return id
	}
	thr := rng.Uniform(lo, hi)
	var left, right []int
	for _, i := range idx {
		if data[i*dim+feat] < thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return id
	}
	t.nodes[id].feature = feat
	t.nodes[id].threshold = thr
	l := growIso(t, data, dim, left, depth+1, maxDepth, rng)
	r := growIso(t, data, dim, right, depth+1, maxDepth, rng)
	t.nodes[id].left = l
	t.nodes[id].right = r
	return id
}

// pathLength returns h(x) for one tree, adding c(size) at external nodes as
// in [15].
func (t *tree) pathLength(row []float64) float64 {
	id, depth := 0, 0
	for {
		nd := t.nodes[id]
		if nd.left < 0 {
			return float64(depth) + avgPathLength(nd.size)
		}
		if row[nd.feature] < nd.threshold {
			id = nd.left
		} else {
			id = nd.right
		}
		depth++
	}
}

func (m *Model) scorePoint(row []float64) float64 {
	sum := 0.0
	for i := range m.trees {
		sum += m.trees[i].pathLength(row)
	}
	mean := sum / float64(len(m.trees))
	if m.c == 0 {
		return 0.5
	}
	return math.Pow(2, -mean/m.c)
}

// Score implements detect.Detector for a (1, C) window: the isolation
// score in (0, 1), higher for easier-to-isolate (more anomalous) points.
func (m *Model) Score(window *tensor.Tensor) float64 {
	if m.trees == nil {
		panic("iforest: Score before Fit")
	}
	if window.Dims() != 2 || window.Dim(0) != 1 || window.Dim(1) != m.dim {
		panic(fmt.Sprintf("iforest: window shape %v, want (1,%d)", window.Shape(), m.dim))
	}
	return m.scorePoint(window.Row(0).Data())
}

// Threshold returns the decision threshold calibrated from the
// contamination fraction during Fit.
func (m *Model) Threshold() float64 { return m.threshold }

// IsAnomaly reports whether a single point scores above the calibrated
// threshold.
func (m *Model) IsAnomaly(row []float64) bool { return m.scorePoint(row) > m.threshold }
