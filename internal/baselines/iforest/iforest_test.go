package iforest

import (
	"math"
	"testing"

	"varade/internal/detect"
	"varade/internal/tensor"
)

func clusterWithOutliers(n, dim int, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	return tensor.RandNormal(rng, 0, 0.5, n, dim)
}

func TestAvgPathLength(t *testing.T) {
	if avgPathLength(1) != 0 || avgPathLength(0) != 0 {
		t.Fatal("c(n≤1) must be 0")
	}
	// c(2) = 2·H(1) − 2·(1/2) = 2·0.577… − 1 ≈ 0.154? No: H(1)=ln(1)+γ=γ.
	// Sanity: c is increasing and c(256) ≈ 10.24 (the reference value).
	if c := avgPathLength(256); math.Abs(c-10.24) > 0.3 {
		t.Fatalf("c(256)=%g want ≈10.24", c)
	}
	if avgPathLength(100) >= avgPathLength(1000) {
		t.Fatal("c must be increasing")
	}
}

func TestOutlierScoresAboveInliers(t *testing.T) {
	m, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(clusterWithOutliers(600, 3, 1)); err != nil {
		t.Fatal(err)
	}
	inlier := m.scorePoint([]float64{0, 0, 0})
	outlier := m.scorePoint([]float64{6, -6, 6})
	if outlier <= inlier {
		t.Fatalf("outlier %g not above inlier %g", outlier, inlier)
	}
	if outlier < 0.6 {
		t.Fatalf("distinct outlier should score >0.6, got %g", outlier)
	}
	if inlier > 0.6 {
		t.Fatalf("cluster centre should score <0.6, got %g", inlier)
	}
}

func TestScoresAreProbabilisticRange(t *testing.T) {
	m, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	train := clusterWithOutliers(300, 2, 2)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	for i := 0; i < 200; i++ {
		s := m.scorePoint([]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
		if s <= 0 || s >= 1 {
			t.Fatalf("score %g outside (0,1)", s)
		}
	}
}

func TestContaminationThreshold(t *testing.T) {
	cfg := PaperConfig()
	cfg.Contamination = 0.1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := clusterWithOutliers(1000, 2, 4)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	// Roughly 10% of the training points must exceed the threshold.
	over := 0
	for i := 0; i < 1000; i++ {
		if m.IsAnomaly(train.Row(i).Data()) {
			over++
		}
	}
	if over < 50 || over > 150 {
		t.Fatalf("%d/1000 training points above threshold, want ≈100", over)
	}
}

func TestDetectorInterface(t *testing.T) {
	m, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	var d detect.Detector = m
	if d.Name() != "Isolation Forest" || d.WindowSize() != 1 {
		t.Fatalf("Name=%q WindowSize=%d", d.Name(), d.WindowSize())
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	train := clusterWithOutliers(200, 2, 5)
	mk := func() float64 {
		m, _ := New(PaperConfig())
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		return m.scorePoint([]float64{2, 2})
	}
	if mk() != mk() {
		t.Fatal("same seed must give identical forests")
	}
}

func TestPaperConfigMatchesSection33(t *testing.T) {
	cfg := PaperConfig()
	if cfg.Trees != 100 {
		t.Fatalf("paper uses 100 trees, config has %d", cfg.Trees)
	}
	if cfg.Contamination != 0.1 {
		t.Fatalf("paper uses contamination 0.1, config has %g", cfg.Contamination)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Trees: 0, SubsampleSize: 10}); err == nil {
		t.Fatal("expected error for zero trees")
	}
	if _, err := New(Config{Trees: 10, SubsampleSize: 10, Contamination: 1.5}); err == nil {
		t.Fatal("expected error for contamination ≥ 1")
	}
}

func TestScoreBeforeFitPanics(t *testing.T) {
	m, _ := New(PaperConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Score(tensor.New(1, 2))
}
