package arlstm

import (
	"math"
	"testing"

	"varade/internal/detect"
	"varade/internal/tensor"
)

func sineSeries(n, c int, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	s := tensor.New(n, c)
	for j := 0; j < c; j++ {
		f := rng.Uniform(0.03, 0.07)
		p := rng.Uniform(0, 6)
		for i := 0; i < n; i++ {
			s.Set2(math.Sin(2*math.Pi*f*float64(i)+p)+0.01*rng.NormFloat64(), i, j)
		}
	}
	return s
}

func smallConfig(c int) Config {
	return Config{Window: 8, Channels: c, Layers: 2, Hidden: 12, Seed: 1,
		Epochs: 8, Batch: 16, LR: 5e-3, Stride: 2, ClipNorm: 5}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error for zero config")
	}
	if _, err := New(smallConfig(2)); err != nil {
		t.Fatal(err)
	}
}

func TestPaperConfigArchitecture(t *testing.T) {
	cfg := PaperConfig(86)
	if cfg.Layers != 5 || cfg.Hidden != 256 || cfg.Window != 512 {
		t.Fatalf("paper config %+v does not match §3.3", cfg)
	}
	if cfg.LR != 1e-5 {
		t.Fatalf("paper LR %g want 1e-5 (§3.4)", cfg.LR)
	}
}

func TestDetectorInterface(t *testing.T) {
	m, err := New(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var d detect.Detector = m
	if d.Name() != "AR-LSTM" {
		t.Fatalf("name %q", d.Name())
	}
	if d.WindowSize() != 9 { // context 8 + observed point
		t.Fatalf("window %d want 9", d.WindowSize())
	}
}

func TestFitImprovesForecast(t *testing.T) {
	cfg := smallConfig(1)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := sineSeries(300, 1, 2)
	meanErr := func() float64 {
		total := 0.0
		n := 0
		for start := 100; start+9 < 290; start += 7 {
			pred := m.Predict(series.SliceRows(start, start+8))[0]
			total += math.Abs(pred - series.At2(start+8, 0))
			n++
		}
		return total / float64(n)
	}
	before := meanErr()
	if err := m.Fit(series); err != nil {
		t.Fatal(err)
	}
	after := meanErr()
	if after >= before {
		t.Fatalf("forecast error did not improve: %g → %g", before, after)
	}
	if after > 0.25 {
		t.Fatalf("trained forecast error %g too large", after)
	}
}

func TestScoreIsResidualNorm(t *testing.T) {
	m, err := New(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	win := tensor.RandNormal(tensor.NewRNG(3), 0, 1, 9, 2)
	pred := m.Predict(win.SliceRows(0, 8))
	want := 0.0
	for j := 0; j < 2; j++ {
		d := win.At2(8, j) - pred[j]
		want += d * d
	}
	want = math.Sqrt(want)
	if got := m.Score(win); math.Abs(got-want) > 1e-12 {
		t.Fatalf("score %g want %g", got, want)
	}
}

func TestScoreSeparatesBurst(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Epochs = 12
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := sineSeries(600, 1, 4)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	test := sineSeries(200, 1, 5)
	rng := tensor.NewRNG(6)
	for i := 100; i < 112; i++ {
		test.Set2(test.At2(i, 0)+rng.Uniform(-1, 1), i, 0)
	}
	scores := detect.ScoreSeries(m, test)
	normal, anom := 0.0, 0.0
	nN, nA := 0, 0
	for i := 10; i < 200; i++ {
		if i >= 100 && i < 113 {
			anom += scores[i]
			nA++
		} else {
			normal += scores[i]
			nN++
		}
	}
	if anom/float64(nA) <= normal/float64(nN) {
		t.Fatalf("burst not separated: %g vs %g", anom/float64(nA), normal/float64(nN))
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	m, _ := New(smallConfig(2))
	if err := m.Fit(tensor.New(100, 3)); err == nil {
		t.Fatal("expected channel mismatch error")
	}
	if err := m.Fit(tensor.New(5, 2)); err == nil {
		t.Fatal("expected too-short error")
	}
}
