// Package arlstm implements the AR-LSTM baseline of §3.3: an autoregressive
// recurrent forecaster with stacked LSTM layers followed by two fully
// connected layers. The anomaly score is the Euclidean norm of the
// difference between the predicted and the observed next value.
package arlstm

import (
	"fmt"
	"math"

	"varade/internal/detect"
	"varade/internal/nn"
	"varade/internal/tensor"
)

// Config describes an AR-LSTM forecaster.
type Config struct {
	// Window is the context length fed to the recurrence.
	Window int
	// Channels is the number of input/output variables.
	Channels int
	// Layers is the number of stacked LSTM layers (paper: 5).
	Layers int
	// Hidden is the per-layer feature-map count (paper: 256).
	Hidden int
	// Seed initialises the weights.
	Seed uint64

	// Training hyper-parameters used by Fit.
	Epochs   int
	Batch    int
	LR       float64
	Stride   int
	ClipNorm float64
}

// PaperConfig returns the architecture benchmarked in the paper:
// 5 LSTM layers × 256 units + 2 FC layers on a 512-step window.
func PaperConfig(channels int) Config {
	return Config{Window: 512, Channels: channels, Layers: 5, Hidden: 256, Seed: 1,
		Epochs: 5, Batch: 16, LR: 1e-5, Stride: 4, ClipNorm: 5}
}

// EdgeConfig returns a reduced recurrence that trains quickly on one core
// while keeping the stacked-LSTM-plus-FC topology.
func EdgeConfig(channels int) Config {
	return Config{Window: 8, Channels: channels, Layers: 2, Hidden: 24, Seed: 1,
		Epochs: 6, Batch: 16, LR: 3e-3, Stride: 4, ClipNorm: 5}
}

// Model is the AR-LSTM detector. It implements detect.Detector.
type Model struct {
	cfg Config
	net *nn.Sequential
}

// New builds an untrained AR-LSTM from cfg.
func New(cfg Config) (*Model, error) {
	if cfg.Window <= 1 || cfg.Channels <= 0 || cfg.Layers <= 0 || cfg.Hidden <= 0 {
		return nil, fmt.Errorf("arlstm: invalid config %+v", cfg)
	}
	rng := tensor.NewRNG(cfg.Seed)
	net := nn.NewSequential()
	in := cfg.Channels
	for i := 0; i < cfg.Layers; i++ {
		last := i == cfg.Layers-1
		net.Add(nn.NewLSTM(in, cfg.Hidden, !last, rng))
		in = cfg.Hidden
	}
	net.Add(nn.NewDense(cfg.Hidden, cfg.Hidden, rng))
	net.Add(nn.NewReLU())
	net.Add(nn.NewDense(cfg.Hidden, cfg.Channels, rng))
	return &Model{cfg: cfg, net: net}, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param { return m.net.Params() }

// Name implements detect.Detector.
func (m *Model) Name() string { return "AR-LSTM" }

// WindowSize implements detect.Detector: context plus the observed point
// the residual is computed against.
func (m *Model) WindowSize() int { return m.cfg.Window + 1 }

// Fit trains the forecaster with MSE on (window → next point) pairs.
func (m *Model) Fit(series *tensor.Tensor) error {
	if series.Dims() != 2 || series.Dim(1) != m.cfg.Channels {
		return fmt.Errorf("arlstm: Fit series shape %v, want (T,%d)", series.Shape(), m.cfg.Channels)
	}
	if series.Dim(0) <= m.cfg.Window+1 {
		return fmt.Errorf("arlstm: series length %d too short for window %d", series.Dim(0), m.cfg.Window)
	}
	inputs, targets := detect.Windows(series, m.cfg.Window, m.cfg.Stride)
	n := inputs.Dim(0)
	opt := nn.NewAdam(m.cfg.LR)
	rng := tensor.NewRNG(m.cfg.Seed + 7)
	params := m.Params()
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		perm := rng.Perm(n)
		for start := 0; start < n; start += m.cfg.Batch {
			end := min(start+m.cfg.Batch, n)
			x, y := gatherBatch(inputs, targets, perm[start:end])
			pred := m.net.Forward(x)
			_, grad := nn.MSE(pred, y)
			m.net.Backward(grad)
			if m.cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, m.cfg.ClipNorm)
			}
			opt.Step(params)
		}
	}
	return nil
}

// Predict forecasts the next point from a (Window, C) context.
func (m *Model) Predict(context *tensor.Tensor) []float64 {
	w, c := m.cfg.Window, m.cfg.Channels
	if context.Dims() != 2 || context.Dim(0) != w || context.Dim(1) != c {
		panic(fmt.Sprintf("arlstm: context shape %v, want (%d,%d)", context.Shape(), w, c))
	}
	x := tensor.New(1, w, c)
	copy(x.Data(), context.Data())
	return append([]float64(nil), m.net.Forward(x).Data()...)
}

// Score implements detect.Detector: ‖observed − forecast‖₂.
func (m *Model) Score(window *tensor.Tensor) float64 {
	w := m.cfg.Window
	pred := m.Predict(window.SliceRows(0, w))
	obs := window.Row(w).Data()
	s := 0.0
	for i, p := range pred {
		d := obs[i] - p
		s += d * d
	}
	return math.Sqrt(s)
}

// Capabilities implements detect.Scorer: the forecaster batches natively
// and runs float64 only.
func (m *Model) Capabilities() detect.Capabilities { return detect.Float64Caps() }

// ScoreBatch32 implements detect.Scorer by widening to the float64 path.
func (m *Model) ScoreBatch32(windows *tensor.Tensor32) []float64 {
	return detect.WidenScoreBatch32(m, windows)
}

// ScoreBatch implements detect.Scorer: windows are (N, W+1, C); the
// first W rows of each window form the forecasting context and the last
// row is the observed point. One batched recurrence forecasts all N next
// points, and the residual norms match Score exactly.
func (m *Model) ScoreBatch(windows *tensor.Tensor) []float64 {
	w, c := m.cfg.Window, m.cfg.Channels
	if windows.Dims() != 3 || windows.Dim(1) != w+1 || windows.Dim(2) != c {
		panic(fmt.Sprintf("arlstm: ScoreBatch windows %v, want (N,%d,%d)", windows.Shape(), w+1, c))
	}
	n := windows.Dim(0)
	x := tensor.New(n, w, c)
	wd, xd := windows.Data(), x.Data()
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(xd[i*w*c:(i+1)*w*c], wd[i*(w+1)*c:(i*(w+1)+w)*c])
		}
	})
	pred := m.net.Forward(x)
	out := make([]float64, n)
	pd := pred.Data()
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			obs := wd[(i*(w+1)+w)*c : (i*(w+1)+w+1)*c]
			s := 0.0
			for j, p := range pd[i*c : (i+1)*c] {
				d := obs[j] - p
				s += d * d
			}
			out[i] = math.Sqrt(s)
		}
	})
	return out
}

func gatherBatch(inputs, targets *tensor.Tensor, idx []int) (x, y *tensor.Tensor) {
	w, c := inputs.Dim(1), inputs.Dim(2)
	ch := targets.Dim(1)
	x = tensor.New(len(idx), w, c)
	y = tensor.New(len(idx), ch)
	id, td, xd, yd := inputs.Data(), targets.Data(), x.Data(), y.Data()
	for i, j := range idx {
		copy(xd[i*w*c:(i+1)*w*c], id[j*w*c:(j+1)*w*c])
		copy(yd[i*ch:(i+1)*ch], td[j*ch:(j+1)*ch])
	}
	return x, y
}
