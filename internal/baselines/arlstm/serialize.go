package arlstm

import (
	"varade/internal/modelio"
	"varade/internal/nn"
)

// Save writes the forecaster to path in the self-describing container
// format: a header carrying the Config, then the network weights.
func (m *Model) Save(path string) error {
	return nn.SaveModelFile(path, modelio.KindARLSTM, m.cfg, m.Params())
}

// LoadModel reads a container file written by Save and reconstructs the
// forecaster from its embedded Config.
func LoadModel(path string) (*Model, error) {
	var cfg Config
	var m *Model
	err := nn.LoadModelFile(path, modelio.KindARLSTM, &cfg, func() ([]*nn.Param, error) {
		var err error
		if m, err = New(cfg); err != nil {
			return nil, err
		}
		return m.Params(), nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}
