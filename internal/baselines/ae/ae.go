// Package ae implements the autoencoder baseline of §3.3: a convolutional
// encoder/decoder built from six ResNet blocks [He et al. 2016]. The
// anomaly score is the Euclidean norm of the difference between the
// reconstructed and the observed window.
package ae

import (
	"fmt"
	"math"

	"varade/internal/detect"
	"varade/internal/nn"
	"varade/internal/tensor"
)

// Config describes the autoencoder.
type Config struct {
	// Window is the reconstructed segment length; it must be divisible by 4
	// (the encoder downsamples twice by stride 2).
	Window int
	// Channels is the number of input variables.
	Channels int
	// BaseMaps is the encoder's first feature-map count; the bottleneck
	// uses 2×BaseMaps.
	BaseMaps int
	// Seed initialises the weights.
	Seed uint64

	// Training hyper-parameters used by Fit.
	Epochs   int
	Batch    int
	LR       float64
	Stride   int
	ClipNorm float64
}

// PaperConfig returns a full-scale six-ResNet-block autoencoder on the
// paper's 512-step window.
func PaperConfig(channels int) Config {
	return Config{Window: 512, Channels: channels, BaseMaps: 64, Seed: 1,
		Epochs: 5, Batch: 16, LR: 1e-5, Stride: 4, ClipNorm: 5}
}

// EdgeConfig returns a reduced autoencoder that trains quickly on one
// core. As for VARADE, the window matches the collision event scale of
// the 10 Hz stream (see core.EdgeConfig).
func EdgeConfig(channels int) Config {
	return Config{Window: 8, Channels: channels, BaseMaps: 8, Seed: 1,
		Epochs: 6, Batch: 16, LR: 3e-3, Stride: 4, ClipNorm: 5}
}

// Model is the autoencoder detector. It implements detect.Detector.
type Model struct {
	cfg Config
	net *nn.Sequential
}

// New builds an untrained autoencoder: three residual blocks around two
// stride-2 downsamplings, mirrored by two transposed-convolution
// upsamplings around three more residual blocks (six blocks total).
func New(cfg Config) (*Model, error) {
	if cfg.Window < 4 || cfg.Window%4 != 0 {
		return nil, fmt.Errorf("ae: Window must be a positive multiple of 4, got %d", cfg.Window)
	}
	if cfg.Channels <= 0 || cfg.BaseMaps <= 0 {
		return nil, fmt.Errorf("ae: invalid config %+v", cfg)
	}
	rng := tensor.NewRNG(cfg.Seed)
	f := cfg.BaseMaps
	net := nn.NewSequential(
		// Encoder.
		nn.NewResBlock1D(cfg.Channels, f, rng),
		nn.NewConv1D(f, f, 2, 2, 0, rng), // W → W/2
		nn.NewResBlock1D(f, 2*f, rng),
		nn.NewConv1D(2*f, 2*f, 2, 2, 0, rng), // W/2 → W/4 (bottleneck)
		nn.NewResBlock1D(2*f, 2*f, rng),
		// Decoder.
		nn.NewConvTranspose1D(2*f, 2*f, 2, 2, 0, rng), // W/4 → W/2
		nn.NewResBlock1D(2*f, f, rng),
		nn.NewConvTranspose1D(f, f, 2, 2, 0, rng), // W/2 → W
		nn.NewResBlock1D(f, f, rng),
		nn.NewResBlock1D(f, cfg.Channels, rng),
	)
	return &Model{cfg: cfg, net: net}, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param { return m.net.Params() }

// Name implements detect.Detector.
func (m *Model) Name() string { return "AE" }

// WindowSize implements detect.Detector.
func (m *Model) WindowSize() int { return m.cfg.Window }

// Fit trains the autoencoder to reconstruct normal windows under MSE.
func (m *Model) Fit(series *tensor.Tensor) error {
	if series.Dims() != 2 || series.Dim(1) != m.cfg.Channels {
		return fmt.Errorf("ae: Fit series shape %v, want (T,%d)", series.Shape(), m.cfg.Channels)
	}
	if series.Dim(0) <= m.cfg.Window+1 {
		return fmt.Errorf("ae: series length %d too short for window %d", series.Dim(0), m.cfg.Window)
	}
	wins, _ := detect.Windows(series, m.cfg.Window, m.cfg.Stride)
	inputs := detect.ToChannelMajor(wins)
	n := inputs.Dim(0)
	opt := nn.NewAdam(m.cfg.LR)
	rng := tensor.NewRNG(m.cfg.Seed + 7)
	params := m.Params()
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		perm := rng.Perm(n)
		for start := 0; start < n; start += m.cfg.Batch {
			end := min(start+m.cfg.Batch, n)
			x := gatherBatch(inputs, perm[start:end])
			recon := m.net.Forward(x)
			_, grad := nn.MSE(recon, x)
			m.net.Backward(grad)
			if m.cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, m.cfg.ClipNorm)
			}
			opt.Step(params)
		}
	}
	return nil
}

// Reconstruct returns the autoencoder output for one time-major window.
func (m *Model) Reconstruct(window *tensor.Tensor) *tensor.Tensor {
	x := windowToInput(window, m.cfg.Channels, m.cfg.Window)
	return m.net.Forward(x)
}

// Score implements detect.Detector: ‖window − reconstruction‖₂.
func (m *Model) Score(window *tensor.Tensor) float64 {
	x := windowToInput(window, m.cfg.Channels, m.cfg.Window)
	recon := m.net.Forward(x)
	s := 0.0
	xd, rd := x.Data(), recon.Data()
	for i := range xd {
		d := xd[i] - rd[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Capabilities implements detect.Scorer: the autoencoder batches natively
// and runs float64 only.
func (m *Model) Capabilities() detect.Capabilities { return detect.Float64Caps() }

// ScoreBatch32 implements detect.Scorer by widening to the float64 path.
func (m *Model) ScoreBatch32(windows *tensor.Tensor32) []float64 {
	return detect.WidenScoreBatch32(m, windows)
}

// ScoreBatch implements detect.Scorer: it reconstructs N time-major
// windows (N, W, C) in one batched forward and returns the per-window
// reconstruction-error norms, matching Score exactly.
func (m *Model) ScoreBatch(windows *tensor.Tensor) []float64 {
	w, c := m.cfg.Window, m.cfg.Channels
	if windows.Dims() != 3 || windows.Dim(1) != w || windows.Dim(2) != c {
		panic(fmt.Sprintf("ae: ScoreBatch windows %v, want (N,%d,%d)", windows.Shape(), w, c))
	}
	x := detect.ToChannelMajor(windows)
	recon := m.net.Forward(x)
	n := windows.Dim(0)
	out := make([]float64, n)
	xd, rd := x.Data(), recon.Data()
	stride := c * w
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for j := i * stride; j < (i+1)*stride; j++ {
				d := xd[j] - rd[j]
				s += d * d
			}
			out[i] = math.Sqrt(s)
		}
	})
	return out
}

func windowToInput(window *tensor.Tensor, c, w int) *tensor.Tensor {
	if window.Dims() != 2 || window.Dim(0) != w || window.Dim(1) != c {
		panic(fmt.Sprintf("ae: window shape %v, want (%d,%d)", window.Shape(), w, c))
	}
	x := tensor.New(1, c, w)
	wd, xd := window.Data(), x.Data()
	for t := 0; t < w; t++ {
		for ch := 0; ch < c; ch++ {
			xd[ch*w+t] = wd[t*c+ch]
		}
	}
	return x
}

func gatherBatch(inputs *tensor.Tensor, idx []int) *tensor.Tensor {
	c, w := inputs.Dim(1), inputs.Dim(2)
	x := tensor.New(len(idx), c, w)
	id, xd := inputs.Data(), x.Data()
	for i, j := range idx {
		copy(xd[i*c*w:(i+1)*c*w], id[j*c*w:(j+1)*c*w])
	}
	return x
}
