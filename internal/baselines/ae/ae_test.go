package ae

import (
	"math"
	"testing"

	"varade/internal/detect"
	"varade/internal/nn"
	"varade/internal/tensor"
)

func sineSeries(n, c int, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	s := tensor.New(n, c)
	for j := 0; j < c; j++ {
		f := rng.Uniform(0.03, 0.07)
		p := rng.Uniform(0, 6)
		for i := 0; i < n; i++ {
			s.Set2(math.Sin(2*math.Pi*f*float64(i)+p)+0.01*rng.NormFloat64(), i, j)
		}
	}
	return s
}

func smallConfig(c int) Config {
	return Config{Window: 16, Channels: c, BaseMaps: 6, Seed: 1,
		Epochs: 10, Batch: 16, LR: 3e-3, Stride: 2, ClipNorm: 5}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Window: 10, Channels: 1, BaseMaps: 2}); err == nil {
		t.Fatal("window must be a multiple of 4")
	}
	if _, err := New(Config{Window: 16, Channels: 0, BaseMaps: 2}); err == nil {
		t.Fatal("channels must be positive")
	}
	if _, err := New(smallConfig(2)); err != nil {
		t.Fatal(err)
	}
}

func TestSixResBlocks(t *testing.T) {
	// §3.3 requires exactly 6 ResNet blocks.
	m, err := New(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	blocks := 0
	for _, l := range m.net.Layers {
		if _, ok := l.(*nn.ResBlock1D); ok {
			blocks++
		}
	}
	if blocks != 6 {
		t.Fatalf("%d residual blocks, want 6", blocks)
	}
}

func TestReconstructionShapePreserved(t *testing.T) {
	m, err := New(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	win := tensor.RandNormal(tensor.NewRNG(1), 0, 1, 16, 3)
	recon := m.Reconstruct(win)
	if recon.Dim(1) != 3 || recon.Dim(2) != 16 {
		t.Fatalf("reconstruction shape %v", recon.Shape())
	}
}

func TestFitReducesReconstructionError(t *testing.T) {
	cfg := smallConfig(2)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := sineSeries(400, 2, 2)
	win := series.SliceRows(100, 116)
	before := m.Score(win)
	if err := m.Fit(series); err != nil {
		t.Fatal(err)
	}
	after := m.Score(win)
	if after >= before {
		t.Fatalf("reconstruction error did not improve: %g → %g", before, after)
	}
}

func TestScoreSeparatesBurst(t *testing.T) {
	cfg := smallConfig(1)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := sineSeries(600, 1, 3)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	test := sineSeries(200, 1, 4)
	rng := tensor.NewRNG(5)
	for i := 100; i < 115; i++ {
		test.Set2(test.At2(i, 0)+rng.Uniform(-1.2, 1.2), i, 0)
	}
	scores := detect.ScoreSeries(m, test)
	normal, anom := 0.0, 0.0
	nN, nA := 0, 0
	for i := 20; i < 200; i++ {
		if i >= 100 && i < 120 {
			anom += scores[i]
			nA++
		} else {
			normal += scores[i]
			nN++
		}
	}
	if anom/float64(nA) <= normal/float64(nN) {
		t.Fatalf("burst not separated: %g vs %g", anom/float64(nA), normal/float64(nN))
	}
}

func TestDetectorInterface(t *testing.T) {
	m, err := New(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var d detect.Detector = m
	if d.Name() != "AE" || d.WindowSize() != 16 {
		t.Fatalf("Name=%q WindowSize=%d", d.Name(), d.WindowSize())
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	m, _ := New(smallConfig(2))
	if err := m.Fit(tensor.New(100, 3)); err == nil {
		t.Fatal("expected channel mismatch error")
	}
	if err := m.Fit(tensor.New(10, 2)); err == nil {
		t.Fatal("expected too-short error")
	}
}
