// Package knn implements the k-nearest-neighbour outlier baseline of §3.3:
// the anomaly score of a point is its distance to its k-th nearest training
// neighbour (maximum distance among the k neighbours, k=5), following
// Goldstein & Uchida [6].
//
// Two exact backends are provided: a brute-force linear scan (the right
// choice for the 86-dimensional robot stream, where space partitioning
// degenerates) and a KD-tree that accelerates low-dimensional data. Both
// return identical scores; a property test asserts so.
package knn

import (
	"container/heap"
	"fmt"
	"math"

	"varade/internal/tensor"
)

// Backend selects the neighbour-search implementation.
type Backend int

const (
	// BruteForce scans every training point.
	BruteForce Backend = iota
	// KDTree searches a k-d tree with exact pruning.
	KDTree
)

// Config describes the kNN detector.
type Config struct {
	// K is the neighbour count (paper: 5, max-distance score).
	K int
	// MaxSamples caps the retained training set; 0 keeps everything.
	// Subsampling keeps edge inference tractable: the paper observes kNN is
	// the slowest detector precisely because it scans the training set.
	MaxSamples int
	// Backend selects the search structure.
	Backend Backend
	// Seed drives the training subsample.
	Seed uint64
}

// PaperConfig returns k=5 with max-distance scoring.
func PaperConfig() Config { return Config{K: 5, MaxSamples: 4096, Backend: BruteForce, Seed: 1} }

// Model is the kNN detector. It implements detect.Detector.
type Model struct {
	cfg  Config
	dim  int
	data []float64 // (n, dim) row-major training points
	n    int
	tree *kdTree
}

// New returns an untrained kNN detector.
func New(cfg Config) (*Model, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("knn: K must be positive, got %d", cfg.K)
	}
	if cfg.MaxSamples < 0 {
		return nil, fmt.Errorf("knn: MaxSamples must be non-negative, got %d", cfg.MaxSamples)
	}
	return &Model{cfg: cfg}, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Name implements detect.Detector.
func (m *Model) Name() string { return "kNN" }

// WindowSize implements detect.Detector: kNN scores single points.
func (m *Model) WindowSize() int { return 1 }

// Channels returns the fitted stream width (0 before Fit).
func (m *Model) Channels() int { return m.dim }

// Fit stores (a subsample of) the training points.
func (m *Model) Fit(series *tensor.Tensor) error {
	if series.Dims() != 2 {
		return fmt.Errorf("knn: Fit series shape %v, want (T,C)", series.Shape())
	}
	t, c := series.Dim(0), series.Dim(1)
	if t <= m.cfg.K {
		return fmt.Errorf("knn: %d training points for k=%d", t, m.cfg.K)
	}
	m.dim = c
	keep := t
	if m.cfg.MaxSamples > 0 && m.cfg.MaxSamples < t {
		keep = m.cfg.MaxSamples
	}
	m.n = keep
	m.data = make([]float64, keep*c)
	sd := series.Data()
	if keep == t {
		copy(m.data, sd)
	} else {
		rng := tensor.NewRNG(m.cfg.Seed)
		perm := rng.Perm(t)
		for i := 0; i < keep; i++ {
			copy(m.data[i*c:(i+1)*c], sd[perm[i]*c:(perm[i]+1)*c])
		}
	}
	if m.cfg.Backend == KDTree {
		m.tree = buildKDTree(m.data, m.n, m.dim)
	}
	return nil
}

// KthNearestDistance returns the distance from q to its k-th nearest
// training point (the paper's max-distance score).
func (m *Model) KthNearestDistance(q []float64) float64 {
	if m.data == nil {
		panic("knn: query before Fit")
	}
	if len(q) != m.dim {
		panic(fmt.Sprintf("knn: query dim %d, want %d", len(q), m.dim))
	}
	k := m.cfg.K
	if k > m.n {
		k = m.n
	}
	var worst float64
	if m.cfg.Backend == KDTree {
		worst = m.tree.kNearest(q, k)
	} else {
		worst = bruteKNearest(m.data, m.n, m.dim, q, k)
	}
	return math.Sqrt(worst)
}

// Score implements detect.Detector for a (1, C) window.
func (m *Model) Score(window *tensor.Tensor) float64 {
	if window.Dims() != 2 || window.Dim(0) != 1 {
		panic(fmt.Sprintf("knn: window shape %v, want (1,C)", window.Shape()))
	}
	return m.KthNearestDistance(window.Row(0).Data())
}

// maxHeap keeps the k smallest squared distances seen so far, with the
// current k-th (largest retained) on top.
type maxHeap []float64

func (h maxHeap) Len() int           { return len(h) }
func (h maxHeap) Less(i, j int) bool { return h[i] > h[j] }
func (h maxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *maxHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

func bruteKNearest(data []float64, n, dim int, q []float64, k int) float64 {
	h := make(maxHeap, 0, k+1)
	for i := 0; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		d := 0.0
		for j, v := range row {
			diff := v - q[j]
			d += diff * diff
		}
		if len(h) < k {
			heap.Push(&h, d)
		} else if d < h[0] {
			h[0] = d
			heap.Fix(&h, 0)
		}
	}
	return h[0]
}
