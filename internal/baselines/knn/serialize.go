package knn

import (
	"fmt"
	"io"

	"varade/internal/modelio"
)

// Save writes the fitted detector to path in the self-describing
// container format: a header carrying the Config, then the retained
// training points. The KD-tree, when enabled, is rebuilt on load rather
// than persisted — construction is deterministic from the points.
func (m *Model) Save(path string) error {
	if m.data == nil {
		return fmt.Errorf("knn: Save before Fit")
	}
	return modelio.SaveFile(path, modelio.KindKNN, m.cfg, func(w io.Writer) error {
		if err := modelio.WriteU32(w, uint32(m.dim)); err != nil {
			return err
		}
		if err := modelio.WriteU32(w, uint32(m.n)); err != nil {
			return err
		}
		return modelio.WriteF64Slice(w, m.data)
	})
}

// LoadModel reads a container file written by Save and reconstructs the
// fitted detector, rebuilding the KD-tree when the config asks for one.
func LoadModel(path string) (*Model, error) {
	var cfg Config
	var m *Model
	err := modelio.LoadFile(path, modelio.KindKNN, &cfg, func(r io.Reader) error {
		var err error
		if m, err = New(cfg); err != nil {
			return err
		}
		dim, err := modelio.ReadU32(r)
		if err != nil {
			return err
		}
		n, err := modelio.ReadU32(r)
		if err != nil {
			return err
		}
		m.dim, m.n = int(dim), int(n)
		if m.data, err = modelio.ReadF64Slice(r); err != nil {
			return err
		}
		if len(m.data) != m.n*m.dim {
			return fmt.Errorf("knn: %s has %d values for %d×%d points", path, len(m.data), m.n, m.dim)
		}
		if m.cfg.Backend == KDTree {
			m.tree = buildKDTree(m.data, m.n, m.dim)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}
