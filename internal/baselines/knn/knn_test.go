package knn

import (
	"math"
	"testing"
	"testing/quick"

	"varade/internal/detect"
	"varade/internal/tensor"
)

func clusteredData(n, dim int, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	return tensor.RandNormal(rng, 0, 1, n, dim)
}

func TestKthNearestKnownGeometry(t *testing.T) {
	// Points at 0, 1, 2, 3 on a line; k=2 from query 0 → distance 1 is
	// 1st, distance 2 is 2nd.
	m, err := New(Config{K: 2, Backend: BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	train := tensor.FromSlice([]float64{0, 1, 2, 3}, 4, 1)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if d := m.KthNearestDistance([]float64{0}); d != 1 {
		t.Fatalf("k=2 distance from member point %g want 1 (self at 0, next at 1)", d)
	}
	if d := m.KthNearestDistance([]float64{10}); d != 8 {
		t.Fatalf("k=2 distance %g want 8", d)
	}
}

func TestOutlierScoresHigherThanInlier(t *testing.T) {
	m, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(clusteredData(500, 4, 1)); err != nil {
		t.Fatal(err)
	}
	inlier := m.KthNearestDistance([]float64{0, 0, 0, 0})
	outlier := m.KthNearestDistance([]float64{8, 8, 8, 8})
	if outlier <= inlier*3 {
		t.Fatalf("outlier %g not clearly above inlier %g", outlier, inlier)
	}
}

// Property: KD-tree and brute force return identical k-th distances.
func TestKDTreeMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		n, dim := 120, 3
		train := clusteredData(n, dim, seed%1000+1)
		brute, _ := New(Config{K: 5, Backend: BruteForce})
		kd, _ := New(Config{K: 5, Backend: KDTree})
		if err := brute.Fit(train); err != nil {
			return false
		}
		if err := kd.Fit(train); err != nil {
			return false
		}
		rng := tensor.NewRNG(seed%997 + 3)
		for q := 0; q < 20; q++ {
			query := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2, rng.NormFloat64() * 2}
			a := brute.KthNearestDistance(query)
			b := kd.KthNearestDistance(query)
			if math.Abs(a-b) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsamplingCapsTrainingSet(t *testing.T) {
	m, err := New(Config{K: 3, MaxSamples: 50, Backend: BruteForce, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(clusteredData(1000, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if m.n != 50 {
		t.Fatalf("retained %d points want 50", m.n)
	}
}

func TestDetectorInterface(t *testing.T) {
	m, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	var d detect.Detector = m
	if d.Name() != "kNN" || d.WindowSize() != 1 {
		t.Fatalf("Name=%q WindowSize=%d", d.Name(), d.WindowSize())
	}
	if err := m.Fit(clusteredData(100, 2, 3)); err != nil {
		t.Fatal(err)
	}
	w := tensor.FromSlice([]float64{0, 0}, 1, 2)
	if s := d.Score(w); s < 0 {
		t.Fatalf("negative distance %g", s)
	}
}

func TestKLargerThanTrainingSet(t *testing.T) {
	m, err := New(Config{K: 10, Backend: BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	// Fit rejects fewer points than k.
	if err := m.Fit(clusteredData(5, 2, 4)); err == nil {
		t.Fatal("expected error when training set smaller than k")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{K: 0}); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := New(Config{K: 1, MaxSamples: -1}); err == nil {
		t.Fatal("expected error for negative MaxSamples")
	}
}

func TestQueryBeforeFitPanics(t *testing.T) {
	m, _ := New(PaperConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.KthNearestDistance([]float64{1})
}
