package knn

import (
	"container/heap"
	"sort"
)

// kdTree is an exact k-d tree over row-major points, splitting on the
// dimension of greatest spread at each node with median pivots.
type kdTree struct {
	data  []float64
	dim   int
	nodes []kdNode
	root  int
}

type kdNode struct {
	point int // row index into data
	axis  int
	left  int // -1 for none
	right int
}

func buildKDTree(data []float64, n, dim int) *kdTree {
	t := &kdTree{data: data, dim: dim}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx)
	return t
}

// build constructs the subtree over idx and returns its node index
// (-1 when idx is empty).
func (t *kdTree) build(idx []int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := t.widestAxis(idx)
	sort.Slice(idx, func(a, b int) bool {
		return t.data[idx[a]*t.dim+axis] < t.data[idx[b]*t.dim+axis]
	})
	mid := len(idx) / 2
	id := len(t.nodes)
	t.nodes = append(t.nodes, kdNode{point: idx[mid], axis: axis, left: -1, right: -1})
	l := t.build(idx[:mid])
	r := t.build(idx[mid+1:])
	t.nodes[id].left = l
	t.nodes[id].right = r
	return id
}

func (t *kdTree) widestAxis(idx []int) int {
	bestAxis, bestSpread := 0, -1.0
	for a := 0; a < t.dim; a++ {
		lo, hi := t.data[idx[0]*t.dim+a], t.data[idx[0]*t.dim+a]
		for _, i := range idx[1:] {
			v := t.data[i*t.dim+a]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > bestSpread {
			bestSpread, bestAxis = hi-lo, a
		}
	}
	return bestAxis
}

// kNearest returns the squared distance to the k-th nearest point.
func (t *kdTree) kNearest(q []float64, k int) float64 {
	h := make(maxHeap, 0, k+1)
	t.search(t.root, q, k, &h)
	return h[0]
}

func (t *kdTree) search(id int, q []float64, k int, h *maxHeap) {
	if id < 0 {
		return
	}
	nd := t.nodes[id]
	row := t.data[nd.point*t.dim : (nd.point+1)*t.dim]
	d := 0.0
	for j, v := range row {
		diff := v - q[j]
		d += diff * diff
	}
	if len(*h) < k {
		heap.Push(h, d)
	} else if d < (*h)[0] {
		(*h)[0] = d
		heap.Fix(h, 0)
	}
	delta := q[nd.axis] - row[nd.axis]
	near, far := nd.left, nd.right
	if delta > 0 {
		near, far = far, near
	}
	t.search(near, q, k, h)
	// Visit the far side only if the splitting plane can still hold a
	// closer neighbour than the current k-th.
	if len(*h) < k || delta*delta < (*h)[0] {
		t.search(far, q, k, h)
	}
}
