package modelio

import (
	"bytes"
	"strings"
	"testing"
)

type tCfg struct {
	Window, Channels int
}

func TestHeaderV1RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, KindVARADE, tCfg{8, 3}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String()[:4]; got != Magic {
		t.Fatalf("float64 header magic %q, want legacy %q", got, Magic)
	}
	kind, dtype, cfgJSON, err := ReadHeaderDType(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindVARADE || dtype != DTypeFloat64 {
		t.Fatalf("got kind %q dtype %q", kind, dtype)
	}
	var cfg tCfg
	if err := Unmarshal(cfgJSON, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg != (tCfg{8, 3}) {
		t.Fatalf("config round-trip %+v", cfg)
	}
}

func TestHeaderV2RoundTrip(t *testing.T) {
	for _, dtype := range []string{DTypeFloat32, DTypeInt8} {
		var buf bytes.Buffer
		if err := WriteHeaderDType(&buf, KindVARADE, dtype, tCfg{16, 5}); err != nil {
			t.Fatal(err)
		}
		if got := buf.String()[:4]; got != MagicV2 {
			t.Fatalf("%s header magic %q, want %q", dtype, got, MagicV2)
		}
		kind, gotD, _, err := ReadHeaderDType(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if kind != KindVARADE || gotD != dtype {
			t.Fatalf("got kind %q dtype %q want %q", kind, gotD, dtype)
		}
	}
}

func TestWriteHeaderRejectsUnknownDType(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeaderDType(&buf, KindVARADE, "bfloat16", tCfg{}); err == nil {
		t.Fatal("unknown dtype accepted")
	}
}

func TestReadHeaderRejectsCorruptLengths(t *testing.T) {
	for _, in := range []string{
		"",
		"VMF",
		"XXXX",
		"VMF1\xff\xff\xff\xff",
		"VMF2\x02\x00\x00\x00ae\xff\xff\xff\x7f",
		"VMF1\x02\x00\x00\x00ae", // truncated before config
	} {
		if _, _, _, err := ReadHeaderDType(strings.NewReader(in)); err == nil {
			t.Fatalf("corrupt header %q accepted", in)
		}
	}
}

func TestSliceRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	f32 := []float32{1.5, -2.25, 0, 3e7}
	i8 := []int8{-128, -1, 0, 1, 127}
	if err := WriteF32Slice(&buf, f32); err != nil {
		t.Fatal(err)
	}
	if err := WriteI8Slice(&buf, i8); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	gf, err := ReadF32Slice(r)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := ReadI8Slice(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f32 {
		if gf[i] != f32[i] {
			t.Fatalf("f32[%d] = %v want %v", i, gf[i], f32[i])
		}
	}
	for i := range i8 {
		if gi[i] != i8[i] {
			t.Fatalf("i8[%d] = %v want %v", i, gi[i], i8[i])
		}
	}
}
