// Package modelio defines the on-disk container for persisted detectors:
// a small versioned header naming the detector kind and carrying its
// configuration as JSON, followed by a kind-specific payload (network
// weights, tree ensembles, training points). The header makes a model
// file self-describing — the loader reconstructs the exact architecture
// without the caller re-specifying flags — while each detector package
// stays the owner of its payload encoding.
//
// Container layout (little-endian):
//
//	magic "VMF1" | u32 kindLen | kind | u32 cfgLen | config JSON | payload…
//
// Files written before the container existed hold a bare nn payload
// (magic "VNN1"); readers sniff the magic and fall back, so old weight
// files keep loading.
package modelio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Magic opens every container file.
const Magic = "VMF1"

// Detector kind identifiers stored in the container header.
const (
	KindVARADE  = "varade"
	KindAE      = "ae"
	KindARLSTM  = "arlstm"
	KindGBRF    = "gbrf"
	KindIForest = "iforest"
	KindKNN     = "knn"
)

const (
	maxHeaderField = 1 << 20 // sanity cap on kind/config lengths
	// maxSliceElems bounds length-prefixed payload slices (~1 GB of
	// float64) so a corrupt count field fails as a parse error instead
	// of a multi-gigabyte allocation.
	maxSliceElems = 1 << 27
)

// WriteHeader writes the container header: magic, kind, and cfg
// serialised as JSON.
func WriteHeader(w io.Writer, kind string, cfg any) error {
	blob, err := json.Marshal(cfg)
	if err != nil {
		return fmt.Errorf("modelio: encoding config: %w", err)
	}
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	if err := WriteString(w, kind); err != nil {
		return err
	}
	return WriteBytes(w, blob)
}

// ReadHeader reads a container header and returns the detector kind and
// raw config JSON. The reader is left positioned at the payload.
func ReadHeader(r io.Reader) (kind string, cfgJSON []byte, err error) {
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return "", nil, fmt.Errorf("modelio: reading magic: %w", err)
	}
	if string(head) != Magic {
		return "", nil, fmt.Errorf("modelio: bad magic %q, want %q", head, Magic)
	}
	if kind, err = ReadString(r); err != nil {
		return "", nil, fmt.Errorf("modelio: reading kind: %w", err)
	}
	if cfgJSON, err = ReadBytes(r); err != nil {
		return "", nil, fmt.Errorf("modelio: reading config: %w", err)
	}
	return kind, cfgJSON, nil
}

// SaveFile writes a complete container to path: the header (kind + cfg)
// followed by whatever payload writes. It is the shared save framing for
// every detector serializer; payload receives a buffered writer that is
// flushed and the file closed before SaveFile returns.
func SaveFile(path, kind string, cfg any, payload func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteHeader(bw, kind, cfg); err != nil {
		f.Close()
		return err
	}
	if err := payload(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile opens a container, verifies the kind, decodes the config
// header into cfg, and hands the reader — positioned at the payload —
// to payload. It is the shared load framing for every detector
// serializer.
func LoadFile(path, kind string, cfg any, payload func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	gotKind, cfgJSON, err := ReadHeader(br)
	if err != nil {
		return err
	}
	if gotKind != kind {
		return fmt.Errorf("modelio: %s holds a %q model, want %q", path, gotKind, kind)
	}
	if err := Unmarshal(cfgJSON, cfg); err != nil {
		return err
	}
	return payload(br)
}

// SniffKind opens path and returns the detector kind from its header
// without reading the payload. Bare legacy weight files (magic "VNN1")
// report kind "" with a nil error.
func SniffKind(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(len(Magic))
	if err != nil {
		return "", fmt.Errorf("modelio: %s: %w", path, err)
	}
	if string(head) != Magic {
		return "", nil
	}
	kind, _, err := ReadHeader(br)
	return kind, err
}

// Unmarshal decodes header config JSON into cfg, rejecting unknown fields
// so config drift between writer and reader surfaces as an error.
func Unmarshal(cfgJSON []byte, cfg any) error {
	dec := json.NewDecoder(bytes.NewReader(cfgJSON))
	dec.DisallowUnknownFields()
	return dec.Decode(cfg)
}

// Binary payload helpers, shared by the detector serialisers.

// WriteU32 writes one little-endian uint32.
func WriteU32(w io.Writer, v uint32) error {
	return binary.Write(w, binary.LittleEndian, v)
}

// ReadU32 reads one little-endian uint32.
func ReadU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

// WriteString writes a length-prefixed string.
func WriteString(w io.Writer, s string) error {
	if err := WriteU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// ReadString reads a length-prefixed string.
func ReadString(r io.Reader) (string, error) {
	b, err := ReadBytes(r)
	return string(b), err
}

// WriteBytes writes a length-prefixed byte slice.
func WriteBytes(w io.Writer, b []byte) error {
	if err := WriteU32(w, uint32(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadBytes reads a length-prefixed byte slice.
func ReadBytes(r io.Reader) ([]byte, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxHeaderField {
		return nil, fmt.Errorf("modelio: field length %d exceeds cap", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteF64Slice writes a length-prefixed []float64.
func WriteF64Slice(w io.Writer, xs []float64) error {
	if err := WriteU32(w, uint32(len(xs))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range xs {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadF64Slice reads a length-prefixed []float64.
func ReadF64Slice(r io.Reader) ([]float64, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxSliceElems {
		return nil, fmt.Errorf("modelio: slice length %d exceeds cap", n)
	}
	xs := make([]float64, n)
	buf := make([]byte, 8)
	for i := range xs {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return xs, nil
}

// WriteI32Slice writes a length-prefixed []int32 rendered from ints.
func WriteI32Slice(w io.Writer, xs []int) error {
	if err := WriteU32(w, uint32(len(xs))); err != nil {
		return err
	}
	for _, v := range xs {
		if err := binary.Write(w, binary.LittleEndian, int32(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadI32Slice reads a length-prefixed []int32 back into ints.
func ReadI32Slice(r io.Reader) ([]int, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxSliceElems {
		return nil, fmt.Errorf("modelio: slice length %d exceeds cap", n)
	}
	xs := make([]int, n)
	for i := range xs {
		var v int32
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		xs[i] = int(v)
	}
	return xs, nil
}

// WriteF64 writes one little-endian float64.
func WriteF64(w io.Writer, v float64) error {
	return binary.Write(w, binary.LittleEndian, v)
}

// ReadF64 reads one little-endian float64.
func ReadF64(r io.Reader) (float64, error) {
	var v float64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}
