// Package modelio defines the on-disk container for persisted detectors:
// a small versioned header naming the detector kind and carrying its
// configuration as JSON, followed by a kind-specific payload (network
// weights, tree ensembles, training points). The header makes a model
// file self-describing — the loader reconstructs the exact architecture
// without the caller re-specifying flags — while each detector package
// stays the owner of its payload encoding.
//
// Container layout (little-endian):
//
//	v1: magic "VMF1" | u32 kindLen | kind | u32 cfgLen | config JSON | payload…
//	v2: magic "VMF2" | u32 kindLen | kind | u32 dtypeLen | dtype | u32 cfgLen | config JSON | payload…
//
// The v2 header adds a dtype field naming the payload's numeric precision
// ("float64", "float32" or "int8"). Writers emit the v1 layout for float64
// payloads — so default-precision files stay byte-identical to the
// pre-dtype format — and v2 only for reduced precisions; readers accept
// both and report v1 files as float64.
//
// Files written before the container existed hold a bare nn payload
// (magic "VNN1"); readers sniff the magic and fall back, so old weight
// files keep loading.
package modelio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Magic opens every v1 (float64) container file.
const Magic = "VMF1"

// MagicV2 opens v2 container files, whose header carries a dtype field.
const MagicV2 = "VMF2"

// Payload dtype identifiers stored in v2 container headers.
const (
	DTypeFloat64 = "float64"
	DTypeFloat32 = "float32"
	DTypeInt8    = "int8"
)

// ValidDType reports whether s names a known payload precision.
func ValidDType(s string) bool {
	switch s {
	case DTypeFloat64, DTypeFloat32, DTypeInt8:
		return true
	}
	return false
}

// Detector kind identifiers stored in the container header.
const (
	KindVARADE  = "varade"
	KindAE      = "ae"
	KindARLSTM  = "arlstm"
	KindGBRF    = "gbrf"
	KindIForest = "iforest"
	KindKNN     = "knn"
)

const (
	maxHeaderField = 1 << 20 // sanity cap on kind/config lengths
	// maxSliceElems bounds length-prefixed payload slices (~1 GB of
	// float64) so a corrupt count field fails as a parse error instead
	// of a multi-gigabyte allocation.
	maxSliceElems = 1 << 27
)

// WriteHeader writes a v1 (float64) container header: magic, kind, and
// cfg serialised as JSON.
func WriteHeader(w io.Writer, kind string, cfg any) error {
	return WriteHeaderDType(w, kind, DTypeFloat64, cfg)
}

// WriteHeaderDType writes a container header for the given payload dtype.
// Float64 payloads use the v1 layout (byte-identical to pre-dtype files);
// reduced precisions use v2, which carries the dtype field.
func WriteHeaderDType(w io.Writer, kind, dtype string, cfg any) error {
	if dtype == "" {
		dtype = DTypeFloat64
	}
	if !ValidDType(dtype) {
		return fmt.Errorf("modelio: unknown dtype %q", dtype)
	}
	blob, err := json.Marshal(cfg)
	if err != nil {
		return fmt.Errorf("modelio: encoding config: %w", err)
	}
	if dtype == DTypeFloat64 {
		if _, err := io.WriteString(w, Magic); err != nil {
			return err
		}
		if err := WriteString(w, kind); err != nil {
			return err
		}
		return WriteBytes(w, blob)
	}
	if _, err := io.WriteString(w, MagicV2); err != nil {
		return err
	}
	if err := WriteString(w, kind); err != nil {
		return err
	}
	if err := WriteString(w, dtype); err != nil {
		return err
	}
	return WriteBytes(w, blob)
}

// ReadHeader reads a container header (either version) and returns the
// detector kind and raw config JSON. The reader is left positioned at the
// payload.
func ReadHeader(r io.Reader) (kind string, cfgJSON []byte, err error) {
	kind, _, cfgJSON, err = ReadHeaderDType(r)
	return kind, cfgJSON, err
}

// ReadHeaderDType reads a container header of either version and returns
// the detector kind, payload dtype (float64 for v1 files) and raw config
// JSON. The reader is left positioned at the payload.
func ReadHeaderDType(r io.Reader) (kind, dtype string, cfgJSON []byte, err error) {
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return "", "", nil, fmt.Errorf("modelio: reading magic: %w", err)
	}
	switch string(head) {
	case Magic:
		dtype = DTypeFloat64
	case MagicV2:
	default:
		return "", "", nil, fmt.Errorf("modelio: bad magic %q, want %q or %q", head, Magic, MagicV2)
	}
	if kind, err = ReadString(r); err != nil {
		return "", "", nil, fmt.Errorf("modelio: reading kind: %w", err)
	}
	if dtype == "" {
		if dtype, err = ReadString(r); err != nil {
			return "", "", nil, fmt.Errorf("modelio: reading dtype: %w", err)
		}
		if !ValidDType(dtype) {
			return "", "", nil, fmt.Errorf("modelio: unknown dtype %q", dtype)
		}
	}
	if cfgJSON, err = ReadBytes(r); err != nil {
		return "", "", nil, fmt.Errorf("modelio: reading config: %w", err)
	}
	return kind, dtype, cfgJSON, nil
}

// SaveFile writes a complete container to path: the header (kind + cfg)
// followed by whatever payload writes. It is the shared save framing for
// every detector serializer; payload receives a buffered writer that is
// flushed and the file closed before SaveFile returns.
func SaveFile(path, kind string, cfg any, payload func(io.Writer) error) error {
	return SaveFileDType(path, kind, DTypeFloat64, cfg, payload)
}

// SaveFileDType is SaveFile with an explicit payload dtype recorded in the
// header (float64 emits the v1 layout).
func SaveFileDType(path, kind, dtype string, cfg any, payload func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteHeaderDType(bw, kind, dtype, cfg); err != nil {
		f.Close()
		return err
	}
	if err := payload(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile opens a container, verifies the kind, decodes the config
// header into cfg, and hands the reader — positioned at the payload —
// to payload. It is the shared load framing for every detector
// serializer.
func LoadFile(path, kind string, cfg any, payload func(io.Reader) error) error {
	return LoadFileDType(path, kind, cfg, func(dtype string, r io.Reader) error {
		if dtype != DTypeFloat64 {
			return fmt.Errorf("modelio: %s holds a %s payload; this loader only supports float64", path, dtype)
		}
		return payload(r)
	})
}

// LoadFileDType is LoadFile for dtype-aware loaders: payload receives the
// header's dtype alongside the reader positioned at the payload.
func LoadFileDType(path, kind string, cfg any, payload func(dtype string, r io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	gotKind, dtype, cfgJSON, err := ReadHeaderDType(br)
	if err != nil {
		return err
	}
	if gotKind != kind {
		return fmt.Errorf("modelio: %s holds a %q model, want %q", path, gotKind, kind)
	}
	if err := Unmarshal(cfgJSON, cfg); err != nil {
		return err
	}
	return payload(dtype, br)
}

// SniffKind opens path and returns the detector kind from its header
// without reading the payload. Bare legacy weight files (magic "VNN1")
// report kind "" with a nil error.
func SniffKind(path string) (string, error) {
	kind, _, err := Sniff(path)
	return kind, err
}

// Sniff opens path and returns the detector kind and payload dtype from
// its header without reading the payload. Bare legacy weight files (magic
// "VNN1") report kind "" with a nil error.
func Sniff(path string) (kind, dtype string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", "", err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(len(Magic))
	if err != nil {
		return "", "", fmt.Errorf("modelio: %s: %w", path, err)
	}
	if string(head) != Magic && string(head) != MagicV2 {
		return "", "", nil
	}
	kind, dtype, _, err = ReadHeaderDType(br)
	return kind, dtype, err
}

// Unmarshal decodes header config JSON into cfg, rejecting unknown fields
// so config drift between writer and reader surfaces as an error.
func Unmarshal(cfgJSON []byte, cfg any) error {
	dec := json.NewDecoder(bytes.NewReader(cfgJSON))
	dec.DisallowUnknownFields()
	return dec.Decode(cfg)
}

// Binary payload helpers, shared by the detector serialisers.

// WriteU32 writes one little-endian uint32.
func WriteU32(w io.Writer, v uint32) error {
	return binary.Write(w, binary.LittleEndian, v)
}

// ReadU32 reads one little-endian uint32.
func ReadU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

// WriteString writes a length-prefixed string.
func WriteString(w io.Writer, s string) error {
	if err := WriteU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// ReadString reads a length-prefixed string.
func ReadString(r io.Reader) (string, error) {
	b, err := ReadBytes(r)
	return string(b), err
}

// WriteBytes writes a length-prefixed byte slice.
func WriteBytes(w io.Writer, b []byte) error {
	if err := WriteU32(w, uint32(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadBytes reads a length-prefixed byte slice.
func ReadBytes(r io.Reader) ([]byte, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxHeaderField {
		return nil, fmt.Errorf("modelio: field length %d exceeds cap", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteF64Slice writes a length-prefixed []float64.
func WriteF64Slice(w io.Writer, xs []float64) error {
	if err := WriteU32(w, uint32(len(xs))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range xs {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadF64Slice reads a length-prefixed []float64.
func ReadF64Slice(r io.Reader) ([]float64, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxSliceElems {
		return nil, fmt.Errorf("modelio: slice length %d exceeds cap", n)
	}
	xs := make([]float64, n)
	buf := make([]byte, 8)
	for i := range xs {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return xs, nil
}

// WriteI32Slice writes a length-prefixed []int32 rendered from ints.
func WriteI32Slice(w io.Writer, xs []int) error {
	if err := WriteU32(w, uint32(len(xs))); err != nil {
		return err
	}
	for _, v := range xs {
		if err := binary.Write(w, binary.LittleEndian, int32(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadI32Slice reads a length-prefixed []int32 back into ints.
func ReadI32Slice(r io.Reader) ([]int, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxSliceElems {
		return nil, fmt.Errorf("modelio: slice length %d exceeds cap", n)
	}
	xs := make([]int, n)
	for i := range xs {
		var v int32
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		xs[i] = int(v)
	}
	return xs, nil
}

// WriteF32Slice writes a length-prefixed []float32.
func WriteF32Slice(w io.Writer, xs []float32) error {
	if err := WriteU32(w, uint32(len(xs))); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, v := range xs {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadF32Slice reads a length-prefixed []float32.
func ReadF32Slice(r io.Reader) ([]float32, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxSliceElems {
		return nil, fmt.Errorf("modelio: slice length %d exceeds cap", n)
	}
	xs := make([]float32, n)
	buf := make([]byte, 4)
	for i := range xs {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		xs[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
	}
	return xs, nil
}

// WriteI8Slice writes a length-prefixed []int8 as raw bytes.
func WriteI8Slice(w io.Writer, xs []int8) error {
	if err := WriteU32(w, uint32(len(xs))); err != nil {
		return err
	}
	buf := make([]byte, len(xs))
	for i, v := range xs {
		buf[i] = byte(v)
	}
	_, err := w.Write(buf)
	return err
}

// ReadI8Slice reads a length-prefixed []int8.
func ReadI8Slice(r io.Reader) ([]int8, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxSliceElems {
		return nil, fmt.Errorf("modelio: slice length %d exceeds cap", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	xs := make([]int8, n)
	for i, b := range buf {
		xs[i] = int8(b)
	}
	return xs, nil
}

// WriteF64 writes one little-endian float64.
func WriteF64(w io.Writer, v float64) error {
	return binary.Write(w, binary.LittleEndian, v)
}

// ReadF64 reads one little-endian float64.
func ReadF64(r io.Reader) (float64, error) {
	var v float64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}
