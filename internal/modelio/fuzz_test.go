package modelio

import (
	"bytes"
	"testing"
)

// FuzzReadHeader feeds arbitrary bytes to the container-header parser:
// truncated, corrupt or oversized-field inputs must come back as errors —
// never a panic and never an allocation driven by an unvalidated length
// field. Valid headers must parse back to what was written.
func FuzzReadHeader(f *testing.F) {
	// Seed corpus: valid v1 and v2 headers, a bare legacy payload magic,
	// and adversarial length fields.
	var v1, v2 bytes.Buffer
	if err := WriteHeader(&v1, "varade", map[string]int{"Window": 8}); err != nil {
		f.Fatal(err)
	}
	if err := WriteHeaderDType(&v2, "varade", DTypeInt8, map[string]int{"Window": 8}); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:6]) // truncated mid-kind
	f.Add([]byte("VNN1"))
	f.Add([]byte("VMF1\xff\xff\xff\xff"))                   // kind length 4 GiB
	f.Add([]byte("VMF2\x02\x00\x00\x00ae\xff\xff\xff\x7f")) // dtype length 2 GiB
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, dtype, cfg, err := ReadHeaderDType(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !ValidDType(dtype) {
			t.Fatalf("accepted header with invalid dtype %q", dtype)
		}
		// A header the parser accepts must re-encode losslessly modulo the
		// config JSON (which is opaque bytes at this layer).
		if len(kind) > 1<<20 || len(cfg) > 1<<20 {
			t.Fatalf("accepted oversized header fields: kind %d cfg %d", len(kind), len(cfg))
		}
	})
}
