package edge

import (
	"strings"
	"testing"

	"varade/internal/tensor"
)

// TestProfileFleetScaling sanity-checks the fleet projection: capacity
// comes from the measured host throughput rescaled per board, demand
// scales with the fleet, and the stronger board hosts more devices.
func TestProfileFleetScaling(t *testing.T) {
	w := Workload{Name: "VARADE", Kind: KindNeural}
	const hostHz, sampleHz = 150000.0, 10.0
	nx := XavierNX().ProfileFleet(w, hostHz, 64, sampleHz)
	orin := AGXOrin().ProfileFleet(w, hostHz, 64, sampleHz)
	if nx.AggregateHz <= 0 || orin.AggregateHz <= nx.AggregateHz {
		t.Fatalf("aggregate ordering: NX %.0f, Orin %.0f", nx.AggregateHz, orin.AggregateHz)
	}
	if orin.MaxSessions <= nx.MaxSessions || nx.MaxSessions < 64 {
		t.Fatalf("max sessions: NX %d, Orin %d", nx.MaxSessions, orin.MaxSessions)
	}
	big := XavierNX().ProfileFleet(w, hostHz, 128, sampleHz)
	if big.Utilization <= nx.Utilization {
		t.Fatalf("doubling the fleet did not raise utilisation: %.4f vs %.4f", big.Utilization, nx.Utilization)
	}
	if nx.PowerW <= XavierNX().IdlePowerW {
		t.Fatalf("loaded power %.2f not above idle", nx.PowerW)
	}
}

// TestWriteFleetTableGolden pins the fleet projection table: both boards
// at both reduced precisions plus the zero-session edge case render
// exactly these rows (deterministic inputs, deterministic output).
func TestWriteFleetTableGolden(t *testing.T) {
	const hostHz, sampleHz = 150000.0, 10.0
	params := int64(5000)
	var rows []FleetReport
	for _, prec := range []string{"float64", "float32"} {
		w := Workload{Name: "VARADE", Kind: KindNeural, Precision: prec,
			ModelBytes: ModelBytesFor(params, prec)}
		rows = append(rows, XavierNX().ProfileFleet(w, hostHz, 64, sampleHz))
	}
	// Zero sessions: utilisation 0, idle-ish power, no NaNs.
	wz := Workload{Name: "VARADE", Kind: KindNeural, Precision: "int8",
		ModelBytes: ModelBytesFor(params, "int8")}
	rows = append(rows, AGXOrin().ProfileFleet(wz, hostHz, 0, sampleHz))

	var b strings.Builder
	WriteFleetTable(&b, rows)
	// Aggregate Hz derivation (XavierNX, neural): gpuFrac 0.85, so
	// boardSec = hostSec·0.15/0.6 + hostSec·0.85/4.0 = hostSec·0.4625 →
	// 150000/0.4625 = 324324. Orin: ·(0.15/1.3 + 0.85/8) → 676790.
	want := "" +
		"Board              Model      Prec      Model MB  Sessions  Sample Hz  Aggregate Hz   Util %  Max devices   Power W\n" +
		"-------------------------------------------------------------------------------------------------------------------\n" +
		"Jetson Xavier NX   VARADE     float64       0.04        64       10.0        324324      0.2        32432      5.86\n" +
		"Jetson Xavier NX   VARADE     float32       0.02        64       10.0        324324      0.2        32432      5.86\n" +
		"Jetson AGX Orin    VARADE     int8          0.01         0       10.0        676790      0.0        67678      7.52\n"
	if got := b.String(); got != want {
		t.Fatalf("fleet table drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestModelBytesFor checks the bytes-per-weight axis. int8 costs 2
// bytes per weight while serving: the stored value plus the packed
// qGEMM panel copy.
func TestModelBytesFor(t *testing.T) {
	if ModelBytesFor(1000, "float64") != 8000 ||
		ModelBytesFor(1000, "") != 8000 ||
		ModelBytesFor(1000, "float32") != 4000 ||
		ModelBytesFor(1000, "int8") != 2000 {
		t.Fatal("bytes-per-weight mapping wrong")
	}
}

// TestProfileFleetZeroSessions guards the degenerate inputs: no sessions
// and no measured throughput must produce finite fields.
func TestProfileFleetZeroSessions(t *testing.T) {
	w := Workload{Name: "VARADE", Kind: KindNeural}
	r := XavierNX().ProfileFleet(w, 0, 0, 0)
	if r.Utilization != 0 || r.MaxSessions != 0 || r.AggregateHz != 0 {
		t.Fatalf("zero inputs produced %+v", r)
	}
	if r.PowerW != XavierNX().IdlePowerW {
		t.Fatalf("idle fleet power %.3f, want idle draw %.3f", r.PowerW, XavierNX().IdlePowerW)
	}
}

func neuralWorkload(sec float64) Workload {
	return Workload{Name: "net", Kind: KindNeural, HostSecPerInf: sec,
		ModelBytes: 40e6, WorkingSetBytes: 5e6, AUCROC: 0.84}
}

func TestIdleRowsMatchTable2(t *testing.T) {
	x := XavierNX().IdleReport()
	if x.CPUPct != 36.465 || x.GPUPct != 52.100 || x.PowerW != 5.851 {
		t.Fatalf("Xavier idle row %+v does not match Table 2", x)
	}
	o := AGXOrin().IdleReport()
	if o.CPUPct != 4.875 || o.GPUPct != 0 || o.PowerW != 7.522 {
		t.Fatalf("Orin idle row %+v does not match Table 2", o)
	}
}

func TestOrinFasterThanXavier(t *testing.T) {
	w := neuralWorkload(0.05)
	hx := XavierNX().Profile(w).HzInf
	ho := AGXOrin().Profile(w).HzInf
	if ho <= hx {
		t.Fatalf("Orin (%g Hz) must outrun Xavier (%g Hz)", ho, hx)
	}
	// Table 2 shows roughly 2× across models; accept 1.5–3×.
	if r := ho / hx; r < 1.5 || r > 3 {
		t.Fatalf("Orin/Xavier ratio %g outside [1.5, 3]", r)
	}
}

func TestPowerAboveIdle(t *testing.T) {
	for _, p := range []Platform{XavierNX(), AGXOrin()} {
		for _, k := range []Kind{KindNeural, KindForest, KindSearch} {
			w := neuralWorkload(0.01)
			w.Kind = k
			r := p.Profile(w)
			if r.PowerW <= p.IdlePowerW {
				t.Fatalf("%s kind %d power %g not above idle %g", p.Name, k, r.PowerW, p.IdlePowerW)
			}
		}
	}
}

func TestSearchPlacementPolicy(t *testing.T) {
	w := neuralWorkload(0.05)
	w.Kind = KindSearch
	// Xavier offloads part of the search to the GPU; Orin keeps it on the
	// CPU and shows idle GPU (§4.4 observation about the TF planner).
	xr := XavierNX().Profile(w)
	or := AGXOrin().Profile(w)
	if or.GPUPct != AGXOrin().IdleGPUPct {
		t.Fatalf("Orin search GPU %g should stay at idle %g", or.GPUPct, AGXOrin().IdleGPUPct)
	}
	if xr.GPUPct <= XavierNX().IdleGPUPct {
		t.Fatal("Xavier search must touch the GPU")
	}
	// Search saturates CPUs on both boards.
	if or.CPUPct < 85 || xr.CPUPct < 85 {
		t.Fatalf("search CPU%% too low: Xavier %g Orin %g", xr.CPUPct, or.CPUPct)
	}
}

func TestNeuralUsesGPURAM(t *testing.T) {
	p := XavierNX()
	neural := p.Profile(neuralWorkload(0.05))
	forest := neuralWorkload(0.05)
	forest.Kind = KindForest
	fr := p.Profile(forest)
	if neural.GPURAMMB <= p.IdleGPURAM {
		t.Fatal("neural model must allocate GPU RAM")
	}
	if fr.GPURAMMB < p.IdleGPURAM {
		t.Fatal("GPU RAM cannot drop below idle")
	}
}

func TestHzInverseInHostTime(t *testing.T) {
	p := AGXOrin()
	fast := p.Profile(neuralWorkload(0.01)).HzInf
	slow := p.Profile(neuralWorkload(0.1)).HzInf
	if fast <= slow {
		t.Fatal("cheaper workload must run at higher Hz")
	}
	ratio := fast / slow
	if ratio < 9.9 || ratio > 10.1 {
		t.Fatalf("Hz must scale inversely with cost, ratio %g want 10", ratio)
	}
}

func TestAUCPassesThroughUnchanged(t *testing.T) {
	w := neuralWorkload(0.05)
	if got := XavierNX().Profile(w).AUCROC; got != w.AUCROC {
		t.Fatalf("AUC %g modified by board model", got)
	}
}

func TestCPUUtilisationCapped(t *testing.T) {
	w := neuralWorkload(0.01)
	w.Kind = KindSearch
	r := XavierNX().Profile(w)
	if r.CPUPct > 100 {
		t.Fatalf("CPU %g%% exceeds 100", r.CPUPct)
	}
}

type fixedDetector struct{ w int }

func (d *fixedDetector) Name() string                 { return "fixed" }
func (d *fixedDetector) WindowSize() int              { return d.w }
func (d *fixedDetector) Fit(*tensor.Tensor) error     { return nil }
func (d *fixedDetector) Score(*tensor.Tensor) float64 { return 1 }

func TestMeasureSecPerInf(t *testing.T) {
	series := tensor.New(100, 2)
	sec := MeasureSecPerInf(&fixedDetector{w: 4}, series, 50)
	if sec <= 0 || sec > 0.01 {
		t.Fatalf("implausible measured cost %g s", sec)
	}
}

func TestWriteTableLayout(t *testing.T) {
	var sb strings.Builder
	p := XavierNX()
	WriteTable(&sb, p.IdleReport(), []Report{p.Profile(neuralWorkload(0.05))})
	out := sb.String()
	for _, want := range []string{"Idle", "net", "AUC", "Hz", "Power"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	var sc strings.Builder
	WriteScatter(&sc, []Report{p.Profile(neuralWorkload(0.05))})
	if !strings.Contains(sc.String(), "Jetson Xavier NX") {
		t.Fatal("scatter missing board name")
	}
}
