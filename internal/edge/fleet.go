package edge

import (
	"fmt"
	"io"
	"strings"
)

// FleetReport projects the fleet-serving workload onto one board: how
// many device sessions a single board-hosted server sustains when
// windows are coalesced across sessions into batched forward passes.
type FleetReport struct {
	Board string
	Model string
	// Precision is the numeric precision the model serves at; it drives
	// the weight-memory column and labels the row.
	Precision string
	// ModelMB is the weight footprint at that precision, in megabytes.
	ModelMB  float64
	Sessions int
	// SampleHz is each device's stream rate (one window per sample once
	// the ring is primed).
	SampleHz float64
	// AggregateHz is the coalesced windows/s the board sustains for this
	// model.
	AggregateHz float64
	// Utilization is demanded/available throughput; above 1.0 the
	// admission queues shed load.
	Utilization float64
	// MaxSessions is the largest fleet the board hosts at SampleHz
	// without shedding.
	MaxSessions int
	PowerW      float64
}

// ProfileFleet maps a serving throughput measured on the benchmarking
// host (hostWindowsPerSec, e.g. from BenchmarkFleetServe) onto this
// board for a fleet of sessions devices each streaming at sampleHz.
// The board rescales the host throughput with the same CPU/GPU placement
// blend as Profile; power interpolates from idle to the fully-busy draw
// with utilisation.
func (p Platform) ProfileFleet(w Workload, hostWindowsPerSec float64, sessions int, sampleHz float64) FleetReport {
	gpuFrac := p.gpuFraction(w)
	aggregate := 0.0
	if hostWindowsPerSec > 0 {
		// Host seconds per window → board seconds per window, splitting
		// the work across CPU and GPU shares exactly as Profile does.
		hostSec := 1 / hostWindowsPerSec
		boardSec := hostSec*(1-gpuFrac)/p.CPUSpeed + hostSec*gpuFrac/p.GPUSpeed
		aggregate = 1 / boardSec
	}

	util, maxSessions := 0.0, 0
	if aggregate > 0 {
		util = float64(sessions) * sampleHz / aggregate
		if sampleHz > 0 {
			maxSessions = int(aggregate / sampleHz)
		}
	}
	busy := p.cpuCoresBusy(w, gpuFrac)
	scale := util
	if scale > 1 {
		scale = 1
	}
	power := p.IdlePowerW + scale*(busy*p.WattsPerCore+gpuFrac*p.WattsGPU)

	return FleetReport{
		Board:       p.Name,
		Model:       w.Name,
		Precision:   w.EffectivePrecision(),
		ModelMB:     float64(w.ModelBytes) / 1e6,
		Sessions:    sessions,
		SampleHz:    sampleHz,
		AggregateHz: aggregate,
		Utilization: util,
		MaxSessions: maxSessions,
		PowerW:      power,
	}
}

// WriteFleetTable renders fleet projections, one row per board and
// precision: the float64/float32/int8 rows sit side by side so the
// memory and throughput win of reduced precision reads straight off the
// table.
func WriteFleetTable(w io.Writer, rows []FleetReport) {
	fmt.Fprintf(w, "%-18s %-10s %-8s %9s %9s %10s %13s %8s %12s %9s\n",
		"Board", "Model", "Prec", "Model MB", "Sessions", "Sample Hz", "Aggregate Hz", "Util %", "Max devices", "Power W")
	fmt.Fprintln(w, strings.Repeat("-", 115))
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-10s %-8s %9.2f %9d %10.1f %13.0f %8.1f %12d %9.2f\n",
			r.Board, r.Model, r.Precision, r.ModelMB, r.Sessions, r.SampleHz, r.AggregateHz,
			100*r.Utilization, r.MaxSessions, r.PowerW)
	}
}
