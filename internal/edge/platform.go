// Package edge models the two evaluation boards of §4.3 — the NVIDIA
// Jetson Xavier NX and the Jetson AGX Orin — so the experiments can report
// the same columns as Table 2 (CPU %, GPU %, RAM, GPU RAM, power, AUC-ROC,
// inference frequency) without the physical hardware.
//
// The model is deliberately transparent: each detector's compute cost is
// *measured* on the host (wall-clock seconds per inference of the real Go
// implementation) and the platform profile only rescales it with a
// CPU/GPU speed factor and adds idle baselines calibrated to the paper's
// Idle rows. Relative ordering between detectors therefore comes from real
// measured work, not assumptions; only the absolute scale is modeled.
package edge

import "fmt"

// Kind classifies a workload for the board's placement policy, mirroring
// the TensorFlow planner behaviour reported in §4.4: neural models run on
// the GPU everywhere, while neighbour-search workloads run on the GPU on
// the 6-core Xavier NX but are placed on the CPU on the 12-core AGX Orin.
type Kind int

const (
	// KindNeural marks dense tensor models (VARADE, AR-LSTM, AE).
	KindNeural Kind = iota
	// KindForest marks tree ensembles (GBRF, Isolation Forest).
	KindForest
	// KindSearch marks neighbour searches (kNN).
	KindSearch
)

// Workload describes one detector's measured execution profile.
type Workload struct {
	// Name labels the report row.
	Name string
	// Kind drives the board's CPU/GPU placement policy.
	Kind Kind
	// HostSecPerInf is the measured wall-clock seconds per inference of
	// the Go implementation on the benchmarking host.
	HostSecPerInf float64
	// ModelBytes is the model's parameter/state size in bytes at the
	// serving precision (see ModelBytesFor).
	ModelBytes int64
	// WorkingSetBytes is the transient per-inference memory.
	WorkingSetBytes int64
	// AUCROC carries the accuracy measured on the test stream; the board
	// model reports it unchanged (accuracy is hardware-independent).
	AUCROC float64
	// Precision is the numeric precision inference runs at ("float64"
	// when empty): it labels report rows and sizes the weight footprint.
	Precision string
}

// EffectivePrecision resolves the empty default to float64.
func (w Workload) EffectivePrecision() string {
	if w.Precision == "" {
		return "float64"
	}
	return w.Precision
}

// BytesPerWeight returns the serving-resident cost of one scalar weight
// at the given precision: 8 (float64), 4 (float32) or 2 (int8: the
// stored byte plus the lazily-built qGEMM panel copy the kernels
// actually read — nn.QuantTensor.NumBytes counts both; the per-channel
// scale/zero-point overhead is amortised across a row and ignored here).
func BytesPerWeight(precision string) int {
	switch precision {
	case "float32":
		return 4
	case "int8":
		return 2
	default:
		return 8
	}
}

// ModelBytesFor projects a parameter count onto a serving precision — the
// bytes-per-weight axis the fleet tables expose.
func ModelBytesFor(params int64, precision string) int64 {
	return params * int64(BytesPerWeight(precision))
}

// Platform is one edge board. Idle values are calibrated to the Idle rows
// of Table 2.
type Platform struct {
	Name  string
	Cores int
	RAMMB float64

	IdleCPUPct float64
	IdleGPUPct float64
	IdleRAMMB  float64
	IdleGPURAM float64
	IdlePowerW float64

	// CPUSpeed and GPUSpeed are throughput multipliers relative to the
	// benchmarking host's single core.
	CPUSpeed float64
	GPUSpeed float64

	// WattsPerCore and WattsGPU convert utilisation into power draw.
	WattsPerCore float64
	WattsGPU     float64

	// SearchOnCPU reports whether neighbour-search workloads are placed on
	// the CPU (the many-core Orin) rather than the GPU (Xavier NX).
	SearchOnCPU bool
}

// XavierNX returns the Jetson Xavier NX profile (6 cores, 16 GB shared).
func XavierNX() Platform {
	return Platform{
		Name: "Jetson Xavier NX", Cores: 6, RAMMB: 16384,
		IdleCPUPct: 36.465, IdleGPUPct: 52.100,
		IdleRAMMB: 5130.219, IdleGPURAM: 537.235, IdlePowerW: 5.851,
		CPUSpeed: 0.6, GPUSpeed: 4.0,
		WattsPerCore: 1.3, WattsGPU: 4.5,
		SearchOnCPU: false,
	}
}

// AGXOrin returns the Jetson AGX Orin profile (12 cores, 32 GB shared).
func AGXOrin() Platform {
	return Platform{
		Name: "Jetson AGX Orin", Cores: 12, RAMMB: 32768,
		IdleCPUPct: 4.875, IdleGPUPct: 0,
		IdleRAMMB: 3916.715, IdleGPURAM: 243.289, IdlePowerW: 7.522,
		CPUSpeed: 1.3, GPUSpeed: 8.0,
		WattsPerCore: 1.1, WattsGPU: 3.2,
		SearchOnCPU: true,
	}
}

// Report is one row of Table 2.
type Report struct {
	Board    string
	Model    string
	CPUPct   float64
	GPUPct   float64
	RAMMB    float64
	GPURAMMB float64
	PowerW   float64
	AUCROC   float64
	HzInf    float64
}

// gpuFraction returns the share of the workload's compute the platform
// places on its GPU.
func (p Platform) gpuFraction(w Workload) float64 {
	switch w.Kind {
	case KindNeural:
		return 0.85
	case KindForest:
		return 0.15 // branchy trees barely vectorise
	case KindSearch:
		if p.SearchOnCPU {
			return 0
		}
		return 0.5
	default:
		panic(fmt.Sprintf("edge: unknown workload kind %d", w.Kind))
	}
}

// cpuCoresBusy returns how many cores the CPU share of the workload keeps
// busy. Neighbour search parallelises across cores and saturates them
// (§4.4 reports ~92 % CPU for kNN on both boards); everything else is
// effectively single-threaded inference plus the I/O loop.
func (p Platform) cpuCoresBusy(w Workload, gpuFrac float64) float64 {
	if w.Kind == KindSearch {
		return float64(p.Cores) * 0.9
	}
	return 1.0 * (1 - gpuFrac*0.5) // feeding the GPU still costs CPU
}

// Profile maps a measured workload onto this board.
func (p Platform) Profile(w Workload) Report {
	gpuFrac := p.gpuFraction(w)
	// Per-inference time on the board: the CPU part scales by CPUSpeed
	// (cross-core parallelism for search workloads), the GPU part by
	// GPUSpeed.
	cpuPart := w.HostSecPerInf * (1 - gpuFrac) / p.CPUSpeed
	if w.Kind == KindSearch {
		cpuPart /= float64(p.Cores) * 0.9
	}
	gpuPart := w.HostSecPerInf * gpuFrac / p.GPUSpeed
	boardSec := cpuPart + gpuPart

	busy := p.cpuCoresBusy(w, gpuFrac)
	cpuPct := p.IdleCPUPct + busy*100/float64(p.Cores)
	if cpuPct > 100 {
		cpuPct = 100
	}
	gpuPct := p.IdleGPUPct
	if gpuFrac > 0 {
		gpuPct += (100 - p.IdleGPUPct) * gpuFrac * 0.45
	}
	ram := p.IdleRAMMB + float64(w.ModelBytes+w.WorkingSetBytes)/1e6 + 120 // runtime overhead
	gpuRAM := p.IdleGPURAM
	if gpuFrac > 0 {
		gpuRAM += float64(w.ModelBytes)/1e6*1.5 + 180 // device copy + CUDA context
	}
	power := p.IdlePowerW + busy*p.WattsPerCore + gpuFrac*p.WattsGPU

	return Report{
		Board:    p.Name,
		Model:    w.Name,
		CPUPct:   cpuPct,
		GPUPct:   gpuPct,
		RAMMB:    ram,
		GPURAMMB: gpuRAM,
		PowerW:   power,
		AUCROC:   w.AUCROC,
		HzInf:    1 / boardSec,
	}
}

// IdleReport returns the board's idle row.
func (p Platform) IdleReport() Report {
	return Report{
		Board: p.Name, Model: "Idle",
		CPUPct: p.IdleCPUPct, GPUPct: p.IdleGPUPct,
		RAMMB: p.IdleRAMMB, GPURAMMB: p.IdleGPURAM, PowerW: p.IdlePowerW,
	}
}
