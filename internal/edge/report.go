package edge

import (
	"fmt"
	"io"
	"strings"
	"time"

	"varade/internal/detect"
	"varade/internal/tensor"
)

// MeasureSecPerInf times detector.Score on real windows from series and
// returns the mean wall-clock seconds per inference. It runs at least
// minReps scores (cycling through the series) so fast detectors are timed
// over enough work to be stable.
func MeasureSecPerInf(d detect.Detector, series *tensor.Tensor, minReps int) float64 {
	w := d.WindowSize()
	t := series.Dim(0)
	if t <= w {
		panic(fmt.Sprintf("edge: series length %d too short for window %d", t, w))
	}
	if minReps < 1 {
		minReps = 1
	}
	start := time.Now()
	reps := 0
	for reps < minReps {
		for i := w; i < t && reps < minReps; i += w + 1 {
			d.Score(series.SliceRows(i-w, i))
			reps++
		}
	}
	return time.Since(start).Seconds() / float64(reps)
}

// WriteTable renders reports in the layout of Table 2.
func WriteTable(w io.Writer, idle Report, rows []Report) {
	fmt.Fprintf(w, "%-18s %8s %8s %10s %12s %9s %8s %9s\n",
		"Model", "CPU %", "GPU %", "RAM MB", "GPU RAM MB", "Power W", "AUC", "Hz")
	fmt.Fprintln(w, strings.Repeat("-", 88))
	fmt.Fprintf(w, "%-18s %8.3f %8.3f %10.3f %12.3f %9.3f %8s %9s\n",
		idle.Model, idle.CPUPct, idle.GPUPct, idle.RAMMB, idle.GPURAMMB, idle.PowerW, ".", ".")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %8.3f %8.3f %10.3f %12.3f %9.3f %8.3f %9.3f\n",
			r.Model, r.CPUPct, r.GPUPct, r.RAMMB, r.GPURAMMB, r.PowerW, r.AUCROC, r.HzInf)
	}
}

// WriteScatter renders reports as the (Hz, AUC, power) series plotted in
// Figure 3 — one line per (board, model) point.
func WriteScatter(w io.Writer, rows []Report) {
	fmt.Fprintf(w, "%-18s %-18s %9s %8s %9s\n", "Board", "Model", "Hz", "AUC", "Power W")
	fmt.Fprintln(w, strings.Repeat("-", 68))
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-18s %9.3f %8.3f %9.3f\n", r.Board, r.Model, r.HzInf, r.AUCROC, r.PowerW)
	}
}
