package tensor

import (
	"sync/atomic"
	"testing"
)

func TestParallelCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023} {
		var hits atomic.Int64
		seen := make([]int32, n)
		Parallel(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
				hits.Add(1)
			}
		})
		if hits.Load() != int64(n) {
			t.Fatalf("n=%d: %d calls", n, hits.Load())
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelNested(t *testing.T) {
	// A parallel section whose body runs another parallel section must
	// complete without deadlock and cover both ranges fully.
	var total atomic.Int64
	Parallel(8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			Parallel(16, func(l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if total.Load() != 8*16 {
		t.Fatalf("nested coverage %d want %d", total.Load(), 8*16)
	}
}

func TestSetWorkers(t *testing.T) {
	old := SetWorkers(3)
	defer SetWorkers(old)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d want 3", Workers())
	}
	var n atomic.Int64
	Parallel(10, func(lo, hi int) { n.Add(int64(hi - lo)) })
	if n.Load() != 10 {
		t.Fatalf("covered %d want 10", n.Load())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("SetWorkers(0) must restore a positive default, got %d", Workers())
	}
}

func TestArenaReuseAndZeroing(t *testing.T) {
	a := GetArena()
	defer PutArena(a)
	x := a.Floats(8)
	for i := range x {
		x[i] = 42
	}
	y := a.Tensor(2, 3)
	if y.Dim(0) != 2 || y.Dim(1) != 3 {
		t.Fatalf("arena tensor shape %v", y.Shape())
	}
	for _, v := range y.Data() {
		if v != 0 {
			t.Fatal("arena tensor not zeroed")
		}
	}
	a.Reset()
	z := a.Floats(8)
	for _, v := range z {
		if v != 0 {
			t.Fatal("reused arena slice not re-zeroed")
		}
	}
}

func TestArenaGrowthKeepsOutstandingSlicesValid(t *testing.T) {
	a := &Arena[float64]{}
	first := a.Floats(4)
	first[0] = 7
	// Force growth well past the initial capacity; the early slice must
	// keep its contents (growth may not realloc under outstanding slices).
	for i := 0; i < 64; i++ {
		s := a.Floats(1024)
		s[0] = float64(i)
	}
	if first[0] != 7 {
		t.Fatalf("outstanding arena slice clobbered: %v", first[0])
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := NewRNG(5)
	a := RandNormal(rng, 0, 1, 37, 23)
	b := RandNormal(rng, 0, 1, 23, 41)
	dst := New(37, 41)
	dst.Fill(99) // Into must fully overwrite
	MatMulInto(dst, a, b)
	if !Equal(dst, MatMul(a, b), 0) {
		t.Fatal("MatMulInto diverges from MatMul")
	}
	// Large enough to cross the parallel threshold.
	a2 := RandNormal(rng, 0, 1, 130, 60)
	b2 := RandNormal(rng, 0, 1, 60, 130)
	got := MatMul(a2, b2)
	want := New(130, 130)
	for i := 0; i < 130; i++ {
		for j := 0; j < 130; j++ {
			s := 0.0
			for p := 0; p < 60; p++ {
				s += a2.At2(i, p) * b2.At2(p, j)
			}
			want.Set2(s, i, j)
		}
	}
	if !Equal(got, want, 1e-12) {
		t.Fatal("parallel MatMul numerically wrong")
	}
}
