//go:build !noasm

#include "textflag.h"

// AVX2 kernels for the int8 lane's elementwise passes (qrequant.go) and
// the qGEMM A-pack. All three are bit-identical to their portable
// counterparts on the documented domain (finite |v| < 2³¹): VCVTPS2DQ
// rounds nearest-even exactly like the scalar magic-constant trick, and
// the integer paths are exact.

// func quantChunksAVX2(dst []int8, src []float32, inv, zf float32) int64
//
// Quantizes the first 16·⌊len(src)/16⌋ elements: v·inv + zf, clip masks
// counted lane-wise (VPSUBD of the −1 compare masks), nearest-even round
// via VCVTPS2DQ, clamp with VPMINSD/VPMAXSD, then 16 dwords packed to 16
// bytes (saturating packs are exact — values already fit int8). The Go
// wrapper finishes the tail and adds its clips.
TEXT ·quantChunksAVX2(SB), NOSPLIT, $0-64
	MOVQ         dst_base+0(FP), DI
	MOVQ         src_base+24(FP), SI
	MOVQ         src_len+32(FP), BX
	VBROADCASTSS inv+48(FP), Y12
	VBROADCASTSS zf+52(FP), Y13
	MOVL         $0x42FF0000, AX // 127.5f
	MOVD         AX, X11
	VPBROADCASTD X11, Y11
	MOVL         $0xC3008000, AX // -128.5f
	MOVD         AX, X10
	VPBROADCASTD X10, Y10
	MOVL         $127, AX
	MOVD         AX, X9
	VPBROADCASTD X9, Y9
	MOVL         $-128, AX
	MOVD         AX, X8
	VPBROADCASTD X8, Y8
	VPXOR        Y7, Y7, Y7     // per-lane clip counters
	SHRQ         $4, BX
	JZ           qsum

qloop:
	VMOVUPS      (SI), Y0
	VMOVUPS      32(SI), Y1
	VMULPS       Y12, Y0, Y0
	VADDPS       Y13, Y0, Y0
	VMULPS       Y12, Y1, Y1
	VADDPS       Y13, Y1, Y1

	// Clip masks: (v >= 127.5) | (v <= -128.5); each true lane is -1,
	// so subtracting the mask increments the lane counter.
	VCMPPS       $0x0D, Y11, Y0, Y2 // GE_OS
	VCMPPS       $0x02, Y10, Y0, Y3 // LE_OS
	VORPS        Y3, Y2, Y2
	VPSUBD       Y2, Y7, Y7
	VCMPPS       $0x0D, Y11, Y1, Y2
	VCMPPS       $0x02, Y10, Y1, Y3
	VORPS        Y3, Y2, Y2
	VPSUBD       Y2, Y7, Y7

	VCVTPS2DQ    Y0, Y0
	VCVTPS2DQ    Y1, Y1
	VPMINSD      Y9, Y0, Y0
	VPMAXSD      Y8, Y0, Y0
	VPMINSD      Y9, Y1, Y1
	VPMAXSD      Y8, Y1, Y1

	// 16 dwords -> 16 ordered bytes.
	VPACKSSDW    Y1, Y0, Y0
	VPERMQ       $0xD8, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPACKSSWB    X1, X0, X0
	VMOVDQU      X0, (DI)

	ADDQ         $64, SI
	ADDQ         $16, DI
	DECQ         BX
	JNZ          qloop

qsum:
	VEXTRACTI128 $1, Y7, X1
	VPADDD       X1, X7, X7
	VPSHUFD      $0x4E, X7, X1
	VPADDD       X1, X7, X7
	VPSHUFD      $0xB1, X7, X1
	VPADDD       X1, X7, X7
	VMOVD        X7, AX
	MOVQ         AX, ret+56(FP)
	VZEROUPPER
	RET

// func requantPairsChunksAVX2(dst []int8, acc []int32, ld, pairs, n int,
//	zw, cw []int32, m, c []float32, zn int32) (hi, lo int64)
//
// The fused requant for n % 16 == 0: per output row u it reads acc rows
// 2u and 2u+1 (stride ld dwords, row sum at column n), applies
// corr = acc − zw·rs + cw, v = m·corr + c, rounds/clamps, floors at zn
// (the wrapper passes zn = −128 when no ReLU is fused, a no-op), and
// byte-interleaves the two rows into 2n contiguous dst bytes. High- and
// low-side saturations are counted separately so the wrapper can apply
// the ReLU clip rule.
TEXT ·requantPairsChunksAVX2(SB), NOSPLIT, $0-192
	MOVQ         dst_base+0(FP), DI
	MOVQ         acc_base+24(FP), SI
	MOVQ         ld+48(FP), R8
	SHLQ         $2, R8             // row stride, bytes
	MOVQ         pairs+56(FP), R9
	MOVQ         n+64(FP), R10
	SHLQ         $2, R10            // row-sum byte offset
	MOVQ         zw_base+72(FP), R11
	MOVQ         cw_base+96(FP), R12
	MOVQ         m_base+120(FP), R13
	SUBQ         R12, R13           // m as a delta off the cw cursor
	MOVQ         c_base+144(FP), R14
	SUBQ         R12, R14           // c likewise
	MOVL         $0x42FF0000, AX    // 127.5f
	MOVD         AX, X15
	VPBROADCASTD X15, Y15
	MOVL         $0xC3008000, AX    // -128.5f
	MOVD         AX, X14
	VPBROADCASTD X14, Y14
	MOVL         $127, AX
	MOVD         AX, X13
	VPBROADCASTD X13, Y13
	MOVL         $-128, AX
	MOVD         AX, X12
	VPBROADCASTD X12, Y12
	MOVL         zn+168(FP), AX
	MOVD         AX, X11
	VPBROADCASTD X11, Y11
	MOVL         $0xFF, AX
	MOVD         AX, X10
	VPBROADCASTD X10, Y10
	VPSLLD       $8, Y10, Y9        // 0xFF00
	VPXOR        Y6, Y6, Y6         // high-side clip counters
	VPXOR        Y5, Y5, Y5         // low-side clip counters
	TESTQ        R9, R9
	JZ           rpdone

rpair:
	VPBROADCASTD (SI)(R10*1), Y8    // rs, even row
	LEAQ         (SI)(R8*1), AX
	VPBROADCASTD (AX)(R10*1), Y7    // rs, odd row
	MOVQ         SI, AX             // acc chunk cursor (even row)
	MOVQ         R11, DX            // zw cursor
	MOVQ         R12, R15           // cw cursor (m, c ride as deltas)
	MOVQ         R10, CX
	SHRQ         $6, CX             // n/16 double-chunks

rchunk2:
	// Channels j..j+7, even row -> low bytes of the pairs.
	VMOVDQU      (DX), Y0
	VPMULLD      Y8, Y0, Y0
	VMOVDQU      (AX), Y1
	VPSUBD       Y0, Y1, Y1
	VPADDD       (R15), Y1, Y1
	VCVTDQ2PS    Y1, Y1
	VMULPS       (R15)(R13*1), Y1, Y1
	VADDPS       (R15)(R14*1), Y1, Y1
	VCMPPS       $0x0D, Y15, Y1, Y2
	VPSUBD       Y2, Y6, Y6
	VCMPPS       $0x02, Y14, Y1, Y2
	VPSUBD       Y2, Y5, Y5
	VCVTPS2DQ    Y1, Y1
	VPMINSD      Y13, Y1, Y1
	VPMAXSD      Y12, Y1, Y1
	VPMAXSD      Y11, Y1, Y1
	VPAND        Y10, Y1, Y3
	// Same channels, odd row -> high bytes.
	VMOVDQU      (DX), Y0
	VPMULLD      Y7, Y0, Y0
	VMOVDQU      (AX)(R8*1), Y1
	VPSUBD       Y0, Y1, Y1
	VPADDD       (R15), Y1, Y1
	VCVTDQ2PS    Y1, Y1
	VMULPS       (R15)(R13*1), Y1, Y1
	VADDPS       (R15)(R14*1), Y1, Y1
	VCMPPS       $0x0D, Y15, Y1, Y2
	VPSUBD       Y2, Y6, Y6
	VCMPPS       $0x02, Y14, Y1, Y2
	VPSUBD       Y2, Y5, Y5
	VCVTPS2DQ    Y1, Y1
	VPMINSD      Y13, Y1, Y1
	VPMAXSD      Y12, Y1, Y1
	VPMAXSD      Y11, Y1, Y1
	VPSLLD       $8, Y1, Y1
	VPAND        Y9, Y1, Y1
	VPOR         Y1, Y3, Y4         // 8 interleaved pairs, one per dword
	ADDQ         $32, AX
	ADDQ         $32, DX
	ADDQ         $32, R15

	// Channels j+8..j+15 (identical dance).
	VMOVDQU      (DX), Y0
	VPMULLD      Y8, Y0, Y0
	VMOVDQU      (AX), Y1
	VPSUBD       Y0, Y1, Y1
	VPADDD       (R15), Y1, Y1
	VCVTDQ2PS    Y1, Y1
	VMULPS       (R15)(R13*1), Y1, Y1
	VADDPS       (R15)(R14*1), Y1, Y1
	VCMPPS       $0x0D, Y15, Y1, Y2
	VPSUBD       Y2, Y6, Y6
	VCMPPS       $0x02, Y14, Y1, Y2
	VPSUBD       Y2, Y5, Y5
	VCVTPS2DQ    Y1, Y1
	VPMINSD      Y13, Y1, Y1
	VPMAXSD      Y12, Y1, Y1
	VPMAXSD      Y11, Y1, Y1
	VPAND        Y10, Y1, Y3
	VMOVDQU      (DX), Y0
	VPMULLD      Y7, Y0, Y0
	VMOVDQU      (AX)(R8*1), Y1
	VPSUBD       Y0, Y1, Y1
	VPADDD       (R15), Y1, Y1
	VCVTDQ2PS    Y1, Y1
	VMULPS       (R15)(R13*1), Y1, Y1
	VADDPS       (R15)(R14*1), Y1, Y1
	VCMPPS       $0x0D, Y15, Y1, Y2
	VPSUBD       Y2, Y6, Y6
	VCMPPS       $0x02, Y14, Y1, Y2
	VPSUBD       Y2, Y5, Y5
	VCVTPS2DQ    Y1, Y1
	VPMINSD      Y13, Y1, Y1
	VPMAXSD      Y12, Y1, Y1
	VPMAXSD      Y11, Y1, Y1
	VPSLLD       $8, Y1, Y1
	VPAND        Y9, Y1, Y1
	VPOR         Y1, Y3, Y3
	ADDQ         $32, AX
	ADDQ         $32, DX
	ADDQ         $32, R15

	// 16 pair-dwords -> 32 ordered bytes (pairs are 16-bit, in [0,0xFFFF],
	// so the unsigned-saturating word pack is exact).
	VPACKUSDW    Y3, Y4, Y0
	VPERMQ       $0xD8, Y0, Y0
	VMOVDQU      Y0, (DI)
	ADDQ         $32, DI
	DECQ         CX
	JNZ          rchunk2

	LEAQ         (SI)(R8*2), SI
	DECQ         R9
	JNZ          rpair

rpdone:
	VEXTRACTI128 $1, Y6, X1
	VPADDD       X1, X6, X6
	VPSHUFD      $0x4E, X6, X1
	VPADDD       X1, X6, X6
	VPSHUFD      $0xB1, X6, X1
	VPADDD       X1, X6, X6
	VMOVD        X6, AX
	MOVQ         AX, hi+176(FP)
	VEXTRACTI128 $1, Y5, X1
	VPADDD       X1, X5, X5
	VPSHUFD      $0x4E, X5, X1
	VPADDD       X1, X5, X5
	VPSHUFD      $0xB1, X5, X1
	VPADDD       X1, X5, X5
	VMOVD        X5, AX
	MOVQ         AX, lo+184(FP)
	VZEROUPPER
	RET

// func packA4x16AVX2(aP []int16, x []int8, k int)
//
// Packs the first 16·⌊k/16⌋ columns of four consecutive k-byte rows into
// the qGEMM int16 pair layout: per 16-column block, sign-extend each
// row's 16 bytes to words (8 pair-dwords per row), transpose the 4×8
// dword matrix with the unpack ladder, and store 8 pair-groups of
// 4 rows × 2 int16. The Go wrapper finishes the k tail.
TEXT ·packA4x16AVX2(SB), NOSPLIT, $0-56
	MOVQ        aP_base+0(FP), DI
	MOVQ        x_base+24(FP), SI
	MOVQ        k+48(FP), R8
	MOVQ        R8, BX
	SHRQ        $4, BX
	JZ          padone
	LEAQ        (R8)(R8*2), R9 // 3k

paloop:
	VPMOVSXBW   (SI), Y0
	VPMOVSXBW   (SI)(R8*1), Y1
	VPMOVSXBW   (SI)(R8*2), Y2
	VPMOVSXBW   (SI)(R9*1), Y3
	VPUNPCKLDQ  Y1, Y0, Y4
	VPUNPCKHDQ  Y1, Y0, Y5
	VPUNPCKLDQ  Y3, Y2, Y6
	VPUNPCKHDQ  Y3, Y2, Y7
	VPUNPCKLQDQ Y6, Y4, Y0     // pairs 0 | 4
	VPUNPCKHQDQ Y6, Y4, Y1     // pairs 1 | 5
	VPUNPCKLQDQ Y7, Y5, Y2     // pairs 2 | 6
	VPUNPCKHQDQ Y7, Y5, Y3     // pairs 3 | 7
	VPERM2I128  $0x20, Y1, Y0, Y4
	VPERM2I128  $0x20, Y3, Y2, Y5
	VPERM2I128  $0x31, Y1, Y0, Y6
	VPERM2I128  $0x31, Y3, Y2, Y7
	VMOVDQU     Y4, (DI)
	VMOVDQU     Y5, 32(DI)
	VMOVDQU     Y6, 64(DI)
	VMOVDQU     Y7, 96(DI)
	ADDQ        $16, SI
	ADDQ        $128, DI
	DECQ        BX
	JNZ         paloop

padone:
	VZEROUPPER
	RET
