package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(9), NewRNG(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds must produce equal streams")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(1)
	s := r.Split()
	// The split stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 50; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between split streams", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	n := 50000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %g too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(6)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandTensors(t *testing.T) {
	r := NewRNG(7)
	u := RandUniform(r, -1, 1, 10, 10)
	if u.Max() > 1 || u.Min() < -1 {
		t.Fatal("RandUniform out of range")
	}
	n := RandNormal(r, 5, 0.1, 1000)
	if math.Abs(n.Mean()-5) > 0.05 {
		t.Fatalf("RandNormal mean %g", n.Mean())
	}
}
