package tensor

// BLIS-style packed GEMM engine. Large products are computed by carving
// A and B into cache-blocked panels (copied once into contiguous, tile-
// aligned scratch buffers from the arena pool) and sweeping a register-
// blocked micro-kernel over the packed panels:
//
//	for jc over n in gemmNC columns:          B panel block
//	  for pc over k in gemmKC:                packed once per block
//	    packB: (kc × nc) → NR-column panels, p-major, zero-padded
//	    parallel over MR-row panels of A:     sharding unit = panel tile
//	      packA: (MR × kc) p-major panel (L1-resident)
//	      for each NR panel of B: micro-kernel C(MR×NR) += aP·bP
//
// The micro-kernel itself is swapped at runtime (see dispatch.go): a
// portable register-blocked Go kernel, or AVX2+FMA / NEON assembly when
// the CPU has it and neither the `noasm` build tag nor VARADE_NOASM is
// set. Tile sizes are fixed per element type — 8×8 float32, 4×4 float64 —
// so the packed layout is identical whichever kernel runs.
//
// Float64 ordering contract: every kernel (generic, AVX2, NEON, edge)
// accumulates each output element along a single chain in ascending-p
// order — exactly the summation order of the scalar loops in matmul.go —
// so the packed float64 path is bit-identical to the historical oracle.
// kc blocking preserves the chain because the kernel loads the partial C
// tile first and keeps accumulating in order. The float32 kernels are
// free to reassociate and fuse (the asm uses FMA); float32 is tolerance-
// gated, not bit-gated.
//
// MatMulTransAInto (the dW = xᵀ·dy gradient path) stays on its scalar
// kernel: it runs only during training, where float64 reproducibility
// matters more than the last 2× of throughput.

// Cache-blocking parameters. kc × MR panels of A stay L1-resident
// (256·8·4 B = 8 KiB float32); the packed B block (kc × nc) targets L2.
const (
	gemmKC = 256
	gemmNC = 256

	// packedMinWork is the m·k·n multiply-add count below which the
	// packing copies cannot be amortised and the scalar kernels win.
	packedMinWork = 64 * 64 * 64
)

// gemmTiles returns the micro-kernel tile (MR, NR) for element type T.
func gemmTiles[T Float]() (mr, nr int) {
	var z T
	if _, ok := any(z).(float32); ok {
		return 8, 8
	}
	return 4, 4
}

// usePacked reports whether the packed engine should run this product.
func usePacked(m, k, n int) bool {
	return m*k*n >= packedMinWork
}

// packAPanel copies rows [i0, i0+rows) × cols [pc, pc+kc) of a (row-major,
// stride lda) into aP in p-major tile order: aP[p*MR+ii] = a[i0+ii, pc+p].
// Rows past `rows` (edge of the matrix) are zero so the full-tile kernel
// geometry is uniform; edge tiles never read the padding lanes of C.
func packAPanel[T Float](aP, a []T, lda, i0, rows, pc, kc, mrTile int) {
	for ii := 0; ii < rows; ii++ {
		arow := a[(i0+ii)*lda+pc : (i0+ii)*lda+pc+kc]
		for p, v := range arow {
			aP[p*mrTile+ii] = v
		}
	}
	for ii := rows; ii < mrTile; ii++ {
		for p := 0; p < kc; p++ {
			aP[p*mrTile+ii] = 0
		}
	}
}

// packBPanels copies the (kc × nc) block of B at (pc, jc) into NR-column
// panels: panel q holds columns [jc+q·NR, …), p-major, zero-padded to NR.
// transB selects the source layout: false reads b as (k, n) row-major
// (MatMul), true reads b as (n, k) row-major and packs its rows as
// columns (MatMulTransB) — the packed form is identical, so one kernel
// serves both entry points.
func packBPanels[T Float](bP, b []T, ldb int, transB bool, pc, kc, jc, nc, nrTile int) {
	npan := (nc + nrTile - 1) / nrTile
	if !transB {
		for p := 0; p < kc; p++ {
			brow := b[(pc+p)*ldb+jc : (pc+p)*ldb+jc+nc]
			dst := bP[p*nrTile:]
			for q := 0; q < npan; q++ {
				j0 := q * nrTile
				nr := min(nrTile, nc-j0)
				pan := dst[q*kc*nrTile : q*kc*nrTile+nrTile]
				copy(pan, brow[j0:j0+nr])
				for jj := nr; jj < nrTile; jj++ {
					pan[jj] = 0
				}
			}
		}
		return
	}
	for q := 0; q < npan; q++ {
		j0 := q * nrTile
		nr := min(nrTile, nc-j0)
		pan := bP[q*kc*nrTile:]
		for jj := 0; jj < nr; jj++ {
			brow := b[(jc+j0+jj)*ldb+pc : (jc+j0+jj)*ldb+pc+kc]
			for p, v := range brow {
				pan[p*nrTile+jj] = v
			}
		}
		for jj := nr; jj < nrTile; jj++ {
			for p := 0; p < kc; p++ {
				pan[p*nrTile+jj] = 0
			}
		}
	}
}

// microEdge handles partial tiles (mr < MR or nr < NR) directly against
// C: one accumulator per element, ascending-p — the same chain as both
// the scalar loops and the full-tile kernels, so edges keep float64
// bit-exactness.
func microEdge[T Float](c []T, ldc int, aP, bP []T, kc, mrTile, nrTile, mr, nr int) {
	for i := 0; i < mr; i++ {
		crow := c[i*ldc : i*ldc+nr]
		for j := 0; j < nr; j++ {
			acc := crow[j]
			for p := 0; p < kc; p++ {
				acc += aP[p*mrTile+i] * bP[p*nrTile+j]
			}
			crow[j] = acc
		}
	}
}

// gemmPackedInto computes od = a·b (transB=false, b is (k,n)) or od =
// a·bᵀ (transB=true, b is (n,k)) through the packed engine. od must be
// fully distinct from a and b and have m·n elements.
func gemmPackedInto[T Float](od, ad, bd []T, m, n, k int, transB bool) {
	mrT, nrT := gemmTiles[T]()
	kern := microKernelFor[T]()
	clear(od)
	ldb := n
	if transB {
		ldb = k
	}
	rowPanels := (m + mrT - 1) / mrT
	ar := GetArenaOf[T]()
	defer PutArena(ar)
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		npan := (nc + nrT - 1) / nrT
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			// rawFloats: packB overwrites every element, padding included.
			bP := ar.rawFloats(npan * kc * nrT)
			packBPanels(bP, bd, ldb, transB, pc, kc, jc, nc, nrT)
			Parallel(rowPanels, func(lo, hi int) {
				war := GetArenaOf[T]()
				defer PutArena(war)
				aP := war.rawFloats(kc * mrT)
				for ir := lo; ir < hi; ir++ {
					i0 := ir * mrT
					mr := min(mrT, m-i0)
					packAPanel(aP, ad, k, i0, mr, pc, kc, mrT)
					for q := 0; q < npan; q++ {
						j0 := jc + q*nrT
						nr := min(nrT, n-j0)
						ct := od[i0*n+j0:]
						bq := bP[q*kc*nrT:]
						if mr == mrT && nr == nrT {
							kern(ct, n, aP, bq, kc)
						} else {
							microEdge(ct, n, aP, bq, kc, mrT, nrT, mr, nr)
						}
					}
				}
			})
		}
	}
}
