package tensor

import "fmt"

// Int8×int8 GEMM engine with exact int32 accumulation — the compute core
// of the true int8 inference lane. The contract mirrors the float packed
// engine (pack.go) but the arithmetic is integer, so *every* kernel
// (portable Go, AVX2, NEON) is bit-identical by construction: int32
// addition is exact and associative, and the raw products fit easily
// (|q| ≤ 127, so |acc| ≤ k·127² — see qgemmMaxK).
//
// The hot loop multiplies int8 activations against int8 weights packed
// once into B panels (QGemmPackB, the layout nn.QuantTensor.panels now
// produces) and accumulates into an int32 tile. Affine corrections
// (weight/activation zero points, row sums) and requantization happen in
// the caller once per output element — the kernel only ever sees the raw
// Σ qa·qb dot products.
//
// Tile geometry: MR=4 input rows × NR=16 output channels, with the k
// extent walked in pairs (KU=2). The pairing is what the SIMD kernels
// exploit: AVX2 sign-extends 16 packed weight bytes and VPMADDWDs them
// against a broadcast activation pair (two multiplies and an add per
// int32 lane in one instruction); NEON uses the widening SMLAL family
// against the same layout. The portable kernel walks the identical
// panels, so the packed format is one-per-matrix regardless of dispatch.
const (
	qgemmMR = 4
	qgemmNR = 16
	qgemmKU = 2

	// qgemmMaxK bounds the shared k extent: beyond it a worst-case
	// ascending dot could overflow the int32 accumulator. The extreme
	// product is (-128)² = 2^14, so k ≤ 2^16 keeps |acc| ≤ 2^30 with a
	// full bit of headroom. No VARADE layer is within two orders of
	// this, but the engine checks rather than assumes.
	qgemmMaxK = 1 << 16
)

// qgemmKP returns the packed pair count of a k extent (odd k gets one
// zero-padded slot).
func qgemmKP(k int) int { return (k + qgemmKU - 1) / qgemmKU }

// QGemmPackedLen returns the byte length of the packed B-panel form of a
// (rows, cols) int8 weight matrix: rows rounded up to whole NR panels,
// cols to whole pairs.
func QGemmPackedLen(rows, cols int) int {
	npan := (rows + qgemmNR - 1) / qgemmNR
	return npan * qgemmNR * qgemmKP(cols) * qgemmKU
}

// QGemmPackB packs a row-major int8 weight matrix w (rows × cols, rows =
// output channels) into the B-panel layout the qGEMM kernels consume:
//
//	dst[pan·(NR·kp·KU) + pp·(NR·KU) + ch·KU + kk] = w[(pan·NR+ch)·cols + pp·KU + kk]
//
// i.e. panel pan holds NR consecutive output channels, pair-major, with
// each channel's two k values adjacent (the VPMADDWD/SMLAL operand
// shape). Channel and k padding is zero, which contributes nothing to
// the integer dots. dst must have QGemmPackedLen(rows, cols) elements.
func QGemmPackB(dst, w []int8, rows, cols int) {
	if len(dst) != QGemmPackedLen(rows, cols) {
		panic(fmt.Sprintf("tensor: QGemmPackB dst %d, want %d", len(dst), QGemmPackedLen(rows, cols)))
	}
	kp := qgemmKP(cols)
	panLen := qgemmNR * kp * qgemmKU
	clear(dst)
	for r := 0; r < rows; r++ {
		pan, ch := r/qgemmNR, r%qgemmNR
		base := pan*panLen + ch*qgemmKU
		for p, v := range w[r*cols : (r+1)*cols] {
			dst[base+(p/qgemmKU)*(qgemmNR*qgemmKU)+p%qgemmKU] = v
		}
	}
}

// qgemmPackAGeneric is the portable A-pack: four full rows of x
// re-laid as sign-extended int16 pairs, aP[pp·(MR·KU) + i·KU + kk] =
// x[i·k + pp·KU + kk], with the odd-k pad slot zeroed.
func qgemmPackAGeneric(aP []int16, x []int8, k int) {
	kp := qgemmKP(k)
	for i := 0; i < qgemmMR; i++ {
		row := x[i*k : (i+1)*k]
		for p, v := range row {
			aP[(p/qgemmKU)*qgemmMR*qgemmKU+i*qgemmKU+p%qgemmKU] = int16(v)
		}
		if k%qgemmKU != 0 {
			aP[(kp-1)*qgemmMR*qgemmKU+i*qgemmKU+1] = 0
		}
	}
}

// QGemmTransB computes the raw integer products out[i·rows+r] =
// Σ_k x[i·k+c]·w[r,c] for row-major int8 activations x (m × k) against
// a weight matrix packed by QGemmPackB. out is m × rows, int32,
// overwritten. The affine dequantization corrections are the caller's
// business — this is exactly the Σ qx·qw term of the quantized GEMM
// identity, bit-identical across every kernel family.
func QGemmTransB(out []int32, x []int8, bP []int8, m, k, rows int) {
	if k > qgemmMaxK {
		panic(fmt.Sprintf("tensor: QGemmTransB k=%d exceeds int32 accumulator headroom (max %d)", k, qgemmMaxK))
	}
	if len(x) < m*k || len(out) < m*rows {
		panic("tensor: QGemmTransB slice lengths inconsistent with shape")
	}
	kp := qgemmKP(k)
	npan := (rows + qgemmNR - 1) / qgemmNR
	if len(bP) != npan*qgemmNR*kp*qgemmKU {
		panic(fmt.Sprintf("tensor: QGemmTransB packed B %d, want %d", len(bP), npan*qgemmNR*kp*qgemmKU))
	}
	kern := qgemmKern
	packA := qgemmPackA
	panLen := qgemmNR * kp * qgemmKU
	blocks := (m + qgemmMR - 1) / qgemmMR
	// Full MR×NR tiles accumulate straight into out (the kernels load
	// the C tile first), which needs out zeroed up front; ragged edges
	// still go through a local tile and a copy.
	clear(out[:m*rows])
	body := func(lo, hi int) {
		// The A block is re-packed per 4-row sweep into sign-extended
		// int16 pairs (the operand width the multiply-accumulate
		// instructions consume): aP[pp·(MR·KU) + i·KU + kk] = x[i0+i, pp·KU+kk].
		aP := make([]int16, kp*qgemmMR*qgemmKU)
		var tile [qgemmMR * qgemmNR]int32
		for blk := lo; blk < hi; blk++ {
			i0 := blk * qgemmMR
			mr := min(qgemmMR, m-i0)
			if mr == qgemmMR {
				packA(aP, x[i0*k:(i0+qgemmMR)*k], k)
			} else {
				for i := 0; i < qgemmMR; i++ {
					if i >= mr {
						for pp := 0; pp < kp; pp++ {
							aP[pp*qgemmMR*qgemmKU+i*qgemmKU] = 0
							aP[pp*qgemmMR*qgemmKU+i*qgemmKU+1] = 0
						}
						continue
					}
					row := x[(i0+i)*k : (i0+i)*k+k]
					for p, v := range row {
						aP[(p/qgemmKU)*qgemmMR*qgemmKU+i*qgemmKU+p%qgemmKU] = int16(v)
					}
					if k%qgemmKU != 0 {
						aP[(kp-1)*qgemmMR*qgemmKU+i*qgemmKU+1] = 0
					}
				}
			}
			for q := 0; q < npan; q++ {
				r0 := q * qgemmNR
				nr := min(qgemmNR, rows-r0)
				if mr == qgemmMR && nr == qgemmNR {
					kern(out[i0*rows+r0:], rows, aP, bP[q*panLen:(q+1)*panLen], kp)
					continue
				}
				clear(tile[:])
				kern(tile[:], qgemmNR, aP, bP[q*panLen:(q+1)*panLen], kp)
				for i := 0; i < mr; i++ {
					copy(out[(i0+i)*rows+r0:(i0+i)*rows+r0+nr], tile[i*qgemmNR:i*qgemmNR+nr])
				}
			}
		}
	}
	if m*k*rows < parallelFlopThreshold {
		body(0, blocks)
		return
	}
	Parallel(blocks, body)
}
