package tensor

// Runtime micro-kernel dispatch. The packed engine (pack.go) calls
// whatever kernels these package variables hold: the portable generic
// kernels by default, upgraded once at init by the GOARCH-gated files
// (microkernel_amd64.go, microkernel_arm64.go) when the CPU supports the
// assembly path and it is not disabled. Two switches force the portable
// path:
//
//   - build tag `noasm` — the assembly files are excluded entirely, so
//     the binary cannot contain the asm kernels;
//   - env VARADE_NOASM (any non-empty value) — the asm is present but
//     the init hook leaves the generic kernels installed.
//
// A micro-kernel computes C(tile) += aP·bP over kc packed steps:
// c[i*ldc+j] += Σ_p aP[p*MR+i]·bP[p*NR+j], loading the C tile first and
// accumulating each element along a single ascending-p chain (the
// float64 bit-exactness contract; see pack.go).
var (
	gemmKern32 func(c []float32, ldc int, aP, bP []float32, kc int) = gemmKernelGeneric32
	gemmKern64 func(c []float64, ldc int, aP, bP []float64, kc int) = gemmKernelGeneric64

	// gemmKernelName names the installed kernel family ("generic",
	// "avx2", "neon") so benchmarks and CI logs can record which path
	// produced their numbers.
	gemmKernelName = "generic"
)

// GemmKernelName reports which micro-kernel family the packed GEMM
// engine dispatches to on this process: "avx2", "neon" or "generic".
func GemmKernelName() string { return gemmKernelName }

// microKernelFor resolves the active micro-kernel at element type T.
func microKernelFor[T Float]() func(c []T, ldc int, aP, bP []T, kc int) {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(gemmKern32).(func(c []T, ldc int, aP, bP []T, kc int))
	}
	return any(gemmKern64).(func(c []T, ldc int, aP, bP []T, kc int))
}

// The portable kernels hold one C row in registers per pass — eight
// (float32) or four (float64) accumulators plus the broadcast A value
// stays inside the sixteen FP registers of every 64-bit target, so the
// hot loop never spills. Each accumulator is a single ascending-p chain,
// which is what keeps the float64 instantiation bit-exact against the
// scalar oracle. The A panel is re-streamed once per row; at kc ≤ 256 it
// is L1-resident by construction.

// gemmKernelGeneric32 is the portable 8×8 float32 micro-kernel over the
// same packed panels the AVX2/NEON kernels consume.
func gemmKernelGeneric32(c []float32, ldc int, aP, bP []float32, kc int) {
	for i := 0; i < 8; i++ {
		row := c[i*ldc : i*ldc+8]
		c0, c1, c2, c3 := row[0], row[1], row[2], row[3]
		c4, c5, c6, c7 := row[4], row[5], row[6], row[7]
		ao, bo := i, 0
		for p := 0; p < kc; p++ {
			av := aP[ao]
			bv := bP[bo : bo+8 : bo+8]
			c0 += av * bv[0]
			c1 += av * bv[1]
			c2 += av * bv[2]
			c3 += av * bv[3]
			c4 += av * bv[4]
			c5 += av * bv[5]
			c6 += av * bv[6]
			c7 += av * bv[7]
			ao += 8
			bo += 8
		}
		row[0], row[1], row[2], row[3] = c0, c1, c2, c3
		row[4], row[5], row[6], row[7] = c4, c5, c6, c7
	}
}

// gemmKernelGeneric64 is the portable 4×4 float64 micro-kernel,
// order-exact against the scalar loops.
func gemmKernelGeneric64(c []float64, ldc int, aP, bP []float64, kc int) {
	for i := 0; i < 4; i++ {
		row := c[i*ldc : i*ldc+4]
		c0, c1, c2, c3 := row[0], row[1], row[2], row[3]
		ao, bo := i, 0
		for p := 0; p < kc; p++ {
			av := aP[ao]
			bv := bP[bo : bo+4 : bo+4]
			c0 += av * bv[0]
			c1 += av * bv[1]
			c2 += av * bv[2]
			c3 += av * bv[3]
			ao += 4
			bo += 4
		}
		row[0], row[1], row[2], row[3] = c0, c1, c2, c3
	}
}
