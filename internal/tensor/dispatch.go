package tensor

// Runtime micro-kernel dispatch. The packed engine (pack.go) calls
// whatever kernels these package variables hold: the portable generic
// kernels by default, upgraded once at init by the GOARCH-gated files
// (microkernel_amd64.go, microkernel_arm64.go) when the CPU supports the
// assembly path and it is not disabled. Two switches force the portable
// path:
//
//   - build tag `noasm` — the assembly files are excluded entirely, so
//     the binary cannot contain the asm kernels;
//   - env VARADE_NOASM (any non-empty value) — the asm is present but
//     the init hook leaves the generic kernels installed.
//
// A micro-kernel computes C(tile) += aP·bP over kc packed steps:
// c[i*ldc+j] += Σ_p aP[p*MR+i]·bP[p*NR+j], loading the C tile first and
// accumulating each element along a single ascending-p chain (the
// float64 bit-exactness contract; see pack.go).
var (
	gemmKern32 func(c []float32, ldc int, aP, bP []float32, kc int) = gemmKernelGeneric32
	gemmKern64 func(c []float64, ldc int, aP, bP []float64, kc int) = gemmKernelGeneric64

	// qgemmKern is the int8×int8 micro-kernel of the quantized engine
	// (qgemm.go): acc(4×16, int32) += Σ_pp aP(pair)·bP(panel pair).
	// Accumulation is exact integer arithmetic, so every implementation
	// is bit-identical — dispatch here is purely a throughput choice.
	qgemmKern func(acc []int32, ldc int, aP []int16, bP []int8, kp int) = qgemmKernelGeneric

	// qgemmPackA packs four full consecutive activation rows (x holds
	// exactly 4·k int8 values) into the sign-extended int16 pair layout
	// the qGEMM micro-kernel broadcasts from:
	// aP[pp·8 + i·2 + kk] = x[i·k + pp·2 + kk], odd-k pad slot zeroed.
	// Pure data movement, so every implementation is bit-identical.
	qgemmPackA func(aP []int16, x []int8, k int) = qgemmPackAGeneric

	// quantAffineKern / requantPairsKern are the elementwise int8-lane
	// kernels (qrequant.go): activation quantization and the fused
	// GEMM-output requantization. Bit-identical across implementations
	// for finite |v| < 2³¹ — see the qrequant.go contract.
	quantAffineKern  func(dst []int8, src []float32, inv, zf float32) int                                                    = quantAffineGeneric
	requantPairsKern func(dst []int8, acc []int32, ld, pairs, n int, zw, cw []int32, m, c []float32, zn int8, relu bool) int = requantPairsGeneric

	// dotKern32 is the small-product float32 TransB dot kernel: products
	// under the packing threshold call it once per output element.
	// Float32 is tolerance-gated, so implementations may reassociate
	// and fuse freely.
	dotKern32 func(a, b []float32) float32 = dotKernelGeneric32

	// transBKern64 is the small-product float64 TransB kernel: dst[j] =
	// Σ_p a[p]·b[j·ldb+p] for four B rows, each output element a single
	// ascending-p accumulator chain — the float64 bit-exactness
	// contract, SIMD'd across the four output columns rather than along
	// k so the per-element order never changes.
	transBKern64 func(dst, a, b []float64, ldb int) = transBKernelGeneric64

	// gemmKernelName names the installed kernel family ("generic",
	// "avx2", "neon") so benchmarks and CI logs can record which path
	// produced their numbers. qgemmKernelName does the same for the
	// int8 engine (the families can differ: e.g. an AVX-but-not-AVX2
	// host, or a future SDOT-gated NEON variant).
	gemmKernelName  = "generic"
	qgemmKernelName = "generic"
)

// GemmKernelName reports which micro-kernel family the packed GEMM
// engine dispatches to on this process: "avx2", "neon" or "generic".
func GemmKernelName() string { return gemmKernelName }

// QGemmKernelName reports which micro-kernel family the int8 qGEMM
// engine dispatches to on this process: "avx2", "neon" or "generic".
func QGemmKernelName() string { return qgemmKernelName }

// microKernelFor resolves the active micro-kernel at element type T.
func microKernelFor[T Float]() func(c []T, ldc int, aP, bP []T, kc int) {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(gemmKern32).(func(c []T, ldc int, aP, bP []T, kc int))
	}
	return any(gemmKern64).(func(c []T, ldc int, aP, bP []T, kc int))
}

// The portable kernels hold one C row in registers per pass — eight
// (float32) or four (float64) accumulators plus the broadcast A value
// stays inside the sixteen FP registers of every 64-bit target, so the
// hot loop never spills. Each accumulator is a single ascending-p chain,
// which is what keeps the float64 instantiation bit-exact against the
// scalar oracle. The A panel is re-streamed once per row; at kc ≤ 256 it
// is L1-resident by construction.

// gemmKernelGeneric32 is the portable 8×8 float32 micro-kernel over the
// same packed panels the AVX2/NEON kernels consume.
func gemmKernelGeneric32(c []float32, ldc int, aP, bP []float32, kc int) {
	for i := 0; i < 8; i++ {
		row := c[i*ldc : i*ldc+8]
		c0, c1, c2, c3 := row[0], row[1], row[2], row[3]
		c4, c5, c6, c7 := row[4], row[5], row[6], row[7]
		ao, bo := i, 0
		for p := 0; p < kc; p++ {
			av := aP[ao]
			bv := bP[bo : bo+8 : bo+8]
			c0 += av * bv[0]
			c1 += av * bv[1]
			c2 += av * bv[2]
			c3 += av * bv[3]
			c4 += av * bv[4]
			c5 += av * bv[5]
			c6 += av * bv[6]
			c7 += av * bv[7]
			ao += 8
			bo += 8
		}
		row[0], row[1], row[2], row[3] = c0, c1, c2, c3
		row[4], row[5], row[6], row[7] = c4, c5, c6, c7
	}
}

// gemmKernelGeneric64 is the portable 4×4 float64 micro-kernel,
// order-exact against the scalar loops.
func gemmKernelGeneric64(c []float64, ldc int, aP, bP []float64, kc int) {
	for i := 0; i < 4; i++ {
		row := c[i*ldc : i*ldc+4]
		c0, c1, c2, c3 := row[0], row[1], row[2], row[3]
		ao, bo := i, 0
		for p := 0; p < kc; p++ {
			av := aP[ao]
			bv := bP[bo : bo+4 : bo+4]
			c0 += av * bv[0]
			c1 += av * bv[1]
			c2 += av * bv[2]
			c3 += av * bv[3]
			ao += 4
			bo += 4
		}
		row[0], row[1], row[2], row[3] = c0, c1, c2, c3
	}
}

// qgemmKernelGeneric is the portable 4×16 int8 micro-kernel over the
// qGEMM pair panels (qgemm.go): acc[i·ldc+j] += Σ_pp aP-pair(i)·bP-pair(j).
// Exact int32 arithmetic, so it is bit-identical to the SIMD kernels by
// construction — the cross-kernel suite checks equality, not tolerance.
func qgemmKernelGeneric(acc []int32, ldc int, aP []int16, bP []int8, kp int) {
	for i := 0; i < 4; i++ {
		row := acc[i*ldc : i*ldc+16]
		for pp := 0; pp < kp; pp++ {
			a0 := int32(aP[pp*8+i*2])
			a1 := int32(aP[pp*8+i*2+1])
			bq := bP[pp*32 : pp*32+32 : pp*32+32]
			for j := 0; j < 16; j++ {
				row[j] += a0*int32(bq[j*2]) + a1*int32(bq[j*2+1])
			}
		}
	}
}

// dotKernelGeneric32 is the portable float32 small-product dot: four
// independent accumulator chains break the FP-add latency dependency
// (the historical small-TransB fast path, now behind the dispatch var so
// AVX2/NEON can replace it with wide FMA dots).
func dotKernelGeneric32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	p := 0
	for ; p+4 <= len(a); p += 4 {
		s0 += a[p] * b[p]
		s1 += a[p+1] * b[p+1]
		s2 += a[p+2] * b[p+2]
		s3 += a[p+3] * b[p+3]
	}
	for ; p < len(a); p++ {
		s0 += a[p] * b[p]
	}
	return (s0 + s1) + (s2 + s3)
}

// transBKernelGeneric64 is the portable four-column float64 TransB
// kernel. Each dst[j] is one ascending-p chain — identical rounding to
// the scalar loops, just four chains advanced together.
func transBKernelGeneric64(dst, a, b []float64, ldb int) {
	k := len(a)
	b0 := b[0:k:k]
	b1 := b[ldb : ldb+k : ldb+k]
	b2 := b[2*ldb : 2*ldb+k : 2*ldb+k]
	b3 := b[3*ldb : 3*ldb+k : 3*ldb+k]
	var s0, s1, s2, s3 float64
	for p, av := range a {
		s0 += av * b0[p]
		s1 += av * b1[p]
		s2 += av * b2[p]
		s3 += av * b3[p]
	}
	dst[0], dst[1], dst[2], dst[3] = s0, s1, s2, s3
}
