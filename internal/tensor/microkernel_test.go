package tensor

import (
	"fmt"
	"math"
	"testing"
)

// Cross-kernel equivalence: the packed engine must agree with the scalar
// loops under every kernel family — bit-for-bit at float64 (the oracle
// contract), within 1e-4 relative at float32 — across shapes that are
// not multiples of the tile sizes and shapes that cross the gemmKC/NC
// cache-block boundaries (where the ascending-k chain is easiest to
// break). Under `-tags noasm` the same tests prove the portable generic
// path is complete on its own.

// oddShapes stresses tile edges (m,n,k ∤ MR/NR) and block boundaries
// (k > gemmKC, n > gemmNC).
var oddShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 7},
	{8, 8, 8},
	{9, 13, 10},
	{13, 17, 11},
	{5, 300, 3},    // k crosses gemmKC with a tail
	{7, 512, 9},    // k exactly two blocks
	{66, 30, 70},   // m and n edges on 8- and 4-wide tiles
	{70, 260, 270}, // k and n cross blocks together
}

// refGEMM is an independent scalar reference with the oracle summation
// order: one accumulator per element, ascending k.
func refGEMM[T Float](a, b *Dense[T], transB bool) *Dense[T] {
	m, k := a.Dim(0), a.Dim(1)
	var n int
	if transB {
		n = b.Dim(0)
	} else {
		n = b.Dim(1)
	}
	out := NewOf[T](m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc T
			for p := 0; p < k; p++ {
				if transB {
					acc += a.At2(i, p) * b.At2(j, p)
				} else {
					acc += a.At2(i, p) * b.At2(p, j)
				}
			}
			out.Set2(acc, i, j)
		}
	}
	return out
}

// withGenericKernels runs f with the portable micro-kernels installed,
// restoring the active (possibly asm) kernels afterwards.
func withGenericKernels(f func()) {
	old32, old64, oldName := gemmKern32, gemmKern64, gemmKernelName
	gemmKern32, gemmKern64, gemmKernelName = gemmKernelGeneric32, gemmKernelGeneric64, "generic"
	defer func() { gemmKern32, gemmKern64, gemmKernelName = old32, old64, oldName }()
	f()
}

func packedInto[T Float](a, b *Dense[T], transB bool) *Dense[T] {
	m := a.Dim(0)
	n := b.Dim(1)
	if transB {
		n = b.Dim(0)
	}
	out := NewOf[T](m, n)
	gemmPackedInto(out.Data(), a.Data(), b.Data(), m, n, a.Dim(1), transB)
	return out
}

func checkF64Bitwise(t *testing.T, ctx string, got, want *Dense[float64]) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
			t.Fatalf("%s: element %d = %x, oracle %x (not bit-identical)", ctx, i, gd[i], wd[i])
		}
	}
}

func checkF32Close(t *testing.T, ctx string, got, want *Dense[float32]) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		diff := math.Abs(float64(gd[i]) - float64(wd[i]))
		scale := math.Max(1, math.Abs(float64(wd[i])))
		if diff/scale > 1e-4 {
			t.Fatalf("%s: element %d = %g, reference %g (rel err %g)", ctx, i, gd[i], wd[i], diff/scale)
		}
	}
}

func TestPackedGEMMEquivalence(t *testing.T) {
	for _, s := range oddShapes {
		for _, transB := range []bool{false, true} {
			name := fmt.Sprintf("%dx%dx%d/transB=%v", s.m, s.k, s.n, transB)
			t.Run(name, func(t *testing.T) {
				rng := NewRNG(uint64(s.m*1000 + s.k*10 + s.n))
				a64 := RandNormal(rng, 0, 1, s.m, s.k)
				bs := []int{s.k, s.n}
				if transB {
					bs = []int{s.n, s.k}
				}
				b64 := RandNormal(rng, 0, 1, bs...)
				a32, b32 := Convert[float32](a64), Convert[float32](b64)
				want64 := refGEMM(a64, b64, transB)
				want32 := refGEMM(a32, b32, transB)

				// Active kernels (asm when the CPU has it).
				checkF64Bitwise(t, gemmKernelName+"/f64", packedInto(a64, b64, transB), want64)
				checkF32Close(t, gemmKernelName+"/f32", packedInto(a32, b32, transB), want32)

				// Portable kernels, and asm-vs-generic agreement.
				withGenericKernels(func() {
					gen64 := packedInto(a64, b64, transB)
					checkF64Bitwise(t, "generic/f64", gen64, want64)
					checkF32Close(t, "generic/f32", packedInto(a32, b32, transB), want32)
				})
			})
		}
	}
}

// TestPackedDispatchThreshold pins the public entry points: a product
// over the packing threshold must produce the oracle result through
// MatMulInto/MatMulTransBInto exactly as the sub-threshold scalar loops
// do.
func TestPackedDispatchThreshold(t *testing.T) {
	rng := NewRNG(7)
	a := RandNormal(rng, 0, 1, 65, 66)
	b := RandNormal(rng, 0, 1, 66, 67)
	if !usePacked(65, 66, 67) {
		t.Fatalf("usePacked(65,66,67) = false, want the packed engine for this size")
	}
	checkF64Bitwise(t, "MatMulInto", MatMul(a, b), refGEMM(a, b, false))
	bt := RandNormal(rng, 0, 1, 67, 66)
	checkF64Bitwise(t, "MatMulTransBInto", MatMulTransB(a, bt), refGEMM(a, bt, true))
}

// TestGemmKernelName sanity-checks the dispatch report so CI logs can
// trust it; run with -v to see which kernel a runner dispatched.
func TestGemmKernelName(t *testing.T) {
	switch GemmKernelName() {
	case "avx2", "neon", "generic":
		t.Logf("gemm kernel dispatch: %s", GemmKernelName())
	default:
		t.Fatalf("GemmKernelName() = %q, want avx2|neon|generic", GemmKernelName())
	}
}

// FuzzPackedGEMM drives random shapes (including degenerate and
// tile-misaligned ones) through both kernel families against the scalar
// reference.
func FuzzPackedGEMM(f *testing.F) {
	f.Add(uint8(9), uint8(13), uint8(10), false, uint64(1))
	f.Add(uint8(8), uint8(8), uint8(8), true, uint64(2))
	f.Add(uint8(1), uint8(255), uint8(3), false, uint64(3))
	f.Fuzz(func(t *testing.T, m8, k8, n8 uint8, transB bool, seed uint64) {
		m, k, n := int(m8)%48+1, int(k8)+1, int(n8)%48+1
		rng := NewRNG(seed)
		a := RandNormal(rng, 0, 1, m, k)
		bs := []int{k, n}
		if transB {
			bs = []int{n, k}
		}
		b := RandNormal(rng, 0, 1, bs...)
		a32, b32 := Convert[float32](a), Convert[float32](b)
		want64 := refGEMM(a, b, transB)
		want32 := refGEMM(a32, b32, transB)
		checkF64Bitwise(t, "active/f64", packedInto(a, b, transB), want64)
		checkF32Close(t, "active/f32", packedInto(a32, b32, transB), want32)
		withGenericKernels(func() {
			checkF64Bitwise(t, "generic/f64", packedInto(a, b, transB), want64)
			checkF32Close(t, "generic/f32", packedInto(a32, b32, transB), want32)
		})
	})
}
