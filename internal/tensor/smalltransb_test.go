package tensor

import (
	"fmt"
	"testing"
)

// The small-product TransB fast path (products under the packing
// threshold) dispatches per-element kernels instead of scalar loops:
// dotKern32 at float32 and the four-column transBKern64 at float64. The
// float64 kernel carries the same bit-exactness contract as the packed
// engine — each output element one ascending-p chain — so it is checked
// for equality against the oracle; float32 is tolerance-gated.

// smallShapes stay under packedMinWork so MatMulTransBInto takes the
// dispatched small path: k tails across the 4-wide (f64) and 8/16-wide
// (f32) SIMD strides, n tails across the four-column grouping.
var smallShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 4, 4},
	{2, 7, 5},  // k and n both ragged
	{3, 8, 12}, // aligned k, n multiple of 4
	{4, 15, 9}, // 8+4+3 tail at f32, 3·4+3 at f64
	{5, 16, 13},
	{2, 33, 21},
	{7, 40, 30},
}

// withGenericSmallKernels runs f with the portable small-product
// kernels installed, restoring the active (possibly asm) ones after.
func withGenericSmallKernels(f func()) {
	oldDot, oldTB := dotKern32, transBKern64
	dotKern32, transBKern64 = dotKernelGeneric32, transBKernelGeneric64
	defer func() { dotKern32, transBKern64 = oldDot, oldTB }()
	f()
}

func TestSmallTransBEquivalence(t *testing.T) {
	for _, s := range smallShapes {
		t.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(t *testing.T) {
			if usePacked(s.m, s.k, s.n) {
				t.Fatalf("shape is not a small product; test wants the non-packed path")
			}
			rng := NewRNG(uint64(s.m*1000 + s.k*10 + s.n))
			a64 := RandNormal(rng, 0, 1, s.m, s.k)
			b64 := RandNormal(rng, 0, 1, s.n, s.k)
			a32, b32 := Convert[float32](a64), Convert[float32](b64)
			want64 := refGEMM(a64, b64, true)
			want32 := refGEMM(a32, b32, true)

			checkF64Bitwise(t, "active/f64", MatMulTransB(a64, b64), want64)
			checkF32Close(t, "active/f32", MatMulTransB(a32, b32), want32)
			withGenericSmallKernels(func() {
				checkF64Bitwise(t, "generic/f64", MatMulTransB(a64, b64), want64)
				checkF32Close(t, "generic/f32", MatMulTransB(a32, b32), want32)
			})
		})
	}
}

// TestTransBKernel64DirectBitwise exercises the four-column float64
// kernel directly against an ascending-p scalar chain, at every k from
// the degenerate 0 through two SIMD quads plus tails — the off-by-one
// surface of the asm quad loop and its Go tail.
func TestTransBKernel64DirectBitwise(t *testing.T) {
	for k := 0; k <= 11; k++ {
		rng := NewRNG(uint64(100 + k))
		a := RandNormal(rng, 0, 1, max(k, 1)).Data()[:k]
		ldb := k + 3 // rows padded: kernel must honour ldb, not k
		b := RandNormal(rng, 0, 1, 4*ldb+1).Data()
		var want [4]float64
		for j := 0; j < 4; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[p] * b[j*ldb+p]
			}
			want[j] = s
		}
		var got [4]float64
		transBKern64(got[:], a, b, ldb)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("k=%d: dst[%d] = %v, oracle %v (not bit-identical)", k, j, got[j], want[j])
			}
		}
	}
}

// FuzzSmallTransB drives random sub-threshold shapes through the active
// and generic small-product kernels.
func FuzzSmallTransB(f *testing.F) {
	f.Add(uint8(4), uint8(15), uint8(9), uint64(1))
	f.Add(uint8(1), uint8(255), uint8(3), uint64(2))
	f.Fuzz(func(t *testing.T, m8, k8, n8 uint8, seed uint64) {
		m, k, n := int(m8)%8+1, int(k8)+1, int(n8)%24+1
		if usePacked(m, k, n) {
			t.Skip("packed path; covered by FuzzPackedGEMM")
		}
		rng := NewRNG(seed)
		a64 := RandNormal(rng, 0, 1, m, k)
		b64 := RandNormal(rng, 0, 1, n, k)
		a32, b32 := Convert[float32](a64), Convert[float32](b64)
		want64 := refGEMM(a64, b64, true)
		want32 := refGEMM(a32, b32, true)
		checkF64Bitwise(t, "active/f64", MatMulTransB(a64, b64), want64)
		checkF32Close(t, "active/f32", MatMulTransB(a32, b32), want32)
		withGenericSmallKernels(func() {
			checkF64Bitwise(t, "generic/f64", MatMulTransB(a64, b64), want64)
			checkF32Close(t, "generic/f32", MatMulTransB(a32, b32), want32)
		})
	})
}
