package tensor

import (
	"fmt"
	"math"
)

// Elementwise and reduction kernels. Everything is generic over the Float
// constraint; a float64 instantiation performs exactly the arithmetic of
// the original concrete implementation, so existing float64 call sites are
// bit-compatible.

// Add returns a + b elementwise.
func Add[T Float](a, b *Dense[T]) *Dense[T] {
	assertSameShape("Add", a, b)
	out := NewOf[T](a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub[T Float](a, b *Dense[T]) *Dense[T] {
	assertSameShape("Sub", a, b)
	out := NewOf[T](a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul[T Float](a, b *Dense[T]) *Dense[T] {
	assertSameShape("Mul", a, b)
	out := NewOf[T](a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Div returns a / b elementwise.
func Div[T Float](a, b *Dense[T]) *Dense[T] {
	assertSameShape("Div", a, b)
	out := NewOf[T](a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] / b.data[i]
	}
	return out
}

// AddInPlace sets a += b and returns a.
func AddInPlace[T Float](a, b *Dense[T]) *Dense[T] {
	assertSameShape("AddInPlace", a, b)
	for i := range a.data {
		a.data[i] += b.data[i]
	}
	return a
}

// SubInPlace sets a -= b and returns a.
func SubInPlace[T Float](a, b *Dense[T]) *Dense[T] {
	assertSameShape("SubInPlace", a, b)
	for i := range a.data {
		a.data[i] -= b.data[i]
	}
	return a
}

// Scale returns a * s.
func Scale[T Float](a *Dense[T], s T) *Dense[T] {
	out := NewOf[T](a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// ScaleInPlace sets a *= s and returns a.
func ScaleInPlace[T Float](a *Dense[T], s T) *Dense[T] {
	for i := range a.data {
		a.data[i] *= s
	}
	return a
}

// AXPY sets y += alpha*x and returns y.
func AXPY[T Float](alpha T, x, y *Dense[T]) *Dense[T] {
	assertSameShape("AXPY", x, y)
	for i := range x.data {
		y.data[i] += alpha * x.data[i]
	}
	return y
}

// Apply returns f applied to every element.
func Apply[T Float](a *Dense[T], f func(T) T) *Dense[T] {
	out := NewOf[T](a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// ApplyInPlace applies f to every element in place and returns a.
func ApplyInPlace[T Float](a *Dense[T], f func(T) T) *Dense[T] {
	for i := range a.data {
		a.data[i] = f(a.data[i])
	}
	return a
}

// Fill sets every element to v.
func (t *Dense[T]) Fill(v T) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Dense[T]) Zero() { t.Fill(0) }

// CopyFrom copies src's elements into t. Shapes must match.
func (t *Dense[T]) CopyFrom(src *Dense[T]) {
	assertSameShape("CopyFrom", t, src)
	copy(t.data, src.data)
}

// Sum returns the sum of all elements, accumulated in T.
func (t *Dense[T]) Sum() T {
	var s T
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Dense[T]) Mean() T { return t.Sum() / T(len(t.data)) }

// Max returns the largest element.
func (t *Dense[T]) Max() T {
	m := T(math.Inf(-1))
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element.
func (t *Dense[T]) Min() T {
	m := T(math.Inf(1))
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the largest element.
func (t *Dense[T]) ArgMax() int {
	best, bi := T(math.Inf(-1)), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Norm returns the Euclidean (L2) norm of all elements, accumulated in
// float64 regardless of T.
func (t *Dense[T]) Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot[T Float](a, b *Dense[T]) T {
	assertSameShape("Dot", a, b)
	var s T
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// Clamp limits every element to [lo, hi] in place and returns t.
func (t *Dense[T]) Clamp(lo, hi T) *Dense[T] {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
	return t
}

// MeanAxis0 returns, for a 2-D tensor of shape (n, c), the length-c vector
// of per-column means.
func MeanAxis0[T Float](a *Dense[T]) *Dense[T] {
	if len(a.shape) != 2 {
		panic("tensor: MeanAxis0 needs a 2-D tensor")
	}
	n, c := a.shape[0], a.shape[1]
	out := NewOf[T](c)
	for i := 0; i < n; i++ {
		row := a.data[i*c : (i+1)*c]
		for j, v := range row {
			out.data[j] += v
		}
	}
	ScaleInPlace(out, 1/T(n))
	return out
}

// MinMaxAxis0 returns, for a 2-D tensor of shape (n, c), per-column minima
// and maxima as two length-c vectors.
func MinMaxAxis0[T Float](a *Dense[T]) (mins, maxs *Dense[T]) {
	if len(a.shape) != 2 {
		panic("tensor: MinMaxAxis0 needs a 2-D tensor")
	}
	n, c := a.shape[0], a.shape[1]
	mins = FullOf(T(math.Inf(1)), c)
	maxs = FullOf(T(math.Inf(-1)), c)
	for i := 0; i < n; i++ {
		row := a.data[i*c : (i+1)*c]
		for j, v := range row {
			if v < mins.data[j] {
				mins.data[j] = v
			}
			if v > maxs.data[j] {
				maxs.data[j] = v
			}
		}
	}
	return mins, maxs
}

// Stack concatenates 1-D tensors of equal length into a 2-D tensor whose
// row i is rows[i].
func Stack[T Float](rows []*Dense[T]) *Dense[T] {
	if len(rows) == 0 {
		panic("tensor: Stack of no rows")
	}
	c := rows[0].Len()
	out := NewOf[T](len(rows), c)
	for i, r := range rows {
		if r.Len() != c {
			panic(fmt.Sprintf("tensor: Stack row %d has %d elements, want %d", i, r.Len(), c))
		}
		copy(out.data[i*c:(i+1)*c], r.data)
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D[T Float](a *Dense[T]) *Dense[T] {
	if len(a.shape) != 2 {
		panic("tensor: Transpose2D needs a 2-D tensor")
	}
	n, c := a.shape[0], a.shape[1]
	out := NewOf[T](c, n)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			out.data[j*n+i] = a.data[i*c+j]
		}
	}
	return out
}
