package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	assertSameShape("Div", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] / b.data[i]
	}
	return out
}

// AddInPlace sets a += b and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	assertSameShape("AddInPlace", a, b)
	for i := range a.data {
		a.data[i] += b.data[i]
	}
	return a
}

// SubInPlace sets a -= b and returns a.
func SubInPlace(a, b *Tensor) *Tensor {
	assertSameShape("SubInPlace", a, b)
	for i := range a.data {
		a.data[i] -= b.data[i]
	}
	return a
}

// Scale returns a * s.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// ScaleInPlace sets a *= s and returns a.
func ScaleInPlace(a *Tensor, s float64) *Tensor {
	for i := range a.data {
		a.data[i] *= s
	}
	return a
}

// AXPY sets y += alpha*x and returns y.
func AXPY(alpha float64, x, y *Tensor) *Tensor {
	assertSameShape("AXPY", x, y)
	for i := range x.data {
		y.data[i] += alpha * x.data[i]
	}
	return y
}

// Apply returns f applied to every element.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// ApplyInPlace applies f to every element in place and returns a.
func ApplyInPlace(a *Tensor, f func(float64) float64) *Tensor {
	for i := range a.data {
		a.data[i] = f(a.data[i])
	}
	return a
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// CopyFrom copies src's elements into t. Shapes must match.
func (t *Tensor) CopyFrom(src *Tensor) {
	assertSameShape("CopyFrom", t, src)
	copy(t.data, src.data)
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// Max returns the largest element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the largest element.
func (t *Tensor) ArgMax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Norm returns the Euclidean (L2) norm of all elements.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	assertSameShape("Dot", a, b)
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// Clamp limits every element to [lo, hi] in place and returns t.
func (t *Tensor) Clamp(lo, hi float64) *Tensor {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
	return t
}

// MeanAxis0 returns, for a 2-D tensor of shape (n, c), the length-c vector
// of per-column means.
func MeanAxis0(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: MeanAxis0 needs a 2-D tensor")
	}
	n, c := a.shape[0], a.shape[1]
	out := New(c)
	for i := 0; i < n; i++ {
		row := a.data[i*c : (i+1)*c]
		for j, v := range row {
			out.data[j] += v
		}
	}
	ScaleInPlace(out, 1/float64(n))
	return out
}

// MinMaxAxis0 returns, for a 2-D tensor of shape (n, c), per-column minima
// and maxima as two length-c vectors.
func MinMaxAxis0(a *Tensor) (mins, maxs *Tensor) {
	if len(a.shape) != 2 {
		panic("tensor: MinMaxAxis0 needs a 2-D tensor")
	}
	n, c := a.shape[0], a.shape[1]
	mins = Full(math.Inf(1), c)
	maxs = Full(math.Inf(-1), c)
	for i := 0; i < n; i++ {
		row := a.data[i*c : (i+1)*c]
		for j, v := range row {
			if v < mins.data[j] {
				mins.data[j] = v
			}
			if v > maxs.data[j] {
				maxs.data[j] = v
			}
		}
	}
	return mins, maxs
}

// Stack concatenates 1-D tensors of equal length into a 2-D tensor whose
// row i is rows[i].
func Stack(rows []*Tensor) *Tensor {
	if len(rows) == 0 {
		panic("tensor: Stack of no rows")
	}
	c := rows[0].Len()
	out := New(len(rows), c)
	for i, r := range rows {
		if r.Len() != c {
			panic(fmt.Sprintf("tensor: Stack row %d has %d elements, want %d", i, r.Len(), c))
		}
		copy(out.data[i*c:(i+1)*c], r.data)
	}
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: Transpose2D needs a 2-D tensor")
	}
	n, c := a.shape[0], a.shape[1]
	out := New(c, n)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			out.data[j*n+i] = a.data[i*c+j]
		}
	}
	return out
}
