package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64) used
// throughout the library so that every experiment is reproducible from a
// single seed. It is not safe for concurrent use; give each goroutine its
// own RNG via Split.
type RNG struct {
	state   uint64
	hasNorm bool
	norm    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent generator from r, advancing r once.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller, cached pair).
func (r *RNG) NormFloat64() float64 {
	if r.hasNorm {
		r.hasNorm = false
		return r.norm
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.norm = mag * math.Sin(2*math.Pi*v)
	r.hasNorm = true
	return mag * math.Cos(2*math.Pi*v)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// RandUniform returns a tensor with elements drawn uniformly from [lo, hi).
func RandUniform(r *RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = r.Uniform(lo, hi)
	}
	return t
}

// RandNormal returns a tensor with elements drawn from N(mean, std²).
func RandNormal(r *RNG, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*r.NormFloat64()
	}
	return t
}
