package tensor

import "fmt"

// Elementwise kernels of the int8 inference lane, dispatch-upgraded like
// the GEMM micro-kernels (dispatch.go): affine float32 → int8 activation
// quantization, and the fused requantization that turns a quantized
// GEMM's int32 accumulators straight into the next stage's int8
// activations. Both run once per activation element per stage, so on
// small models they cost more than the GEMMs they surround — which is
// why they dispatch to SIMD instead of staying scalar glue.
//
// Every implementation is bit-identical to the portable one for finite
// inputs with |v| < 2³¹ (rounding is nearest-even in all of them:
// the scalar magic-constant trick and VCVTPS2DQ agree); tests compare
// equality, not tolerance. Calibrated scales keep real activations
// orders of magnitude inside that domain.

// quantRoundMagic rounds a float32 to nearest-even when added and
// subtracted: 1.5·2²³ puts any |v| ≲ 2²² into the [2²³, 2²⁴) binade,
// where the representable floats are exactly the integers. Two adds and
// no data-dependent branch — the sign test a half-away-from-zero round
// would need mispredicts on zero-mean activations.
const quantRoundMagic = float32(12582912)

// QuantClamp rounds v (already scaled and offset by the zero point) to
// nearest-even and clamps to int8, reporting whether the value
// saturated — the event the calibration report's clipped fraction
// counts. The guards are cold for calibrated scales.
func QuantClamp(v float32) (int8, bool) {
	if v >= 127.5 {
		return 127, true
	}
	if v <= -128.5 {
		return -128, true
	}
	return int8(int32((v + quantRoundMagic) - quantRoundMagic)), false
}

// QuantizeAffine quantizes src elementwise into dst — dst[i] =
// clamp(round(src[i]·inv + zf)) — and returns how many elements
// saturated. dst must be at least as long as src.
func QuantizeAffine(dst []int8, src []float32, inv, zf float32) int {
	if len(dst) < len(src) {
		panic(fmt.Sprintf("tensor: QuantizeAffine dst %d shorter than src %d", len(dst), len(src)))
	}
	return quantAffineKern(dst, src, inv, zf)
}

// quantAffineGeneric is the portable QuantizeAffine kernel.
func quantAffineGeneric(dst []int8, src []float32, inv, zf float32) int {
	clipped := 0
	for i, v := range src {
		q, c := QuantClamp(v*inv + zf)
		dst[i] = q
		if c {
			clipped++
		}
	}
	return clipped
}

// RequantPairs2 requantizes 2·pairs rows of a quantized GEMM's int32
// output into pairs int8 rows of 2·n bytes each, even/odd source rows
// byte-interleaved:
//
//	dst[u·2n + j·2 + r] = requant(acc[(2u+r)·ld + j])    r = 0, 1
//
// where requant applies the per-channel affine correction
// corr = acc − zw[j]·rs + cw[j], v = m[j]·corr + c[j], rounds, clamps to
// int8, and (when relu) floors the result at zn. rs is the row's own
// activation sum, read from acc column n — the synthetic all-ones output
// channel the nn layer packs after the real ones (ld > n).
//
// The interleave is exactly the im2col layout of a following stride-2
// kernel-2 convolution, so for the VARADE trunk one call per stage
// writes the next stage's A-matrix directly. Returns the lossy-clip
// count: high-side saturations always, low-side only without relu (a
// fused ReLU floors those values exactly as the float lane does).
func RequantPairs2(dst []int8, acc []int32, ld, pairs, n int, zw, cw []int32, m, c []float32, zn int8, relu bool) int {
	if pairs == 0 || n == 0 {
		return 0
	}
	if ld <= n {
		panic(fmt.Sprintf("tensor: RequantPairs2 ld %d must exceed n %d (row-sum column)", ld, n))
	}
	if need := (2*pairs-1)*ld + n + 1; len(acc) < need {
		panic(fmt.Sprintf("tensor: RequantPairs2 acc %d, need %d", len(acc), need))
	}
	if len(dst) < pairs*2*n {
		panic(fmt.Sprintf("tensor: RequantPairs2 dst %d, need %d", len(dst), pairs*2*n))
	}
	if len(zw) < n || len(cw) < n || len(m) < n || len(c) < n {
		panic("tensor: RequantPairs2 per-channel tables shorter than n")
	}
	return requantPairsKern(dst, acc, ld, pairs, n, zw, cw, m, c, zn, relu)
}

// requantPairsGeneric is the portable RequantPairs2 kernel.
func requantPairsGeneric(dst []int8, acc []int32, ld, pairs, n int, zw, cw []int32, m, c []float32, zn int8, relu bool) int {
	clipped := 0
	for u := 0; u < pairs; u++ {
		out := dst[u*2*n : (u+1)*2*n]
		for r := 0; r < 2; r++ {
			row := acc[(2*u+r)*ld : (2*u+r)*ld+n]
			rs := acc[(2*u+r)*ld+n]
			for j, a := range row {
				corr := a - zw[j]*rs + cw[j]
				q, cl := QuantClamp(m[j]*float32(corr) + c[j])
				if cl && (!relu || q == 127) {
					clipped++
				}
				if relu && q < zn {
					q = zn
				}
				out[j*2+r] = q
			}
		}
	}
	return clipped
}
