//go:build !noasm

#include "textflag.h"

// func gemmKernel8x8NEON(c []float32, ldc int, aP, bP []float32, kc int)
//
// 8×8 float32 micro-kernel. The C tile lives in V0–V15 (two 4-lane
// registers per row) across the kc loop; each step loads the 8-wide
// packed B row into V16/V17 and the 8 A values into V18/V19, then
// broadcasts one A lane per row and FMLAs it against the B row.
TEXT ·gemmKernel8x8NEON(SB), NOSPLIT, $0-88
	MOVD c_base+0(FP), R0
	MOVD ldc+24(FP), R4
	MOVD aP_base+32(FP), R1
	MOVD bP_base+56(FP), R2
	MOVD kc+80(FP), R3
	LSL  $2, R4              // row stride in bytes

	// Load the C tile.
	MOVD R0, R5
	VLD1 (R5), [V0.S4, V1.S4]
	ADD  R4, R5
	VLD1 (R5), [V2.S4, V3.S4]
	ADD  R4, R5
	VLD1 (R5), [V4.S4, V5.S4]
	ADD  R4, R5
	VLD1 (R5), [V6.S4, V7.S4]
	ADD  R4, R5
	VLD1 (R5), [V8.S4, V9.S4]
	ADD  R4, R5
	VLD1 (R5), [V10.S4, V11.S4]
	ADD  R4, R5
	VLD1 (R5), [V12.S4, V13.S4]
	ADD  R4, R5
	VLD1 (R5), [V14.S4, V15.S4]

	CBZ R3, store32

loop32:
	VLD1.P 32(R2), [V16.S4, V17.S4] // b row: 8 float32
	VLD1.P 32(R1), [V18.S4, V19.S4] // a lanes: 8 float32
	VDUP   V18.S[0], V20.S4
	VFMLA  V20.S4, V16.S4, V0.S4
	VFMLA  V20.S4, V17.S4, V1.S4
	VDUP   V18.S[1], V21.S4
	VFMLA  V21.S4, V16.S4, V2.S4
	VFMLA  V21.S4, V17.S4, V3.S4
	VDUP   V18.S[2], V20.S4
	VFMLA  V20.S4, V16.S4, V4.S4
	VFMLA  V20.S4, V17.S4, V5.S4
	VDUP   V18.S[3], V21.S4
	VFMLA  V21.S4, V16.S4, V6.S4
	VFMLA  V21.S4, V17.S4, V7.S4
	VDUP   V19.S[0], V20.S4
	VFMLA  V20.S4, V16.S4, V8.S4
	VFMLA  V20.S4, V17.S4, V9.S4
	VDUP   V19.S[1], V21.S4
	VFMLA  V21.S4, V16.S4, V10.S4
	VFMLA  V21.S4, V17.S4, V11.S4
	VDUP   V19.S[2], V20.S4
	VFMLA  V20.S4, V16.S4, V12.S4
	VFMLA  V20.S4, V17.S4, V13.S4
	VDUP   V19.S[3], V21.S4
	VFMLA  V21.S4, V16.S4, V14.S4
	VFMLA  V21.S4, V17.S4, V15.S4
	SUB    $1, R3
	CBNZ   R3, loop32

store32:
	MOVD R0, R5
	VST1 [V0.S4, V1.S4], (R5)
	ADD  R4, R5
	VST1 [V2.S4, V3.S4], (R5)
	ADD  R4, R5
	VST1 [V4.S4, V5.S4], (R5)
	ADD  R4, R5
	VST1 [V6.S4, V7.S4], (R5)
	ADD  R4, R5
	VST1 [V8.S4, V9.S4], (R5)
	ADD  R4, R5
	VST1 [V10.S4, V11.S4], (R5)
	ADD  R4, R5
	VST1 [V12.S4, V13.S4], (R5)
	ADD  R4, R5
	VST1 [V14.S4, V15.S4], (R5)
	RET

// func gemmKernel4x4NEON(c []float64, ldc int, aP, bP []float64, kc int)
//
// 4×4 float64 micro-kernel: V0–V7 hold the C tile (two 2-lane registers
// per row). FMLA's fused per-lane rounding matches the arm64 scalar
// oracle, which the Go compiler also fuses (see microkernel_arm64.go).
TEXT ·gemmKernel4x4NEON(SB), NOSPLIT, $0-88
	MOVD c_base+0(FP), R0
	MOVD ldc+24(FP), R4
	MOVD aP_base+32(FP), R1
	MOVD bP_base+56(FP), R2
	MOVD kc+80(FP), R3
	LSL  $3, R4              // row stride in bytes

	// Load the C tile.
	MOVD R0, R5
	VLD1 (R5), [V0.D2, V1.D2]
	ADD  R4, R5
	VLD1 (R5), [V2.D2, V3.D2]
	ADD  R4, R5
	VLD1 (R5), [V4.D2, V5.D2]
	ADD  R4, R5
	VLD1 (R5), [V6.D2, V7.D2]

	CBZ R3, store64

loop64:
	VLD1.P 32(R2), [V16.D2, V17.D2] // b row: 4 float64
	VLD1.P 32(R1), [V18.D2, V19.D2] // a lanes: 4 float64
	VDUP   V18.D[0], V20.D2
	VFMLA  V20.D2, V16.D2, V0.D2
	VFMLA  V20.D2, V17.D2, V1.D2
	VDUP   V18.D[1], V21.D2
	VFMLA  V21.D2, V16.D2, V2.D2
	VFMLA  V21.D2, V17.D2, V3.D2
	VDUP   V19.D[0], V20.D2
	VFMLA  V20.D2, V16.D2, V4.D2
	VFMLA  V20.D2, V17.D2, V5.D2
	VDUP   V19.D[1], V21.D2
	VFMLA  V21.D2, V16.D2, V6.D2
	VFMLA  V21.D2, V17.D2, V7.D2
	SUB    $1, R3
	CBNZ   R3, loop64

store64:
	MOVD R0, R5
	VST1 [V0.D2, V1.D2], (R5)
	ADD  R4, R5
	VST1 [V2.D2, V3.D2], (R5)
	ADD  R4, R5
	VST1 [V4.D2, V5.D2], (R5)
	ADD  R4, R5
	VST1 [V6.D2, V7.D2], (R5)
	RET

// func qgemmKernel4x16NEON(acc []int32, ldc int, aP []int16, bP []int8, kp int)
//
// 4×16 int8 qGEMM micro-kernel. The int32 accumulator tile lives in
// V8–V23 (four 4-lane registers per row). Each pair step VLD2-loads the
// 32 packed weight bytes — the de-interleave splits the channel-major
// kk pairs into V24 (kk=0, channels 0–15) and V25 (kk=1) — widens them
// to int16 with SSHLL, and SMLALs each half against a broadcast lane of
// the activation-pair vector V0. Widening multiply-accumulate into
// int32 is exact, so this kernel is bit-identical to the portable one.
//
// The signed-widening ops are not in the Go assembler's arm64 mnemonic
// table, so they are emitted as WORDs (encodings cross-checked against
// llvm-mc):
//
//	SSHLL  Vd.8H, Vn.8B,  #0  = 0x0F08A400 | Rn<<5 | Rd
//	SSHLL2 Vd.8H, Vn.16B, #0  = 0x4F08A400 | Rn<<5 | Rd
//	SMLAL  Vd.4S, Vn.4H, Vm.H[i] = 0x0F402000 | idx | Rm<<16 | Rn<<5 | Rd
//	SMLAL2 Vd.4S, Vn.8H, Vm.H[i] = same | 0x40000000
//
// where idx packs i into H(bit 11), L(bit 21), M(bit 20) and Rm must be
// in V0–V15 — which is why the activation pairs sit in V0.
TEXT ·qgemmKernel4x16NEON(SB), NOSPLIT, $0-88
	MOVD acc_base+0(FP), R0
	MOVD ldc+24(FP), R4
	MOVD aP_base+32(FP), R1
	MOVD bP_base+56(FP), R2
	MOVD kp+80(FP), R3
	LSL  $2, R4              // row stride in bytes

	// Load the accumulator tile.
	MOVD R0, R5
	VLD1 (R5), [V8.S4, V9.S4, V10.S4, V11.S4]
	ADD  R4, R5
	VLD1 (R5), [V12.S4, V13.S4, V14.S4, V15.S4]
	ADD  R4, R5
	VLD1 (R5), [V16.S4, V17.S4, V18.S4, V19.S4]
	ADD  R4, R5
	VLD1 (R5), [V20.S4, V21.S4, V22.S4, V23.S4]

	CBZ R3, storeq

loopq:
	VLD2.P 32(R2), [V24.B16, V25.B16] // de-interleave: V24 = kk0 bytes, V25 = kk1
	VLD1.P 16(R1), [V0.H8]            // 4 activation pairs, already int16
	WORD   $0x0F08A71A                // SSHLL  V26.8H, V24.8B,  #0 (kk0 ch0–7)
	WORD   $0x4F08A71B                // SSHLL2 V27.8H, V24.16B, #0 (kk0 ch8–15)
	WORD   $0x0F08A73C                // SSHLL  V28.8H, V25.8B,  #0 (kk1 ch0–7)
	WORD   $0x4F08A73D                // SSHLL2 V29.8H, V25.16B, #0 (kk1 ch8–15)
	// Row 0: acc V8–V11 += kk0·a00 + kk1·a01.
	WORD   $0x0F402348                // SMLAL  V8.4S,  V26.4H, V0.H[0]
	WORD   $0x4F402349                // SMLAL2 V9.4S,  V26.8H, V0.H[0]
	WORD   $0x0F40236A                // SMLAL  V10.4S, V27.4H, V0.H[0]
	WORD   $0x4F40236B                // SMLAL2 V11.4S, V27.8H, V0.H[0]
	WORD   $0x0F502388                // SMLAL  V8.4S,  V28.4H, V0.H[1]
	WORD   $0x4F502389                // SMLAL2 V9.4S,  V28.8H, V0.H[1]
	WORD   $0x0F5023AA                // SMLAL  V10.4S, V29.4H, V0.H[1]
	WORD   $0x4F5023AB                // SMLAL2 V11.4S, V29.8H, V0.H[1]
	// Row 1: acc V12–V15.
	WORD   $0x0F60234C                // SMLAL  V12.4S, V26.4H, V0.H[2]
	WORD   $0x4F60234D                // SMLAL2 V13.4S, V26.8H, V0.H[2]
	WORD   $0x0F60236E                // SMLAL  V14.4S, V27.4H, V0.H[2]
	WORD   $0x4F60236F                // SMLAL2 V15.4S, V27.8H, V0.H[2]
	WORD   $0x0F70238C                // SMLAL  V12.4S, V28.4H, V0.H[3]
	WORD   $0x4F70238D                // SMLAL2 V13.4S, V28.8H, V0.H[3]
	WORD   $0x0F7023AE                // SMLAL  V14.4S, V29.4H, V0.H[3]
	WORD   $0x4F7023AF                // SMLAL2 V15.4S, V29.8H, V0.H[3]
	// Row 2: acc V16–V19.
	WORD   $0x0F402B50                // SMLAL  V16.4S, V26.4H, V0.H[4]
	WORD   $0x4F402B51                // SMLAL2 V17.4S, V26.8H, V0.H[4]
	WORD   $0x0F402B72                // SMLAL  V18.4S, V27.4H, V0.H[4]
	WORD   $0x4F402B73                // SMLAL2 V19.4S, V27.8H, V0.H[4]
	WORD   $0x0F502B90                // SMLAL  V16.4S, V28.4H, V0.H[5]
	WORD   $0x4F502B91                // SMLAL2 V17.4S, V28.8H, V0.H[5]
	WORD   $0x0F502BB2                // SMLAL  V18.4S, V29.4H, V0.H[5]
	WORD   $0x4F502BB3                // SMLAL2 V19.4S, V29.8H, V0.H[5]
	// Row 3: acc V20–V23.
	WORD   $0x0F602B54                // SMLAL  V20.4S, V26.4H, V0.H[6]
	WORD   $0x4F602B55                // SMLAL2 V21.4S, V26.8H, V0.H[6]
	WORD   $0x0F602B76                // SMLAL  V22.4S, V27.4H, V0.H[6]
	WORD   $0x4F602B77                // SMLAL2 V23.4S, V27.8H, V0.H[6]
	WORD   $0x0F702B94                // SMLAL  V20.4S, V28.4H, V0.H[7]
	WORD   $0x4F702B95                // SMLAL2 V21.4S, V28.8H, V0.H[7]
	WORD   $0x0F702BB6                // SMLAL  V22.4S, V29.4H, V0.H[7]
	WORD   $0x4F702BB7                // SMLAL2 V23.4S, V29.8H, V0.H[7]
	SUB    $1, R3
	CBNZ   R3, loopq

storeq:
	MOVD R0, R5
	VST1 [V8.S4, V9.S4, V10.S4, V11.S4], (R5)
	ADD  R4, R5
	VST1 [V12.S4, V13.S4, V14.S4, V15.S4], (R5)
	ADD  R4, R5
	VST1 [V16.S4, V17.S4, V18.S4, V19.S4], (R5)
	ADD  R4, R5
	VST1 [V20.S4, V21.S4, V22.S4, V23.S4], (R5)
	RET

// func transBPairsNEON(dst, a, b []float64, ldb int)
//
// Four-column float64 TransB dot over the first 2·⌊k/2⌋ steps: dst[j] =
// Σ_p a[p]·b[j·ldb+p], j = 0..3 (the Go wrapper finishes the odd tail,
// which the arm64 compiler fuses just like FMLA here). Each pair step
// loads two consecutive values of all four B rows, TRN-transposes them
// to per-p columns, and FMLAs a broadcast a[p] against each column in
// ascending p — one fused chain per dst lane, exactly the arm64 scalar
// oracle's arithmetic.
TEXT ·transBPairsNEON(SB), NOSPLIT, $0-80
	MOVD dst_base+0(FP), R0
	MOVD a_base+24(FP), R1
	MOVD a_len+32(FP), R3    // k
	MOVD b_base+48(FP), R2
	MOVD ldb+72(FP), R4
	LSL  $3, R4              // row stride in bytes

	MOVD R2, R5              // b row 0
	ADD  R4, R5, R6          // b row 1
	ADD  R4, R6, R7          // b row 2
	ADD  R4, R7, R8          // b row 3

	VEOR V0.B16, V0.B16, V0.B16 // acc [s0, s1]
	VEOR V1.B16, V1.B16, V1.B16 // acc [s2, s3]

	LSR $1, R3, R9           // pair count
	CBZ R9, storep

loopp:
	VLD1.P 16(R5), [V2.D2]   // b0: p, p+1
	VLD1.P 16(R6), [V3.D2]   // b1
	VLD1.P 16(R7), [V4.D2]   // b2
	VLD1.P 16(R8), [V5.D2]   // b3
	VLD1.P 16(R1), [V6.D2]   // a: p, p+1
	VTRN1  V3.D2, V2.D2, V16.D2 // [b0p, b1p]
	VTRN2  V3.D2, V2.D2, V17.D2 // [b0p', b1p']
	VTRN1  V5.D2, V4.D2, V18.D2 // [b2p, b3p]
	VTRN2  V5.D2, V4.D2, V19.D2 // [b2p', b3p']
	VDUP   V6.D[0], V20.D2
	VDUP   V6.D[1], V21.D2
	VFMLA  V20.D2, V16.D2, V0.D2
	VFMLA  V20.D2, V18.D2, V1.D2
	VFMLA  V21.D2, V17.D2, V0.D2
	VFMLA  V21.D2, V19.D2, V1.D2
	SUB    $1, R9
	CBNZ   R9, loopp

storep:
	VST1 [V0.D2, V1.D2], (R0)
	RET

// func dotChunksNEON(a, b []float32) float32
//
// Float32 dot over the first 4·⌊len(a)/4⌋ elements (wrapper finishes
// the tail): one 4-lane FMLA accumulator, reduced through scalar FADDS
// at the end (tolerance-gated; free to reassociate).
TEXT ·dotChunksNEON(SB), NOSPLIT, $0-52
	MOVD a_base+0(FP), R0
	MOVD a_len+8(FP), R3
	MOVD b_base+24(FP), R1

	VEOR V0.B16, V0.B16, V0.B16

	LSR $2, R3, R9           // 4-wide chunk count
	CBZ R9, dsum

loopd:
	VLD1.P 16(R0), [V1.S4]
	VLD1.P 16(R1), [V2.S4]
	VFMLA  V2.S4, V1.S4, V0.S4
	SUB    $1, R9
	CBNZ   R9, loopd

dsum:
	// Lane j of V0 lands in F(j) via VDUP, then scalar adds: Fn is the
	// low 32 bits of Vn.
	VDUP  V0.S[1], V1.S4
	VDUP  V0.S[2], V2.S4
	VDUP  V0.S[3], V3.S4
	FADDS F1, F0, F0
	FADDS F3, F2, F2
	FADDS F2, F0, F0
	FMOVS F0, ret+48(FP)
	RET
