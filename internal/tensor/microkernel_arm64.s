//go:build !noasm

#include "textflag.h"

// func gemmKernel8x8NEON(c []float32, ldc int, aP, bP []float32, kc int)
//
// 8×8 float32 micro-kernel. The C tile lives in V0–V15 (two 4-lane
// registers per row) across the kc loop; each step loads the 8-wide
// packed B row into V16/V17 and the 8 A values into V18/V19, then
// broadcasts one A lane per row and FMLAs it against the B row.
TEXT ·gemmKernel8x8NEON(SB), NOSPLIT, $0-88
	MOVD c_base+0(FP), R0
	MOVD ldc+24(FP), R4
	MOVD aP_base+32(FP), R1
	MOVD bP_base+56(FP), R2
	MOVD kc+80(FP), R3
	LSL  $2, R4              // row stride in bytes

	// Load the C tile.
	MOVD R0, R5
	VLD1 (R5), [V0.S4, V1.S4]
	ADD  R4, R5
	VLD1 (R5), [V2.S4, V3.S4]
	ADD  R4, R5
	VLD1 (R5), [V4.S4, V5.S4]
	ADD  R4, R5
	VLD1 (R5), [V6.S4, V7.S4]
	ADD  R4, R5
	VLD1 (R5), [V8.S4, V9.S4]
	ADD  R4, R5
	VLD1 (R5), [V10.S4, V11.S4]
	ADD  R4, R5
	VLD1 (R5), [V12.S4, V13.S4]
	ADD  R4, R5
	VLD1 (R5), [V14.S4, V15.S4]

	CBZ R3, store32

loop32:
	VLD1.P 32(R2), [V16.S4, V17.S4] // b row: 8 float32
	VLD1.P 32(R1), [V18.S4, V19.S4] // a lanes: 8 float32
	VDUP   V18.S[0], V20.S4
	VFMLA  V20.S4, V16.S4, V0.S4
	VFMLA  V20.S4, V17.S4, V1.S4
	VDUP   V18.S[1], V21.S4
	VFMLA  V21.S4, V16.S4, V2.S4
	VFMLA  V21.S4, V17.S4, V3.S4
	VDUP   V18.S[2], V20.S4
	VFMLA  V20.S4, V16.S4, V4.S4
	VFMLA  V20.S4, V17.S4, V5.S4
	VDUP   V18.S[3], V21.S4
	VFMLA  V21.S4, V16.S4, V6.S4
	VFMLA  V21.S4, V17.S4, V7.S4
	VDUP   V19.S[0], V20.S4
	VFMLA  V20.S4, V16.S4, V8.S4
	VFMLA  V20.S4, V17.S4, V9.S4
	VDUP   V19.S[1], V21.S4
	VFMLA  V21.S4, V16.S4, V10.S4
	VFMLA  V21.S4, V17.S4, V11.S4
	VDUP   V19.S[2], V20.S4
	VFMLA  V20.S4, V16.S4, V12.S4
	VFMLA  V20.S4, V17.S4, V13.S4
	VDUP   V19.S[3], V21.S4
	VFMLA  V21.S4, V16.S4, V14.S4
	VFMLA  V21.S4, V17.S4, V15.S4
	SUB    $1, R3
	CBNZ   R3, loop32

store32:
	MOVD R0, R5
	VST1 [V0.S4, V1.S4], (R5)
	ADD  R4, R5
	VST1 [V2.S4, V3.S4], (R5)
	ADD  R4, R5
	VST1 [V4.S4, V5.S4], (R5)
	ADD  R4, R5
	VST1 [V6.S4, V7.S4], (R5)
	ADD  R4, R5
	VST1 [V8.S4, V9.S4], (R5)
	ADD  R4, R5
	VST1 [V10.S4, V11.S4], (R5)
	ADD  R4, R5
	VST1 [V12.S4, V13.S4], (R5)
	ADD  R4, R5
	VST1 [V14.S4, V15.S4], (R5)
	RET

// func gemmKernel4x4NEON(c []float64, ldc int, aP, bP []float64, kc int)
//
// 4×4 float64 micro-kernel: V0–V7 hold the C tile (two 2-lane registers
// per row). FMLA's fused per-lane rounding matches the arm64 scalar
// oracle, which the Go compiler also fuses (see microkernel_arm64.go).
TEXT ·gemmKernel4x4NEON(SB), NOSPLIT, $0-88
	MOVD c_base+0(FP), R0
	MOVD ldc+24(FP), R4
	MOVD aP_base+32(FP), R1
	MOVD bP_base+56(FP), R2
	MOVD kc+80(FP), R3
	LSL  $3, R4              // row stride in bytes

	// Load the C tile.
	MOVD R0, R5
	VLD1 (R5), [V0.D2, V1.D2]
	ADD  R4, R5
	VLD1 (R5), [V2.D2, V3.D2]
	ADD  R4, R5
	VLD1 (R5), [V4.D2, V5.D2]
	ADD  R4, R5
	VLD1 (R5), [V6.D2, V7.D2]

	CBZ R3, store64

loop64:
	VLD1.P 32(R2), [V16.D2, V17.D2] // b row: 4 float64
	VLD1.P 32(R1), [V18.D2, V19.D2] // a lanes: 4 float64
	VDUP   V18.D[0], V20.D2
	VFMLA  V20.D2, V16.D2, V0.D2
	VFMLA  V20.D2, V17.D2, V1.D2
	VDUP   V18.D[1], V21.D2
	VFMLA  V21.D2, V16.D2, V2.D2
	VFMLA  V21.D2, V17.D2, V3.D2
	VDUP   V19.D[0], V20.D2
	VFMLA  V20.D2, V16.D2, V4.D2
	VFMLA  V20.D2, V17.D2, V5.D2
	VDUP   V19.D[1], V21.D2
	VFMLA  V21.D2, V16.D2, V6.D2
	VFMLA  V21.D2, V17.D2, V7.D2
	SUB    $1, R3
	CBNZ   R3, loop64

store64:
	MOVD R0, R5
	VST1 [V0.D2, V1.D2], (R5)
	ADD  R4, R5
	VST1 [V2.D2, V3.D2], (R5)
	ADD  R4, R5
	VST1 [V4.D2, V5.D2], (R5)
	ADD  R4, R5
	VST1 [V6.D2, V7.D2], (R5)
	RET
