package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 || a.Dims() != 3 || a.Dim(1) != 3 {
		t.Fatalf("unexpected geometry: len=%d dims=%d", a.Len(), a.Dims())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dimension")
		}
	}()
	New(2, 0)
}

func TestFromSliceAndScalar(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if a.At2(1, 0) != 3 {
		t.Fatalf("At2(1,0)=%g want 3", a.At2(1, 0))
	}
	s := Scalar(7)
	if s.Dims() != 0 || s.Data()[0] != 7 {
		t.Fatal("Scalar misbehaved")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4, 5)
	a.Set(9.5, 2, 1, 3)
	if a.At(2, 1, 3) != 9.5 {
		t.Fatal("At/Set mismatch")
	}
	if a.At3(2, 1, 3) != 9.5 {
		t.Fatal("At3 mismatch")
	}
	a.Set3(-1, 0, 0, 0)
	if a.At(0, 0, 0) != -1 {
		t.Fatal("Set3 mismatch")
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set2(99, 0, 1)
	if a.At2(0, 1) != 99 {
		t.Fatal("Reshape must share backing data")
	}
	c := a.Reshape(-1, 2)
	if c.Dim(0) != 3 {
		t.Fatalf("inferred dim %d want 3", c.Dim(0))
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	a := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Reshape(4, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data()[0] = 42
	if a.Data()[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestRowAndSliceRowsViews(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	r := a.Row(1)
	if r.At(0) != 3 || r.At(1) != 4 {
		t.Fatalf("Row(1)=%v", r.Data())
	}
	r.Data()[0] = -3
	if a.At2(1, 0) != -3 {
		t.Fatal("Row must be a view")
	}
	s := a.SliceRows(1, 3)
	if s.Dim(0) != 2 || s.At2(1, 1) != 6 {
		t.Fatalf("SliceRows wrong: %v", s.Data())
	}
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data(); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add=%v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub=%v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 10 {
		t.Fatalf("Mul=%v", got)
	}
	if got := Div(b, a).Data(); got[2] != 2 {
		t.Fatalf("Div=%v", got)
	}
	if got := Scale(a, 2).Data(); got[2] != 6 {
		t.Fatalf("Scale=%v", got)
	}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot=%g", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2), New(3))
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{3, -1, 4, 1}, 4)
	if a.Sum() != 7 || a.Mean() != 1.75 {
		t.Fatalf("Sum/Mean: %g %g", a.Sum(), a.Mean())
	}
	if a.Max() != 4 || a.Min() != -1 || a.ArgMax() != 2 {
		t.Fatalf("Max/Min/ArgMax: %g %g %d", a.Max(), a.Min(), a.ArgMax())
	}
	if got := a.Norm(); math.Abs(got-math.Sqrt(27)) > 1e-12 {
		t.Fatalf("Norm=%g", got)
	}
}

func TestClamp(t *testing.T) {
	a := FromSlice([]float64{-5, 0, 5}, 3)
	a.Clamp(-1, 1)
	if a.At(0) != -1 || a.At(1) != 0 || a.At(2) != 1 {
		t.Fatalf("Clamp=%v", a.Data())
	}
}

func TestAxisReductions(t *testing.T) {
	a := FromSlice([]float64{1, 10, 2, 20, 3, 30}, 3, 2)
	m := MeanAxis0(a)
	if m.At(0) != 2 || m.At(1) != 20 {
		t.Fatalf("MeanAxis0=%v", m.Data())
	}
	mins, maxs := MinMaxAxis0(a)
	if mins.At(0) != 1 || maxs.At(1) != 30 {
		t.Fatalf("MinMax: %v %v", mins.Data(), maxs.Data())
	}
}

func TestStackAndTranspose(t *testing.T) {
	r1 := FromSlice([]float64{1, 2}, 2)
	r2 := FromSlice([]float64{3, 4}, 2)
	s := Stack([]*Tensor{r1, r2})
	if s.At2(1, 0) != 3 {
		t.Fatalf("Stack=%v", s.Data())
	}
	tr := Transpose2D(s)
	if tr.At2(0, 1) != 3 || tr.Dim(0) != 2 {
		t.Fatalf("Transpose=%v", tr.Data())
	}
}

// Property: Add is commutative and Sub(Add(a,b),b) == a.
func TestAddProperties(t *testing.T) {
	f := func(vals [8]float64, vals2 [8]float64) bool {
		a := FromSlice(append([]float64(nil), vals[:]...), 8)
		b := FromSlice(append([]float64(nil), vals2[:]...), 8)
		if !Equal(Add(a, b), Add(b, a), 0) {
			return false
		}
		return Equal(Sub(Add(a, b), b), a, 1e-9*(1+a.Norm()+b.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Transpose2D is an involution.
func TestTransposeInvolution(t *testing.T) {
	f := func(vals [12]float64) bool {
		a := FromSlice(append([]float64(nil), vals[:]...), 3, 4)
		return Equal(Transpose2D(Transpose2D(a)), a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
