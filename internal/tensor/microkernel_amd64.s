//go:build !noasm

#include "textflag.h"

// func gemmKernel8x8AVX2(c []float32, ldc int, aP, bP []float32, kc int)
//
// 8×8 float32 micro-kernel, AVX2+FMA. The C tile lives in Y0–Y7 (one
// 8-lane row per register) for the whole kc loop; each step broadcasts
// one A value per row and FMAs it against the packed B row:
//
//	Y8 = bP[p*8 : p*8+8]
//	Yi += broadcast(aP[p*8+i]) * Y8      i = 0..7
TEXT ·gemmKernel8x8AVX2(SB), NOSPLIT, $0-88
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), SI
	MOVQ aP_base+32(FP), DX
	MOVQ bP_base+56(FP), CX
	MOVQ kc+80(FP), BX
	SHLQ $2, SI              // row stride in bytes

	// Load the C tile.
	MOVQ    DI, R8
	VMOVUPS (R8), Y0
	ADDQ    SI, R8
	VMOVUPS (R8), Y1
	ADDQ    SI, R8
	VMOVUPS (R8), Y2
	ADDQ    SI, R8
	VMOVUPS (R8), Y3
	ADDQ    SI, R8
	VMOVUPS (R8), Y4
	ADDQ    SI, R8
	VMOVUPS (R8), Y5
	ADDQ    SI, R8
	VMOVUPS (R8), Y6
	ADDQ    SI, R8
	VMOVUPS (R8), Y7

	TESTQ BX, BX
	JZ    store32

loop32:
	VMOVUPS      (CX), Y8
	VBROADCASTSS (DX), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(DX), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS 8(DX), Y11
	VFMADD231PS  Y8, Y11, Y2
	VBROADCASTSS 12(DX), Y12
	VFMADD231PS  Y8, Y12, Y3
	VBROADCASTSS 16(DX), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(DX), Y10
	VFMADD231PS  Y8, Y10, Y5
	VBROADCASTSS 24(DX), Y11
	VFMADD231PS  Y8, Y11, Y6
	VBROADCASTSS 28(DX), Y12
	VFMADD231PS  Y8, Y12, Y7
	ADDQ         $32, DX
	ADDQ         $32, CX
	DECQ         BX
	JNZ          loop32

store32:
	VMOVUPS Y0, (DI)
	ADDQ    SI, DI
	VMOVUPS Y1, (DI)
	ADDQ    SI, DI
	VMOVUPS Y2, (DI)
	ADDQ    SI, DI
	VMOVUPS Y3, (DI)
	ADDQ    SI, DI
	VMOVUPS Y4, (DI)
	ADDQ    SI, DI
	VMOVUPS Y5, (DI)
	ADDQ    SI, DI
	VMOVUPS Y6, (DI)
	ADDQ    SI, DI
	VMOVUPS Y7, (DI)
	VZEROUPPER
	RET

// func gemmKernel4x4AVX2(c []float64, ldc int, aP, bP []float64, kc int)
//
// 4×4 float64 micro-kernel. Separate VMULPD/VADDPD — NOT fused — so each
// output element accumulates with exactly the scalar loops' rounding:
// this kernel must stay bit-identical to the float64 oracle (pack.go).
TEXT ·gemmKernel4x4AVX2(SB), NOSPLIT, $0-88
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), SI
	MOVQ aP_base+32(FP), DX
	MOVQ bP_base+56(FP), CX
	MOVQ kc+80(FP), BX
	SHLQ $3, SI              // row stride in bytes

	// Load the C tile.
	MOVQ    DI, R8
	VMOVUPD (R8), Y0
	ADDQ    SI, R8
	VMOVUPD (R8), Y1
	ADDQ    SI, R8
	VMOVUPD (R8), Y2
	ADDQ    SI, R8
	VMOVUPD (R8), Y3

	TESTQ BX, BX
	JZ    store64

loop64:
	VMOVUPD      (CX), Y4
	VBROADCASTSD (DX), Y5
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y0, Y0
	VBROADCASTSD 8(DX), Y6
	VMULPD       Y4, Y6, Y6
	VADDPD       Y6, Y1, Y1
	VBROADCASTSD 16(DX), Y7
	VMULPD       Y4, Y7, Y7
	VADDPD       Y7, Y2, Y2
	VBROADCASTSD 24(DX), Y8
	VMULPD       Y4, Y8, Y8
	VADDPD       Y8, Y3, Y3
	ADDQ         $32, DX
	ADDQ         $32, CX
	DECQ         BX
	JNZ          loop64

store64:
	VMOVUPD Y0, (DI)
	ADDQ    SI, DI
	VMOVUPD Y1, (DI)
	ADDQ    SI, DI
	VMOVUPD Y2, (DI)
	ADDQ    SI, DI
	VMOVUPD Y3, (DI)
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
