//go:build !noasm

#include "textflag.h"

// func gemmKernel8x8AVX2(c []float32, ldc int, aP, bP []float32, kc int)
//
// 8×8 float32 micro-kernel, AVX2+FMA. The C tile lives in Y0–Y7 (one
// 8-lane row per register) for the whole kc loop; each step broadcasts
// one A value per row and FMAs it against the packed B row:
//
//	Y8 = bP[p*8 : p*8+8]
//	Yi += broadcast(aP[p*8+i]) * Y8      i = 0..7
TEXT ·gemmKernel8x8AVX2(SB), NOSPLIT, $0-88
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), SI
	MOVQ aP_base+32(FP), DX
	MOVQ bP_base+56(FP), CX
	MOVQ kc+80(FP), BX
	SHLQ $2, SI              // row stride in bytes

	// Load the C tile.
	MOVQ    DI, R8
	VMOVUPS (R8), Y0
	ADDQ    SI, R8
	VMOVUPS (R8), Y1
	ADDQ    SI, R8
	VMOVUPS (R8), Y2
	ADDQ    SI, R8
	VMOVUPS (R8), Y3
	ADDQ    SI, R8
	VMOVUPS (R8), Y4
	ADDQ    SI, R8
	VMOVUPS (R8), Y5
	ADDQ    SI, R8
	VMOVUPS (R8), Y6
	ADDQ    SI, R8
	VMOVUPS (R8), Y7

	TESTQ BX, BX
	JZ    store32

loop32:
	VMOVUPS      (CX), Y8
	VBROADCASTSS (DX), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(DX), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS 8(DX), Y11
	VFMADD231PS  Y8, Y11, Y2
	VBROADCASTSS 12(DX), Y12
	VFMADD231PS  Y8, Y12, Y3
	VBROADCASTSS 16(DX), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(DX), Y10
	VFMADD231PS  Y8, Y10, Y5
	VBROADCASTSS 24(DX), Y11
	VFMADD231PS  Y8, Y11, Y6
	VBROADCASTSS 28(DX), Y12
	VFMADD231PS  Y8, Y12, Y7
	ADDQ         $32, DX
	ADDQ         $32, CX
	DECQ         BX
	JNZ          loop32

store32:
	VMOVUPS Y0, (DI)
	ADDQ    SI, DI
	VMOVUPS Y1, (DI)
	ADDQ    SI, DI
	VMOVUPS Y2, (DI)
	ADDQ    SI, DI
	VMOVUPS Y3, (DI)
	ADDQ    SI, DI
	VMOVUPS Y4, (DI)
	ADDQ    SI, DI
	VMOVUPS Y5, (DI)
	ADDQ    SI, DI
	VMOVUPS Y6, (DI)
	ADDQ    SI, DI
	VMOVUPS Y7, (DI)
	VZEROUPPER
	RET

// func gemmKernel4x4AVX2(c []float64, ldc int, aP, bP []float64, kc int)
//
// 4×4 float64 micro-kernel. Separate VMULPD/VADDPD — NOT fused — so each
// output element accumulates with exactly the scalar loops' rounding:
// this kernel must stay bit-identical to the float64 oracle (pack.go).
TEXT ·gemmKernel4x4AVX2(SB), NOSPLIT, $0-88
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), SI
	MOVQ aP_base+32(FP), DX
	MOVQ bP_base+56(FP), CX
	MOVQ kc+80(FP), BX
	SHLQ $3, SI              // row stride in bytes

	// Load the C tile.
	MOVQ    DI, R8
	VMOVUPD (R8), Y0
	ADDQ    SI, R8
	VMOVUPD (R8), Y1
	ADDQ    SI, R8
	VMOVUPD (R8), Y2
	ADDQ    SI, R8
	VMOVUPD (R8), Y3

	TESTQ BX, BX
	JZ    store64

loop64:
	VMOVUPD      (CX), Y4
	VBROADCASTSD (DX), Y5
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y0, Y0
	VBROADCASTSD 8(DX), Y6
	VMULPD       Y4, Y6, Y6
	VADDPD       Y6, Y1, Y1
	VBROADCASTSD 16(DX), Y7
	VMULPD       Y4, Y7, Y7
	VADDPD       Y7, Y2, Y2
	VBROADCASTSD 24(DX), Y8
	VMULPD       Y4, Y8, Y8
	VADDPD       Y8, Y3, Y3
	ADDQ         $32, DX
	ADDQ         $32, CX
	DECQ         BX
	JNZ          loop64

store64:
	VMOVUPD Y0, (DI)
	ADDQ    SI, DI
	VMOVUPD Y1, (DI)
	ADDQ    SI, DI
	VMOVUPD Y2, (DI)
	ADDQ    SI, DI
	VMOVUPD Y3, (DI)
	VZEROUPPER
	RET

// func qgemmKernel4x16AVX2(acc []int32, ldc int, aP []int16, bP []int8, kp int)
//
// 4×16 int8 qGEMM micro-kernel. The int32 accumulator tile lives in
// Y0–Y7 (two 8-lane registers per row). Each pair step sign-extends the
// 32 packed weight bytes (16 channels × 2 k values, channel-major pairs)
// into int16 lanes with VPMOVSXBW, broadcasts one activation pair per
// row with VPBROADCASTD and VPMADDWDs it against the weight pairs — two
// multiplies and an add per int32 lane, exact because both operands are
// int8-ranged (no VPMADDUBSW-style int16 saturation is reachable).
TEXT ·qgemmKernel4x16AVX2(SB), NOSPLIT, $0-88
	MOVQ acc_base+0(FP), DI
	MOVQ ldc+24(FP), SI
	MOVQ aP_base+32(FP), DX
	MOVQ bP_base+56(FP), CX
	MOVQ kp+80(FP), BX
	SHLQ $2, SI              // row stride in bytes

	// Load the accumulator tile.
	MOVQ    DI, R8
	VMOVDQU (R8), Y0
	VMOVDQU 32(R8), Y1
	ADDQ    SI, R8
	VMOVDQU (R8), Y2
	VMOVDQU 32(R8), Y3
	ADDQ    SI, R8
	VMOVDQU (R8), Y4
	VMOVDQU 32(R8), Y5
	ADDQ    SI, R8
	VMOVDQU (R8), Y6
	VMOVDQU 32(R8), Y7

	TESTQ BX, BX
	JZ    storeq

loopq:
	VPMOVSXBW    (CX), Y8    // channels 0–7, int16 kk-pairs
	VPMOVSXBW    16(CX), Y9  // channels 8–15
	VPBROADCASTD (DX), Y10   // row 0 activation pair
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y0, Y0
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y1, Y1
	VPBROADCASTD 4(DX), Y10  // row 1
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y2, Y2
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y3, Y3
	VPBROADCASTD 8(DX), Y10  // row 2
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y4, Y4
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y5, Y5
	VPBROADCASTD 12(DX), Y10 // row 3
	VPMADDWD     Y8, Y10, Y11
	VPADDD       Y11, Y6, Y6
	VPMADDWD     Y9, Y10, Y11
	VPADDD       Y11, Y7, Y7
	ADDQ         $16, DX
	ADDQ         $32, CX
	DECQ         BX
	JNZ          loopq

storeq:
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    SI, DI
	VMOVDQU Y2, (DI)
	VMOVDQU Y3, 32(DI)
	ADDQ    SI, DI
	VMOVDQU Y4, (DI)
	VMOVDQU Y5, 32(DI)
	ADDQ    SI, DI
	VMOVDQU Y6, (DI)
	VMOVDQU Y7, 32(DI)
	VZEROUPPER
	RET

// func transBQuadsAVX2(dst, a, b []float64, ldb int)
//
// Four-column float64 TransB dot over the first 4·⌊k/4⌋ steps:
// dst[j] = Σ_p a[p]·b[j·ldb+p], j = 0..3 (the Go wrapper finishes the
// ≤3-step tail so the asm stays branch-light). Each quad loads four
// consecutive values of all four B rows, transposes them in-register to
// per-p columns, and accumulates a[p]·col_p with separate VMULPD/VADDPD
// in ascending p — each dst lane is one unfused single-accumulator
// chain, bit-identical to the scalar oracle.
TEXT ·transBQuadsAVX2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), BX    // k
	MOVQ b_base+48(FP), CX
	MOVQ ldb+72(FP), DX
	SHLQ $3, DX              // row stride in bytes

	LEAQ (CX)(DX*1), R8      // b row 1
	LEAQ (R8)(DX*1), R9      // b row 2
	LEAQ (R9)(DX*1), R10     // b row 3

	VXORPD Y0, Y0, Y0        // acc = [s0, s1, s2, s3]

	SHRQ $2, BX              // quad count
	JZ   storet

loopt:
	VMOVUPD (CX), Y1         // b0: p..p+3
	VMOVUPD (R8), Y2         // b1
	VMOVUPD (R9), Y3         // b2
	VMOVUPD (R10), Y4        // b3
	// 4×4 transpose: Y9..Y12 = columns p..p+3.
	VUNPCKLPD  Y2, Y1, Y5    // [b0p0, b1p0, b0p2, b1p2]
	VUNPCKHPD  Y2, Y1, Y6    // [b0p1, b1p1, b0p3, b1p3]
	VUNPCKLPD  Y4, Y3, Y7    // [b2p0, b3p0, b2p2, b3p2]
	VUNPCKHPD  Y4, Y3, Y8    // [b2p1, b3p1, b2p3, b3p3]
	VPERM2F128 $0x20, Y7, Y5, Y9
	VPERM2F128 $0x20, Y8, Y6, Y10
	VPERM2F128 $0x31, Y7, Y5, Y11
	VPERM2F128 $0x31, Y8, Y6, Y12
	// Ascending p, unfused multiply+add per lane.
	VBROADCASTSD (SI), Y13
	VMULPD       Y9, Y13, Y13
	VADDPD       Y13, Y0, Y0
	VBROADCASTSD 8(SI), Y13
	VMULPD       Y10, Y13, Y13
	VADDPD       Y13, Y0, Y0
	VBROADCASTSD 16(SI), Y13
	VMULPD       Y11, Y13, Y13
	VADDPD       Y13, Y0, Y0
	VBROADCASTSD 24(SI), Y13
	VMULPD       Y12, Y13, Y13
	VADDPD       Y13, Y0, Y0
	ADDQ         $32, SI
	ADDQ         $32, CX
	ADDQ         $32, R8
	ADDQ         $32, R9
	ADDQ         $32, R10
	DECQ         BX
	JNZ          loopt

storet:
	VMOVUPD Y0, (DI)
	VZEROUPPER
	RET

// func dotChunksAVX2(a, b []float32) float32
//
// Float32 dot over the first 8·⌊k/8⌋ elements (wrapper finishes the
// tail): two 8-lane FMA accumulators, horizontally summed at the end.
// Float32 is tolerance-gated, so reassociation and fusion are fine.
TEXT ·dotChunksAVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), BX
	MOVQ b_base+24(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

	MOVQ BX, DX
	SHRQ $4, DX              // 16-wide chunks
	JZ   dot8

loop16:
	VMOVUPS     (SI), Y2
	VFMADD231PS (CX), Y2, Y0
	VMOVUPS     32(SI), Y3
	VFMADD231PS 32(CX), Y3, Y1
	ADDQ        $64, SI
	ADDQ        $64, CX
	DECQ        DX
	JNZ         loop16

dot8:
	ANDQ $8, BX
	JZ   dsum
	VMOVUPS     (SI), Y2
	VFMADD231PS (CX), Y2, Y0

dsum:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VMOVSS       X0, ret+48(FP)
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
