package tensor

import (
	"fmt"
	"testing"
)

// GEMM benchmarks isolating the compute core the conv/dense layers route
// through. Run with: go test -bench BenchmarkMatMul -benchmem ./internal/tensor
func benchMatMul(b *testing.B, m, k, n int) {
	rng := NewRNG(1)
	a := RandNormal(rng, 0, 1, m, k)
	c := RandNormal(rng, 0, 1, k, n)
	dst := New(m, n)
	b.SetBytes(int64(8 * m * k * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, c)
	}
}

func BenchmarkMatMul(b *testing.B) {
	for _, s := range []struct{ m, k, n int }{
		{8, 8, 8},
		{32, 32, 32},
		{128, 128, 128},
		{256, 64, 512},
		{512, 512, 512},
	} {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			benchMatMul(b, s.m, s.k, s.n)
		})
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	rng := NewRNG(2)
	a := RandNormal(rng, 0, 1, 128, 256)
	w := RandNormal(rng, 0, 1, 128, 256)
	dst := New(128, 128)
	b.SetBytes(int64(8 * 128 * 256 * 128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(dst, a, w)
	}
}

// Float32 GEMM variants: the same shapes through the float32
// instantiation. The ratio against the float64 benchmarks is the numeric
// core's bandwidth win at reduced precision.

func benchMatMulF32(b *testing.B, m, k, n int) {
	rng := NewRNG(1)
	a := Convert[float32](RandNormal(rng, 0, 1, m, k))
	c := Convert[float32](RandNormal(rng, 0, 1, k, n))
	dst := NewOf[float32](m, n)
	b.SetBytes(int64(4 * m * k * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, c)
	}
}

func BenchmarkMatMulF32(b *testing.B) {
	for _, s := range []struct{ m, k, n int }{
		{8, 8, 8},
		{32, 32, 32},
		{128, 128, 128},
		{256, 64, 512},
		{512, 512, 512},
	} {
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			benchMatMulF32(b, s.m, s.k, s.n)
		})
	}
}

func BenchmarkMatMulTransBF32(b *testing.B) {
	rng := NewRNG(2)
	a := Convert[float32](RandNormal(rng, 0, 1, 128, 256))
	w := Convert[float32](RandNormal(rng, 0, 1, 128, 256))
	dst := NewOf[float32](128, 128)
	b.SetBytes(int64(4 * 128 * 256 * 128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(dst, a, w)
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	rng := NewRNG(3)
	a := RandNormal(rng, 0, 1, 256, 128)
	c := RandNormal(rng, 0, 1, 256, 128)
	dst := New(128, 128)
	b.SetBytes(int64(8 * 256 * 128 * 128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransAInto(dst, a, c)
	}
}
