//go:build !noasm

package tensor

import "os"

// AVX2 micro-kernels for the packed GEMM engine. Installed at init when
// the CPU reports AVX2 + FMA + OS-saved YMM state; excluded entirely by
// the `noasm` build tag and skipped at runtime when VARADE_NOASM is set,
// leaving the portable generic kernels in place.
//
// gemmKernel8x8AVX2 uses FMA — float32 is tolerance-gated, so fused
// rounding is fine. gemmKernel4x4AVX2 deliberately uses separate VMULPD/
// VADDPD: each output element's ascending-k single-accumulator chain
// then rounds exactly like the scalar Go loops, keeping the float64
// packed path bit-identical to the oracle (Go's compiler does not fuse
// on amd64).

// gemmKernel8x8AVX2 computes the 8×8 float32 tile update
// c[i*ldc+j] += Σ_p aP[p*8+i]·bP[p*8+j] with FMA.
//
//go:noescape
func gemmKernel8x8AVX2(c []float32, ldc int, aP, bP []float32, kc int)

// gemmKernel4x4AVX2 computes the 4×4 float64 tile update with separate
// multiply and add (bit-exact against the scalar oracle).
//
//go:noescape
func gemmKernel4x4AVX2(c []float64, ldc int, aP, bP []float64, kc int)

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (OS-enabled SIMD state).
func xgetbv() (eax, edx uint32)

// hasAVX2FMA reports whether this CPU (and OS) can run the AVX2+FMA
// kernels: AVX + FMA + OSXSAVE advertised, YMM state saved by the OS,
// and AVX2 in the extended feature leaf.
func hasAVX2FMA() bool {
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	if ecx&fmaBit == 0 || ecx&osxsaveBit == 0 || ecx&avxBit == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&6 != 6 { // XMM and YMM state both OS-managed
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	return ebx&(1<<5) != 0 // AVX2
}

func init() {
	if os.Getenv("VARADE_NOASM") != "" || !hasAVX2FMA() {
		return
	}
	gemmKern32 = gemmKernel8x8AVX2
	gemmKern64 = gemmKernel4x4AVX2
	gemmKernelName = "avx2"
}
