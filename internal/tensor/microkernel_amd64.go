//go:build !noasm

package tensor

import "os"

// AVX2 micro-kernels for the packed GEMM engine. Installed at init when
// the CPU reports AVX2 + FMA + OS-saved YMM state; excluded entirely by
// the `noasm` build tag and skipped at runtime when VARADE_NOASM is set,
// leaving the portable generic kernels in place.
//
// gemmKernel8x8AVX2 uses FMA — float32 is tolerance-gated, so fused
// rounding is fine. gemmKernel4x4AVX2 deliberately uses separate VMULPD/
// VADDPD: each output element's ascending-k single-accumulator chain
// then rounds exactly like the scalar Go loops, keeping the float64
// packed path bit-identical to the oracle (Go's compiler does not fuse
// on amd64).

// gemmKernel8x8AVX2 computes the 8×8 float32 tile update
// c[i*ldc+j] += Σ_p aP[p*8+i]·bP[p*8+j] with FMA.
//
//go:noescape
func gemmKernel8x8AVX2(c []float32, ldc int, aP, bP []float32, kc int)

// gemmKernel4x4AVX2 computes the 4×4 float64 tile update with separate
// multiply and add (bit-exact against the scalar oracle).
//
//go:noescape
func gemmKernel4x4AVX2(c []float64, ldc int, aP, bP []float64, kc int)

// qgemmKernel4x16AVX2 computes the 4×16 int8 qGEMM tile update with
// VPMOVSXBW + VPMADDWD: exact int32 accumulation, bit-identical to the
// portable kernel.
//
//go:noescape
func qgemmKernel4x16AVX2(acc []int32, ldc int, aP []int16, bP []int8, kp int)

// transBQuadsAVX2 computes the four-column float64 TransB dot over the
// first 4·⌊len(a)/4⌋ steps (unfused, ascending-p per lane — the
// bit-exactness contract). The wrapper below finishes the tail in Go,
// which does not fuse on amd64, so the whole chain rounds exactly like
// the scalar oracle.
//
//go:noescape
func transBQuadsAVX2(dst, a, b []float64, ldb int)

// dotChunksAVX2 computes the float32 dot over the first 8·⌊len(a)/8⌋
// elements with 8-lane FMA (tolerance-gated; free to reassociate).
//
//go:noescape
func dotChunksAVX2(a, b []float32) float32

// transBKernel4x64AVX2 is the dispatch-installed float64 small-TransB
// kernel: SIMD quads in asm, scalar tail in Go.
func transBKernel4x64AVX2(dst, a, b []float64, ldb int) {
	k := len(a)
	transBQuadsAVX2(dst, a, b, ldb)
	for p := k &^ 3; p < k; p++ {
		av := a[p]
		dst[0] += av * b[p]
		dst[1] += av * b[ldb+p]
		dst[2] += av * b[2*ldb+p]
		dst[3] += av * b[3*ldb+p]
	}
}

// dotKernel32AVX2 is the dispatch-installed float32 small-TransB dot.
func dotKernel32AVX2(a, b []float32) float32 {
	s := dotChunksAVX2(a, b)
	for p := len(a) &^ 7; p < len(a); p++ {
		s += a[p] * b[p]
	}
	return s
}

// quantChunksAVX2 quantizes the first 16·⌊len(src)/16⌋ elements of src
// into dst and returns that prefix's clip count (qrequant_amd64.s).
//
//go:noescape
func quantChunksAVX2(dst []int8, src []float32, inv, zf float32) int64

// requantPairsChunksAVX2 is the fused pair-interleaving requant for
// n % 16 == 0, returning high- and low-side saturation counts
// separately (the ReLU clip rule is applied by the wrapper). zn = -128
// makes the ReLU floor a no-op.
//
//go:noescape
func requantPairsChunksAVX2(dst []int8, acc []int32, ld, pairs, n int, zw, cw []int32, m, c []float32, zn int32) (hi, lo int64)

// packA4x16AVX2 packs the first 16·⌊k/16⌋ columns of four consecutive
// k-byte rows into the qGEMM int16 pair layout.
//
//go:noescape
func packA4x16AVX2(aP []int16, x []int8, k int)

// quantAffineAVX2 is the dispatch-installed QuantizeAffine kernel:
// SIMD chunks in asm, scalar tail in Go.
func quantAffineAVX2(dst []int8, src []float32, inv, zf float32) int {
	n := len(src)
	clipped := int(quantChunksAVX2(dst, src, inv, zf))
	for i := n &^ 15; i < n; i++ {
		q, c := QuantClamp(src[i]*inv + zf)
		dst[i] = q
		if c {
			clipped++
		}
	}
	return clipped
}

// requantPairsAVX2 is the dispatch-installed RequantPairs2 kernel.
// Channel counts off the 16-lane grid keep the portable path.
func requantPairsAVX2(dst []int8, acc []int32, ld, pairs, n int, zw, cw []int32, m, c []float32, zn int8, relu bool) int {
	if n%16 != 0 {
		return requantPairsGeneric(dst, acc, ld, pairs, n, zw, cw, m, c, zn, relu)
	}
	znw := int32(zn)
	if !relu {
		znw = -128 // floor at the type minimum: a no-op
	}
	hi, lo := requantPairsChunksAVX2(dst, acc, ld, pairs, n, zw, cw, m, c, znw)
	if relu {
		// Low-side saturations are floored by the fused ReLU exactly as
		// the float lane floors them to 0 — not lossy, not counted.
		return int(hi)
	}
	return int(hi + lo)
}

// qgemmPackAAVX2 is the dispatch-installed qGEMM A-pack: 16-column
// blocks in asm, the k tail (and odd-k pad) scalar.
func qgemmPackAAVX2(aP []int16, x []int8, k int) {
	packA4x16AVX2(aP, x, k)
	kp := qgemmKP(k)
	for i := 0; i < qgemmMR; i++ {
		row := x[i*k : (i+1)*k]
		for p := k &^ 15; p < k; p++ {
			aP[(p/qgemmKU)*qgemmMR*qgemmKU+i*qgemmKU+p%qgemmKU] = int16(row[p])
		}
		if k%qgemmKU != 0 {
			aP[(kp-1)*qgemmMR*qgemmKU+i*qgemmKU+1] = 0
		}
	}
}

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (OS-enabled SIMD state).
func xgetbv() (eax, edx uint32)

// hasAVX2FMA reports whether this CPU (and OS) can run the AVX2+FMA
// kernels: AVX + FMA + OSXSAVE advertised, YMM state saved by the OS,
// and AVX2 in the extended feature leaf.
func hasAVX2FMA() bool {
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	if ecx&fmaBit == 0 || ecx&osxsaveBit == 0 || ecx&avxBit == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&6 != 6 { // XMM and YMM state both OS-managed
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	return ebx&(1<<5) != 0 // AVX2
}

func init() {
	if os.Getenv("VARADE_NOASM") != "" || !hasAVX2FMA() {
		return
	}
	gemmKern32 = gemmKernel8x8AVX2
	gemmKern64 = gemmKernel4x4AVX2
	gemmKernelName = "avx2"
	qgemmKern = qgemmKernel4x16AVX2
	qgemmKernelName = "avx2"
	qgemmPackA = qgemmPackAAVX2
	quantAffineKern = quantAffineAVX2
	requantPairsKern = requantPairsAVX2
	dotKern32 = dotKernel32AVX2
	transBKern64 = transBKernel4x64AVX2
}
