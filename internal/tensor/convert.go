package tensor

import "fmt"

// Precision conversion between tensor element types. These are the bridges
// between the float64 training/oracle world and the float32 inference fast
// path: weights are converted once at model-compile time, windows are
// converted (or assembled directly in float32) on the scoring path.

// SizeOf returns the byte size of one element of type T — the
// bytes-per-weight figure the edge memory projections use.
func SizeOf[T Float](T) int {
	var z T
	if _, ok := any(z).(float32); ok {
		return 4
	}
	return 8
}

// Convert returns a new tensor with src's elements converted to element
// type T. The target type is the first type parameter so call sites can
// write Convert[float32](x) and let U be inferred.
func Convert[T, U Float](src *Dense[U]) *Dense[T] {
	out := NewOf[T](src.shape...)
	for i, v := range src.data {
		out.data[i] = T(v)
	}
	return out
}

// ConvertInto converts src's elements into dst, which must have the same
// shape.
func ConvertInto[T, U Float](dst *Dense[T], src *Dense[U]) {
	if !sameShapeMixed(dst.shape, src.shape) {
		panicShapeMismatch("ConvertInto", dst.shape, src.shape)
	}
	for i, v := range src.data {
		dst.data[i] = T(v)
	}
}

// ConvertSlice converts src into dst element by element; the slices must
// have equal length.
func ConvertSlice[T, U Float](dst []T, src []U) {
	if len(dst) != len(src) {
		panicShapeMismatch("ConvertSlice", []int{len(dst)}, []int{len(src)})
	}
	for i, v := range src {
		dst[i] = T(v)
	}
}

func sameShapeMixed(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func panicShapeMismatch(op string, a, b []int) {
	panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a, b))
}
