package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism control for the package-level worker pool. All batched
// kernels (MatMul*, im2col consumers in internal/nn, batched scoring in
// internal/detect) route their data-parallel loops through Parallel, so a
// single knob governs the whole compute stack.

var (
	// maxWorkers is the target number of concurrently running chunks.
	maxWorkers int64 = int64(runtime.GOMAXPROCS(0))
	// inFlight tracks how many pool goroutines are currently live across
	// all Parallel calls, so nested parallel sections degrade to inline
	// execution instead of oversubscribing (or deadlocking) the host.
	inFlight int64
)

// SetWorkers sets the worker-pool width used by Parallel. n < 1 restores
// the default (GOMAXPROCS). It returns the previous setting.
func SetWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(atomic.SwapInt64(&maxWorkers, int64(n)))
}

// Workers returns the current worker-pool width.
func Workers() int { return int(atomic.LoadInt64(&maxWorkers)) }

// Parallel splits the index range [0, n) into contiguous chunks and calls
// f(lo, hi) for each, running chunks on pool goroutines when capacity is
// available and inline otherwise. f must be safe to call concurrently on
// disjoint ranges. Parallel returns after every chunk has completed.
//
// The scheduler is deliberately simple: a chunk is dispatched to a new
// goroutine only while the global in-flight count is below the configured
// width, and the calling goroutine always executes the final chunk itself,
// so nested Parallel sections (e.g. a parallel minibatch shard whose
// replica runs a parallel GEMM) make progress without ever blocking on
// pool capacity.
func Parallel(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		f(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	lo := 0
	for lo < n {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		// Run the last chunk (and any chunk the pool has no room for)
		// on the calling goroutine.
		if hi == n || !acquireWorker() {
			f(lo, hi)
		} else {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer releaseWorker()
				f(lo, hi)
			}(lo, hi)
		}
		lo = hi
	}
	wg.Wait()
}

// ParallelItems calls f(i) for every i in [0, n) through the same pool as
// Parallel; it is a convenience for loops whose body is already coarse.
func ParallelItems(n int, f func(i int)) {
	Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

func acquireWorker() bool {
	for {
		cur := atomic.LoadInt64(&inFlight)
		if cur >= atomic.LoadInt64(&maxWorkers)-1 {
			return false
		}
		if atomic.CompareAndSwapInt64(&inFlight, cur, cur+1) {
			return true
		}
	}
}

func releaseWorker() { atomic.AddInt64(&inFlight, -1) }

// Arena is a reusable scratch allocator for the temporary tensors that
// batched kernels need (im2col matrices, GEMM outputs, gate buffers).
// Allocations are bump-pointer slices of one backing buffer; Reset makes
// the whole buffer reusable without freeing it, so a steady-state forward
// pass performs zero heap allocations once the arena has warmed up.
//
// Arenas are per element type: the float64 training path and the float32
// inference path recycle separate pools. An Arena is not safe for
// concurrent use; obtain one per goroutine with GetArena/GetArenaOf and
// return it with PutArena.
type Arena[T Float] struct {
	buf  []T
	off  int
	big  [][]T // oversized one-off allocations, recycled on Reset
	next int   // rotation index into big
}

// arenaPool64 and arenaPool32 recycle warmed-up arenas across calls, one
// pool per element type.
var (
	arenaPool64 = sync.Pool{New: func() any { return &Arena[float64]{} }}
	arenaPool32 = sync.Pool{New: func() any { return &Arena[float32]{} }}
)

// GetArena returns an empty float64 arena from the package pool.
func GetArena() *Arena[float64] { return GetArenaOf[float64]() }

// GetArenaOf returns an empty arena for element type T from the package
// pool.
func GetArenaOf[T Float]() *Arena[T] {
	var z T
	var got any
	switch any(z).(type) {
	case float32:
		got = arenaPool32.Get()
	default:
		got = arenaPool64.Get()
	}
	a := got.(*Arena[T])
	a.Reset()
	return a
}

// PutArena returns an arena to its element type's pool. The caller must
// not use the arena, or any tensor carved from it, afterwards.
func PutArena[T Float](a *Arena[T]) {
	switch p := any(a).(type) {
	case *Arena[float32]:
		arenaPool32.Put(p)
	case *Arena[float64]:
		arenaPool64.Put(p)
	}
}

// Reset invalidates all outstanding allocations, keeping capacity.
func (a *Arena[T]) Reset() { a.off, a.next = 0, 0 }

// Floats returns a zeroed scratch slice of length n valid until Reset.
func (a *Arena[T]) Floats(n int) []T {
	if a.off+n > len(a.buf) {
		if n <= cap(a.buf)-a.off {
			a.buf = a.buf[:a.off+n]
		} else if a.off == 0 {
			a.buf = make([]T, n)
		} else {
			// The bump buffer is exhausted; serve from the side list so
			// existing allocations stay valid.
			return a.bigFloats(n)
		}
	}
	s := a.buf[a.off : a.off+n]
	a.off += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// rawFloats is Floats without the zero fill, for callers (the GEMM
// packing routines) that overwrite every element themselves.
func (a *Arena[T]) rawFloats(n int) []T {
	if a.off+n > len(a.buf) {
		if n <= cap(a.buf)-a.off {
			a.buf = a.buf[:a.off+n]
		} else if a.off == 0 {
			a.buf = make([]T, n)
		} else {
			return a.bigRawFloats(n)
		}
	}
	s := a.buf[a.off : a.off+n]
	a.off += n
	return s
}

func (a *Arena[T]) bigRawFloats(n int) []T {
	for ; a.next < len(a.big); a.next++ {
		if cap(a.big[a.next]) >= n {
			s := a.big[a.next][:n]
			a.next++
			return s
		}
	}
	s := make([]T, n)
	a.big = append(a.big, s)
	a.next = len(a.big)
	return s
}

func (a *Arena[T]) bigFloats(n int) []T {
	for ; a.next < len(a.big); a.next++ {
		if cap(a.big[a.next]) >= n {
			s := a.big[a.next][:n]
			a.next++
			for i := range s {
				s[i] = 0
			}
			return s
		}
	}
	s := make([]T, n)
	a.big = append(a.big, s)
	a.next = len(a.big)
	return s
}

// Tensor returns a zeroed scratch tensor of the given shape valid until
// Reset. The tensor shares the arena's buffer; callers that need the data
// past the next Reset must Clone it.
func (a *Arena[T]) Tensor(shape ...int) *Dense[T] {
	n := checkShape(shape)
	return &Dense[T]{shape: append([]int(nil), shape...), data: a.Floats(n)}
}
