package tensor

import (
	"testing"
	"testing/quick"
)

// naiveMatMul is the textbook triple loop used as an oracle.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At2(i, p) * b.At2(p, j)
			}
			out.Set2(s, i, j)
		}
	}
	return out
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{19, 22, 43, 50}, 2, 2)
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul=%v want %v", got.Data(), want.Data())
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := NewRNG(3)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		if !Equal(MatMul(a, b), naiveMatMul(a, b), 1e-10) {
			t.Fatalf("mismatch at m=%d k=%d n=%d", m, k, n)
		}
	}
}

func TestMatMulTransBEquivalence(t *testing.T) {
	rng := NewRNG(5)
	a := RandNormal(rng, 0, 1, 4, 3)
	b := RandNormal(rng, 0, 1, 5, 3) // (n, k): MatMulTransB(a,b) = a·bᵀ
	want := MatMul(a, Transpose2D(b))
	if !Equal(MatMulTransB(a, b), want, 1e-10) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestMatMulTransAEquivalence(t *testing.T) {
	rng := NewRNG(6)
	a := RandNormal(rng, 0, 1, 5, 3) // (k, m): MatMulTransA(a,b) = aᵀ·b
	b := RandNormal(rng, 0, 1, 5, 4)
	want := MatMul(Transpose2D(a), b)
	if !Equal(MatMulTransA(a, b), want, 1e-10) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}
}

func TestMatVecAndOuter(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 0, -1}, 3)
	got := MatVec(a, x)
	if got.At(0) != -2 || got.At(1) != -2 {
		t.Fatalf("MatVec=%v", got.Data())
	}
	o := Outer(FromSlice([]float64{1, 2}, 2), FromSlice([]float64{3, 4, 5}, 3))
	if o.At2(1, 2) != 10 || o.Dim(0) != 2 || o.Dim(1) != 3 {
		t.Fatalf("Outer=%v", o.Data())
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMatMulTransposeIdentity(t *testing.T) {
	f := func(av [6]float64, bv [6]float64) bool {
		a := FromSlice(append([]float64(nil), av[:]...), 2, 3)
		b := FromSlice(append([]float64(nil), bv[:]...), 3, 2)
		lhs := Transpose2D(MatMul(a, b))
		rhs := MatMul(Transpose2D(b), Transpose2D(a))
		return Equal(lhs, rhs, 1e-9*(1+a.Norm()*b.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMatMulTransBF32MatchesOracle pins the unrolled float32 kernel to
// the float64 reference within float32 rounding.
func TestMatMulTransBF32MatchesOracle(t *testing.T) {
	rng := NewRNG(17)
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
		a64 := RandNormal(rng, 0, 1, 6, k)
		b64 := RandNormal(rng, 0, 1, 5, k)
		want := MatMulTransB(a64, b64)
		got := MatMulTransB(Convert[float32](a64), Convert[float32](b64))
		if !SameShape(want, Convert[float64](got)) {
			t.Fatalf("k=%d shape %v", k, got.Shape())
		}
		for i, w := range want.Data() {
			if d := w - float64(got.Data()[i]); d > 1e-4 || d < -1e-4 {
				t.Fatalf("k=%d element %d: f32 %g vs f64 %g", k, i, got.Data()[i], w)
			}
		}
	}
}
