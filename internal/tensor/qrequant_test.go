package tensor

import "testing"

// The int8 elementwise kernels are bit-identical across dispatch
// families on their documented domain, so these tests check equality
// between the installed kernel and the portable one (trivially true on
// generic-only hosts, the real cross-check wherever asm installed), plus
// the exact rounding/clipping semantics of the scalar contract.

func TestQuantClampSemantics(t *testing.T) {
	cases := []struct {
		v    float32
		q    int8
		clip bool
	}{
		{0, 0, false},
		{0.5, 0, false}, // nearest-even: ties to 0
		{1.5, 2, false}, // ties to 2
		{2.5, 2, false}, // ties to 2
		{-0.5, 0, false},
		{-1.5, -2, false},
		{126.4, 126, false},
		{127.49, 127, false},
		{127.5, 127, true},
		{1e6, 127, true},
		{-128.49, -128, false},
		{-128.5, -128, true},
		{-1e6, -128, true},
	}
	for _, c := range cases {
		q, clip := QuantClamp(c.v)
		if q != c.q || clip != c.clip {
			t.Errorf("QuantClamp(%g) = (%d, %v), want (%d, %v)", c.v, q, clip, c.q, c.clip)
		}
	}
}

func TestQuantizeAffineMatchesGeneric(t *testing.T) {
	rng := NewRNG(11)
	for _, n := range []int{0, 1, 7, 15, 16, 17, 31, 32, 100, 1023} {
		src := make([]float32, n)
		for i := range src {
			// Spread across the in-range, near-edge and clipped regimes.
			src[i] = float32(rng.NormFloat64() * 60)
		}
		if n > 4 {
			src[0], src[1], src[2], src[3] = 127.5, -128.5, 127.49, -128.49
		}
		got := make([]int8, n)
		want := make([]int8, n)
		gc := QuantizeAffine(got, src, 1.25, -3)
		wc := quantAffineGeneric(want, src, 1.25, -3)
		if gc != wc {
			t.Fatalf("n=%d: clip count %d vs generic %d", n, gc, wc)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: dst[%d] = %d vs generic %d (src %g)", n, i, got[i], want[i], src[i])
			}
		}
	}
}

func TestRequantPairs2MatchesGeneric(t *testing.T) {
	rng := NewRNG(12)
	for _, n := range []int{8, 16, 32, 48} { // 8 exercises the off-grid fallback
		for _, relu := range []bool{false, true} {
			pairs := 9
			ld := n + 1
			acc := make([]int32, 2*pairs*ld)
			for i := range acc {
				acc[i] = int32(rng.Uint64()%200000) - 100000
			}
			zw := make([]int32, n)
			cw := make([]int32, n)
			mm := make([]float32, n)
			cc := make([]float32, n)
			for j := 0; j < n; j++ {
				zw[j] = int32(rng.Uint64()%11) - 5
				cw[j] = int32(rng.Uint64()%2000) - 1000
				mm[j] = float32(rng.NormFloat64() * 0.01)
				cc[j] = float32(rng.NormFloat64() * 20)
			}
			got := make([]int8, pairs*2*n)
			want := make([]int8, pairs*2*n)
			gc := RequantPairs2(got, acc, ld, pairs, n, zw, cw, mm, cc, -7, relu)
			wc := requantPairsGeneric(want, acc, ld, pairs, n, zw, cw, mm, cc, -7, relu)
			if gc != wc {
				t.Fatalf("n=%d relu=%v: clip count %d vs generic %d", n, relu, gc, wc)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d relu=%v: dst[%d] = %d vs generic %d", n, relu, i, got[i], want[i])
				}
			}
		}
	}
}

func TestQGemmPackAMatchesGeneric(t *testing.T) {
	rng := NewRNG(13)
	for _, k := range []int{1, 2, 3, 15, 16, 17, 31, 32, 33, 34, 64} {
		x := make([]int8, 4*k)
		for i := range x {
			x[i] = int8(rng.Uint64())
		}
		kp := qgemmKP(k)
		got := make([]int16, kp*qgemmMR*qgemmKU)
		want := make([]int16, kp*qgemmMR*qgemmKU)
		qgemmPackA(got, x, k)
		qgemmPackAGeneric(want, x, k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: aP[%d] = %d vs generic %d", k, i, got[i], want[i])
			}
		}
	}
}
