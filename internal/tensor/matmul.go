package tensor

import "fmt"

// GEMM kernels, generic over the Float element type. All three
// multiplication variants come in an allocating form (MatMul, MatMulTransB,
// MatMulTransA) and an in-place form (MatMulInto, …) that writes into a
// caller-supplied destination — usually one carved from an Arena — so hot
// paths run allocation-free.
//
// Row blocks are distributed over the package worker pool (see Parallel)
// once the problem is large enough to amortise goroutine handoff; small
// products run inline. The float32 instantiation moves half the bytes per
// multiply-add, which is where the inference fast path's bandwidth win
// comes from.

// parallelFlopThreshold is the approximate multiply-add count below which
// a product is not worth splitting across workers.
const parallelFlopThreshold = 64 * 1024

func check2D[T Float](op string, a, b *Dense[T]) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: " + op + " needs 2-D tensors")
	}
}

func checkDst[T Float](op string, dst *Dense[T], m, n int) {
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want (%d,%d)", op, dst.shape, m, n))
	}
}

// MatMul returns the matrix product a·b of two 2-D tensors.
// a has shape (m, k) and b has shape (k, n); the result is (m, n).
func MatMul[T Float](a, b *Dense[T]) *Dense[T] {
	check2D("MatMul", a, b)
	out := NewOf[T](a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a·b, overwriting dst. dst must not alias a or b.
//
// Products large enough to amortise the packing copies run through the
// packed micro-kernel engine (pack.go) — cache-blocked panels swept by a
// register-blocked, possibly SIMD, kernel, bit-identical at float64 to
// the scalar path below. Small products keep the direct loops: ordered
// (i, p, j) so b is scanned row-contiguously, rows of a sharded across
// the worker pool.
func MatMulInto[T Float](dst, a, b *Dense[T]) {
	check2D("MatMul", a, b)
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	checkDst("MatMul", dst, m, n)
	ad, bd, od := a.data, b.data, dst.data
	if usePacked(m, k, n) {
		gemmPackedInto(od, ad, bd, m, n, k, false)
		return
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			orow := od[i*n : (i+1)*n]
			for j := range orow {
				orow[j] = 0
			}
			for p := 0; p < k; p++ {
				av := arow[p]
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if m*k*n < parallelFlopThreshold {
		body(0, m)
		return
	}
	Parallel(m, body)
}

// MatMulTransB returns a·bᵀ where a is (m, k) and b is (n, k); result (m, n).
// This avoids materialising the transpose when multiplying by weight
// matrices stored row-major as (out, in).
func MatMulTransB[T Float](a, b *Dense[T]) *Dense[T] {
	check2D("MatMulTransB", a, b)
	out := NewOf[T](a.shape[0], b.shape[0])
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a·bᵀ, overwriting dst.
//
// Large products run through the packed engine: b's rows are packed as
// panel columns, so the same micro-kernels serve both orientations (and
// the float64 packed path keeps the historical single-accumulator
// ascending-k order — it is the bit-exactness oracle, and training
// depends on reproducible arithmetic). The small-product float32 loop
// unrolls the dot product over four accumulators, breaking the FP-add
// latency chain that otherwise hides the precision's bandwidth
// advantage.
func MatMulTransBInto[T Float](dst, a, b *Dense[T]) {
	check2D("MatMulTransB", a, b)
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", k, k2))
	}
	checkDst("MatMulTransB", dst, m, n)
	ad, bd, od := a.data, b.data, dst.data
	if usePacked(m, k, n) {
		gemmPackedInto(od, ad, bd, m, n, k, true)
		return
	}
	var z T
	_, fast := any(z).(float32)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			orow := od[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s T
				if fast {
					var s0, s1, s2, s3 T
					p := 0
					for ; p+4 <= k; p += 4 {
						s0 += arow[p] * brow[p]
						s1 += arow[p+1] * brow[p+1]
						s2 += arow[p+2] * brow[p+2]
						s3 += arow[p+3] * brow[p+3]
					}
					for ; p < k; p++ {
						s0 += arow[p] * brow[p]
					}
					s = (s0 + s1) + (s2 + s3)
				} else {
					for p, av := range arow {
						s += av * brow[p]
					}
				}
				orow[j] = s
			}
		}
	}
	if m*k*n < parallelFlopThreshold {
		body(0, m)
		return
	}
	Parallel(m, body)
}

// MatMulTransA returns aᵀ·b where a is (k, m) and b is (k, n); result (m, n).
// Used for weight gradients: dW = xᵀ·dy without materialising xᵀ.
func MatMulTransA[T Float](a, b *Dense[T]) *Dense[T] {
	check2D("MatMulTransA", a, b)
	out := NewOf[T](a.shape[1], b.shape[1])
	MatMulTransAInto(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ·b, overwriting dst.
//
// The reduction runs down a's rows, so splitting over output rows would
// stride badly; instead output rows are sharded and each worker walks the
// full k extent touching only its own output block.
func MatMulTransAInto[T Float](dst, a, b *Dense[T]) {
	check2D("MatMulTransA", a, b)
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d vs %d", k, k2))
	}
	checkDst("MatMulTransA", dst, m, n)
	ad, bd, od := a.data, b.data, dst.data
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := od[i*n : (i+1)*n]
			for j := range orow {
				orow[j] = 0
			}
		}
		for p := 0; p < k; p++ {
			arow := ad[p*m : p*m+m]
			brow := bd[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := od[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if m*k*n < parallelFlopThreshold {
		body(0, m)
		return
	}
	Parallel(m, body)
}

// MatVec returns the matrix-vector product a·x where a is (m, n) and x has
// length n; the result has length m.
func MatVec[T Float](a, x *Dense[T]) *Dense[T] {
	if len(a.shape) != 2 || len(x.shape) != 1 {
		panic("tensor: MatVec needs a 2-D matrix and 1-D vector")
	}
	m, n := a.shape[0], a.shape[1]
	if x.shape[0] != n {
		panic(fmt.Sprintf("tensor: MatVec dims (%d,%d)·%d", m, n, x.shape[0]))
	}
	out := NewOf[T](m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		var s T
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out
}

// Outer returns the outer product x·yᵀ of two vectors: shape (len(x), len(y)).
func Outer[T Float](x, y *Dense[T]) *Dense[T] {
	if len(x.shape) != 1 || len(y.shape) != 1 {
		panic("tensor: Outer needs 1-D tensors")
	}
	m, n := x.shape[0], y.shape[0]
	out := NewOf[T](m, n)
	for i := 0; i < m; i++ {
		xi := x.data[i]
		row := out.data[i*n : (i+1)*n]
		for j, yj := range y.data {
			row[j] = xi * yj
		}
	}
	return out
}
