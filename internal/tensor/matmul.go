package tensor

import "fmt"

// GEMM kernels, generic over the Float element type. All three
// multiplication variants come in an allocating form (MatMul, MatMulTransB,
// MatMulTransA) and an in-place form (MatMulInto, …) that writes into a
// caller-supplied destination — usually one carved from an Arena — so hot
// paths run allocation-free.
//
// Row blocks are distributed over the package worker pool (see Parallel)
// once the problem is large enough to amortise goroutine handoff; small
// products run inline. The float32 instantiation moves half the bytes per
// multiply-add, which is where the inference fast path's bandwidth win
// comes from.

// parallelFlopThreshold is the approximate multiply-add count below which
// a product is not worth splitting across workers.
const parallelFlopThreshold = 64 * 1024

func check2D[T Float](op string, a, b *Dense[T]) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: " + op + " needs 2-D tensors")
	}
}

func checkDst[T Float](op string, dst *Dense[T], m, n int) {
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want (%d,%d)", op, dst.shape, m, n))
	}
}

// MatMul returns the matrix product a·b of two 2-D tensors.
// a has shape (m, k) and b has shape (k, n); the result is (m, n).
func MatMul[T Float](a, b *Dense[T]) *Dense[T] {
	check2D("MatMul", a, b)
	out := NewOf[T](a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a·b, overwriting dst. dst must not alias a or b.
//
// Products large enough to amortise the packing copies run through the
// packed micro-kernel engine (pack.go) — cache-blocked panels swept by a
// register-blocked, possibly SIMD, kernel, bit-identical at float64 to
// the scalar path below. Small products keep the direct loops: ordered
// (i, p, j) so b is scanned row-contiguously, rows of a sharded across
// the worker pool.
func MatMulInto[T Float](dst, a, b *Dense[T]) {
	check2D("MatMul", a, b)
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	checkDst("MatMul", dst, m, n)
	ad, bd, od := a.data, b.data, dst.data
	if usePacked(m, k, n) {
		gemmPackedInto(od, ad, bd, m, n, k, false)
		return
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			orow := od[i*n : (i+1)*n]
			for j := range orow {
				orow[j] = 0
			}
			for p := 0; p < k; p++ {
				av := arow[p]
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if m*k*n < parallelFlopThreshold {
		body(0, m)
		return
	}
	Parallel(m, body)
}

// MatMulTransB returns a·bᵀ where a is (m, k) and b is (n, k); result (m, n).
// This avoids materialising the transpose when multiplying by weight
// matrices stored row-major as (out, in).
func MatMulTransB[T Float](a, b *Dense[T]) *Dense[T] {
	check2D("MatMulTransB", a, b)
	out := NewOf[T](a.shape[0], b.shape[0])
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a·bᵀ, overwriting dst.
//
// Large products run through the packed engine: b's rows are packed as
// panel columns, so the same micro-kernels serve both orientations (and
// the float64 packed path keeps the historical single-accumulator
// ascending-k order — it is the bit-exactness oracle, and training
// depends on reproducible arithmetic). Small products — LSTM steps,
// narrow compiled-net tails — skip packing entirely and run the
// dispatched no-copy kernels (dispatch.go): a wide FMA dot per element
// at float32, and a four-column kernel at float64 that advances four
// single-chain accumulators together so the oracle order survives.
// Tiny inner extents (k below one SIMD chunk) stay on the inline scalar
// loops: the dispatched kernels would do all their work in the tail and
// the per-element call overhead dominates — a leading stride-2 conv at
// k = 2 is ~40% slower through the kernel path.
func MatMulTransBInto[T Float](dst, a, b *Dense[T]) {
	check2D("MatMulTransB", a, b)
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", k, k2))
	}
	checkDst("MatMulTransB", dst, m, n)
	ad, bd, od := a.data, b.data, dst.data
	if usePacked(m, k, n) {
		gemmPackedInto(od, ad, bd, m, n, k, true)
		return
	}
	var body func(lo, hi int)
	switch any(od).(type) {
	case []float32:
		if k < 8 {
			break // all-tail for the wide dot kernel: inline loops win
		}
		a32, b32, o32 := any(ad).([]float32), any(bd).([]float32), any(od).([]float32)
		kern := dotKern32
		body = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				arow := a32[i*k : (i+1)*k]
				orow := o32[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					orow[j] = kern(arow, b32[j*k:(j+1)*k])
				}
			}
		}
	case []float64:
		if k < 4 || n < 4 {
			break // ditto for the four-column quad kernel
		}
		a64, b64, o64 := any(ad).([]float64), any(bd).([]float64), any(od).([]float64)
		kern := transBKern64
		body = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				arow := a64[i*k : (i+1)*k]
				orow := o64[i*n : (i+1)*n]
				j := 0
				for ; j+4 <= n; j += 4 {
					kern(orow[j:j+4], arow, b64[j*k:], k)
				}
				for ; j < n; j++ {
					brow := b64[j*k : (j+1)*k]
					var s float64
					for p, av := range arow {
						s += av * brow[p]
					}
					orow[j] = s
				}
			}
		}
	}
	if body == nil {
		body = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				orow := od[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					brow := bd[j*k : (j+1)*k]
					var s T
					for p, av := range arow {
						s += av * brow[p]
					}
					orow[j] = s
				}
			}
		}
	}
	if m*k*n < parallelFlopThreshold {
		body(0, m)
		return
	}
	Parallel(m, body)
}

// MatMulTransA returns aᵀ·b where a is (k, m) and b is (k, n); result (m, n).
// Used for weight gradients: dW = xᵀ·dy without materialising xᵀ.
func MatMulTransA[T Float](a, b *Dense[T]) *Dense[T] {
	check2D("MatMulTransA", a, b)
	out := NewOf[T](a.shape[1], b.shape[1])
	MatMulTransAInto(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ·b, overwriting dst.
//
// The reduction runs down a's rows, so splitting over output rows would
// stride badly; instead output rows are sharded and each worker walks the
// full k extent touching only its own output block.
func MatMulTransAInto[T Float](dst, a, b *Dense[T]) {
	check2D("MatMulTransA", a, b)
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d vs %d", k, k2))
	}
	checkDst("MatMulTransA", dst, m, n)
	ad, bd, od := a.data, b.data, dst.data
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := od[i*n : (i+1)*n]
			for j := range orow {
				orow[j] = 0
			}
		}
		for p := 0; p < k; p++ {
			arow := ad[p*m : p*m+m]
			brow := bd[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := od[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if m*k*n < parallelFlopThreshold {
		body(0, m)
		return
	}
	Parallel(m, body)
}

// MatVec returns the matrix-vector product a·x where a is (m, n) and x has
// length n; the result has length m.
func MatVec[T Float](a, x *Dense[T]) *Dense[T] {
	if len(a.shape) != 2 || len(x.shape) != 1 {
		panic("tensor: MatVec needs a 2-D matrix and 1-D vector")
	}
	m, n := a.shape[0], a.shape[1]
	if x.shape[0] != n {
		panic(fmt.Sprintf("tensor: MatVec dims (%d,%d)·%d", m, n, x.shape[0]))
	}
	out := NewOf[T](m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		var s T
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out
}

// Outer returns the outer product x·yᵀ of two vectors: shape (len(x), len(y)).
func Outer[T Float](x, y *Dense[T]) *Dense[T] {
	if len(x.shape) != 1 || len(y.shape) != 1 {
		panic("tensor: Outer needs 1-D tensors")
	}
	m, n := x.shape[0], y.shape[0]
	out := NewOf[T](m, n)
	for i := 0; i < m; i++ {
		xi := x.data[i]
		row := out.data[i*n : (i+1)*n]
		for j, yj := range y.data {
			row[j] = xi * yj
		}
	}
	return out
}
