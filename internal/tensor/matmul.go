package tensor

import "fmt"

// MatMul returns the matrix product a·b of two 2-D tensors.
// a has shape (m, k) and b has shape (k, n); the result is (m, n).
//
// The inner loop is ordered (i, p, j) so b is scanned row-contiguously,
// which is the cache-friendly layout for row-major data.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul needs 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a·bᵀ where a is (m, k) and b is (n, k); result (m, n).
// This avoids materialising the transpose when multiplying by weight
// matrices stored row-major as (out, in).
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransB needs 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// MatMulTransA returns aᵀ·b where a is (k, m) and b is (k, n); result (m, n).
// Used for weight gradients: dW = xᵀ·dy without materialising xᵀ.
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransA needs 2-D tensors")
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatVec returns the matrix-vector product a·x where a is (m, n) and x has
// length n; the result has length m.
func MatVec(a, x *Tensor) *Tensor {
	if len(a.shape) != 2 || len(x.shape) != 1 {
		panic("tensor: MatVec needs a 2-D matrix and 1-D vector")
	}
	m, n := a.shape[0], a.shape[1]
	if x.shape[0] != n {
		panic(fmt.Sprintf("tensor: MatVec dims (%d,%d)·%d", m, n, x.shape[0]))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out
}

// Outer returns the outer product x·yᵀ of two vectors: shape (len(x), len(y)).
func Outer(x, y *Tensor) *Tensor {
	if len(x.shape) != 1 || len(y.shape) != 1 {
		panic("tensor: Outer needs 1-D tensors")
	}
	m, n := x.shape[0], y.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		xi := x.data[i]
		row := out.data[i*n : (i+1)*n]
		for j, yj := range y.data {
			row[j] = xi * yj
		}
	}
	return out
}
