// Package tensor implements dense multi-dimensional arrays together with
// the linear-algebra and reduction primitives needed by the neural-network
// stack in internal/nn.
//
// The element type is generic: Dense[T] is parameterised over the Float
// constraint (float32 | float64). Two instantiations matter in practice and
// have named aliases — Tensor (float64), the training and bit-exactness
// oracle precision, and Tensor32 (float32), the inference fast path that
// halves memory bandwidth on the edge-deployment targets. All kernels
// (MatMul*, elementwise ops, reductions) are generic, so the same code
// serves both precisions with identical operation ordering; a float64
// instantiation is arithmetically indistinguishable from the pre-generic
// implementation.
//
// Tensors are row-major and contiguous. Shape errors are programmer errors
// and panic with a descriptive message; numeric routines never panic on
// well-shaped input.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Float is the element-type constraint for tensors: exactly the two
// IEEE-754 precisions the numeric core supports. The constraint is
// deliberately non-approximate (no ~): per-type machinery (arena pools,
// SizeOf, the float32 GEMM fast path) type-switches on the concrete
// types, and a named float type would slip past those switches.
type Float interface {
	float32 | float64
}

// Dense is a dense row-major array of T.
//
// The zero value is not usable; construct tensors with New/NewOf, Zeros,
// FromSlice or the random constructors in rng.go.
type Dense[T Float] struct {
	shape []int
	data  []T
}

// Tensor is the float64 tensor — the default precision for training,
// gradients and the bit-exactness oracle path.
type Tensor = Dense[float64]

// Tensor32 is the float32 tensor used by the inference fast path.
type Tensor32 = Dense[float32]

// New returns a zero-filled float64 tensor with the given shape.
// A tensor with no dimensions is a scalar holding one element.
func New(shape ...int) *Tensor { return NewOf[float64](shape...) }

// NewOf returns a zero-filled tensor of element type T with the given shape.
func NewOf[T Float](shape ...int) *Dense[T] {
	n := checkShape(shape)
	return &Dense[T]{shape: append([]int(nil), shape...), data: make([]T, n)}
}

// Zeros is an alias of New, provided for readability at call sites that
// emphasise the initial contents rather than allocation.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a float64 tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor { return FullOf(v, shape...) }

// FullOf returns a tensor of element type T with every element set to v.
func FullOf[T Float](v T, shape ...int) *Dense[T] {
	t := NewOf[T](shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a float64 tensor filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice[T Float](data []T, shape ...int) *Dense[T] {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for shape %v (want %d)", len(data), shape, n))
	}
	return &Dense[T]{shape: append([]int(nil), shape...), data: data}
}

// Scalar returns a 0-dimensional float64 tensor holding v.
func Scalar(v float64) *Tensor { return FromSlice([]float64{v}) }

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Dense[T]) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Dense[T]) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Dense[T]) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Dense[T]) Len() int { return len(t.data) }

// Data exposes the backing slice in row-major order. Mutating it mutates
// the tensor.
func (t *Dense[T]) Data() []T { return t.data }

// Clone returns a deep copy.
func (t *Dense[T]) Clone() *Dense[T] {
	d := make([]T, len(t.data))
	copy(d, t.data)
	return &Dense[T]{shape: append([]int(nil), t.shape...), data: d}
}

// Reshape returns a view of the same data with a new shape. The element
// count must match. One dimension may be -1 to infer its size.
func (t *Dense[T]) Reshape(shape ...int) *Dense[T] {
	shape = append([]int(nil), shape...)
	infer := -1
	n := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer != -1 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		case d <= 0:
			panic(fmt.Sprintf("tensor: invalid reshape %v", shape))
		default:
			n *= d
		}
	}
	if infer != -1 {
		if len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer reshape %v for %d elements", shape, len(t.data)))
		}
		shape[infer] = len(t.data) / n
		n *= shape[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v incompatible with %d elements", shape, len(t.data)))
	}
	return &Dense[T]{shape: shape, data: t.data}
}

// index converts multi-dimensional indices to a flat offset.
func (t *Dense[T]) index(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-dim tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given indices.
func (t *Dense[T]) At(idx ...int) T { return t.data[t.index(idx)] }

// Set assigns the element at the given indices.
func (t *Dense[T]) Set(v T, idx ...int) { t.data[t.index(idx)] = v }

// At2 is a fast accessor for 2-D tensors.
func (t *Dense[T]) At2(i, j int) T { return t.data[i*t.shape[1]+j] }

// Set2 is a fast mutator for 2-D tensors.
func (t *Dense[T]) Set2(v T, i, j int) { t.data[i*t.shape[1]+j] = v }

// At3 is a fast accessor for 3-D tensors.
func (t *Dense[T]) At3(i, j, k int) T {
	return t.data[(i*t.shape[1]+j)*t.shape[2]+k]
}

// Set3 is a fast mutator for 3-D tensors.
func (t *Dense[T]) Set3(v T, i, j, k int) {
	t.data[(i*t.shape[1]+j)*t.shape[2]+k] = v
}

// Row returns a view of row i of a 2-D tensor as a 1-D tensor sharing data.
func (t *Dense[T]) Row(i int) *Dense[T] {
	if len(t.shape) != 2 {
		panic("tensor: Row on non-2D tensor")
	}
	c := t.shape[1]
	return &Dense[T]{shape: []int{c}, data: t.data[i*c : (i+1)*c]}
}

// SliceRows returns a view of rows [lo, hi) of a tensor whose first
// dimension indexes rows. Data is shared.
func (t *Dense[T]) SliceRows(lo, hi int) *Dense[T] {
	if len(t.shape) == 0 {
		panic("tensor: SliceRows on scalar")
	}
	if lo < 0 || hi > t.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for dim %d", lo, hi, t.shape[0]))
	}
	stride := len(t.data) / t.shape[0]
	shape := append([]int(nil), t.shape...)
	shape[0] = hi - lo
	return &Dense[T]{shape: shape, data: t.data[lo*stride : hi*stride]}
}

// SameShape reports whether a and b have identical shapes.
func SameShape[T Float](a, b *Dense[T]) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Equal reports whether a and b have the same shape and every pair of
// elements differs by at most tol.
func Equal[T Float](a, b *Dense[T], tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if math.Abs(float64(a.data[i])-float64(b.data[i])) > tol {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones as a summary.
func (t *Dense[T]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g … %g] (%d elems)", t.data[0], t.data[1], t.data[len(t.data)-1], len(t.data))
	}
	return b.String()
}

func assertSameShape[T Float](op string, a, b *Dense[T]) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
