package tensor

import (
	"fmt"
	"testing"
)

// The int8 qGEMM contract is stricter than the float engine's: int32
// accumulation is exact, so every kernel family must agree with the
// scalar reference bit-for-bit — equality, not tolerance. The shapes
// below stress panel edges (rows ∤ 16), pair padding (odd k) and the
// multi-panel/multi-block sweeps, with values pushed to ±127 so any
// intermediate saturation (e.g. a VPMADDUBSW-style int16 overflow)
// would be caught immediately.

var qgemmShapes = []struct{ m, k, rows int }{
	{1, 1, 1},
	{1, 3, 16},
	{3, 5, 7},
	{4, 8, 16},
	{5, 9, 17},  // odd k pad + one channel into the second panel
	{7, 64, 33}, // panel boundary crossing on rows
	{13, 127, 40},
	{64, 96, 48}, // above the parallel threshold
}

// refQGemm is the scalar reference: out[i,r] = Σ_c x[i,c]·w[r,c], exact
// int32.
func refQGemm(x, w []int8, m, k, rows int) []int32 {
	out := make([]int32, m*rows)
	for i := 0; i < m; i++ {
		for r := 0; r < rows; r++ {
			var acc int32
			for c := 0; c < k; c++ {
				acc += int32(x[i*k+c]) * int32(w[r*k+c])
			}
			out[i*rows+r] = acc
		}
	}
	return out
}

// withGenericQGemm runs f with the portable int8 kernel installed.
func withGenericQGemm(f func()) {
	old, oldName := qgemmKern, qgemmKernelName
	qgemmKern, qgemmKernelName = qgemmKernelGeneric, "generic"
	defer func() { qgemmKern, qgemmKernelName = old, oldName }()
	f()
}

func randInt8s(rng *RNG, n int, extreme bool) []int8 {
	out := make([]int8, n)
	for i := range out {
		if extreme {
			// Saturation stress: mostly ±127 with a few moderates.
			switch rng.Intn(4) {
			case 0:
				out[i] = 127
			case 1:
				out[i] = -127
			case 2:
				out[i] = -128
			default:
				out[i] = int8(rng.Intn(255) - 127)
			}
		} else {
			out[i] = int8(rng.Intn(255) - 127)
		}
	}
	return out
}

func qgemmInto(x, w []int8, m, k, rows int) []int32 {
	bP := make([]int8, QGemmPackedLen(rows, k))
	QGemmPackB(bP, w, rows, k)
	out := make([]int32, m*rows)
	QGemmTransB(out, x, bP, m, k, rows)
	return out
}

func checkI32Equal(t *testing.T, ctx string, got, want []int32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %d, reference %d (int32 path must be exact)", ctx, i, got[i], want[i])
		}
	}
}

func TestQGemmEquivalence(t *testing.T) {
	for _, s := range qgemmShapes {
		for _, extreme := range []bool{false, true} {
			t.Run(fmt.Sprintf("%dx%dx%d/extreme=%v", s.m, s.k, s.rows, extreme), func(t *testing.T) {
				rng := NewRNG(uint64(s.m*1000 + s.k*10 + s.rows))
				x := randInt8s(rng, s.m*s.k, extreme)
				w := randInt8s(rng, s.rows*s.k, extreme)
				want := refQGemm(x, w, s.m, s.k, s.rows)
				checkI32Equal(t, qgemmKernelName, qgemmInto(x, w, s.m, s.k, s.rows), want)
				withGenericQGemm(func() {
					checkI32Equal(t, "generic", qgemmInto(x, w, s.m, s.k, s.rows), want)
				})
			})
		}
	}
}

// TestQGemmAccumulatorHeadroom drives the worst-case dot — every operand
// at -128, the magnitude extreme — at the maximum admissible k, where
// the exact result k·2^14 = 2^30 is within one bit of int32 overflow.
// Any kernel that widened late, saturated an intermediate, or
// accumulated in 16 bits would diverge here; and beyond the guard the
// engine must refuse rather than silently wrap.
func TestQGemmAccumulatorHeadroom(t *testing.T) {
	k := qgemmMaxK
	x := make([]int8, k)
	w := make([]int8, k)
	for i := range x {
		x[i] = -128
		w[i] = -128
	}
	want := int32(k) * 128 * 128
	got := qgemmInto(x, w, 1, k, 1)
	if got[0] != want {
		t.Fatalf("worst-case dot at k=%d: got %d, want %d", k, got[0], want)
	}
	withGenericQGemm(func() {
		if g := qgemmInto(x, w, 1, k, 1); g[0] != want {
			t.Fatalf("generic worst-case dot: got %d, want %d", g[0], want)
		}
	})

	defer func() {
		if recover() == nil {
			t.Fatalf("QGemmTransB accepted k=%d beyond the overflow guard", qgemmMaxK+1)
		}
	}()
	qgemmInto(make([]int8, qgemmMaxK+1), make([]int8, qgemmMaxK+1), 1, qgemmMaxK+1, 1)
}

// TestQGemmKernelName sanity-checks the int8 dispatch report; CI greps
// the -v output to assert the portable legs really run "generic".
func TestQGemmKernelName(t *testing.T) {
	switch QGemmKernelName() {
	case "avx2", "neon", "generic":
		t.Logf("qgemm kernel dispatch: %s", QGemmKernelName())
	default:
		t.Fatalf("QGemmKernelName() = %q, want avx2|neon|generic", QGemmKernelName())
	}
}

// FuzzQGemm drives random shapes — panel-misaligned rows, odd k, and
// byte values spanning the full int8 range including -128 — through the
// active and generic kernels against the scalar reference.
func FuzzQGemm(f *testing.F) {
	f.Add(uint8(5), uint8(9), uint8(17), uint64(1))
	f.Add(uint8(1), uint8(255), uint8(16), uint64(2))
	f.Add(uint8(13), uint8(127), uint8(40), uint64(3))
	f.Fuzz(func(t *testing.T, m8, k8, r8 uint8, seed uint64) {
		m, k, rows := int(m8)%32+1, int(k8)+1, int(r8)%48+1
		rng := NewRNG(seed)
		x := make([]int8, m*k)
		w := make([]int8, rows*k)
		for i := range x {
			x[i] = int8(rng.Uint64())
		}
		for i := range w {
			w[i] = int8(rng.Uint64())
		}
		want := refQGemm(x, w, m, k, rows)
		checkI32Equal(t, "active", qgemmInto(x, w, m, k, rows), want)
		withGenericQGemm(func() {
			checkI32Equal(t, "generic", qgemmInto(x, w, m, k, rows), want)
		})
	})
}
