//go:build !noasm

package tensor

import "os"

// NEON micro-kernels for the packed GEMM engine on arm64 (the Jetson-
// class boards internal/edge projects onto). ASIMD is an architectural
// baseline on AArch64, so no feature detection is needed; the `noasm`
// build tag excludes the kernels and VARADE_NOASM skips them at runtime.
//
// Both kernels use FMLA. On arm64 that matches the scalar oracle
// bit-for-bit: the Go compiler fuses `acc += a*b` into FMADD on this
// architecture, so fused per-lane accumulation in ascending-k order is
// exactly the arithmetic the scalar float64 loops produce here.

// gemmKernel8x8NEON computes the 8×8 float32 tile update
// c[i*ldc+j] += Σ_p aP[p*8+i]·bP[p*8+j].
//
//go:noescape
func gemmKernel8x8NEON(c []float32, ldc int, aP, bP []float32, kc int)

// gemmKernel4x4NEON computes the 4×4 float64 tile update.
//
//go:noescape
func gemmKernel4x4NEON(c []float64, ldc int, aP, bP []float64, kc int)

// qgemmKernel4x16NEON computes the 4×16 int8 qGEMM tile update with
// SSHLL + SMLAL (widening multiply-accumulate): exact int32
// accumulation, bit-identical to the portable kernel.
//
//go:noescape
func qgemmKernel4x16NEON(acc []int32, ldc int, aP []int16, bP []int8, kp int)

// transBPairsNEON computes the four-column float64 TransB dot over the
// first 2·⌊len(a)/2⌋ steps (fused FMLA, ascending-p per lane — which on
// arm64 IS the scalar oracle's arithmetic, since the Go compiler fuses
// `s += a*b` into FMADD here). The wrapper finishes the odd tail in Go.
//
//go:noescape
func transBPairsNEON(dst, a, b []float64, ldb int)

// dotChunksNEON computes the float32 dot over the first 4·⌊len(a)/4⌋
// elements with 4-lane FMLA (tolerance-gated; free to reassociate).
//
//go:noescape
func dotChunksNEON(a, b []float32) float32

// transBKernel4x64NEON is the dispatch-installed float64 small-TransB
// kernel: SIMD pairs in asm, fused scalar tail in Go.
func transBKernel4x64NEON(dst, a, b []float64, ldb int) {
	k := len(a)
	transBPairsNEON(dst, a, b, ldb)
	if k%2 == 1 {
		p := k - 1
		av := a[p]
		dst[0] += av * b[p]
		dst[1] += av * b[ldb+p]
		dst[2] += av * b[2*ldb+p]
		dst[3] += av * b[3*ldb+p]
	}
}

// dotKernel32NEON is the dispatch-installed float32 small-TransB dot.
func dotKernel32NEON(a, b []float32) float32 {
	s := dotChunksNEON(a, b)
	for p := len(a) &^ 3; p < len(a); p++ {
		s += a[p] * b[p]
	}
	return s
}

func init() {
	if os.Getenv("VARADE_NOASM") != "" {
		return
	}
	gemmKern32 = gemmKernel8x8NEON
	gemmKern64 = gemmKernel4x4NEON
	gemmKernelName = "neon"
	qgemmKern = qgemmKernel4x16NEON
	qgemmKernelName = "neon"
	dotKern32 = dotKernel32NEON
	transBKern64 = transBKernel4x64NEON
}
