//go:build !noasm

package tensor

import "os"

// NEON micro-kernels for the packed GEMM engine on arm64 (the Jetson-
// class boards internal/edge projects onto). ASIMD is an architectural
// baseline on AArch64, so no feature detection is needed; the `noasm`
// build tag excludes the kernels and VARADE_NOASM skips them at runtime.
//
// Both kernels use FMLA. On arm64 that matches the scalar oracle
// bit-for-bit: the Go compiler fuses `acc += a*b` into FMADD on this
// architecture, so fused per-lane accumulation in ascending-k order is
// exactly the arithmetic the scalar float64 loops produce here.

// gemmKernel8x8NEON computes the 8×8 float32 tile update
// c[i*ldc+j] += Σ_p aP[p*8+i]·bP[p*8+j].
//
//go:noescape
func gemmKernel8x8NEON(c []float32, ldc int, aP, bP []float32, kc int)

// gemmKernel4x4NEON computes the 4×4 float64 tile update.
//
//go:noescape
func gemmKernel4x4NEON(c []float64, ldc int, aP, bP []float64, kc int)

func init() {
	if os.Getenv("VARADE_NOASM") != "" {
		return
	}
	gemmKern32 = gemmKernel8x8NEON
	gemmKern64 = gemmKernel4x4NEON
	gemmKernelName = "neon"
}
