package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Cross-process merge: a router (or any aggregator) scrapes the text
// exposition of several backend processes and rebuilds the series into
// one registry of its own, typically appending a `backend` label so the
// origin stays queryable. Because WritePrometheus emits histogram
// buckets at their exact native upper bounds, a scraped histogram
// reconstructs bucket-exactly — merging across processes is the same
// bucket-wise addition Histogram.Merge does in-process.

// MergeSnapshot adds a snapshot's buckets into h — the cross-process
// form of Merge, for snapshots reconstructed from a scraped exposition.
// Uppers produced by this package's histograms map back to their exact
// native bucket; foreign uppers land in the bucket containing them.
func (h *Histogram) MergeSnapshot(s HistogramSnapshot) {
	var total uint64
	for _, b := range s.Buckets {
		if b.Count == 0 {
			continue
		}
		h.buckets[bucketIndex(b.Upper)].Add(b.Count)
		total += b.Count
	}
	h.count.Add(total)
	h.sum.Add(s.Sum)
}

// AbsorbPrometheusText parses a text-format (0.0.4) exposition body — as
// written by Registry.WritePrometheus — and inserts every counter, gauge,
// and histogram series into r with the extra labels appended (an extra
// label replaces a same-named scraped label). Untyped families and
// summaries are skipped. Counter values accumulate and histogram buckets
// merge bucket-wise, so absorb the same origin into a fresh registry per
// scrape: re-absorbing into a long-lived registry double-counts.
func (r *Registry) AbsorbPrometheusText(body string, extra ...Label) error {
	if r == nil {
		return nil
	}
	typed := map[string]string{} // family -> TYPE
	help := map[string]string{}  // family -> unescaped HELP

	// Histogram series accumulate across the whole body (their _sum and
	// _count lines trail the buckets) and rebuild after the parse.
	type histState struct {
		labels   []Label // series labels minus le
		uppers   []int64
		cums     []float64
		infCum   float64
		hasInf   bool
		sum      float64
		count    float64
		hasCount bool
	}
	hists := map[string]*histState{}

	for lineNo, raw := range strings.Split(body, "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		where := func(msg string, args ...any) error {
			return fmt.Errorf("absorb line %d: %s: %q", lineNo+1, fmt.Sprintf(msg, args...), line)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue
			}
			name := fields[2]
			if !validMetricName(name) {
				return where("invalid metric name in %s", fields[1])
			}
			switch fields[1] {
			case "HELP":
				if len(fields) == 4 {
					help[name] = unescapeHelp(fields[3])
				}
			case "TYPE":
				if len(fields) != 4 {
					return where("TYPE missing kind")
				}
				typed[name] = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return where("%v", err)
		}
		fam := familyOf(name, typed)
		switch typed[fam] {
		case "counter":
			r.Counter(fam, help[fam], withExtra(labels, extra)...).Add(int64(math.Round(value)))
		case "gauge":
			r.Gauge(fam, help[fam], withExtra(labels, extra)...).Set(value)
		case "histogram":
			le, rest := labels.split("le")
			key := fam + "{" + rest.canonical() + "}"
			h := hists[key]
			if h == nil {
				h = &histState{labels: withExtra(rest, extra)}
				hists[key] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					return where("histogram bucket without le label")
				}
				if le == "+Inf" {
					h.infCum, h.hasInf = value, true
					break
				}
				upper, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return where("unparseable le %q", le)
				}
				h.uppers = append(h.uppers, int64(math.Ceil(upper)))
				h.cums = append(h.cums, value)
			case strings.HasSuffix(name, "_sum"):
				h.sum = value
			case strings.HasSuffix(name, "_count"):
				h.count, h.hasCount = value, true
			}
		}
	}

	// Rebuild each histogram series: cumulative buckets back to deltas,
	// then one MergeSnapshot into the destination series.
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		h := hists[key]
		fam := key[:strings.IndexByte(key, '{')]
		snap := HistogramSnapshot{Sum: int64(math.Round(h.sum))}
		order := make([]int, len(h.uppers))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return h.uppers[order[a]] < h.uppers[order[b]] })
		var prev float64
		for _, i := range order {
			cum := h.cums[i]
			if cum < prev {
				return fmt.Errorf("absorb histogram %s: buckets not cumulative (%g < %g)", key, cum, prev)
			}
			if d := uint64(cum - prev); d > 0 {
				snap.Buckets = append(snap.Buckets, BucketCount{Upper: h.uppers[i], Count: d})
				snap.Count += d
			}
			prev = cum
		}
		// Observations past the last finite bucket (none for this
		// package's own geometry, which covers all of int64) credit the
		// largest seen bound so count stays consistent with the buckets.
		total := h.infCum
		if h.hasCount {
			total = h.count
		} else if !h.hasInf {
			total = prev
		}
		if d := uint64(total - prev); d > 0 && len(snap.Buckets) > 0 {
			last := &snap.Buckets[len(snap.Buckets)-1]
			last.Count += d
			snap.Count += d
		}
		r.Histogram(fam, help[fam], h.labels...).MergeSnapshot(snap)
	}
	return nil
}

// withExtra appends extra labels to a scraped label set; an extra label
// replaces a same-named scraped label rather than duplicating it.
func withExtra(labels lintLabels, extra []Label) []Label {
	out := make([]Label, 0, len(labels)+len(extra))
	for _, l := range labels {
		replaced := false
		for _, e := range extra {
			if e.Name == l.Name {
				replaced = true
				break
			}
		}
		if !replaced {
			out = append(out, l)
		}
	}
	return append(out, extra...)
}

// unescapeHelp reverses escapeHelp (backslash and newline escapes).
func unescapeHelp(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
