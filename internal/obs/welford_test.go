package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var w Welford
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*4 + 10
		w.Add(xs[i])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	s := w.Snapshot()
	if s.Count != uint64(len(xs)) {
		t.Fatalf("count %d", s.Count)
	}
	if math.Abs(s.Mean-mean) > 1e-9 {
		t.Fatalf("mean %g vs %g", s.Mean, mean)
	}
	if math.Abs(s.Variance()-m2/float64(len(xs))) > 1e-6 {
		t.Fatalf("variance %g vs %g", s.Variance(), m2/float64(len(xs)))
	}
	if s.Last != xs[len(xs)-1] {
		t.Fatalf("last %g", s.Last)
	}
}

func TestWelfordMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var a, b, u Welford
	for i := 0; i < 5000; i++ {
		x := rng.ExpFloat64()
		a.Add(x)
		u.Add(x)
	}
	for i := 0; i < 3000; i++ {
		x := rng.NormFloat64() * 100
		b.Add(x)
		u.Add(x)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	us := u.Snapshot()
	if m.Count != us.Count {
		t.Fatalf("count %d vs %d", m.Count, us.Count)
	}
	if math.Abs(m.Mean-us.Mean) > 1e-9*math.Abs(us.Mean)+1e-12 {
		t.Fatalf("mean %g vs %g", m.Mean, us.Mean)
	}
	if math.Abs(m.Variance()-us.Variance()) > 1e-6*us.Variance() {
		t.Fatalf("variance %g vs %g", m.Variance(), us.Variance())
	}
	if m.Min != us.Min || m.Max != us.Max {
		t.Fatalf("min/max %g/%g vs %g/%g", m.Min, m.Max, us.Min, us.Max)
	}
	// Identity under empty merge.
	if got := a.Snapshot().Merge(WelfordSnapshot{}); got != a.Snapshot() {
		t.Fatal("merge with empty must be identity")
	}
}

func TestRateEWMAConverges(t *testing.T) {
	r := NewRateEWMA(2 * time.Second)
	t0 := time.Unix(1000, 0)
	// 500 events/s observed every 100ms for 20s → converges to ~500.
	count := int64(0)
	var rate float64
	for i := 0; i < 200; i++ {
		count += 50
		rate = r.Observe(count, t0.Add(time.Duration(i+1)*100*time.Millisecond))
	}
	if rate < 450 || rate > 550 {
		t.Fatalf("rate %g, want ~500", rate)
	}
	// Traffic stops: rate must decay toward zero.
	for i := 0; i < 100; i++ {
		rate = r.Observe(count, t0.Add(20*time.Second).Add(time.Duration(i+1)*100*time.Millisecond))
	}
	if rate > 5 {
		t.Fatalf("rate %g after 10s idle, want ~0", rate)
	}
	// First observation primes without reporting a rate.
	r2 := NewRateEWMA(time.Second)
	if got := r2.Observe(1_000_000, t0); got != 0 {
		t.Fatalf("priming observation reported %g", got)
	}
	// Sub-millisecond re-poll must not perturb the estimate.
	r2.Observe(1_000_100, t0.Add(time.Second))
	before := r2.Rate()
	r2.Observe(9_999_999, t0.Add(time.Second+100*time.Microsecond))
	if r2.Rate() != before {
		t.Fatal("sub-ms re-poll changed the estimate")
	}
}
