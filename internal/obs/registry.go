package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value pair on a series. Series identity is the
// metric name plus the full ordered label set.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// kind tags what a family holds, for the # TYPE exposition line.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series []*series // insertion order; sorted at exposition time
}

// series is one labeled instance of a family.
type series struct {
	key    string // canonical sorted label string, exposition-ready
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry holds labeled metric families. Get-or-create takes a mutex;
// the handles returned are lock-free. A nil *Registry is a valid no-op
// sink: Counter/Gauge/Histogram on nil return live but unregistered
// instruments, so instrumented code never branches on "is telemetry on".
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
	ord []string // family insertion order (exposition sorts anyway; kept for debugging)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fam: make(map[string]*family)}
}

// labelKey renders labels sorted by name in exposition syntax:
// `{a="x",b="y"}`, empty string for no labels. Values are escaped per
// the Prometheus text format (backslash, double-quote, newline).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getSeries finds or creates the series for (name, labels) in a family
// of kind k, creating the family (with help text) on first use.
func (r *Registry) getSeries(name, help string, k kind, labels []Label) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.fam[name] = f
		r.ord = append(r.ord, name)
	}
	for _, s := range f.series {
		if s.key == key {
			return s
		}
	}
	s := &series{key: key, labels: append([]Label(nil), labels...)}
	switch k {
	case kindCounter:
		s.ctr = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = &Histogram{}
	}
	f.series = append(f.series, s)
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. On a nil registry it returns a fresh unregistered counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.getSeries(name, help, kindCounter, labels).ctr
}

// Gauge returns the gauge for (name, labels), creating it on first use.
// On a nil registry it returns a fresh unregistered gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.getSeries(name, help, kindGauge, labels).gauge
}

// Histogram returns the histogram for (name, labels), creating it on
// first use. On a nil registry it returns a fresh unregistered
// histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	return r.getSeries(name, help, kindHistogram, labels).hist
}

// VisitHistograms calls fn for every histogram series under the given
// family name (no-op if absent). Used to merge per-group histograms
// into top-level figures.
func (r *Registry) VisitHistograms(name string, fn func(labels []Label, h *Histogram)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	f := r.fam[name]
	var snap []*series
	if f != nil {
		snap = append(snap, f.series...)
	}
	r.mu.Unlock()
	for _, s := range snap {
		if s.hist != nil {
			fn(s.labels, s.hist)
		}
	}
}

// WritePrometheus renders every family in the registry in the
// Prometheus text exposition format (version 0.0.4), families and
// series in sorted order for deterministic output. Histograms emit
// cumulative `_bucket{le=...}` lines for each non-empty native bucket
// plus `le="+Inf"`, then `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fam))
	for _, f := range r.fam {
		fams = append(fams, f)
	}
	// Copy the series slices so exposition can render outside the lock.
	type famSnap struct {
		f      *family
		series []*series
	}
	snaps := make([]famSnap, len(fams))
	for i, f := range fams {
		snaps[i] = famSnap{f: f, series: append([]*series(nil), f.series...)}
	}
	r.mu.Unlock()

	sort.Slice(snaps, func(i, j int) bool { return snaps[i].f.name < snaps[j].f.name })
	for _, fs := range snaps {
		sort.Slice(fs.series, func(i, j int) bool { return fs.series[i].key < fs.series[j].key })
		f := fs.f
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range fs.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.key, s.ctr.Load())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.key, formatFloat(s.gauge.Load()))
			case kindHistogram:
				writeHistogram(w, f.name, s)
			}
		}
	}
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// formatFloat renders a float without exponent notation surprises for
// integral values; Prometheus accepts Go's 'g' formatting.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// writeHistogram emits one histogram series. The `le` label is appended
// to the series' own labels; buckets are cumulative per the format.
func writeHistogram(w io.Writer, name string, s *series) {
	snap := s.hist.Snapshot()
	inner := strings.TrimSuffix(strings.TrimPrefix(s.key, "{"), "}")
	var cum uint64
	for _, b := range snap.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(inner, fmt.Sprintf("%d", b.Upper)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(inner, "+Inf"), snap.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, s.key, snap.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.key, snap.Count)
}

func bucketLabels(inner, le string) string {
	if inner == "" {
		return fmt.Sprintf(`{le="%s"}`, le)
	}
	return fmt.Sprintf(`{%s,le="%s"}`, inner, le)
}
