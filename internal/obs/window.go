package obs

// Windowed read-back: cursors that turn the cumulative counters the
// exposition plane publishes into per-interval deltas a control loop can
// consume. The closed-loop batch scheduler in internal/serve reads its
// group's amortisation table and stage timers this way — reacting to
// what the pipeline did since the last evaluation, not to lifetime
// averages that stop moving once a server has been up for an hour.
//
// Cursors are single-consumer by design: the state is one int64 per
// counter with no synchronisation of its own, so each control loop owns
// its cursors and reads them from one goroutine (or under its own lock).
// The underlying counters stay atomic, so concurrent writers are fine.

// Cursor reads a Counter incrementally: Take returns what accrued since
// the previous Take (or since the cursor was created) and advances the
// cursor past it.
type Cursor struct {
	c    *Counter
	last int64
}

// NewCursor returns a cursor positioned at c's current value, so the
// first Take reports only movement from now on.
func NewCursor(c *Counter) Cursor {
	return Cursor{c: c, last: c.Load()}
}

// Take returns the counter's movement since the last Take and advances
// the cursor.
func (u *Cursor) Take() int64 {
	cur := u.c.Load()
	d := cur - u.last
	u.last = cur
	return d
}

// Peek returns the movement since the last Take without advancing.
func (u *Cursor) Peek() int64 { return u.c.Load() - u.last }

// StageDelta is one windowed reading of a StageTimer: the nanoseconds,
// batch calls and windows it accumulated over the interval.
type StageDelta struct {
	Ns      int64
	Calls   int64
	Windows int64
}

// NsPerCall returns the interval's average nanoseconds per batch call
// (0 when no calls landed in the interval).
func (d StageDelta) NsPerCall() int64 {
	if d.Calls <= 0 {
		return 0
	}
	return d.Ns / d.Calls
}

// NsPerWindow returns the interval's average nanoseconds per window
// (0 when no windows landed in the interval).
func (d StageDelta) NsPerWindow() float64 {
	if d.Windows <= 0 {
		return 0
	}
	return float64(d.Ns) / float64(d.Windows)
}

// StageCursor reads a StageTimer's counter triple incrementally.
type StageCursor struct {
	ns, calls, windows Cursor
}

// NewStageCursor returns a cursor positioned at t's current totals.
func NewStageCursor(t *StageTimer) StageCursor {
	return StageCursor{
		ns:      NewCursor(t.Ns),
		calls:   NewCursor(t.Calls),
		windows: NewCursor(t.Windows),
	}
}

// Take returns the stage's movement since the last Take and advances the
// cursor. The three deltas are read independently (not as one atomic
// snapshot); a flush racing the read skews one interval by at most one
// batch, which the consuming control loops tolerate by construction.
func (s *StageCursor) Take() StageDelta {
	return StageDelta{Ns: s.ns.Take(), Calls: s.calls.Take(), Windows: s.windows.Take()}
}
