package obs

import (
	"math"
	"sync"
)

// Welford is a streaming distribution sketch: count, mean and M2
// (sum of squared deviations) via Welford's online algorithm, plus
// min/max/last. It is the drift-detection substrate: per-session and
// per-group score sketches are compared through their (mean, variance)
// to flag sessions whose score distribution has walked away from the
// group's. Guarded by a mutex — score emission is per-window, not
// per-sample, so the cost is noise; the payoff is a torn-read-free
// (mean, M2) pair, which an atomic encoding cannot give without a
// 128-bit CAS loop.
type Welford struct {
	mu   sync.Mutex
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
	last float64
}

// Add folds one observation into the sketch.
func (w *Welford) Add(x float64) {
	w.mu.Lock()
	w.addLocked(x)
	w.mu.Unlock()
}

// AddBatch folds a run of observations under one lock acquisition —
// the flusher's per-batch path, so the sketch costs one lock per flush
// like the stage timers, not one per window.
func (w *Welford) AddBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	w.mu.Lock()
	for _, x := range xs {
		w.addLocked(x)
	}
	w.mu.Unlock()
}

func (w *Welford) addLocked(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
	w.last = x
}

// WelfordSnapshot is a point-in-time copy of a sketch.
type WelfordSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Last  float64 `json:"last"`
}

// Snapshot returns a consistent copy of the sketch.
func (w *Welford) Snapshot() WelfordSnapshot {
	w.mu.Lock()
	s := WelfordSnapshot{Count: w.n, Mean: w.mean, M2: w.m2, Min: w.min, Max: w.max, Last: w.last}
	w.mu.Unlock()
	return s
}

// Variance returns the population variance of the snapshot (0 for
// fewer than two observations).
func (s WelfordSnapshot) Variance() float64 {
	if s.Count < 2 {
		return 0
	}
	return s.M2 / float64(s.Count)
}

// Stddev returns the population standard deviation of the snapshot.
func (s WelfordSnapshot) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Merge combines two snapshots with the parallel-variance (Chan et al.)
// update, so per-session sketches aggregate into a group sketch exactly.
func (s WelfordSnapshot) Merge(o WelfordSnapshot) WelfordSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	n := s.Count + o.Count
	d := o.Mean - s.Mean
	mean := s.Mean + d*float64(o.Count)/float64(n)
	m2 := s.M2 + o.M2 + d*d*float64(s.Count)*float64(o.Count)/float64(n)
	out := WelfordSnapshot{Count: n, Mean: mean, M2: m2, Min: s.Min, Max: s.Max, Last: o.Last}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	return out
}
