package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a log-bucketed value histogram over non-negative int64
// observations (nanoseconds, byte counts, batch sizes). Recording is
// O(1) and wait-free: one atomic add on the bucket, one on the sum.
// Quantiles are exact to the bucket: with 2^hSubBits sub-buckets per
// octave the reported value is the upper bound of the bucket containing
// the requested rank, at most ~3.1% above the true value. Histograms
// with the same geometry (all Histograms in this package) merge by
// bucket-wise addition, which is associative and commutative — the
// property the server uses to report top-level latency as the merge of
// per-group histograms.
//
// Layout: values below 2^hSubBits land in an exact unit-width bucket
// (index == value). Above that, each power-of-two octave e (values in
// [2^e, 2^(e+1))) is split into 2^hSubBits equal sub-buckets; octave e
// starts at index (e-hSubBits+1)<<hSubBits, so consecutive octaves tile
// the index space contiguously after the unit region.
const (
	hSubBits = 5 // 32 sub-buckets per octave → ≤ 1/32 relative bucket width
	hSubMask = (1 << hSubBits) - 1

	// Non-negative int64 values span octaves hSubBits..62; the top
	// octave's last sub-bucket ends at index (64-hSubBits)<<hSubBits - 1.
	hNumBuckets = (64 - hSubBits) << hSubBits
)

type Histogram struct {
	buckets [hNumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// bucketIndex maps a value to its bucket. Exact for v < 2^hSubBits.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 1<<hSubBits {
		return int(u)
	}
	e := uint(bits.Len64(u)) - 1
	return int(e-hSubBits+1)<<hSubBits + int(u>>(e-hSubBits))&hSubMask
}

// bucketUpper returns the inclusive upper bound of bucket i — the value
// Quantile reports when the rank falls in bucket i.
func bucketUpper(i int) int64 {
	if i < 1<<hSubBits {
		return int64(i)
	}
	e := uint(i>>hSubBits) + hSubBits - 1
	m := uint64(i & hSubMask)
	return int64((1<<hSubBits+m+1)<<(e-hSubBits)) - 1
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// RecordN adds n identical observations in one pair of atomic ops per
// shared counter — used when a whole flush shares one per-window cost.
func (h *Histogram) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(n)
	h.count.Add(n)
	h.sum.Add(v * int64(n))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Merge adds o's buckets into h. Both histograms may be concurrently
// recorded into; the merge is then a consistent-enough snapshot (each
// bucket read once) but not atomic across buckets.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	var total uint64
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
			total += n
		}
	}
	// Keep count consistent with the buckets actually copied, not with
	// o.count (which may have advanced past the bucket reads).
	h.count.Add(total)
	h.sum.Add(o.sum.Load())
}

// Quantile returns the value at quantile q in [0,1]: the upper bound of
// the first bucket whose cumulative count reaches ceil(q·N). Returns 0
// for an empty histogram. q outside [0,1] is clamped.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	// Concurrent records can grow count past the bucket sum we walked;
	// fall back to the highest non-empty bucket.
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i].Load() != 0 {
			return bucketUpper(i)
		}
	}
	return 0
}

// Snapshot returns the non-empty buckets as (upperBound, count) pairs in
// ascending order plus the total count and sum — the exposition format's
// input. The snapshot is taken bucket-by-bucket and is not atomic under
// concurrent recording; count is the sum of the bucket counts read, so
// cumulative exposition stays internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, BucketCount{Upper: bucketUpper(i), Count: n})
			s.Count += n
		}
	}
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram's non-empty
// buckets.
type HistogramSnapshot struct {
	Buckets []BucketCount
	Count   uint64
	Sum     int64
}

// BucketCount is one non-empty bucket: Count observations ≤ Upper.
type BucketCount struct {
	Upper int64
	Count uint64
}

// Quantile computes a quantile from the snapshot with the same
// upper-bound semantics as Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Upper
		}
	}
	return s.Buckets[len(s.Buckets)-1].Upper
}
