package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help", L("group", "a"))
	c2 := r.Counter("x_total", "help", L("group", "a"))
	c3 := r.Counter("x_total", "help", L("group", "b"))
	if c1 != c2 {
		t.Fatal("same (name,labels) must return the same counter")
	}
	if c1 == c3 {
		t.Fatal("different labels must return different counters")
	}
	// Label order must not matter for identity.
	h1 := r.Histogram("h_ns", "", L("a", "1"), L("b", "2"))
	h2 := r.Histogram("h_ns", "", L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order must not change series identity")
	}
}

func TestNilRegistryIsValidSink(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(3)
	r.Histogram("c", "").Record(5)
	st := NewStageTimer(r, "varade_test_stage", "", L("stage", "x"))
	st.Observe(time.Millisecond, 4)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil registry must render nothing")
	}
	r.VisitHistograms("c", func([]Label, *Histogram) { t.Fatal("nil registry has no series") })
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("varade_windows_total", "Windows scored.", L("group", "m@v1:int8"), L("precision", "int8")).Add(10)
	r.Gauge("varade_sessions_active", "Active sessions.").Set(3)
	h := r.Histogram("varade_latency_ns", "Coalesce latency.", L("group", "m@v1:int8"))
	h.Record(100)
	h.Record(200)
	h.Record(100)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE varade_windows_total counter",
		"# HELP varade_windows_total Windows scored.",
		`varade_windows_total{group="m@v1:int8",precision="int8"} 10`,
		"# TYPE varade_sessions_active gauge",
		"varade_sessions_active 3",
		"# TYPE varade_latency_ns histogram",
		`varade_latency_ns_bucket{group="m@v1:int8",le="+Inf"} 3`,
		`varade_latency_ns_sum{group="m@v1:int8"} 400`,
		`varade_latency_ns_count{group="m@v1:int8"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	if err := LintPrometheusText(out); err != nil {
		t.Fatalf("self-lint failed: %v\n%s", err, out)
	}

	// Deterministic: a second render must be byte-identical.
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	if sb2.String() != out {
		t.Fatal("exposition output not deterministic")
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_ns", "")
	h.Record(1)
	h.Record(2)
	h.Record(2)
	h.Record(1000)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	// Buckets must be cumulative and end at the total.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var prev uint64
	sawInf := false
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "h_ns_bucket") {
			continue
		}
		var n uint64
		fields := strings.Fields(ln)
		if len(fields) != 2 {
			t.Fatalf("bad bucket line %q", ln)
		}
		if _, err := parseUint(fields[1], &n); err != nil {
			t.Fatalf("bad bucket count in %q: %v", ln, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", ln, prev)
		}
		prev = n
		if strings.Contains(ln, `le="+Inf"`) {
			sawInf = true
			if n != 4 {
				t.Fatalf("+Inf bucket = %d, want 4", n)
			}
		}
	}
	if !sawInf {
		t.Fatal("no +Inf bucket emitted")
	}
}

func parseUint(s string, out *uint64) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errBadDigit
		}
		v = v*10 + uint64(s[i]-'0')
	}
	*out = v
	return v, nil
}

var errBadDigit = errors.New("non-digit in count")

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "", L("path", `a\b"c`+"\n")).Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `path="a\\b\"c\n"`) {
		t.Fatalf("label value not escaped: %s", sb.String())
	}
}

func TestVisitHistogramsMerge(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_ns", "", L("group", "a")).Record(100)
	r.Histogram("lat_ns", "", L("group", "b")).Record(300)
	var merged Histogram
	seen := 0
	r.VisitHistograms("lat_ns", func(_ []Label, h *Histogram) {
		merged.Merge(h)
		seen++
	})
	if seen != 2 {
		t.Fatalf("visited %d series, want 2", seen)
	}
	if merged.Count() != 2 || merged.Sum() != 400 {
		t.Fatalf("merged count=%d sum=%d", merged.Count(), merged.Sum())
	}
}

func TestStageTimerSeries(t *testing.T) {
	r := NewRegistry()
	st := NewStageTimer(r, "varade_serve_stage", "Serve stage.", L("stage", "score"))
	st.Observe(10*time.Microsecond, 8)
	st.Observe(0, 0) // zero-window batches count calls but no windows
	if st.Calls.Load() != 2 || st.Windows.Load() != 8 {
		t.Fatalf("calls=%d windows=%d", st.Calls.Load(), st.Windows.Load())
	}
	if st.PerWindow.Count() != 8 {
		t.Fatalf("per-window records = %d, want 8", st.PerWindow.Count())
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	for _, want := range []string{
		"varade_serve_stage_ns_total", "varade_serve_stage_calls_total",
		"varade_serve_stage_windows_total", "varade_serve_stage_ns_per_window_bucket",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %s in exposition", want)
		}
	}
}

func TestComputeStageGlobal(t *testing.T) {
	a := ComputeStage("gemm", "test-prec")
	b := ComputeStage("gemm", "test-prec")
	if a != b {
		t.Fatal("ComputeStage must cache")
	}
	a.Observe(time.Millisecond, 16)
	found := false
	for _, s := range StagesSnapshot() {
		if s.Stage == "gemm" && s.Precision == "test-prec" {
			found = true
			if s.Windows < 16 || s.Ns <= 0 {
				t.Fatalf("snapshot stat %+v", s)
			}
		}
	}
	if !found {
		t.Fatal("StagesSnapshot missing observed stage")
	}
}
