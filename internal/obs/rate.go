package obs

import (
	"math"
	"sync"
	"time"
)

// RateEWMA turns a monotonically increasing counter into a windowed
// rate. It is sampled, not pushed: Observe(count, now) is called from
// the metrics snapshot path (or any poller), computes the instantaneous
// rate over the elapsed interval, and folds it into an exponentially
// weighted moving average with time constant tau. With no background
// goroutine the estimate is as fresh as the last observation — exactly
// right for a pull-based metrics plane, and it costs nothing when
// nobody is looking.
type RateEWMA struct {
	mu        sync.Mutex
	tau       time.Duration
	rate      float64
	lastCount int64
	lastAt    time.Time
	primed    bool
}

// NewRateEWMA returns a rate estimator with the given time constant
// (observations older than ~3·tau have negligible weight).
func NewRateEWMA(tau time.Duration) *RateEWMA {
	if tau <= 0 {
		tau = 10 * time.Second
	}
	return &RateEWMA{tau: tau}
}

// Observe folds the counter value at time now into the average and
// returns the updated rate (events/second). Sub-millisecond re-polls
// return the current estimate without updating, so rapid scrapes don't
// inject noisy instantaneous rates.
func (r *RateEWMA) Observe(count int64, now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.primed {
		r.lastCount, r.lastAt, r.primed = count, now, true
		return 0
	}
	dt := now.Sub(r.lastAt)
	if dt < time.Millisecond {
		return r.rate
	}
	inst := float64(count-r.lastCount) / dt.Seconds()
	if inst < 0 {
		inst = 0 // counter reset
	}
	alpha := 1 - math.Exp(-dt.Seconds()/r.tau.Seconds())
	r.rate += alpha * (inst - r.rate)
	r.lastCount, r.lastAt = count, now
	return r.rate
}

// Rate returns the current estimate without observing.
func (r *RateEWMA) Rate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rate
}
