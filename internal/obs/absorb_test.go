package obs

import (
	"strings"
	"testing"
)

// TestAbsorbRoundTrip scrapes a registry's own exposition back into a
// fresh registry with a backend label appended — the router's
// aggregation path — and checks every series survives bucket-exactly.
func TestAbsorbRoundTrip(t *testing.T) {
	src := NewRegistry()
	src.Counter("varade_windows_scored_total", "windows scored", L("group", "varade"), L("precision", "int8")).Add(12345)
	src.Counter("varade_windows_scored_total", "windows scored", L("group", "varade@v2")).Add(7)
	src.Gauge("varade_sessions_active", "live sessions").Set(3)
	h := src.Histogram("varade_coalesce_latency_ns", "coalesce latency", L("group", "varade"))
	for _, v := range []int64{0, 1, 17, 900, 4096, 1 << 20, 1<<40 + 12345} {
		h.RecordN(v, 3)
	}

	var buf strings.Builder
	src.WritePrometheus(&buf)

	dst := NewRegistry()
	if err := dst.AbsorbPrometheusText(buf.String(), L("backend", "b1")); err != nil {
		t.Fatal(err)
	}

	if got := dst.Counter("varade_windows_scored_total", "", L("group", "varade"), L("precision", "int8"), L("backend", "b1")).Load(); got != 12345 {
		t.Fatalf("absorbed counter = %d, want 12345", got)
	}
	if got := dst.Gauge("varade_sessions_active", "", L("backend", "b1")).Load(); got != 3 {
		t.Fatalf("absorbed gauge = %g, want 3", got)
	}
	hd := dst.Histogram("varade_coalesce_latency_ns", "", L("group", "varade"), L("backend", "b1"))
	ws, wd := h.Snapshot(), hd.Snapshot()
	if wd.Count != ws.Count || wd.Sum != ws.Sum || len(wd.Buckets) != len(ws.Buckets) {
		t.Fatalf("absorbed histogram snapshot %+v, want %+v", wd, ws)
	}
	for i := range ws.Buckets {
		if ws.Buckets[i] != wd.Buckets[i] {
			t.Fatalf("bucket %d: absorbed %+v, want %+v", i, wd.Buckets[i], ws.Buckets[i])
		}
	}

	// The rebuilt exposition must lint and carry the backend label on
	// every series.
	var out strings.Builder
	dst.WritePrometheus(&out)
	if err := LintPrometheusText(out.String()); err != nil {
		t.Fatalf("absorbed exposition fails lint: %v", err)
	}
	for _, line := range strings.Split(out.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, `backend="b1"`) {
			t.Fatalf("series without backend label: %q", line)
		}
	}
}

// TestAbsorbExtraLabelReplaces checks that an extra label overrides a
// same-named scraped label instead of duplicating it.
func TestAbsorbExtraLabelReplaces(t *testing.T) {
	src := NewRegistry()
	src.Counter("x_total", "", L("backend", "stale")).Add(5)
	var buf strings.Builder
	src.WritePrometheus(&buf)
	dst := NewRegistry()
	if err := dst.AbsorbPrometheusText(buf.String(), L("backend", "fresh")); err != nil {
		t.Fatal(err)
	}
	if got := dst.Counter("x_total", "", L("backend", "fresh")).Load(); got != 5 {
		t.Fatalf("counter under replaced label = %d, want 5", got)
	}
}

// TestMergeSnapshotCrossProcess merges two scraped histograms into one
// aggregate and checks the result equals an in-process Merge of the
// originals.
func TestMergeSnapshotCrossProcess(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := int64(0); i < 500; i++ {
		a.Record(i * 37)
		b.Record(i * 91)
	}
	var want Histogram
	want.Merge(a)
	want.Merge(b)

	var got Histogram
	got.MergeSnapshot(a.Snapshot())
	got.MergeSnapshot(b.Snapshot())

	ws, gs := want.Snapshot(), got.Snapshot()
	if gs.Count != ws.Count || gs.Sum != ws.Sum || len(gs.Buckets) != len(ws.Buckets) {
		t.Fatalf("merged snapshot %v buckets count=%d sum=%d, want %d/%d",
			len(gs.Buckets), gs.Count, gs.Sum, ws.Count, ws.Sum)
	}
	for q := 0.1; q < 1; q += 0.2 {
		if got.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q%.1f: %d != %d", q, got.Quantile(q), want.Quantile(q))
		}
	}
}
