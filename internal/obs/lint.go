package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheusText validates a Prometheus text-format (0.0.4)
// exposition body: well-formed comment and sample lines, legal metric
// and label names, at most one # TYPE per family declared before its
// samples, no duplicate series, parseable values, and histogram
// invariants (cumulative non-decreasing buckets, an le="+Inf" bucket
// present and equal to the series' _count). It is what the e2e serve
// test runs against GET /metrics, standing in for `promtool check
// metrics` without the dependency.
func LintPrometheusText(body string) error {
	typed := map[string]string{}    // family -> type
	helped := map[string]bool{}     // family -> saw HELP
	sampled := map[string]bool{}    // family has emitted samples (TYPE must precede)
	seen := map[string]bool{}       // full series key -> dup check
	hists := map[string]*lintHist{} // histogram series (labels minus le) -> bucket state

	for lineNo, raw := range strings.Split(body, "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		where := func(msg string, args ...any) error {
			return fmt.Errorf("line %d: %s: %q", lineNo+1, fmt.Sprintf(msg, args...), line)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // arbitrary comment — allowed
			}
			name := fields[2]
			if !validMetricName(name) {
				return where("invalid metric name in %s", fields[1])
			}
			switch fields[1] {
			case "HELP":
				if helped[name] {
					return where("second HELP for %s", name)
				}
				helped[name] = true
			case "TYPE":
				if len(fields) != 4 {
					return where("TYPE missing kind")
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return where("unknown TYPE %q", fields[3])
				}
				if _, dup := typed[name]; dup {
					return where("second TYPE for %s", name)
				}
				if sampled[name] {
					return where("TYPE for %s after its samples", name)
				}
				typed[name] = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return where("%v", err)
		}
		fam := familyOf(name, typed)
		sampled[fam] = true
		serKey := name + "{" + labels.canonical() + "}"
		if seen[serKey] {
			return where("duplicate series %s", serKey)
		}
		seen[serKey] = true

		if typed[fam] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le, rest := labels.split("le")
			if le == "" {
				return where("histogram bucket without le label")
			}
			h := hists[fam+"{"+rest.canonical()+"}"]
			if h == nil {
				h = &lintHist{}
				hists[fam+"{"+rest.canonical()+"}"] = h
			}
			if value < h.prev {
				return where("histogram buckets not cumulative (%g < %g)", value, h.prev)
			}
			h.prev = value
			if le == "+Inf" {
				h.inf, h.hasInf = value, true
			}
		}
		if typed[fam] == "histogram" && strings.HasSuffix(name, "_count") {
			_, rest := labels.split("le")
			if h := hists[fam+"{"+rest.canonical()+"}"]; h != nil {
				h.count, h.hasCount = value, true
			}
		}
		if typed[fam] == "counter" && value < 0 {
			return where("negative counter value")
		}
	}

	for key, h := range hists {
		if !h.hasInf {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", key)
		}
		if h.hasCount && h.inf != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", key, h.inf, h.count)
		}
	}
	return nil
}

type lintHist struct {
	prev, inf, count float64
	hasInf, hasCount bool
}

// familyOf strips histogram/summary suffixes to recover the declared
// family name when one exists.
func familyOf(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && typed[base] != "" {
			return base
		}
	}
	return name
}

type lintLabels []Label

func (ls lintLabels) canonical() string {
	s := make([]string, 0, len(ls))
	for _, l := range ls {
		s = append(s, l.Name+"="+l.Value)
	}
	sort.Strings(s)
	return strings.Join(s, ",")
}

// split removes the named label, returning its value and the rest.
func (ls lintLabels) split(name string) (string, lintLabels) {
	var val string
	rest := make(lintLabels, 0, len(ls))
	for _, l := range ls {
		if l.Name == name {
			val = l.Value
		} else {
			rest = append(rest, l)
		}
	}
	return val, rest
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample parses `name{l1="v1",...} value` (timestamp suffix
// tolerated and ignored).
func parseSample(line string) (string, lintLabels, float64, error) {
	var name string
	var labels lintLabels
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.IndexByte(rest[i:], '}')
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		var err error
		labels, err = parseLabels(rest[i+1 : i+end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[i+end+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample line without value")
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	val, err := parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, err
	}
	return name, labels, val, nil
}

func parseLabels(s string) (lintLabels, error) {
	var out lintLabels
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label value for %s not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return nil, fmt.Errorf("unterminated label value for %s", name)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if len(s) == 0 {
					return nil, fmt.Errorf("dangling escape in label %s", name)
				}
				switch s[0] {
				case '\\', '"':
					val.WriteByte(s[0])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %s", s[0], name)
				}
				s = s[1:]
				continue
			}
			val.WriteByte(c)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable value %q", s)
	}
	return v, nil
}
