package obs

import (
	"sync"
	"time"
)

// StageTimer instruments one pipeline stage: total nanoseconds, call
// (batch) count, window count, and a per-window ns histogram. One
// Observe per batch — never per window — keeps the cost at four atomic
// adds regardless of batch size, which is what lets the GEMM inner
// stages carry timers without moving the benchmarks.
type StageTimer struct {
	Ns        *Counter
	Calls     *Counter
	Windows   *Counter
	PerWindow *Histogram
}

// NewStageTimer registers a stage timer's four series under
// prefix+{"_ns_total","_calls_total","_windows_total","_ns_per_window"}
// with the given labels. help describes the stage family.
func NewStageTimer(r *Registry, prefix, help string, labels ...Label) *StageTimer {
	return &StageTimer{
		Ns:        r.Counter(prefix+"_ns_total", help+" (total nanoseconds)", labels...),
		Calls:     r.Counter(prefix+"_calls_total", help+" (batches observed)", labels...),
		Windows:   r.Counter(prefix+"_windows_total", help+" (windows covered)", labels...),
		PerWindow: r.Histogram(prefix+"_ns_per_window", help+" (nanoseconds per window)", labels...),
	}
}

// Observe records one batch of `windows` windows that took d in total.
func (t *StageTimer) Observe(d time.Duration, windows int) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	t.Ns.Add(ns)
	t.Calls.Inc()
	if windows > 0 {
		t.Windows.Add(int64(windows))
		t.PerWindow.RecordN(ns/int64(windows), uint64(windows))
	}
}

// global is the process-wide registry: compute-stage timers recorded by
// the nn inference programs (not attributable to one server) plus any
// other process-scoped series. Exposed by every /metrics handler.
var global = NewRegistry()

// Global returns the process-wide registry.
func Global() *Registry { return global }

// computeStages caches ComputeStage lookups so the per-batch hot path
// is one sync.Map read instead of a registry mutex.
var computeStages sync.Map // "stage\x00precision" -> *StageTimer

// ComputeStage returns the global stage timer for one compute stage of
// the inference pipeline (quantize, pack, gemm, requant) at the given
// precision ("int8", "f32", "f64"). Series live under
// varade_compute_stage_* with {stage, precision} labels.
func ComputeStage(stage, precision string) *StageTimer {
	key := stage + "\x00" + precision
	if t, ok := computeStages.Load(key); ok {
		return t.(*StageTimer)
	}
	t := NewStageTimer(global, "varade_compute_stage",
		"Inference compute stage timings",
		L("stage", stage), L("precision", precision))
	actual, _ := computeStages.LoadOrStore(key, t)
	return actual.(*StageTimer)
}

// StageStat is one compute stage's cumulative totals — the raw material
// for varade-bench's per-stage ns/window columns (bench diffs two
// StagesSnapshot calls around a measured run).
type StageStat struct {
	Stage     string
	Precision string
	Ns        int64
	Calls     int64
	Windows   int64
}

// StagesSnapshot returns cumulative totals for every compute stage
// registered so far, in no particular order.
func StagesSnapshot() []StageStat {
	var out []StageStat
	computeStages.Range(func(k, v any) bool {
		key := k.(string)
		t := v.(*StageTimer)
		var stage, prec string
		for i := 0; i < len(key); i++ {
			if key[i] == 0 {
				stage, prec = key[:i], key[i+1:]
				break
			}
		}
		out = append(out, StageStat{
			Stage:     stage,
			Precision: prec,
			Ns:        t.Ns.Load(),
			Calls:     t.Calls.Load(),
			Windows:   t.Windows.Load(),
		})
		return true
	})
	return out
}
