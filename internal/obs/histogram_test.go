package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketRoundTrip: every value's bucket upper bound must be ≥ the
// value and within the geometry's relative-error bound, and bucket
// indices must be monotone in the value.
func TestBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 2, 31, 32, 33, 63, 64, 65, 100, 1000, 4095, 4096,
		1<<20 + 12345, 1 << 40, math.MaxInt64 / 2, math.MaxInt64}
	prevIdx := -1
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= hNumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, i, hNumBuckets)
		}
		if i < prevIdx {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prevIdx)
		}
		prevIdx = i
		up := bucketUpper(i)
		if up < v {
			t.Fatalf("bucketUpper(%d)=%d < value %d", i, up, v)
		}
		// Relative error bound: upper ≤ v·(1 + 2^-hSubBits) for v ≥ 2^hSubBits.
		if v >= 1<<hSubBits {
			maxUp := float64(v) * (1 + 1/float64(int64(1)<<hSubBits))
			if float64(up) > maxUp+1 {
				t.Fatalf("bucketUpper(%d)=%d exceeds relative bound %g for value %d", i, up, maxUp, v)
			}
		} else if up != v {
			t.Fatalf("unit bucket: bucketUpper(bucketIndex(%d)) = %d, want exact", v, up)
		}
	}
	// Exhaustive small-range check: consecutive buckets tile without gaps.
	for v := int64(1); v < 1<<12; v++ {
		i, j := bucketIndex(v-1), bucketIndex(v)
		if j != i && j != i+1 {
			t.Fatalf("bucket index jumps from %d to %d between values %d and %d", i, j, v-1, v)
		}
	}
}

// oracleQuantile is the sorted-slice reference: the smallest element
// with rank ≥ ceil(q·N).
func oracleQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestQuantileAccuracyVsOracle drives the histogram with three
// distributions and checks every reported quantile against the sorted
// slice, within the bucket-geometry error bound.
func TestQuantileAccuracyVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 50000
	dists := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(5_000_000) },
		"lognormal": func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 10)) },
		"pointmass": func() int64 { return 123456 },
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = gen()
				h.Record(vals[i])
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
				got := h.Quantile(q)
				want := oracleQuantile(vals, q)
				if got < want {
					t.Errorf("q%.3f: histogram %d below oracle %d", q, got, want)
				}
				// Upper-bound semantics: got ≤ want·(1+2^-hSubBits)+1.
				bound := float64(want)*(1+1/float64(int64(1)<<hSubBits)) + 1
				if float64(got) > bound {
					t.Errorf("q%.3f: histogram %d exceeds bound %g (oracle %d)", q, got, bound, want)
				}
			}
			if h.Count() != n {
				t.Errorf("count = %d, want %d", h.Count(), n)
			}
		})
	}
}

// TestMergeAssociativity: (a⊕b)⊕c and a⊕(b⊕c) must agree bucket-for-
// bucket, and the merge must equal recording the union directly.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n int, scale int64) *Histogram {
		h := &Histogram{}
		for i := 0; i < n; i++ {
			h.Record(rng.Int63n(scale))
		}
		return h
	}
	a, b, c := mk(1000, 1000), mk(2000, 1_000_000), mk(500, 10)

	clone := func(h *Histogram) *Histogram {
		out := &Histogram{}
		out.Merge(h)
		return out
	}
	left := clone(a)
	left.Merge(b) // (a⊕b)
	left.Merge(c) // ⊕c
	bc := clone(b)
	bc.Merge(c)
	right := clone(a)
	right.Merge(bc)

	if left.Count() != right.Count() || left.Sum() != right.Sum() {
		t.Fatalf("merge not associative: count %d/%d sum %d/%d",
			left.Count(), right.Count(), left.Sum(), right.Sum())
	}
	for i := range left.buckets {
		if l, r := left.buckets[i].Load(), right.buckets[i].Load(); l != r {
			t.Fatalf("bucket %d differs after reassociation: %d vs %d", i, l, r)
		}
	}
	for _, q := range []float64{0.5, 0.99} {
		if left.Quantile(q) != right.Quantile(q) {
			t.Fatalf("q%.2f differs after reassociation", q)
		}
	}
}

// TestConcurrentRecordingConservation hammers one histogram from many
// goroutines (run under -race) and asserts conservation: the sum of all
// bucket counts equals the number of records, and Count agrees.
func TestConcurrentRecordingConservation(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20000
	)
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	wg.Wait()

	var bucketTotal uint64
	for i := range h.buckets {
		bucketTotal += h.buckets[i].Load()
	}
	const want = goroutines * perG
	if bucketTotal != want {
		t.Fatalf("bucket sum %d != records %d", bucketTotal, want)
	}
	if h.Count() != want {
		t.Fatalf("Count %d != records %d", h.Count(), want)
	}
	snap := h.Snapshot()
	if snap.Count != want {
		t.Fatalf("snapshot count %d != records %d", snap.Count, want)
	}
	if snap.Quantile(0.5) <= 0 {
		t.Fatalf("median of uniform(0,2^30) reported as %d", snap.Quantile(0.5))
	}
}

func TestRecordNMatchesRepeatedRecord(t *testing.T) {
	var a, b Histogram
	a.RecordN(777, 5)
	for i := 0; i < 5; i++ {
		b.Record(777)
	}
	if a.Count() != b.Count() || a.Sum() != b.Sum() || a.Quantile(1) != b.Quantile(1) {
		t.Fatalf("RecordN(777,5) != 5×Record(777): count %d/%d sum %d/%d",
			a.Count(), b.Count(), a.Sum(), b.Sum())
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if s := h.Snapshot(); len(s.Buckets) != 0 || s.Quantile(0.99) != 0 {
		t.Fatal("empty snapshot must be empty")
	}
}
