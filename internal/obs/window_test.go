package obs

import (
	"testing"
	"time"
)

func TestCursorTakeAndPeek(t *testing.T) {
	var c Counter
	c.Add(10)
	cur := NewCursor(&c)
	if got := cur.Take(); got != 0 {
		t.Fatalf("fresh cursor Take = %d, want 0 (positioned at creation value)", got)
	}
	c.Add(7)
	if got := cur.Peek(); got != 7 {
		t.Fatalf("Peek = %d, want 7", got)
	}
	if got := cur.Peek(); got != 7 {
		t.Fatalf("second Peek = %d, want 7 (Peek must not advance)", got)
	}
	if got := cur.Take(); got != 7 {
		t.Fatalf("Take = %d, want 7", got)
	}
	if got := cur.Take(); got != 0 {
		t.Fatalf("Take after Take = %d, want 0", got)
	}
	c.Add(3)
	c.Add(4)
	if got := cur.Take(); got != 7 {
		t.Fatalf("Take over two adds = %d, want 7", got)
	}
}

func TestStageCursorDeltas(t *testing.T) {
	reg := NewRegistry()
	st := NewStageTimer(reg, "test_stage", "test stage")
	st.Observe(100*time.Nanosecond, 2) // pre-cursor history the cursor must skip

	cur := NewStageCursor(st)
	if d := cur.Take(); d != (StageDelta{}) {
		t.Fatalf("fresh StageCursor Take = %+v, want zero delta", d)
	}

	st.Observe(400*time.Nanosecond, 4)
	st.Observe(200*time.Nanosecond, 2)
	d := cur.Take()
	if d.Ns != 600 || d.Calls != 2 || d.Windows != 6 {
		t.Fatalf("delta = %+v, want {Ns:600 Calls:2 Windows:6}", d)
	}
	if got := d.NsPerCall(); got != 300 {
		t.Fatalf("NsPerCall = %d, want 300", got)
	}
	if got := d.NsPerWindow(); got != 100 {
		t.Fatalf("NsPerWindow = %g, want 100", got)
	}
	if d := cur.Take(); d != (StageDelta{}) {
		t.Fatalf("Take after Take = %+v, want zero delta", d)
	}
}

func TestStageDeltaEmptyRates(t *testing.T) {
	var d StageDelta
	if d.NsPerCall() != 0 || d.NsPerWindow() != 0 {
		t.Fatalf("empty delta rates must be 0, got call=%d window=%g", d.NsPerCall(), d.NsPerWindow())
	}
}
