// Package obs is the serving stack's metrics core: atomic counters and
// gauges, log-bucketed mergeable histograms with O(1) recording, a
// registry of labeled series with Prometheus text-format exposition,
// Welford distribution sketches, and a time-decayed rate estimator.
//
// The package is dependency-free (stdlib only) and lock-free on the hot
// path: callers obtain series handles once (Registry.Counter/Gauge/
// Histogram take a mutex to get-or-create) and every subsequent Record/
// Add/Set is a handful of atomic operations. That contract is what lets
// the fleet server instrument every pipeline stage per window without
// the serving groups contending on a shared lock — the failure mode of
// the old single-mutex latency ring.
//
// Two registries matter in practice: each serve.Server owns one for its
// per-group/per-session series, and Global() holds process-wide series —
// the compute-stage timers the nn inference programs record into, which
// are not attributable to one server instance.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be ≥ 0 for the Prometheus
// counter contract; this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }
