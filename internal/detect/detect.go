// Package detect defines the common interface that VARADE and every
// baseline detector implement, plus helpers to score whole series with a
// sliding window. The evaluation harness, edge profiler and streaming
// runtime all operate on this interface so each of the six algorithms in
// the paper's Table 2 is exercised by exactly the same code path.
package detect

import (
	"fmt"

	"varade/internal/tensor"
)

// Detector is an anomaly detector over multivariate time series.
//
// Series and windows are time-major: a series has shape (T, C) and a window
// has shape (W, C) where W = WindowSize(). Score returns an anomaly score
// for the point following (forecasters) or covered by (reconstruction and
// outlier detectors) the window; higher means more anomalous.
type Detector interface {
	// Name identifies the detector in reports (e.g. "VARADE", "AR-LSTM").
	Name() string
	// WindowSize is the number of consecutive time steps Score consumes.
	WindowSize() int
	// Fit trains the detector on an anomaly-free series of shape (T, C).
	Fit(series *tensor.Tensor) error
	// Score returns the anomaly score for one window of shape (W, C).
	Score(window *tensor.Tensor) float64
}

// Capabilities describes a detector's scoring engine: what execution
// schedules and numeric precisions it supports and which precision it is
// currently running. The serving layer negotiates per-session precision
// against this descriptor, and batching call sites use it instead of
// type-switching on optional interfaces.
type Capabilities struct {
	// Batched reports a native batched forward pass: ScoreBatch amortises
	// one call over N windows instead of looping Score.
	Batched bool
	// Reduced reports a native float32 batch entry point: ScoreBatch32
	// consumes float32 windows without a round trip through float64.
	Reduced bool
	// Precision is the effective inference precision ("float64",
	// "float32" or "int8").
	Precision string
	// Precisions lists every precision the detector can be re-targeted
	// to (always including Precision itself).
	Precisions []string
}

// Supports reports whether the engine can run at precision p.
func (c Capabilities) Supports(p string) bool {
	for _, q := range c.Precisions {
		if q == p {
			return true
		}
	}
	return false
}

// Scorer is the unified scoring surface every detector presents to the
// batched engine and the fleet server. ScoreBatch scores N time-major
// windows of shape (N, W, C) in one call and must produce exactly the
// scores Score would return window by window — batching only changes the
// execution schedule, not the arithmetic. ScoreBatch32 is the float32
// counterpart: detectors without a reduced-precision engine widen the
// batch and delegate to the float64 path, so the scores still follow the
// detector's own arithmetic. Use AsScorer to obtain a Scorer for any
// Detector.
type Scorer interface {
	Detector
	Capabilities() Capabilities
	ScoreBatch(windows *tensor.Tensor) []float64
	ScoreBatch32(windows *tensor.Tensor32) []float64
}

// Float64Caps is the capability descriptor of a plain float64 detector
// with a native batched path — the common case for the baselines.
func Float64Caps() Capabilities {
	return Capabilities{Batched: true, Precision: "float64", Precisions: []string{"float64"}}
}

// scorerAdapter lifts a Detector without a native Scorer implementation
// onto the unified surface: ScoreBatch loops Score per window and
// ScoreBatch32 widens to float64 first.
type scorerAdapter struct {
	Detector
}

func (a scorerAdapter) Capabilities() Capabilities {
	return Capabilities{Precision: "float64", Precisions: []string{"float64"}}
}

func (a scorerAdapter) ScoreBatch(windows *tensor.Tensor) []float64 {
	return scoreBatchLoop(a.Detector, windows)
}

func (a scorerAdapter) ScoreBatch32(windows *tensor.Tensor32) []float64 {
	return a.ScoreBatch(tensor.Convert[float64](windows))
}

// scoreBatchLoop is the per-window fallback schedule over a (N, W, C)
// batch.
func scoreBatchLoop(d Detector, windows *tensor.Tensor) []float64 {
	if windows.Dims() != 3 {
		panic(fmt.Sprintf("detect: ScoreBatch needs (N,W,C), got %v", windows.Shape()))
	}
	n, w, c := windows.Dim(0), windows.Dim(1), windows.Dim(2)
	wd := windows.Data()
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		scores[i] = d.Score(tensor.FromSlice(wd[i*w*c:(i+1)*w*c], w, c))
	}
	return scores
}

// WidenScoreBatch32 routes a float32 batch through a detector's float64
// ScoreBatch — the ScoreBatch32 implementation for engines without a
// reduced-precision path.
func WidenScoreBatch32(s interface {
	ScoreBatch(*tensor.Tensor) []float64
}, windows *tensor.Tensor32) []float64 {
	return s.ScoreBatch(tensor.Convert[float64](windows))
}

// AsScorer returns d's unified scoring surface: detectors implementing
// Scorer natively are returned unchanged, everything else is wrapped in
// an adapter whose ScoreBatch loops Score per window. This is the single
// place the optional-interface probe happens; callers never type-switch.
func AsScorer(d Detector) Scorer {
	if s, ok := d.(Scorer); ok {
		return s
	}
	return scorerAdapter{d}
}

// BatchChunk is the number of sliding windows ScoreSeriesBatched
// materialises and scores per ScoreBatch call. It bounds the working set
// (chunk·W·C floats) while keeping each batched forward large enough to
// amortise per-call overhead and saturate the tensor worker pool.
const BatchChunk = 256

// ScoreSeriesBatched is ScoreSeries through the batched engine: windows
// are materialised in chunks and handed to the detector's ScoreBatch when
// its Capabilities report a batched path. Detectors without one fall back
// to the per-window loop. Scores are identical to ScoreSeries either way.
func ScoreSeriesBatched(d Detector, series *tensor.Tensor) []float64 {
	bs := AsScorer(d)
	if !bs.Capabilities().Batched {
		return ScoreSeries(d, series)
	}
	if series.Dims() != 2 {
		panic(fmt.Sprintf("detect: ScoreSeriesBatched needs a (T,C) series, got %v", series.Shape()))
	}
	t, c := series.Dim(0), series.Dim(1)
	w := d.WindowSize()
	if t <= w {
		panic(fmt.Sprintf("detect: series length %d not longer than window %d", t, w))
	}
	scores := make([]float64, t)
	total := t - w + 1 // windows ending at steps w-1 … t-1
	sd := series.Data()
	wins := tensor.New(min(BatchChunk, total), w, c)
	for start := 0; start < total; start += BatchChunk {
		n := min(BatchChunk, total-start)
		chunk := wins.SliceRows(0, n)
		wd := chunk.Data()
		tensor.Parallel(n, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				copy(wd[j*w*c:(j+1)*w*c], sd[(start+j)*c:(start+j+w)*c])
			}
		})
		copy(scores[w-1+start:], bs.ScoreBatch(chunk))
	}
	for i := 0; i < w-1; i++ {
		scores[i] = scores[w-1]
	}
	return scores
}

// ScoreSeries slides the detector over series (shape (T, C)) and returns
// one score per time step. The score for step i uses the window ending AT
// i inclusive — rows [i−W+1, i+1) — matching the streaming Runner, which
// scores each sample as it arrives: the evidence for "is point i
// anomalous" includes point i itself. The first W−1 steps, for which no
// full window exists yet, receive the first computed score so the output
// aligns 1:1 with the input and with ground-truth labels.
func ScoreSeries(d Detector, series *tensor.Tensor) []float64 {
	if series.Dims() != 2 {
		panic(fmt.Sprintf("detect: ScoreSeries needs a (T,C) series, got %v", series.Shape()))
	}
	t := series.Dim(0)
	w := d.WindowSize()
	if t <= w {
		panic(fmt.Sprintf("detect: series length %d not longer than window %d", t, w))
	}
	scores := make([]float64, t)
	for i := w - 1; i < t; i++ {
		scores[i] = d.Score(series.SliceRows(i-w+1, i+1))
	}
	for i := 0; i < w-1; i++ {
		scores[i] = scores[w-1]
	}
	return scores
}

// Windows extracts all (window, next-point) training pairs from a series of
// shape (T, C) with the given stride: inputs (N, W, C) and targets (N, C),
// where target i is the point immediately after window i. Forecasting
// detectors (VARADE, AR-LSTM, GBRF) train on these pairs.
func Windows(series *tensor.Tensor, window, stride int) (inputs, targets *tensor.Tensor) {
	if series.Dims() != 2 {
		panic(fmt.Sprintf("detect: Windows needs a (T,C) series, got %v", series.Shape()))
	}
	t, c := series.Dim(0), series.Dim(1)
	n := (t - window - 1 + stride) / stride
	if t-window <= 0 || n <= 0 {
		panic(fmt.Sprintf("detect: series length %d too short for window %d", t, window))
	}
	inputs = tensor.New(n, window, c)
	targets = tensor.New(n, c)
	sd, id, td := series.Data(), inputs.Data(), targets.Data()
	for i := 0; i < n; i++ {
		start := i * stride
		copy(id[i*window*c:(i+1)*window*c], sd[start*c:(start+window)*c])
		copy(td[i*c:(i+1)*c], sd[(start+window)*c:(start+window+1)*c])
	}
	return inputs, targets
}

// ToChannelMajor converts a batch of time-major windows (N, W, C) into the
// channel-major layout (N, C, W) consumed by 1-D convolutions. It is
// generic over the element type so the float32 scoring path permutes
// without a round trip through float64.
func ToChannelMajor[T tensor.Float](windows *tensor.Dense[T]) *tensor.Dense[T] {
	if windows.Dims() != 3 {
		panic(fmt.Sprintf("detect: ToChannelMajor needs (N,W,C), got %v", windows.Shape()))
	}
	n, w, c := windows.Dim(0), windows.Dim(1), windows.Dim(2)
	out := tensor.NewOf[T](n, c, w)
	wd, od := windows.Data(), out.Data()
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for t := 0; t < w; t++ {
				for ch := 0; ch < c; ch++ {
					od[(i*c+ch)*w+t] = wd[(i*w+t)*c+ch]
				}
			}
		}
	})
	return out
}
