// Package detect defines the common interface that VARADE and every
// baseline detector implement, plus helpers to score whole series with a
// sliding window. The evaluation harness, edge profiler and streaming
// runtime all operate on this interface so each of the six algorithms in
// the paper's Table 2 is exercised by exactly the same code path.
package detect

import (
	"fmt"

	"varade/internal/tensor"
)

// Detector is an anomaly detector over multivariate time series.
//
// Series and windows are time-major: a series has shape (T, C) and a window
// has shape (W, C) where W = WindowSize(). Score returns an anomaly score
// for the point following (forecasters) or covered by (reconstruction and
// outlier detectors) the window; higher means more anomalous.
type Detector interface {
	// Name identifies the detector in reports (e.g. "VARADE", "AR-LSTM").
	Name() string
	// WindowSize is the number of consecutive time steps Score consumes.
	WindowSize() int
	// Fit trains the detector on an anomaly-free series of shape (T, C).
	Fit(series *tensor.Tensor) error
	// Score returns the anomaly score for one window of shape (W, C).
	Score(window *tensor.Tensor) float64
}

// BatchScorer is implemented by detectors whose forward pass is batched:
// ScoreBatch scores N time-major windows of shape (N, W, C) in one call,
// returning one score per window. Implementations must produce exactly the
// scores Score would return window by window; batching only changes the
// execution schedule, not the arithmetic.
type BatchScorer interface {
	Detector
	ScoreBatch(windows *tensor.Tensor) []float64
}

// BatchScorer32 is implemented by detectors whose inference can run at
// reduced precision: ScoreBatch32 scores N time-major float32 windows
// (N, W, C) in one call. The serving layer batches windows in the model's
// own precision through this path, halving the coalescer's memory traffic
// for float32/int8 models. Scores stay float64 on the wire.
type BatchScorer32 interface {
	Detector
	ScoreBatch32(windows *tensor.Tensor32) []float64
}

// Precisioned is implemented by detectors whose inference precision is
// configurable. Precision reports the effective numeric type ("float64",
// "float32" or "int8"); callers use it to decide whether the float32
// batching path applies — a float64 model must keep the bit-exact float64
// path.
type Precisioned interface {
	Precision() string
}

// EffectivePrecision reports d's inference precision, defaulting to
// float64 for detectors that predate the precision axis.
func EffectivePrecision(d Detector) string {
	if p, ok := d.(Precisioned); ok {
		return p.Precision()
	}
	return "float64"
}

// BatchChunk is the number of sliding windows ScoreSeriesBatched
// materialises and scores per ScoreBatch call. It bounds the working set
// (chunk·W·C floats) while keeping each batched forward large enough to
// amortise per-call overhead and saturate the tensor worker pool.
const BatchChunk = 256

// ScoreSeriesBatched is ScoreSeries through the batched engine: windows
// are materialised in chunks and handed to the detector's ScoreBatch when
// it implements BatchScorer. Detectors without a batched path fall back to
// the per-window loop. Scores are identical to ScoreSeries either way.
func ScoreSeriesBatched(d Detector, series *tensor.Tensor) []float64 {
	bs, ok := d.(BatchScorer)
	if !ok {
		return ScoreSeries(d, series)
	}
	if series.Dims() != 2 {
		panic(fmt.Sprintf("detect: ScoreSeriesBatched needs a (T,C) series, got %v", series.Shape()))
	}
	t, c := series.Dim(0), series.Dim(1)
	w := d.WindowSize()
	if t <= w {
		panic(fmt.Sprintf("detect: series length %d not longer than window %d", t, w))
	}
	scores := make([]float64, t)
	total := t - w + 1 // windows ending at steps w-1 … t-1
	sd := series.Data()
	wins := tensor.New(min(BatchChunk, total), w, c)
	for start := 0; start < total; start += BatchChunk {
		n := min(BatchChunk, total-start)
		chunk := wins.SliceRows(0, n)
		wd := chunk.Data()
		tensor.Parallel(n, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				copy(wd[j*w*c:(j+1)*w*c], sd[(start+j)*c:(start+j+w)*c])
			}
		})
		copy(scores[w-1+start:], bs.ScoreBatch(chunk))
	}
	for i := 0; i < w-1; i++ {
		scores[i] = scores[w-1]
	}
	return scores
}

// ScoreSeries slides the detector over series (shape (T, C)) and returns
// one score per time step. The score for step i uses the window ending AT
// i inclusive — rows [i−W+1, i+1) — matching the streaming Runner, which
// scores each sample as it arrives: the evidence for "is point i
// anomalous" includes point i itself. The first W−1 steps, for which no
// full window exists yet, receive the first computed score so the output
// aligns 1:1 with the input and with ground-truth labels.
func ScoreSeries(d Detector, series *tensor.Tensor) []float64 {
	if series.Dims() != 2 {
		panic(fmt.Sprintf("detect: ScoreSeries needs a (T,C) series, got %v", series.Shape()))
	}
	t := series.Dim(0)
	w := d.WindowSize()
	if t <= w {
		panic(fmt.Sprintf("detect: series length %d not longer than window %d", t, w))
	}
	scores := make([]float64, t)
	for i := w - 1; i < t; i++ {
		scores[i] = d.Score(series.SliceRows(i-w+1, i+1))
	}
	for i := 0; i < w-1; i++ {
		scores[i] = scores[w-1]
	}
	return scores
}

// Windows extracts all (window, next-point) training pairs from a series of
// shape (T, C) with the given stride: inputs (N, W, C) and targets (N, C),
// where target i is the point immediately after window i. Forecasting
// detectors (VARADE, AR-LSTM, GBRF) train on these pairs.
func Windows(series *tensor.Tensor, window, stride int) (inputs, targets *tensor.Tensor) {
	if series.Dims() != 2 {
		panic(fmt.Sprintf("detect: Windows needs a (T,C) series, got %v", series.Shape()))
	}
	t, c := series.Dim(0), series.Dim(1)
	n := (t - window - 1 + stride) / stride
	if t-window <= 0 || n <= 0 {
		panic(fmt.Sprintf("detect: series length %d too short for window %d", t, window))
	}
	inputs = tensor.New(n, window, c)
	targets = tensor.New(n, c)
	sd, id, td := series.Data(), inputs.Data(), targets.Data()
	for i := 0; i < n; i++ {
		start := i * stride
		copy(id[i*window*c:(i+1)*window*c], sd[start*c:(start+window)*c])
		copy(td[i*c:(i+1)*c], sd[(start+window)*c:(start+window+1)*c])
	}
	return inputs, targets
}

// ToChannelMajor converts a batch of time-major windows (N, W, C) into the
// channel-major layout (N, C, W) consumed by 1-D convolutions. It is
// generic over the element type so the float32 scoring path permutes
// without a round trip through float64.
func ToChannelMajor[T tensor.Float](windows *tensor.Dense[T]) *tensor.Dense[T] {
	if windows.Dims() != 3 {
		panic(fmt.Sprintf("detect: ToChannelMajor needs (N,W,C), got %v", windows.Shape()))
	}
	n, w, c := windows.Dim(0), windows.Dim(1), windows.Dim(2)
	out := tensor.NewOf[T](n, c, w)
	wd, od := windows.Data(), out.Data()
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for t := 0; t < w; t++ {
				for ch := 0; ch < c; ch++ {
					od[(i*c+ch)*w+t] = wd[(i*w+t)*c+ch]
				}
			}
		}
	})
	return out
}
