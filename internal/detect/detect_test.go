package detect

import (
	"testing"

	"varade/internal/tensor"
)

// constDetector scores every window with the mean of its last row.
type constDetector struct{ w int }

func (d *constDetector) Name() string             { return "const" }
func (d *constDetector) WindowSize() int          { return d.w }
func (d *constDetector) Fit(*tensor.Tensor) error { return nil }
func (d *constDetector) Score(win *tensor.Tensor) float64 {
	return win.Row(win.Dim(0) - 1).Mean()
}

func TestScoreSeriesAlignment(t *testing.T) {
	// Series whose value equals its time index on both channels.
	n, c := 10, 2
	series := tensor.New(n, c)
	for i := 0; i < n; i++ {
		series.Set2(float64(i), i, 0)
		series.Set2(float64(i), i, 1)
	}
	d := &constDetector{w: 3}
	scores := ScoreSeries(d, series)
	if len(scores) != n {
		t.Fatalf("got %d scores, want %d", len(scores), n)
	}
	// The window for step i ends AT i inclusive, so score[i] = i: the
	// evidence for point i includes point i itself, as in the streaming
	// Runner.
	for i := 2; i < n; i++ {
		if scores[i] != float64(i) {
			t.Fatalf("scores[%d]=%g want %d", i, scores[i], i)
		}
	}
	// Warm-up points inherit the first computed score.
	for i := 0; i < 2; i++ {
		if scores[i] != scores[2] {
			t.Fatalf("warm-up scores[%d]=%g want %g", i, scores[i], scores[2])
		}
	}
}

func TestScoreSeriesShortSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScoreSeries(&constDetector{w: 5}, tensor.New(5, 1))
}

func TestWindowsPairing(t *testing.T) {
	series := tensor.New(10, 1)
	for i := 0; i < 10; i++ {
		series.Set2(float64(i), i, 0)
	}
	wins, targets := Windows(series, 3, 1)
	if wins.Dim(0) != targets.Dim(0) {
		t.Fatal("window/target count mismatch")
	}
	for i := 0; i < wins.Dim(0); i++ {
		// Window i covers rows [i, i+3); its target is row i+3.
		if wins.At3(i, 0, 0) != float64(i) {
			t.Fatalf("window %d starts at %g", i, wins.At3(i, 0, 0))
		}
		if targets.At2(i, 0) != float64(i+3) {
			t.Fatalf("target %d = %g want %d", i, targets.At2(i, 0), i+3)
		}
	}
}

func TestWindowsStride(t *testing.T) {
	series := tensor.New(20, 2)
	wins, _ := Windows(series, 4, 3)
	// Starts 0,3,6,9,12,15 all satisfy start+4 < 20 → at least 5 windows.
	if wins.Dim(0) < 5 {
		t.Fatalf("got %d windows", wins.Dim(0))
	}
}

func TestToChannelMajor(t *testing.T) {
	wins := tensor.New(1, 2, 3) // one window, 2 steps, 3 channels
	for ti := 0; ti < 2; ti++ {
		for c := 0; c < 3; c++ {
			wins.Set3(float64(10*ti+c), 0, ti, c)
		}
	}
	cm := ToChannelMajor(wins)
	if cm.Dim(1) != 3 || cm.Dim(2) != 2 {
		t.Fatalf("shape %v", cm.Shape())
	}
	for c := 0; c < 3; c++ {
		for ti := 0; ti < 2; ti++ {
			if cm.At3(0, c, ti) != float64(10*ti+c) {
				t.Fatalf("cm[0,%d,%d]=%g", c, ti, cm.At3(0, c, ti))
			}
		}
	}
}
