package stream

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frameBytes renders one frame as raw wire bytes for the seed corpus.
func frameBytes(t FrameType, payload []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, t, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame feeds arbitrary bytes to the fleet-framing reader and
// the handshake decoders — the parsers a hostile or corrupt device
// stream reaches first. Truncated frames, adversarial length prefixes,
// and malformed v1/v2 Hello payloads must come back as errors: never a
// panic, never an allocation driven by an unvalidated length field, and
// never a session whose negotiated parameters escaped validation. It
// mirrors modelio.FuzzReadHeader on the wire layer.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: valid v1 and v2 Hellos, samples/scores frames,
	// truncations, and hostile length fields.
	helloV1 := []byte(`{"model":"varade","channels":3}`)
	helloV2 := []byte(`{"model":"varade@latest","channels":3,"caps":{"precision":"int8","max_batch":64,"drop_policy":"newest"}}`)
	f.Add(frameBytes(FrameHello, helloV1))
	f.Add(frameBytes(FrameHello, helloV2))
	f.Add(frameBytes(FrameHello, []byte(`{"channels":3,"caps":{"precision":"bf16"}}`)))
	f.Add(frameBytes(FrameHello, helloV2)[:7]) // truncated mid-payload
	f.Add(frameBytes(FrameBye, nil))
	f.Add(frameBytes(FrameBye, EncodeByePayload(Bye{Reason: "route: no healthy backend within deadline"})))
	f.Add(frameBytes(FrameBye, []byte(`{"reason":`))) // truncated reason JSON
	bigBye := make([]byte, MaxByePayload+1)
	f.Add(frameBytes(FrameBye, bigBye))
	func() {
		p, err := EncodeSamplesPayload([][]float64{{1, 2}, {3, 4}}, 2)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frameBytes(FrameSamples, p))
	}()
	f.Add(frameBytes(FrameScores, EncodeScoresPayload([]Score{{Index: 7, Value: 1.5}})))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, byte(FrameSamples)}) // 4 GiB length prefix
	oversized := make([]byte, 5)
	binary.LittleEndian.PutUint32(oversized, MaxFramePayload+1)
	oversized[4] = byte(FrameHello)
	f.Add(oversized)
	f.Add([]byte{})
	// Router handshake seeds: preamble + Hello, wrong preamble, a Hello
	// frame whose length prefix exceeds the handshake cap, and a
	// non-Hello first frame.
	f.Add(append([]byte(FrameMagicV2), frameBytes(FrameHello, helloV2)...))
	f.Add(append([]byte(FrameMagic), frameBytes(FrameHello, helloV1)...))
	f.Add(append([]byte("VFS9"), frameBytes(FrameHello, helloV1)...))
	bigHello := make([]byte, 9)
	copy(bigHello, FrameMagicV2)
	binary.LittleEndian.PutUint32(bigHello[4:], MaxHelloPayload+1)
	bigHello[8] = byte(FrameHello)
	f.Add(append(bigHello, make([]byte, 128)...))
	f.Add(append([]byte(FrameMagicV2), frameBytes(FrameSamples, nil)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The router's partial decode: exactly preamble + Hello, with a
		// bounded read. An accepted handshake must be internally
		// consistent (validated Hello, replayable raw payload); an
		// oversized length prefix must be rejected without buffering.
		proto, raw, hello, herr := ReadHello(bytes.NewReader(data))
		if herr == nil {
			if proto != ProtoV1 && proto != ProtoV2 {
				t.Fatalf("ReadHello accepted protocol %d", proto)
			}
			if len(raw) > MaxHelloPayload {
				t.Fatalf("ReadHello buffered %d-byte hello past the handshake cap", len(raw))
			}
			rd, err := DecodeHello(proto, raw)
			if err != nil {
				t.Fatalf("ReadHello's raw payload does not re-decode: %v", err)
			}
			if rd.Channels != hello.Channels || rd.Model != hello.Model {
				t.Fatalf("raw payload decodes to %+v, ReadHello returned %+v", rd, hello)
			}
			if proto == ProtoV1 && hello.GetCaps() != (SessionCaps{}) {
				t.Fatalf("ReadHello let a capability set through on v1: %+v", hello.GetCaps())
			}
		}

		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxFramePayload {
			t.Fatalf("accepted %d-byte payload past the cap", len(payload))
		}
		switch typ {
		case FrameHello:
			for _, proto := range []int{ProtoV1, ProtoV2} {
				h, err := DecodeHello(proto, payload)
				if err != nil {
					continue
				}
				if h.Channels < 0 || h.Version < 0 {
					t.Fatalf("proto %d accepted hello with negative fields: %+v", proto, h)
				}
				caps := h.GetCaps()
				if proto == ProtoV1 && caps != (SessionCaps{}) {
					t.Fatalf("v1 decode let a capability set through: %+v", caps)
				}
				if err := caps.Validate(); err != nil {
					t.Fatalf("accepted hello failed capability validation: %v", err)
				}
			}
		case FrameSamples:
			// Any channel width a server might have negotiated must
			// reject mismatched payloads rather than mis-slice them.
			for _, channels := range []int{1, 2, 3} {
				samples, err := DecodeSamplesPayload(payload, channels)
				if err != nil {
					continue
				}
				for _, s := range samples {
					if len(s) != channels {
						t.Fatalf("decoded sample width %d, want %d", len(s), channels)
					}
				}
			}
		case FrameScores:
			if _, err := DecodeScoresPayload(payload); err != nil {
				return
			}
		case FrameBye:
			// A Bye payload either rejects or round-trips: empty is the
			// bare v1-era Bye, and an accepted reason must survive
			// re-encoding (the router re-emits what it decoded).
			b, err := DecodeByePayload(payload)
			if err != nil {
				return
			}
			if len(payload) == 0 && b != (Bye{}) {
				t.Fatalf("empty bye payload decoded non-zero: %+v", b)
			}
			if len(payload) > MaxByePayload {
				t.Fatalf("accepted %d-byte bye payload past the cap", len(payload))
			}
			if b.Reason != "" {
				rt, err := DecodeByePayload(EncodeByePayload(b))
				if err != nil || rt != b {
					t.Fatalf("bye reason did not round-trip: %+v vs %+v (%v)", b, rt, err)
				}
			}
		}
	})
}
