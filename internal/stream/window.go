// Package stream implements the real-time side of the case study (Fig. 2):
// a ring-buffer window assembler, a scoring runner that couples any
// detect.Detector to a live sample feed, an in-process sensor bus, a TCP
// line-protocol transport standing in for the testbed's MQTT-over-
// Ethernet link, and the length-prefixed binary framing the fleet server
// multiplexes device sessions over.
package stream

import (
	"fmt"

	"varade/internal/tensor"
)

// WindowBuffer assembles fixed-size sliding windows from a stream of
// samples. It keeps the last `window` samples in a ring and can render
// them, oldest first, as the (W, C) tensor detectors consume.
type WindowBuffer struct {
	window, channels int
	data             []float64 // ring storage, window × channels
	head             int       // next write slot
	count            int
}

// NewWindowBuffer returns a buffer for windows of the given size and width.
func NewWindowBuffer(window, channels int) *WindowBuffer {
	if window <= 0 || channels <= 0 {
		panic(fmt.Sprintf("stream: invalid window buffer %d×%d", window, channels))
	}
	return &WindowBuffer{
		window:   window,
		channels: channels,
		data:     make([]float64, window*channels),
	}
}

// Push appends one sample. It panics if the sample width is wrong.
func (b *WindowBuffer) Push(sample []float64) {
	if len(sample) != b.channels {
		panic(fmt.Sprintf("stream: sample width %d, want %d", len(sample), b.channels))
	}
	copy(b.data[b.head*b.channels:(b.head+1)*b.channels], sample)
	b.head = (b.head + 1) % b.window
	if b.count < b.window {
		b.count++
	}
}

// Full reports whether a complete window is available.
func (b *WindowBuffer) Full() bool { return b.count == b.window }

// Len returns the number of buffered samples (≤ window).
func (b *WindowBuffer) Len() int { return b.count }

// Window copies the current window, oldest sample first, into a (W, C)
// tensor. It panics unless Full.
func (b *WindowBuffer) Window() *tensor.Tensor {
	if !b.Full() {
		panic("stream: Window on partially filled buffer")
	}
	out := tensor.New(b.window, b.channels)
	b.CopyWindowInto(out.Data())
	return out
}

// CopyWindowInto writes the current window, oldest sample first, into dst
// (length ≥ window·channels) without allocating. It panics unless Full.
func (b *WindowBuffer) CopyWindowInto(dst []float64) {
	if !b.Full() {
		panic("stream: CopyWindowInto on partially filled buffer")
	}
	// Oldest sample sits at head (the next slot to be overwritten).
	for i := 0; i < b.window; i++ {
		src := (b.head + i) % b.window
		copy(dst[i*b.channels:(i+1)*b.channels], b.data[src*b.channels:(src+1)*b.channels])
	}
}

// CopyWindowInto32 writes the current window, oldest sample first, into a
// float32 destination (length ≥ window·channels) without allocating — the
// assembly path for serving groups that batch in reduced precision. It
// panics unless Full.
func (b *WindowBuffer) CopyWindowInto32(dst []float32) {
	if !b.Full() {
		panic("stream: CopyWindowInto32 on partially filled buffer")
	}
	for i := 0; i < b.window; i++ {
		src := (b.head + i) % b.window
		row := b.data[src*b.channels : (src+1)*b.channels]
		out := dst[i*b.channels : (i+1)*b.channels]
		for j, v := range row {
			out[j] = float32(v)
		}
	}
}

// Reset discards all buffered samples.
func (b *WindowBuffer) Reset() {
	b.head, b.count = 0, 0
}
