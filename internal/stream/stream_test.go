package stream

import (
	"context"
	"strings"
	"testing"
	"time"

	"varade/internal/tensor"
)

func TestWindowBufferOrdering(t *testing.T) {
	b := NewWindowBuffer(3, 2)
	if b.Full() {
		t.Fatal("empty buffer reports full")
	}
	for i := 0; i < 5; i++ {
		b.Push([]float64{float64(i), float64(10 * i)})
	}
	if !b.Full() || b.Len() != 3 {
		t.Fatal("buffer should be full with 3 samples")
	}
	w := b.Window()
	// After pushing 0..4, the window holds 2, 3, 4 oldest-first.
	for i := 0; i < 3; i++ {
		if w.At2(i, 0) != float64(i+2) || w.At2(i, 1) != float64(10*(i+2)) {
			t.Fatalf("window row %d = %v", i, w.Row(i).Data())
		}
	}
}

func TestWindowBufferExactFill(t *testing.T) {
	b := NewWindowBuffer(2, 1)
	b.Push([]float64{1})
	if b.Full() {
		t.Fatal("not yet full")
	}
	b.Push([]float64{2})
	w := b.Window()
	if w.At2(0, 0) != 1 || w.At2(1, 0) != 2 {
		t.Fatalf("window %v", w.Data())
	}
}

func TestWindowBufferReset(t *testing.T) {
	b := NewWindowBuffer(2, 1)
	b.Push([]float64{1})
	b.Push([]float64{2})
	b.Reset()
	if b.Full() || b.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWindowBufferPanics(t *testing.T) {
	b := NewWindowBuffer(2, 2)
	t.Run("wrong-width", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		b.Push([]float64{1})
	})
	t.Run("partial-window", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewWindowBuffer(2, 1).Window()
	})
}

// meanDetector scores a window by its overall mean.
type meanDetector struct{ w int }

func (d *meanDetector) Name() string                   { return "mean" }
func (d *meanDetector) WindowSize() int                { return d.w }
func (d *meanDetector) Fit(*tensor.Tensor) error       { return nil }
func (d *meanDetector) Score(w *tensor.Tensor) float64 { return w.Mean() }

func TestRunnerProducesScoresOncePrimed(t *testing.T) {
	r := NewRunner(&meanDetector{w: 3}, 1)
	var scores []Score
	for i := 0; i < 6; i++ {
		if s, ok := r.Push([]float64{float64(i)}); ok {
			scores = append(scores, s)
		}
	}
	// Windows complete at pushes 3..6 → 4 scores, indices 2..5.
	if len(scores) != 4 || r.Scored() != 4 {
		t.Fatalf("%d scores", len(scores))
	}
	if scores[0].Index != 2 || scores[0].Value != 1 { // mean(0,1,2)
		t.Fatalf("first score %+v", scores[0])
	}
	if scores[3].Index != 5 || scores[3].Value != 4 { // mean(3,4,5)
		t.Fatalf("last score %+v", scores[3])
	}
}

func TestBusDeliversToAllSubscribers(t *testing.T) {
	b := NewBus[[]float64]()
	s1 := b.Subscribe(10)
	s2 := b.Subscribe(10)
	b.Publish([]float64{1, 2})
	b.Publish([]float64{3, 4})
	b.Close()
	count1, count2 := 0, 0
	for range s1 {
		count1++
	}
	for range s2 {
		count2++
	}
	if count1 != 2 || count2 != 2 {
		t.Fatalf("subscribers got %d and %d samples", count1, count2)
	}
}

func TestBusDropsOldestUnderBackpressure(t *testing.T) {
	b := NewBus[[]float64]()
	s := b.Subscribe(2)
	for i := 0; i < 5; i++ {
		b.Publish([]float64{float64(i)})
	}
	b.Close()
	var got []float64
	for sample := range s {
		got = append(got, sample[0])
	}
	if len(got) != 2 {
		t.Fatalf("queue held %d samples, want 2", len(got))
	}
	// The two newest samples survive.
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("surviving samples %v want [3 4]", got)
	}
	if b.Dropped() != 3 {
		t.Fatalf("dropped %d want 3", b.Dropped())
	}
}

func TestBusPublishAfterCloseIsNoop(t *testing.T) {
	b := NewBus[[]float64]()
	b.Close()
	b.Publish([]float64{1}) // must not panic
	if ch := b.Subscribe(1); ch == nil {
		t.Fatal("subscribe after close must return a closed channel")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []float64{1.5, -2.25, 0, 1e-9}
	line := EncodeSample(in)
	out, err := DecodeSample(line, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("round trip %v → %v", in, out)
		}
	}
}

func TestDecodeSampleErrors(t *testing.T) {
	if _, err := DecodeSample("1,2,3", 2); err == nil {
		t.Fatal("expected width error")
	}
	if _, err := DecodeSample("1,abc", 2); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestReadSamplesEarlyStop(t *testing.T) {
	input := "1,2\n3,4\n5,6\n"
	n := 0
	err := ReadSamples(strings.NewReader(input), 2, func([]float64) bool {
		n++
		return n < 2
	})
	if err != nil || n != 2 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}

func TestTCPServeAndScore(t *testing.T) {
	series := tensor.New(20, 2)
	for i := 0; i < 20; i++ {
		series.Set2(float64(i), i, 0)
		series.Set2(float64(-i), i, 1)
	}
	addr, stop, err := ServeSeries(context.Background(), "127.0.0.1:0", series)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	r := NewRunner(&meanDetector{w: 4}, 2)
	var scores []Score
	done := make(chan error, 1)
	go func() {
		done <- DialAndScore(context.Background(), addr, 2, r, func(s Score) { scores = append(scores, s) })
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	// 20 samples, window 4 → 17 scores.
	if len(scores) != 17 {
		t.Fatalf("%d scores want 17", len(scores))
	}
	// Channel means cancel: window of rows i..i+3 has mean 0 on both
	// channels combined.
	if scores[0].Value != 0 {
		t.Fatalf("first score %g want 0", scores[0].Value)
	}
}
