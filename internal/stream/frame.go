package stream

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// The binary framing is the fleet transport: where the CSV line protocol
// favours debuggability (netcat-compatible, one sample per line), frames
// favour density and multiplexing — a device session opens with a magic
// preamble and a Hello naming the model it wants, then ships samples in
// batches; the server streams back score batches. A shared listener tells
// the two protocols apart by the preamble's first bytes (CSV lines never
// begin with 'V').
//
// Wire layout, little-endian:
//
//	preamble "VFS1" (protocol v1) or "VFS2" (protocol v2), client→server, once
//	frame: u32 payloadLen | u8 type | payload
//
//	Hello   (JSON)     client → server: model, version, channels; v2 adds
//	                   a capability set (precision, max_batch, drop_policy)
//	                   and model refs may float ("name@latest")
//	Welcome (JSON)     server → client: resolved model, window, channels;
//	                   v2 echoes the *granted* capabilities
//	Samples            u32 count | count×channels float64, row-major
//	Scores             u32 count | count × (i64 index | float64 value)
//	Error   (UTF-8)    either direction, terminal
//	Bye                client → server: flush outstanding scores and close.
//	                   Server → client it ends the session from the far
//	                   side; a non-empty payload is JSON naming the reason
//	                   (e.g. a router whose hand-off deadline lapsed).
//
// The two protocol versions differ only in the preamble and the handshake
// payloads; every post-handshake frame is identical, so a v1 client keeps
// working against a v2 server unchanged (preamble sniffing picks the
// dialect) and is simply served at the model file's own precision.

// FrameMagic is the preamble a protocol-v1 binary client writes before
// its first frame.
const FrameMagic = "VFS1"

// FrameMagicV2 is the protocol-v2 preamble: the Hello that follows
// carries a capability set the server answers in its Welcome.
const FrameMagicV2 = "VFS2"

// Protocol versions, as announced by the preamble.
const (
	ProtoV1 = 1
	ProtoV2 = 2
)

// SniffProto reports the protocol version a 4-byte preamble announces
// (0 if it is not a fleet-framing preamble — e.g. a CSV line).
func SniffProto(preamble []byte) int {
	switch string(preamble) {
	case FrameMagic:
		return ProtoV1
	case FrameMagicV2:
		return ProtoV2
	}
	return 0
}

// FrameType tags one frame.
type FrameType byte

// Frame types of the fleet protocol.
const (
	FrameHello FrameType = iota + 1
	FrameWelcome
	FrameSamples
	FrameScores
	FrameError
	FrameBye
)

// MaxFramePayload bounds a single frame so a corrupt length prefix cannot
// make the reader allocate unboundedly.
const MaxFramePayload = 16 << 20

// Session capability values a v2 client may request. Empty fields always
// mean "server default".
const (
	// DropOldest sheds the oldest queued sample when a session's
	// admission queue is full — the freshest data wins (the default).
	DropOldest = "oldest"
	// DropNewest sheds the incoming sample instead, preserving the
	// already-queued backlog — for consumers replaying a bounded log.
	DropNewest = "newest"
)

// helloPrecisions are the numeric precisions a Hello may request.
var helloPrecisions = map[string]bool{"": true, "float64": true, "float32": true, "int8": true}

// maxHelloField bounds numeric Hello fields so a hostile handshake cannot
// make the server size buffers from an absurd request.
const maxHelloField = 1 << 20

// SessionCaps is the capability set negotiated per session in protocol
// v2: the client states what it wants in its Hello and the server echoes
// what it granted in its Welcome.
type SessionCaps struct {
	// Precision asks the server to score this session's windows at a
	// specific numeric precision ("float64", "float32" or "int8"),
	// deriving a precision-specific serving group from the registry
	// entry if one does not exist yet. Empty serves the model file's
	// own precision.
	Precision string `json:"precision,omitempty"`
	// MaxBatch caps how many scores the server packs into one Scores
	// frame for this session — small devices with tight receive buffers
	// ask for less. 0 means the server default; the grant is
	// min(requested, server cap).
	MaxBatch int `json:"max_batch,omitempty"`
	// DropPolicy selects the admission-shedding policy when the session
	// falls behind: DropOldest (default) or DropNewest.
	DropPolicy string `json:"drop_policy,omitempty"`
	// SLOP99Ms asks the server to bound this session's p99 coalescing
	// latency to the given budget in milliseconds: the serving group's
	// flusher converts the tightest live request (and the operator's
	// -slo-p99 floor) into a deadline on the oldest admitted window.
	// 0 means no request; the grant is min(requested, server configured),
	// echoed in the Welcome.
	SLOP99Ms float64 `json:"slo_p99_ms,omitempty"`
}

// Validate checks the requested capability values.
func (c SessionCaps) Validate() error {
	if !helloPrecisions[c.Precision] {
		return fmt.Errorf("stream: unknown precision %q", c.Precision)
	}
	if c.MaxBatch < 0 || c.MaxBatch > maxHelloField {
		return fmt.Errorf("stream: max_batch %d out of range", c.MaxBatch)
	}
	switch c.DropPolicy {
	case "", DropOldest, DropNewest:
	default:
		return fmt.Errorf("stream: unknown drop policy %q", c.DropPolicy)
	}
	if c.SLOP99Ms < 0 || c.SLOP99Ms > maxHelloField {
		return fmt.Errorf("stream: slo_p99_ms %g out of range", c.SLOP99Ms)
	}
	return nil
}

// Hello is the client's opening frame: which registered model to score
// with (empty means the server default) and the stream width. Protocol v2
// adds the capability set and lets Model float ("name@latest") or pin a
// version ("name@v3") in the reference itself.
type Hello struct {
	Model    string `json:"model,omitempty"`
	Version  int    `json:"version,omitempty"`
	Channels int    `json:"channels"`
	// Caps is the v2 capability request; v1 payloads never carry it.
	Caps *SessionCaps `json:"caps,omitempty"`
}

// DecodeHello parses and validates a Hello payload for the given
// protocol version. Malformed JSON, out-of-range fields, and capability
// sets on a v1 handshake all come back as errors, never as a session
// with unchecked parameters.
func DecodeHello(proto int, payload []byte) (Hello, error) {
	var h Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		return Hello{}, fmt.Errorf("stream: bad hello: %w", err)
	}
	if h.Channels < 0 || h.Channels > maxHelloField {
		return Hello{}, fmt.Errorf("stream: hello channels %d out of range", h.Channels)
	}
	if h.Version < 0 || h.Version > maxHelloField {
		return Hello{}, fmt.Errorf("stream: hello version %d out of range", h.Version)
	}
	if h.Caps != nil {
		if proto < ProtoV2 {
			return Hello{}, fmt.Errorf("stream: protocol v1 hello carries a v2 capability set")
		}
		if err := h.Caps.Validate(); err != nil {
			return Hello{}, err
		}
	}
	return h, nil
}

// GetCaps returns the requested capability set (zero for v1 clients).
func (h Hello) GetCaps() SessionCaps {
	if h.Caps == nil {
		return SessionCaps{}
	}
	return *h.Caps
}

// Welcome is the server's reply: the resolved model and the geometry the
// session will score with. On a v2 session it additionally echoes the
// granted capability set — the precision the serving group actually runs,
// the score-frame cap, and the admission drop policy in force.
type Welcome struct {
	Model    string `json:"model"`
	Version  int    `json:"version"`
	Window   int    `json:"window"`
	Channels int    `json:"channels"`
	// Proto is the protocol version the server is speaking back (0 on
	// v1 sessions, whose Welcome predates the field).
	Proto int `json:"proto,omitempty"`
	// Precision is the granted serving precision (v2 only).
	Precision string `json:"precision,omitempty"`
	// MaxBatch is the granted per-frame score cap (v2 only).
	MaxBatch int `json:"max_batch,omitempty"`
	// DropPolicy is the granted admission policy (v2 only).
	DropPolicy string `json:"drop_policy,omitempty"`
	// SLOP99Ms is the granted p99 coalescing-latency budget in
	// milliseconds (v2 only; 0 when neither the session nor the server
	// configured one, in which case the field is omitted and the Welcome
	// stays byte-identical to pre-SLO servers).
	SLOP99Ms float64 `json:"slo_p99_ms,omitempty"`
	// Backend names the backend process actually serving this session
	// when the connection runs through a varade-router (v2 only; empty
	// on direct connections, in which case the field is omitted and the
	// Welcome stays byte-identical to pre-router servers).
	Backend string `json:"backend,omitempty"`
}

// MaxByePayload bounds a Bye frame payload: the reason JSON is a short
// sentence, never a blob.
const MaxByePayload = 4 << 10

// Bye is the optional terminal metadata of a FrameBye. The classic
// client→server Bye carries no payload ("stream over, flush and
// close"); a server→client Bye may carry a Reason naming why the
// session cannot continue — the router's hand-off plane sends one when
// a session's re-placement deadline lapses. An empty payload decodes to
// the zero Bye, so pre-reason peers interoperate unchanged.
type Bye struct {
	Reason string `json:"reason,omitempty"`
}

// EncodeByePayload renders a Bye payload: nil for the zero value (the
// v1-era bare Bye, byte-identical on the wire), JSON otherwise.
func EncodeByePayload(b Bye) []byte {
	if b == (Bye{}) {
		return nil
	}
	blob, err := json.Marshal(b)
	if err != nil {
		return nil
	}
	return blob
}

// DecodeByePayload parses a Bye payload. Empty means the bare
// flush-and-close Bye; anything else must be valid, bounded JSON.
func DecodeByePayload(payload []byte) (Bye, error) {
	if len(payload) == 0 {
		return Bye{}, nil
	}
	if len(payload) > MaxByePayload {
		return Bye{}, fmt.Errorf("stream: bye payload %dB exceeds cap %d", len(payload), MaxByePayload)
	}
	var b Bye
	if err := json.Unmarshal(payload, &b); err != nil {
		return Bye{}, fmt.Errorf("stream: bad bye: %w", err)
	}
	return b, nil
}

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	var head [5]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(payload)))
	head[4] = byte(t)
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting payloads over MaxFramePayload.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	return readFrameCapped(r, MaxFramePayload)
}

// readFrameCapped reads one frame, rejecting payloads over max before a
// single payload byte is read or allocated.
func readFrameCapped(r io.Reader, max uint32) (FrameType, []byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(head[:4])
	if n > max {
		return 0, nil, fmt.Errorf("stream: frame payload %d exceeds cap %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return FrameType(head[4]), payload, nil
}

// MaxHelloPayload bounds the handshake frames (Hello and Welcome). A
// legitimate handshake is a few hundred bytes of JSON; a proxy that
// decodes the Hello before picking a backend must not be made to buffer
// a MaxFramePayload-sized blob by a hostile length prefix.
const MaxHelloPayload = 64 << 10

// ReadHello performs the router-side partial decode of a fleet session:
// it consumes exactly the 4-byte preamble and the Hello frame that
// follows — nothing further — and returns the protocol version, the raw
// Hello payload (for verbatim replay to a backend), and the decoded,
// validated Hello. Oversized Hello frames are rejected by a bounded
// read (MaxHelloPayload) before any payload byte is buffered, so a
// hostile handshake cannot make the proxy allocate a frame-sized blob.
func ReadHello(r io.Reader) (proto int, payload []byte, h Hello, err error) {
	var preamble [4]byte
	if _, err = io.ReadFull(r, preamble[:]); err != nil {
		return 0, nil, Hello{}, err
	}
	proto = SniffProto(preamble[:])
	if proto == 0 {
		return 0, nil, Hello{}, fmt.Errorf("stream: not a fleet preamble %q", preamble[:])
	}
	t, payload, err := readFrameCapped(r, MaxHelloPayload)
	if err != nil {
		return 0, nil, Hello{}, err
	}
	if t != FrameHello {
		return 0, nil, Hello{}, fmt.Errorf("stream: handshake frame type %d, want hello", t)
	}
	h, err = DecodeHello(proto, payload)
	if err != nil {
		return 0, nil, Hello{}, err
	}
	return proto, payload, h, nil
}

// WriteJSONFrame marshals v and writes it as a frame of type t.
func WriteJSONFrame(w io.Writer, t FrameType, v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, t, blob)
}

// EncodeSamplesPayload renders a batch of samples (each of width
// channels) as a Samples frame payload.
func EncodeSamplesPayload(samples [][]float64, channels int) ([]byte, error) {
	buf := make([]byte, 4+len(samples)*channels*8)
	binary.LittleEndian.PutUint32(buf, uint32(len(samples)))
	off := 4
	for _, s := range samples {
		if len(s) != channels {
			return nil, fmt.Errorf("stream: sample width %d, want %d", len(s), channels)
		}
		for _, v := range s {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return buf, nil
}

// DecodeSamplesPayload parses a Samples frame payload into per-sample
// slices of width channels. The returned slices are fresh allocations.
func DecodeSamplesPayload(payload []byte, channels int) ([][]float64, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("stream: samples payload too short")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+n*channels*8 {
		return nil, fmt.Errorf("stream: samples payload %dB for %d×%d samples", len(payload), n, channels)
	}
	flat := make([]float64, n*channels)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[4+i*8:]))
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = flat[i*channels : (i+1)*channels : (i+1)*channels]
	}
	return out, nil
}

// EncodeScoresPayload renders scores as a Scores frame payload.
func EncodeScoresPayload(scores []Score) []byte {
	buf := make([]byte, 4+len(scores)*16)
	binary.LittleEndian.PutUint32(buf, uint32(len(scores)))
	off := 4
	for _, s := range scores {
		binary.LittleEndian.PutUint64(buf[off:], uint64(int64(s.Index)))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(s.Value))
		off += 16
	}
	return buf
}

// DecodeScoresPayload parses a Scores frame payload.
func DecodeScoresPayload(payload []byte) ([]Score, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("stream: scores payload too short")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+n*16 {
		return nil, fmt.Errorf("stream: scores payload %dB for %d scores", len(payload), n)
	}
	out := make([]Score, n)
	for i := range out {
		out[i].Index = int(int64(binary.LittleEndian.Uint64(payload[4+i*16:])))
		out[i].Value = math.Float64frombits(binary.LittleEndian.Uint64(payload[4+i*16+8:]))
	}
	return out, nil
}
