package stream

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// The binary framing is the fleet transport: where the CSV line protocol
// favours debuggability (netcat-compatible, one sample per line), frames
// favour density and multiplexing — a device session opens with a magic
// preamble and a Hello naming the model it wants, then ships samples in
// batches; the server streams back score batches. A shared listener tells
// the two protocols apart by the preamble's first bytes (CSV lines never
// begin with 'V').
//
// Wire layout, little-endian:
//
//	preamble "VFS1" (client→server, once)
//	frame: u32 payloadLen | u8 type | payload
//
//	Hello   (JSON)     client → server: model, version, channels
//	Welcome (JSON)     server → client: resolved model, window, channels
//	Samples            u32 count | count×channels float64, row-major
//	Scores             u32 count | count × (i64 index | float64 value)
//	Error   (UTF-8)    either direction, terminal
//	Bye                client → server: flush outstanding scores and close

// FrameMagic is the preamble a binary client writes before its first
// frame.
const FrameMagic = "VFS1"

// FrameType tags one frame.
type FrameType byte

// Frame types of the fleet protocol.
const (
	FrameHello FrameType = iota + 1
	FrameWelcome
	FrameSamples
	FrameScores
	FrameError
	FrameBye
)

// MaxFramePayload bounds a single frame so a corrupt length prefix cannot
// make the reader allocate unboundedly.
const MaxFramePayload = 16 << 20

// Hello is the client's opening frame: which registered model to score
// with (empty means the server default) and the stream width.
type Hello struct {
	Model    string `json:"model,omitempty"`
	Version  int    `json:"version,omitempty"`
	Channels int    `json:"channels"`
}

// Welcome is the server's reply: the resolved model and the geometry the
// session will score with.
type Welcome struct {
	Model    string `json:"model"`
	Version  int    `json:"version"`
	Window   int    `json:"window"`
	Channels int    `json:"channels"`
}

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	var head [5]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(payload)))
	head[4] = byte(t)
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting payloads over MaxFramePayload.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(head[:4])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("stream: frame payload %d exceeds cap", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return FrameType(head[4]), payload, nil
}

// WriteJSONFrame marshals v and writes it as a frame of type t.
func WriteJSONFrame(w io.Writer, t FrameType, v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, t, blob)
}

// EncodeSamplesPayload renders a batch of samples (each of width
// channels) as a Samples frame payload.
func EncodeSamplesPayload(samples [][]float64, channels int) ([]byte, error) {
	buf := make([]byte, 4+len(samples)*channels*8)
	binary.LittleEndian.PutUint32(buf, uint32(len(samples)))
	off := 4
	for _, s := range samples {
		if len(s) != channels {
			return nil, fmt.Errorf("stream: sample width %d, want %d", len(s), channels)
		}
		for _, v := range s {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return buf, nil
}

// DecodeSamplesPayload parses a Samples frame payload into per-sample
// slices of width channels. The returned slices are fresh allocations.
func DecodeSamplesPayload(payload []byte, channels int) ([][]float64, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("stream: samples payload too short")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+n*channels*8 {
		return nil, fmt.Errorf("stream: samples payload %dB for %d×%d samples", len(payload), n, channels)
	}
	flat := make([]float64, n*channels)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[4+i*8:]))
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = flat[i*channels : (i+1)*channels : (i+1)*channels]
	}
	return out, nil
}

// EncodeScoresPayload renders scores as a Scores frame payload.
func EncodeScoresPayload(scores []Score) []byte {
	buf := make([]byte, 4+len(scores)*16)
	binary.LittleEndian.PutUint32(buf, uint32(len(scores)))
	off := 4
	for _, s := range scores {
		binary.LittleEndian.PutUint64(buf[off:], uint64(int64(s.Index)))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(s.Value))
		off += 16
	}
	return buf
}

// DecodeScoresPayload parses a Scores frame payload.
func DecodeScoresPayload(payload []byte) ([]Score, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("stream: scores payload too short")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+n*16 {
		return nil, fmt.Errorf("stream: scores payload %dB for %d scores", len(payload), n)
	}
	out := make([]Score, n)
	for i := range out {
		out[i].Index = int(int64(binary.LittleEndian.Uint64(payload[4+i*16:])))
		out[i].Value = math.Float64frombits(binary.LittleEndian.Uint64(payload[4+i*16+8:]))
	}
	return out, nil
}
