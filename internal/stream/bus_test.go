package stream

import (
	"sync"
	"testing"
	"time"

	"varade/internal/tensor"
)

// TestBusPublishBoundedUnderRacingConsumer hammers a bus with a consumer
// racing the publisher's drop-and-retry sequence. The old implementation
// could spin in Publish; the bounded version must terminate and account
// for every sample as either delivered or dropped.
func TestBusPublishBoundedUnderRacingConsumer(t *testing.T) {
	b := NewBus[[]float64]()
	ch := b.Subscribe(1)
	const total = 5000
	var consumed int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range ch {
			consumed++
		}
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			b.Publish([]float64{float64(i)})
		}
		// Give the consumer a moment to drain before closing.
		time.Sleep(10 * time.Millisecond)
		b.Close()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Publish did not terminate (unbounded retry loop)")
	}
	wg.Wait()
	if consumed+b.Dropped() < total {
		t.Fatalf("samples unaccounted for: %d consumed + %d dropped < %d published",
			consumed, b.Dropped(), total)
	}
	if consumed == 0 {
		t.Fatal("racing consumer received nothing")
	}
}

// TestBusDroppedCountsNewSampleWhenRetryFails documents the bounded drop
// accounting: with no consumer, publishing depth+k samples drops exactly k.
func TestBusDroppedCountsExactEvictions(t *testing.T) {
	b := NewBus[[]float64]()
	_ = b.Subscribe(3)
	for i := 0; i < 10; i++ {
		b.Publish([]float64{float64(i)})
	}
	if b.Dropped() != 7 {
		t.Fatalf("dropped %d want 7", b.Dropped())
	}
}

// TestBusSubscribeAfterClose pins the close contract: a late subscriber
// gets an already-closed channel (range terminates immediately) rather
// than a nil channel or a panic.
func TestBusSubscribeAfterClose(t *testing.T) {
	b := NewBus[[]float64]()
	b.Publish([]float64{1})
	b.Close()
	ch := b.Subscribe(4)
	if ch == nil {
		t.Fatal("Subscribe after Close returned nil channel")
	}
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("late subscriber received a sample")
		}
	case <-time.After(time.Second):
		t.Fatal("late subscriber's channel is not closed")
	}
	// Close must be idempotent.
	b.Close()
}

// TestBusPublishAfterCloseDropsSilently pins the other half: publishing
// into a closed bus is a no-op — nothing delivered, nothing counted as a
// backpressure drop, no panic from sending on a closed channel.
func TestBusPublishAfterCloseDropsSilently(t *testing.T) {
	b := NewBus[[]float64]()
	ch := b.Subscribe(4)
	b.Publish([]float64{1})
	b.Close()
	b.Publish([]float64{2})
	b.Publish([]float64{3})
	n := 0
	for range ch {
		n++
	}
	if n != 1 {
		t.Fatalf("subscriber saw %d samples, want only the pre-close one", n)
	}
	if b.Dropped() != 0 {
		t.Fatalf("post-close publishes counted as drops: %d", b.Dropped())
	}
}

// TestBusDropCountingUnderConcurrency races publishers against consumers
// and a late Close, then checks conservation: every published sample is
// either consumed or counted as dropped (run under -race in CI).
func TestBusDropCountingUnderConcurrency(t *testing.T) {
	b := NewBus[[]float64]()
	const (
		publishers   = 4
		perPublisher = 2000
	)
	subs := []<-chan []float64{b.Subscribe(8), b.Subscribe(8)}
	var consumed [2]int
	var consumerWG sync.WaitGroup
	for i, ch := range subs {
		consumerWG.Add(1)
		go func(i int, ch <-chan []float64) {
			defer consumerWG.Done()
			for range ch {
				consumed[i]++
			}
		}(i, ch)
	}
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish([]float64{float64(p), float64(i)})
			}
		}(p)
	}
	pubWG.Wait()
	b.Close()
	consumerWG.Wait()
	total := publishers * perPublisher * len(subs)
	if got := consumed[0] + consumed[1] + b.Dropped(); got != total {
		t.Fatalf("conservation violated: %d consumed+dropped, %d delivered", got, total)
	}
}

// TestPushBatchFallbackMatchesPush drives PushBatch with a detector that
// has no batched path; it must produce exactly the scalar-path scores.
func TestPushBatchFallbackMatchesPush(t *testing.T) {
	d := &meanDetector{w: 3}
	r1 := NewRunner(d, 2)
	r2 := NewRunner(d, 2)
	var feed [][]float64
	for i := 0; i < 9; i++ {
		feed = append(feed, []float64{float64(i), float64(-i)})
	}
	var scalar []Score
	for _, s := range feed {
		if sc, ok := r1.Push(s); ok {
			scalar = append(scalar, sc)
		}
	}
	batched := r2.PushBatch(feed)
	if len(scalar) != len(batched) {
		t.Fatalf("%d vs %d scores", len(scalar), len(batched))
	}
	for i := range scalar {
		if scalar[i] != batched[i] {
			t.Fatalf("score %d: %+v vs %+v", i, scalar[i], batched[i])
		}
	}
}

// batchMeanDetector is meanDetector with a batched path, for exercising
// PushBatch's window assembly against the ring buffer.
type batchMeanDetector struct{ meanDetector }

func (d *batchMeanDetector) ScoreBatch(wins *tensor.Tensor) []float64 {
	n := wins.Dim(0)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = wins.SliceRows(i, i+1).Mean()
	}
	return out
}

// TestPushBatchChunksLargeBacklogs feeds more windows than one scoring
// chunk holds; the chunked flushes must still yield one correct score per
// completed window, in order.
func TestPushBatchChunksLargeBacklogs(t *testing.T) {
	d := &batchMeanDetector{meanDetector{w: 2}}
	r := NewRunner(d, 1)
	total := 3*256 + 17 // several full chunks plus a partial tail
	feed := make([][]float64, total)
	for i := range feed {
		feed[i] = []float64{float64(i)}
	}
	got := r.PushBatch(feed)
	if len(got) != total-1 {
		t.Fatalf("%d scores want %d", len(got), total-1)
	}
	for i, s := range got {
		if s.Index != i+1 {
			t.Fatalf("score %d has index %d", i, s.Index)
		}
		if want := float64(i) + 0.5; s.Value != want { // mean(i, i+1)
			t.Fatalf("score %d = %g want %g", i, s.Value, want)
		}
	}
}

func TestPushBatchAssemblesWindowsAcrossCalls(t *testing.T) {
	d := &batchMeanDetector{meanDetector{w: 4}}
	r := NewRunner(d, 1)
	// First call leaves a partial window.
	if got := r.PushBatch([][]float64{{1}, {2}}); got != nil {
		t.Fatalf("partial fill produced scores %v", got)
	}
	// Second call completes windows spanning both calls.
	got := r.PushBatch([][]float64{{3}, {4}, {5}})
	if len(got) != 2 {
		t.Fatalf("%d scores want 2", len(got))
	}
	if got[0].Index != 3 || got[0].Value != 2.5 { // mean(1,2,3,4)
		t.Fatalf("first score %+v", got[0])
	}
	if got[1].Index != 4 || got[1].Value != 3.5 { // mean(2,3,4,5)
		t.Fatalf("second score %+v", got[1])
	}
	if r.Scored() != 2 {
		t.Fatalf("Scored() = %d want 2", r.Scored())
	}
}
