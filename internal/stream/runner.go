package stream

import (
	"sync"

	"varade/internal/detect"
)

// Score is one runner output: the sample index and its anomaly score.
type Score struct {
	Index int
	Value float64
}

// Runner couples a detector to a live sample feed: every pushed sample
// that completes a window produces one score. It is the software shape of
// the testbed script in §4.3 ("continuously reads data from the sensors,
// prepares the data … and calls the inference function").
type Runner struct {
	det    detect.Detector
	buf    *WindowBuffer
	index  int
	nScore int
}

// NewRunner returns a runner for a fitted detector over streams of the
// given channel width.
func NewRunner(det detect.Detector, channels int) *Runner {
	return &Runner{det: det, buf: NewWindowBuffer(det.WindowSize(), channels)}
}

// Push feeds one sample and returns the resulting score, if a full window
// is available.
func (r *Runner) Push(sample []float64) (Score, bool) {
	r.buf.Push(sample)
	r.index++
	if !r.buf.Full() {
		return Score{}, false
	}
	r.nScore++
	return Score{Index: r.index - 1, Value: r.det.Score(r.buf.Window())}, true
}

// Scored returns how many scores the runner has produced.
func (r *Runner) Scored() int { return r.nScore }

// Bus is a minimal in-process publish/subscribe fabric standing in for the
// testbed's MQTT broker: sensors publish samples, detector runners
// subscribe. Subscribers receive every sample published after they join;
// a slow subscriber drops the oldest queued samples rather than blocking
// the producer, matching real broker behaviour under backpressure.
type Bus struct {
	mu     sync.Mutex
	subs   []chan []float64
	closed bool
	// Dropped counts samples discarded because a subscriber queue was full.
	dropped int
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers a new consumer with the given queue depth.
func (b *Bus) Subscribe(depth int) <-chan []float64 {
	if depth < 1 {
		depth = 1
	}
	ch := make(chan []float64, depth)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return ch
	}
	b.subs = append(b.subs, ch)
	return ch
}

// Publish delivers sample to every subscriber, dropping the oldest queued
// sample of any full subscriber.
func (b *Bus) Publish(sample []float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for _, ch := range b.subs {
		for {
			select {
			case ch <- sample:
			default:
				// Queue full: drop the oldest and retry once.
				select {
				case <-ch:
					b.dropped++
				default:
				}
				continue
			}
			break
		}
	}
}

// Dropped returns the number of samples discarded under backpressure.
func (b *Bus) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Close terminates all subscriber channels.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, ch := range b.subs {
		close(ch)
	}
	b.subs = nil
}
