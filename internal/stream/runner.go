package stream

import (
	"sync"

	"varade/internal/detect"
	"varade/internal/obs"
	"varade/internal/tensor"
)

// Score is one runner output: the sample index and its anomaly score.
type Score struct {
	Index int
	Value float64
}

// Runner couples a detector to a live sample feed: every pushed sample
// that completes a window produces one score. It is the software shape of
// the testbed script in §4.3 ("continuously reads data from the sensors,
// prepares the data … and calls the inference function").
type Runner struct {
	det    detect.Detector
	buf    *WindowBuffer
	index  int
	nScore int
}

// NewRunner returns a runner for a fitted detector over streams of the
// given channel width.
func NewRunner(det detect.Detector, channels int) *Runner {
	return &Runner{det: det, buf: NewWindowBuffer(det.WindowSize(), channels)}
}

// Push feeds one sample and returns the resulting score, if a full window
// is available.
func (r *Runner) Push(sample []float64) (Score, bool) {
	r.buf.Push(sample)
	r.index++
	if !r.buf.Full() {
		return Score{}, false
	}
	r.nScore++
	return Score{Index: r.index - 1, Value: r.det.Score(r.buf.Window())}, true
}

// PushBatch feeds a slice of samples and returns every score produced, in
// arrival order. When the detector's Capabilities report a batched path
// the windows completed by the batch are materialised into one (N, W, C)
// tensor and scored in a single batched call — the fast path the edge
// runtime uses to drain a sample backlog at full hardware throughput.
// Scores are identical to pushing each sample through Push.
func (r *Runner) PushBatch(samples [][]float64) []Score {
	bs := detect.AsScorer(r.det)
	if !bs.Capabilities().Batched || len(samples) < 2 {
		var out []Score
		for _, s := range samples {
			if sc, done := r.Push(s); done {
				out = append(out, sc)
			}
		}
		return out
	}
	w, c := r.buf.window, r.buf.channels
	// The first window completes at the push that fills the buffer; every
	// push after that completes another.
	n := len(samples)
	if miss := w - r.buf.Len(); miss > 0 {
		n = len(samples) - miss + 1
	}
	if n <= 0 {
		for _, s := range samples {
			r.buf.Push(s)
			r.index++
		}
		return nil
	}
	// Score in chunks of at most detect.BatchChunk windows so draining an
	// arbitrarily large backlog keeps a bounded working set, mirroring
	// detect.ScoreSeriesBatched.
	maxChunk := n
	if maxChunk > detect.BatchChunk {
		maxChunk = detect.BatchChunk
	}
	wins := tensor.New(maxChunk, w, c)
	wd := wins.Data()
	out := make([]Score, 0, n)
	pending, flushed := 0, 0
	flush := func() {
		for i, v := range bs.ScoreBatch(wins.SliceRows(0, pending)) {
			out[flushed+i].Value = v
		}
		flushed += pending
		pending = 0
	}
	for _, s := range samples {
		r.buf.Push(s)
		r.index++
		if !r.buf.Full() {
			continue
		}
		r.buf.CopyWindowInto(wd[pending*w*c : (pending+1)*w*c])
		out = append(out, Score{Index: r.index - 1})
		r.nScore++
		if pending++; pending == maxChunk {
			flush()
		}
	}
	if pending > 0 {
		flush()
	}
	return out
}

// Scored returns how many scores the runner has produced.
func (r *Runner) Scored() int { return r.nScore }

// Bus is a minimal in-process publish/subscribe fabric standing in for the
// testbed's MQTT broker: sensors publish samples, detector runners
// subscribe. Subscribers receive every sample published after they join;
// a slow subscriber drops the oldest queued samples rather than blocking
// the producer, matching real broker behaviour under backpressure.
//
// The element type is generic so callers can thread per-sample metadata
// through the queue without a parallel channel: the fleet server's
// sessions publish timestamped samples, so admission→enqueue wait is
// measurable end to end. Plain sample feeds use Bus[[]float64].
type Bus[T any] struct {
	mu     sync.Mutex
	subs   []chan T
	closed bool
	// Dropped counts samples discarded because a subscriber queue was full.
	dropped int
	// sink, when set, receives every drop as it happens — the live
	// per-group obs counter the server exposes, next to the session-local
	// dropped total above.
	sink *obs.Counter
}

// NewBus returns an empty bus.
func NewBus[T any]() *Bus[T] { return &Bus[T]{} }

// SetDropCounter attaches a live drop sink: every shed element also
// increments c. Call before publishing begins.
func (b *Bus[T]) SetDropCounter(c *obs.Counter) {
	b.mu.Lock()
	b.sink = c
	b.mu.Unlock()
}

// drop accounts one shed element. Callers hold b.mu.
func (b *Bus[T]) drop() {
	b.dropped++
	if b.sink != nil {
		b.sink.Inc()
	}
}

// Subscribe registers a new consumer with the given queue depth.
func (b *Bus[T]) Subscribe(depth int) <-chan T {
	if depth < 1 {
		depth = 1
	}
	ch := make(chan T, depth)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return ch
	}
	b.subs = append(b.subs, ch)
	return ch
}

// Publish delivers sample to every subscriber, dropping the oldest queued
// sample of any full subscriber. The drop-and-retry sequence is bounded:
// if a racing consumer keeps the queue full after one eviction, the new
// sample itself is dropped (and counted) instead of spinning under the
// bus lock.
func (b *Bus[T]) Publish(sample T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for _, ch := range b.subs {
		select {
		case ch <- sample:
			continue
		default:
		}
		// Queue full: evict the oldest queued sample, then retry once.
		select {
		case <-ch:
			b.drop()
		default:
			// A consumer drained the queue between the two selects; the
			// retry below will succeed without evicting anything.
		}
		select {
		case ch <- sample:
		default:
			// Still full — a consumer-side race refilled the queue. Drop
			// the new sample rather than looping.
			b.drop()
		}
	}
}

// PublishDropNewest delivers sample to every subscriber whose queue has
// room and drops (and counts) the sample itself at any full one — the
// negotiable drop-newest admission policy: the queued backlog survives
// and the newest data is shed instead.
func (b *Bus[T]) PublishDropNewest(sample T) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for _, ch := range b.subs {
		select {
		case ch <- sample:
		default:
			b.drop()
		}
	}
}

// Dropped returns the number of samples discarded under backpressure.
func (b *Bus[T]) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Close terminates all subscriber channels.
func (b *Bus[T]) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, ch := range b.subs {
		close(ch)
	}
	b.subs = nil
}
