package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"varade/internal/tensor"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := map[FrameType][]byte{
		FrameHello:   []byte(`{"model":"varade","channels":3}`),
		FrameSamples: {1, 2, 3},
		FrameBye:     nil,
	}
	for typ, p := range payloads {
		buf.Reset()
		if err := WriteFrame(&buf, typ, p); err != nil {
			t.Fatal(err)
		}
		gt, gp, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gt != typ || !bytes.Equal(gp, p) {
			t.Fatalf("frame %d round-tripped to %d/%v", typ, gt, gp)
		}
	}
}

func TestSniffProto(t *testing.T) {
	cases := map[string]int{
		FrameMagic:   ProtoV1,
		FrameMagicV2: ProtoV2,
		"1.5,\n":     0, // CSV line
		"VFS3":       0, // unknown future dialect: fall through to CSV refusal
	}
	for preamble, want := range cases {
		if got := SniffProto([]byte(preamble)); got != want {
			t.Fatalf("SniffProto(%q) = %d want %d", preamble, got, want)
		}
	}
}

func TestDecodeHelloVersions(t *testing.T) {
	// A v1 Hello decodes under both protocol versions.
	v1 := []byte(`{"model":"varade","channels":3}`)
	for _, proto := range []int{ProtoV1, ProtoV2} {
		h, err := DecodeHello(proto, v1)
		if err != nil {
			t.Fatalf("proto %d: %v", proto, err)
		}
		if h.Model != "varade" || h.Channels != 3 || h.Caps != nil {
			t.Fatalf("proto %d: decoded %+v", proto, h)
		}
		if h.GetCaps() != (SessionCaps{}) {
			t.Fatalf("proto %d: capless hello yields caps %+v", proto, h.GetCaps())
		}
	}

	// A v2 Hello with capabilities decodes on v2 and is refused on v1.
	v2 := []byte(`{"model":"varade@latest","channels":3,"caps":{"precision":"int8","max_batch":64,"drop_policy":"newest","slo_p99_ms":12.5}}`)
	h, err := DecodeHello(ProtoV2, v2)
	if err != nil {
		t.Fatal(err)
	}
	caps := h.GetCaps()
	if caps.Precision != "int8" || caps.MaxBatch != 64 || caps.DropPolicy != DropNewest || caps.SLOP99Ms != 12.5 {
		t.Fatalf("caps %+v", caps)
	}
	if _, err := DecodeHello(ProtoV1, v2); err == nil {
		t.Fatal("v1 handshake accepted a v2 capability set")
	}

	// Malformed payloads and out-of-range fields are errors.
	bad := [][]byte{
		[]byte(`{`),
		[]byte(`{"channels":-1}`),
		[]byte(`{"channels":3,"version":-2}`),
		[]byte(`{"channels":2097152}`),
		[]byte(`{"channels":3,"caps":{"precision":"bf16"}}`),
		[]byte(`{"channels":3,"caps":{"drop_policy":"sometimes"}}`),
		[]byte(`{"channels":3,"caps":{"max_batch":-4}}`),
		[]byte(`{"channels":3,"caps":{"slo_p99_ms":-1}}`),
		[]byte(`{"channels":3,"caps":{"slo_p99_ms":2097152}}`),
	}
	for _, payload := range bad {
		if _, err := DecodeHello(ProtoV2, payload); err == nil {
			t.Fatalf("accepted bad hello %s", payload)
		}
	}
}

func TestWelcomeCapabilityEcho(t *testing.T) {
	var buf bytes.Buffer
	in := Welcome{
		Model: "varade", Version: 3, Window: 8, Channels: 17,
		Proto: ProtoV2, Precision: "float32", MaxBatch: 256, DropPolicy: DropOldest,
		SLOP99Ms: 25,
	}
	if err := WriteJSONFrame(&buf, FrameWelcome, in); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != FrameWelcome {
		t.Fatalf("frame %d err %v", typ, err)
	}
	var out Welcome
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("welcome round-tripped %+v → %+v", in, out)
	}

	// A v1 Welcome must not grow v2 fields on the wire: the JSON stays
	// byte-compatible with pre-negotiation clients.
	buf.Reset()
	if err := WriteJSONFrame(&buf, FrameWelcome, Welcome{Model: "m", Version: 1, Window: 8, Channels: 2}); err != nil {
		t.Fatal(err)
	}
	_, payload, err = ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"model":"m","version":1,"window":8,"channels":2}`; string(payload) != want {
		t.Fatalf("v1 welcome payload %s, want %s", payload, want)
	}
}

func TestFrameRejectsOversizedPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(FrameSamples)})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("expected oversized-frame error")
	}
}

func TestSamplesPayloadRoundTrip(t *testing.T) {
	in := [][]float64{{1.5, -2.25}, {0, 1e-9}, {3, 4}}
	p, err := EncodeSamplesPayload(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSamplesPayload(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d samples want %d", len(out), len(in))
	}
	for i := range in {
		for j := range in[i] {
			if in[i][j] != out[i][j] {
				t.Fatalf("sample %d: %v → %v", i, in[i], out[i])
			}
		}
	}
	if _, err := EncodeSamplesPayload([][]float64{{1}}, 2); err == nil {
		t.Fatal("expected width error")
	}
	if _, err := DecodeSamplesPayload(p[:len(p)-3], 2); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestScoresPayloadRoundTrip(t *testing.T) {
	in := []Score{{Index: 7, Value: 3.25}, {Index: 1 << 40, Value: -1e-300}}
	out, err := DecodeScoresPayload(EncodeScoresPayload(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("scores %v → %v", in, out)
	}
}

// TestDialAndScoreContextCancel pins the teardown contract: cancelling
// the context ends a live scoring session promptly with ctx.Err(), and
// the server's stop() returns with no handler goroutines left.
func TestDialAndScoreContextCancel(t *testing.T) {
	// A long series the consumer will never finish.
	series := tensor.New(200000, 1)
	addr, stop, err := ServeSeries(context.Background(), "127.0.0.1:0", series)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	ctx, cancel := context.WithCancel(context.Background())
	r := NewRunner(&meanDetector{w: 4}, 1)
	done := make(chan error, 1)
	go func() {
		n := 0
		done <- DialAndScore(ctx, addr, 1, r, func(Score) {
			n++
			if n == 10 {
				cancel()
			}
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not end the session")
	}
}

// TestServeSeriesContextCancelStopsHandlers cancels the serving context
// while a slow client holds a connection; stop must still return (the
// watcher closes the connection) rather than waiting for the stream to
// finish.
func TestServeSeriesContextCancelStopsHandlers(t *testing.T) {
	series := tensor.New(200000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	addr, stop, err := ServeSeries(ctx, "127.0.0.1:0", series)
	if err != nil {
		t.Fatal(err)
	}
	// A client that connects and never reads: the handler will stall in
	// its write once buffers fill.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(20 * time.Millisecond) // let the handler start writing
	cancel()
	finished := make(chan struct{})
	go func() {
		stop()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("stop() hung after context cancellation")
	}
}
