package stream

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"varade/internal/tensor"
)

// The TCP transport streams samples as CSV lines, one sample per line —
// the role MQTT-over-Ethernet plays in the physical testbed (Fig. 2). The
// encoding is deliberately plain so any tool (netcat, a PLC gateway, the
// varade-detect command) can produce or consume it.

// EncodeSample renders one sample as a CSV line without the trailing
// newline.
func EncodeSample(sample []float64) string {
	var b strings.Builder
	for i, v := range sample {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return b.String()
}

// DecodeSample parses a CSV line into a sample, validating the width when
// want > 0.
func DecodeSample(line string, want int) ([]float64, error) {
	fields := strings.Split(strings.TrimSpace(line), ",")
	if want > 0 && len(fields) != want {
		return nil, fmt.Errorf("stream: sample has %d fields, want %d", len(fields), want)
	}
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("stream: field %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// ServeSeries listens on addr and streams every row of series to each
// connecting client, then closes the connection. It returns the bound
// address (useful with ":0") and a stop function. Cancelling ctx — or
// calling stop, which also waits for every connection handler to exit —
// tears the server down deterministically: the listener closes, active
// connections are closed, and no goroutines are left behind.
func ServeSeries(ctx context.Context, addr string, series *tensor.Tensor) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			mu.Lock()
			if sctx.Err() != nil {
				mu.Unlock()
				conn.Close()
				return
			}
			conns[conn] = struct{}{}
			mu.Unlock()
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer func() {
					mu.Lock()
					delete(conns, c)
					mu.Unlock()
					c.Close()
				}()
				w := bufio.NewWriter(c)
				for i := 0; i < series.Dim(0); i++ {
					select {
					case <-sctx.Done():
						return
					default:
					}
					if _, err := w.WriteString(EncodeSample(series.Row(i).Data()) + "\n"); err != nil {
						return
					}
				}
				w.Flush()
			}(conn)
		}
	}()
	// The watcher unblocks Accept and any stalled writes once the context
	// ends, whether via stop or the parent ctx.
	go func() {
		<-sctx.Done()
		ln.Close()
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
	}()
	stop := func() {
		cancel()
		wg.Wait()
	}
	return ln.Addr().String(), stop, nil
}

// ReadSamples consumes CSV samples from r and invokes fn for each until
// EOF or fn returns false.
func ReadSamples(r io.Reader, channels int, fn func(sample []float64) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		sample, err := DecodeSample(line, channels)
		if err != nil {
			return err
		}
		if !fn(sample) {
			return nil
		}
	}
	return sc.Err()
}

// ReadSampleBatches consumes CSV samples from r in slices of up to max
// samples and invokes fn for each batch until EOF or fn returns false.
// The final batch may be shorter than max. The batch slice is reused
// between invocations, so fn must not retain it (or its entries) past
// its return.
func ReadSampleBatches(r io.Reader, channels, max int, fn func(batch [][]float64) bool) error {
	if max < 1 {
		max = 1
	}
	batch := make([][]float64, 0, max)
	err := ReadSamples(r, channels, func(sample []float64) bool {
		batch = append(batch, sample)
		if len(batch) < max {
			return true
		}
		ok := fn(batch)
		batch = batch[:0]
		return ok
	})
	if err != nil {
		return err
	}
	if len(batch) > 0 {
		fn(batch)
	}
	return nil
}

// DialAndScore connects to a sample server, runs every received sample
// through the runner and invokes onScore for each produced score.
// Cancelling ctx closes the connection and returns ctx.Err(), so a
// session can be torn down deterministically mid-stream.
func DialAndScore(ctx context.Context, addr string, channels int, r *Runner, onScore func(Score)) error {
	return DialAndScoreBatched(ctx, addr, channels, r, 1, onScore)
}

// DialAndScoreBatched is DialAndScore through the batched engine: samples
// are drained in micro-batches of up to batch and scored with one
// Runner.PushBatch call each, which detectors with a batched path turn
// into a single forward pass. Scores are identical to the scalar path;
// batch > 1 trades up to batch samples of emission latency for
// throughput, the right trade when replaying a recording or draining a
// backlog. batch <= 1 preserves per-sample emission. Cancelling ctx
// closes the connection and returns ctx.Err().
func DialAndScoreBatched(ctx context.Context, addr string, channels int, r *Runner, batch int, onScore func(Score)) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Unblock the read loop when the context ends; the deferred close of
	// done releases the watcher on normal return.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	if batch <= 1 {
		err = ReadSamples(conn, channels, func(sample []float64) bool {
			if s, ok := r.Push(sample); ok {
				onScore(s)
			}
			return true
		})
	} else {
		err = ReadSampleBatches(conn, channels, batch, func(samples [][]float64) bool {
			for _, s := range r.PushBatch(samples) {
				onScore(s)
			}
			return true
		})
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}
