package robot

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: quaternion products of unit quaternions stay unit.
func TestQuatProductStaysUnit(t *testing.T) {
	f := func(a1, a2, angle1, angle2 float64) bool {
		if math.IsNaN(a1) || math.IsNaN(a2) || math.IsNaN(angle1) || math.IsNaN(angle2) {
			return true
		}
		q1 := quatAxisAngle(0, 0, 1, math.Mod(angle1, 7))
		q2 := quatAxisAngle(0, 1, 0, math.Mod(angle2, 7))
		return math.Abs(q1.mul(q2).norm()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: rotateInv preserves vector norms for any joint-chain
// orientation.
func TestRotationPreservesNorm(t *testing.T) {
	f := func(angles [NumJoints]float64, vx, vy, vz float64) bool {
		for _, a := range angles {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return true
			}
		}
		if math.IsNaN(vx+vy+vz) || math.IsInf(vx+vy+vz, 0) || math.Abs(vx)+math.Abs(vy)+math.Abs(vz) > 1e6 {
			return true
		}
		orient := quatIdentity
		for j := 0; j < NumJoints; j++ {
			ax, ay, az := jointAxis(j)
			orient = orient.mul(quatAxisAngle(ax, ay, az, math.Mod(angles[j], 7)))
		}
		rx, ry, rz := orient.rotateInv(vx, vy, vz)
		in := math.Sqrt(vx*vx + vy*vy + vz*vz)
		out := math.Sqrt(rx*rx + ry*ry + rz*rz)
		return math.Abs(in-out) <= 1e-9*(1+in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the quintic blend is monotone in position over [0, 1].
func TestQuinticBlendMonotone(t *testing.T) {
	f := func(steps uint8) bool {
		n := int(steps%50) + 2
		prev := -1.0
		for i := 0; i <= n; i++ {
			s, _, _ := quinticBlend(float64(i)/float64(n), 1)
			if s < prev-1e-12 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: normalisation is idempotent on its own training data range:
// applying the fitted scaler twice maps [-1,1] into [-1,1] only if the
// data were already normalised — instead we assert the inverse identity:
// every normalised value round-trips to its raw value.
func TestNormalizerRoundTrip(t *testing.T) {
	sim, err := NewSimulator(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw := sim.Run(300)
	norm := FitNormalizer(raw)
	scaled := norm.Apply(raw)
	mins, maxs := norm.Mins.Data(), norm.Maxs.Data()
	for i := 0; i < 300; i += 13 {
		for j := 0; j < NumChannels; j++ {
			span := maxs[j] - mins[j]
			if span == 0 {
				continue
			}
			back := (scaled.At2(i, j)+1)/2*span + mins[j]
			if math.Abs(back-raw.At2(i, j)) > 1e-9*(1+math.Abs(raw.At2(i, j))) {
				t.Fatalf("round trip failed at (%d,%d): %g vs %g", i, j, back, raw.At2(i, j))
			}
		}
	}
}

// Property: calibration drift is constant within a run — the difference
// between a drifted and an undrifted run with identical noise is a fixed
// per-channel offset on the bias-affected channels.
func TestCalibDriftIsConstantOffset(t *testing.T) {
	base := DefaultSimConfig()
	base.NoiseSeed = 777
	s0, err := NewSimulator(base)
	if err != nil {
		t.Fatal(err)
	}
	drifted := base
	drifted.CalibDrift = 1
	s1, err := NewSimulator(drifted)
	if err != nil {
		t.Fatal(err)
	}
	// CalibDrift consumes one extra RNG split, so the noise streams
	// differ; instead verify the drifted run against itself: the bias
	// between two samples' accelerometer channels cannot be separated
	// without the clean run, so assert determinism and boundedness.
	a := s1.Run(50)
	s2cfg := drifted
	s2, _ := NewSimulator(s2cfg)
	b := s2.Run(50)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("drifted run must be deterministic given the seed")
		}
	}
	_ = s0
}
