package robot

import (
	"fmt"

	"varade/internal/tensor"
)

// SimConfig parameterises the testbed simulator.
type SimConfig struct {
	// SampleRate is the stream rate in Hz. The physical IMUs emit at
	// 200 Hz; the detectors in the paper consume 5–45 Hz, so experiments
	// default to an intermediate decimated rate.
	SampleRate float64
	// Seed determines the action library geometry, schedule order and all
	// sensor noise. Equal seeds yield identical streams.
	Seed uint64
	// NoiseSeed, when non-zero, decouples the noise/schedule realisation
	// from the action geometry: train and test runs of the same plant use
	// the same Seed (same 30 services) but different NoiseSeeds.
	NoiseSeed uint64
	// Ambient is the hall temperature in °C.
	Ambient float64
	// IdleGap is the pause between consecutive actions in seconds.
	IdleGap float64
	// CalibDrift scales run-to-run sensor recalibration offsets: each run
	// draws small constant per-channel biases (IMU remount bias, ambient
	// shift, mains level) from its noise seed. A deployed detector is
	// trained on one run and tested on another, so drift is part of the
	// realistic gap between them. 0 disables; 1 is a typical day-to-day
	// recalibration.
	CalibDrift float64
}

// DefaultSimConfig returns the configuration used by the experiments:
// 10 Hz sampling, 22 °C ambient, 0.5 s between actions.
func DefaultSimConfig() SimConfig {
	return SimConfig{SampleRate: 10, Seed: 42, Ambient: 22, IdleGap: 0.5}
}

// Simulator produces the 86-channel stream of the instrumented KUKA arm.
type Simulator struct {
	cfg   SimConfig
	sched *schedule
	imus  [NumJoints]*imuState
	meter *powerMeter
	noise *tensor.RNG

	action  *Action
	actTime float64 // elapsed within current action (negative while idling)

	// Per-run calibration offsets (see SimConfig.CalibDrift).
	accBias   [NumJoints][3]float64
	gyroBias  [NumJoints][3]float64
	tempBias  [NumJoints]float64
	voltBias  float64
	powerBias float64
}

// NewSimulator builds a simulator. Action geometry is derived from
// cfg.Seed so the 30 services are stable across runs with the same seed.
func NewSimulator(cfg SimConfig) (*Simulator, error) {
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("robot: sample rate %g must be positive", cfg.SampleRate)
	}
	if cfg.IdleGap < 0 {
		return nil, fmt.Errorf("robot: idle gap %g must be non-negative", cfg.IdleGap)
	}
	noiseSeed := cfg.NoiseSeed
	if noiseSeed == 0 {
		noiseSeed = cfg.Seed
	}
	root := tensor.NewRNG(noiseSeed)
	lib := actionLibrary(cfg.Seed) // geometry fixed by Seed alone
	s := &Simulator{
		cfg:   cfg,
		sched: newSchedule(lib, root.Split()),
		meter: newPowerMeter(),
		noise: root.Split(),
	}
	for j := range s.imus {
		s.imus[j] = newIMUState(cfg.Ambient)
	}
	if cfg.CalibDrift != 0 {
		d := cfg.CalibDrift
		drng := root.Split()
		for j := 0; j < NumJoints; j++ {
			for a := 0; a < 3; a++ {
				s.accBias[j][a] = drng.NormFloat64() * 0.22 * d
				s.gyroBias[j][a] = drng.NormFloat64() * 0.9 * d
			}
			s.tempBias[j] = drng.NormFloat64() * 1.2 * d
		}
		s.voltBias = drng.NormFloat64() * 1.5 * d
		s.powerBias = drng.NormFloat64() * 6 * d
	}
	s.action = s.sched.next()
	s.actTime = -cfg.IdleGap
	return s, nil
}

// Config returns the simulator configuration.
func (s *Simulator) Config() SimConfig { return s.cfg }

// CurrentAction returns the ID of the action in progress.
func (s *Simulator) CurrentAction() int { return s.action.ID }

// Step advances one sample interval and returns the 86-channel sample.
func (s *Simulator) Step() []float64 {
	dt := 1 / s.cfg.SampleRate
	s.actTime += dt
	if s.actTime >= s.action.Duration() {
		s.action = s.sched.next()
		s.actTime = -s.cfg.IdleGap
	}

	// Kinematics: during the idle gap the arm holds the first waypoint.
	t := s.actTime
	if t < 0 {
		t = 0
	}
	q, dq, ddq := s.action.traj.eval(t)

	sample := make([]float64, NumChannels)
	sample[0] = float64(s.action.ID)

	// Cumulative orientation down the chain, and total mechanical power.
	orient := quatIdentity
	mech := 0.0
	for j := 0; j < NumJoints; j++ {
		ax, ay, az := jointAxis(j)
		orient = orient.mul(quatAxisAngle(ax, ay, az, q[j]))
		r := measureIMU(j, s.imus[j], orient, dq[j], ddq[j], s.cfg.Ambient, dt, s.noise)
		base := 1 + j*PerJointChannels
		sample[base+CompAccX] = r.acc[0] + s.accBias[j][0]
		sample[base+CompAccY] = r.acc[1] + s.accBias[j][1]
		sample[base+CompAccZ] = r.acc[2] + s.accBias[j][2]
		sample[base+CompGyroX] = r.gyro[0] + s.gyroBias[j][0]
		sample[base+CompGyroY] = r.gyro[1] + s.gyroBias[j][1]
		sample[base+CompGyroZ] = r.gyro[2] + s.gyroBias[j][2]
		sample[base+CompQ1] = r.q.w
		sample[base+CompQ2] = r.q.x
		sample[base+CompQ3] = r.q.y
		sample[base+CompQ4] = r.q.z
		sample[base+CompTemp] = r.temp + s.tempBias[j]

		tau := jointTorque(j, q[j], dq[j], ddq[j])
		if w := tau * dq[j]; w > 0 {
			mech += w
		} else {
			mech -= 0.3 * w // regenerative braking partially recovered
		}
	}

	pr := s.meter.measure(mech, dt, s.noise)
	pr.power += s.powerBias
	pr.voltage += s.voltBias
	pr.current = pr.power / (pr.voltage * pr.pf)
	pb := 1 + NumJoints*PerJointChannels
	sample[pb+PwrCurrent] = pr.current
	sample[pb+PwrFrequency] = pr.frequency
	sample[pb+PwrPhaseAngle] = pr.phase
	sample[pb+PwrPower] = pr.power
	sample[pb+PwrPowerFactor] = pr.pf
	sample[pb+PwrReactive] = pr.reactive
	sample[pb+PwrVoltage] = pr.voltage
	sample[pb+PwrEnergy] = pr.energy
	return sample
}

// Run produces n consecutive samples as a (n, 86) time-major tensor.
func (s *Simulator) Run(n int) *tensor.Tensor {
	if n <= 0 {
		panic(fmt.Sprintf("robot: Run(%d)", n))
	}
	out := tensor.New(n, NumChannels)
	od := out.Data()
	for i := 0; i < n; i++ {
		copy(od[i*NumChannels:(i+1)*NumChannels], s.Step())
	}
	return out
}

// RunSeconds produces ⌈seconds × rate⌉ samples.
func (s *Simulator) RunSeconds(seconds float64) *tensor.Tensor {
	n := int(seconds * s.cfg.SampleRate)
	if n < 1 {
		n = 1
	}
	return s.Run(n)
}
