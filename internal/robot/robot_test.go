package robot

import (
	"math"
	"strings"
	"testing"

	"varade/internal/tensor"
)

func TestChannelSchemaMatchesTable1(t *testing.T) {
	chs := Channels()
	if len(chs) != 86 {
		t.Fatalf("%d channels, want 86 (Table 1)", len(chs))
	}
	if chs[0].Name != "action_id" {
		t.Fatalf("channel 0 = %q", chs[0].Name)
	}
	// Spot-check joint block layout.
	if chs[JointChannel(0, CompAccX)].Name != "sensor_id_0_AccX" {
		t.Fatalf("joint 0 AccX = %q", chs[JointChannel(0, CompAccX)].Name)
	}
	if chs[JointChannel(6, CompTemp)].Name != "sensor_id_6_temp" {
		t.Fatalf("joint 6 temp = %q", chs[JointChannel(6, CompTemp)].Name)
	}
	if chs[PowerChannel(PwrPower)].Name != "power" {
		t.Fatalf("power channel = %q", chs[PowerChannel(PwrPower)].Name)
	}
	// Every IMU block carries the 11 components of Table 1.
	for j := 0; j < NumJoints; j++ {
		for _, comp := range []string{"AccX", "AccY", "AccZ", "GyroX", "GyroY", "GyroZ", "q1", "q2", "q3", "q4", "temp"} {
			found := false
			for _, c := range chs {
				if strings.HasSuffix(c.Name, comp) && strings.Contains(c.Name, "_"+string(rune('0'+j))+"_") {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("joint %d missing component %s", j, comp)
			}
		}
	}
}

func TestChannelIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	JointChannel(7, 0)
}

func TestQuaternionAlgebra(t *testing.T) {
	// 90° about Z then 90° about Z = 180° about Z.
	q1 := quatAxisAngle(0, 0, 1, math.Pi/2)
	q := q1.mul(q1)
	want := quatAxisAngle(0, 0, 1, math.Pi)
	if math.Abs(q.w-want.w) > 1e-12 || math.Abs(q.z-want.z) > 1e-12 {
		t.Fatalf("q=%+v want %+v", q, want)
	}
	// Rotation preserves vector length.
	x, y, z := q1.rotateInv(1, 2, 3)
	if math.Abs(math.Sqrt(x*x+y*y+z*z)-math.Sqrt(14)) > 1e-12 {
		t.Fatal("rotation must preserve norm")
	}
	// Gravity rotated by identity is unchanged.
	gx, gy, gz := quatIdentity.rotateInv(0, 0, -9.81)
	if gx != 0 || gy != 0 || gz != -9.81 {
		t.Fatal("identity rotation changed the vector")
	}
}

func TestQuinticBlendBoundaries(t *testing.T) {
	s, ds, dds := quinticBlend(0, 2)
	if s != 0 || ds != 0 || dds != 0 {
		t.Fatal("blend must start at rest")
	}
	s, ds, dds = quinticBlend(1, 2)
	if s != 1 || ds != 0 || dds != 0 {
		t.Fatal("blend must end at rest")
	}
	// Midpoint: s=0.5 by symmetry, velocity positive.
	s, ds, _ = quinticBlend(0.5, 2)
	if math.Abs(s-0.5) > 1e-12 || ds <= 0 {
		t.Fatalf("midpoint s=%g ds=%g", s, ds)
	}
}

func TestTrajectoryContinuity(t *testing.T) {
	ways := [][NumJoints]float64{{}, {1, -1, 0.5, 0, 0.2, -0.3, 0.1}, {0.5, 0, 0, 0, 0, 0, 0}}
	tr := newTrajectory(ways, []float64{2, 3})
	if tr.Duration() != 5 {
		t.Fatalf("duration %g", tr.Duration())
	}
	// Angles are continuous across the segment boundary.
	qa, _, _ := tr.eval(2 - 1e-9)
	qb, _, _ := tr.eval(2 + 1e-9)
	for j := 0; j < NumJoints; j++ {
		if math.Abs(qa[j]-qb[j]) > 1e-6 {
			t.Fatalf("joint %d jumps at boundary: %g vs %g", j, qa[j], qb[j])
		}
	}
	// Evaluation clamps beyond the end.
	qEnd, dqEnd, _ := tr.eval(99)
	if qEnd[0] != 0.5 || dqEnd[0] != 0 {
		t.Fatal("end state wrong")
	}
}

func TestActionLibraryDeterminism(t *testing.T) {
	a := actionLibrary(5)
	b := actionLibrary(5)
	c := actionLibrary(6)
	if len(a) != NumActions {
		t.Fatalf("%d actions want %d", len(a), NumActions)
	}
	for i := range a {
		if a[i].Duration() != b[i].Duration() {
			t.Fatal("same seed must give identical actions")
		}
	}
	same := 0
	for i := range a {
		if a[i].Duration() == c[i].Duration() {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds must give different libraries")
	}
}

func TestSimulatorStreamShape(t *testing.T) {
	sim, err := NewSimulator(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	series := sim.Run(500)
	if series.Dim(0) != 500 || series.Dim(1) != NumChannels {
		t.Fatalf("series shape %v", series.Shape())
	}
	// No NaNs or infinities anywhere.
	for i, v := range series.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("invalid value at flat index %d", i)
		}
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	cfg := DefaultSimConfig()
	s1, _ := NewSimulator(cfg)
	s2, _ := NewSimulator(cfg)
	a, b := s1.Run(200), s2.Run(200)
	if !tensor.Equal(a, b, 0) {
		t.Fatal("same config must reproduce the identical stream")
	}
}

func TestNoiseSeedChangesNoiseNotActions(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.NoiseSeed = 111
	s1, _ := NewSimulator(cfg)
	cfg.NoiseSeed = 222
	s2, _ := NewSimulator(cfg)
	a, b := s1.Run(300), s2.Run(300)
	if tensor.Equal(a, b, 0) {
		t.Fatal("different noise seeds must differ")
	}
	// Identical Seed ⇒ identical action library geometry: both runs use
	// actions with equal durations set.
	l1, l2 := actionLibrary(cfg.Seed), actionLibrary(cfg.Seed)
	for i := range l1 {
		if l1[i].Duration() != l2[i].Duration() {
			t.Fatal("geometry changed with noise seed")
		}
	}
}

func TestQuaternionChannelsStayUnit(t *testing.T) {
	sim, _ := NewSimulator(DefaultSimConfig())
	series := sim.Run(300)
	for i := 0; i < 300; i += 17 {
		row := series.Row(i).Data()
		for j := 0; j < NumJoints; j++ {
			base := 1 + j*PerJointChannels
			n := 0.0
			for c := CompQ1; c <= CompQ4; c++ {
				n += row[base+c] * row[base+c]
			}
			if math.Abs(math.Sqrt(n)-1) > 1e-9 {
				t.Fatalf("joint %d quaternion norm %g at sample %d", j, math.Sqrt(n), i)
			}
		}
	}
}

func TestActionIDChannelInRange(t *testing.T) {
	sim, _ := NewSimulator(DefaultSimConfig())
	series := sim.Run(2000)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		id := int(series.At2(i, 0))
		if id < 0 || id >= NumActions {
			t.Fatalf("action id %d out of range", id)
		}
		seen[id] = true
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct actions in 2000 samples", len(seen))
	}
}

func TestPowerChannelsPhysicallyConsistent(t *testing.T) {
	sim, _ := NewSimulator(DefaultSimConfig())
	series := sim.Run(1000)
	pb := 1 + NumJoints*PerJointChannels
	prevEnergy := -1.0
	for i := 0; i < 1000; i++ {
		row := series.Row(i).Data()
		p, v, c, pf := row[pb+PwrPower], row[pb+PwrVoltage], row[pb+PwrCurrent], row[pb+PwrPowerFactor]
		if p <= 0 || v < 200 || v > 260 || pf <= 0 || pf > 1 {
			t.Fatalf("implausible electrics at %d: P=%g V=%g pf=%g", i, p, v, pf)
		}
		// P = V·I·pf must hold by construction.
		if math.Abs(p-v*c*pf)/p > 1e-9 {
			t.Fatalf("P≠VIcosφ at %d", i)
		}
		e := row[pb+PwrEnergy]
		if e < prevEnergy {
			t.Fatal("energy register must be monotone")
		}
		prevEnergy = e
	}
}

func TestInjectCollisionsLabelsAndEvents(t *testing.T) {
	sim, _ := NewSimulator(DefaultSimConfig())
	series := sim.Run(3000)
	cfg := DefaultCollisionConfig(25)
	events, labels, err := InjectCollisions(series, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 25 {
		t.Fatalf("%d events want 25", len(events))
	}
	if len(labels) != 3000 {
		t.Fatalf("%d labels", len(labels))
	}
	// Labels exactly cover event ranges, and events do not overlap.
	covered := 0
	for i, e := range events {
		if e.End <= e.Start {
			t.Fatalf("event %d empty", i)
		}
		if i > 0 && e.Start < events[i-1].End {
			t.Fatalf("events %d and %d overlap", i-1, i)
		}
		covered += e.End - e.Start
		for k := e.Start; k < e.End; k++ {
			if !labels[k] {
				t.Fatalf("label missing inside event %d", i)
			}
		}
	}
	total := 0
	for _, l := range labels {
		if l {
			total++
		}
	}
	if total != covered {
		t.Fatalf("labelled %d points but events cover %d", total, covered)
	}
}

func TestInjectCollisionsPerturbsSignal(t *testing.T) {
	cfg := DefaultSimConfig()
	s1, _ := NewSimulator(cfg)
	clean := s1.Run(2000)
	dirty := clean.Clone()
	events, _, err := InjectCollisions(dirty, 10, DefaultCollisionConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	// Inside events the series differs; far outside it is identical.
	e := events[0]
	diff := 0.0
	for i := e.Start; i < e.End; i++ {
		for j := 0; j < NumChannels; j++ {
			diff += math.Abs(dirty.At2(i, j) - clean.At2(i, j))
		}
	}
	if diff == 0 {
		t.Fatal("collision left the stream untouched")
	}
	inEvent := make([]bool, 2000)
	for _, ev := range events {
		for i := ev.Start; i < ev.End; i++ {
			inEvent[i] = true
		}
	}
	for i := 0; i < 2000; i++ {
		if inEvent[i] {
			continue
		}
		for j := 0; j < NumChannels; j++ {
			if dirty.At2(i, j) != clean.At2(i, j) {
				t.Fatalf("sample %d channel %d modified outside events", i, j)
			}
		}
	}
}

func TestInjectCollisionsRejectsOverfill(t *testing.T) {
	sim, _ := NewSimulator(DefaultSimConfig())
	series := sim.Run(50)
	if _, _, err := InjectCollisions(series, 10, DefaultCollisionConfig(100)); err == nil {
		t.Fatal("expected error for too many collisions")
	}
}

func TestNormalizerRange(t *testing.T) {
	sim, _ := NewSimulator(DefaultSimConfig())
	series := sim.Run(1000)
	norm := FitNormalizer(series)
	scaled := norm.Apply(series)
	if scaled.Max() > 1+1e-12 || scaled.Min() < -1-1e-12 {
		t.Fatalf("normalised range [%g, %g]", scaled.Min(), scaled.Max())
	}
	// Each non-constant channel touches both bounds.
	mins, maxs := tensor.MinMaxAxis0(scaled)
	for j := 0; j < NumChannels; j++ {
		if norm.Maxs.At(j) == norm.Mins.At(j) {
			continue
		}
		if math.Abs(mins.At(j)+1) > 1e-9 || math.Abs(maxs.At(j)-1) > 1e-9 {
			t.Fatalf("channel %d spans [%g, %g]", j, mins.At(j), maxs.At(j))
		}
	}
}

func TestNormalizerConstantChannel(t *testing.T) {
	series := tensor.New(10, 2)
	for i := 0; i < 10; i++ {
		series.Set2(5, i, 0)          // constant
		series.Set2(float64(i), i, 1) // varying
	}
	norm := FitNormalizer(series)
	scaled := norm.Apply(series)
	for i := 0; i < 10; i++ {
		if scaled.At2(i, 0) != 0 {
			t.Fatal("constant channel must map to 0")
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	cfg := SmallDataset()
	cfg.TrainSeconds = 120
	cfg.TestSeconds = 80
	cfg.Collisions = 5
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Train.Dim(1) != NumChannels || ds.Test.Dim(1) != NumChannels {
		t.Fatal("dataset width wrong")
	}
	if len(ds.Labels) != ds.Test.Dim(0) {
		t.Fatal("labels misaligned")
	}
	if len(ds.Events) != 5 {
		t.Fatalf("%d events want 5", len(ds.Events))
	}
	if ds.Train.Max() > 1+1e-12 || ds.Train.Min() < -1-1e-12 {
		t.Fatal("train split must lie in [-1,1]")
	}
}

func TestSelectChannels(t *testing.T) {
	series := tensor.New(4, 5)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			series.Set2(float64(10*i+j), i, j)
		}
	}
	sub := SelectChannels(series, []int{4, 0})
	if sub.Dim(1) != 2 || sub.At2(2, 0) != 24 || sub.At2(2, 1) != 20 {
		t.Fatalf("SelectChannels wrong: %v", sub.Data())
	}
	ic := InterestingChannels()
	if len(ic) != 2*NumJoints+3 {
		t.Fatalf("InterestingChannels returned %d channels, want %d", len(ic), 2*NumJoints+3)
	}
	if ic[0] != 0 {
		t.Fatal("InterestingChannels must start with the action ID channel")
	}
	seen := map[int]bool{}
	for _, j := range ic {
		if j < 0 || j >= NumChannels || seen[j] {
			t.Fatalf("invalid or duplicate channel index %d", j)
		}
		seen[j] = true
	}
}

func TestKalmanReducesNoiseVariance(t *testing.T) {
	rng := tensor.NewRNG(3)
	k := newKalman(0.01, 1.0)
	varRaw, varFilt := 0.0, 0.0
	n := 5000
	for i := 0; i < n; i++ {
		z := rng.NormFloat64() // true signal is 0
		f := k.step(z)
		varRaw += z * z
		varFilt += f * f
	}
	if varFilt >= varRaw/2 {
		t.Fatalf("Kalman filter did not reduce variance: raw %g filt %g", varRaw/float64(n), varFilt/float64(n))
	}
}

func TestSimulatorRejectsBadConfig(t *testing.T) {
	if _, err := NewSimulator(SimConfig{SampleRate: 0}); err == nil {
		t.Fatal("expected error for zero rate")
	}
	if _, err := NewSimulator(SimConfig{SampleRate: 10, IdleGap: -1}); err == nil {
		t.Fatal("expected error for negative idle gap")
	}
}
