package robot

import (
	"math"

	"varade/internal/tensor"
)

// NumActions is the machine-service count of the case study: the robot
// supports 30 unique actions, executed cyclically during both the training
// and the collision runs (§4.3).
const NumActions = 30

// Action is one repeatable machine service: a fixed joint-space trajectory
// with a stable ID. The same ID always produces exactly the same motion,
// which is what makes the normal behaviour learnable.
type Action struct {
	ID   int
	traj *trajectory
}

// Duration returns the action's duration in seconds.
func (a *Action) Duration() float64 { return a.traj.Duration() }

// actionLibrary builds the deterministic 30-action library. Every action
// is a 3–5 waypoint pick-and-place-style move whose geometry is derived
// from the seed, so two simulators with equal seeds perform identical
// motions.
func actionLibrary(seed uint64) []*Action {
	rng := tensor.NewRNG(seed)
	lib := make([]*Action, NumActions)
	for id := range lib {
		nway := 3 + rng.Intn(3) // 3..5 waypoints
		ways := make([][NumJoints]float64, nway)
		// Home-ish start; subsequent waypoints wander within joint limits.
		for j := 0; j < NumJoints; j++ {
			ways[0][j] = rng.Uniform(-0.3, 0.3)
		}
		for w := 1; w < nway; w++ {
			for j := 0; j < NumJoints; j++ {
				limit := math.Pi * 0.8
				step := rng.Uniform(-1.2, 1.2)
				v := ways[w-1][j] + step
				if v > limit {
					v = limit
				}
				if v < -limit {
					v = -limit
				}
				ways[w][j] = v
			}
		}
		durs := make([]float64, nway-1)
		for i := range durs {
			durs[i] = rng.Uniform(1.5, 4.0) // seconds per segment
		}
		lib[id] = &Action{ID: id, traj: newTrajectory(ways, durs)}
	}
	return lib
}

// schedule cycles through all actions so that every service appears once
// per cycle, in an order reshuffled each cycle — this realises §4.3's
// "all the possible actions … distributed uniformly" while avoiding a
// trivially periodic stream.
type schedule struct {
	lib   []*Action
	rng   *tensor.RNG
	order []int
	pos   int
}

func newSchedule(lib []*Action, rng *tensor.RNG) *schedule {
	s := &schedule{lib: lib, rng: rng}
	s.reshuffle()
	return s
}

func (s *schedule) reshuffle() {
	s.order = s.rng.Perm(len(s.lib))
	s.pos = 0
}

// next returns the next action in the cycle.
func (s *schedule) next() *Action {
	if s.pos >= len(s.order) {
		s.reshuffle()
	}
	a := s.lib[s.order[s.pos]]
	s.pos++
	return a
}
