// Package robot simulates the paper's industrial case study (§4): a
// KUKA LBR iiwa 7-joint collaborative arm instrumented with one IMU per
// joint and a single-phase energy meter, cycling through 30 pick-and-place
// actions. The simulator produces the same 86-channel multivariate stream
// described in Table 1, a collision injector reproduces the 125-event test
// run, and a min-max normaliser maps everything to [-1, 1] as in §4.3.
//
// The stream replaces the physical testbed (see DESIGN.md): detectors only
// ever see an 86-channel normalised series whose normal behaviour is a
// repeating library of smooth action signatures and whose anomalies are
// short collision transients, which preserves the statistical structure
// the paper's comparison depends on.
package robot

import "fmt"

// NumJoints is the KUKA LBR iiwa joint count (one IMU per joint).
const NumJoints = 7

// PerJointChannels is the number of variables each IMU reports (Table 1).
const PerJointChannels = 11

// NumPowerChannels is the number of energy-meter variables. The paper's
// §4.2 text says the meter reports eight quantities while its Table 1
// lists seven names; we follow the text and include the SDM230's total
// energy register as the eighth so the stated 86-channel total holds:
// 1 action ID + 7×11 joint channels + 8 power channels = 86.
const NumPowerChannels = 8

// NumChannels is the total stream width.
const NumChannels = 1 + NumJoints*PerJointChannels + NumPowerChannels

// Channel describes one stream variable, mirroring Table 1.
type Channel struct {
	Name        string
	Unit        string
	Description string
}

// Channels returns the full 86-entry schema in stream order: action ID,
// then the seven joints' IMU blocks, then the power block.
func Channels() []Channel {
	chs := make([]Channel, 0, NumChannels)
	chs = append(chs, Channel{Name: "action_id", Unit: "-", Description: "Robot action ID"})
	per := []Channel{
		{Name: "AccX", Unit: "m/s2", Description: "X-axis acceleration"},
		{Name: "AccY", Unit: "m/s2", Description: "Y-axis acceleration"},
		{Name: "AccZ", Unit: "m/s2", Description: "Z-axis acceleration"},
		{Name: "GyroX", Unit: "deg/s", Description: "X-axis angular velocity"},
		{Name: "GyroY", Unit: "deg/s", Description: "Y-axis angular velocity"},
		{Name: "GyroZ", Unit: "deg/s", Description: "Z-axis angular velocity"},
		{Name: "q1", Unit: "-", Description: "Quaternion orient. comp. 1"},
		{Name: "q2", Unit: "-", Description: "Quaternion orient. comp. 2"},
		{Name: "q3", Unit: "-", Description: "Quaternion orient. comp. 3"},
		{Name: "q4", Unit: "-", Description: "Quaternion orient. comp. 4"},
		{Name: "temp", Unit: "degC", Description: "Temperature"},
	}
	for j := 0; j < NumJoints; j++ {
		for _, c := range per {
			chs = append(chs, Channel{
				Name:        fmt.Sprintf("sensor_id_%d_%s", j, c.Name),
				Unit:        c.Unit,
				Description: c.Description,
			})
		}
	}
	chs = append(chs,
		Channel{Name: "current", Unit: "A", Description: "Current"},
		Channel{Name: "frequency", Unit: "Hz", Description: "Frequency"},
		Channel{Name: "phase_angle", Unit: "degree", Description: "Phase angle"},
		Channel{Name: "power", Unit: "W", Description: "Power"},
		Channel{Name: "power_factor", Unit: "-", Description: "Power factor"},
		Channel{Name: "reactive_power", Unit: "VAr", Description: "Reactive power"},
		Channel{Name: "voltage", Unit: "V", Description: "Voltage"},
		Channel{Name: "energy_total", Unit: "kWh", Description: "Total active energy"},
	)
	return chs
}

// Channel index helpers.

// JointChannel returns the stream index of channel comp (0..10, the order
// of Table 1's joint block) for joint j.
func JointChannel(j, comp int) int {
	if j < 0 || j >= NumJoints || comp < 0 || comp >= PerJointChannels {
		panic(fmt.Sprintf("robot: joint channel (%d,%d) out of range", j, comp))
	}
	return 1 + j*PerJointChannels + comp
}

// PowerChannel returns the stream index of power channel p (0..7).
func PowerChannel(p int) int {
	if p < 0 || p >= NumPowerChannels {
		panic(fmt.Sprintf("robot: power channel %d out of range", p))
	}
	return 1 + NumJoints*PerJointChannels + p
}

// Component offsets inside a joint block.
const (
	CompAccX = iota
	CompAccY
	CompAccZ
	CompGyroX
	CompGyroY
	CompGyroZ
	CompQ1
	CompQ2
	CompQ3
	CompQ4
	CompTemp
)

// Power block offsets.
const (
	PwrCurrent = iota
	PwrFrequency
	PwrPhaseAngle
	PwrPower
	PwrPowerFactor
	PwrReactive
	PwrVoltage
	PwrEnergy
)
