package robot

// Quintic minimum-jerk interpolation. Industrial arm controllers plan
// joint-space trajectories with zero boundary velocity and acceleration;
// the quintic blend s(τ) = 6τ⁵ − 15τ⁴ + 10τ³ is the classic closed form.
// Position, velocity and acceleration are all analytic, which gives the
// IMU model exact kinematics with no numerical differentiation noise.

// quinticBlend returns the blend value and its first two time derivatives
// at normalised time τ ∈ [0, 1] over a segment of duration d seconds.
func quinticBlend(tau, d float64) (s, ds, dds float64) {
	if tau <= 0 {
		return 0, 0, 0
	}
	if tau >= 1 {
		return 1, 0, 0
	}
	t2 := tau * tau
	t3 := t2 * tau
	t4 := t3 * tau
	s = 6*t4*tau - 15*t4 + 10*t3
	ds = (30*t4 - 60*t3 + 30*t2) / d
	dds = (120*t3 - 180*t2 + 60*tau) / (d * d)
	return s, ds, dds
}

// segment is one joint-space move from q0 to q1 lasting dur seconds.
type segment struct {
	q0, q1 [NumJoints]float64 // joint angles, radians
	dur    float64
}

// eval returns joint angle, angular velocity and angular acceleration at
// time t ∈ [0, dur] within the segment.
func (sg *segment) eval(t float64) (q, dq, ddq [NumJoints]float64) {
	tau := t / sg.dur
	s, ds, dds := quinticBlend(tau, sg.dur)
	for j := 0; j < NumJoints; j++ {
		delta := sg.q1[j] - sg.q0[j]
		q[j] = sg.q0[j] + delta*s
		dq[j] = delta * ds
		ddq[j] = delta * dds
	}
	return q, dq, ddq
}

// Trajectory is a sequence of segments executed back to back.
type trajectory struct {
	segments []segment
	total    float64
}

func newTrajectory(waypoints [][NumJoints]float64, durations []float64) *trajectory {
	if len(waypoints) < 2 || len(durations) != len(waypoints)-1 {
		panic("robot: trajectory needs n waypoints and n-1 durations")
	}
	tr := &trajectory{}
	for i := 0; i < len(durations); i++ {
		tr.segments = append(tr.segments, segment{q0: waypoints[i], q1: waypoints[i+1], dur: durations[i]})
		tr.total += durations[i]
	}
	return tr
}

// Duration returns the trajectory's total duration in seconds.
func (tr *trajectory) Duration() float64 { return tr.total }

// eval returns the kinematic state at time t, clamping beyond the ends.
func (tr *trajectory) eval(t float64) (q, dq, ddq [NumJoints]float64) {
	if t <= 0 {
		return tr.segments[0].eval(0)
	}
	for i := range tr.segments {
		if t < tr.segments[i].dur || i == len(tr.segments)-1 {
			if t > tr.segments[i].dur {
				t = tr.segments[i].dur
			}
			return tr.segments[i].eval(t)
		}
		t -= tr.segments[i].dur
	}
	panic("robot: unreachable")
}
