package robot

import (
	"fmt"
	"math"
	"sort"

	"varade/internal/tensor"
)

// CollisionEvent is one injected collision: [Start, End) in samples, the
// joints struck and the impact amplitude.
type CollisionEvent struct {
	Start, End int
	Joints     []int
	Amplitude  float64
}

// CollisionConfig parameterises the injector.
type CollisionConfig struct {
	// Count is the number of collisions (the paper's test run has 125).
	Count int
	// MinDur and MaxDur bound event durations in seconds.
	MinDur, MaxDur float64
	// Amplitude scales the impact transients. The default (1.0) keeps the
	// disturbed values mostly inside the per-channel global ranges of the
	// normal stream, so collisions are contextual — temporal-pattern —
	// anomalies rather than trivial point outliers. This mirrors the real
	// testbed, where a human brushing the arm produces accelerations of
	// the same magnitude as normal motion but at the wrong time.
	Amplitude float64
	// Seed drives event placement and shape.
	Seed uint64
}

// DefaultCollisionConfig mirrors the paper's test protocol scaled to the
// given stream length: short (0.5–2 s) hand-robot contacts.
func DefaultCollisionConfig(count int) CollisionConfig {
	return CollisionConfig{Count: count, MinDur: 0.5, MaxDur: 2.0, Amplitude: 1.0, Seed: 7}
}

// InjectCollisions superimposes cfg.Count collision transients onto a raw
// (unnormalised) series of shape (T, 86) in place, and returns the events
// and per-sample labels. Events never overlap; placement fails only if the
// series is too short to host them.
//
// A collision adds, to 1–3 adjacent joints, an exponentially decaying
// oscillation on the accelerometer channels, an opposing jerk on the gyro
// channels, a small orientation deflection, and a power surge while the
// drives push against the obstacle.
func InjectCollisions(series *tensor.Tensor, rate float64, cfg CollisionConfig) ([]CollisionEvent, []bool, error) {
	if series.Dims() != 2 || series.Dim(1) != NumChannels {
		return nil, nil, fmt.Errorf("robot: series shape %v, want (T,%d)", series.Shape(), NumChannels)
	}
	if cfg.Count <= 0 || cfg.MinDur <= 0 || cfg.MaxDur < cfg.MinDur {
		return nil, nil, fmt.Errorf("robot: invalid collision config %+v", cfg)
	}
	t := series.Dim(0)
	maxLen := int(cfg.MaxDur * rate)
	if maxLen < 1 {
		maxLen = 1
	}
	if cfg.Count*(maxLen+2) > t {
		return nil, nil, fmt.Errorf("robot: %d collisions of up to %d samples do not fit in %d samples", cfg.Count, maxLen, t)
	}
	rng := tensor.NewRNG(cfg.Seed)

	// The paper's operators interfere with the robot *during its movement*
	// (§4.3), so candidate starts are gated on motion: the summed gyro
	// magnitude at the start sample must exceed the stream's median.
	motion := make([]float64, t)
	for i := 0; i < t; i++ {
		row := series.Row(i).Data()
		s := 0.0
		for j := 0; j < NumJoints; j++ {
			base := 1 + j*PerJointChannels
			s += math.Abs(row[base+CompGyroX]) + math.Abs(row[base+CompGyroY]) + math.Abs(row[base+CompGyroZ])
		}
		motion[i] = s
	}
	sorted := append([]float64(nil), motion...)
	sort.Float64s(sorted)
	motionGate := sorted[len(sorted)/2]

	// Place non-overlapping events by sampling starts until disjoint.
	events := make([]CollisionEvent, 0, cfg.Count)
	occupied := make([]bool, t)
	attempts := 0
	for len(events) < cfg.Count {
		dur := int(rng.Uniform(cfg.MinDur, cfg.MaxDur) * rate)
		if dur < 1 {
			dur = 1
		}
		start := rng.Intn(t - dur)
		attempts++
		// Relax the motion gate if placement stalls (pathological streams);
		// collisions then land anywhere, preserving the non-overlap
		// contract.
		if motion[start] < motionGate && attempts < 50*cfg.Count {
			continue
		}
		clear := true
		for i := start; i < start+dur; i++ {
			if occupied[i] {
				clear = false
				break
			}
		}
		if !clear {
			continue
		}
		for i := start; i < start+dur; i++ {
			occupied[i] = true
		}
		j0 := rng.Intn(NumJoints)
		joints := []int{j0}
		for _, dj := range []int{1, 2} {
			if j0+dj < NumJoints && rng.Float64() < 0.5 {
				joints = append(joints, j0+dj)
			}
		}
		events = append(events, CollisionEvent{
			Start: start, End: start + dur,
			Joints:    joints,
			Amplitude: cfg.Amplitude * rng.Uniform(0.7, 1.4),
		})
	}
	sort.Slice(events, func(a, b int) bool { return events[a].Start < events[b].Start })

	labels := make([]bool, t)
	for _, e := range events {
		applyCollision(series, e, rate, rng)
		for i := e.Start; i < e.End; i++ {
			labels[i] = true
		}
	}
	return events, labels, nil
}

// applyCollision perturbs the series in place for one event.
func applyCollision(series *tensor.Tensor, e CollisionEvent, rate float64, rng *tensor.RNG) {
	dur := e.End - e.Start
	ringHz := rng.Uniform(0.8, 2.4) // effective post-aliasing ring frequency
	decay := rng.Uniform(2.5, 5.0)  // 1/s
	phase := rng.Uniform(0, 2*math.Pi)
	for _, j := range e.Joints {
		base := 1 + j*PerJointChannels
		accAmp := 3.0 * e.Amplitude
		gyroAmp := 18 * e.Amplitude
		quatAmp := 0.02 * e.Amplitude
		for i := 0; i < dur; i++ {
			ts := float64(i) / rate
			env := math.Exp(-decay * ts)
			ring := math.Cos(2*math.Pi*ringHz*ts + phase)
			row := series.Row(e.Start + i).Data()
			// Broadband impact noise: the genuinely unpredictable part of
			// a mechanical contact, on top of the structured ring-down.
			jit := 1.2 * accAmp * env
			row[base+CompAccX] += accAmp*env*ring + jit*rng.NormFloat64()
			row[base+CompAccY] += jit * 0.6 * rng.NormFloat64()
			row[base+CompAccZ] += jit * 0.4 * rng.NormFloat64()
			gjit := 0.8 * gyroAmp * env
			row[base+CompGyroX] += gjit * 0.4 * rng.NormFloat64()
			row[base+CompGyroY] += gjit * rng.NormFloat64()
			row[base+CompGyroZ] += gjit * 0.5 * rng.NormFloat64()
			row[base+CompAccY] += accAmp * 0.6 * env * math.Sin(2*math.Pi*ringHz*ts+phase)
			row[base+CompAccZ] += accAmp * 0.4 * env * ring
			row[base+CompGyroX] += gyroAmp * 0.3 * env * ring
			row[base+CompGyroY] += gyroAmp * env * math.Sin(2*math.Pi*ringHz*ts+phase+1.1)
			row[base+CompGyroZ] += gyroAmp * 0.5 * env * ring
			// Small orientation deflection, renormalised to keep the
			// quaternion unit length.
			row[base+CompQ2] += quatAmp * env
			row[base+CompQ3] -= quatAmp * 0.5 * env
			n := math.Sqrt(row[base+CompQ1]*row[base+CompQ1] + row[base+CompQ2]*row[base+CompQ2] +
				row[base+CompQ3]*row[base+CompQ3] + row[base+CompQ4]*row[base+CompQ4])
			if n > 0 {
				row[base+CompQ1] /= n
				row[base+CompQ2] /= n
				row[base+CompQ3] /= n
				row[base+CompQ4] /= n
			}
		}
	}
	// Drives push against the obstacle: sustained power surge with the
	// meter's derived channels kept self-consistent.
	pb := 1 + NumJoints*PerJointChannels
	surge := 18 * e.Amplitude * float64(len(e.Joints))
	for i := 0; i < dur; i++ {
		ts := float64(i) / rate
		env := math.Exp(-1.2 * ts)
		row := series.Row(e.Start + i).Data()
		dp := surge * env
		row[pb+PwrPower] += dp
		row[pb+PwrCurrent] += dp / (row[pb+PwrVoltage] * row[pb+PwrPowerFactor])
		row[pb+PwrReactive] += dp * math.Tan(row[pb+PwrPhaseAngle]*math.Pi/180)
	}
}
