package robot

import (
	"fmt"

	"varade/internal/tensor"
)

// Normalizer rescales each channel to [-1, 1] from per-channel training
// minima and maxima, as §4.3 prescribes ("normalized in the range [-1, 1]
// based on the minimum and maximum values of each sensor's data").
type Normalizer struct {
	Mins, Maxs *tensor.Tensor
}

// FitNormalizer computes per-channel min/max from a raw (T, C) series.
func FitNormalizer(series *tensor.Tensor) *Normalizer {
	mins, maxs := tensor.MinMaxAxis0(series)
	return &Normalizer{Mins: mins, Maxs: maxs}
}

// Apply returns a normalised copy of series. Channels that were constant
// in the training data map to 0. Test values outside the training range
// extend beyond [-1, 1] — they are not clipped, exactly as a deployed
// pipeline with frozen scaling would behave.
func (n *Normalizer) Apply(series *tensor.Tensor) *tensor.Tensor {
	if series.Dims() != 2 || series.Dim(1) != n.Mins.Len() {
		panic(fmt.Sprintf("robot: normalise shape %v, want (T,%d)", series.Shape(), n.Mins.Len()))
	}
	t, c := series.Dim(0), series.Dim(1)
	out := tensor.New(t, c)
	sd, od := series.Data(), out.Data()
	mins, maxs := n.Mins.Data(), n.Maxs.Data()
	for i := 0; i < t; i++ {
		for j := 0; j < c; j++ {
			span := maxs[j] - mins[j]
			if span == 0 {
				od[i*c+j] = 0
				continue
			}
			od[i*c+j] = 2*(sd[i*c+j]-mins[j])/span - 1
		}
	}
	return out
}

// Dataset bundles a complete experiment: normalised train and test series,
// collision ground truth and the fitted scaler.
type Dataset struct {
	Train  *tensor.Tensor // (Ttrain, 86), normalised, anomaly-free
	Test   *tensor.Tensor // (Ttest, 86), normalised, with collisions
	Labels []bool         // per-sample ground truth for Test
	Events []CollisionEvent
	Norm   *Normalizer
	Rate   float64 // stream rate in Hz
}

// DatasetConfig describes how to generate a Dataset.
type DatasetConfig struct {
	Sim          SimConfig
	TrainSeconds float64
	TestSeconds  float64
	Collisions   int
	// CollisionCfg overrides DefaultCollisionConfig when Count > 0.
	CollisionCfg CollisionConfig
}

// SmallDataset returns the scaled-down experiment used by tests and quick
// examples: ~10 minutes of training data, 5 minutes of test data with 40
// collisions at 10 Hz.
func SmallDataset() DatasetConfig {
	return DatasetConfig{
		Sim:          DefaultSimConfig(),
		TrainSeconds: 600,
		TestSeconds:  300,
		Collisions:   40,
	}
}

// PaperDataset returns the full protocol of §4.3 — 390 minutes of training
// data and an 82-minute collision run with 125 events — at the simulator's
// decimated 10 Hz rate.
func PaperDataset() DatasetConfig {
	return DatasetConfig{
		Sim:          DefaultSimConfig(),
		TrainSeconds: 390 * 60,
		TestSeconds:  82 * 60,
		Collisions:   125,
	}
}

// Generate produces the dataset: a training run recorded with one noise
// realisation, a test run of the same plant with another, collisions
// injected into the raw test stream, and both runs normalised by the
// training scaler.
func Generate(cfg DatasetConfig) (*Dataset, error) {
	if cfg.TrainSeconds <= 0 || cfg.TestSeconds <= 0 {
		return nil, fmt.Errorf("robot: durations must be positive: %+v", cfg)
	}
	trainCfg := cfg.Sim
	if trainCfg.NoiseSeed == 0 {
		trainCfg.NoiseSeed = trainCfg.Seed + 1000
	}
	testCfg := cfg.Sim
	testCfg.NoiseSeed = trainCfg.NoiseSeed + 1
	if testCfg.CalibDrift == 0 {
		testCfg.CalibDrift = 0.5 // day-two recalibration gap (see SimConfig)
	}

	trainSim, err := NewSimulator(trainCfg)
	if err != nil {
		return nil, err
	}
	testSim, err := NewSimulator(testCfg)
	if err != nil {
		return nil, err
	}
	rawTrain := trainSim.RunSeconds(cfg.TrainSeconds)
	rawTest := testSim.RunSeconds(cfg.TestSeconds)

	colCfg := cfg.CollisionCfg
	if colCfg.Count == 0 {
		colCfg = DefaultCollisionConfig(cfg.Collisions)
	}
	events, labels, err := InjectCollisions(rawTest, cfg.Sim.SampleRate, colCfg)
	if err != nil {
		return nil, err
	}

	norm := FitNormalizer(rawTrain)
	return &Dataset{
		Train:  norm.Apply(rawTrain),
		Test:   norm.Apply(rawTest),
		Labels: labels,
		Events: events,
		Norm:   norm,
		Rate:   cfg.Sim.SampleRate,
	}, nil
}

// SelectChannels returns a copy of series restricted to the given channel
// indices — used to build reduced-width experiments that train quickly.
func SelectChannels(series *tensor.Tensor, idx []int) *tensor.Tensor {
	t := series.Dim(0)
	out := tensor.New(t, len(idx))
	for i := 0; i < t; i++ {
		row := series.Row(i).Data()
		orow := out.Row(i).Data()
		for k, j := range idx {
			orow[k] = row[j]
		}
	}
	return out
}

// InterestingChannels returns a compact, information-dense channel subset
// used by the fast accuracy experiments: the action ID (so context models
// can condition on the executing service, as in the full 86-channel
// stream), one accelerometer axis and one gyro axis per joint — so a
// collision on any joint is visible — plus the power and current channels.
func InterestingChannels() []int {
	idx := make([]int, 0, 2*NumJoints+3)
	idx = append(idx, 0) // action ID
	for j := 0; j < NumJoints; j++ {
		gyro := CompGyroZ // even joints rotate about Z
		if j%2 == 1 {
			gyro = CompGyroY
		}
		idx = append(idx, JointChannel(j, CompAccX), JointChannel(j, gyro))
	}
	return append(idx, PowerChannel(PwrPower), PowerChannel(PwrCurrent))
}
