package robot

import (
	"math"

	"varade/internal/tensor"
)

// quat is a unit quaternion (w, x, y, z) representing an orientation.
type quat struct{ w, x, y, z float64 }

var quatIdentity = quat{w: 1}

// quatAxisAngle returns the rotation of angle radians about a unit axis.
func quatAxisAngle(ax, ay, az, angle float64) quat {
	h := angle / 2
	s := math.Sin(h)
	return quat{w: math.Cos(h), x: ax * s, y: ay * s, z: az * s}
}

// mul returns the Hamilton product a·b (apply b, then a).
func (a quat) mul(b quat) quat {
	return quat{
		w: a.w*b.w - a.x*b.x - a.y*b.y - a.z*b.z,
		x: a.w*b.x + a.x*b.w + a.y*b.z - a.z*b.y,
		y: a.w*b.y - a.x*b.z + a.y*b.w + a.z*b.x,
		z: a.w*b.z + a.x*b.y - a.y*b.x + a.z*b.w,
	}
}

// rotateInv rotates vector v by the inverse of q (world → sensor frame).
func (q quat) rotateInv(vx, vy, vz float64) (float64, float64, float64) {
	// q⁻¹·v·q for unit q.
	inv := quat{w: q.w, x: -q.x, y: -q.y, z: -q.z}
	p := inv.mul(quat{x: vx, y: vy, z: vz}).mul(q)
	return p.x, p.y, p.z
}

// norm returns the quaternion's Euclidean norm.
func (q quat) norm() float64 {
	return math.Sqrt(q.w*q.w + q.x*q.x + q.y*q.y + q.z*q.z)
}

// jointAxis returns the unit rotation axis of joint j in its parent frame.
// The LBR iiwa alternates roll (Z) and pitch (Y) joints.
func jointAxis(j int) (x, y, z float64) {
	if j%2 == 0 {
		return 0, 0, 1
	}
	return 0, 1, 0
}

// linkLength is the distance (m) from joint j to the IMU mounted on it.
var linkLength = [NumJoints]float64{0.34, 0.19, 0.40, 0.19, 0.40, 0.13, 0.09}

// linkMass approximates the mass (kg) moved by joint j — heavier near the
// base. Drives both torque and temperature models.
var linkMass = [NumJoints]float64{8.0, 6.5, 5.0, 3.8, 2.7, 1.8, 1.1}

const gravity = 9.81

// kalman is a scalar Kalman filter with a random-walk state model, the
// same class of filter the DFRobot IMUs apply on-board before streaming
// (§4.1). q is the process variance per step, r the measurement variance.
type kalman struct {
	x, p  float64
	q, r  float64
	ready bool
}

func newKalman(q, r float64) *kalman { return &kalman{q: q, r: r} }

// step folds one measurement z into the state estimate and returns it.
func (k *kalman) step(z float64) float64 {
	if !k.ready {
		k.x, k.p, k.ready = z, k.r, true
		return k.x
	}
	k.p += k.q
	gain := k.p / (k.p + k.r)
	k.x += gain * (z - k.x)
	k.p *= 1 - gain
	return k.x
}

// imuState holds the per-joint sensor state: orientation filters are not
// needed (quaternions are computed exactly) but acceleration and gyro
// channels carry measurement noise smoothed by the on-board Kalman filter,
// and temperature integrates frictive heating.
type imuState struct {
	accF  [3]*kalman
	gyroF [3]*kalman
	temp  float64
}

func newIMUState(ambient float64) *imuState {
	s := &imuState{temp: ambient}
	for i := 0; i < 3; i++ {
		s.accF[i] = newKalman(1.0, 0.3)
		s.gyroF[i] = newKalman(1.2, 0.5)
	}
	return s
}

// imuReading is one joint's 11 channels in Table 1 order.
type imuReading struct {
	acc  [3]float64
	gyro [3]float64
	q    quat
	temp float64
}

// measureIMU produces joint j's reading given the cumulative orientation
// orient of its link, the joint's kinematic state, ambient temperature and
// the sample interval dt.
func measureIMU(j int, st *imuState, orient quat, dqj, ddqj, ambient, dt float64, rng *tensor.RNG) imuReading {
	var r imuReading
	r.q = orient

	ax, ay, az := jointAxis(j)
	// Gravity expressed in the sensor frame is the dominant, smoothly
	// varying accelerometer component.
	gx, gy, gz := orient.rotateInv(0, 0, -gravity)
	// Tangential (α·r) and centripetal (ω²·r) terms act orthogonally to
	// the joint axis; distribute them over the two non-axis directions.
	tang := ddqj * linkLength[j]
	cent := dqj * dqj * linkLength[j]
	acc := [3]float64{gx, gy, gz}
	switch {
	case az != 0: // Z joint: motion in XY plane
		acc[0] += tang
		acc[1] += cent
	default: // Y joint: motion in XZ plane
		acc[0] += tang
		acc[2] += cent
	}
	// Vibration: structural noise grows with joint motion. Real robot IMUs
	// are strongly heteroscedastic — gearbox and link vibration scale with
	// speed and effort — and this is what a variational forecaster's
	// variance head learns to track (see DESIGN.md). A collision's
	// ring-down is precisely *unexpected* vibration energy.
	vib := 0.12*math.Abs(dqj) + 0.4*math.Abs(ddqj)
	accStd := 0.08 + 0.5*vib
	gyroStd := 0.25 + 1.6*vib
	for i := 0; i < 3; i++ {
		noisy := acc[i] + rng.NormFloat64()*accStd
		r.acc[i] = st.accF[i].step(noisy)
	}

	deg := dqj * 180 / math.Pi
	gyro := [3]float64{ax * deg, ay * deg, az * deg}
	for i := 0; i < 3; i++ {
		noisy := gyro[i] + rng.NormFloat64()*gyroStd
		r.gyro[i] = st.gyroF[i].step(noisy)
	}

	// Temperature: frictive heating proportional to joint effort, Newton
	// cooling towards ambient, plus slow measurement noise.
	heat := 0.004 * linkMass[j] * math.Abs(dqj*ddqj)
	st.temp += dt * (heat - 0.002*(st.temp-ambient))
	r.temp = st.temp + rng.NormFloat64()*0.02
	return r
}

// jointTorque approximates joint j's torque: inertial, viscous and
// gravity-load terms. qj is the joint angle.
func jointTorque(j int, qj, dqj, ddqj float64) float64 {
	inertia := linkMass[j] * linkLength[j] * linkLength[j]
	viscous := 0.4 * linkMass[j]
	gravLoad := linkMass[j] * gravity * linkLength[j] * 0.5
	return inertia*ddqj + viscous*dqj + gravLoad*math.Cos(qj)
}
