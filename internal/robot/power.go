package robot

import (
	"math"

	"varade/internal/tensor"
)

// powerMeter models the Eastron SDM230 single-phase meter monitoring the
// robot and the industrial PC (§4.1). Electrical power follows the
// mechanical load through a drive-efficiency model; current, power factor,
// phase angle and reactive power are derived self-consistently; the energy
// register integrates.
type powerMeter struct {
	idleWatts float64
	energyKWh float64
	mainsT    float64 // phase accumulator for slow mains wander
}

func newPowerMeter() *powerMeter {
	return &powerMeter{idleWatts: 160}
}

// powerReading is the meter's 8 channels in stream order.
type powerReading struct {
	current   float64
	frequency float64
	phase     float64
	power     float64
	pf        float64
	reactive  float64
	voltage   float64
	energy    float64
}

// measure converts mechanical power (W) into the meter's channels for one
// sample interval dt.
func (pm *powerMeter) measure(mechWatts, dt float64, rng *tensor.RNG) powerReading {
	pm.mainsT += dt
	const efficiency = 0.72
	p := pm.idleWatts + mechWatts/efficiency + rng.NormFloat64()*6
	if p < pm.idleWatts*0.8 {
		p = pm.idleWatts * 0.8
	}
	voltage := 230 + 1.8*math.Sin(2*math.Pi*pm.mainsT/47) + rng.NormFloat64()*0.4
	freq := 50 + rng.NormFloat64()*0.012
	// Power factor improves slightly under load (drives run closer to
	// rated conditions).
	load := (p - pm.idleWatts) / 600
	if load > 1 {
		load = 1
	}
	pf := 0.80 + 0.12*load + rng.NormFloat64()*0.004
	if pf > 0.99 {
		pf = 0.99
	}
	phase := math.Acos(pf) * 180 / math.Pi
	reactive := p * math.Tan(math.Acos(pf))
	current := p / (voltage * pf)
	pm.energyKWh += p * dt / 3.6e6

	return powerReading{
		current:   current,
		frequency: freq,
		phase:     phase,
		power:     p,
		pf:        pf,
		reactive:  reactive,
		voltage:   voltage,
		energy:    pm.energyKWh,
	}
}
