package eval

// Event is a contiguous labelled anomaly [Start, End) in time steps —
// one collision in the paper's test run.
type Event struct {
	Start, End int
}

// EventsFromLabels extracts maximal runs of true labels as events.
func EventsFromLabels(labels []bool) []Event {
	var evs []Event
	start := -1
	for i, l := range labels {
		switch {
		case l && start < 0:
			start = i
		case !l && start >= 0:
			evs = append(evs, Event{Start: start, End: i})
			start = -1
		}
	}
	if start >= 0 {
		evs = append(evs, Event{Start: start, End: len(labels)})
	}
	return evs
}

// LabelsFromEvents renders events back to a point-label slice of length n.
func LabelsFromEvents(evs []Event, n int) []bool {
	labels := make([]bool, n)
	for _, e := range evs {
		for i := e.Start; i < e.End && i < n; i++ {
			if i >= 0 {
				labels[i] = true
			}
		}
	}
	return labels
}

// PointAdjust applies the point-adjust protocol standard in MTSAD
// evaluation: if any point inside an event exceeds the threshold, every
// point of that event counts as detected. It returns adjusted predictions.
func PointAdjust(scores []float64, labels []bool, threshold float64) []bool {
	pred := make([]bool, len(scores))
	for i, s := range scores {
		pred[i] = s > threshold
	}
	for _, e := range EventsFromLabels(labels) {
		hit := false
		for i := e.Start; i < e.End; i++ {
			if pred[i] {
				hit = true
				break
			}
		}
		if hit {
			for i := e.Start; i < e.End; i++ {
				pred[i] = true
			}
		}
	}
	return pred
}

// AUCROCAdjusted computes AUC-ROC under the point-adjust protocol: before
// ranking, every point inside a labelled event receives the event's
// maximum score. This is the standard event-oriented MTSAD metric — a
// detector is credited with an event as soon as any of its points fires,
// which matches how the paper's 125 discrete collisions are counted.
func AUCROCAdjusted(scores []float64, labels []bool) float64 {
	adj := append([]float64(nil), scores...)
	for _, e := range EventsFromLabels(labels) {
		best := scores[e.Start]
		for i := e.Start; i < e.End; i++ {
			if scores[i] > best {
				best = scores[i]
			}
		}
		for i := e.Start; i < e.End; i++ {
			adj[i] = best
		}
	}
	return AUCROC(adj, labels)
}

// EventRecall returns the fraction of events with at least one point above
// the threshold — "how many of the 125 collisions were noticed at all".
func EventRecall(scores []float64, labels []bool, threshold float64) float64 {
	evs := EventsFromLabels(labels)
	if len(evs) == 0 {
		return 0
	}
	hit := 0
	for _, e := range evs {
		for i := e.Start; i < e.End; i++ {
			if scores[i] > threshold {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(evs))
}
