package eval

import (
	"math"
	"testing"
	"testing/quick"

	"varade/internal/tensor"
)

func TestAUCPerfectDetector(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.3, 0.9, 0.8}
	labels := []bool{false, false, false, true, true}
	if auc := AUCROC(scores, labels); auc != 1 {
		t.Fatalf("perfect AUC=%g", auc)
	}
}

func TestAUCReversedDetector(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.1, 0.2}
	labels := []bool{false, false, false, true, true}
	if auc := AUCROC(scores, labels); auc != 0 {
		t.Fatalf("reversed AUC=%g", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	rng := tensor.NewRNG(1)
	n := 20000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < 0.3
	}
	if auc := AUCROC(scores, labels); math.Abs(auc-0.5) > 0.02 {
		t.Fatalf("random AUC=%g", auc)
	}
}

func TestAUCAllTiedIsHalf(t *testing.T) {
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	if auc := AUCROC(scores, labels); auc != 0.5 {
		t.Fatalf("tied AUC=%g want 0.5", auc)
	}
}

func TestAUCNeedsBothClasses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AUCROC([]float64{1, 2}, []bool{true, true})
}

// Property: AUC is invariant under strictly monotone score transforms.
func TestAUCMonotoneInvariance(t *testing.T) {
	f := func(raw [10]float64, mask uint16) bool {
		scores := raw[:]
		labels := make([]bool, 10)
		nPos := 0
		for i := range labels {
			labels[i] = mask&(1<<i) != 0
			if labels[i] {
				nPos++
			}
		}
		if nPos == 0 || nPos == 10 {
			return true // skip degenerate draws
		}
		for _, v := range scores {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 200 {
				return true
			}
		}
		a1 := AUCROC(scores, labels)
		warped := make([]float64, len(scores))
		for i, v := range scores {
			warped[i] = math.Exp(v/100) + 3 // strictly increasing
		}
		a2 := AUCROC(warped, labels)
		return math.Abs(a1-a2) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the rank-based AUC agrees with trapezoid integration of the
// explicit ROC curve.
func TestAUCAgreesWithCurveIntegration(t *testing.T) {
	rng := tensor.NewRNG(2)
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(100)
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos := 0
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*20) / 20 // force ties
			labels[i] = rng.Float64() < 0.4
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == n {
			continue
		}
		a1 := AUCROC(scores, labels)
		a2 := AUCFromCurve(ROCCurve(scores, labels))
		if math.Abs(a1-a2) > 1e-9 {
			t.Fatalf("trial %d: rank AUC %g vs curve AUC %g", trial, a1, a2)
		}
	}
}

func TestROCCurveEndpoints(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.9, 0.3}
	labels := []bool{false, true, true, false}
	pts := ROCCurve(scores, labels)
	first, last := pts[0], pts[len(pts)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Fatalf("curve must start at origin, got (%g,%g)", first.FPR, first.TPR)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve must end at (1,1), got (%g,%g)", last.FPR, last.TPR)
	}
	// Monotone non-decreasing in both axes.
	for i := 1; i < len(pts); i++ {
		if pts[i].FPR < pts[i-1].FPR || pts[i].TPR < pts[i-1].TPR {
			t.Fatal("ROC curve must be monotone")
		}
	}
}

func TestConfusionAndDerivedMetrics(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, false, true, false}
	c := Confuse(scores, labels, 0.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 {
		t.Fatalf("P/R/F1 %g %g %g", c.Precision(), c.Recall(), c.F1())
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion must yield zero metrics")
	}
}

func TestBestF1FindsSeparator(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.3, 0.8, 0.9}
	labels := []bool{false, false, false, true, true}
	f1, thr := BestF1(scores, labels)
	if f1 != 1 {
		t.Fatalf("best F1 %g want 1", f1)
	}
	if thr < 0.3 || thr >= 0.8 {
		t.Fatalf("threshold %g outside separating gap", thr)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0=%g", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1=%g", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("median=%g", q)
	}
}

func TestEventsRoundTrip(t *testing.T) {
	labels := []bool{false, true, true, false, false, true, false, true}
	evs := EventsFromLabels(labels)
	if len(evs) != 3 {
		t.Fatalf("%d events want 3", len(evs))
	}
	if evs[0].Start != 1 || evs[0].End != 3 || evs[2].Start != 7 || evs[2].End != 8 {
		t.Fatalf("events %+v", evs)
	}
	back := LabelsFromEvents(evs, len(labels))
	for i := range labels {
		if back[i] != labels[i] {
			t.Fatal("labels round trip failed")
		}
	}
}

func TestPointAdjustPromotesWholeEvent(t *testing.T) {
	scores := []float64{0, 0, 0.9, 0, 0, 0, 0}
	labels := []bool{false, true, true, true, false, true, false}
	adj := PointAdjust(scores, labels, 0.5)
	// Event [1,4) has one hit → whole event marked; event [5,6) has none.
	want := []bool{false, true, true, true, false, false, false}
	for i := range want {
		if adj[i] != want[i] {
			t.Fatalf("adjusted[%d]=%v want %v", i, adj[i], want[i])
		}
	}
}

func TestEventRecall(t *testing.T) {
	scores := []float64{0, 0.9, 0, 0, 0, 0}
	labels := []bool{false, true, true, false, true, true}
	if r := EventRecall(scores, labels, 0.5); r != 0.5 {
		t.Fatalf("event recall %g want 0.5", r)
	}
}
