package eval_test

// Event-level acceptance tests for the precision axis, on the simulated
// collision dataset: float32 scoring must reproduce the float64 oracle's
// detection quality exactly (same event F1, per-window scores within a
// stated tolerance), and the int8 quantized path must stay within a small
// AUC tolerance of the oracle.

import (
	"math"
	"testing"

	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/eval"
	"varade/internal/robot"
)

type precisionFixture struct {
	model  *core.Model
	test   *robot.Dataset
	oracle []float64 // float64 scores on the test stream
}

func buildPrecisionFixture(t *testing.T) *precisionFixture {
	t.Helper()
	cfg := robot.SmallDataset()
	cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions = 180, 90, 6
	cfg.Sim.Seed = 42
	ds, err := robot.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	idx := robot.InterestingChannels()
	sub := &robot.Dataset{
		Train:  robot.SelectChannels(ds.Train, idx),
		Test:   robot.SelectChannels(ds.Test, idx),
		Labels: ds.Labels,
		Events: ds.Events,
		Rate:   ds.Rate,
	}
	m, err := core.New(core.EdgeConfig(len(idx)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(sub.Train); err != nil {
		t.Fatal(err)
	}
	return &precisionFixture{
		model:  m,
		test:   sub,
		oracle: detect.ScoreSeriesBatched(m, sub.Test),
	}
}

// midpointThreshold shifts thr to the midpoint between it and the
// largest score strictly below it, so scores perturbed by float rounding
// never straddle the operating point.
func midpointThreshold(scores []float64, thr float64) float64 {
	below := math.Inf(-1)
	for _, s := range scores {
		if s < thr && s > below {
			below = s
		}
	}
	if math.IsInf(below, -1) {
		return thr
	}
	return (thr + below) / 2
}

func TestPrecisionDetectionQuality(t *testing.T) {
	f := buildPrecisionFixture(t)
	auc64 := eval.AUCROC(f.oracle, f.test.Labels)
	f164, thr64 := eval.BestF1(f.oracle, f.test.Labels)
	if auc64 < 0.7 {
		t.Fatalf("float64 oracle AUC %.3f implausibly low — fixture broken", auc64)
	}

	t.Run("float32", func(t *testing.T) {
		if err := f.model.SetPrecision(core.PrecisionFloat32); err != nil {
			t.Fatal(err)
		}
		defer f.model.SetPrecision(core.PrecisionFloat64)
		s32 := detect.ScoreSeriesBatched(f.model, f.test.Test)

		// Stated tolerance: per-window scores within 1e-4 relative of the
		// float64 oracle.
		const relTol = 1e-4
		worst := 0.0
		for i := range f.oracle {
			d := math.Abs(s32[i]-f.oracle[i]) / math.Max(1e-12, math.Abs(f.oracle[i]))
			if d > worst {
				worst = d
			}
		}
		if worst > relTol {
			t.Fatalf("float32 per-window max relative diff %.3g exceeds %g", worst, relTol)
		}
		t.Logf("float32 max relative score diff %.3g", worst)

		// Event-level detection quality is unchanged: identical best F1
		// (to rounding) and the same confusion at the oracle's operating
		// point. BestF1's threshold is an exact score value, so evaluate
		// at the midpoint between adjacent distinct scores — a float32
		// perturbation of ~1e-7 relative cannot cross it.
		f132, _ := eval.BestF1(s32, f.test.Labels)
		if math.Abs(f132-f164) > 1e-9 {
			t.Fatalf("float32 best F1 %.6f differs from oracle %.6f", f132, f164)
		}
		thr := midpointThreshold(f.oracle, thr64)
		c64 := eval.Confuse(f.oracle, f.test.Labels, thr)
		c32 := eval.Confuse(s32, f.test.Labels, thr)
		if c64 != c32 {
			t.Fatalf("confusion at oracle operating point drifted: %+v vs %+v", c32, c64)
		}
		if r64, r32 := eval.EventRecall(f.oracle, f.test.Labels, thr), eval.EventRecall(s32, f.test.Labels, thr); r64 != r32 {
			t.Fatalf("event recall drifted: %.3f vs %.3f", r32, r64)
		}
	})

	t.Run("int8", func(t *testing.T) {
		if err := f.model.SetPrecision(core.PrecisionInt8); err != nil {
			t.Fatal(err)
		}
		defer f.model.SetPrecision(core.PrecisionFloat64)
		s8 := detect.ScoreSeriesBatched(f.model, f.test.Test)

		// Stated tolerance: quantization may move the AUC by at most 0.02
		// absolute against the float64 oracle.
		auc8 := eval.AUCROC(s8, f.test.Labels)
		if d := math.Abs(auc8 - auc64); d > 0.02 {
			t.Fatalf("int8 AUC %.4f drifts %.4f from oracle %.4f (tol 0.02)", auc8, d, auc64)
		}
		t.Logf("AUC float64 %.4f, int8 %.4f", auc64, auc8)
	})
}
