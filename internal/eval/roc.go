// Package eval implements the anomaly-detection evaluation used in §4.3:
// ROC curves and the threshold-free AUC-ROC statistic, plus thresholded
// precision/recall metrics and event-based evaluation for the collision
// experiment.
package eval

import (
	"fmt"
	"sort"
)

// ROCPoint is one (false-positive-rate, true-positive-rate) pair.
type ROCPoint struct {
	FPR, TPR  float64
	Threshold float64
}

// AUCROC computes the area under the ROC curve for scores against binary
// labels (true = anomalous). It uses the Mann–Whitney U statistic — the
// probability a random anomalous point outscores a random normal one —
// with midrank handling of ties, so it is exact and O(n log n).
func AUCROC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("eval: %d scores vs %d labels", len(scores), len(labels)))
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	var nPos, nNeg int
	for _, l := range labels {
		if l {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		panic("eval: AUCROC needs both positive and negative labels")
	}

	// Sum of midranks over positives.
	rankSum := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		midrank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if labels[idx[k]] {
				rankSum += midrank
			}
		}
		i = j
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// ROCCurve returns the ROC operating points for all distinct thresholds,
// ordered from (0,0) to (1,1).
func ROCCurve(scores []float64, labels []bool) []ROCPoint {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("eval: %d scores vs %d labels", len(scores), len(labels)))
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Descending by score: lowering the threshold adds points one by one.
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var nPos, nNeg int
	for _, l := range labels {
		if l {
			nPos++
		} else {
			nNeg++
		}
	}
	pts := []ROCPoint{{FPR: 0, TPR: 0, Threshold: scores[idx[0]] + 1}}
	tp, fp := 0, 0
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] {
				tp++
			} else {
				fp++
			}
			j++
		}
		pts = append(pts, ROCPoint{
			FPR:       float64(fp) / float64(nNeg),
			TPR:       float64(tp) / float64(nPos),
			Threshold: scores[idx[i]],
		})
		i = j
	}
	return pts
}

// AUCFromCurve integrates a ROC curve with the trapezoid rule; it agrees
// with AUCROC and exists as an independent cross-check for tests.
func AUCFromCurve(pts []ROCPoint) float64 {
	area := 0.0
	for i := 1; i < len(pts); i++ {
		area += (pts[i].FPR - pts[i-1].FPR) * (pts[i].TPR + pts[i-1].TPR) / 2
	}
	return area
}
