package eval

import (
	"fmt"
	"sort"
)

// Confusion holds thresholded binary-classification counts.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse classifies score > threshold as anomalous and tallies against
// labels.
func Confuse(scores []float64, labels []bool, threshold float64) Confusion {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("eval: %d scores vs %d labels", len(scores), len(labels)))
	}
	var c Confusion
	for i, s := range scores {
		pred := s > threshold
		switch {
		case pred && labels[i]:
			c.TP++
		case pred && !labels[i]:
			c.FP++
		case !pred && labels[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// BestF1 sweeps all distinct score thresholds and returns the best F1 and
// the threshold achieving it.
func BestF1(scores []float64, labels []bool) (f1, threshold float64) {
	uniq := append([]float64(nil), scores...)
	sort.Float64s(uniq)
	uniq = dedup(uniq)
	best, bestThr := 0.0, uniq[0]
	for _, thr := range uniq {
		if f := Confuse(scores, labels, thr).F1(); f > best {
			best, bestThr = f, thr
		}
	}
	return best, bestThr
}

func dedup(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on a sorted copy. Used to derive operating thresholds
// (e.g. the 99th percentile of training scores).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("eval: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("eval: quantile %g outside [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(pos)
	if lo == len(s)-1 {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}
