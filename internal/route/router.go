package route

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"varade/internal/obs"
	"varade/internal/stream"
)

// Config tunes a Router.
type Config struct {
	// DefaultModel is the placement reference for sessions whose Hello
	// names no model (and for CSV sessions, which have no handshake).
	DefaultModel string
	// TTL ages backend registrations: a backend that has not announced
	// within TTL is drained from the ring. Default 5s.
	TTL time.Duration
	// RelayDepth bounds the per-direction frame queue of each proxied
	// session; when the slow side stalls past it, the oldest queued
	// frames are shed and counted (stream.Bus drop accounting). Default
	// 256 frames.
	RelayDepth int
	// DialTimeout bounds one backend connection attempt. Default 2s.
	DialTimeout time.Duration
	// ScrapeTimeout bounds one backend /metrics fetch during
	// aggregation. Default 2s.
	ScrapeTimeout time.Duration
}

// Router is the routing plane: one session listener, a registration
// table, and an HTTP control/observability plane.
type Router struct {
	cfg Config
	reg *obs.Registry
	tab *table

	mu     sync.Mutex
	ln     net.Listener
	ctl    *http.Server
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// placements records the backend each placement key last landed
	// on, for /models.
	placements sync.Map // string -> string

	active         atomic.Int64 // mirrored to the gauge at exposition
	sessionsActive *obs.Gauge
	healthyGauge   *obs.Gauge
	handshakeErrs  *obs.Counter
}

// NewRouter returns a router with an empty backend table.
func NewRouter(cfg Config) *Router {
	if cfg.RelayDepth <= 0 {
		cfg.RelayDepth = 256
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = 2 * time.Second
	}
	reg := obs.NewRegistry()
	return &Router{
		cfg:   cfg,
		reg:   reg,
		tab:   newTable(cfg.TTL),
		conns: make(map[net.Conn]struct{}),
		sessionsActive: reg.Gauge("varade_router_sessions_active",
			"sessions currently proxied"),
		healthyGauge: reg.Gauge("varade_router_backends_healthy",
			"backends currently in the placement ring"),
		handshakeErrs: reg.Counter("varade_router_handshake_errors_total",
			"client handshakes refused before placement"),
	}
}

// Register applies one announcement — the programmatic form of the
// POST /register control endpoint, for in-process fleets.
func (rt *Router) Register(ann Announcement) error {
	if ann.ID == "" {
		return fmt.Errorf("route: announcement without id")
	}
	rt.tab.upsert(ann)
	return nil
}

// Serve starts accepting fleet sessions on addr and returns the bound
// address.
func (rt *Router) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	rt.mu.Lock()
	rt.ln = ln
	rt.mu.Unlock()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			rt.mu.Lock()
			if rt.closed {
				rt.mu.Unlock()
				conn.Close()
				return
			}
			rt.conns[conn] = struct{}{}
			rt.mu.Unlock()
			rt.wg.Add(1)
			go rt.handleConn(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Shutdown stops the control plane and the session listener, severs
// every proxied session, and waits for the relay goroutines to drain
// (bounded by ctx).
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.ShutdownControl(ctx)
	rt.mu.Lock()
	rt.closed = true
	ln := rt.ln
	conns := make([]net.Conn, 0, len(rt.conns))
	for c := range rt.conns {
		conns = append(conns, c)
	}
	rt.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (rt *Router) track(c net.Conn) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return false
	}
	rt.conns[c] = struct{}{}
	return true
}

func (rt *Router) untrack(c net.Conn) {
	rt.mu.Lock()
	delete(rt.conns, c)
	rt.mu.Unlock()
}

// parseRef splits "name", "name@latest", "name@vN" for placement
// canonicalisation only — the backend revalidates with the full rules,
// so a malformed ref simply keys on its raw text.
func parseRef(ref string) (string, int) {
	if i := strings.LastIndex(ref, "@"); i > 0 {
		name, suffix := ref[:i], ref[i+1:]
		if suffix == "latest" {
			return name, 0
		}
		if strings.HasPrefix(suffix, "v") {
			if v, err := strconv.Atoi(suffix[1:]); err == nil && v > 0 {
				return name, v
			}
		}
		return ref, 0
	}
	return ref, 0
}

// placementKey canonicalises a handshake into the ring key
// "name@vN:precision" (floating versions key as @latest so they
// co-batch wherever the registry head moves).
func (rt *Router) placementKey(h stream.Hello) (key, model, prec string) {
	ref := h.Model
	if ref == "" {
		ref = rt.cfg.DefaultModel
	}
	name, ver := parseRef(ref)
	if h.Version > 0 {
		ver = h.Version
	}
	prec = h.GetCaps().Precision
	key = name
	if ver > 0 {
		key += "@v" + strconv.Itoa(ver)
	} else {
		key += "@latest"
	}
	if prec != "" {
		key += ":" + prec
	}
	return key, name, prec
}

// place returns backends to try for a session, in preference order: the
// consistent-hash ring over the per-precision pool (narrowed to
// backends advertising the model when any do), with the top two ring
// candidates swapped if the second is strictly less loaded, then the
// rest of the pool in ring order as dial failover.
func (rt *Router) place(model, prec, key string) []backendView {
	healthy := rt.tab.views(true)
	pool := make([]backendView, 0, len(healthy))
	for _, v := range healthy {
		if supports(v.ann, prec) {
			pool = append(pool, v)
		}
	}
	if len(pool) == 0 {
		// No backend claims the precision: let the most natural backend
		// refuse over the protocol rather than synthesising our own
		// error text for every case.
		pool = healthy
	}
	adv := make([]backendView, 0, len(pool))
	for _, v := range pool {
		if advertises(v.ann, model) {
			adv = append(adv, v)
		}
	}
	if len(adv) > 0 {
		pool = adv
	}
	ids := make([]string, len(pool))
	byID := make(map[string]backendView, len(pool))
	for i, v := range pool {
		ids[i] = v.b.id
		byID[v.b.id] = v
	}
	order := ringLookup(buildRing(ids), key, len(pool))
	out := make([]backendView, 0, len(healthy))
	for _, id := range order {
		out = append(out, byID[id])
	}
	// Least-loaded tie-break with hysteresis: only overrule the ring
	// when the favourite is more than one session busier, so same-key
	// sessions keep co-batching on one backend under balanced load.
	if len(out) >= 2 && out[1].b.load()+1 < out[0].b.load() {
		out[0], out[1] = out[1], out[0]
	}
	for _, v := range healthy {
		if _, inPool := byID[v.b.id]; !inPool {
			out = append(out, v)
		}
	}
	return out
}

// dialFirst walks the candidate list, returning the first backend that
// accepts a connection and marking the ones that refuse as failed.
func (rt *Router) dialFirst(cands []backendView) (*backend, net.Conn) {
	for _, v := range cands {
		c, err := net.DialTimeout("tcp", v.ann.Addr, rt.cfg.DialTimeout)
		if err != nil {
			rt.tab.fail(v.b.id)
			rt.reg.Counter("varade_router_dial_failures_total",
				"backend connection attempts that failed",
				obs.L("backend", v.b.id)).Inc()
			continue
		}
		return v.b, c
	}
	return nil, nil
}

func (rt *Router) handleConn(conn net.Conn) {
	defer rt.wg.Done()
	defer rt.untrack(conn)
	br := bufio.NewReader(conn)
	peek, err := br.Peek(len(stream.FrameMagic))
	if err != nil {
		conn.Close()
		return
	}

	if stream.SniffProto(peek) == 0 {
		rt.proxyCSV(conn, br)
		return
	}

	proto, rawHello, hello, err := stream.ReadHello(br)
	if err != nil {
		rt.handshakeErrs.Inc()
		stream.WriteFrame(conn, stream.FrameError, []byte(err.Error()))
		conn.Close()
		return
	}
	key, model, prec := rt.placementKey(hello)
	bk, bconn := rt.dialFirst(rt.place(model, prec, key))
	if bk == nil {
		rt.handshakeErrs.Inc()
		stream.WriteFrame(conn, stream.FrameError, []byte("route: no healthy backend"))
		conn.Close()
		return
	}
	if !rt.track(bconn) {
		bconn.Close()
		conn.Close()
		return
	}
	defer rt.untrack(bconn)
	rt.placements.Store(key, bk.id)

	// Replay the handshake verbatim, then rewrite the v2 Welcome to
	// name the chosen backend. v1 Welcomes pass through byte-identical.
	magic := stream.FrameMagic
	if proto >= stream.ProtoV2 {
		magic = stream.FrameMagicV2
	}
	bw := bufio.NewWriter(bconn)
	bbr := bufio.NewReader(bconn)
	if _, err := bw.WriteString(magic); err == nil {
		err = stream.WriteFrame(bw, stream.FrameHello, rawHello)
	}
	if err == nil {
		err = bw.Flush()
	}
	var replyT stream.FrameType
	var reply []byte
	if err == nil {
		replyT, reply, err = stream.ReadFrame(bbr)
	}
	if err != nil {
		rt.tab.fail(bk.id)
		rt.handshakeErrs.Inc()
		stream.WriteFrame(conn, stream.FrameError, []byte("route: backend handshake failed"))
		conn.Close()
		bconn.Close()
		return
	}
	if replyT == stream.FrameWelcome && proto >= stream.ProtoV2 {
		var w stream.Welcome
		if jerr := json.Unmarshal(reply, &w); jerr == nil {
			w.Backend = bk.id
			err = stream.WriteJSONFrame(conn, stream.FrameWelcome, w)
		} else {
			err = stream.WriteFrame(conn, replyT, reply)
		}
	} else {
		err = stream.WriteFrame(conn, replyT, reply)
	}
	if err != nil || replyT != stream.FrameWelcome {
		conn.Close()
		bconn.Close()
		return
	}

	protoLabel := "v1"
	if proto >= stream.ProtoV2 {
		protoLabel = "v2"
	}
	rt.beginSession(bk, protoLabel)
	rt.relaySession(conn, br, bconn, bbr)
	rt.endSession(bk)
}

func (rt *Router) beginSession(bk *backend, protoLabel string) {
	bk.inflight.Add(1)
	bk.proxied.Add(1)
	rt.active.Add(1)
	rt.reg.Counter("varade_router_sessions_total", "sessions proxied",
		obs.L("proto", protoLabel)).Inc()
	rt.reg.Counter("varade_router_backend_sessions_total",
		"sessions placed per backend", obs.L("backend", bk.id)).Inc()
}

func (rt *Router) endSession(bk *backend) {
	bk.inflight.Add(-1)
	rt.active.Add(-1)
}

// relayFrame is one buffered frame in a relay direction.
type relayFrame struct {
	t       stream.FrameType
	payload []byte
}

// relaySession pumps frames both ways until the session tears down,
// then returns with both connections closed. Each direction is a
// bounded stream.Bus: when the receiving side stalls past RelayDepth
// frames, the oldest queued frames are shed and counted — terminal
// frames (Bye, Error) are always the newest, so teardown survives
// shedding.
func (rt *Router) relaySession(client net.Conn, cbr *bufio.Reader, bconn net.Conn, bbr *bufio.Reader) {
	var wg sync.WaitGroup
	rt.pump(&wg, cbr, bconn, "client_to_backend", func() {
		// Half-close toward the backend so it still flushes the tail
		// scores of a client that sent Bye and closed.
		closeWrite(bconn)
	})
	rt.pump(&wg, bbr, client, "backend_to_client", func() {
		// The backend closing ends the session outright.
		client.Close()
	})
	wg.Wait()
	client.Close()
	bconn.Close()
}

// pump relays one direction src→dst through a bounded bus. Two
// goroutines: the reader publishes (dropping oldest under
// backpressure), the writer drains with batched flushes. onSrcDone runs
// after the queue has drained following src's EOF or error.
func (rt *Router) pump(wg *sync.WaitGroup, src *bufio.Reader, dst net.Conn, dir string, onSrcDone func()) {
	drops := rt.reg.Counter("varade_router_relay_dropped_frames_total",
		"relayed frames shed because a session side stalled past the bounded queue",
		obs.L("dir", dir))
	bus := stream.NewBus[relayFrame]()
	bus.SetDropCounter(drops)
	sub := bus.Subscribe(rt.cfg.RelayDepth)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			t, payload, err := stream.ReadFrame(src)
			if err != nil {
				bus.Close()
				return
			}
			bus.Publish(relayFrame{t: t, payload: payload})
		}
	}()
	go func() {
		defer wg.Done()
		bw := bufio.NewWriter(dst)
		for f := range sub {
			if err := stream.WriteFrame(bw, f.t, f.payload); err != nil {
				break
			}
			if len(sub) == 0 {
				if err := bw.Flush(); err != nil {
					break
				}
			}
		}
		bw.Flush()
		onSrcDone()
	}()
}

// proxyCSV relays a CSV line session (no handshake to decode) to the
// default placement as a raw byte stream — the line protocol has its
// own flow control (one line per sample), so plain copies with the
// kernel's socket backpressure suffice.
func (rt *Router) proxyCSV(conn net.Conn, br *bufio.Reader) {
	key, model, prec := rt.placementKey(stream.Hello{})
	bk, bconn := rt.dialFirst(rt.place(model, prec, key))
	if bk == nil {
		conn.Close()
		return
	}
	if !rt.track(bconn) {
		bconn.Close()
		conn.Close()
		return
	}
	defer rt.untrack(bconn)
	rt.placements.Store(key, bk.id)
	rt.beginSession(bk, "csv")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		io.Copy(bconn, br)
		closeWrite(bconn)
	}()
	go func() {
		defer wg.Done()
		io.Copy(conn, bconn)
		conn.Close()
	}()
	wg.Wait()
	conn.Close()
	bconn.Close()
	rt.endSession(bk)
}

// closeWrite half-closes the write side when the transport supports it
// (TCP does), else closes outright.
func closeWrite(c net.Conn) {
	type cw interface{ CloseWrite() error }
	if t, ok := c.(cw); ok {
		t.CloseWrite()
		return
	}
	c.Close()
}
