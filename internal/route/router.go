package route

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"varade/internal/obs"
	"varade/internal/stream"
)

// Config tunes a Router.
type Config struct {
	// DefaultModel is the placement reference for sessions whose Hello
	// names no model (and for CSV sessions, which have no handshake).
	DefaultModel string
	// TTL ages backend registrations: a backend that has not announced
	// within TTL is drained from the ring. Default 5s.
	TTL time.Duration
	// RelayDepth bounds the per-direction frame queue of each proxied
	// session; when the slow side stalls past it, the oldest queued
	// frames are shed and counted (stream.Bus drop accounting). Default
	// 256 frames.
	RelayDepth int
	// DialTimeout bounds one backend connection attempt. Default 2s.
	DialTimeout time.Duration
	// ScrapeTimeout bounds one backend /metrics fetch during
	// aggregation. Default 2s.
	ScrapeTimeout time.Duration
	// HandoffDeadline bounds one session hand-off: how long a live
	// session may retry re-placement after its backend dies before the
	// client gets a reasoned Bye. Default 10s.
	HandoffDeadline time.Duration
	// AdmissionWait bounds how long a *new* session may wait in the
	// admission queue for a healthy backend before being refused
	// (instead of the pre-handoff instant refusal). Default 5s.
	AdmissionWait time.Duration
	// RedialBackoff is the base of the capped exponential backoff
	// (base<<min(attempt−1,5), ±50% jitter) between re-placement
	// attempts. Default 25ms.
	RedialBackoff time.Duration
	// ReplayExtra sizes the replay ring beyond the w−1 rows a window
	// boundary needs: the extra rows make a warmed backend re-score the
	// most recent windows, recovering scores lost in flight at the kill
	// instant (already-delivered ones are suppressed as duplicates).
	// Default 32 rows.
	ReplayExtra int
	// AdmissionQueue caps how many sessions may wait for a backend at
	// once (initial placement + hand-offs); past it, sessions are
	// refused immediately. Default 256.
	AdmissionQueue int
	// ReloadTimeout bounds one backend's POST /reload during router-side
	// reload orchestration. Default 10s.
	ReloadTimeout time.Duration
	// MonitorInterval paces the health sweep that nudges sessions off
	// TTL-expired or draining backends. Default min(TTL/4, 500ms).
	MonitorInterval time.Duration
	// JitterSeed seeds the backoff jitter stream; 0 seeds from the
	// clock. Tests pin it for reproducible hand-off schedules.
	JitterSeed int64
}

// Router is the routing plane: one session listener, a registration
// table, and an HTTP control/observability plane.
type Router struct {
	cfg Config
	reg *obs.Registry
	tab *table

	mu       sync.Mutex
	ln       net.Listener
	ctl      *http.Server
	conns    map[net.Conn]struct{}
	sessions map[*hsession]struct{} // live framed sessions, for the health sweep
	closed   bool
	wg       sync.WaitGroup
	stopCh   chan struct{}

	// placements records the backend each placement key last landed
	// on, for /models.
	placements sync.Map // string -> string

	// admitQ is the bounded admission queue: a slot is held while a
	// session waits for a healthy backend (initial placement or
	// hand-off re-placement).
	admitQ chan struct{}

	// rng drives the backoff jitter, seeded for reproducible tests.
	rngMu sync.Mutex
	rng   *rand.Rand

	active           atomic.Int64 // mirrored to the gauge at exposition
	handoffAll       atomic.Int64 // hand-offs across all reasons, for HandoffStats
	sessionsActive   *obs.Gauge
	healthyGauge     *obs.Gauge
	handshakeErrs    *obs.Counter
	replaySuppressed *obs.Counter
	handoffLatency   *obs.Histogram
	redialBackoff    *obs.Histogram
}

// NewRouter returns a router with an empty backend table.
func NewRouter(cfg Config) *Router {
	if cfg.RelayDepth <= 0 {
		cfg.RelayDepth = 256
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = 2 * time.Second
	}
	if cfg.HandoffDeadline <= 0 {
		cfg.HandoffDeadline = 10 * time.Second
	}
	if cfg.AdmissionWait <= 0 {
		cfg.AdmissionWait = 5 * time.Second
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = 25 * time.Millisecond
	}
	if cfg.ReplayExtra <= 0 {
		cfg.ReplayExtra = 32
	}
	if cfg.AdmissionQueue <= 0 {
		cfg.AdmissionQueue = 256
	}
	if cfg.ReloadTimeout <= 0 {
		cfg.ReloadTimeout = 10 * time.Second
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	reg := obs.NewRegistry()
	return &Router{
		cfg:      cfg,
		reg:      reg,
		tab:      newTable(cfg.TTL),
		conns:    make(map[net.Conn]struct{}),
		sessions: make(map[*hsession]struct{}),
		stopCh:   make(chan struct{}),
		admitQ:   make(chan struct{}, cfg.AdmissionQueue),
		rng:      rand.New(rand.NewSource(seed)),
		sessionsActive: reg.Gauge("varade_router_sessions_active",
			"sessions currently proxied"),
		healthyGauge: reg.Gauge("varade_router_backends_healthy",
			"backends currently in the placement ring"),
		handshakeErrs: reg.Counter("varade_router_handshake_errors_total",
			"client handshakes refused before placement"),
		replaySuppressed: reg.Counter("varade_router_replay_suppressed_scores_total",
			"duplicate warmup scores suppressed after a hand-off replay"),
		handoffLatency: reg.Histogram("varade_router_handoff_latency_ns",
			"backend-death detection to warmed-replacement latency"),
		redialBackoff: reg.Histogram("varade_router_redial_backoff_ns",
			"backoff delays slept between re-placement dial attempts"),
	}
}

// Register applies one announcement — the programmatic form of the
// POST /register control endpoint, for in-process fleets.
func (rt *Router) Register(ann Announcement) error {
	if ann.ID == "" {
		return fmt.Errorf("route: announcement without id")
	}
	rt.tab.upsert(ann)
	return nil
}

// Serve starts accepting fleet sessions on addr and returns the bound
// address.
func (rt *Router) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	rt.mu.Lock()
	rt.ln = ln
	rt.mu.Unlock()
	rt.wg.Add(1)
	go rt.monitor()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			rt.mu.Lock()
			if rt.closed {
				rt.mu.Unlock()
				conn.Close()
				return
			}
			rt.conns[conn] = struct{}{}
			rt.mu.Unlock()
			rt.wg.Add(1)
			go rt.handleConn(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Shutdown stops the control plane and the session listener, severs
// every proxied session, and waits for the relay goroutines to drain
// (bounded by ctx).
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.ShutdownControl(ctx)
	rt.mu.Lock()
	var alreadyClosed bool
	alreadyClosed, rt.closed = rt.closed, true
	ln := rt.ln
	conns := make([]net.Conn, 0, len(rt.conns))
	for c := range rt.conns {
		conns = append(conns, c)
	}
	rt.mu.Unlock()
	if !alreadyClosed {
		close(rt.stopCh) // aborts hand-off backoff sleeps and the monitor
	}
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (rt *Router) track(c net.Conn) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return false
	}
	rt.conns[c] = struct{}{}
	return true
}

func (rt *Router) untrack(c net.Conn) {
	rt.mu.Lock()
	delete(rt.conns, c)
	rt.mu.Unlock()
}

// parseRef splits "name", "name@latest", "name@vN" for placement
// canonicalisation only — the backend revalidates with the full rules,
// so a malformed ref simply keys on its raw text.
func parseRef(ref string) (string, int) {
	if i := strings.LastIndex(ref, "@"); i > 0 {
		name, suffix := ref[:i], ref[i+1:]
		if suffix == "latest" {
			return name, 0
		}
		if strings.HasPrefix(suffix, "v") {
			if v, err := strconv.Atoi(suffix[1:]); err == nil && v > 0 {
				return name, v
			}
		}
		return ref, 0
	}
	return ref, 0
}

// placementKey canonicalises a handshake into the ring key
// "name@vN:precision" (floating versions key as @latest so they
// co-batch wherever the registry head moves).
func (rt *Router) placementKey(h stream.Hello) (key, model, prec string) {
	ref := h.Model
	if ref == "" {
		ref = rt.cfg.DefaultModel
	}
	name, ver := parseRef(ref)
	if h.Version > 0 {
		ver = h.Version
	}
	prec = h.GetCaps().Precision
	key = name
	if ver > 0 {
		key += "@v" + strconv.Itoa(ver)
	} else {
		key += "@latest"
	}
	if prec != "" {
		key += ":" + prec
	}
	return key, name, prec
}

// place returns backends to try for a session, in preference order: the
// consistent-hash ring over the per-precision pool (narrowed to
// backends advertising the model when any do), with the top two ring
// candidates swapped if the second is strictly less loaded, then the
// rest of the pool in ring order as dial failover.
func (rt *Router) place(model, prec, key string) []backendView {
	healthy := rt.tab.views(true)
	pool := make([]backendView, 0, len(healthy))
	for _, v := range healthy {
		if supports(v.ann, prec) {
			pool = append(pool, v)
		}
	}
	if len(pool) == 0 {
		// No backend claims the precision: let the most natural backend
		// refuse over the protocol rather than synthesising our own
		// error text for every case.
		pool = healthy
	}
	adv := make([]backendView, 0, len(pool))
	for _, v := range pool {
		if advertises(v.ann, model) {
			adv = append(adv, v)
		}
	}
	if len(adv) > 0 {
		pool = adv
	}
	ids := make([]string, len(pool))
	byID := make(map[string]backendView, len(pool))
	for i, v := range pool {
		ids[i] = v.b.id
		byID[v.b.id] = v
	}
	order := ringLookup(buildRing(ids), key, len(pool))
	out := make([]backendView, 0, len(healthy))
	for _, id := range order {
		out = append(out, byID[id])
	}
	// Least-loaded tie-break with hysteresis: only overrule the ring
	// when the favourite is more than one session busier, so same-key
	// sessions keep co-batching on one backend under balanced load.
	if len(out) >= 2 && out[1].b.load()+1 < out[0].b.load() {
		out[0], out[1] = out[1], out[0]
	}
	for _, v := range healthy {
		if _, inPool := byID[v.b.id]; !inPool {
			out = append(out, v)
		}
	}
	return out
}

// dialFirst walks the candidate list, returning the first backend that
// accepts a connection and marking the ones that refuse as failed.
func (rt *Router) dialFirst(cands []backendView) (*backend, net.Conn) {
	for _, v := range cands {
		c, err := net.DialTimeout("tcp", v.ann.Addr, rt.cfg.DialTimeout)
		if err != nil {
			rt.tab.fail(v.b.id)
			rt.reg.Counter("varade_router_dial_failures_total",
				"backend connection attempts that failed",
				obs.L("backend", v.b.id)).Inc()
			continue
		}
		return v.b, c
	}
	return nil, nil
}

func (rt *Router) handleConn(conn net.Conn) {
	defer rt.wg.Done()
	defer rt.untrack(conn)
	br := bufio.NewReader(conn)
	peek, err := br.Peek(len(stream.FrameMagic))
	if err != nil {
		conn.Close()
		return
	}

	if stream.SniffProto(peek) == 0 {
		rt.proxyCSV(conn, br)
		return
	}

	proto, rawHello, hello, err := stream.ReadHello(br)
	if err != nil {
		rt.handshakeErrs.Inc()
		stream.WriteFrame(conn, stream.FrameError, []byte(err.Error()))
		conn.Close()
		return
	}
	key, model, prec := rt.placementKey(hello)
	s := rt.newHSession(conn, br, proto, rawHello, key, model, prec)

	// Initial placement runs through the same dial-retry loop as a
	// hand-off (bounded admission queue, backoff, deadline), so an
	// empty pool parks the session instead of refusing instantly.
	link, replyT, reply, aerr := s.acquireBackend(time.Now().Add(rt.cfg.AdmissionWait), false)
	if aerr != nil {
		rt.handshakeErrs.Inc()
		rt.refuseClient(conn, proto, "route: no healthy backend: "+aerr.Error())
		conn.Close()
		return
	}
	rt.placements.Store(key, link.bk.id)

	// Forward the backend's reply, rewriting a v2 Welcome to name the
	// chosen backend. v1 Welcomes pass through byte-identical. The
	// parsed Welcome also sizes the session's replay ring (window and
	// channel geometry).
	var w stream.Welcome
	parsed := replyT == stream.FrameWelcome && json.Unmarshal(reply, &w) == nil
	var werr error
	if parsed && proto >= stream.ProtoV2 {
		w.Backend = link.bk.id
		werr = stream.WriteJSONFrame(conn, stream.FrameWelcome, w)
	} else {
		werr = stream.WriteFrame(conn, replyT, reply)
	}
	if werr != nil || replyT != stream.FrameWelcome {
		conn.Close()
		link.conn.Close()
		rt.untrack(link.conn)
		return
	}
	if parsed {
		s.setGeometry(w)
	}

	rt.beginSession(link.bk, s.protoLabel)
	rt.addSession(s)
	s.run(link)
	rt.removeSession(s)
}

// refuseClient tells a client why its session cannot start: a reasoned
// Bye on v2 (machine-readable), a terminal Error on v1.
func (rt *Router) refuseClient(conn net.Conn, proto int, reason string) {
	if proto >= stream.ProtoV2 {
		stream.WriteFrame(conn, stream.FrameBye, stream.EncodeByePayload(stream.Bye{Reason: reason}))
		return
	}
	stream.WriteFrame(conn, stream.FrameError, []byte(reason))
}

func (rt *Router) addSession(s *hsession) {
	rt.mu.Lock()
	rt.sessions[s] = struct{}{}
	rt.mu.Unlock()
}

func (rt *Router) removeSession(s *hsession) {
	rt.mu.Lock()
	delete(rt.sessions, s)
	rt.mu.Unlock()
}

// monitor is the proactive half of failure detection: a periodic sweep
// that nudges live sessions off backends that have left the health
// plane (heartbeat TTL expiry, Draining announcement) without waiting
// for their TCP connections to die — a hung backend can hold a socket
// open long past its last heartbeat.
func (rt *Router) monitor() {
	defer rt.wg.Done()
	iv := rt.cfg.MonitorInterval
	if iv <= 0 {
		iv = rt.tab.ttl / 4
		if iv > 500*time.Millisecond {
			iv = 500 * time.Millisecond
		}
		if iv < 10*time.Millisecond {
			iv = 10 * time.Millisecond
		}
	}
	tick := time.NewTicker(iv)
	defer tick.Stop()
	for {
		select {
		case <-rt.stopCh:
			return
		case <-tick.C:
			rt.sweepSessions()
		}
	}
}

func (rt *Router) sweepSessions() {
	type health struct {
		draining bool
		expired  bool
	}
	cutoff := time.Now().Add(-rt.tab.ttl)
	state := make(map[string]health)
	for _, v := range rt.tab.views(false) {
		state[v.b.id] = health{draining: v.draining, expired: !v.lastSeen.After(cutoff)}
	}
	rt.mu.Lock()
	sessions := make([]*hsession, 0, len(rt.sessions))
	for s := range rt.sessions {
		sessions = append(sessions, s)
	}
	rt.mu.Unlock()
	for _, s := range sessions {
		l := s.currentLink()
		if l == nil {
			continue
		}
		h, known := state[l.bk.id]
		switch {
		case known && h.draining:
			s.nudge(reasonDrain)
		case known && h.expired:
			s.nudge(reasonTTLExpired)
		}
	}
}

func (rt *Router) beginSession(bk *backend, protoLabel string) {
	bk.inflight.Add(1)
	bk.proxied.Add(1)
	rt.active.Add(1)
	rt.reg.Counter("varade_router_sessions_total", "sessions proxied",
		obs.L("proto", protoLabel)).Inc()
	rt.reg.Counter("varade_router_backend_sessions_total",
		"sessions placed per backend", obs.L("backend", bk.id)).Inc()
}

func (rt *Router) endSession(bk *backend) {
	bk.inflight.Add(-1)
	rt.active.Add(-1)
}

// moveSession shifts a live session's placement accounting from a dead
// backend to its hand-off replacement — the session itself (rt.active,
// sessions_total) is unchanged, it just lives somewhere else now.
func (rt *Router) moveSession(old, new *backend) {
	old.inflight.Add(-1)
	new.inflight.Add(1)
	new.proxied.Add(1)
	rt.reg.Counter("varade_router_backend_sessions_total",
		"sessions placed per backend", obs.L("backend", new.id)).Inc()
}

// relayDrops is the per-direction shed counter relay queues attach to.
func (rt *Router) relayDrops(dir string) *obs.Counter {
	return rt.reg.Counter("varade_router_relay_dropped_frames_total",
		"relayed frames shed because a session side stalled past the bounded queue",
		obs.L("dir", dir))
}

// handoffCounter names one hand-off outcome family by reason.
func (rt *Router) handoffCounter(name, help, reason string) *obs.Counter {
	return rt.reg.Counter(name, help, obs.L("reason", reason))
}

// jitter returns a uniform value in [0, n) from the router's seeded
// stream — the randomness under backoffDelay.
func (rt *Router) jitter(n int64) int64 {
	if n <= 0 {
		return 0
	}
	rt.rngMu.Lock()
	defer rt.rngMu.Unlock()
	return rt.rng.Int63n(n)
}

// admitAcquire claims an admission-queue slot; false means the queue is
// full and the session should be refused rather than parked.
func (rt *Router) admitAcquire() bool {
	select {
	case rt.admitQ <- struct{}{}:
		return true
	default:
		return false
	}
}

func (rt *Router) admitRelease() { <-rt.admitQ }

// HandoffStats reports the hand-off plane's aggregates: total hand-offs
// across all reasons and the detection-to-warmed latency p50/p99 in
// nanoseconds.
func (rt *Router) HandoffStats() (total, p50ns, p99ns int64) {
	return rt.handoffAll.Load(), rt.handoffLatency.Quantile(0.5), rt.handoffLatency.Quantile(0.99)
}

// relayFrame is one buffered frame in a relay direction.
type relayFrame struct {
	t       stream.FrameType
	payload []byte
}

// proxyCSV relays a CSV line session (no handshake to decode) to the
// default placement as a raw byte stream — the line protocol has its
// own flow control (one line per sample), so plain copies with the
// kernel's socket backpressure suffice.
func (rt *Router) proxyCSV(conn net.Conn, br *bufio.Reader) {
	key, model, prec := rt.placementKey(stream.Hello{})
	bk, bconn := rt.dialFirst(rt.place(model, prec, key))
	if bk == nil {
		conn.Close()
		return
	}
	if !rt.track(bconn) {
		bconn.Close()
		conn.Close()
		return
	}
	defer rt.untrack(bconn)
	rt.placements.Store(key, bk.id)
	rt.beginSession(bk, "csv")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		io.Copy(bconn, br)
		closeWrite(bconn)
	}()
	go func() {
		defer wg.Done()
		io.Copy(conn, bconn)
		conn.Close()
	}()
	wg.Wait()
	conn.Close()
	bconn.Close()
	rt.endSession(bk)
}

// closeWrite half-closes the write side when the transport supports it
// (TCP does), else closes outright.
func closeWrite(c net.Conn) {
	type cw interface{ CloseWrite() error }
	if t, ok := c.(cw); ok {
		t.CloseWrite()
		return
	}
	c.Close()
}
