package route

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// backend is the router's record of one announced serving process.
// Announced fields are guarded by the owning table's mutex; the session
// counters are atomics so the proxy path never takes the table lock
// per frame.
type backend struct {
	id string

	// Guarded by table.mu.
	ann      Announcement
	lastSeen time.Time
	failed   bool // a dial failed after the last announcement
	draining bool

	// inflight is the router's own live proxied-session count; proxied
	// counts sessions ever placed here. annLive and annInflight snapshot
	// the backend's self-reported session count and our own inflight at
	// the last announcement so load() can combine the backend's report
	// with placements the report hasn't seen yet — atomics, not ann
	// fields, because load() runs on the placement path without the
	// table lock.
	inflight    atomic.Int64
	proxied     atomic.Int64
	annLive     atomic.Int64
	annInflight atomic.Int64
}

// load estimates the backend's live-session count: the last
// backend-reported figure plus the sessions this router has placed (or
// torn down) since that report.
func (b *backend) load() int64 {
	l := b.annLive.Load() + b.inflight.Load() - b.annInflight.Load()
	if l < 0 {
		l = 0
	}
	return l
}

// table is the registration/health plane: the live backend set, aged by
// announcement TTL.
type table struct {
	mu  sync.Mutex
	ttl time.Duration
	now func() time.Time // test hook

	backends map[string]*backend
}

func newTable(ttl time.Duration) *table {
	if ttl <= 0 {
		ttl = 5 * time.Second
	}
	return &table{ttl: ttl, now: time.Now, backends: make(map[string]*backend)}
}

// upsert applies one announcement: registration, heartbeat refresh, or
// (Draining) graceful de-registration. A fresh announcement clears a
// dial-failure mark — the backend is telling us it is back.
func (t *table) upsert(ann Announcement) *backend {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.backends[ann.ID]
	if b == nil {
		b = &backend{id: ann.ID}
		t.backends[ann.ID] = b
	}
	b.ann = ann
	b.lastSeen = t.now()
	b.failed = false
	b.draining = ann.Draining
	b.annLive.Store(int64(ann.LiveSessions))
	b.annInflight.Store(b.inflight.Load())
	return b
}

// fail marks a backend unreachable (a session dial failed). It stays
// out of the ring until its next announcement proves it back.
func (t *table) fail(id string) {
	t.mu.Lock()
	if b := t.backends[id]; b != nil {
		b.failed = true
	}
	t.mu.Unlock()
}

// backendView is a consistent read of one backend: the record pointer
// (for the atomic session counters) plus copies of the mutex-guarded
// announcement and health flags, valid at snapshot time.
type backendView struct {
	b        *backend
	ann      Announcement
	healthy  bool
	draining bool
	failed   bool
	lastSeen time.Time
}

// views snapshots the table, sorted by id for deterministic rings. With
// onlyHealthy set, it returns just the placeable backends: announced
// within TTL, not draining, not dial-failed.
func (t *table) views(onlyHealthy bool) []backendView {
	t.mu.Lock()
	defer t.mu.Unlock()
	cutoff := t.now().Add(-t.ttl)
	out := make([]backendView, 0, len(t.backends))
	for _, b := range t.backends {
		v := backendView{
			b:        b,
			ann:      b.ann,
			draining: b.draining,
			failed:   b.failed,
			lastSeen: b.lastSeen,
		}
		v.healthy = !b.failed && !b.draining && b.lastSeen.After(cutoff)
		if onlyHealthy && !v.healthy {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].b.id < out[j].b.id })
	return out
}

// supports reports whether the backend's announcement covers a serving
// precision ("" — the model file's own precision — is always
// serveable).
func supports(ann Announcement, prec string) bool {
	if prec == "" || len(ann.Precisions) == 0 {
		return true
	}
	for _, p := range ann.Precisions {
		if p == prec {
			return true
		}
	}
	return false
}

// advertises reports whether the backend announces the named model (an
// empty model list means "ask me anything": the backend did not
// enumerate).
func advertises(ann Announcement, model string) bool {
	if model == "" || len(ann.Models) == 0 {
		return true
	}
	for _, m := range ann.Models {
		if m.Name == model {
			return true
		}
	}
	return false
}
