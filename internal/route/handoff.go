package route

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"varade/internal/stream"
)

// The hand-off plane makes backend failure invisible to clients: the
// router already holds each session's Hello, so when a backend dies
// mid-session (relay EOF, write error, heartbeat TTL expiry, or a
// Draining announcement) the session is re-placed on the ring-order
// survivor, the Hello replayed, and the new backend warmed from a
// bounded replay ring of the client's most recent sample rows.
//
// Score continuity is an index-accounting exercise. Backends number
// scores by session-local sample index starting at zero, so after a
// hand-off the router rewrites each score index by the new backend's
// base offset (rows delivered before the replay ring's oldest row) and
// suppresses warmup duplicates — replayed windows whose scores the
// client already has — with a monotonic high-water mark. Because the
// ring keeps ReplayExtra rows beyond the w−1 a window needs, the new
// backend re-scores the last few windows: already-forwarded ones are
// suppressed, while windows lost in flight at the kill instant are
// recovered, shrinking the client-visible gap. Scores that do flow are
// bit-identical to an unbroken run (both backends serve the same model
// bytes and the scorer is deterministic).
//
// Hand-off reasons, as exposed in varade_router_handoff_total{reason}.
const (
	reasonBackendEOF = "backend_eof"
	reasonWriteError = "write_error"
	reasonTTLExpired = "ttl_expired"
	reasonDrain      = "drain"
)

// maxByeRetries bounds how many times a session re-delivers its Bye to
// a fresh backend when the previous one closed without settling the
// score stream. The bound only matters when a backend legitimately shed
// scores under backpressure (so the gap is unfillable); one warm
// hand-off otherwise settles every recoverable window.
const maxByeRetries = 2

// replayRing keeps the newest rows of a session's sample stream as raw
// wire bytes (channels×8 each, the Samples payload row encoding) in one
// flat buffer, bounded at capRows.
type replayRing struct {
	buf      []byte
	rowBytes int
	capRows  int
	next     int
	n        int
}

func newReplayRing(capRows, rowBytes int) *replayRing {
	if capRows < 1 {
		capRows = 1
	}
	return &replayRing{
		buf:      make([]byte, capRows*rowBytes),
		rowBytes: rowBytes,
		capRows:  capRows,
	}
}

func (r *replayRing) push(row []byte) {
	copy(r.buf[r.next*r.rowBytes:], row)
	r.next = (r.next + 1) % r.capRows
	if r.n < r.capRows {
		r.n++
	}
}

func (r *replayRing) len() int { return r.n }

// payload renders the ring's rows, oldest first, as one Samples frame
// payload (nil when empty).
func (r *replayRing) payload() []byte {
	if r.n == 0 {
		return nil
	}
	out := make([]byte, 4, 4+r.n*r.rowBytes)
	binary.LittleEndian.PutUint32(out, uint32(r.n))
	start := (r.next - r.n + r.capRows) % r.capRows
	for i := 0; i < r.n; i++ {
		j := (start + i) % r.capRows
		out = append(out, r.buf[j*r.rowBytes:(j+1)*r.rowBytes]...)
	}
	return out
}

// backoffDelay is the capped exponential redial backoff with ±50%
// jitter: base<<min(attempt−1,5), jittered to [d/2, 3d/2).
func backoffDelay(base time.Duration, attempt int, jitter func(int64) int64) time.Duration {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 5 {
		shift = 5
	}
	d := base << shift
	return d/2 + time.Duration(jitter(int64(d)))
}

// backendLink is one live backend connection of a proxied session.
type backendLink struct {
	bk   *backend
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// base maps the backend's session-local sample indices into the
	// client's: client index = backend index + base. Fixed at link
	// creation (rows delivered before the replayed ring's oldest row).
	base int64
	// readerDone closes when this link's backendReader has exited —
	// the hand-off barrier that keeps score order intact.
	readerDone chan struct{}
	// terminal records that the reader relayed a FrameError: the
	// session ended by protocol, not by failure.
	terminal atomic.Bool
}

// hsession is the per-session hand-off state machine. Four goroutines:
// clientReader feeds the toBackend bus, the manager owns the backend
// link (delivery, failure detection, re-placement), one backendReader
// per link feeds the toClient bus, and clientWriter drains it. Between
// links the manager waits for the old reader to exit before starting
// the next, so score order and the suppression high-water mark stay
// single-threaded without locks on the hot path.
type hsession struct {
	rt         *Router
	proto      int
	protoLabel string
	rawHello   []byte
	key        string
	model      string
	prec       string

	client net.Conn
	cbr    *bufio.Reader

	window   int
	rowBytes int

	ring      *replayRing
	delivered int64 // rows consumed from the client and committed to a backend
	lastScore int64 // highest client-space score index relayed; -1 before any
	rewrites  bool  // a hand-off happened: Scores frames need index rewriting

	toBackend *stream.Bus[relayFrame]
	bsub      <-chan relayFrame
	toClient  *stream.Bus[relayFrame]
	csub      <-chan relayFrame

	// mu guards the monitor-facing view: the current link and a nudge
	// reason set before the monitor severs it.
	mu          sync.Mutex
	link        *backendLink
	nudgeReason string
}

func (rt *Router) newHSession(client net.Conn, cbr *bufio.Reader, proto int, rawHello []byte, key, model, prec string) *hsession {
	s := &hsession{
		rt:         rt,
		proto:      proto,
		protoLabel: "v1",
		rawHello:   rawHello,
		key:        key,
		model:      model,
		prec:       prec,
		client:     client,
		cbr:        cbr,
		lastScore:  -1,
		toBackend:  stream.NewBus[relayFrame](),
		toClient:   stream.NewBus[relayFrame](),
	}
	if proto >= stream.ProtoV2 {
		s.protoLabel = "v2"
	}
	s.toBackend.SetDropCounter(rt.relayDrops("client_to_backend"))
	s.toClient.SetDropCounter(rt.relayDrops("backend_to_client"))
	s.bsub = s.toBackend.Subscribe(rt.cfg.RelayDepth)
	s.csub = s.toClient.Subscribe(rt.cfg.RelayDepth)
	return s
}

// setGeometry sizes the replay ring from the backend's Welcome: w−1
// rows warm a window boundary exactly, ReplayExtra more make the new
// backend re-score the most recent windows so scores lost in flight at
// the kill instant are recovered (the already-delivered ones are
// suppressed as duplicates).
func (s *hsession) setGeometry(w stream.Welcome) {
	s.window = w.Window
	if w.Channels <= 0 {
		return
	}
	s.rowBytes = w.Channels * 8
	warm := s.window - 1
	if warm < 0 {
		warm = 0
	}
	s.ring = newReplayRing(warm+s.rt.cfg.ReplayExtra, s.rowBytes)
}

// currentLink returns the monitor-facing view of the session's link.
func (s *hsession) currentLink() *backendLink {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.link
}

func (s *hsession) setLink(l *backendLink) {
	s.mu.Lock()
	s.link = l
	s.mu.Unlock()
}

// nudge severs the current backend link with a named reason — the
// health monitor's lever for TTL-expired and draining backends. The
// manager observes the reader exit and runs the normal failover path.
func (s *hsession) nudge(reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.link != nil && s.nudgeReason == "" {
		s.nudgeReason = reason
		s.link.conn.Close()
	}
}

func (s *hsession) takeNudge() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.nudgeReason
	s.nudgeReason = ""
	return r
}

// run drives the session to completion: both client-side pumps plus the
// manager. It returns with every session goroutine exited and both
// connections closed.
func (s *hsession) run(first *backendLink) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.clientReader()
	}()
	go func() {
		defer wg.Done()
		s.clientWriter()
	}()
	s.manage(first)
	// manage has closed the toClient bus on every return path, so
	// clientWriter finishes flushing the tail frames and then closes the
	// client connection — which in turn unblocks clientReader. Closing
	// the connection here instead would race the writer out of the last
	// score batch.
	wg.Wait()
}

func (s *hsession) clientReader() {
	for {
		t, payload, err := stream.ReadFrame(s.cbr)
		if err != nil {
			s.toBackend.Close()
			return
		}
		s.toBackend.Publish(relayFrame{t: t, payload: payload})
	}
}

func (s *hsession) clientWriter() {
	bw := bufio.NewWriter(s.client)
	for f := range s.csub {
		if err := stream.WriteFrame(bw, f.t, f.payload); err != nil {
			break
		}
		if len(s.csub) == 0 {
			if err := bw.Flush(); err != nil {
				break
			}
		}
	}
	bw.Flush()
	s.client.Close()
}

// backendReader relays one link's frames to the client, rewriting score
// indices into client space and suppressing warmup duplicates after a
// hand-off. It exits when the link's connection dies or cleanly closes.
func (s *hsession) backendReader(l *backendLink) {
	defer close(l.readerDone)
	for {
		t, payload, err := stream.ReadFrame(l.br)
		if err != nil {
			return
		}
		switch t {
		case stream.FrameScores:
			if payload = s.rewriteScores(l, payload); payload == nil {
				continue // every entry was a suppressed warmup duplicate
			}
		case stream.FrameError:
			l.terminal.Store(true)
		case stream.FrameWelcome:
			continue // the client has its Welcome; never replay another
		}
		s.toClient.Publish(relayFrame{t: t, payload: payload})
	}
}

// rewriteScores maps a Scores payload into client index space and drops
// the prefix at or below the suppression high-water mark. Before the
// first hand-off the indices are already client-space and the payload
// passes through untouched (one 8-byte read keeps the mark fresh);
// afterwards indices shift by the link's base, in place. Returns nil
// when every entry was suppressed.
func (s *hsession) rewriteScores(l *backendLink, payload []byte) []byte {
	if len(payload) < 4 {
		return payload // malformed: relay verbatim, the client rejects it
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if n == 0 || len(payload) != 4+n*16 {
		return payload
	}
	if !s.rewrites {
		last := int64(binary.LittleEndian.Uint64(payload[4+(n-1)*16:]))
		if last > s.lastScore {
			s.lastScore = last
		}
		return payload
	}
	drop := 0
	for i := 0; i < n; i++ {
		off := 4 + i*16
		idx := int64(binary.LittleEndian.Uint64(payload[off:])) + l.base
		binary.LittleEndian.PutUint64(payload[off:], uint64(idx))
		if idx <= s.lastScore && drop == i {
			drop = i + 1
		}
	}
	if last := int64(binary.LittleEndian.Uint64(payload[4+(n-1)*16:])); last > s.lastScore {
		s.lastScore = last
	}
	if drop == 0 {
		return payload
	}
	s.rt.replaySuppressed.Add(int64(drop))
	if drop == n {
		return nil
	}
	out := make([]byte, 4+(n-drop)*16)
	binary.LittleEndian.PutUint32(out, uint32(n-drop))
	copy(out[4:], payload[4+drop*16:])
	return out
}

// deliver writes one client frame to the link, with batched flushing,
// and accounts delivered rows into the replay ring on success.
func (s *hsession) deliver(l *backendLink, f relayFrame) error {
	if err := stream.WriteFrame(l.bw, f.t, f.payload); err != nil {
		return err
	}
	if len(s.bsub) == 0 {
		if err := l.bw.Flush(); err != nil {
			return err
		}
	}
	s.account(f)
	return nil
}

// account records a delivered Samples frame's rows in the replay ring.
func (s *hsession) account(f relayFrame) {
	if f.t != stream.FrameSamples || s.ring == nil || len(f.payload) < 4 {
		return
	}
	n := int(binary.LittleEndian.Uint32(f.payload))
	if len(f.payload) != 4+n*s.rowBytes {
		return // mis-sized batch: the backend will refuse it, don't warm from it
	}
	for i := 0; i < n; i++ {
		s.ring.push(f.payload[4+i*s.rowBytes : 4+(i+1)*s.rowBytes])
	}
	s.delivered += int64(n)
}

// manage is the state machine's spine: it delivers client frames to the
// current link, watches for the link's reader to exit, and decides
// between clean teardown and failover.
func (s *hsession) manage(first *backendLink) {
	cur := first
	s.setLink(cur)
	go s.backendReader(cur)
	byeSent := false
	byeRetries := 0
	for {
		select {
		case f, ok := <-s.bsub:
			if !ok {
				// Client input is over (EOF or error). Half-close toward
				// the backend so it flushes tail scores, wait for them,
				// then end the session cleanly.
				cur.bw.Flush()
				closeWrite(cur.conn)
				<-cur.readerDone
				s.teardown(cur)
				s.toClient.Close()
				return
			}
			if err := s.deliver(cur, f); err != nil {
				nl, ok := s.failover(cur, reasonWriteError, &f)
				if !ok {
					return
				}
				cur = nl
			}
			if f.t == stream.FrameBye {
				byeSent = true
			}
		case <-cur.readerDone:
			if cur.terminal.Load() || (byeSent && (s.scoresSettled() || byeRetries >= maxByeRetries)) {
				// The backend finished the protocol (flushed after Bye,
				// or refused with a relayed terminal Error) — a clean
				// end, not a failure. byeSent alone proves nothing: TCP
				// accepts writes to a half-dead peer, so a buffered Bye
				// can "succeed" against a backend that already died. The
				// settled audit catches that case and fails over instead.
				s.teardown(cur)
				s.toClient.Close()
				return
			}
			reason := s.takeNudge()
			if reason == "" {
				reason = reasonBackendEOF
			}
			var pending *relayFrame
			if byeSent {
				// The new backend must see the Bye again or it will hold
				// the warmed session open waiting for more samples.
				byeRetries++
				pending = &relayFrame{t: stream.FrameBye}
			}
			nl, ok := s.failover(cur, reason, pending)
			if !ok {
				return
			}
			cur = nl
		}
	}
}

// scoresSettled reports whether a score for the last complete window
// delivered has come back through the relay — the audit that separates
// "backend flushed everything after Bye and closed" from "backend died
// with the Bye buffered toward a dead socket". Window w over delivered
// rows yields score indices w−1 … delivered−1, so the stream is settled
// exactly when the high-water mark has reached delivered−1.
func (s *hsession) scoresSettled() bool {
	if s.window <= 0 {
		return true // geometry unknown (unparsed Welcome): nothing to audit
	}
	if s.delivered < int64(s.window) {
		return true // no complete window yet, no score due
	}
	return s.lastScore >= s.delivered-1
}

// teardown releases one link without ending the client session.
func (s *hsession) teardown(l *backendLink) {
	s.setLink(nil)
	l.conn.Close()
	s.rt.untrack(l.conn)
	s.rt.endSession(l.bk)
}

// failover runs one hand-off: sever and drain the dead link, re-place
// with backoff under the hand-off deadline, warm the new backend from
// the replay ring, and resend the frame whose write failed (if any).
// On failure the session ends with a reasoned Bye (v2) or Error (v1)
// and failover returns ok=false.
func (s *hsession) failover(dead *backendLink, reason string, pending *relayFrame) (*backendLink, bool) {
	start := time.Now()
	s.setLink(nil)
	dead.conn.Close()
	<-dead.readerDone // preserve score order and the final high-water mark
	s.rt.untrack(dead.conn)
	s.takeNudge() // clear any racing monitor nudge against the dead link

	deadline := start.Add(s.rt.cfg.HandoffDeadline)
	link, _, _, err := s.acquireBackend(deadline, true)
	if err != nil {
		s.rt.endSession(dead.bk)
		s.rt.handoffCounter("varade_router_handoff_failures_total",
			"hand-offs that found no backend within the deadline", reason).Inc()
		s.endWithReason(fmt.Sprintf("route: session hand-off failed: %v", err))
		return nil, false
	}
	s.rewrites = true
	s.rt.moveSession(dead.bk, link.bk)
	s.rt.placements.Store(s.key, link.bk.id)
	s.rt.handoffAll.Add(1)
	s.rt.handoffCounter("varade_router_handoff_total",
		"sessions transparently re-placed on a surviving backend", reason).Inc()
	s.rt.handoffLatency.Record(time.Since(start).Nanoseconds())
	s.setLink(link)
	go s.backendReader(link)
	if pending != nil {
		// Resend the frame whose write failed: the new backend has only
		// the ring, and the ring excludes unaccounted rows. manage's
		// byeSent flag keys off the same frame after failover returns.
		if err := s.deliver(link, *pending); err != nil {
			return s.failover(link, reasonWriteError, pending)
		}
	}
	return link, true
}

// endWithReason terminates the client stream with a reasoned Bye (v2)
// or a terminal Error (v1), then closes the downstream bus.
func (s *hsession) endWithReason(reason string) {
	if s.proto >= stream.ProtoV2 {
		s.toClient.Publish(relayFrame{t: stream.FrameBye, payload: stream.EncodeByePayload(stream.Bye{Reason: reason})})
	} else {
		s.toClient.Publish(relayFrame{t: stream.FrameError, payload: []byte(reason)})
	}
	s.toClient.Close()
}

// acquireBackend dials a backend for this session under deadline,
// retrying with capped exponential backoff + jitter while the pool is
// empty or dials fail. Sessions waiting here occupy a slot in the
// router's bounded admission queue — when the queue is full the session
// is refused immediately rather than parked. With warm set (the
// hand-off path) the new backend is additionally fed the replay ring
// after its Welcome; the initial placement passes warm=false and
// forwards the returned Welcome to the client instead.
func (s *hsession) acquireBackend(deadline time.Time, warm bool) (*backendLink, stream.FrameType, []byte, error) {
	queued := false
	defer func() {
		if queued {
			s.rt.admitRelease()
		}
	}()
	attempt := 0
	for {
		bk, conn := s.rt.dialFirst(s.rt.place(s.model, s.prec, s.key))
		if bk != nil {
			link, replyT, reply, err := s.handshakeBackend(bk, conn, warm)
			if err == nil {
				return link, replyT, reply, nil
			}
			s.rt.tab.fail(bk.id)
			conn.Close()
			s.rt.untrack(conn)
		}
		if !queued {
			if !s.rt.admitAcquire() {
				return nil, 0, nil, fmt.Errorf("admission queue full")
			}
			queued = true
		}
		attempt++
		d := backoffDelay(s.rt.cfg.RedialBackoff, attempt, s.rt.jitter)
		if !time.Now().Add(d).Before(deadline) {
			return nil, 0, nil, fmt.Errorf("no healthy backend within deadline")
		}
		s.rt.redialBackoff.Record(d.Nanoseconds())
		select {
		case <-s.rt.stopCh:
			return nil, 0, nil, fmt.Errorf("router shutting down")
		case <-time.After(d):
		}
	}
}

// handshakeBackend opens one backend link: preamble + Hello replay,
// Welcome (or terminal) reply, and — on the warm path — the replay-ring
// Samples frame. The reply frame is returned raw for the initial
// handshake to forward.
func (s *hsession) handshakeBackend(bk *backend, conn net.Conn, warm bool) (*backendLink, stream.FrameType, []byte, error) {
	if !s.rt.track(conn) {
		return nil, 0, nil, fmt.Errorf("router shutting down")
	}
	magic := stream.FrameMagic
	if s.proto >= stream.ProtoV2 {
		magic = stream.FrameMagicV2
	}
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)
	var err error
	if _, err = bw.WriteString(magic); err == nil {
		err = stream.WriteFrame(bw, stream.FrameHello, s.rawHello)
	}
	if err == nil {
		err = bw.Flush()
	}
	var replyT stream.FrameType
	var reply []byte
	if err == nil {
		conn.SetReadDeadline(time.Now().Add(s.rt.cfg.DialTimeout))
		replyT, reply, err = stream.ReadFrame(br)
		conn.SetReadDeadline(time.Time{})
	}
	if err != nil {
		return nil, 0, nil, fmt.Errorf("backend handshake: %w", err)
	}
	if warm && replyT != stream.FrameWelcome {
		// Mid-session the backend must re-grant the session; a terminal
		// reply here (model unloaded since placement) fails this
		// candidate and lets the retry loop try the next.
		return nil, 0, nil, fmt.Errorf("backend refused replayed hello")
	}
	link := &backendLink{
		bk:         bk,
		conn:       conn,
		br:         br,
		bw:         bw,
		readerDone: make(chan struct{}),
	}
	if warm {
		link.base = s.delivered
		if s.ring != nil && s.ring.len() > 0 {
			link.base = s.delivered - int64(s.ring.len())
			if err := stream.WriteFrame(bw, stream.FrameSamples, s.ring.payload()); err != nil {
				return nil, 0, nil, fmt.Errorf("warmup replay: %w", err)
			}
			if err := bw.Flush(); err != nil {
				return nil, 0, nil, fmt.Errorf("warmup replay: %w", err)
			}
		}
	}
	return link, replyT, reply, nil
}
