package route

import (
	"fmt"
	"sort"
)

// Consistent-hash placement. Each backend contributes ringVnodes
// virtual points; a session key ("model@vN:precision") is placed on the
// first point clockwise from its hash. Adding or removing one backend
// moves only the keys that hashed to its arcs, so a backend failure
// re-routes its sessions without reshuffling everyone else's co-batched
// groups — the property that keeps a model's sessions coalescing on one
// backend across fleet churn.
const ringVnodes = 64

// hash64 is FNV-1a with a 64-bit avalanche finalizer, inlined so
// placement needs no dependencies and stays identical across router
// restarts (the ring must be a pure function of the member set). The
// finalizer matters: raw FNV over short, similar keys ("m1", "m2", …)
// clusters on the circle and starves members of arc.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringPoint is one virtual node.
type ringPoint struct {
	hash uint64
	id   string
}

// buildRing returns the sorted virtual-node circle for a member set.
func buildRing(ids []string) []ringPoint {
	points := make([]ringPoint, 0, len(ids)*ringVnodes)
	for _, id := range ids {
		for v := 0; v < ringVnodes; v++ {
			points = append(points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", id, v)), id: id})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].id < points[j].id
	})
	return points
}

// ringLookup walks clockwise from key's hash and returns up to want
// distinct member ids in preference order.
func ringLookup(points []ringPoint, key string, want int) []string {
	if len(points) == 0 || want <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
	out := make([]string, 0, want)
	seen := make(map[string]bool, want)
	for i := 0; i < len(points) && len(out) < want; i++ {
		p := points[(start+i)%len(points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}
