package route_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"varade/internal/core"
	"varade/internal/obs"
	"varade/internal/serve"
	"varade/internal/stream"
)

// TestRouterProcessSmoke is the CI fleet smoke: it builds the real
// varade-serve and varade-router binaries, runs two backends announcing
// to one router as separate OS processes, drives a mixed-precision
// fleet through the router, and lints the aggregated exposition. It is
// the closest thing to the deployment topology a test can exercise.
func TestRouterProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process smoke builds binaries; skipped in -short")
	}
	bin := t.TempDir()
	routerBin := filepath.Join(bin, "varade-router")
	serveBin := filepath.Join(bin, "varade-serve")
	for target, out := range map[string]string{
		"varade/cmd/varade-router": routerBin,
		"varade/cmd/varade-serve":  serveBin,
	} {
		cmd := exec.Command("go", "build", "-o", out, target)
		cmd.Dir = moduleRoot(t)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", target, err, b)
		}
	}

	// Registry on disk, shared by both backend processes.
	regDir := t.TempDir()
	reg, err := serve.OpenRegistry(regDir)
	if err != nil {
		t.Fatal(err)
	}
	const channels = 2
	model, err := core.New(core.TinyConfig(channels))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("varade", model); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	router := startProc(t, ctx, routerBin, "-addr", "127.0.0.1:0", "-control", "127.0.0.1:0")
	raddr := router.expect(t, "varade-router: sessions on ")
	ctl := router.expect(t, "varade-router: control on http://")
	ctl = strings.Fields(ctl)[0]
	ctlURL := "http://" + ctl

	for _, id := range []string{"s1", "s2"} {
		p := startProc(t, ctx, serveBin,
			"-registry", regDir, "-model", "varade",
			"-addr", "127.0.0.1:0", "-metrics", "127.0.0.1:0",
			"-announce", ctlURL, "-backend-id", id, "-announce-every", "100ms")
		p.expect(t, "varade-serve: announcing as ")
	}

	// Both backends registered and healthy.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var hz struct {
			Backends []string `json:"backends"`
		}
		if resp, err := http.Get(ctlURL + "/healthz"); err == nil {
			json.NewDecoder(resp.Body).Decode(&hz)
			resp.Body.Close()
		}
		if len(hz.Backends) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backends never both announced: %v", hz.Backends)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A mixed-precision fleet through the router: v1 plus one v2 session
	// per precision, each streaming a short series end to end.
	w := model.WindowSize()
	steps := 3 * w
	run := func(cl *serve.Client, name string) {
		t.Helper()
		n := 0
		if err := cl.Run(ctx, synthRows(steps, channels, 99), 8, func(stream.Score) { n++ }); err != nil {
			t.Fatalf("%s session: %v", name, err)
		}
		cl.Close()
		if want := steps - w + 1; n != want {
			t.Fatalf("%s session scored %d windows, want %d", name, n, want)
		}
	}
	cl, err := serve.Dial(ctx, raddr, "varade", channels)
	if err != nil {
		t.Fatal(err)
	}
	run(cl, "v1")
	for _, prec := range []string{"float64", "float32", "int8"} {
		cl, err := serve.DialWith(ctx, raddr, "varade", channels, stream.SessionCaps{Precision: prec})
		if err != nil {
			t.Fatalf("%s dial: %v", prec, err)
		}
		if b := cl.Welcome().Backend; b != "s1" && b != "s2" {
			t.Fatalf("%s welcome backend %q", prec, b)
		}
		run(cl, prec)
	}

	// The aggregated exposition lints and carries both backends.
	resp, err := http.Get(ctlURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if err := obs.LintPrometheusText(body); err != nil {
		t.Fatalf("aggregated /metrics does not lint: %v", err)
	}
	for _, needle := range []string{`backend="s1"`, `backend="s2"`, "varade_router_sessions_total{"} {
		if !strings.Contains(body, needle) {
			t.Fatalf("aggregated /metrics missing %q", needle)
		}
	}
}

// proc wraps a spawned fleet process whose stdout lines gate test
// progress.
type proc struct {
	cmd   *exec.Cmd
	lines chan string
}

func startProc(t *testing.T, ctx context.Context, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, lines: make(chan string, 64)}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case p.lines <- sc.Text():
			default: // never block the child on a full channel
			}
		}
		close(p.lines)
	}()
	t.Cleanup(func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})
	return p
}

// expect waits for a stdout line with the given prefix and returns the
// remainder of the line.
func (p *proc) expect(t *testing.T, prefix string) string {
	t.Helper()
	timeout := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				t.Fatalf("process exited before printing %q", prefix)
			}
			if strings.HasPrefix(line, prefix) {
				return strings.TrimPrefix(line, prefix)
			}
		case <-timeout:
			t.Fatalf("no %q line within 30s", prefix)
		}
	}
}

// moduleRoot walks up from the working directory to the go.mod, so the
// builds run from the module no matter where `go test` placed us.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}
