package route

import (
	"fmt"
	"testing"
	"time"
)

func TestRingLookupDeterministicAndDistinct(t *testing.T) {
	ids := []string{"b1", "b2", "b3"}
	ring := buildRing(ids)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("model@v%d:int8", i)
		a := ringLookup(ring, key, 3)
		b := ringLookup(ring, key, 3)
		if len(a) != 3 {
			t.Fatalf("lookup returned %d ids, want 3", len(a))
		}
		seen := map[string]bool{}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("lookup not deterministic for %q: %v vs %v", key, a, b)
			}
			if seen[a[j]] {
				t.Fatalf("duplicate id in lookup: %v", a)
			}
			seen[a[j]] = true
		}
	}
}

// TestRingStabilityOnMemberLoss is the consistent-hashing property the
// router exists for: dropping one backend must only move the keys that
// lived on it.
func TestRingStabilityOnMemberLoss(t *testing.T) {
	full := buildRing([]string{"b1", "b2", "b3", "b4"})
	reduced := buildRing([]string{"b1", "b2", "b4"})
	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("m%d@latest:float32", i)
		before := ringLookup(full, key, 1)[0]
		after := ringLookup(reduced, key, 1)[0]
		if before == "b3" {
			if after == "b3" {
				t.Fatal("key still placed on removed member")
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved that were not on the removed member", moved)
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	ring := buildRing([]string{"b1", "b2", "b3"})
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[ringLookup(ring, fmt.Sprintf("m%d", i), 1)[0]]++
	}
	for id, n := range counts {
		if n == 0 || n == 300 {
			t.Fatalf("degenerate spread: %v", counts)
		}
		_ = id
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 backends received keys: %v", len(counts), counts)
	}
}

// TestPlacePrecisionPools checks the capability-aware pool narrowing:
// sessions requesting a precision only some backends support must stay
// inside that pool, and backends advertising the model outrank ones
// that don't.
func TestPlacePrecisionPools(t *testing.T) {
	rt := NewRouter(Config{DefaultModel: "varade"})
	rt.Register(Announcement{ID: "f64only", Addr: "a:1", Precisions: []string{"float64"},
		Models: []ModelAd{{Name: "varade"}}})
	rt.Register(Announcement{ID: "full1", Addr: "a:2", Precisions: []string{"float64", "float32", "int8"},
		Models: []ModelAd{{Name: "varade"}}})
	rt.Register(Announcement{ID: "full2", Addr: "a:3", Precisions: []string{"float64", "float32", "int8"},
		Models: []ModelAd{{Name: "other"}}})

	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("varade@v%d:int8", i)
		cands := rt.place("varade", "int8", key)
		if len(cands) == 0 {
			t.Fatal("no candidates")
		}
		// Preference order must exhaust the int8+varade pool (full1)
		// before any fallback; f64only can only appear as failover.
		if cands[0].b.id != "full1" {
			t.Fatalf("int8 varade session preferred %q, want full1", cands[0].b.id)
		}
	}
	// A float64 session for the model spreads over the model's pool
	// (f64only and full1), never preferring the backend that does not
	// advertise it.
	seen := map[string]bool{}
	for i := 0; i < 40; i++ {
		cands := rt.place("varade", "float64", fmt.Sprintf("varade@v%d:float64", i))
		seen[cands[0].b.id] = true
		if cands[0].b.id == "full2" {
			t.Fatal("preferred a backend that does not advertise the model")
		}
	}
	if !seen["f64only"] || !seen["full1"] {
		t.Fatalf("float64 keys did not spread over the model pool: %v", seen)
	}
}

// TestTableTTLAndDrain covers the health plane: registrations age out
// at TTL, a draining announcement removes the backend immediately, and
// a fresh announcement clears a dial-failure mark.
func TestTableTTLAndDrain(t *testing.T) {
	tab := newTable(100 * time.Millisecond)
	now := time.Unix(1000, 0)
	tab.now = func() time.Time { return now }

	tab.upsert(Announcement{ID: "b1", Addr: "a:1"})
	tab.upsert(Announcement{ID: "b2", Addr: "a:2"})
	if got := len(tab.views(true)); got != 2 {
		t.Fatalf("healthy = %d, want 2", got)
	}

	// b1's announcements stop: it ages out, b2 keeps heartbeating.
	now = now.Add(80 * time.Millisecond)
	tab.upsert(Announcement{ID: "b2", Addr: "a:2"})
	now = now.Add(80 * time.Millisecond)
	views := tab.views(true)
	if len(views) != 1 || views[0].b.id != "b2" {
		t.Fatalf("after TTL, healthy = %+v, want just b2", views)
	}

	// Dial failure drains immediately; a fresh announcement restores.
	tab.fail("b2")
	if got := len(tab.views(true)); got != 0 {
		t.Fatalf("failed backend still healthy (%d)", got)
	}
	tab.upsert(Announcement{ID: "b2", Addr: "a:2"})
	if got := len(tab.views(true)); got != 1 {
		t.Fatalf("re-announced backend not restored (%d)", got)
	}

	// Graceful drain removes without waiting out the TTL.
	tab.upsert(Announcement{ID: "b2", Addr: "a:2", Draining: true})
	if got := len(tab.views(true)); got != 0 {
		t.Fatalf("draining backend still placeable (%d)", got)
	}
}
