// Package route is the routing plane of the sharded serving tier: a
// thin front process (cmd/varade-router) accepts fleet connections on
// one listener, decodes each session's handshake without terminating
// it, and proxies the session to a backend varade-serve process chosen
// by capability and load. Backends announce themselves (models,
// precisions, live-session count) over the router's control endpoint;
// the router places sessions with a consistent-hash ring keyed on
// model@version:precision so a model's sessions co-batch on the same
// backend, and aggregates the backends' Prometheus planes into one
// exposition relabeled by backend.
//
// The package deliberately does not import internal/serve — the serving
// plane imports this one (announcer), keeping routing and scoring
// separable layers.
package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ModelAd advertises one registry entry a backend can serve.
type ModelAd struct {
	Name     string `json:"name"`
	Kind     string `json:"kind,omitempty"`
	Versions []int  `json:"versions,omitempty"`
	// Precisions the backend can derive serving groups for on this
	// model (engine capability, not just the file's own precision).
	Precisions []string `json:"precisions,omitempty"`
}

// Announcement is one backend's registration heartbeat: who it is,
// where sessions and metrics live, what it can serve, and how loaded it
// is. Backends POST it to the router's /register control endpoint on an
// interval; a backend whose announcements stop is drained from the
// ring after the router's TTL.
type Announcement struct {
	ID          string `json:"id"`
	Addr        string `json:"addr"`                   // session listener host:port
	MetricsAddr string `json:"metrics_addr,omitempty"` // HTTP plane host:port, scraped for /metrics aggregation
	// Precisions is the union of per-model precisions — the router's
	// per-precision pool membership.
	Precisions   []string  `json:"precisions,omitempty"`
	Models       []ModelAd `json:"models,omitempty"`
	LiveSessions int       `json:"live_sessions"`
	// Draining announces graceful de-registration: the router removes
	// the backend from the ring immediately but lets live proxied
	// sessions run to completion.
	Draining bool `json:"draining,omitempty"`
}

// Register posts one announcement to a router control endpoint
// (controlURL is the base, e.g. "http://host:port").
func Register(ctx context.Context, client *http.Client, controlURL string, ann Announcement) error {
	if ann.ID == "" || (ann.Addr == "" && !ann.Draining) {
		return fmt.Errorf("route: announcement needs id and addr")
	}
	blob, err := json.Marshal(ann)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, controlURL+"/register", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("route: register: %s", resp.Status)
	}
	return nil
}

// Announcer re-posts a backend's announcement on an interval. The snap
// callback builds a fresh announcement each beat (live-session counts
// move); Stop posts one final announcement with Draining set so the
// router drops the backend from the ring without waiting out the TTL.
type Announcer struct {
	url      string
	interval time.Duration
	snap     func() Announcement
	client   *http.Client

	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
}

// StartAnnouncer begins announcing immediately and then every interval.
// The first registration failure is returned synchronously so a
// misconfigured -announce URL surfaces at startup; later failures are
// retried on the next beat (the router tolerates gaps up to its TTL).
func StartAnnouncer(controlURL string, interval time.Duration, snap func() Announcement) (*Announcer, error) {
	if interval <= 0 {
		interval = time.Second
	}
	a := &Announcer{
		url:      controlURL,
		interval: interval,
		snap:     snap,
		client:   &http.Client{Timeout: 2 * time.Second},
		done:     make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	a.cancel = cancel
	if err := Register(ctx, a.client, a.url, a.snap()); err != nil {
		cancel()
		close(a.done)
		return nil, err
	}
	go a.run(ctx)
	return a, nil
}

func (a *Announcer) run(ctx context.Context) {
	defer close(a.done)
	tick := time.NewTicker(a.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			// Best effort: a missed beat only ages the registration.
			_ = Register(ctx, a.client, a.url, a.snap())
		}
	}
}

// Stop halts the heartbeat and posts a final Draining announcement so
// the router de-registers the backend immediately. Safe to call more
// than once.
func (a *Announcer) Stop(ctx context.Context) {
	a.once.Do(func() {
		a.cancel()
		<-a.done
		ann := a.snap()
		ann.Draining = true
		_ = Register(ctx, a.client, a.url, ann)
	})
}
