// Package route is the routing plane of the sharded serving tier: a
// thin front process (cmd/varade-router) accepts fleet connections on
// one listener, decodes each session's handshake without terminating
// it, and proxies the session to a backend varade-serve process chosen
// by capability and load. Backends announce themselves (models,
// precisions, live-session count) over the router's control endpoint;
// the router places sessions with a consistent-hash ring keyed on
// model@version:precision so a model's sessions co-batch on the same
// backend, and aggregates the backends' Prometheus planes into one
// exposition relabeled by backend.
//
// The package deliberately does not import internal/serve — the serving
// plane imports this one (announcer), keeping routing and scoring
// separable layers.
package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ModelAd advertises one registry entry a backend can serve.
type ModelAd struct {
	Name     string `json:"name"`
	Kind     string `json:"kind,omitempty"`
	Versions []int  `json:"versions,omitempty"`
	// Precisions the backend can derive serving groups for on this
	// model (engine capability, not just the file's own precision).
	Precisions []string `json:"precisions,omitempty"`
}

// Announcement is one backend's registration heartbeat: who it is,
// where sessions and metrics live, what it can serve, and how loaded it
// is. Backends POST it to the router's /register control endpoint on an
// interval; a backend whose announcements stop is drained from the
// ring after the router's TTL.
type Announcement struct {
	ID          string `json:"id"`
	Addr        string `json:"addr"`                   // session listener host:port
	MetricsAddr string `json:"metrics_addr,omitempty"` // HTTP plane host:port, scraped for /metrics aggregation
	// Precisions is the union of per-model precisions — the router's
	// per-precision pool membership.
	Precisions   []string  `json:"precisions,omitempty"`
	Models       []ModelAd `json:"models,omitempty"`
	LiveSessions int       `json:"live_sessions"`
	// Draining announces graceful de-registration: the router removes
	// the backend from the ring immediately but lets live proxied
	// sessions run to completion.
	Draining bool `json:"draining,omitempty"`
}

// Register posts one announcement to a router control endpoint
// (controlURL is the base, e.g. "http://host:port").
func Register(ctx context.Context, client *http.Client, controlURL string, ann Announcement) error {
	if ann.ID == "" || (ann.Addr == "" && !ann.Draining) {
		return fmt.Errorf("route: announcement needs id and addr")
	}
	blob, err := json.Marshal(ann)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, controlURL+"/register", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("route: register: %s", resp.Status)
	}
	return nil
}

// AnnouncerOpts tunes the heartbeat's failure handling. The zero value
// reproduces the defaults: 2s request timeout, 2 in-beat retries with
// 100ms doubling backoff, failures dropped silently.
type AnnouncerOpts struct {
	// Timeout bounds each registration POST. Default 2s.
	Timeout time.Duration
	// Retries is how many times a failed beat is re-posted before the
	// announcer gives up until the next tick. Default 2; negative
	// disables in-beat retries.
	Retries int
	// RetryBackoff is the delay before the first in-beat retry,
	// doubling per attempt and capped at the beat interval. Default
	// 100ms.
	RetryBackoff time.Duration
	// OnError observes every failed POST (after which the announcer
	// retries or waits for the next beat) — the hook a backend uses to
	// count failures into its metrics plane. May be nil.
	OnError func(error)
}

func (o AnnouncerOpts) withDefaults() AnnouncerOpts {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Millisecond
	}
	return o
}

// Announcer re-posts a backend's announcement on an interval. The snap
// callback builds a fresh announcement each beat (live-session counts
// move); Stop posts one final announcement with Draining set so the
// router drops the backend from the ring without waiting out the TTL.
type Announcer struct {
	url      string
	interval time.Duration
	snap     func() Announcement
	client   *http.Client
	opts     AnnouncerOpts

	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
}

// StartAnnouncer begins announcing immediately and then every interval,
// with default failure handling (see AnnouncerOpts).
func StartAnnouncer(controlURL string, interval time.Duration, snap func() Announcement) (*Announcer, error) {
	return StartAnnouncerWith(controlURL, interval, AnnouncerOpts{}, snap)
}

// StartAnnouncerWith is StartAnnouncer with explicit failure handling.
// The first registration failure is returned synchronously so a
// misconfigured -announce URL surfaces at startup; later failures are
// retried with backoff inside the beat (so a single dropped POST does
// not age the registration a full interval toward the router's TTL)
// and surfaced to opts.OnError.
func StartAnnouncerWith(controlURL string, interval time.Duration, opts AnnouncerOpts, snap func() Announcement) (*Announcer, error) {
	if interval <= 0 {
		interval = time.Second
	}
	opts = opts.withDefaults()
	a := &Announcer{
		url:      controlURL,
		interval: interval,
		snap:     snap,
		client:   &http.Client{Timeout: opts.Timeout},
		opts:     opts,
		done:     make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	a.cancel = cancel
	if err := Register(ctx, a.client, a.url, a.snap()); err != nil {
		cancel()
		close(a.done)
		return nil, err
	}
	go a.run(ctx)
	return a, nil
}

func (a *Announcer) run(ctx context.Context) {
	defer close(a.done)
	tick := time.NewTicker(a.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			a.beat(ctx)
		}
	}
}

// beat posts one registration, retrying with doubling backoff on
// failure. A beat that exhausts its retries only ages the registration;
// the router tolerates gaps up to its TTL.
func (a *Announcer) beat(ctx context.Context) {
	delay := a.opts.RetryBackoff
	for attempt := 0; ; attempt++ {
		err := Register(ctx, a.client, a.url, a.snap())
		if err == nil {
			return
		}
		if ctx.Err() == nil && a.opts.OnError != nil {
			a.opts.OnError(err)
		}
		if attempt >= a.opts.Retries || ctx.Err() != nil {
			return
		}
		if delay > a.interval {
			delay = a.interval
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
		delay *= 2
	}
}

// Stop halts the heartbeat and posts a final Draining announcement so
// the router de-registers the backend immediately. Safe to call more
// than once.
func (a *Announcer) Stop(ctx context.Context) {
	a.once.Do(func() {
		a.cancel()
		<-a.done
		ann := a.snap()
		ann.Draining = true
		_ = Register(ctx, a.client, a.url, ann)
	})
}
