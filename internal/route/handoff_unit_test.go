package route

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"varade/internal/obs"
	"varade/internal/stream"
)

func ringRow(vals ...float64) []byte {
	row := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(row[i*8:], math.Float64bits(v))
	}
	return row
}

// TestReplayRingWraparound pushes past capacity and checks the payload
// renders exactly the newest capRows rows, oldest first.
func TestReplayRingWraparound(t *testing.T) {
	const rowBytes = 16 // 2 channels
	r := newReplayRing(3, rowBytes)
	if r.payload() != nil {
		t.Fatal("empty ring rendered a payload")
	}
	for i := 0; i < 5; i++ {
		r.push(ringRow(float64(i), float64(i)))
	}
	if r.len() != 3 {
		t.Fatalf("ring length %d after wraparound, want 3", r.len())
	}
	p := r.payload()
	samples, err := stream.DecodeSamplesPayload(p, 2)
	if err != nil {
		t.Fatalf("ring payload does not decode as Samples: %v", err)
	}
	if len(samples) != 3 {
		t.Fatalf("ring rendered %d rows, want 3", len(samples))
	}
	for i, s := range samples {
		want := float64(i + 2) // rows 2, 3, 4 survive, oldest first
		for c := range s {
			if s[c] != want {
				t.Fatalf("row %d chan %d = %g, want %g", i, c, s[c], want)
			}
		}
	}
}

// TestBackoffDelayBounds checks the cap at 32× base and the jitter
// window [d/2, 3d/2).
func TestBackoffDelayBounds(t *testing.T) {
	base := 10 * time.Millisecond
	zero := func(int64) int64 { return 0 }
	full := func(n int64) int64 { return n - 1 }
	for attempt, wantD := range map[int]time.Duration{
		1:  base,
		2:  2 * base,
		6:  32 * base,
		99: 32 * base, // capped
	} {
		lo := backoffDelay(base, attempt, zero)
		if lo != wantD/2 {
			t.Fatalf("attempt %d min delay %v, want %v", attempt, lo, wantD/2)
		}
		hi := backoffDelay(base, attempt, full)
		if hi != wantD/2+wantD-1 {
			t.Fatalf("attempt %d max delay %v, want %v", attempt, hi, wantD/2+wantD-1)
		}
	}
	if d := backoffDelay(0, 1, zero); d != 25*time.Millisecond/2 {
		t.Fatalf("zero base did not default: %v", d)
	}
}

func scoresPayload(idx []int, val []float64) []byte {
	sc := make([]stream.Score, len(idx))
	for i := range idx {
		sc[i] = stream.Score{Index: idx[i], Value: val[i]}
	}
	return stream.EncodeScoresPayload(sc)
}

// TestRewriteScoresSuppression drives the index-rewrite and warmup
// suppression logic through its cases: pass-through before any
// hand-off, base shifting, prefix suppression, and full suppression.
func TestRewriteScoresSuppression(t *testing.T) {
	reg := obs.NewRegistry()
	rt := &Router{reg: reg}
	rt.replaySuppressed = reg.Counter("test_suppressed", "suppressed warmup scores")
	s := &hsession{rt: rt, lastScore: -1}

	// Fast path: no hand-off yet, payload untouched, high-water follows.
	l := &backendLink{}
	p := scoresPayload([]int{7, 8}, []float64{1, 2})
	if got := s.rewriteScores(l, p); &got[0] != &p[0] {
		t.Fatal("fast path copied the payload")
	}
	if s.lastScore != 8 {
		t.Fatalf("fast-path high-water %d, want 8", s.lastScore)
	}

	// After a hand-off: indices shift by base and the replayed prefix
	// at or below the mark is suppressed.
	s.rewrites = true
	warm := &backendLink{base: 3}
	p = scoresPayload([]int{4, 5, 6, 7}, []float64{10, 11, 12, 13}) // client 7, 8, 9, 10
	out := s.rewriteScores(warm, p)
	sc, err := stream.DecodeScoresPayload(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc) != 2 || sc[0].Index != 9 || sc[1].Index != 10 {
		t.Fatalf("suppressed rewrite = %+v, want client indices 9, 10", sc)
	}
	if sc[0].Value != 12 || sc[1].Value != 13 {
		t.Fatalf("rewrite disturbed values: %+v", sc)
	}
	if s.lastScore != 10 {
		t.Fatalf("high-water %d after rewrite, want 10", s.lastScore)
	}

	// Entirely replayed batch: suppressed to nothing.
	p = scoresPayload([]int{6, 7}, []float64{12, 13})
	if out := s.rewriteScores(warm, p); out != nil {
		t.Fatalf("fully-replayed batch leaked through: %v", out)
	}
	if got := rt.replaySuppressed.Load(); got != 4 {
		t.Fatalf("suppressed counter %d, want 4", got)
	}
}
