// Chaos suite for the hand-off plane: sessions driven through seeded
// connection kills, drains, and empty-pool admission — the failure
// weather the router must absorb without the client noticing.
package route_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"varade/internal/detect"
	"varade/internal/route"
	"varade/internal/serve"
	"varade/internal/stream"
)

// collectScores pumps one client's score stream into a channel until
// the server ends it, reporting the terminal error (nil for clean EOF).
func collectScores(cl *serve.Client, buf int) (<-chan stream.Score, <-chan error) {
	scores := make(chan stream.Score, buf)
	done := make(chan error, 1)
	go func() {
		defer close(scores)
		for {
			batch, err := cl.ReadScores()
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				done <- err
				return
			}
			for _, sc := range batch {
				scores <- sc
			}
		}
	}()
	return scores, done
}

// drainScores gathers the collected stream into an index→value map,
// failing on conflicting duplicates or a stall.
func drainScores(t *testing.T, scores <-chan stream.Score, patience time.Duration) map[int]float64 {
	t.Helper()
	got := make(map[int]float64)
	deadline := time.After(patience)
	for {
		select {
		case sc, ok := <-scores:
			if !ok {
				return got
			}
			if prev, dup := got[sc.Index]; dup && prev != sc.Value {
				t.Fatalf("score[%d] delivered twice with different values", sc.Index)
			}
			got[sc.Index] = sc.Value
		case <-deadline:
			t.Fatalf("score stream still open after %v (got %d scores)", patience, len(got))
		}
	}
}

// requireScores asserts every window index in [w−1, steps) scored
// bit-identically to the oracle.
func requireScores(t *testing.T, got map[int]float64, want []float64, w, steps int) {
	t.Helper()
	for idx := w - 1; idx < steps; idx++ {
		v, ok := got[idx]
		if !ok {
			t.Fatalf("score[%d] missing (got %d of %d)", idx, len(got), steps-w+1)
		}
		if v != want[idx] {
			t.Fatalf("score[%d] = %g, want %g", idx, v, want[idx])
		}
	}
}

// waitGoroutines polls until the goroutine count settles at or under
// the bound.
func waitGoroutines(t *testing.T, bound int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= bound {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d > %d; dump:\n%s",
				runtime.NumGoroutine(), bound, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterHandoffUnderChaos runs one long session while seeded chaos
// proxies kill its backend connection at randomized frame boundaries
// (and mid-frame) again and again. The client must never reconnect and
// never see an error; with the replay ring sized past the stream, every
// score must arrive bit-identical to an unbroken run, however many
// hand-offs it took. Run under -race in CI.
func TestRouterHandoffUnderChaos(t *testing.T) {
	const channels = 2
	const seed = 1789
	reg, model := newSharedRegistry(t, channels)
	srv1, addr1, _ := newBackend(t, reg)
	defer srv1.Shutdown(context.Background())
	srv2, addr2, _ := newBackend(t, reg)
	defer srv2.Shutdown(context.Background())

	cx1, err := route.NewChaos(addr1, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer cx1.Close()
	cx2, err := route.NewChaos(addr2, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	defer cx2.Close()

	rt := route.NewRouter(route.Config{
		DefaultModel:  "varade",
		TTL:           time.Hour,
		ReplayExtra:   256, // ring outlasts the whole stream: every kill recoverable
		RedialBackoff: time.Millisecond,
		JitterSeed:    seed,
	})
	raddr, err := rt.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())
	rt.Register(route.Announcement{ID: "b1", Addr: cx1.Addr()})
	rt.Register(route.Announcement{ID: "b2", Addr: cx2.Addr()})

	baseline := runtime.NumGoroutine()

	// Arm before dialing: every proxied connection draws a kill budget
	// of 3–9 client frames, so the session dies over and over mid-flow
	// (the handshake itself — one Hello frame — always survives).
	cx1.ArmKill(3, 9)
	cx2.ArmKill(3, 9)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := serve.DialWith(ctx, raddr, "varade", channels, stream.SessionCaps{})
	if err != nil {
		t.Fatal(err)
	}

	w := model.WindowSize()
	steps := 20 * w
	rows := synthRows(steps, channels, 11)
	want := detect.ScoreSeries(model, seriesOf(rows))
	scores, readDone := collectScores(cl, steps)

	for start := 0; start < steps; start += 4 {
		end := start + 4
		if end > steps {
			end = steps
		}
		if err := cl.Send(rows[start:end]); err != nil {
			t.Fatalf("send under chaos: %v", err)
		}
		// Pace the stream so scores interleave with kills rather than
		// the whole run landing in one socket buffer.
		time.Sleep(200 * time.Microsecond)
	}
	cx1.Disarm()
	cx2.Disarm()
	if err := cl.Bye(); err != nil {
		t.Fatalf("bye under chaos: %v", err)
	}
	got := drainScores(t, scores, 30*time.Second)
	if err := <-readDone; err != nil {
		t.Fatalf("client stream errored under chaos: %v", err)
	}
	cl.Close()
	requireScores(t, got, want, w, steps)

	if kills := cx1.Kills() + cx2.Kills(); kills < 1 {
		t.Fatal("seeded chaos schedule produced no kills")
	}
	total, _, p99 := rt.HandoffStats()
	if total < 1 {
		t.Fatalf("router recorded %d hand-offs, want >= 1", total)
	}
	if p99 <= 0 {
		t.Fatalf("hand-off latency p99 = %d ns, want > 0", p99)
	}
	var sb strings.Builder
	rt.WritePrometheus(&sb)
	for _, needle := range []string{
		"varade_router_handoff_total",
		"varade_router_handoff_latency_ns",
		"varade_router_redial_backoff_ns",
	} {
		if !strings.Contains(sb.String(), needle) {
			t.Fatalf("metrics exposition missing %s", needle)
		}
	}

	// Every relay incarnation, chaos pipe, and session goroutine is gone.
	waitGoroutines(t, baseline+6)
}

// TestRouterHandoffDrain marks a session's backend as draining and
// expects the health monitor to migrate the session to the survivor
// mid-stream with zero score loss, under the "drain" reason.
func TestRouterHandoffDrain(t *testing.T) {
	const channels = 2
	reg, model := newSharedRegistry(t, channels)
	srv1, addr1, _ := newBackend(t, reg)
	defer srv1.Shutdown(context.Background())
	srv2, addr2, _ := newBackend(t, reg)
	defer srv2.Shutdown(context.Background())

	rt := route.NewRouter(route.Config{
		DefaultModel:    "varade",
		TTL:             time.Hour,
		MonitorInterval: 5 * time.Millisecond,
		RedialBackoff:   time.Millisecond,
		JitterSeed:      7,
	})
	raddr, err := rt.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())
	anns := map[string]route.Announcement{
		"b1": {ID: "b1", Addr: addr1},
		"b2": {ID: "b2", Addr: addr2},
	}
	rt.Register(anns["b1"])
	rt.Register(anns["b2"])

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := serve.DialWith(ctx, raddr, "varade", channels, stream.SessionCaps{})
	if err != nil {
		t.Fatal(err)
	}
	victim := cl.Welcome().Backend

	w := model.WindowSize()
	steps := 4 * w
	rows := synthRows(steps, channels, 3)
	want := detect.ScoreSeries(model, seriesOf(rows))
	scores, readDone := collectScores(cl, steps)

	if err := cl.Send(rows[:w]); err != nil {
		t.Fatal(err)
	}
	select {
	case sc := <-scores:
		if sc.Value != want[sc.Index] {
			t.Fatalf("pre-drain score[%d] = %g, want %g", sc.Index, sc.Value, want[sc.Index])
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no score before drain")
	}

	// Graceful de-registration: the backend stays up but leaves the
	// ring; the monitor must move the session off it.
	drainAnn := anns[victim]
	drainAnn.Draining = true
	rt.Register(drainAnn)

	for start := w; start < steps; start += 2 {
		end := start + 2
		if end > steps {
			end = steps
		}
		if err := cl.Send(rows[start:end]); err != nil {
			t.Fatalf("send during drain: %v", err)
		}
		time.Sleep(2 * time.Millisecond) // let the monitor tick mid-stream
	}
	if err := cl.Bye(); err != nil {
		t.Fatal(err)
	}
	got := drainScores(t, scores, 20*time.Second)
	if err := <-readDone; err != nil {
		t.Fatalf("client stream errored across drain: %v", err)
	}
	cl.Close()
	got[w-1] = want[w-1] // consumed above
	requireScores(t, got, want, w, steps)

	var sb strings.Builder
	rt.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `varade_router_handoff_total{reason="drain"}`) {
		t.Fatal("drain hand-off not recorded under its reason label")
	}
}

// TestRouterAdmissionQueue covers the empty-pool path both ways: a
// session that arrives before any backend exists must wait in the
// bounded admission queue and be served the moment one registers; with
// a short admission deadline and no backend ever coming, the client
// must be refused with a reasoned v2 Bye, not a silent hangup.
func TestRouterAdmissionQueue(t *testing.T) {
	const channels = 2

	t.Run("served_after_register", func(t *testing.T) {
		reg, model := newSharedRegistry(t, channels)
		srv, addr, _ := newBackend(t, reg)
		defer srv.Shutdown(context.Background())

		rt := route.NewRouter(route.Config{
			DefaultModel:  "varade",
			TTL:           time.Hour,
			AdmissionWait: 10 * time.Second,
			RedialBackoff: time.Millisecond,
			JitterSeed:    11,
		})
		raddr, err := rt.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Shutdown(context.Background())

		// Register only after the client is already waiting in the queue.
		go func() {
			time.Sleep(100 * time.Millisecond)
			rt.Register(route.Announcement{ID: "late", Addr: addr})
		}()

		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		cl, err := serve.DialWith(ctx, raddr, "varade", channels, stream.SessionCaps{})
		if err != nil {
			t.Fatalf("queued dial: %v", err)
		}
		defer cl.Close()
		w := model.WindowSize()
		rows := synthRows(w, channels, 5)
		n := 0
		if err := cl.Run(ctx, rows, 4, func(stream.Score) { n++ }); err != nil {
			t.Fatalf("queued session stream: %v", err)
		}
		if n != 1 {
			t.Fatalf("queued session scored %d windows, want 1", n)
		}
	})

	t.Run("refused_on_deadline", func(t *testing.T) {
		rt := route.NewRouter(route.Config{
			DefaultModel:  "varade",
			TTL:           time.Hour,
			AdmissionWait: 50 * time.Millisecond,
			RedialBackoff: time.Millisecond,
			JitterSeed:    13,
		})
		raddr, err := rt.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Shutdown(context.Background())

		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_, err = serve.DialWith(ctx, raddr, "varade", channels, stream.SessionCaps{})
		if err == nil {
			t.Fatal("dial succeeded with an empty pool")
		}
		if !strings.Contains(err.Error(), "no healthy backend") {
			t.Fatalf("refusal lost its reason: %v", err)
		}
	})
}

// TestRouterReloadOrchestration drives the router's fleet-wide model
// hot-swap: POST /reload on the control plane must reload every healthy
// backend in ID order and report per-backend JSON; a failing backend
// must stop the rollout (canary) with the remainder reported skipped.
func TestRouterReloadOrchestration(t *testing.T) {
	const channels = 2
	reg, _ := newSharedRegistry(t, channels)
	srv1, addr1, maddr1 := newBackend(t, reg)
	defer srv1.Shutdown(context.Background())
	srv2, addr2, maddr2 := newBackend(t, reg)
	defer srv2.Shutdown(context.Background())

	rt := route.NewRouter(route.Config{DefaultModel: "varade", TTL: time.Hour})
	defer rt.Shutdown(context.Background())
	caddr, err := rt.ServeControl("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rt.Register(route.Announcement{ID: "b1", Addr: addr1, MetricsAddr: maddr1})
	rt.Register(route.Announcement{ID: "b2", Addr: addr2, MetricsAddr: maddr2})

	// Reload swaps live serving groups, so each backend needs one: hold
	// an open session on both for the duration.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, addr := range []string{addr1, addr2} {
		cl, err := serve.DialWith(ctx, addr, "varade", channels, stream.SessionCaps{})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
	}

	reload := func(model string) (int, map[string]any) {
		resp, err := http.Post("http://"+caddr+"/reload?model="+model, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	status, body := reload("varade")
	if status != http.StatusOK || body["ok"] != true {
		t.Fatalf("fleet reload = %d %v, want 200 ok", status, body)
	}
	backends := body["backends"].([]any)
	if len(backends) != 2 {
		t.Fatalf("reload reported %d backends, want 2", len(backends))
	}
	for i, id := range []string{"b1", "b2"} {
		row := backends[i].(map[string]any)
		if row["backend"] != id || row["ok"] != true {
			t.Fatalf("reload row %d = %v, want %s ok", i, row, id)
		}
	}

	// Canary: an unknown model fails on b1 and must never reach b2.
	status, body = reload("no-such-model")
	if status != http.StatusBadGateway || body["ok"] != false {
		t.Fatalf("bad reload = %d %v, want 502 not-ok", status, body)
	}
	backends = body["backends"].([]any)
	first := backends[0].(map[string]any)
	second := backends[1].(map[string]any)
	if first["ok"] != false || first["error"] == "" {
		t.Fatalf("canary row did not fail with an error: %v", first)
	}
	if second["skipped"] != true {
		t.Fatalf("rollout continued past the canary failure: %v", second)
	}
}
