package route

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"varade/internal/obs"
)

// BackendStatus is one backend's row in the /models snapshot.
type BackendStatus struct {
	ID           string    `json:"id"`
	Addr         string    `json:"addr"`
	MetricsAddr  string    `json:"metrics_addr,omitempty"`
	Healthy      bool      `json:"healthy"`
	Draining     bool      `json:"draining,omitempty"`
	Failed       bool      `json:"failed,omitempty"`
	LiveSessions int64     `json:"live_sessions"`
	Proxied      int64     `json:"proxied_total"`
	AgeMs        int64     `json:"announce_age_ms"`
	Precisions   []string  `json:"precisions,omitempty"`
	Models       []ModelAd `json:"models,omitempty"`
}

// Snapshot is the /models payload: the backend set and where each
// placement key last landed on the ring.
type Snapshot struct {
	Backends   []BackendStatus   `json:"backends"`
	Placements map[string]string `json:"placements"`
}

// Models returns the current backend table and ring placements.
func (rt *Router) Models() Snapshot {
	views := rt.tab.views(false)
	snap := Snapshot{Placements: make(map[string]string)}
	now := time.Now()
	for _, v := range views {
		snap.Backends = append(snap.Backends, BackendStatus{
			ID:           v.b.id,
			Addr:         v.ann.Addr,
			MetricsAddr:  v.ann.MetricsAddr,
			Healthy:      v.healthy,
			Draining:     v.draining,
			Failed:       v.failed,
			LiveSessions: v.b.load(),
			Proxied:      v.b.proxied.Load(),
			AgeMs:        now.Sub(v.lastSeen).Milliseconds(),
			Precisions:   v.ann.Precisions,
			Models:       v.ann.Models,
		})
	}
	rt.placements.Range(func(k, val any) bool {
		snap.Placements[k.(string)] = val.(string)
		return true
	})
	return snap
}

// WritePrometheus writes the aggregated observability plane: the
// router's own varade_router_* families, then every live backend's
// /metrics scraped and rebuilt with a `backend` label, then fleet-wide
// aggregate histograms merged across backends. Scrapes happen at call
// time — the figures are as fresh as the slowest backend fetch.
func (rt *Router) WritePrometheus(w io.Writer) {
	rt.healthyGauge.Set(float64(len(rt.tab.views(true))))
	rt.sessionsActive.Set(float64(rt.active.Load()))
	rt.reg.WritePrometheus(w)

	// Rebuild every scrape into one fresh registry so the merged
	// exposition has a single sorted TYPE/HELP block per family no
	// matter how many backends contributed series.
	scrape := obs.NewRegistry()
	client := &http.Client{Timeout: rt.cfg.ScrapeTimeout}
	for _, v := range rt.tab.views(false) {
		if v.draining || v.ann.MetricsAddr == "" {
			continue
		}
		body, err := scrapeBackend(client, v.ann.MetricsAddr)
		if err == nil {
			err = scrape.AbsorbPrometheusText(body, obs.L("backend", v.b.id))
		}
		if err != nil {
			rt.reg.Counter("varade_router_scrape_errors_total",
				"backend /metrics scrapes that failed or did not parse",
				obs.L("backend", v.b.id)).Inc()
		}
	}
	// Fleet-wide latency: the per-backend coalesce histograms merge
	// bucket-wise into one unlabeled aggregate series.
	agg := scrape.Histogram("varade_fleet_coalesce_latency_ns",
		"admission to score-return latency, merged across all backends")
	scrape.VisitHistograms("varade_coalesce_latency_ns", func(_ []obs.Label, h *obs.Histogram) {
		agg.Merge(h)
	})
	scrape.WritePrometheus(w)
}

// ReloadResult is one backend's row in the /reload fan-out report.
type ReloadResult struct {
	Backend string `json:"backend"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	// Skipped marks backends never attempted because an earlier one
	// failed — the canary contract: a bad model file stops at the first
	// backend instead of taking down the fleet.
	Skipped bool `json:"skipped,omitempty"`
}

// ReloadAll orchestrates a model hot-swap across the fleet: it POSTs
// /reload?model= to every healthy backend's metrics plane one at a
// time in ID order, each bounded by Config.ReloadTimeout. The first
// failure stops the rollout; remaining backends are reported as
// skipped. Returns the per-backend report and whether every backend
// reloaded.
func (rt *Router) ReloadAll(ctx context.Context, model string) ([]ReloadResult, bool) {
	views := rt.tab.views(true)
	sort.Slice(views, func(i, j int) bool { return views[i].b.id < views[j].b.id })
	client := &http.Client{Timeout: rt.cfg.ReloadTimeout}
	results := make([]ReloadResult, 0, len(views))
	failed := false
	for _, v := range views {
		res := ReloadResult{Backend: v.b.id}
		switch {
		case failed:
			res.Skipped = true
		case v.ann.MetricsAddr == "":
			res.Error = "backend announces no metrics address"
			failed = true
		default:
			if err := reloadBackend(ctx, client, v.ann.MetricsAddr, model); err != nil {
				res.Error = err.Error()
				failed = true
			} else {
				res.OK = true
			}
		}
		results = append(results, res)
	}
	return results, !failed
}

func reloadBackend(ctx context.Context, client *http.Client, metricsAddr, model string) error {
	u := "http://" + metricsAddr + "/reload"
	if model != "" {
		u += "?model=" + url.QueryEscape(model)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("route: reload %s: %s: %s", metricsAddr, resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

func scrapeBackend(client *http.Client, metricsAddr string) (string, error) {
	resp, err := client.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("route: scrape %s: %s", metricsAddr, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// Handler returns the control/observability mux: POST /register,
// GET /metrics (aggregated), GET /models (ring placement),
// POST /reload?model= (orchestrated fleet hot-swap), GET /healthz.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/register", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var ann Announcement
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&ann); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := rt.Register(ann); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rt.WritePrometheus(w)
	})
	mux.HandleFunc("/models", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rt.Models())
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		results, ok := rt.ReloadAll(r.Context(), r.URL.Query().Get("model"))
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusBadGateway)
		}
		json.NewEncoder(w).Encode(map[string]any{"ok": ok, "backends": results})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		views := rt.tab.views(true)
		ids := make([]string, len(views))
		for i, v := range views {
			ids[i] = v.b.id
		}
		sort.Strings(ids)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "backends": ids, "sessions": rt.active.Load(),
		})
	})
	return mux
}

// ServeControl starts the HTTP control plane on addr and returns the
// bound address. The server stops when ShutdownControl (or Shutdown on
// the passed context) runs.
func (rt *Router) ServeControl(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: rt.Handler()}
	rt.mu.Lock()
	rt.ctl = srv
	rt.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// ShutdownControl stops the HTTP control plane, if one was started.
func (rt *Router) ShutdownControl(ctx context.Context) error {
	rt.mu.Lock()
	srv := rt.ctl
	rt.ctl = nil
	rt.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}
