package route

import (
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Chaos is a deterministic fault-injection proxy for the fleet wire
// protocol: it sits between the router and one backend, relays the
// framed stream with full protocol awareness (preamble, then
// length-prefixed frames), and injects failures on command or on a
// seeded random schedule. Every random draw comes from one seeded
// source, so a failing chaos test replays bit-for-bit from its seed.
//
// Faults on offer:
//
//   - ArmKill(min, max): each new proxied connection draws a budget of
//     min..max client→backend frames from the seeded source and dies
//     when the budget is spent — half the time at a frame boundary,
//     half mid-frame (header forwarded, payload torn), so both the
//     clean-EOF and short-read failure paths in the router get hit.
//   - KillAll: reset every live proxied connection now.
//   - Refuse(on): reject new dials at accept time — the redialing
//     router sees the connection die during its handshake and fails
//     the backend out of the ring.
//   - Blackhole(on): swallow backend→router bytes (scores vanish, the
//     connection stays up) — exercises the heartbeat/TTL plane.
//   - Partition(on): swallow both directions.
//   - SetDelay(d): sleep d before forwarding each client→backend
//     frame, simulating a slow or congested path.
type Chaos struct {
	ln       net.Listener
	upstream string

	mu     sync.Mutex
	rng    *rand.Rand
	conns  map[net.Conn]struct{}
	killLo int
	killHi int
	armed  atomic.Bool

	refuse    atomic.Bool
	blackhole atomic.Bool
	partition atomic.Bool
	delayNS   atomic.Int64
	kills     atomic.Int64

	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewChaos starts a chaos proxy in front of the backend at upstream,
// listening on a fresh loopback port. The seed fixes every random
// decision the proxy will ever make.
func NewChaos(upstream string, seed int64) (*Chaos, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c := &Chaos{
		ln:       ln,
		upstream: upstream,
		rng:      rand.New(rand.NewSource(seed)),
		conns:    make(map[net.Conn]struct{}),
	}
	c.wg.Add(1)
	go c.accept()
	return c, nil
}

// Addr returns the proxy's dial address — what a backend announces as
// its session address to put the proxy in the path.
func (c *Chaos) Addr() string { return c.ln.Addr().String() }

// Kills reports how many connections the armed schedule has killed.
func (c *Chaos) Kills() int64 { return c.kills.Load() }

// ArmKill schedules every connection accepted from now on to die after
// a seeded-random budget of min..max relayed client→backend frames.
// Budgets on live connections keep counting; Disarm stops them firing.
func (c *Chaos) ArmKill(min, max int) {
	c.mu.Lock()
	c.killLo, c.killHi = min, max
	c.mu.Unlock()
	c.armed.Store(true)
}

// Disarm stops scheduled kills, including budgets already drawn on
// live connections.
func (c *Chaos) Disarm() { c.armed.Store(false) }

// Refuse makes the proxy reject new connections while on.
func (c *Chaos) Refuse(on bool) { c.refuse.Store(on) }

// Blackhole swallows backend→router bytes while on.
func (c *Chaos) Blackhole(on bool) { c.blackhole.Store(on) }

// Partition swallows both directions while on: the connection stays
// established but falls silent, as a network partition looks.
func (c *Chaos) Partition(on bool) { c.partition.Store(on) }

// SetDelay sleeps d before forwarding each client→backend frame.
func (c *Chaos) SetDelay(d time.Duration) { c.delayNS.Store(int64(d)) }

// KillAll resets every live proxied connection immediately.
func (c *Chaos) KillAll() {
	c.mu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
}

// Close shuts the proxy down: no new connections, live ones reset.
func (c *Chaos) Close() error {
	c.closed.Store(true)
	err := c.ln.Close()
	c.KillAll()
	c.wg.Wait()
	return err
}

func (c *Chaos) accept() {
	defer c.wg.Done()
	for {
		client, err := c.ln.Accept()
		if err != nil {
			return
		}
		if c.refuse.Load() {
			client.Close()
			continue
		}
		up, err := net.Dial("tcp", c.upstream)
		if err != nil {
			client.Close()
			continue
		}
		// Draw this connection's fate while holding the seeded source:
		// the kill budget and the boundary-vs-mid-frame coin.
		c.mu.Lock()
		budget, mid := 0, false
		if c.killHi >= c.killLo && c.killHi > 0 {
			budget = c.killLo + c.rng.Intn(c.killHi-c.killLo+1)
			mid = c.rng.Intn(2) == 0
		}
		c.conns[client] = struct{}{}
		c.conns[up] = struct{}{}
		c.mu.Unlock()

		c.wg.Add(2)
		go c.relayFrames(client, up, budget, mid)
		go c.relayRaw(up, client)
	}
}

func (c *Chaos) drop(conns ...net.Conn) {
	c.mu.Lock()
	for _, conn := range conns {
		conn.Close()
		delete(c.conns, conn)
	}
	c.mu.Unlock()
}

// relayFrames forwards the client→backend direction frame by frame:
// the 4-byte preamble, then length-prefixed frames, killing the pair
// when an armed budget is spent.
func (c *Chaos) relayFrames(client, up net.Conn, budget int, mid bool) {
	defer c.wg.Done()
	defer c.drop(client, up)

	var pre [4]byte
	if _, err := io.ReadFull(client, pre[:]); err != nil {
		return
	}
	if c.swallowed() {
		c.sink(client)
		return
	}
	if _, err := up.Write(pre[:]); err != nil {
		return
	}
	var hdr [5]byte
	frames := 0
	for {
		if _, err := io.ReadFull(client, hdr[:]); err != nil {
			return
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:4]))
		if d := c.delayNS.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		if c.swallowed() {
			c.sink(client)
			return
		}
		frames++
		if budget > 0 && frames >= budget && c.armed.Load() {
			c.kills.Add(1)
			if mid {
				// Tear mid-frame: the backend gets the header and half
				// the payload, then a reset — a short read, not EOF.
				up.Write(hdr[:])
				io.CopyN(up, client, n/2)
			}
			return
		}
		if _, err := up.Write(hdr[:]); err != nil {
			return
		}
		if _, err := io.CopyN(up, client, n); err != nil {
			return
		}
	}
}

// relayRaw forwards the backend→router direction without framing —
// kill decisions key off client frames, so plain copying suffices.
func (c *Chaos) relayRaw(from, to net.Conn) {
	defer c.wg.Done()
	defer c.drop(from, to)
	buf := make([]byte, 32<<10)
	for {
		n, err := from.Read(buf)
		if n > 0 && !c.blackhole.Load() && !c.partition.Load() {
			if _, werr := to.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func (c *Chaos) swallowed() bool { return c.partition.Load() }

// sink drains a partitioned connection so the far side's writes keep
// "succeeding" — the authentic shape of a partition with live TCP
// buffers — until the connection dies or the partition would matter no
// more (the proxy closing tears everything down anyway).
func (c *Chaos) sink(conn net.Conn) {
	io.Copy(io.Discard, conn)
}
