// End-to-end tests for the sharded serving tier: real serve.Servers
// behind a real Router, driven by the real client. They live in
// package route_test because serve imports route (for the announcer) —
// the reverse import only exists here.
package route_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/obs"
	"varade/internal/route"
	"varade/internal/serve"
	"varade/internal/stream"
	"varade/internal/tensor"
)

// newSharedRegistry builds one registry holding a tiny VARADE model
// registered as "varade" — every backend in a test fleet serves from
// it, so scores are comparable across backends.
func newSharedRegistry(t *testing.T, channels int) (*serve.Registry, *core.Model) {
	t.Helper()
	reg, err := serve.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.New(core.TinyConfig(channels))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("varade", model); err != nil {
		t.Fatal(err)
	}
	return reg, model
}

// newBackend starts one fleet server over the shared registry, with a
// metrics endpoint so the router can scrape it.
func newBackend(t *testing.T, reg *serve.Registry) (*serve.Server, string, string) {
	t.Helper()
	srv, err := serve.NewServer(serve.Config{
		Registry:      reg,
		DefaultModel:  "varade",
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	maddr, err := srv.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr, maddr
}

func synthRows(steps, channels int, seed uint64) [][]float64 {
	rng := tensor.NewRNG(seed)
	rows := make([][]float64, steps)
	walk := make([]float64, channels)
	for i := range rows {
		rows[i] = make([]float64, channels)
		for j := 0; j < channels; j++ {
			walk[j] += rng.NormFloat64() * 0.1
			rows[i][j] = walk[j]
		}
	}
	return rows
}

func seriesOf(rows [][]float64) *tensor.Tensor {
	s := tensor.New(len(rows), len(rows[0]))
	d := s.Data()
	c := len(rows[0])
	for i, r := range rows {
		copy(d[i*c:(i+1)*c], r)
	}
	return s
}

func waitHealthy(t *testing.T, rt *route.Router, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		healthy := 0
		for _, b := range rt.Models().Backends {
			if b.Healthy {
				healthy++
			}
		}
		if healthy == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d healthy backends: %+v", want, rt.Models().Backends)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterE2E is the acceptance gate for the sharded tier: two
// backends behind one router, registered over the real announcement
// plane. Sessions land per (model, precision) placement key, v2
// Welcomes name the backend, v1 sessions pass through unchanged,
// float64 scores through the router are bit-identical to the
// single-process path, and the aggregated /metrics exposition lints
// with per-backend labels.
func TestRouterE2E(t *testing.T) {
	const (
		channels = 3
		steps    = 60
	)
	reg, model := newSharedRegistry(t, channels)
	srv1, addr1, maddr1 := newBackend(t, reg)
	defer srv1.Shutdown(context.Background())
	srv2, addr2, maddr2 := newBackend(t, reg)
	defer srv2.Shutdown(context.Background())

	rt := route.NewRouter(route.Config{DefaultModel: "varade", TTL: 2 * time.Second})
	raddr, err := rt.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := rt.ServeControl("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())

	ctlURL := "http://" + ctl
	if err := srv1.StartAnnouncer(ctlURL, "b1", addr1, maddr1, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := srv2.StartAnnouncer(ctlURL, "b2", addr2, maddr2, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitHealthy(t, rt, 2)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Placement: sessions sharing a (model, precision) key co-locate on
	// one backend, and the v2 Welcome names it.
	for _, prec := range []string{"float64", "float32", "int8"} {
		var backends []string
		for i := 0; i < 2; i++ {
			cl, err := serve.DialWith(ctx, raddr, "varade", channels, stream.SessionCaps{Precision: prec})
			if err != nil {
				t.Fatalf("%s session %d: %v", prec, i, err)
			}
			w := cl.Welcome()
			if w.Backend != "b1" && w.Backend != "b2" {
				t.Fatalf("%s session: welcome backend %q", prec, w.Backend)
			}
			if w.Precision != prec {
				t.Fatalf("%s session: granted precision %q", prec, w.Precision)
			}
			backends = append(backends, w.Backend)
			cl.Bye()
			cl.Close()
		}
		if backends[0] != backends[1] {
			t.Fatalf("%s sessions split across %v, want co-located", prec, backends)
		}
	}

	// Bit-identity: a full float64 stream through the router must score
	// exactly like the per-device path (and like any direct backend).
	rows := synthRows(steps, channels, 42)
	want := detect.ScoreSeries(model, seriesOf(rows))
	w := model.WindowSize()
	for _, target := range []string{raddr, addr1} {
		cl, err := serve.Dial(ctx, target, "varade", channels)
		if err != nil {
			t.Fatal(err)
		}
		if b := cl.Welcome().Backend; b != "" {
			t.Fatalf("v1 welcome through %s names backend %q, must stay byte-identical", target, b)
		}
		var scores []stream.Score
		if err := cl.Run(ctx, rows, 16, func(sc stream.Score) { scores = append(scores, sc) }); err != nil {
			t.Fatalf("stream via %s: %v", target, err)
		}
		cl.Close()
		if len(scores) != steps-w+1 {
			t.Fatalf("via %s: %d scores, want %d", target, len(scores), steps-w+1)
		}
		for _, sc := range scores {
			if sc.Value != want[sc.Index] {
				t.Fatalf("via %s: score[%d] = %g, single-process path %g", target, sc.Index, sc.Value, want[sc.Index])
			}
		}
	}

	// Ring placement is visible on /models.
	resp, err := http.Get(ctlURL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var snap route.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Backends) != 2 {
		t.Fatalf("/models lists %d backends, want 2", len(snap.Backends))
	}
	if len(snap.Placements) == 0 {
		t.Fatal("/models shows no ring placements")
	}
	for key, id := range snap.Placements {
		if id != "b1" && id != "b2" {
			t.Fatalf("placement %q -> unknown backend %q", key, id)
		}
	}
	if _, ok := snap.Placements["varade@latest:int8"]; !ok {
		t.Fatalf("placements missing int8 key: %v", snap.Placements)
	}

	// The aggregated exposition lints, carries per-backend labels, and
	// merges the fleet-wide coalesce histogram.
	resp, err = http.Get(ctlURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if err := obs.LintPrometheusText(body); err != nil {
		t.Fatalf("aggregated /metrics does not lint: %v", err)
	}
	for _, needle := range []string{
		`backend="b1"`,
		`backend="b2"`,
		"varade_router_sessions_total{",
		"varade_fleet_coalesce_latency_ns_bucket{",
	} {
		if !strings.Contains(body, needle) {
			t.Fatalf("aggregated /metrics missing %q", needle)
		}
	}
}

// TestRouterBackendFailure kills a backend mid-session: the proxied
// client must keep streaming through a transparent hand-off (zero
// reconnects, scores bit-identical to an unbroken run), the router must
// not leak relay goroutines, the dead backend must drop from the ring,
// and a fresh session must land on the survivor.
func TestRouterBackendFailure(t *testing.T) {
	const channels = 2
	reg, model := newSharedRegistry(t, channels)
	srv1, addr1, _ := newBackend(t, reg)
	defer srv1.Shutdown(context.Background())
	srv2, addr2, _ := newBackend(t, reg)
	defer srv2.Shutdown(context.Background())

	rt := route.NewRouter(route.Config{DefaultModel: "varade", TTL: time.Hour})
	raddr, err := rt.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())

	// Manual registration (no announcer heartbeat): the kill below is a
	// crash, not a graceful de-registration.
	servers := map[string]*serve.Server{"b1": srv1, "b2": srv2}
	rt.Register(route.Announcement{ID: "b1", Addr: addr1})
	rt.Register(route.Announcement{ID: "b2", Addr: addr2})

	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := serve.DialWith(ctx, raddr, "varade", channels, stream.SessionCaps{})
	if err != nil {
		t.Fatal(err)
	}
	victim := cl.Welcome().Backend
	if servers[victim] == nil {
		t.Fatalf("welcome names unknown backend %q", victim)
	}

	// Prove the session is live: stream one window, read its score. The
	// full stream (4w rows) fits inside the replay ring (w−1+32), so the
	// hand-off below is lossless no matter how many rows race ahead of
	// the router's failure detection.
	w := model.WindowSize()
	steps := 4 * w
	rows := synthRows(steps, channels, 7)
	want := detect.ScoreSeries(model, seriesOf(rows))
	scores := make(chan stream.Score, steps)
	readDone := make(chan error, 1)
	go func() {
		defer close(scores)
		for {
			batch, err := cl.ReadScores()
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				readDone <- err
				return
			}
			for _, sc := range batch {
				scores <- sc
			}
		}
	}()
	if err := cl.Send(rows[:w]); err != nil {
		t.Fatal(err)
	}
	select {
	case sc := <-scores:
		if sc.Value != want[sc.Index] {
			t.Fatalf("pre-kill score[%d] = %g, want %g", sc.Index, sc.Value, want[sc.Index])
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no score from live session")
	}

	// Crash the victim: expired context forces connections closed.
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	servers[victim].Shutdown(dead)

	// The SAME client keeps streaming: the router hands the session off
	// to the survivor (Hello replay + ring warmup) with zero client
	// reconnects, and every score stays bit-identical to the unbroken
	// oracle.
	for start := w; start < steps; start += 4 {
		end := start + 4
		if end > steps {
			end = steps
		}
		if err := cl.Send(rows[start:end]); err != nil {
			t.Fatalf("send after backend death: %v", err)
		}
	}
	if err := cl.Bye(); err != nil {
		t.Fatalf("bye after backend death: %v", err)
	}
	got := make(map[int]float64)
	got[w-1] = want[w-1] // the pre-kill score, already consumed
	deadlineCh := time.After(20 * time.Second)
collect:
	for {
		select {
		case sc, ok := <-scores:
			if !ok {
				break collect
			}
			if prev, dup := got[sc.Index]; dup && prev != sc.Value {
				t.Fatalf("score[%d] delivered twice with different values", sc.Index)
			}
			got[sc.Index] = sc.Value
		case <-deadlineCh:
			t.Fatal("score stream did not finish after hand-off")
		}
	}
	if err := <-readDone; err != nil {
		t.Fatalf("client stream errored across hand-off: %v", err)
	}
	cl.Close()
	for idx := w - 1; idx < steps; idx++ {
		v, ok := got[idx]
		if !ok {
			t.Fatalf("score[%d] missing after hand-off (got %d of %d)", idx, len(got), steps-w+1)
		}
		if v != want[idx] {
			t.Fatalf("score[%d] = %g across hand-off, want %g", idx, v, want[idx])
		}
	}
	if total, _, _ := rt.HandoffStats(); total < 1 {
		t.Fatalf("router recorded %d hand-offs, want >= 1", total)
	}

	// Reconnect: the ring still prefers the dead backend for this key,
	// so the router's dial fails it out and the session lands on the
	// survivor.
	survivor := "b1"
	if victim == "b1" {
		survivor = "b2"
	}
	cl2, err := serve.DialWith(ctx, raddr, "varade", channels, stream.SessionCaps{})
	if err != nil {
		t.Fatalf("reconnect after backend death: %v", err)
	}
	if got := cl2.Welcome().Backend; got != survivor {
		t.Fatalf("reconnect landed on %q, want survivor %q", got, survivor)
	}
	steps2 := 3 * w
	rows2 := synthRows(steps2, channels, 8)
	n := 0
	if err := cl2.Run(ctx, rows2, 8, func(stream.Score) { n++ }); err != nil {
		t.Fatalf("reconnected stream: %v", err)
	}
	cl2.Close()
	if wantN := steps2 - w + 1; n != wantN {
		t.Fatalf("reconnected stream scored %d windows, want %d", n, wantN)
	}

	// The dead backend is drained from the ring (dial failure marked it)…
	foundDead := false
	for _, b := range rt.Models().Backends {
		if b.ID == victim {
			foundDead = true
			if b.Healthy {
				t.Fatalf("dead backend %q still marked healthy", victim)
			}
		}
	}
	if !foundDead {
		t.Fatalf("dead backend %q missing from snapshot", victim)
	}

	// …and every relay goroutine of the severed session has exited. The
	// slack absorbs the survivor's lazily started serving-group flusher.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d > baseline %d+4; dump:\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
