package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"varade/internal/obs"
	"varade/internal/stream"
)

// maxScoreFrame caps how many scores the writer packs into one outbound
// frame (or one buffered run of CSV lines).
const maxScoreFrame = 1024

// admitted is one sample plus its admission timestamp — stamped once
// per inbound frame by the reader, so the coalescer can measure the
// admission→enqueue wait without any extra clock reads on the pump.
type admitted struct {
	sample []float64
	at     time.Time
}

// session is one device stream multiplexed onto the server: it owns the
// per-device window state (ring buffer + sample index) and the two
// bounded queues that decouple the connection from the shared compute.
//
// Data path: reader goroutine (connection → admission Bus, drop-oldest
// under backpressure) → pump goroutine (samples → sliding windows →
// group coalescer) → flusher (shared, scores batches) → out queue →
// writer goroutine (scores → connection).
type session struct {
	srv    *Server
	grp    *modelGroup
	conn   *connRW
	binary bool

	// id names the session in /sessions; remote is the peer address.
	id     int64
	remote string

	// sketch accumulates the session's score distribution — the
	// per-session half of the drift-detection substrate. Only the group
	// flusher writes it; /sessions snapshots it.
	sketch obs.Welford

	// Granted v2 capabilities (defaults for v1/line sessions): the
	// outbound score-frame cap and the admission drop policy. reqBatch
	// keeps the frame cap the client itself asked for (0 = none) — it
	// also feeds the group's coalescer fill target.
	maxOut     int
	reqBatch   int
	dropNewest bool
	// reqSLO is the p99 coalescing-latency budget the client negotiated
	// (0 = none); it feeds the group's effective flush deadline.
	reqSLO time.Duration

	bus *stream.Bus[admitted] // admission control: bounded, negotiated policy
	in  <-chan admitted       // the bus subscription the pump drains
	out chan stream.Score     // scored results awaiting the writer

	buf   *stream.WindowBuffer
	index int

	// outstanding counts windows handed to the coalescer whose scores
	// have not yet been emitted; the session closes its out queue only
	// when input is done AND outstanding reaches zero, so a graceful
	// drain never drops tail scores.
	outstanding atomic.Int64
	inputDone   atomic.Bool
	finishOnce  sync.Once
	flushed     chan struct{}

	// readErr records a malformed-input error so the writer can report
	// it to the client after the drained scores, before closing. Written
	// by the reader before bus.Close; the close → pump → out-close chain
	// orders it before the writer's final read.
	readErr string
}

func newSession(srv *Server, grp *modelGroup, conn *connRW, binary bool, granted stream.SessionCaps, reqBatch int, reqSLO time.Duration) *session {
	bus := stream.NewBus[admitted]()
	bus.SetDropCounter(grp.obs.busDrops)
	maxOut := granted.MaxBatch
	if maxOut <= 0 || maxOut > maxScoreFrame {
		maxOut = maxScoreFrame
	}
	remote := ""
	if conn.Conn != nil && conn.RemoteAddr() != nil {
		remote = conn.RemoteAddr().String()
	}
	return &session{
		srv:        srv,
		grp:        grp,
		conn:       conn,
		binary:     binary,
		id:         srv.nextSessionID(),
		remote:     remote,
		maxOut:     maxOut,
		reqBatch:   reqBatch,
		reqSLO:     reqSLO,
		dropNewest: granted.DropPolicy == stream.DropNewest,
		bus:        bus,
		in:         bus.Subscribe(srv.cfg.QueueDepth),
		out:        make(chan stream.Score, srv.cfg.OutDepth),
		buf:        stream.NewWindowBuffer(grp.w, grp.c),
		flushed:    make(chan struct{}),
	}
}

// run drives the session to completion: it starts the pump and writer,
// consumes the connection until EOF/Bye/error, then drains — every
// admitted sample is windowed, every produced window is scored, every
// score is flushed to the client — before the connection closes.
func (s *session) run(br *bufio.Reader) {
	s.srv.met.sessionsTotal.Add(1)
	s.srv.met.sessionsActive.Add(1)
	defer s.srv.met.sessionsActive.Add(-1)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.pump()
	}()
	go func() {
		defer wg.Done()
		s.writer()
	}()

	var err error
	if s.binary {
		err = s.readFrames(br)
	} else {
		err = s.readLines(br)
	}
	if err != nil {
		s.readErr = err.Error()
	}
	s.bus.Close() // pump drains what was admitted, then winds down
	wg.Wait()
}

// admit publishes one sample into the session's admission queue,
// stamped with its arrival time. When the pump can't keep up the Bus
// sheds under the session's negotiated policy — by default the oldest
// queued sample goes (freshest data wins); a drop-newest session sheds
// the incoming sample instead. Either way the reader never blocks.
func (s *session) admit(sample []float64, at time.Time) {
	s.srv.met.samplesIn.Add(1)
	if s.dropNewest {
		s.bus.PublishDropNewest(admitted{sample: sample, at: at})
	} else {
		s.bus.Publish(admitted{sample: sample, at: at})
	}
}

// readLines consumes the CSV line protocol until EOF; a malformed
// sample ends the session with an error the client gets to see.
func (s *session) readLines(br *bufio.Reader) error {
	return stream.ReadSamples(br, s.grp.c, func(sample []float64) bool {
		s.admit(sample, time.Now())
		return true
	})
}

// readFrames consumes the binary framing until Bye or EOF; a malformed
// payload ends the session with an error the client gets to see.
func (s *session) readFrames(br *bufio.Reader) error {
	for {
		t, payload, err := stream.ReadFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
				return nil // connection teardown, not a protocol error
			}
			return err // e.g. an oversized frame length
		}
		switch t {
		case stream.FrameSamples:
			samples, err := stream.DecodeSamplesPayload(payload, s.grp.c)
			if err != nil {
				return err
			}
			at := time.Now() // one clock read per frame, shared by its samples
			for _, sample := range samples {
				s.admit(sample, at)
			}
		case stream.FrameBye:
			return nil
		default:
			// Ignore unknown frame types for forward compatibility.
		}
	}
}

// pump turns admitted samples into sliding windows and feeds the group
// coalescer. When the admission queue closes it marks input done and
// waits for every outstanding window's score to be emitted.
func (s *session) pump() {
	for a := range s.in {
		s.buf.Push(a.sample)
		s.index++
		if s.buf.Full() {
			s.outstanding.Add(1)
			s.grp.add(s, s.index-1, s.buf, a.at)
		}
	}
	s.inputDone.Store(true)
	if s.outstanding.Load() == 0 {
		s.finish()
	} else {
		s.grp.kickNow() // flush the tail promptly rather than on the next tick
	}
	<-s.flushed
	close(s.out)
}

// emit delivers one score to the writer queue, dropping (and counting)
// when the client isn't draining fast enough — the flusher must never
// block on a slow connection.
func (s *session) emit(sc stream.Score) {
	select {
	case s.out <- sc:
	default:
		s.srv.met.scoresDropped.Add(1)
		s.grp.obs.scoreDrops.Inc()
	}
	s.scoreDone()
}

// scoreDone retires one outstanding window and completes the drain
// handshake once input has ended.
func (s *session) scoreDone() {
	if s.outstanding.Add(-1) == 0 && s.inputDone.Load() {
		s.finish()
	}
}

func (s *session) finish() {
	s.finishOnce.Do(func() { close(s.flushed) })
}

// writer streams scores back to the client, packing everything queued —
// up to the session's negotiated frame cap — into one frame (binary) or
// one buffered run of lines (CSV) per write. Write errors flip it into
// drain mode so the rest of the pipeline still unwinds cleanly.
func (s *session) writer() {
	defer s.conn.Close()
	dead := false
	batch := make([]stream.Score, 0, s.maxOut)
	for sc := range s.out {
		batch = append(batch[:0], sc)
	gather:
		for len(batch) < s.maxOut {
			select {
			case more, ok := <-s.out:
				if !ok {
					break gather
				}
				batch = append(batch, more)
			default:
				break gather
			}
		}
		if dead {
			continue
		}
		if err := s.writeScores(batch); err != nil {
			dead = true
		}
	}
	if !dead {
		if s.readErr != "" {
			if s.binary {
				stream.WriteFrame(s.conn, stream.FrameError, []byte(s.readErr))
			} else {
				fmt.Fprintf(s.conn, "error: %s\n", s.readErr)
			}
		}
		s.flushConn()
	}
}

func (s *session) writeScores(batch []stream.Score) error {
	if s.binary {
		if err := stream.WriteFrame(s.conn, stream.FrameScores, stream.EncodeScoresPayload(batch)); err != nil {
			return err
		}
	} else {
		for _, sc := range batch {
			if _, err := fmt.Fprintf(s.conn, "%d,%.17g\n", sc.Index, sc.Value); err != nil {
				return err
			}
		}
	}
	return s.flushConn()
}

func (s *session) flushConn() error { return s.conn.Flush() }
