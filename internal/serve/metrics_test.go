package serve

import (
	"testing"
	"time"
)

// TestLatencyPercentilesBoundedMemory pins the fixed-size latency ring:
// a long-running session may observe millions of coalesce latencies, but
// the percentile window must retain at most latRingSize samples and keep
// reporting percentiles of the most recent window rather than growing or
// freezing.
func TestLatencyPercentilesBoundedMemory(t *testing.T) {
	m := newMetrics()
	// Far more observations than the ring holds: 3 full wraps of a
	// constant 5ms latency…
	for i := 0; i < 3*latRingSize; i++ {
		m.observeLatency(5 * time.Millisecond)
	}
	if n := len(m.lat); n != latRingSize {
		t.Fatalf("latency storage grew to %d entries, want fixed %d", n, latRingSize)
	}
	p50, p99 := m.latencyPercentiles()
	if p50 != 5 || p99 != 5 {
		t.Fatalf("constant 5ms stream: p50 %.2f p99 %.2f", p50, p99)
	}
	// …then one full window of 1ms: the old 5ms samples must age out
	// completely, proving the window really is the last latRingSize
	// observations.
	for i := 0; i < latRingSize; i++ {
		m.observeLatency(time.Millisecond)
	}
	p50, p99 = m.latencyPercentiles()
	if p50 != 1 || p99 != 1 {
		t.Fatalf("after ring wrap: p50 %.2f p99 %.2f, want 1ms", p50, p99)
	}
}

// TestLatencyPercentilesPartialWindow covers the pre-wrap regime and the
// empty ring.
func TestLatencyPercentilesPartialWindow(t *testing.T) {
	m := newMetrics()
	if p50, p99 := m.latencyPercentiles(); p50 != 0 || p99 != 0 {
		t.Fatalf("empty ring: p50 %.2f p99 %.2f", p50, p99)
	}
	for i := 1; i <= 100; i++ {
		m.observeLatency(time.Duration(i) * time.Millisecond)
	}
	p50, p99 := m.latencyPercentiles()
	if p50 < 49 || p50 > 51 {
		t.Fatalf("p50 of 1..100ms = %.2f", p50)
	}
	if p99 < 98 || p99 > 100 {
		t.Fatalf("p99 of 1..100ms = %.2f", p99)
	}
}
