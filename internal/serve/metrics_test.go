package serve

import (
	"strings"
	"testing"
	"time"

	"varade/internal/obs"
)

// TestLatencyPercentilesMergesGroups: the top-level p50/p99 must be the
// merge of every group's coalesce-latency histogram, not any single
// group's view.
func TestLatencyPercentilesMergesGroups(t *testing.T) {
	m := newMetrics()
	a := m.reg.Histogram("varade_coalesce_latency_ns", "", obs.L("group", "a"))
	b := m.reg.Histogram("varade_coalesce_latency_ns", "", obs.L("group", "b"))
	// Group a: 50 windows at ~1ms. Group b: 50 windows at ~100ms. The
	// merged median sits in group a's mass, the merged p99 in group b's —
	// neither group alone reports both.
	for i := 0; i < 50; i++ {
		a.Record(int64(time.Millisecond))
		b.Record(int64(100 * time.Millisecond))
	}
	p50, p99 := m.latencyPercentiles()
	if p50 < 0.9 || p50 > 1.2 {
		t.Fatalf("merged p50 = %gms, want ~1ms", p50)
	}
	if p99 < 90 || p99 > 110 {
		t.Fatalf("merged p99 = %gms, want ~100ms", p99)
	}
}

func TestLatencyPercentilesEmpty(t *testing.T) {
	m := newMetrics()
	if p50, p99 := m.latencyPercentiles(); p50 != 0 || p99 != 0 {
		t.Fatalf("empty metrics reported p50=%g p99=%g", p50, p99)
	}
}

// TestSnapshotWindowedRate: scored_per_sec_1m must track recent
// throughput while scored_per_sec stays the lifetime average.
func TestSnapshotWindowedRate(t *testing.T) {
	m := newMetrics()
	t0 := time.Now()
	m.rate.Observe(0, t0)
	// Sustained 5000 windows/s for 4 minutes of simulated time: the EWMA
	// (tau 60s) must converge near the true rate.
	count := int64(0)
	var rate float64
	for i := 1; i <= 240; i++ {
		count += 5000
		rate = m.rate.Observe(count, t0.Add(time.Duration(i)*time.Second))
	}
	if rate < 4500 || rate > 5500 {
		t.Fatalf("windowed rate %g after sustained 5000/s, want ~5000", rate)
	}
	m.windowsScored.Add(count)
	snap := m.snapshot(nil)
	if snap.WindowsScored != count {
		t.Fatalf("windows scored %d", snap.WindowsScored)
	}
	if snap.ScoredPerSec1m <= 0 {
		t.Fatalf("scored_per_sec_1m = %g, want > 0", snap.ScoredPerSec1m)
	}
}

// TestAmortSetBuckets: flushes land in ceil(log2) buckets, rows report
// ns/window, and empty buckets stay out of the table.
func TestAmortSetBuckets(t *testing.T) {
	m := newMetrics()
	a := newAmortSet(m.reg, 256, obs.L("group", "g"))
	a.record(1, 100*time.Nanosecond)
	a.record(2, 200*time.Nanosecond)
	a.record(3, 600*time.Nanosecond) // bucket le=4
	a.record(256, 256*time.Microsecond)
	a.record(400, 400*time.Microsecond) // clamps into the top bucket
	a.record(0, time.Second)            // ignored

	rows := a.rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %+v, want 4 buckets", rows)
	}
	if rows[0].BatchLE != 1 || rows[0].Flushes != 1 || rows[0].Windows != 1 {
		t.Fatalf("le=1 row %+v", rows[0])
	}
	if rows[2].BatchLE != 4 || rows[2].NsPerWindow != 200 {
		t.Fatalf("le=4 row %+v, want 200 ns/window", rows[2])
	}
	top := rows[3]
	if top.BatchLE != 256 || top.Flushes != 2 || top.Windows != 256+400 {
		t.Fatalf("top row %+v", top)
	}
	// The amortisation series must reach Prometheus exposition.
	var sb strings.Builder
	m.reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `varade_flush_amort_windows_total{batch_le="4",group="g"} 3`) {
		t.Fatalf("amortisation series missing from exposition:\n%s", sb.String())
	}
}

// TestScoreDistVARADE: the mean-predicted-variance field appears only
// for VARADE-kind groups, where the score IS the mean predicted
// variance of the variational head.
func TestScoreDistVARADE(t *testing.T) {
	var w obs.Welford
	w.Add(1.5)
	w.Add(2.5)
	d := scoreDist(w.Snapshot(), "VARADE")
	if d == nil || d.MeanPredVariance == nil {
		t.Fatal("VARADE dist must carry mean_pred_variance")
	}
	if *d.MeanPredVariance != d.Mean || d.Mean != 2.0 {
		t.Fatalf("mean_pred_variance %v, mean %v", *d.MeanPredVariance, d.Mean)
	}
	if d2 := scoreDist(w.Snapshot(), "AE"); d2 == nil || d2.MeanPredVariance != nil {
		t.Fatal("non-VARADE dist must omit mean_pred_variance")
	}
	if scoreDist(obs.WelfordSnapshot{}, "VARADE") != nil {
		t.Fatal("empty sketch must yield nil dist")
	}
}

func TestKernelInfoSeries(t *testing.T) {
	m := newMetrics()
	var sb strings.Builder
	m.reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "varade_kernel_info{") {
		t.Fatalf("kernel info gauge missing:\n%s", sb.String())
	}
	if err := obs.LintPrometheusText(sb.String()); err != nil {
		t.Fatalf("fresh registry fails lint: %v", err)
	}
}
