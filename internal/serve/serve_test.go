package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/obs"
	"varade/internal/stream"
	"varade/internal/tensor"
)

// newFleetServer builds a registry with one tiny VARADE model and a
// running server for it.
func newFleetServer(t *testing.T, channels int, cfg Config) (*Server, string, *core.Model) {
	t.Helper()
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.New(core.TinyConfig(channels))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("varade", model); err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	if cfg.DefaultModel == "" {
		cfg.DefaultModel = "varade"
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr, model
}

func rowsOf(series *tensor.Tensor) [][]float64 {
	out := make([][]float64, series.Dim(0))
	for i := range out {
		out[i] = series.Row(i).Data()
	}
	return out
}

// TestFleet64SessionsBitIdentical is the acceptance gate: 64 concurrent
// device sessions, each with its own stream, scored through cross-session
// batch coalescing — and every session's scores must be bit-identical to
// detect.ScoreSeries run on its series alone.
func TestFleet64SessionsBitIdentical(t *testing.T) {
	const (
		sessions = 64
		steps    = 50
		channels = 3
	)
	srv, addr, model := newFleetServer(t, channels, Config{
		FlushInterval: time.Millisecond,
		QueueDepth:    steps + 8, // no admission drops: the assertion needs every window
	})
	defer srv.Shutdown(context.Background())

	w := model.WindowSize()
	type result struct {
		id     int
		scores []stream.Score
		err    error
	}
	results := make(chan result, sessions)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for id := 0; id < sessions; id++ {
		go func(id int) {
			series := synthSeries(steps, channels, uint64(100+id))
			cl, err := Dial(ctx, addr, "", channels)
			if err != nil {
				results <- result{id: id, err: err}
				return
			}
			defer cl.Close()
			var scores []stream.Score
			err = cl.Run(ctx, rowsOf(series), 16, func(sc stream.Score) {
				scores = append(scores, sc)
			})
			results <- result{id: id, scores: scores, err: err}
		}(id)
	}
	for i := 0; i < sessions; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("session %d: %v", r.id, r.err)
		}
		series := synthSeries(steps, channels, uint64(100+r.id))
		want := detect.ScoreSeries(model, series)
		if len(r.scores) != steps-w+1 {
			t.Fatalf("session %d: %d scores want %d", r.id, len(r.scores), steps-w+1)
		}
		for j, sc := range r.scores {
			if sc.Index != w-1+j {
				t.Fatalf("session %d: score %d has index %d", r.id, j, sc.Index)
			}
			if sc.Value != want[sc.Index] {
				t.Fatalf("session %d: score at %d = %g, per-device path %g", r.id, sc.Index, sc.Value, want[sc.Index])
			}
		}
	}

	m := srv.Metrics()
	if m.TotalSessions != sessions {
		t.Fatalf("metrics sessions %d want %d", m.TotalSessions, sessions)
	}
	if want := int64(sessions * (steps - w + 1)); m.WindowsScored != want {
		t.Fatalf("metrics windows %d want %d", m.WindowsScored, want)
	}
	if m.SamplesDropped != 0 || m.ScoresDropped != 0 {
		t.Fatalf("unexpected drops: samples=%d scores=%d", m.SamplesDropped, m.ScoresDropped)
	}
	if m.Batches <= 0 || m.AvgBatchSize < 1 {
		t.Fatalf("implausible batching: %d batches avg %.2f", m.Batches, m.AvgBatchSize)
	}

	// The per-group amortisation table must be populated: every scored
	// window lands in exactly one (batch-size bucket) row.
	var ms *ModelStatus
	for i := range m.Models {
		if m.Models[i].Model == "varade" {
			ms = &m.Models[i]
		}
	}
	if ms == nil {
		t.Fatal("varade group missing from metrics")
	}
	if len(ms.Amortization) == 0 {
		t.Fatal("amortisation table empty after 64-session fleet run")
	}
	var amortWindows, amortFlushes int64
	for _, row := range ms.Amortization {
		if row.Flushes <= 0 || row.Windows <= 0 || row.NsPerWindow <= 0 {
			t.Fatalf("degenerate amortisation row %+v", row)
		}
		amortWindows += row.Windows
		amortFlushes += row.Flushes
	}
	if amortWindows != m.WindowsScored {
		t.Fatalf("amortisation windows %d != windows scored %d", amortWindows, m.WindowsScored)
	}
	if amortFlushes != m.Batches {
		t.Fatalf("amortisation flushes %d != batches %d", amortFlushes, m.Batches)
	}
	// The stage timers must have seen every window too.
	if st, ok := ms.Stages["score"]; !ok || st.Windows != m.WindowsScored {
		t.Fatalf("score stage %+v, want windows %d", ms.Stages["score"], m.WindowsScored)
	}
	// The group's score sketch covers all windows; it is VARADE-kind, so
	// mean predicted variance rides along.
	if ms.ScoreDist == nil || ms.ScoreDist.Count != uint64(m.WindowsScored) {
		t.Fatalf("score dist %+v, want count %d", ms.ScoreDist, m.WindowsScored)
	}
	if ms.ScoreDist.MeanPredVariance == nil {
		t.Fatal("VARADE group missing mean_pred_variance")
	}
	t.Logf("64 sessions: %d windows in %d batches (avg %.1f windows/batch), p99 coalesce %.2fms, %d amort rows",
		m.WindowsScored, m.Batches, m.AvgBatchSize, m.P99CoalesceMs, len(ms.Amortization))
}

// TestLineProtocolSession drives the server with the plain CSV line
// protocol — the netcat/legacy path — and checks scores line up with the
// per-device engine.
func TestLineProtocolSession(t *testing.T) {
	const steps, channels = 30, 2
	srv, addr, model := newFleetServer(t, channels, Config{})
	defer srv.Shutdown(context.Background())

	series := synthSeries(steps, channels, 11)
	want := detect.ScoreSeries(model, series)
	w := model.WindowSize()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < steps; i++ {
		fmt.Fprintln(conn, stream.EncodeSample(series.Row(i).Data()))
	}
	conn.(*net.TCPConn).CloseWrite()

	sc := bufio.NewScanner(conn)
	got := 0
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), ",", 2)
		if len(parts) != 2 {
			t.Fatalf("bad score line %q", sc.Text())
		}
		idx, err := strconv.Atoi(parts[0])
		if err != nil {
			t.Fatal(err)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if idx != w-1+got {
			t.Fatalf("score %d has index %d", got, idx)
		}
		if v != want[idx] {
			t.Fatalf("line score at %d = %g want %g", idx, v, want[idx])
		}
		got++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if got != steps-w+1 {
		t.Fatalf("%d scores want %d", got, steps-w+1)
	}
}

// TestMalformedInputReported: a post-handshake protocol error (wrong
// sample width) must reach the client as an explicit error, after the
// scores already produced, rather than a silent clean-looking EOF.
func TestMalformedInputReported(t *testing.T) {
	srv, addr, model := newFleetServer(t, 2, Config{FlushInterval: time.Millisecond})
	defer srv.Shutdown(context.Background())
	w := model.WindowSize()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	series := synthSeries(w+3, 2, 55)
	for i := 0; i < series.Dim(0); i++ {
		fmt.Fprintln(conn, stream.EncodeSample(series.Row(i).Data()))
	}
	fmt.Fprintln(conn, "1,2,3") // three fields on a 2-channel session
	conn.(*net.TCPConn).CloseWrite()

	sc := bufio.NewScanner(conn)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 4+1 { // 4 scores from w+3 samples, then the error line
		t.Fatalf("got %d lines: %q", len(lines), lines)
	}
	if !strings.HasPrefix(lines[len(lines)-1], "error: ") {
		t.Fatalf("last line %q is not an error report", lines[len(lines)-1])
	}
}

// TestHotSwapReload registers a second version mid-session and asserts
// subsequent windows score under the new weights while the session (and
// its window state) stays up.
func TestHotSwapReload(t *testing.T) {
	const steps, channels = 40, 2
	srv, addr, model := newFleetServer(t, channels, Config{FlushInterval: time.Millisecond})
	defer srv.Shutdown(context.Background())
	reg := srv.cfg.Registry

	model2, err := core.New(core.Config{Window: 8, Channels: channels, BaseMaps: 4, KLWeight: 0.1, Seed: 424242})
	if err != nil {
		t.Fatal(err)
	}

	series := synthSeries(steps, channels, 21)
	w := model.WindowSize()
	wantV1 := detect.ScoreSeries(model, series)
	wantV2 := detect.ScoreSeries(model2, series)
	rows := rowsOf(series)
	half := steps / 2

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := Dial(ctx, addr, "varade", channels)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// First half under v1: send, then read exactly the scores those
	// pushes complete — a sync point guaranteeing the swap lands between
	// window batches.
	if err := cl.Send(rows[:half]); err != nil {
		t.Fatal(err)
	}
	firstWindows := half - w + 1
	var scores []stream.Score
	for len(scores) < firstWindows {
		batch, err := cl.ReadScores()
		if err != nil {
			t.Fatal(err)
		}
		scores = append(scores, batch...)
	}
	for _, sc := range scores {
		if sc.Value != wantV1[sc.Index] {
			t.Fatalf("pre-swap score at %d = %g want v1 %g", sc.Index, sc.Value, wantV1[sc.Index])
		}
	}

	if _, err := reg.Register("varade", model2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload("varade"); err != nil {
		t.Fatal(err)
	}

	if err := cl.Send(rows[half:]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Bye(); err != nil {
		t.Fatal(err)
	}
	var tail []stream.Score
	for {
		batch, err := cl.ReadScores()
		if err != nil {
			break // EOF after drain
		}
		tail = append(tail, batch...)
	}
	if len(tail) != steps-w+1-firstWindows {
		t.Fatalf("%d post-swap scores want %d", len(tail), steps-w+1-firstWindows)
	}
	for _, sc := range tail {
		if sc.Value != wantV2[sc.Index] {
			t.Fatalf("post-swap score at %d = %g want v2 %g (v1 would be %g)",
				sc.Index, sc.Value, wantV2[sc.Index], wantV1[sc.Index])
		}
	}
	// The session survived the swap: one session total, still the same
	// group, now at version 2.
	m := srv.Metrics()
	if len(m.Models) != 1 || m.Models[0].Version != 2 {
		t.Fatalf("model status %+v", m.Models)
	}
}

// TestGracefulShutdownDrainsTailScores opens a session that never says
// Bye, then shuts the server down: every admitted window's score must
// still reach the client before its connection closes.
func TestGracefulShutdownDrainsTailScores(t *testing.T) {
	const steps, channels = 30, 2
	srv, addr, model := newFleetServer(t, channels, Config{FlushInterval: time.Millisecond})
	w := model.WindowSize()

	series := synthSeries(steps, channels, 31)
	want := detect.ScoreSeries(model, series)

	ctx := context.Background()
	cl, err := Dial(ctx, addr, "", channels)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Send(rowsOf(series)); err != nil {
		t.Fatal(err)
	}
	// Send returns once the bytes hit the socket; the drain contract
	// covers *admitted* samples, so wait for the server to have read
	// them before pulling the plug.
	for deadline := time.Now().Add(10 * time.Second); srv.Metrics().SamplesIn < steps; {
		if time.Now().After(deadline) {
			t.Fatalf("server admitted only %d/%d samples", srv.Metrics().SamplesIn, steps)
		}
		time.Sleep(time.Millisecond)
	}

	var (
		mu     sync.Mutex
		scores []stream.Score
	)
	readDone := make(chan error, 1)
	go func() {
		for {
			batch, err := cl.ReadScores()
			if err != nil {
				readDone <- err
				return
			}
			mu.Lock()
			scores = append(scores, batch...)
			mu.Unlock()
		}
	}()

	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-readDone

	mu.Lock()
	defer mu.Unlock()
	if len(scores) != steps-w+1 {
		t.Fatalf("drain delivered %d scores want %d", len(scores), steps-w+1)
	}
	for _, sc := range scores {
		if sc.Value != want[sc.Index] {
			t.Fatalf("drained score at %d = %g want %g", sc.Index, sc.Value, want[sc.Index])
		}
	}
}

// TestDialUnknownModelRefused asserts the handshake surfaces registry
// misses as client-visible errors.
func TestDialUnknownModelRefused(t *testing.T) {
	srv, addr, _ := newFleetServer(t, 2, Config{})
	defer srv.Shutdown(context.Background())
	if _, err := Dial(context.Background(), addr, "ghost", 2); err == nil {
		t.Fatal("expected refusal for unknown model")
	}
	if _, err := Dial(context.Background(), addr, "varade", 5); err == nil {
		t.Fatal("expected refusal for channel mismatch")
	}
}

// TestMetricsEndpoint exercises the HTTP snapshot surface.
func TestMetricsEndpoint(t *testing.T) {
	srv, addr, _ := newFleetServer(t, 2, Config{})
	defer srv.Shutdown(context.Background())
	maddr, err := srv.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Produce a little traffic first.
	series := synthSeries(20, 2, 41)
	cl, err := Dial(context.Background(), addr, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), rowsOf(series), 8, func(stream.Score) {}); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	// The JSON snapshot moved to /metrics.json, shape preserved.
	body := httpGet(t, "http://"+maddr+"/metrics.json")
	for _, needle := range []string{"windows_scored", "p99_coalesce_ms", "active_sessions", `"model": "varade"`, "scored_per_sec_1m", `"scheduler"`, "fill_target"} {
		if !strings.Contains(body, needle) {
			t.Fatalf("/metrics.json missing %q in %s", needle, body)
		}
	}

	// /metrics is Prometheus text: it must pass the lint and carry the
	// stage-labeled series for the traffic just produced.
	prom := httpGet(t, "http://"+maddr+"/metrics")
	if err := obs.LintPrometheusText(prom); err != nil {
		t.Fatalf("/metrics fails Prometheus lint: %v\n%s", err, prom)
	}
	for _, needle := range []string{
		`varade_serve_stage_ns_total{`,
		`stage="score"`,
		`stage="fill_wait"`,
		`stage="emit"`,
		`varade_coalesce_latency_ns_bucket{`,
		`varade_windows_scored_total`,
		`group="varade"`,
		`varade_sched_fill_target{`,
		`varade_sched_flushes_total{`,
		`trigger="fill"`,
		`trigger="deadline"`,
		`varade_sched_slo_ns{`,
		`varade_sched_empty_wakeups_total{`,
		`varade_sched_target_changes_total{`,
	} {
		if !strings.Contains(prom, needle) {
			t.Fatalf("/metrics missing %q in %s", needle, prom)
		}
	}

	// /sessions reports the drift substrate; the session above has closed,
	// so only the counter shape is guaranteed.
	sess := httpGet(t, "http://"+maddr+"/sessions")
	if !strings.Contains(sess, `"count"`) {
		t.Fatalf("/sessions missing count in %s", sess)
	}

	if !strings.Contains(httpGet(t, "http://"+maddr+"/healthz"), "ok") {
		t.Fatal("healthz not ok")
	}
	if !strings.Contains(httpGet(t, "http://"+maddr+"/models"), "varade") {
		t.Fatal("models listing missing entry")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
