// Package serve is the fleet-serving layer: one server process scoring
// many concurrent device streams against a registry of named, versioned
// detectors, with windows coalesced across sessions into batched forward
// passes. It is the production shape of the paper's deployment story —
// many light detectors close to the production line, sharing one compute
// substrate instead of one process per device.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"varade/internal/baselines/ae"
	"varade/internal/baselines/arlstm"
	"varade/internal/baselines/gbrf"
	"varade/internal/baselines/iforest"
	"varade/internal/baselines/knn"
	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/modelio"
)

// modelExt is the registry file extension.
const modelExt = ".vmf"

var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// fileSaver is satisfied by every persistable detector (VARADE and all
// five baselines write the self-describing container format).
type fileSaver interface {
	Save(path string) error
}

// Registry stores named, versioned detectors on disk, one container file
// per version: <dir>/<name>@v<version>.vmf. Registering a name again
// appends the next version; loads default to the latest. Because each
// file carries its config header, a registry entry is loadable with no
// architecture flags.
type Registry struct {
	dir string

	mu       sync.Mutex
	versions map[string][]int // sorted ascending
}

// ModelInfo describes one registry entry.
type ModelInfo struct {
	Name     string
	Versions []int
	Kind     string // detector kind of the latest version
}

// OpenRegistry opens (creating if needed) a registry rooted at dir and
// indexes the model files already present.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	r := &Registry{dir: dir, versions: make(map[string][]int)}
	if err := r.Rescan(); err != nil {
		return nil, err
	}
	return r, nil
}

// Dir returns the registry root.
func (r *Registry) Dir() string { return r.dir }

// Rescan re-indexes the registry directory, picking up versions written
// by other processes — e.g. `varade-serve -import` run against a live
// server's registry — so a subsequent Resolve or Reload sees them. The
// directory read happens under the registry lock: a concurrent
// in-process Register must not land between the scan and the index swap
// (its version would vanish from the index and the next Register would
// reuse — and overwrite — its file). Rescan is a rare operator action
// (Reload), so briefly stalling handshake Resolves is acceptable here,
// unlike in List.
func (r *Registry) Rescan() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return err
	}
	versions := make(map[string][]int)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), modelExt) {
			continue
		}
		name, v, ok := parseEntry(strings.TrimSuffix(e.Name(), modelExt))
		if !ok {
			continue
		}
		versions[name] = append(versions[name], v)
	}
	for name := range versions {
		sort.Ints(versions[name])
	}
	r.versions = versions
	return nil
}

// parseEntry splits "name@v3" into ("name", 3).
func parseEntry(stem string) (string, int, bool) {
	i := strings.LastIndex(stem, "@v")
	if i <= 0 {
		return "", 0, false
	}
	v, err := strconv.Atoi(stem[i+2:])
	if err != nil || v <= 0 || !nameRE.MatchString(stem[:i]) {
		return "", 0, false
	}
	return stem[:i], v, true
}

// Register persists d under name as the next version and returns the
// assigned version number.
func (r *Registry) Register(name string, d detect.Detector) (int, error) {
	if !nameRE.MatchString(name) {
		return 0, fmt.Errorf("serve: invalid model name %q", name)
	}
	s, ok := d.(fileSaver)
	if !ok {
		return 0, fmt.Errorf("serve: detector %q is not persistable", d.Name())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := 1
	if vs := r.versions[name]; len(vs) > 0 {
		v = vs[len(vs)-1] + 1
	}
	path := r.path(name, v)
	if err := s.Save(path); err != nil {
		// Remove the partial file: a future OpenRegistry must not index
		// a truncated write as the latest version.
		os.Remove(path)
		return 0, err
	}
	r.versions[name] = append(r.versions[name], v)
	return v, nil
}

func (r *Registry) path(name string, version int) string {
	return filepath.Join(r.dir, fmt.Sprintf("%s@v%d%s", name, version, modelExt))
}

// Resolve returns the file path and concrete version for a model
// reference; version <= 0 selects the latest.
func (r *Registry) Resolve(name string, version int) (string, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := r.versions[name]
	if len(vs) == 0 {
		return "", 0, fmt.Errorf("serve: model %q not in registry %s", name, r.dir)
	}
	if version <= 0 {
		version = vs[len(vs)-1]
	} else {
		i := sort.SearchInts(vs, version)
		if i >= len(vs) || vs[i] != version {
			return "", 0, fmt.Errorf("serve: model %q has no version %d (have %v)", name, version, vs)
		}
	}
	return r.path(name, version), version, nil
}

// Load reconstructs a registered detector; version <= 0 loads the
// latest. The returned version is the one actually loaded.
func (r *Registry) Load(name string, version int) (detect.Detector, int, error) {
	path, v, err := r.Resolve(name, version)
	if err != nil {
		return nil, 0, err
	}
	d, err := LoadDetector(path)
	if err != nil {
		return nil, 0, err
	}
	return d, v, nil
}

// List returns every registry entry, sorted by name. The per-entry kind
// sniff does disk I/O, so it runs on a snapshot taken under the lock —
// listing must not stall concurrent Resolve calls from session
// handshakes.
func (r *Registry) List() []ModelInfo {
	r.mu.Lock()
	out := make([]ModelInfo, 0, len(r.versions))
	for name, vs := range r.versions {
		out = append(out, ModelInfo{Name: name, Versions: append([]int(nil), vs...)})
	}
	r.mu.Unlock()
	for i := range out {
		vs := out[i].Versions
		out[i].Kind, _ = modelio.SniffKind(r.path(out[i].Name, vs[len(vs)-1]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Import copies an existing container file into the registry under name
// as the next version, validating that the file parses.
func (r *Registry) Import(path, name string) (int, error) {
	d, err := LoadDetector(path)
	if err != nil {
		return 0, err
	}
	return r.Register(name, d)
}

// LoadDetector reads any container file and reconstructs the detector it
// holds, dispatching on the kind recorded in the header.
func LoadDetector(path string) (detect.Detector, error) {
	kind, err := modelio.SniffKind(path)
	if err != nil {
		return nil, err
	}
	switch kind {
	case modelio.KindVARADE:
		return core.LoadModel(path)
	case modelio.KindAE:
		return ae.LoadModel(path)
	case modelio.KindARLSTM:
		return arlstm.LoadModel(path)
	case modelio.KindGBRF:
		return gbrf.LoadModel(path)
	case modelio.KindIForest:
		return iforest.LoadModel(path)
	case modelio.KindKNN:
		return knn.LoadModel(path)
	case "":
		return nil, fmt.Errorf("serve: %s is a bare weights file; the registry needs the self-describing format (retrain or re-save with a current Model.Save)", path)
	default:
		return nil, fmt.Errorf("serve: %s holds unknown detector kind %q", path, kind)
	}
}

// ParseModelRef splits "name", "name@v3" or "name@latest" into (name,
// version), with version 0 meaning latest: "name" and "name@latest" are
// equivalent floating references that track registry updates (and hot
// swaps); "name@vN" pins.
func ParseModelRef(ref string) (string, int, error) {
	if i := strings.LastIndex(ref, "@"); i > 0 {
		name, suffix := ref[:i], ref[i+1:]
		if !nameRE.MatchString(name) {
			return "", 0, fmt.Errorf("serve: bad model reference %q", ref)
		}
		if suffix == "latest" {
			return name, 0, nil
		}
		if strings.HasPrefix(suffix, "v") {
			v, err := strconv.Atoi(suffix[1:])
			if err == nil && v > 0 {
				return name, v, nil
			}
		}
		return "", 0, fmt.Errorf("serve: bad model reference %q", ref)
	}
	if !nameRE.MatchString(ref) {
		return "", 0, fmt.Errorf("serve: bad model reference %q", ref)
	}
	return ref, 0, nil
}
