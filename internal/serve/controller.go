package serve

import (
	"fmt"
	"time"

	"varade/internal/obs"
)

// The closed-loop batch scheduler: each serving group is an agent tuning
// its own fill-target knob against an explicit tail-latency budget — the
// dynamic-algorithm-configuration framing (Xue et al. 2022) applied to
// the serving layer. PR 7's telemetry measures the exact
// ns/window-vs-batch-size amortisation curve per group; the controller
// here reads that curve back in windowed deltas (obs.Cursor) and moves
// the group's fill target to the knee: the smallest batch size whose
// marginal amortisation gain has run out. A per-group p99 SLO — the
// operator's -slo-p99 floor tightened by the strictest live session's
// negotiated slo_p99_ms capability — converts into a deadline on the
// oldest admitted window, so the flusher fires at min(fill target
// reached, oldest window's deadline) instead of on a free-running tick.

// Controller tuning. The hysteresis is a Schmitt trigger on the
// amortisation curve: a bucket must beat the best observed ns/window
// within kneeAcquireTol to become a candidate target, but once adopted a
// target is only abandoned when its bucket drifts outside the wider
// kneeHoldTol band — so measurement noise straddling one threshold
// cannot make the target oscillate. schedConfirm adds min-dwell: a
// candidate must win consecutive evaluation windows before the group
// moves.
const (
	// schedMinEvalWindows is how many freshly scored windows an
	// evaluation window must cover before the controller trusts it —
	// the controller's cadence is measured in traffic, not wall clock,
	// so idle groups never churn their target on stale data.
	schedMinEvalWindows = 64
	// schedMinBucketWindows is how many windows a single amortisation
	// bucket needs inside one evaluation window to participate in the
	// knee search.
	schedMinBucketWindows = 8
	// kneeAcquireTol: a bucket within 15% of the best ns/window counts
	// as "past the knee"; the smallest such batch size is the candidate.
	kneeAcquireTol = 1.15
	// kneeHoldTol: an adopted target is kept while its own bucket stays
	// within 35% of the best — the release threshold of the Schmitt
	// trigger.
	kneeHoldTol = 1.35
	// schedConfirm evaluation windows must agree before a target moves.
	schedConfirm = 2
)

// schedPolicy is the pure decision core of the controller — no clocks,
// no locks, no I/O — so the synthetic-curve tests drive it directly.
// target == 0 means the policy has not yet learned anything and the
// group stays on its static per-precision default.
type schedPolicy struct {
	maxBatch  int
	target    int // adopted learned target (a power-of-two bucket bound)
	candidate int // knee candidate awaiting confirmation
	confirm   int // consecutive evaluation windows the candidate has won
	lastKnee  int // most recent knee measurement (observability only)
}

// observe feeds the policy one evaluation window of the measured
// amortisation curve and returns the (possibly updated) learned target
// plus whether it moved this call.
func (p *schedPolicy) observe(rows []AmortRow) (int, bool) {
	best := 0.0
	eligible := 0
	for _, r := range rows {
		if r.Windows < schedMinBucketWindows || r.NsPerWindow <= 0 {
			continue
		}
		eligible++
		if best == 0 || r.NsPerWindow < best {
			best = r.NsPerWindow
		}
	}
	if eligible == 0 {
		// Too sparse to judge: keep the target, drop any half-confirmed
		// candidate so stale evidence never carries across a quiet spell.
		p.candidate, p.confirm = 0, 0
		return p.target, false
	}
	knee := 0
	for _, r := range rows {
		if r.Windows < schedMinBucketWindows || r.NsPerWindow <= 0 {
			continue
		}
		if r.NsPerWindow <= kneeAcquireTol*best {
			knee = r.BatchLE
			break
		}
	}
	knee = max(1, min(knee, p.maxBatch))
	p.lastKnee = knee

	if p.target > 0 {
		// Hold band: while the adopted target's own bucket still performs
		// within the release tolerance, stay put regardless of where the
		// acquire threshold says the knee is this window. A target whose
		// bucket saw no traffic this window also holds — absence of
		// evidence about the target is not evidence against it, and moving
		// on it makes the policy chase whichever bucket deadline/drain
		// flushes happened to populate.
		found := false
		for _, r := range rows {
			if r.BatchLE == p.target || (p.target == p.maxBatch && r.BatchLE >= p.maxBatch) {
				found = r.Windows >= schedMinBucketWindows && r.NsPerWindow > 0
				if found && r.NsPerWindow <= kneeHoldTol*best {
					p.candidate, p.confirm = 0, 0
					return p.target, false
				}
				break
			}
		}
		if !found {
			p.candidate, p.confirm = 0, 0
			return p.target, false
		}
	}
	if knee == p.target {
		p.candidate, p.confirm = 0, 0
		return p.target, false
	}
	if knee != p.candidate {
		p.candidate, p.confirm = knee, 1
		return p.target, false
	}
	p.confirm++
	if p.confirm < schedConfirm {
		return p.target, false
	}
	p.target = knee
	p.candidate, p.confirm = 0, 0
	return p.target, true
}

// reset forgets everything learned — called on hot swap, where the new
// engine's amortisation curve owes nothing to the old one's.
func (p *schedPolicy) reset() {
	p.target, p.candidate, p.confirm, p.lastKnee = 0, 0, 0, 0
}

// flush triggers, in label order.
const (
	trigFill     = iota // fill target reached (or an explicit kick: tail drain, backpressure)
	trigDeadline        // the oldest admitted window hit its SLO deadline
	trigDrain           // server shutdown final drain
	trigCount
)

var trigNames = [trigCount]string{"fill", "deadline", "drain"}

// groupSched is one group's controller state. Everything here is guarded
// by the group mutex except the obs handles (atomics).
type groupSched struct {
	policy schedPolicy

	// reqSLO holds live sessions' negotiated latency budgets (> 0 only);
	// slo is the effective group budget: the server's configured floor
	// tightened by the strictest session. 0 = no budget, and the flush
	// deadline falls back to Config.FlushInterval.
	reqSLO map[*session]time.Duration
	slo    time.Duration

	// flushCost smooths the observed score+emit nanoseconds per flush —
	// the margin the deadline subtracts from the SLO so a window flushed
	// exactly at its deadline still emits inside the budget. Refreshed at
	// evaluation time from the stage timers' windowed read-back.
	flushCost time.Duration

	// sinceEval counts windows scored since the last policy evaluation;
	// the cursors below read the amortisation table and stage timers in
	// deltas spanning exactly those windows.
	sinceEval  int64
	amortCur   amortCursors
	scoreCur   obs.StageCursor
	emitCur    obs.StageCursor
	lastChange string // human-readable record of the latest target move
}

// deadlineBudgetLocked converts the group's effective SLO into the time
// an admitted window may sit in the coalesce buffer. Without an SLO the
// old flush-interval bound applies, so servers that never opt in keep
// their exact pre-controller latency behaviour.
func (g *modelGroup) deadlineBudgetLocked() time.Duration {
	b := g.sched.slo
	if b <= 0 {
		return g.srv.cfg.FlushInterval
	}
	margin := g.sched.flushCost
	if margin > b/2 {
		margin = b / 2
	}
	return b - margin
}

// recomputeSLOLocked re-derives the effective latency budget from the
// server floor and the live sessions' negotiated requests.
func (g *modelGroup) recomputeSLOLocked() {
	s := g.srv.cfg.SLOP99
	for _, d := range g.sched.reqSLO {
		if d > 0 && (s <= 0 || d < s) {
			s = d
		}
	}
	g.sched.slo = s
	g.obs.sloGauge.Set(float64(s.Nanoseconds()))
}

// schedAfterFlushLocked runs the controller tail of a flush of n
// windows: accumulate traffic, and once a full evaluation window has
// passed, read back the amortisation deltas and let the policy decide.
func (g *modelGroup) schedAfterFlushLocked(n int) {
	g.sched.sinceEval += int64(n)
	if g.sched.sinceEval < schedMinEvalWindows {
		return
	}
	g.schedEvalLocked()
}

// schedEvalLocked performs one controller evaluation: refresh the flush
// cost estimate from the stage timers, feed the windowed amortisation
// curve to the policy, and apply any target move.
func (g *modelGroup) schedEvalLocked() {
	g.sched.sinceEval = 0
	score := g.sched.scoreCur.Take()
	emit := g.sched.emitCur.Take()
	if cost := time.Duration(score.NsPerCall() + emit.NsPerCall()); cost > 0 {
		if g.sched.flushCost == 0 {
			g.sched.flushCost = cost
		} else {
			// EWMA, alpha ≈ 0.25: smooth enough to ride out one slow GC
			// flush, fast enough to track a hot swap's new engine.
			g.sched.flushCost += (cost - g.sched.flushCost) / 4
		}
	}
	rows := g.sched.amortCur.take(g.obs.amort)
	target, moved := g.sched.policy.observe(rows)
	if !moved {
		return
	}
	old := g.fillTarget
	g.recomputeFillTargetLocked()
	if g.fillTarget == old {
		// The learned knee coincides with the effective target (static
		// default or session cap) — adopting it changed nothing worth a
		// decision record.
		return
	}
	g.obs.targetChanges.Inc()
	g.sched.lastChange = fmt.Sprintf("fill target %d -> %d (knee of measured ns/window curve at batch<=%d)",
		old, g.fillTarget, target)
}

// currentTargetLocked is the learned target if adopted, else the static
// per-precision default — the base recomputeFillTargetLocked clamps.
func (g *modelGroup) currentTargetLocked() int {
	if t := g.sched.policy.target; t > 0 {
		return max(1, min(t, g.maxBatch))
	}
	return g.srv.fillTargetFor(g.caps.Precision)
}

// amortCursors is the windowed read-back of a group's amortisation
// table: one cursor triple per batch-size bucket.
type amortCursors struct {
	flushes []obs.Cursor
	windows []obs.Cursor
	ns      []obs.Cursor
}

func newAmortCursors(a *amortSet) amortCursors {
	c := amortCursors{
		flushes: make([]obs.Cursor, len(a.uppers)),
		windows: make([]obs.Cursor, len(a.uppers)),
		ns:      make([]obs.Cursor, len(a.uppers)),
	}
	for i := range a.uppers {
		c.flushes[i] = obs.NewCursor(a.flushes[i])
		c.windows[i] = obs.NewCursor(a.windows[i])
		c.ns[i] = obs.NewCursor(a.ns[i])
	}
	return c
}

// take returns the amortisation rows accrued since the last take,
// advancing the cursors — the per-evaluation-window curve the policy
// consumes.
func (c *amortCursors) take(a *amortSet) []AmortRow {
	var out []AmortRow
	for i := range a.uppers {
		fl := c.flushes[i].Take()
		w := c.windows[i].Take()
		ns := c.ns[i].Take()
		if fl == 0 && w == 0 {
			continue
		}
		r := AmortRow{BatchLE: a.uppers[i], Flushes: fl, Windows: w}
		if w > 0 {
			r.NsPerWindow = float64(ns) / float64(w)
		}
		out = append(out, r)
	}
	return out
}

// SchedulerStatus is one group's controller block in /metrics.json and
// /models: what the knob is set to, where it came from, the latency
// budget in force, and how the flusher has been firing.
type SchedulerStatus struct {
	FillTarget       int     `json:"fill_target"`
	StaticTarget     int     `json:"static_target"`
	LearnedTarget    int     `json:"learned_target,omitempty"`
	LastKnee         int     `json:"last_knee,omitempty"`
	SLOP99Ms         float64 `json:"slo_p99_ms,omitempty"`
	DeadlineBudgetMs float64 `json:"deadline_budget_ms"`
	FillFlushes      int64   `json:"fill_flushes"`
	DeadlineFlushes  int64   `json:"deadline_flushes"`
	DrainFlushes     int64   `json:"drain_flushes"`
	EmptyWakeups     int64   `json:"empty_wakeups"`
	TargetChanges    int64   `json:"target_changes"`
	Shed             int64   `json:"shed,omitempty"`
	LastChange       string  `json:"last_change,omitempty"`
}

func (g *modelGroup) schedulerStatusLocked() *SchedulerStatus {
	const ms = float64(time.Millisecond)
	return &SchedulerStatus{
		FillTarget:       g.fillTarget,
		StaticTarget:     g.srv.fillTargetFor(g.caps.Precision),
		LearnedTarget:    g.sched.policy.target,
		LastKnee:         g.sched.policy.lastKnee,
		SLOP99Ms:         float64(g.sched.slo) / ms,
		DeadlineBudgetMs: float64(g.deadlineBudgetLocked()) / ms,
		FillFlushes:      g.obs.flushTrig[trigFill].Load(),
		DeadlineFlushes:  g.obs.flushTrig[trigDeadline].Load(),
		DrainFlushes:     g.obs.flushTrig[trigDrain].Load(),
		EmptyWakeups:     g.obs.emptyWakeups.Load(),
		TargetChanges:    g.obs.targetChanges.Load(),
		Shed:             g.obs.shedTotal.Load(),
		LastChange:       g.sched.lastChange,
	}
}
