package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"varade/internal/tensor"
)

// latRingSize is how many recent coalesce latencies the percentile
// window retains.
const latRingSize = 4096

// metrics is the server's internal counter block. Everything is either
// atomic or guarded by latMu so the hot paths never contend on one lock.
type metrics struct {
	start time.Time

	sessionsTotal  atomic.Int64
	sessionsActive atomic.Int64
	samplesIn      atomic.Int64
	windowsScored  atomic.Int64
	batches        atomic.Int64
	samplesDropped atomic.Int64 // admission drops: inbound queues full
	scoresDropped  atomic.Int64 // emission drops: outbound queues full

	latMu   sync.Mutex
	lat     [latRingSize]float64 // milliseconds, ring
	latIdx  int
	latFull bool
}

func newMetrics() *metrics { return &metrics{start: time.Now()} }

// observeLatency records one window's coalesce latency: the time from
// window-ready (enqueued for batching) to score emission.
func (m *metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.latMu.Lock()
	m.lat[m.latIdx] = ms
	m.latIdx++
	if m.latIdx == latRingSize {
		m.latIdx = 0
		m.latFull = true
	}
	m.latMu.Unlock()
}

func (m *metrics) latencyPercentiles() (p50, p99 float64) {
	m.latMu.Lock()
	n := m.latIdx
	if m.latFull {
		n = latRingSize
	}
	xs := make([]float64, n)
	copy(xs, m.lat[:n])
	m.latMu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(xs)
	return xs[(n-1)*50/100], xs[(n-1)*99/100]
}

// ModelStatus is one serving group's slice of a metrics snapshot. Since
// protocol v2 a model can be served by several precision-specific groups
// at once; Key names the group, Precision the arithmetic it runs, and
// Derived whether that precision was re-targeted away from the registry
// file's own (a lazily materialised variant).
type ModelStatus struct {
	Key        string `json:"key"`
	Model      string `json:"model"`
	Version    int    `json:"version"`
	Kind       string `json:"kind"`
	Window     int    `json:"window"`
	Channels   int    `json:"channels"`
	Batched    bool   `json:"batched"`
	Precision  string `json:"precision"`
	Requested  string `json:"requested_precision,omitempty"`
	Derived    bool   `json:"derived"`
	Pending    int    `json:"pending_windows"`
	FillTarget int    `json:"fill_target"`
	Sessions   int    `json:"sessions"`
}

// Metrics is a point-in-time snapshot of the serving state, the payload
// of the /metrics endpoint. GemmKernel/QGemmKernel report the runtime-
// dispatched micro-kernel families (avx2, neon or generic) the float and
// int8 GEMM engines resolved at startup, so an operator can see at a
// glance whether a deployment is actually running the SIMD lanes.
type Metrics struct {
	UptimeSeconds  float64       `json:"uptime_seconds"`
	GemmKernel     string        `json:"gemm_kernel"`
	QGemmKernel    string        `json:"qgemm_kernel"`
	ActiveSessions int           `json:"active_sessions"`
	TotalSessions  int           `json:"total_sessions"`
	SamplesIn      int64         `json:"samples_in"`
	WindowsScored  int64         `json:"windows_scored"`
	Batches        int64         `json:"batches"`
	AvgBatchSize   float64       `json:"avg_batch_size"`
	ScoredPerSec   float64       `json:"scored_per_sec"`
	SamplesDropped int64         `json:"samples_dropped"`
	ScoresDropped  int64         `json:"scores_dropped"`
	P50CoalesceMs  float64       `json:"p50_coalesce_ms"`
	P99CoalesceMs  float64       `json:"p99_coalesce_ms"`
	ServingGroups  int           `json:"serving_groups"`
	DerivedGroups  int           `json:"derived_groups"`
	Models         []ModelStatus `json:"models"`
}

func (m *metrics) snapshot(models []ModelStatus) Metrics {
	up := time.Since(m.start).Seconds()
	scored := m.windowsScored.Load()
	batches := m.batches.Load()
	avg := 0.0
	if batches > 0 {
		avg = float64(scored) / float64(batches)
	}
	rate := 0.0
	if up > 0 {
		rate = float64(scored) / up
	}
	p50, p99 := m.latencyPercentiles()
	derived := 0
	for _, ms := range models {
		if ms.Derived {
			derived++
		}
	}
	return Metrics{
		UptimeSeconds:  up,
		GemmKernel:     tensor.GemmKernelName(),
		QGemmKernel:    tensor.QGemmKernelName(),
		ActiveSessions: int(m.sessionsActive.Load()),
		TotalSessions:  int(m.sessionsTotal.Load()),
		SamplesIn:      m.samplesIn.Load(),
		WindowsScored:  scored,
		Batches:        batches,
		AvgBatchSize:   avg,
		ScoredPerSec:   rate,
		SamplesDropped: m.samplesDropped.Load(),
		ScoresDropped:  m.scoresDropped.Load(),
		P50CoalesceMs:  p50,
		P99CoalesceMs:  p99,
		ServingGroups:  len(models),
		DerivedGroups:  derived,
		Models:         models,
	}
}
