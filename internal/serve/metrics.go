package serve

import (
	"math/bits"
	"sync/atomic"
	"time"

	"varade/internal/obs"
	"varade/internal/tensor"
)

// metrics is the server's telemetry block. Counters live in the
// server's obs.Registry (one per Server, so two servers in one process
// — the normal shape in tests — never share series) and are therefore
// exposed on /metrics with no extra bookkeeping; the JSON snapshot
// reads the same counters, so the two views cannot diverge. Everything
// on a hot path is a lock-free handle resolved once here.
type metrics struct {
	start time.Time
	reg   *obs.Registry

	sessionsTotal  *obs.Counter
	sessionsActive atomic.Int64 // mirrored to a gauge at exposition time
	activeGauge    *obs.Gauge
	samplesIn      *obs.Counter
	windowsScored  *obs.Counter
	batches        *obs.Counter
	scoresDropped  *obs.Counter
	announceFails  *obs.Counter
	// samplesDropped holds admission drops folded in from closed
	// sessions' buses; live buses are summed on top under the server
	// lock (see Server.Metrics) so each drop is counted exactly once in
	// the JSON view. The live per-group series varade_admission_drops_total
	// is fed directly by each bus's drop sink.
	samplesDropped atomic.Int64

	uptimeGauge *obs.Gauge
	rate        *obs.RateEWMA
}

// rateTau is the windowed-throughput time constant: scored_per_sec_1m
// forgets traffic older than a few minutes instead of averaging over
// the server's whole lifetime.
const rateTau = 60 * time.Second

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		start:         time.Now(),
		reg:           reg,
		sessionsTotal: reg.Counter("varade_sessions_total", "Sessions accepted since start."),
		activeGauge:   reg.Gauge("varade_sessions_active", "Sessions currently connected."),
		samplesIn:     reg.Counter("varade_samples_in_total", "Samples admitted across all sessions."),
		windowsScored: reg.Counter("varade_windows_scored_total", "Windows scored across all groups."),
		batches:       reg.Counter("varade_batches_total", "Coalesced batches flushed."),
		scoresDropped: reg.Counter("varade_scores_dropped_total", "Scores dropped because a session's outbound queue was full."),
		announceFails: reg.Counter("varade_announce_failures_total", "Heartbeat POSTs to the router that failed (before in-beat retries succeeded or gave up)."),
		uptimeGauge:   reg.Gauge("varade_uptime_seconds", "Seconds since the server started."),
		rate:          obs.NewRateEWMA(rateTau),
	}
	reg.Gauge("varade_kernel_info", "Runtime-dispatched GEMM micro-kernel families (value is always 1).",
		obs.L("gemm", tensor.GemmKernelName()), obs.L("qgemm", tensor.QGemmKernelName())).Set(1)
	return m
}

// groupObs is one serving group's telemetry: the coalesce-latency
// histogram (per group, so groups never contend on a shared lock), the
// four serve-layer stage timers, the batch-size amortisation buckets,
// the group score sketch, and the drop counters. All handles are
// resolved once at group creation; the flusher and session pumps touch
// only atomics.
type groupObs struct {
	coalesce   *obs.Histogram // window-ready → score-emitted, ns
	admitWait  *obs.StageTimer
	fillWait   *obs.StageTimer
	score      *obs.StageTimer
	emit       *obs.StageTimer
	amort      *amortSet
	sketch     *obs.Welford // score distribution across the group's sessions
	busDrops   *obs.Counter // admission drops (bus shedding), live
	scoreDrops *obs.Counter // outbound-queue drops

	// Scheduler plane (varade_sched_*): the closed-loop controller's
	// knob position, latency budget, flush-trigger mix, and housekeeping
	// counters. fillTargetGauge mirrors modelGroup.fillTarget on every
	// recompute so /metrics shows the knob without taking the group lock.
	fillTargetGauge *obs.Gauge
	sloGauge        *obs.Gauge              // effective p99 budget, ns (0 = none)
	flushTrig       [trigCount]*obs.Counter // flushes by trigger
	emptyWakeups    *obs.Counter            // flusher woke to an empty buffer
	targetChanges   *obs.Counter            // learned-target moves applied
	shedTotal       *obs.Counter            // windows shed at admission: age already past the SLO
}

func newGroupObs(m *metrics, key, precision string, maxBatch int) *groupObs {
	gl := obs.L("group", key)
	pl := obs.L("precision", precision)
	stage := func(name string) *obs.StageTimer {
		return obs.NewStageTimer(m.reg, "varade_serve_stage", "Serve pipeline stage timings.",
			gl, pl, obs.L("stage", name))
	}
	o := &groupObs{
		coalesce:   m.reg.Histogram("varade_coalesce_latency_ns", "Window-ready to score-emitted latency.", gl, pl),
		admitWait:  stage("admit_wait"),
		fillWait:   stage("fill_wait"),
		score:      stage("score"),
		emit:       stage("emit"),
		amort:      newAmortSet(m.reg, maxBatch, gl, pl),
		sketch:     &obs.Welford{},
		busDrops:   m.reg.Counter("varade_admission_drops_total", "Samples shed by session admission queues.", gl, pl),
		scoreDrops: m.reg.Counter("varade_score_drops_total", "Scores shed by session outbound queues.", gl, pl),

		fillTargetGauge: m.reg.Gauge("varade_sched_fill_target", "Current coalescer fill target (learned or static).", gl, pl),
		sloGauge:        m.reg.Gauge("varade_sched_slo_ns", "Effective p99 coalescing-latency budget in nanoseconds (0 = none).", gl, pl),
		emptyWakeups:    m.reg.Counter("varade_sched_empty_wakeups_total", "Flusher wakeups that found an empty buffer.", gl, pl),
		targetChanges:   m.reg.Counter("varade_sched_target_changes_total", "Learned fill-target moves applied by the controller.", gl, pl),
		shedTotal:       m.reg.Counter("varade_sched_shed_total", "Windows shed at admission because their age already exceeded the SLO budget.", gl, pl),
	}
	for t := range o.flushTrig {
		o.flushTrig[t] = m.reg.Counter("varade_sched_flushes_total", "Coalesced flushes by trigger.",
			gl, pl, obs.L("trigger", trigNames[t]))
	}
	return o
}

// amortSet is the per-group 2-D amortisation histogram: per
// log2-batch-size bucket, how many flushes landed there, how many
// windows they carried, and the nanoseconds they spent scoring. The
// ns/window-vs-batch-size curve it measures is the input the
// self-tuning flusher (ROADMAP) consumes.
type amortSet struct {
	uppers  []int // batch_le bucket bounds: 1, 2, 4, ..., maxBatch
	flushes []*obs.Counter
	windows []*obs.Counter
	ns      []*obs.Counter
}

func newAmortSet(reg *obs.Registry, maxBatch int, base ...obs.Label) *amortSet {
	n := bits.Len(uint(maxBatch-1)) + 1 // buckets for 1, 2, 4, ..., ≥maxBatch
	if maxBatch <= 1 {
		n = 1
	}
	a := &amortSet{
		uppers:  make([]int, n),
		flushes: make([]*obs.Counter, n),
		windows: make([]*obs.Counter, n),
		ns:      make([]*obs.Counter, n),
	}
	for i := range a.uppers {
		a.uppers[i] = 1 << i
		lbl := append(append([]obs.Label(nil), base...), obs.L("batch_le", itoa(1<<i)))
		a.flushes[i] = reg.Counter("varade_flush_amort_flushes_total", "Flushes by batch-size bucket.", lbl...)
		a.windows[i] = reg.Counter("varade_flush_amort_windows_total", "Windows scored by batch-size bucket.", lbl...)
		a.ns[i] = reg.Counter("varade_flush_amort_score_ns_total", "Scoring nanoseconds by batch-size bucket.", lbl...)
	}
	return a
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// record accounts one flush of n windows that spent d scoring.
func (a *amortSet) record(n int, d time.Duration) {
	if n <= 0 {
		return
	}
	i := bits.Len(uint(n - 1)) // ceil(log2(n))
	if i >= len(a.uppers) {
		i = len(a.uppers) - 1
	}
	a.flushes[i].Inc()
	a.windows[i].Add(int64(n))
	a.ns[i].Add(d.Nanoseconds())
}

// AmortRow is one populated batch-size bucket of a group's amortisation
// table, as exposed in /metrics.json and consumed by examples/fleet.
type AmortRow struct {
	BatchLE     int     `json:"batch_le"`
	Flushes     int64   `json:"flushes"`
	Windows     int64   `json:"windows"`
	NsPerWindow float64 `json:"ns_per_window"`
}

// rows returns the non-empty buckets in ascending batch-size order.
func (a *amortSet) rows() []AmortRow {
	var out []AmortRow
	for i, f := range a.flushes {
		fl := f.Load()
		if fl == 0 {
			continue
		}
		w := a.windows[i].Load()
		r := AmortRow{BatchLE: a.uppers[i], Flushes: fl, Windows: w}
		if w > 0 {
			r.NsPerWindow = float64(a.ns[i].Load()) / float64(w)
		}
		out = append(out, r)
	}
	return out
}

// StageStats summarises one serve-layer stage of one group for the JSON
// view: per-window p50/p99 plus totals.
type StageStats struct {
	P50Ns   int64 `json:"p50_ns"`
	P99Ns   int64 `json:"p99_ns"`
	Calls   int64 `json:"calls"`
	Windows int64 `json:"windows"`
	TotalNs int64 `json:"total_ns"`
}

func stageStats(t *obs.StageTimer) StageStats {
	return StageStats{
		P50Ns:   t.PerWindow.Quantile(0.50),
		P99Ns:   t.PerWindow.Quantile(0.99),
		Calls:   t.Calls.Load(),
		Windows: t.Windows.Load(),
		TotalNs: t.Ns.Load(),
	}
}

// ScoreDist is a score-distribution summary (group- or session-level).
// MeanPredVariance is set for VARADE-kind models, where the anomaly
// score *is* the variational head's mean predicted variance over
// channels — so the sketch mean doubles as the calibrated-variance
// figure the drift detector wants.
type ScoreDist struct {
	Count            uint64   `json:"count"`
	Mean             float64  `json:"mean"`
	Std              float64  `json:"std"`
	Min              float64  `json:"min"`
	Max              float64  `json:"max"`
	Last             float64  `json:"last"`
	MeanPredVariance *float64 `json:"mean_pred_variance,omitempty"`
}

func scoreDist(s obs.WelfordSnapshot, kind string) *ScoreDist {
	if s.Count == 0 {
		return nil
	}
	d := &ScoreDist{Count: s.Count, Mean: s.Mean, Std: s.Stddev(), Min: s.Min, Max: s.Max, Last: s.Last}
	if kind == "VARADE" {
		mv := s.Mean
		d.MeanPredVariance = &mv
	}
	return d
}

// ModelStatus is one serving group's slice of a metrics snapshot. Since
// protocol v2 a model can be served by several precision-specific groups
// at once; Key names the group, Precision the arithmetic it runs, and
// Derived whether that precision was re-targeted away from the registry
// file's own (a lazily materialised variant). Stages, Amortization and
// ScoreDist carry the group's pipeline telemetry (absent until traffic
// has flowed).
type ModelStatus struct {
	Key          string                `json:"key"`
	Model        string                `json:"model"`
	Version      int                   `json:"version"`
	Kind         string                `json:"kind"`
	Window       int                   `json:"window"`
	Channels     int                   `json:"channels"`
	Batched      bool                  `json:"batched"`
	Precision    string                `json:"precision"`
	Requested    string                `json:"requested_precision,omitempty"`
	Derived      bool                  `json:"derived"`
	Pending      int                   `json:"pending_windows"`
	FillTarget   int                   `json:"fill_target"`
	Sessions     int                   `json:"sessions"`
	Stages       map[string]StageStats `json:"stages,omitempty"`
	Amortization []AmortRow            `json:"amortization,omitempty"`
	ScoreDist    *ScoreDist            `json:"score_dist,omitempty"`
	Scheduler    *SchedulerStatus      `json:"scheduler,omitempty"`
}

// Metrics is a point-in-time snapshot of the serving state, the payload
// of the /metrics.json endpoint. GemmKernel/QGemmKernel report the
// runtime-dispatched micro-kernel families (avx2, neon or generic) the
// float and int8 GEMM engines resolved at startup, so an operator can
// see at a glance whether a deployment is actually running the SIMD
// lanes. ScoredPerSec is the lifetime average (kept for compatibility);
// ScoredPerSec1m is the windowed EWMA rate, the figure that stays
// meaningful on a long-running server.
type Metrics struct {
	UptimeSeconds  float64       `json:"uptime_seconds"`
	GemmKernel     string        `json:"gemm_kernel"`
	QGemmKernel    string        `json:"qgemm_kernel"`
	ActiveSessions int           `json:"active_sessions"`
	TotalSessions  int           `json:"total_sessions"`
	SamplesIn      int64         `json:"samples_in"`
	WindowsScored  int64         `json:"windows_scored"`
	Batches        int64         `json:"batches"`
	AvgBatchSize   float64       `json:"avg_batch_size"`
	ScoredPerSec   float64       `json:"scored_per_sec"`
	ScoredPerSec1m float64       `json:"scored_per_sec_1m"`
	SamplesDropped int64         `json:"samples_dropped"`
	ScoresDropped  int64         `json:"scores_dropped"`
	P50CoalesceMs  float64       `json:"p50_coalesce_ms"`
	P99CoalesceMs  float64       `json:"p99_coalesce_ms"`
	ServingGroups  int           `json:"serving_groups"`
	DerivedGroups  int           `json:"derived_groups"`
	Models         []ModelStatus `json:"models"`
}

// latencyPercentiles merges every group's coalesce-latency histogram
// and reports top-level p50/p99 in milliseconds — the same figures the
// old global ring produced, now without a shared lock on the hot path.
func (m *metrics) latencyPercentiles() (p50, p99 float64) {
	var merged obs.Histogram
	m.reg.VisitHistograms("varade_coalesce_latency_ns", func(_ []obs.Label, h *obs.Histogram) {
		merged.Merge(h)
	})
	const ms = float64(time.Millisecond)
	return float64(merged.Quantile(0.50)) / ms, float64(merged.Quantile(0.99)) / ms
}

func (m *metrics) snapshot(models []ModelStatus) Metrics {
	now := time.Now()
	up := now.Sub(m.start).Seconds()
	scored := m.windowsScored.Load()
	batches := m.batches.Load()
	avg := 0.0
	if batches > 0 {
		avg = float64(scored) / float64(batches)
	}
	rate := 0.0
	if up > 0 {
		rate = float64(scored) / up
	}
	p50, p99 := m.latencyPercentiles()
	derived := 0
	for _, ms := range models {
		if ms.Derived {
			derived++
		}
	}
	return Metrics{
		UptimeSeconds:  up,
		GemmKernel:     tensor.GemmKernelName(),
		QGemmKernel:    tensor.QGemmKernelName(),
		ActiveSessions: int(m.sessionsActive.Load()),
		TotalSessions:  int(m.sessionsTotal.Load()),
		SamplesIn:      m.samplesIn.Load(),
		WindowsScored:  scored,
		Batches:        batches,
		AvgBatchSize:   avg,
		ScoredPerSec:   rate,
		ScoredPerSec1m: m.rate.Observe(scored, now),
		SamplesDropped: m.samplesDropped.Load(),
		ScoresDropped:  m.scoresDropped.Load(),
		P50CoalesceMs:  p50,
		P99CoalesceMs:  p99,
		ServingGroups:  len(models),
		DerivedGroups:  derived,
		Models:         models,
	}
}
