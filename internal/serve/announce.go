package serve

import (
	"context"
	"sort"
	"time"

	"varade/internal/route"
)

// The announcer is the scoring plane's side of the sharded serving
// tier: a varade-serve process registers itself with a varade-router
// control endpoint and keeps the registration fresh, so the router can
// place sessions by capability and load. Shutdown posts a Draining
// announcement before the drain starts, pulling the backend out of the
// router's ring while live sessions finish.

// StartAnnouncer begins announcing this server to a router's control
// endpoint (e.g. "http://host:port") every interval. id names the
// backend in the router's ring and in relabeled metrics; sessionAddr
// and metricsAddr are the addresses Serve and ServeMetrics returned.
// The first registration failure is returned synchronously; later
// failed beats are retried with backoff inside the interval and counted
// in varade_announce_failures_total. Config.AnnounceTimeout bounds each
// POST (default 2s).
func (s *Server) StartAnnouncer(controlURL, id, sessionAddr, metricsAddr string, interval time.Duration) error {
	a, err := route.StartAnnouncerWith(controlURL, interval, route.AnnouncerOpts{
		Timeout: s.cfg.AnnounceTimeout,
		OnError: func(error) { s.met.announceFails.Inc() },
	}, func() route.Announcement {
		return s.announcement(id, sessionAddr, metricsAddr)
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.announcer = a
	s.mu.Unlock()
	return nil
}

// announcement snapshots what this server can serve and how loaded it
// is.
func (s *Server) announcement(id, sessionAddr, metricsAddr string) route.Announcement {
	infos := s.cfg.Registry.List()
	models := make([]route.ModelAd, 0, len(infos))
	precSet := map[string]bool{}
	for _, mi := range infos {
		precs := precisionsForKind(mi.Kind)
		for _, p := range precs {
			precSet[p] = true
		}
		models = append(models, route.ModelAd{
			Name:       mi.Name,
			Kind:       mi.Kind,
			Versions:   mi.Versions,
			Precisions: precs,
		})
	}
	precisions := make([]string, 0, len(precSet))
	for p := range precSet {
		precisions = append(precisions, p)
	}
	sort.Strings(precisions)
	return route.Announcement{
		ID:           id,
		Addr:         sessionAddr,
		MetricsAddr:  metricsAddr,
		Precisions:   precisions,
		Models:       models,
		LiveSessions: int(s.met.sessionsActive.Load()),
	}
}

// precisionsForKind maps a registry kind to the precisions a serving
// group can derive from it: the neural engines run the full precision
// ladder (SetPrecision), the classical baselines score only their own
// float64 path.
func precisionsForKind(kind string) []string {
	switch kind {
	case "VARADE", "AE", "AR-LSTM":
		return []string{"float64", "float32", "int8"}
	}
	return []string{"float64"}
}

// stopAnnouncer posts the final Draining announcement, de-registering
// from the router before the drain begins. No-op when no announcer was
// started.
func (s *Server) stopAnnouncer(ctx context.Context) {
	s.mu.Lock()
	a := s.announcer
	s.announcer = nil
	s.mu.Unlock()
	if a != nil {
		a.Stop(ctx)
	}
}
