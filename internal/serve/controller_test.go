package serve

import "testing"

// Synthetic-curve tests for the pure knee policy: the controller must
// converge to the knee of the ns/window curve and must NOT oscillate
// when measurement noise straddles the acquire threshold.

// curveRows builds one evaluation window's amortisation rows from
// batch-size → ns/window points, each bucket carrying enough windows to
// be trusted by the knee search.
func curveRows(points map[int]float64) []AmortRow {
	uppers := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	var rows []AmortRow
	for _, u := range uppers {
		ns, ok := points[u]
		if !ok {
			continue
		}
		rows = append(rows, AmortRow{
			BatchLE:     u,
			Flushes:     4,
			Windows:     schedMinBucketWindows * 4,
			NsPerWindow: ns,
		})
	}
	return rows
}

// feed runs the policy over the same curve for several evaluation
// windows and returns the final target.
func feed(p *schedPolicy, rows []AmortRow, times int) int {
	target := p.target
	for i := 0; i < times; i++ {
		target, _ = p.observe(rows)
	}
	return target
}

func TestPolicyFlatCurveConvergesToSmallestBatch(t *testing.T) {
	p := &schedPolicy{maxBatch: 256}
	flat := curveRows(map[int]float64{1: 100, 2: 100, 4: 100, 8: 100, 16: 100, 32: 100})
	if got := feed(p, flat, schedConfirm); got != 1 {
		t.Fatalf("flat curve: target = %d, want 1 (no amortisation gain to wait for)", got)
	}
}

func TestPolicyKneeAtEight(t *testing.T) {
	p := &schedPolicy{maxBatch: 256}
	knee8 := curveRows(map[int]float64{1: 1000, 2: 500, 4: 250, 8: 105, 16: 100, 32: 98})
	if got := feed(p, knee8, schedConfirm); got != 8 {
		t.Fatalf("knee-at-8 curve: target = %d, want 8", got)
	}
	// One observation is not enough: min-dwell requires schedConfirm
	// consecutive windows before the first move.
	p2 := &schedPolicy{maxBatch: 256}
	if got := feed(p2, knee8, schedConfirm-1); got != 0 {
		t.Fatalf("target moved after %d windows, want unset until %d confirm", schedConfirm-1, schedConfirm)
	}
}

func TestPolicyKneeAtFullBuffer(t *testing.T) {
	p := &schedPolicy{maxBatch: 256}
	// Strictly halving curve: amortisation never saturates, so the knee
	// is the whole buffer.
	desc := map[int]float64{}
	ns := 4096.0
	for b := 1; b <= 256; b *= 2 {
		desc[b] = ns
		ns /= 2
	}
	if got := feed(p, curveRows(desc), schedConfirm); got != 256 {
		t.Fatalf("descending curve: target = %d, want full buffer 256", got)
	}

	// A knee past the buffer capacity clamps to maxBatch.
	clamped := &schedPolicy{maxBatch: 48}
	if got := feed(clamped, curveRows(desc), schedConfirm); got != 48 {
		t.Fatalf("clamp: target = %d, want maxBatch 48", got)
	}
}

func TestPolicyNoOscillationUnderNoise(t *testing.T) {
	p := &schedPolicy{maxBatch: 256}
	knee8 := curveRows(map[int]float64{1: 1000, 2: 500, 4: 250, 8: 105, 16: 100, 32: 98})
	if got := feed(p, knee8, schedConfirm); got != 8 {
		t.Fatalf("setup: target = %d, want 8", got)
	}

	// Noisy windows where bucket 8 drifts above the acquire threshold
	// but stays inside the hold band: the Schmitt trigger keeps the
	// target at 8 through every permutation.
	noisy := [][]AmortRow{
		curveRows(map[int]float64{1: 980, 2: 510, 4: 260, 8: 120, 16: 100, 32: 99}),
		curveRows(map[int]float64{1: 1020, 2: 490, 4: 240, 8: 128, 16: 101, 32: 97}),
		curveRows(map[int]float64{1: 990, 2: 505, 4: 255, 8: 110, 16: 99, 32: 100}),
	}
	for round := 0; round < 20; round++ {
		target, moved := p.observe(noisy[round%len(noisy)])
		if moved || target != 8 {
			t.Fatalf("round %d: target moved to %d under in-band noise", round, target)
		}
	}

	// A real regime change — bucket 8 collapses far outside the hold
	// band — must still move the target once confirmed.
	shifted := curveRows(map[int]float64{1: 1000, 2: 500, 4: 250, 8: 400, 16: 100, 32: 98})
	if got := feed(p, shifted, schedConfirm); got != 16 {
		t.Fatalf("regime change: target = %d, want 16", got)
	}
}

func TestPolicyAlternatingKneeNeverConfirms(t *testing.T) {
	p := &schedPolicy{maxBatch: 256}
	knee8 := curveRows(map[int]float64{1: 1000, 2: 500, 4: 250, 8: 100, 16: 100})
	if got := feed(p, knee8, schedConfirm); got != 8 {
		t.Fatalf("setup: target = %d, want 8", got)
	}
	// Evaluation windows whose apparent knee flips 4↔16 every window
	// while bucket 8 has gone cold (absent): no candidate survives
	// schedConfirm consecutive windows, so the target never moves.
	a := curveRows(map[int]float64{1: 1000, 2: 500, 4: 110, 16: 100})
	b := curveRows(map[int]float64{1: 1000, 2: 500, 4: 300, 16: 100})
	for round := 0; round < 20; round++ {
		rows := a
		if round%2 == 1 {
			rows = b
		}
		if target, moved := p.observe(rows); moved || target != 8 {
			t.Fatalf("round %d: alternating noise moved target to %d", round, target)
		}
	}
}

func TestPolicySparseWindowsAreIgnored(t *testing.T) {
	p := &schedPolicy{maxBatch: 256}
	knee8 := curveRows(map[int]float64{1: 1000, 2: 500, 4: 250, 8: 100})
	if got := feed(p, knee8, schedConfirm); got != 8 {
		t.Fatalf("setup: target = %d, want 8", got)
	}
	sparse := []AmortRow{{BatchLE: 1, Flushes: 1, Windows: schedMinBucketWindows - 1, NsPerWindow: 10}}
	for i := 0; i < 5; i++ {
		if target, moved := p.observe(sparse); moved || target != 8 {
			t.Fatalf("sparse window moved target to %d", target)
		}
	}
	if target, moved := p.observe(nil); moved || target != 8 {
		t.Fatalf("empty window moved target to %d", target)
	}
}

func TestPolicyAbsentTargetBucketHolds(t *testing.T) {
	p := &schedPolicy{maxBatch: 256}
	knee8 := curveRows(map[int]float64{1: 1000, 2: 500, 4: 250, 8: 100})
	if got := feed(p, knee8, schedConfirm); got != 8 {
		t.Fatalf("setup: target = %d, want 8", got)
	}
	// Evaluation windows where the adopted target's bucket saw no flushes
	// at all (deadline flushes landed everything in bucket 32): with no
	// evidence about the target itself, the policy must hold rather than
	// chase the only bucket that happens to be populated.
	absent := curveRows(map[int]float64{32: 90})
	for round := 0; round < 2*schedConfirm+1; round++ {
		if target, moved := p.observe(absent); moved || target != 8 {
			t.Fatalf("round %d: absent-bucket window moved target to %d", round, target)
		}
	}
	// Once the target's bucket reappears and is genuinely bad, the move
	// still happens.
	bad := curveRows(map[int]float64{8: 1000, 32: 90})
	if got := feed(p, bad, schedConfirm); got != 32 {
		t.Fatalf("regime change after absence: target = %d, want 32", got)
	}
}

func TestPolicyResetForgetsLearnedTarget(t *testing.T) {
	p := &schedPolicy{maxBatch: 256}
	knee8 := curveRows(map[int]float64{1: 1000, 2: 500, 4: 250, 8: 100})
	feed(p, knee8, schedConfirm)
	p.reset()
	if p.target != 0 || p.candidate != 0 || p.confirm != 0 {
		t.Fatalf("reset left state %+v", *p)
	}
}
