package serve

import (
	"context"
	"path/filepath"
	"testing"

	"varade/internal/baselines/ae"
	"varade/internal/baselines/arlstm"
	"varade/internal/baselines/gbrf"
	"varade/internal/baselines/iforest"
	"varade/internal/baselines/knn"
	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/nn"
	"varade/internal/tensor"
)

// synthSeries builds a seeded random-walk series for fixtures.
func synthSeries(t, c int, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	s := tensor.New(t, c)
	d := s.Data()
	walk := make([]float64, c)
	for i := 0; i < t; i++ {
		for j := 0; j < c; j++ {
			walk[j] += rng.NormFloat64() * 0.1
			d[i*c+j] = walk[j]
		}
	}
	return s
}

// fixtureDetectors returns one small fitted instance of every detector
// type. The neural models stay at their seeded initialisation (scoring
// is deterministic either way); the data-backed models are fitted.
func fixtureDetectors(t *testing.T, series *tensor.Tensor) []detect.Detector {
	t.Helper()
	c := series.Dim(1)
	varadeM, err := core.New(core.TinyConfig(c))
	if err != nil {
		t.Fatal(err)
	}
	aeM, err := ae.New(ae.Config{Window: 8, Channels: c, BaseMaps: 4, Seed: 1, Epochs: 1, Batch: 8, LR: 1e-3, Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	lstmM, err := arlstm.New(arlstm.Config{Window: 4, Channels: c, Layers: 1, Hidden: 8, Seed: 1, Epochs: 1, Batch: 8, LR: 1e-3, Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	gbrfM, err := gbrf.New(gbrf.Config{
		Window: 2, Channels: c, Trees: 3, LearningRate: 0.3,
		Tree:   gbrf.TreeConfig{MaxDepth: 2, MinSamplesLeaf: 2},
		Stride: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gbrfM.Fit(series); err != nil {
		t.Fatal(err)
	}
	ifM, err := iforest.New(iforest.Config{Trees: 10, SubsampleSize: 32, Contamination: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ifM.Fit(series); err != nil {
		t.Fatal(err)
	}
	knnM, err := knn.New(knn.Config{K: 3, MaxSamples: 64, Backend: knn.KDTree, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := knnM.Fit(series); err != nil {
		t.Fatal(err)
	}
	return []detect.Detector{varadeM, aeM, lstmM, gbrfM, ifM, knnM}
}

// TestRegistryRoundTripAllDetectorTypes saves every detector type through
// the registry and asserts the reloaded instance scores bit-identically.
func TestRegistryRoundTripAllDetectorTypes(t *testing.T) {
	series := synthSeries(120, 3, 7)
	probe := synthSeries(40, 3, 8)
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fixtureDetectors(t, series) {
		name := "m-" + sanitize(d.Name())
		v, err := reg.Register(name, d)
		if err != nil {
			t.Fatalf("%s: register: %v", d.Name(), err)
		}
		if v != 1 {
			t.Fatalf("%s: first version %d", d.Name(), v)
		}
		loaded, lv, err := reg.Load(name, 0)
		if err != nil {
			t.Fatalf("%s: load: %v", d.Name(), err)
		}
		if lv != 1 {
			t.Fatalf("%s: loaded version %d", d.Name(), lv)
		}
		w := d.WindowSize()
		for i := w; i+w <= probe.Dim(0); i += w {
			win := probe.SliceRows(i-w+1, i+1)
			if got, want := loaded.Score(win), d.Score(win); got != want {
				t.Fatalf("%s: reloaded score %g != %g at window %d", d.Name(), got, want, i)
			}
		}
	}
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

// TestRegistryVersioning asserts version assignment, latest resolution,
// explicit lookups and reopening from disk.
func TestRegistryVersioning(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := core.New(core.TinyConfig(2))
	m2, _ := core.New(core.Config{Window: 8, Channels: 2, BaseMaps: 4, KLWeight: 0.1, Seed: 99})
	if v, _ := reg.Register("det", m1); v != 1 {
		t.Fatalf("v=%d want 1", v)
	}
	if v, _ := reg.Register("det", m2); v != 2 {
		t.Fatalf("v=%d want 2", v)
	}
	if _, v, err := reg.Resolve("det", 0); err != nil || v != 2 {
		t.Fatalf("latest resolve v=%d err=%v", v, err)
	}
	if _, _, err := reg.Resolve("det", 3); err == nil {
		t.Fatal("expected missing-version error")
	}
	if _, _, err := reg.Resolve("ghost", 0); err == nil {
		t.Fatal("expected unknown-model error")
	}
	// A fresh registry over the same directory re-indexes the files.
	reg2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	list := reg2.List()
	if len(list) != 1 || list[0].Name != "det" || len(list[0].Versions) != 2 {
		t.Fatalf("reopened listing %+v", list)
	}
	// The explicit v1 file loads the seed-1 weights, not the latest.
	d1, _, err := reg2.Load("det", 1)
	if err != nil {
		t.Fatal(err)
	}
	probe := synthSeries(20, 2, 3)
	win := probe.SliceRows(0, 8)
	if got, want := d1.Score(win), m1.Score(win); got != want {
		t.Fatalf("v1 score %g != %g", got, want)
	}
}

// TestRegistryRejectsBareWeights documents that headerless legacy files
// cannot enter the registry.
func TestRegistryRejectsBareWeights(t *testing.T) {
	m, _ := core.New(core.TinyConfig(2))
	path := filepath.Join(t.TempDir(), "legacy.vnn")
	if err := nn.SaveFile(path, m.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDetector(path); err == nil {
		t.Fatal("expected bare-weights rejection")
	}
}

// TestReloadSeesOutOfProcessImport pins the operational flow the CLI
// documents: `varade-serve -import` runs as a separate process against a
// live server's registry directory, so Reload must rescan the directory
// and resolve the new latest version rather than re-swapping the stale
// in-memory index.
func TestReloadSeesOutOfProcessImport(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := core.New(core.TinyConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("det", m1); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{Registry: reg, DefaultModel: "det"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	if _, err := srv.group("det", 0, ""); err != nil {
		t.Fatal(err)
	}

	// "Another process": a second Registry handle on the same directory
	// registers v2 — the server's handle has no in-memory knowledge of it.
	otherProc, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := core.New(core.Config{Window: 8, Channels: 2, BaseMaps: 4, KLWeight: 0.1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := otherProc.Register("det", m2); err != nil || v != 2 {
		t.Fatalf("second-process register: v%d err %v", v, err)
	}

	if err := srv.Reload("det"); err != nil {
		t.Fatal(err)
	}
	for _, ms := range srv.Metrics().Models {
		if ms.Version != 2 {
			t.Fatalf("group %s at v%d after reload, want the out-of-process v2", ms.Key, ms.Version)
		}
	}
}
