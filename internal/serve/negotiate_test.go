package serve

import (
	"bufio"
	"context"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"varade/internal/baselines/ae"
	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/stream"
)

// newFloat64FleetServer registers ONE float64 TinyConfig VARADE entry —
// the shared registry file every negotiated precision derives from — and
// starts a server. The returned model is the float64 oracle.
func newFloat64FleetServer(t *testing.T, channels int) (*Server, string, *core.Model) {
	t.Helper()
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.New(core.TinyConfig(channels))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("varade", model); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Registry:      reg,
		DefaultModel:  "varade",
		FlushInterval: time.Millisecond,
		QueueDepth:    256,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr, model
}

// runSession dials with caps (nil = protocol v1), streams the series and
// returns the welcome and every score.
func runSession(t *testing.T, ctx context.Context, addr, model string, channels int,
	caps *stream.SessionCaps, rows [][]float64) (stream.Welcome, []stream.Score, error) {
	t.Helper()
	var (
		cl  *Client
		err error
	)
	if caps == nil {
		cl, err = Dial(ctx, addr, model, channels)
	} else {
		cl, err = DialWith(ctx, addr, model, channels, *caps)
	}
	if err != nil {
		return stream.Welcome{}, nil, err
	}
	defer cl.Close()
	var scores []stream.Score
	err = cl.Run(ctx, rows, 16, func(sc stream.Score) { scores = append(scores, sc) })
	return cl.Welcome(), scores, err
}

// TestMixedPrecisionNegotiatedSessions is the tentpole's acceptance test:
// three sessions negotiate three precisions against the SAME float64
// registry entry. The float64 session must stay bit-identical to
// detect.ScoreSeries, the float32 session must track the oracle within
// the reduced-precision tolerance, the int8 session within the
// quantization tolerance — and every Welcome must echo the granted
// precision while the metrics report the derived groups.
func TestMixedPrecisionNegotiatedSessions(t *testing.T) {
	const (
		steps    = 50
		channels = 3
	)
	srv, addr, oracle := newFloat64FleetServer(t, channels)
	defer srv.Shutdown(context.Background())
	w := oracle.WindowSize()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	precisions := []string{core.PrecisionFloat64, core.PrecisionFloat32, core.PrecisionInt8}
	type result struct {
		prec    string
		welcome stream.Welcome
		scores  []stream.Score
		err     error
	}
	results := make(chan result, len(precisions))
	for i, prec := range precisions {
		go func(i int, prec string) {
			series := synthSeries(steps, channels, uint64(900+i))
			welcome, scores, err := runSession(t, ctx, addr, "varade@latest", channels,
				&stream.SessionCaps{Precision: prec}, rowsOf(series))
			results <- result{prec: prec, welcome: welcome, scores: scores, err: err}
		}(i, prec)
	}

	tol := map[string]float64{
		core.PrecisionFloat64: 0,
		core.PrecisionFloat32: 1e-4,
		core.PrecisionInt8:    0.2,
	}
	for range precisions {
		r := <-results
		if r.err != nil {
			t.Fatalf("%s session: %v", r.prec, r.err)
		}
		if r.welcome.Proto != stream.ProtoV2 || r.welcome.Precision != r.prec {
			t.Fatalf("%s session welcome %+v: want proto 2 and the granted precision echoed", r.prec, r.welcome)
		}
		if r.welcome.Version != 1 || r.welcome.Model != "varade" {
			t.Fatalf("%s session resolved %s@v%d, want varade@v1", r.prec, r.welcome.Model, r.welcome.Version)
		}
		var i int
		for i = range precisions {
			if precisions[i] == r.prec {
				break
			}
		}
		series := synthSeries(steps, channels, uint64(900+i))
		want := detect.ScoreSeries(oracle, series)
		if len(r.scores) != steps-w+1 {
			t.Fatalf("%s session: %d scores want %d", r.prec, len(r.scores), steps-w+1)
		}
		for _, sc := range r.scores {
			ref := want[sc.Index]
			if r.prec == core.PrecisionFloat64 {
				if sc.Value != ref {
					t.Fatalf("float64 session score at %d = %g, want bit-identical %g", sc.Index, sc.Value, ref)
				}
				continue
			}
			if d := math.Abs(sc.Value-ref) / math.Max(1e-12, math.Abs(ref)); d > tol[r.prec] {
				t.Fatalf("%s session score at %d = %g drifts %.3g from oracle %g (tol %g)",
					r.prec, sc.Index, sc.Value, d, ref, tol[r.prec])
			}
		}
	}

	m := srv.Metrics()
	if m.ServingGroups != 3 {
		t.Fatalf("serving groups %d want 3: %+v", m.ServingGroups, m.Models)
	}
	if m.DerivedGroups != 2 {
		t.Fatalf("derived groups %d want 2 (float32+int8 from a float64 file): %+v", m.DerivedGroups, m.Models)
	}
	seen := map[string]ModelStatus{}
	for _, ms := range m.Models {
		seen[ms.Precision] = ms
	}
	for _, prec := range precisions {
		ms, ok := seen[prec]
		if !ok {
			t.Fatalf("no serving group at precision %s: %+v", prec, m.Models)
		}
		if ms.Key != "varade:"+prec {
			t.Fatalf("group at %s has key %q", prec, ms.Key)
		}
		if ms.Derived != (prec != core.PrecisionFloat64) {
			t.Fatalf("group %s derived=%v", ms.Key, ms.Derived)
		}
		if ms.Requested != prec {
			t.Fatalf("group %s requested_precision %q", ms.Key, ms.Requested)
		}
	}
}

// TestV1ClientOnV2Server pins wire compatibility: a pre-v2 client (the
// plain Dial path, "VFS1" preamble, capability-free Hello) dials a server
// that is simultaneously serving negotiated sessions, and must be served
// at the file's own precision, bit-identical to detect.ScoreSeries, with
// a Welcome free of v2 fields.
func TestV1ClientOnV2Server(t *testing.T) {
	const (
		steps    = 40
		channels = 2
	)
	srv, addr, oracle := newFloat64FleetServer(t, channels)
	defer srv.Shutdown(context.Background())
	w := oracle.WindowSize()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// A concurrent v2 session keeps a derived int8 group live while the
	// v1 client runs.
	v2series := synthSeries(steps, channels, 71)
	if _, _, err := runSession(t, ctx, addr, "", channels,
		&stream.SessionCaps{Precision: core.PrecisionInt8}, rowsOf(v2series)); err != nil {
		t.Fatal(err)
	}

	series := synthSeries(steps, channels, 72)
	welcome, scores, err := runSession(t, ctx, addr, "", channels, nil, rowsOf(series))
	if err != nil {
		t.Fatal(err)
	}
	if welcome.Proto != 0 || welcome.Precision != "" || welcome.MaxBatch != 0 || welcome.DropPolicy != "" {
		t.Fatalf("v1 welcome carries v2 fields: %+v", welcome)
	}
	want := detect.ScoreSeries(oracle, series)
	if len(scores) != steps-w+1 {
		t.Fatalf("%d scores want %d", len(scores), steps-w+1)
	}
	for _, sc := range scores {
		if sc.Value != want[sc.Index] {
			t.Fatalf("v1 score at %d = %g, want bit-identical %g", sc.Index, sc.Value, want[sc.Index])
		}
	}
}

// TestGrantedCapsEnforced checks the two non-precision capabilities: the
// score-frame cap bounds every Scores frame the session receives, and
// the drop policy is echoed back in the grant.
func TestGrantedCapsEnforced(t *testing.T) {
	const (
		steps    = 60
		channels = 2
		frameCap = 3
	)
	srv, addr, oracle := newFloat64FleetServer(t, channels)
	defer srv.Shutdown(context.Background())
	w := oracle.WindowSize()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := DialWith(ctx, addr, "", channels, stream.SessionCaps{
		MaxBatch:   frameCap,
		DropPolicy: stream.DropNewest,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	welcome := cl.Welcome()
	if welcome.MaxBatch != frameCap || welcome.DropPolicy != stream.DropNewest {
		t.Fatalf("grant %+v, want max_batch %d drop_policy %s", welcome, frameCap, stream.DropNewest)
	}
	if welcome.Precision != core.PrecisionFloat64 {
		t.Fatalf("default-precision grant %q, want the file's float64", welcome.Precision)
	}

	series := synthSeries(steps, channels, 37)
	if err := cl.Send(rowsOf(series)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Bye(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for got < steps-w+1 {
		scores, err := cl.ReadScores()
		if err != nil {
			t.Fatal(err)
		}
		if len(scores) > frameCap {
			t.Fatalf("received a %d-score frame, granted cap %d", len(scores), frameCap)
		}
		got += len(scores)
	}
	if got != steps-w+1 {
		t.Fatalf("%d scores want %d", got, steps-w+1)
	}
}

// TestNegotiationRefusals: a precision the engine cannot serve, a
// malformed capability set, and caps on the v1 wire must all be refused
// at the handshake with a client-visible error. Raw-socket cases bypass
// DialWith's client-side validation so the SERVER's refusal paths are
// the ones under test.
func TestNegotiationRefusals(t *testing.T) {
	srv, addr, _ := newFloat64FleetServer(t, 2)
	defer srv.Shutdown(context.Background())
	ctx := context.Background()

	// Client-side validation rejects malformed caps before dialing.
	if _, err := DialWith(ctx, addr, "", 2, stream.SessionCaps{Precision: "bf16"}); err == nil {
		t.Fatal("expected refusal for unknown precision")
	}
	if _, err := DialWith(ctx, addr, "", 2, stream.SessionCaps{DropPolicy: "random"}); err == nil {
		t.Fatal("expected refusal for unknown drop policy")
	}
	if _, err := DialWith(ctx, addr, "ghost@latest", 2, stream.SessionCaps{}); err == nil {
		t.Fatal("expected refusal for unknown model")
	}

	// A float64-only engine (the AE baseline has no SetPrecision) must be
	// refused server-side when a session asks it to derive float32.
	aeModel, err := ae.New(ae.Config{Window: 8, Channels: 2, BaseMaps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.cfg.Registry.Register("ae", aeModel); err != nil {
		t.Fatal(err)
	}
	if _, err := DialWith(ctx, addr, "ae", 2, stream.SessionCaps{Precision: core.PrecisionFloat32}); err == nil {
		t.Fatal("expected server refusal: AE cannot serve float32")
	} else if !strings.Contains(err.Error(), "cannot serve precision") {
		t.Fatalf("refusal %v does not name the precision mismatch", err)
	}
	// Requesting the precision it already runs is fine.
	cl, err := DialWith(ctx, addr, "ae", 2, stream.SessionCaps{Precision: core.PrecisionFloat64})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Welcome().Precision != core.PrecisionFloat64 {
		t.Fatalf("AE grant %+v", cl.Welcome())
	}
	cl.Close()

	// Raw v2 hello with a capability set DialWith would never send: the
	// server's DecodeHello must refuse it with an Error frame.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(stream.FrameMagicV2)); err != nil {
		t.Fatal(err)
	}
	bad := stream.Hello{Channels: 2, Caps: &stream.SessionCaps{Precision: "bf16"}}
	if err := stream.WriteJSONFrame(conn, stream.FrameHello, bad); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := stream.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if typ != stream.FrameError || !strings.Contains(string(payload), "precision") {
		t.Fatalf("server answered frame %d %q, want a precision error", typ, payload)
	}
}

// TestHotSwapUnderNegotiation is the satellite coverage for Reload with
// live mixed-precision sessions: while a float64 and an int8 session are
// mid-stream against the same entry, a new version is registered and
// reloaded. Both sessions must keep their window state (exactly one
// score per completed window across the swap), the float64 session's
// post-swap scores must be bit-identical to the new weights, the int8
// session must leave the old weights' neighbourhood and land within
// quantization tolerance of the new — and a session dialing the derived
// precision AFTER the swap must see the new version, never a stale
// derived group.
func TestHotSwapUnderNegotiation(t *testing.T) {
	const (
		steps    = 40
		channels = 2
	)
	srv, addr, model1 := newFloat64FleetServer(t, channels)
	defer srv.Shutdown(context.Background())
	reg := srv.cfg.Registry

	model2, err := core.New(core.Config{Window: 8, Channels: channels, BaseMaps: 4, KLWeight: 0.1, Seed: 424242})
	if err != nil {
		t.Fatal(err)
	}

	w := model1.WindowSize()
	half := steps / 2
	firstWindows := half - w + 1

	type liveSession struct {
		prec   string
		cl     *Client
		series [][]float64
		pre    []stream.Score
		post   []stream.Score
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	sessions := []*liveSession{
		{prec: core.PrecisionFloat64},
		{prec: core.PrecisionInt8},
	}
	for i, ls := range sessions {
		series := synthSeries(steps, channels, uint64(600+i))
		ls.series = rowsOf(series)
		cl, err := DialWith(ctx, addr, "varade", channels, stream.SessionCaps{Precision: ls.prec})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		ls.cl = cl
		// First half under v1; read exactly the scores those pushes
		// complete so the swap lands between batches.
		if err := cl.Send(ls.series[:half]); err != nil {
			t.Fatal(err)
		}
		for len(ls.pre) < firstWindows {
			batch, err := cl.ReadScores()
			if err != nil {
				t.Fatal(err)
			}
			ls.pre = append(ls.pre, batch...)
		}
	}

	if _, err := reg.Register("varade", model2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload("varade"); err != nil {
		t.Fatal(err)
	}

	for _, ls := range sessions {
		if err := ls.cl.Send(ls.series[half:]); err != nil {
			t.Fatal(err)
		}
		if err := ls.cl.Bye(); err != nil {
			t.Fatal(err)
		}
		for {
			batch, err := ls.cl.ReadScores()
			if err != nil {
				break // EOF after drain
			}
			ls.post = append(ls.post, batch...)
		}
		if len(ls.post) != steps-w+1-firstWindows {
			t.Fatalf("%s session: %d post-swap scores want %d (window state lost across swap?)",
				ls.prec, len(ls.post), steps-w+1-firstWindows)
		}
	}

	for i, ls := range sessions {
		series := synthSeries(steps, channels, uint64(600+i))
		wantV1 := detect.ScoreSeries(model1, series)
		wantV2 := detect.ScoreSeries(model2, series)
		for _, sc := range ls.post {
			switch ls.prec {
			case core.PrecisionFloat64:
				if sc.Value != wantV2[sc.Index] {
					t.Fatalf("float64 post-swap score at %d = %g want v2 %g (v1 would be %g)",
						sc.Index, sc.Value, wantV2[sc.Index], wantV1[sc.Index])
				}
			case core.PrecisionInt8:
				ref := wantV2[sc.Index]
				if d := math.Abs(sc.Value-ref) / math.Max(1e-12, math.Abs(ref)); d > 0.2 {
					t.Fatalf("int8 post-swap score at %d = %g drifts %.3g from v2 oracle %g — stale derived group?",
						sc.Index, sc.Value, d, ref)
				}
			}
		}
	}

	// Every group — including the derived int8 one — must now be at v2.
	for _, ms := range srv.Metrics().Models {
		if ms.Version != 2 {
			t.Fatalf("group %s still at v%d after Reload", ms.Key, ms.Version)
		}
	}

	// A fresh int8 session dialed after the swap resolves v2 directly.
	series := synthSeries(steps, channels, 999)
	welcome, scores, err := runSession(t, ctx, addr, "varade@latest", channels,
		&stream.SessionCaps{Precision: core.PrecisionInt8}, rowsOf(series))
	if err != nil {
		t.Fatal(err)
	}
	if welcome.Version != 2 || welcome.Precision != core.PrecisionInt8 {
		t.Fatalf("post-swap int8 welcome %+v, want v2 int8", welcome)
	}
	wantV2 := detect.ScoreSeries(model2, series)
	for _, sc := range scores {
		ref := wantV2[sc.Index]
		if d := math.Abs(sc.Value-ref) / math.Max(1e-12, math.Abs(ref)); d > 0.2 {
			t.Fatalf("fresh post-swap int8 score at %d = %g drifts %.3g from v2 oracle %g",
				sc.Index, sc.Value, d, ref)
		}
	}
}
