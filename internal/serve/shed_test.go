package serve

import (
	"context"
	"strings"
	"testing"
	"time"

	"varade/internal/stream"
)

// TestAdmissionSLOShedding covers the admission-plane SLO gate: a
// window whose age at admission already exceeds the group's SLO budget
// is shed immediately — counted in varade_sched_shed_total, never
// queued, and its session's outstanding balance still retires — while a
// fresh window flows through and gets scored.
func TestAdmissionSLOShedding(t *testing.T) {
	const (
		channels = 2
		slo      = 50 * time.Millisecond
	)
	srv, _, model := newFleetServer(t, channels, Config{SLOP99: slo, ShedAdmission: true})
	defer srv.Shutdown(context.Background())

	g, err := srv.group("varade", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	sess := newSession(srv, g, newConnRW(nil), true, stream.SessionCaps{}, 0, 0)
	buf := stream.NewWindowBuffer(g.w, g.c)
	for i := 0; i < model.WindowSize(); i++ {
		buf.Push(make([]float64, channels))
	}

	// A window admitted 10 SLOs ago is doomed: shed, not queued.
	sess.outstanding.Add(1)
	g.add(sess, 0, buf, time.Now().Add(-10*slo))
	if got := g.obs.shedTotal.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	g.mu.Lock()
	queued := g.n
	g.mu.Unlock()
	if queued != 0 {
		t.Fatalf("doomed window was queued (n=%d)", queued)
	}
	if got := sess.outstanding.Load(); got != 0 {
		t.Fatalf("outstanding = %d after shed, want 0", got)
	}

	// A fresh window queues and gets scored within the SLO machinery.
	sess.outstanding.Add(1)
	g.add(sess, 1, buf, time.Now())
	deadline := time.Now().Add(5 * time.Second)
	for sess.outstanding.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("fresh window never scored")
		}
		time.Sleep(time.Millisecond)
	}
	if got := g.obs.shedTotal.Load(); got != 1 {
		t.Fatalf("fresh window was shed (counter %d)", got)
	}

	// The counter is exported and the scheduler block reports it.
	g.mu.Lock()
	shed := g.schedulerStatusLocked().Shed
	g.mu.Unlock()
	if shed != 1 {
		t.Fatalf("SchedulerStatus.Shed = %d, want 1", shed)
	}
	var b strings.Builder
	srv.WritePrometheus(&b)
	if !strings.Contains(b.String(), "varade_sched_shed_total{") {
		t.Fatal("varade_sched_shed_total missing from exposition")
	}
}
