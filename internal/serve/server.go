package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"varade/internal/detect"
	"varade/internal/obs"
	"varade/internal/route"
	"varade/internal/stream"
)

// Config parameterises a fleet server.
type Config struct {
	// Registry resolves model references; required.
	Registry *Registry
	// DefaultModel ("name" or "name@vN") serves line-protocol clients and
	// binary clients whose Hello names no model.
	DefaultModel string
	// FlushInterval bounds how long a ready window waits before its
	// coalesced batch is scored when no SLO budget is in force. Default
	// 2ms.
	FlushInterval time.Duration
	// AnnounceTimeout bounds each heartbeat POST to the router's
	// control endpoint (StartAnnouncer). Default 2s.
	AnnounceTimeout time.Duration
	// SLOP99 is the per-group p99 coalescing-latency budget
	// (varade-serve -slo-p99). When set, each group's flusher fires at
	// min(fill target reached, oldest admitted window's deadline), where
	// the deadline is this budget minus the measured flush cost — so
	// batch amortisation is traded against an explicit tail-latency
	// target rather than the fixed FlushInterval. v2 sessions can
	// tighten (never loosen) their group's budget via the slo_p99_ms
	// capability. 0 disables the budget.
	SLOP99 time.Duration
	// ShedAdmission extends the SLO into the admission plane: a window
	// whose age already exceeds the group's SLO budget when it reaches
	// the coalescer is shed (counted in varade_sched_shed_total) instead
	// of queued — any batch it joined would emit past its deadline
	// anyway. Opt-in (varade-serve -slo-shed) because it trades the
	// every-window-is-owed-a-score contract for freshness: consumers
	// that count scores against windows sent must read to Bye/EOF
	// rather than expecting an exact count. No effect without SLOP99.
	ShedAdmission bool
	// MaxBatch is the coalescer's fill-buffer capacity; a full buffer
	// flushes immediately. Default detect.BatchChunk.
	MaxBatch int
	// FillTargets overrides, per serving precision ("float64",
	// "float32", "int8"), the batch fill level at which a group flushes
	// without waiting for the next tick. Positive entries are clamped
	// to [1, MaxBatch]; absent or non-positive entries use the
	// built-in table:
	// int8 groups fill the whole buffer (the quantized engine's
	// per-batch overhead amortises best at large batches), float
	// groups flush at half — their GEMM amortisation has saturated by
	// then, so waiting longer only adds latency. Sessions that
	// negotiated a smaller SessionCaps.MaxBatch pull their group's
	// target down further (see modelGroup.recomputeFillTargetLocked).
	FillTargets map[string]int
	// QueueDepth is each session's inbound admission queue (samples);
	// when full the oldest queued sample is dropped, Bus-style.
	// Default 512.
	QueueDepth int
	// OutDepth is each session's outbound score queue; when full new
	// scores are dropped (and counted) rather than blocking the scorer.
	// Default QueueDepth.
	OutDepth int
	// EnablePprof mounts net/http/pprof handlers under /debug/pprof/ on
	// the metrics listener. Off by default: profiling endpoints are a
	// deliberate operator opt-in (varade-serve -pprof).
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = detect.BatchChunk
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 512
	}
	if c.OutDepth <= 0 {
		c.OutDepth = c.QueueDepth
	}
	return c
}

// Server multiplexes many device sessions over shared detectors. One
// listener accepts both wire protocols (CSV lines and binary frames,
// told apart by the preamble); a model registry backs named detectors;
// and a per-model coalescer batches ready windows across sessions.
type Server struct {
	cfg Config
	met *metrics

	ln   net.Listener
	http *http.Server

	gctx    context.Context
	gcancel context.CancelFunc

	mu        sync.Mutex
	groups    map[string]*modelGroup
	sessions  map[*session]struct{}
	conns     map[net.Conn]struct{} // every live connection, incl. mid-handshake
	draining  bool
	announcer *route.Announcer // router registration heartbeat, if started
	sessID    atomic.Int64

	acceptWG sync.WaitGroup
	sessWG   sync.WaitGroup
	grpWG    sync.WaitGroup
}

// NewServer builds a server; Serve starts it.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: Config.Registry is required")
	}
	cfg = cfg.withDefaults()
	gctx, gcancel := context.WithCancel(context.Background())
	return &Server{
		cfg:      cfg,
		met:      newMetrics(),
		gctx:     gctx,
		gcancel:  gcancel,
		groups:   make(map[string]*modelGroup),
		sessions: make(map[*session]struct{}),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Serve starts accepting device sessions on addr (":0" picks a port)
// and returns the bound address immediately; sessions are handled on
// background goroutines until Shutdown.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.acceptWG.Add(1)
	go func() {
		defer s.acceptWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.draining {
				s.mu.Unlock()
				conn.Close()
				continue
			}
			s.conns[conn] = struct{}{}
			s.sessWG.Add(1)
			s.mu.Unlock()
			go s.handleConn(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// connRW couples a connection with its buffered writer so the session
// writer can batch small writes and flush explicitly.
type connRW struct {
	net.Conn
	bw *bufio.Writer
}

func newConnRW(c net.Conn) *connRW { return &connRW{Conn: c, bw: bufio.NewWriter(c)} }

func (c *connRW) Write(p []byte) (int, error) { return c.bw.Write(p) }
func (c *connRW) Flush() error                { return c.bw.Flush() }
func (c *connRW) Close() error {
	c.bw.Flush()
	return c.Conn.Close()
}

func (s *Server) handleConn(raw net.Conn) {
	defer s.sessWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, raw)
		s.mu.Unlock()
	}()
	conn := newConnRW(raw)
	br := bufio.NewReader(raw)

	// Protocol sniff: binary sessions open with a versioned frame
	// preamble; CSV lines can never start with 'V'.
	proto := 0
	if peek, err := br.Peek(len(stream.FrameMagic)); err == nil {
		proto = stream.SniffProto(peek)
	}
	binary := proto > 0

	var grp *modelGroup
	var granted stream.SessionCaps
	reqBatch := 0
	var reqSLO time.Duration
	if binary {
		br.Discard(len(stream.FrameMagic))
		t, payload, err := stream.ReadFrame(br)
		if err != nil || t != stream.FrameHello {
			conn.Close()
			return
		}
		hello, err := stream.DecodeHello(proto, payload)
		if err != nil {
			s.refuse(conn, binary, err)
			return
		}
		req := hello.GetCaps()
		ref := hello.Model
		if ref == "" {
			ref = s.cfg.DefaultModel
		}
		name, version, err := ParseModelRef(ref)
		if err == nil && hello.Version > 0 {
			version = hello.Version
		}
		if err == nil {
			grp, err = s.group(name, version, req.Precision)
		}
		if err == nil && hello.Channels > 0 && hello.Channels != grp.c {
			err = fmt.Errorf("serve: model %s expects %d channels, client sends %d", grp.name, grp.c, hello.Channels)
		}
		if err != nil {
			s.refuse(conn, binary, err)
			return
		}
		welcome := stream.Welcome{Model: grp.name, Version: grp.servingVersion(), Window: grp.w, Channels: grp.c}
		if proto >= stream.ProtoV2 {
			granted = s.grant(grp, req)
			reqBatch = req.MaxBatch
			reqSLO = time.Duration(req.SLOP99Ms * float64(time.Millisecond))
			welcome.Proto = stream.ProtoV2
			welcome.Precision = granted.Precision
			welcome.MaxBatch = granted.MaxBatch
			welcome.DropPolicy = granted.DropPolicy
			welcome.SLOP99Ms = granted.SLOP99Ms
		}
		if err := stream.WriteJSONFrame(conn, stream.FrameWelcome, welcome); err != nil || conn.Flush() != nil {
			conn.Close()
			return
		}
	} else {
		name, version, err := ParseModelRef(s.cfg.DefaultModel)
		if err == nil {
			grp, err = s.group(name, version, "")
		}
		if err != nil {
			s.refuse(conn, binary, err)
			return
		}
	}

	sess := newSession(s, grp, conn, binary, granted, reqBatch, reqSLO)
	if !s.trackSession(sess, grp) {
		conn.Close()
		return
	}
	sess.run(br)
	s.untrackSession(sess, grp)
}

// fillTargetFor resolves the configured (or default) coalescer fill
// target for a serving precision.
func (s *Server) fillTargetFor(prec string) int {
	t, ok := s.cfg.FillTargets[prec]
	if !ok || t <= 0 {
		if prec == "int8" {
			t = s.cfg.MaxBatch
		} else {
			t = (s.cfg.MaxBatch + 1) / 2
		}
	}
	return max(1, min(t, s.cfg.MaxBatch))
}

// grant resolves a v2 capability request against the serving group and
// the server's own limits: the precision is whatever the group actually
// runs (the group was selected — or materialised — from the request, so
// an unservable precision was already refused), the score-frame cap is
// min(requested, server cap), and the drop policy defaults to oldest.
func (s *Server) grant(grp *modelGroup, req stream.SessionCaps) stream.SessionCaps {
	out := stream.SessionCaps{
		Precision:  grp.servingPrecision(),
		MaxBatch:   maxScoreFrame,
		DropPolicy: stream.DropOldest,
	}
	if req.MaxBatch > 0 && req.MaxBatch < out.MaxBatch {
		out.MaxBatch = req.MaxBatch
	}
	if req.DropPolicy == stream.DropNewest {
		out.DropPolicy = stream.DropNewest
	}
	// The granted latency budget is the tighter of the session's request
	// and the operator's configured floor; with neither, the field stays
	// zero and is omitted from the Welcome (pre-SLO byte compatibility).
	slo := s.cfg.SLOP99
	if req.SLOP99Ms > 0 {
		reqSLO := time.Duration(req.SLOP99Ms * float64(time.Millisecond))
		if slo <= 0 || reqSLO < slo {
			slo = reqSLO
		}
	}
	out.SLOP99Ms = float64(slo) / float64(time.Millisecond)
	return out
}

// refuse reports a handshake error to the client and closes.
func (s *Server) refuse(conn *connRW, binary bool, err error) {
	if binary {
		stream.WriteFrame(conn, stream.FrameError, []byte(err.Error()))
	} else {
		fmt.Fprintf(conn, "error: %v\n", err)
	}
	conn.Close()
}

func (s *Server) trackSession(sess *session, grp *modelGroup) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.sessions[sess] = struct{}{}
	grp.sessionJoined(sess, sess.reqBatch, sess.reqSLO)
	return true
}

func (s *Server) untrackSession(sess *session, grp *modelGroup) {
	s.mu.Lock()
	delete(s.sessions, sess)
	// Fold the session's admission drops into the aggregate (its Bus is
	// closed) inside the same critical section that removes it from the
	// live set: a concurrent Metrics must see these drops in exactly one
	// of the two places it sums.
	s.met.samplesDropped.Add(int64(sess.bus.Dropped()))
	s.mu.Unlock()
	grp.sessionLeft(sess)
}

// groupKey names one serving group: "name" or "name@vN", with a ":prec"
// suffix when the session negotiated an explicit precision. Sessions that
// ask for nothing share the model file's native group; sessions that pin
// a precision land in (or materialise) the matching derived group.
func groupKey(name string, version int, prec string) string {
	key := name
	if version > 0 {
		key = fmt.Sprintf("%s@v%d", name, version)
	}
	if prec != "" {
		key += ":" + prec
	}
	return key
}

// derivePrecision re-targets a freshly loaded detector to the requested
// serving precision. It returns the unified scorer and whether the
// engine was actually re-targeted away from the file's own precision (a
// derived variant — e.g. int8 lazily quantized from a float64 entry).
func derivePrecision(det detect.Detector, prec string) (detect.Scorer, bool, error) {
	sc := detect.AsScorer(det)
	if prec == "" || sc.Capabilities().Precision == prec {
		return sc, false, nil
	}
	caps := sc.Capabilities()
	if !caps.Supports(prec) {
		return nil, false, fmt.Errorf("serve: %s engine cannot serve precision %q (supports %v)",
			sc.Name(), prec, caps.Precisions)
	}
	setter, ok := det.(interface{ SetPrecision(string) error })
	if !ok {
		return nil, false, fmt.Errorf("serve: %s cannot be re-targeted to precision %q", sc.Name(), prec)
	}
	if err := setter.SetPrecision(prec); err != nil {
		return nil, false, err
	}
	return sc, true, nil
}

// group returns (creating and caching on first use) the coalescing group
// for a model reference at a negotiated precision ("" = the file's own).
// Version 0 tracks "latest at first use" and is hot-swappable via Reload;
// an explicit version pins the group. Each group owns its own detector
// instance — precision re-targeting mutates the engine, so groups never
// share one. The registry read and model reconstruction happen outside
// the server lock — a cold multi-megabyte model must not stall every
// other handshake and the metrics endpoint. Two racing first users may
// both load the model; the double-check under the lock keeps exactly one
// group (and one flusher), the loser's detector is discarded.
func (s *Server) group(name string, version int, prec string) (*modelGroup, error) {
	pinned := version > 0
	key := groupKey(name, version, prec)
	s.mu.Lock()
	g, ok := s.groups[key]
	s.mu.Unlock()
	if ok {
		return g, nil
	}

	path, v, err := s.cfg.Registry.Resolve(name, version)
	if err != nil {
		return nil, err
	}
	det, err := LoadDetector(path)
	if err != nil {
		return nil, err
	}
	sc, derived, err := derivePrecision(det, prec)
	if err != nil {
		return nil, err
	}
	c, ok := detectorChannels(det)
	if !ok || c <= 0 {
		return nil, fmt.Errorf("serve: cannot determine channel count of model %q", name)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.groups[key]; ok {
		return g, nil
	}
	g = newModelGroup(s, key, name, v, pinned, prec, derived, det.Name(), sc, c)
	s.groups[key] = g
	s.grpWG.Add(1)
	go func() {
		defer s.grpWG.Done()
		g.run(s.gctx)
	}()
	return g, nil
}

// Reload hot-swaps every non-pinned serving group of the named model —
// including every derived-precision variant — to the latest registry
// version. Live sessions keep their window state and see the new model's
// scores from the next coalesced batch. The swap is all-or-nothing: each
// group's replacement is loaded, re-targeted to the group's negotiated
// precision and geometry-checked first, and only if every group can move
// does any group move, so a failed reload never leaves a stale derived
// group serving old weights next to fresh ones.
func (s *Server) Reload(name string) error {
	// Pick up versions imported by other processes against the same
	// registry directory before resolving "latest".
	if err := s.cfg.Registry.Rescan(); err != nil {
		return err
	}
	path, v, err := s.cfg.Registry.Resolve(name, 0)
	if err != nil {
		return err
	}
	s.mu.Lock()
	var targets []*modelGroup
	for _, g := range s.groups {
		if g.name == name && !g.pinned {
			targets = append(targets, g)
		}
	}
	s.mu.Unlock()
	if len(targets) == 0 {
		return fmt.Errorf("serve: model %q is not being served", name)
	}
	type swapPlan struct {
		g       *modelGroup
		sc      detect.Scorer
		kind    string
		derived bool
	}
	plans := make([]swapPlan, 0, len(targets))
	for _, g := range targets {
		det, err := LoadDetector(path)
		if err != nil {
			return err
		}
		sc, derived, err := derivePrecision(det, g.reqPrec)
		if err != nil {
			return fmt.Errorf("serve: reload %s: group %s: %w", name, g.key, err)
		}
		if err := g.checkGeometry(sc, v); err != nil {
			return err
		}
		plans = append(plans, swapPlan{g, sc, det.Name(), derived})
	}
	for _, p := range plans {
		p.g.swap(p.sc, v, p.kind, p.derived)
	}
	return nil
}

// groupStatuses snapshots every serving group's status, sorted by group
// key — the shared collection step behind /metrics and /models.
func (s *Server) groupStatuses() []ModelStatus {
	s.mu.Lock()
	groups := make([]*modelGroup, 0, len(s.groups))
	for _, g := range s.groups {
		groups = append(groups, g)
	}
	s.mu.Unlock()
	statuses := make([]ModelStatus, 0, len(groups))
	for _, g := range groups {
		statuses = append(statuses, g.status())
	}
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].Key < statuses[j].Key })
	return statuses
}

// nextSessionID hands out monotonically increasing session ids for the
// /sessions listing.
func (s *Server) nextSessionID() int64 { return s.sessID.Add(1) }

// SessionStatus is one live session's slice of the /sessions payload:
// identity, its group, and the session's score-distribution sketch with
// a drift score against the group's distribution. DriftZ is the
// session mean's distance from the group mean in group standard
// deviations — the per-session drift signal the model-lifecycle loop
// (shadow scoring, recalibration triggers) watches.
type SessionStatus struct {
	ID      int64      `json:"id"`
	Group   string     `json:"group"`
	Model   string     `json:"model"`
	Remote  string     `json:"remote,omitempty"`
	Scores  *ScoreDist `json:"scores,omitempty"`
	DriftZ  *float64   `json:"drift_z,omitempty"`
	Pending int64      `json:"pending_windows"`
}

// SessionsSnapshot is the /sessions payload.
type SessionsSnapshot struct {
	Count    int             `json:"count"`
	Sessions []SessionStatus `json:"sessions"`
}

// Sessions snapshots every live session's score sketch, ordered by id.
func (s *Server) Sessions() SessionsSnapshot {
	s.mu.Lock()
	live := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })

	// One group-sketch snapshot per group, shared by its sessions.
	groupSk := make(map[*modelGroup]obs.WelfordSnapshot)
	out := SessionsSnapshot{Count: len(live), Sessions: make([]SessionStatus, 0, len(live))}
	for _, sess := range live {
		g := sess.grp
		gs, ok := groupSk[g]
		if !ok {
			gs = g.obs.sketch.Snapshot()
			groupSk[g] = gs
		}
		sk := sess.sketch.Snapshot()
		st := SessionStatus{
			ID:      sess.id,
			Group:   g.key,
			Model:   g.name,
			Remote:  sess.remote,
			Scores:  scoreDist(sk, g.kind),
			Pending: sess.outstanding.Load(),
		}
		if sk.Count > 0 {
			if std := gs.Stddev(); std > 0 {
				z := (sk.Mean - gs.Mean) / std
				st.DriftZ = &z
			}
		}
		out.Sessions = append(out.Sessions, st)
	}
	return out
}

// Metrics returns a point-in-time snapshot of the serving state.
func (s *Server) Metrics() Metrics {
	// Live sessions' drops and the folded aggregate are read under the
	// same lock untrackSession folds under, so a disconnecting session's
	// drops are counted exactly once.
	s.mu.Lock()
	drops := s.met.samplesDropped.Load()
	for sess := range s.sessions {
		drops += int64(sess.bus.Dropped())
	}
	s.mu.Unlock()
	m := s.met.snapshot(s.groupStatuses())
	m.SamplesDropped = drops
	return m
}

// ModelsSnapshot is the /models payload: what the registry holds and the
// serving groups live sessions have materialised from it — including the
// derived-precision variants, so a mixed-precision fleet is observable
// per group.
type ModelsSnapshot struct {
	Registry []ModelInfo   `json:"registry"`
	Groups   []ModelStatus `json:"groups"`
}

// Models returns the registry contents alongside the live serving groups.
func (s *Server) Models() ModelsSnapshot {
	return ModelsSnapshot{Registry: s.cfg.Registry.List(), Groups: s.groupStatuses()}
}

// WritePrometheus renders the server's metric registry plus the
// process-global compute-stage registry in the Prometheus text format —
// the body GET /metrics serves. Snapshot-time gauges (uptime, active
// sessions) are refreshed first so scrapes see current values.
func (s *Server) WritePrometheus(w io.Writer) {
	s.met.uptimeGauge.Set(time.Since(s.met.start).Seconds())
	s.met.activeGauge.Set(float64(s.met.sessionsActive.Load()))
	s.met.reg.WritePrometheus(w)
	obs.Global().WritePrometheus(w)
}

// ServeMetrics exposes the observability plane over HTTP on addr (":0"
// picks a port): GET /metrics (Prometheus text format), GET
// /metrics.json (the JSON snapshot, previously served at /metrics),
// GET /sessions (per-session score sketches), GET /healthz, GET /models
// (registry listing + live serving groups), POST /reload?model=name
// (hot swap), and — when Config.EnablePprof is set — /debug/pprof/. It
// returns the bound address.
func (s *Server) ServeMetrics(addr string) (string, error) {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, s.Metrics())
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, s.Sessions())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/models", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, s.Models())
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		name := r.URL.Query().Get("model")
		if err := s.Reload(name); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, "reloaded", name)
	})
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.http = &http.Server{Handler: mux}
	go s.http.Serve(ln)
	return ln.Addr().String(), nil
}

// Shutdown drains the server gracefully: stop accepting, signal every
// session that input has ended, score and deliver everything already
// admitted, then stop the coalescers. If ctx expires first, remaining
// connections are closed hard (the pipeline still unwinds cleanly).
func (s *Server) Shutdown(ctx context.Context) error {
	// De-register from any router first so no new sessions are placed
	// here while the drain runs.
	s.stopAnnouncer(ctx)
	s.mu.Lock()
	s.draining = true
	live := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		live = append(live, c)
	}
	s.mu.Unlock()

	if s.ln != nil {
		s.ln.Close()
	}
	s.acceptWG.Wait()

	// Half-close each connection's read side: readers see EOF and the
	// drain handshake (pump → coalescer → writer) runs to completion.
	for _, c := range live {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			c.Close()
		}
	}

	done := make(chan struct{})
	go func() {
		s.sessWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}

	// All sessions are gone; let each flusher do its final drain and exit.
	s.gcancel()
	s.grpWG.Wait()

	if s.http != nil {
		s.http.Close()
	}
	return err
}
