package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"

	"varade/internal/stream"
)

// Client is a device-side connection speaking the binary fleet protocol:
// it ships sample batches to a server and reads back score batches.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	welcome stream.Welcome
}

// Dial connects to a fleet server over protocol v1: the hello/welcome
// handshake for the given model reference ("", "name" or "name@vN") and
// stream width, with no capability negotiation — the session is served
// at the model file's own precision. It is exactly the pre-v2 wire
// dialect, kept as a live client so protocol compatibility stays tested.
func Dial(ctx context.Context, addr, model string, channels int) (*Client, error) {
	return dial(ctx, addr, model, channels, stream.ProtoV1, stream.SessionCaps{})
}

// DialWith connects over protocol v2, negotiating the given capability
// set (serving precision, score-frame cap, drop policy). The server's
// grant is available from Welcome — e.g. Welcome().Precision reports the
// precision the session's serving group actually runs.
func DialWith(ctx context.Context, addr, model string, channels int, caps stream.SessionCaps) (*Client, error) {
	if err := caps.Validate(); err != nil {
		return nil, err
	}
	return dial(ctx, addr, model, channels, stream.ProtoV2, caps)
}

func dial(ctx context.Context, addr, model string, channels, proto int, caps stream.SessionCaps) (*Client, error) {
	name, version := "", 0
	if model != "" {
		var err error
		if name, version, err = ParseModelRef(model); err != nil {
			return nil, err
		}
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	magic := stream.FrameMagic
	hello := stream.Hello{Model: name, Version: version, Channels: channels}
	if proto >= stream.ProtoV2 {
		magic = stream.FrameMagicV2
		hello.Caps = &caps
	}
	if _, err := c.bw.WriteString(magic); err != nil {
		conn.Close()
		return nil, err
	}
	if err := stream.WriteJSONFrame(c.bw, stream.FrameHello, hello); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	t, payload, err := stream.ReadFrame(c.br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: reading welcome: %w", err)
	}
	switch t {
	case stream.FrameWelcome:
		if err := json.Unmarshal(payload, &c.welcome); err != nil {
			conn.Close()
			return nil, err
		}
	case stream.FrameError:
		conn.Close()
		return nil, fmt.Errorf("serve: server refused session: %s", payload)
	case stream.FrameBye:
		// A reasoned Bye during the handshake is a refusal with an
		// explanation — e.g. a router whose admission deadline lapsed
		// with no healthy backend in the pool.
		conn.Close()
		if bye, derr := stream.DecodeByePayload(payload); derr == nil && bye.Reason != "" {
			return nil, fmt.Errorf("serve: server refused session: %s", bye.Reason)
		}
		return nil, fmt.Errorf("serve: server closed session during handshake")
	default:
		conn.Close()
		return nil, fmt.Errorf("serve: unexpected frame %d during handshake", t)
	}
	return c, nil
}

// Welcome returns the server's session parameters: the resolved model,
// geometry, and (for DialWith sessions) the granted capability set.
func (c *Client) Welcome() stream.Welcome { return c.welcome }

// Send ships one batch of samples.
func (c *Client) Send(samples [][]float64) error {
	payload, err := stream.EncodeSamplesPayload(samples, c.welcome.Channels)
	if err != nil {
		return err
	}
	if err := stream.WriteFrame(c.bw, stream.FrameSamples, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Bye tells the server the stream has ended; the server flushes every
// outstanding score and then closes the connection.
func (c *Client) Bye() error {
	if err := stream.WriteFrame(c.bw, stream.FrameBye, nil); err != nil {
		return err
	}
	return c.bw.Flush()
}

// ReadScores blocks for the next batch of scores. It returns io.EOF once
// the server has flushed everything after Bye and closed the stream.
func (c *Client) ReadScores() ([]stream.Score, error) {
	for {
		t, payload, err := stream.ReadFrame(c.br)
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				err = io.EOF
			}
			return nil, err
		}
		switch t {
		case stream.FrameScores:
			return stream.DecodeScoresPayload(payload)
		case stream.FrameError:
			return nil, fmt.Errorf("serve: server error: %s", payload)
		case stream.FrameBye:
			// A server-side Bye ends the session from the far side: bare,
			// it is a clean end; with a reason (e.g. a router whose
			// hand-off deadline lapsed with no healthy backend), surface
			// why the stream could not continue.
			if bye, derr := stream.DecodeByePayload(payload); derr == nil && bye.Reason != "" {
				return nil, fmt.Errorf("serve: session ended by server: %s", bye.Reason)
			}
			return nil, io.EOF
		default:
			// Skip unknown frames.
		}
	}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Run streams all samples in batches of batch while concurrently
// consuming scores, then sends Bye and drains the remaining scores —
// the device loop in one call. Scores reach onScore in order, with the
// server's shed-on-slow-reader contract: if onScore stalls long enough
// for TCP backpressure to fill the session's outbound queue, the server
// drops (and counts, in scores_dropped) rather than stalling the
// fleet, so a stalling consumer can observe fewer scores than windows.
func (c *Client) Run(ctx context.Context, samples [][]float64, batch int, onScore func(stream.Score)) error {
	if batch < 1 {
		batch = 1
	}
	// Unblock both directions if the context ends mid-stream.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			c.conn.Close()
		case <-stopWatch:
		}
	}()

	readErr := make(chan error, 1)
	go func() {
		for {
			scores, err := c.ReadScores()
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				readErr <- err
				return
			}
			for _, sc := range scores {
				onScore(sc)
			}
		}
	}()

	var sendErr error
	for start := 0; start < len(samples); start += batch {
		end := start + batch
		if end > len(samples) {
			end = len(samples)
		}
		if sendErr = c.Send(samples[start:end]); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		sendErr = c.Bye()
	}
	err := <-readErr
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if sendErr != nil {
		return sendErr
	}
	return err
}
