package serve

import (
	"context"
	"math"
	"testing"
	"time"

	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/stream"
)

// newPrecisionFleetServer registers one TinyConfig VARADE model at the
// given precision and starts a server for it. It returns the float64
// oracle twin (identical weights, float64 scoring) alongside.
func newPrecisionFleetServer(t *testing.T, channels int, precision string) (*Server, string, *core.Model) {
	t.Helper()
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.New(core.TinyConfig(channels))
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SetPrecision(precision); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("varade", model); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Registry:      reg,
		DefaultModel:  "varade",
		FlushInterval: time.Millisecond,
		QueueDepth:    256,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The float64 oracle: the same weights, default precision.
	if err := model.SetPrecision(core.PrecisionFloat64); err != nil {
		t.Fatal(err)
	}
	return srv, addr, model
}

// TestFleetFloat32WithinToleranceOfOracle is the reduced-precision
// counterpart of TestFleet64SessionsBitIdentical: sessions served by a
// float32 model must score within a small relative tolerance of the
// float64 per-device oracle, and the serving group must actually batch in
// float32.
func TestFleetFloat32WithinToleranceOfOracle(t *testing.T) {
	const (
		sessions = 8
		steps    = 50
		channels = 3
		relTol   = 1e-4
	)
	srv, addr, oracle := newPrecisionFleetServer(t, channels, core.PrecisionFloat32)
	defer srv.Shutdown(context.Background())

	w := oracle.WindowSize()
	type result struct {
		id     int
		scores []stream.Score
		err    error
	}
	results := make(chan result, sessions)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for id := 0; id < sessions; id++ {
		go func(id int) {
			series := synthSeries(steps, channels, uint64(300+id))
			cl, err := Dial(ctx, addr, "", channels)
			if err != nil {
				results <- result{id: id, err: err}
				return
			}
			defer cl.Close()
			var scores []stream.Score
			err = cl.Run(ctx, rowsOf(series), 16, func(sc stream.Score) {
				scores = append(scores, sc)
			})
			results <- result{id: id, scores: scores, err: err}
		}(id)
	}
	for i := 0; i < sessions; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("session %d: %v", r.id, r.err)
		}
		series := synthSeries(steps, channels, uint64(300+r.id))
		want := detect.ScoreSeries(oracle, series)
		if len(r.scores) != steps-w+1 {
			t.Fatalf("session %d: %d scores want %d", r.id, len(r.scores), steps-w+1)
		}
		for _, sc := range r.scores {
			ref := want[sc.Index]
			if d := math.Abs(sc.Value-ref) / math.Max(1e-12, math.Abs(ref)); d > relTol {
				t.Fatalf("session %d: score at %d = %g, oracle %g (rel diff %.3g > %g)",
					r.id, sc.Index, sc.Value, ref, d, relTol)
			}
		}
	}

	m := srv.Metrics()
	if len(m.Models) != 1 || m.Models[0].Precision != core.PrecisionFloat32 {
		t.Fatalf("serving group precision %+v, want float32", m.Models)
	}
	if want := int64(sessions * (steps - w + 1)); m.WindowsScored != want {
		t.Fatalf("metrics windows %d want %d", m.WindowsScored, want)
	}
}

// TestFleetInt8Serves checks the quantized path end to end through the
// registry (save → import → serve): scores arrive, track the oracle
// loosely (int8 noise), and the group reports int8 precision.
func TestFleetInt8Serves(t *testing.T) {
	const (
		steps    = 60
		channels = 2
	)
	srv, addr, oracle := newPrecisionFleetServer(t, channels, core.PrecisionInt8)
	defer srv.Shutdown(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	series := synthSeries(steps, channels, 77)
	cl, err := Dial(ctx, addr, "", channels)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var scores []stream.Score
	if err := cl.Run(ctx, rowsOf(series), 16, func(sc stream.Score) {
		scores = append(scores, sc)
	}); err != nil {
		t.Fatal(err)
	}
	w := oracle.WindowSize()
	if len(scores) != steps-w+1 {
		t.Fatalf("%d scores want %d", len(scores), steps-w+1)
	}
	want := detect.ScoreSeries(oracle, series)
	for _, sc := range scores {
		ref := want[sc.Index]
		if d := math.Abs(sc.Value-ref) / math.Max(1e-12, math.Abs(ref)); d > 0.2 {
			t.Fatalf("int8 score at %d = %g drifts %.3g from oracle %g", sc.Index, sc.Value, d, ref)
		}
	}
	m := srv.Metrics()
	if len(m.Models) != 1 || m.Models[0].Precision != core.PrecisionInt8 {
		t.Fatalf("serving group precision %+v, want int8", m.Models)
	}
}

// TestWindowBuffer32MatchesFloat64 pins the float32 assembly path to the
// float64 one.
func TestWindowBuffer32MatchesFloat64(t *testing.T) {
	b := stream.NewWindowBuffer(4, 2)
	for i := 0; i < 7; i++ { // wraps the ring
		b.Push([]float64{float64(i), float64(-i)})
	}
	f64 := make([]float64, 8)
	f32 := make([]float32, 8)
	b.CopyWindowInto(f64)
	b.CopyWindowInto32(f32)
	for i := range f64 {
		if float32(f64[i]) != f32[i] {
			t.Fatalf("element %d: %g vs %g", i, f64[i], f32[i])
		}
	}
}
