package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"varade/internal/core"
	"varade/internal/stream"
)

// End-to-end coverage of the closed-loop scheduler: the SLO deadline
// bounds tail latency under bursty admission, an idle group's flusher
// parks instead of ticking, the fill target provably adapts away from
// its static default on a measured curve, and the controller state stays
// sane under concurrent join/leave/reload.

// schedulerOf snapshots one group's scheduler block.
func schedulerOf(t *testing.T, srv *Server, key string) SchedulerStatus {
	t.Helper()
	g := groupByKey(t, srv, key)
	g.mu.Lock()
	defer g.mu.Unlock()
	return *g.schedulerStatusLocked()
}

// TestSLODeadlineFlushing is the tentpole's latency acceptance test: a
// server whose FlushInterval is hopeless (500ms) but whose SLO is 40ms
// serves a bursty session that never reaches the fill target — so every
// flush must come from the deadline trigger, and the measured p99
// coalesce latency must respect the SLO budget (generous 3× tolerance
// for scheduler jitter on loaded CI runners), far below what the old
// free-running ticker would have delivered.
func TestSLODeadlineFlushing(t *testing.T) {
	const (
		channels = 2
		slo      = 40 * time.Millisecond
		bursts   = 6
		perBurst = 16
	)
	srv, addr, model := newFleetServer(t, channels, Config{
		FlushInterval: 500 * time.Millisecond, // the ticker bound the SLO replaces
		SLOP99:        slo,
		QueueDepth:    256,
	})
	defer srv.Shutdown(context.Background())
	w := model.WindowSize()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := DialWith(ctx, addr, "", channels, stream.SessionCaps{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.Welcome().SLOP99Ms; got != float64(slo)/float64(time.Millisecond) {
		t.Fatalf("welcome slo_p99_ms = %g, want %g", got, float64(slo)/float64(time.Millisecond))
	}

	rng := rand.New(rand.NewSource(8))
	rows := make([][]float64, perBurst)
	for i := range rows {
		rows[i] = make([]float64, channels)
	}
	sent := 0
	for b := 0; b < bursts; b++ {
		for i := range rows {
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		if err := cl.Send(rows); err != nil {
			t.Fatal(err)
		}
		sent += perBurst
		time.Sleep(slo + slo/2) // idle gap: the next burst cannot ride this one's flush
	}
	if err := cl.Bye(); err != nil {
		t.Fatal(err)
	}
	want := sent - w + 1
	got := 0
	for got < want {
		scores, err := cl.ReadScores()
		if err != nil {
			t.Fatalf("after %d/%d scores: %v", got, want, err)
		}
		got += len(scores)
	}

	m := srv.Metrics()
	if m.P99CoalesceMs <= 0 {
		t.Fatal("no coalesce latency recorded")
	}
	budget := 3 * float64(slo) / float64(time.Millisecond)
	if m.P99CoalesceMs > budget {
		t.Fatalf("p99 coalesce latency %.1fms blows the %.0fms SLO (tolerance %.0fms)",
			m.P99CoalesceMs, float64(slo)/float64(time.Millisecond), budget)
	}
	ss := schedulerOf(t, srv, "varade")
	if ss.DeadlineFlushes == 0 {
		t.Fatalf("no deadline-triggered flushes under burst traffic: %+v", ss)
	}
	if ss.SLOP99Ms != float64(slo)/float64(time.Millisecond) {
		t.Fatalf("group slo_p99_ms = %g, want %g", ss.SLOP99Ms, float64(slo)/float64(time.Millisecond))
	}
	if ss.DeadlineBudgetMs <= 0 || ss.DeadlineBudgetMs > ss.SLOP99Ms {
		t.Fatalf("deadline budget %.2fms out of (0, slo] range: %+v", ss.DeadlineBudgetMs, ss)
	}
}

// TestSessionSLOTightensGroupBudget: a v2 session's slo_p99_ms
// capability tightens (never loosens) the group budget, and leaves with
// the session.
func TestSessionSLOTightensGroupBudget(t *testing.T) {
	const channels = 2
	srv, addr, _ := newFleetServer(t, channels, Config{
		SLOP99:     80 * time.Millisecond,
		QueueDepth: 64,
	})
	defer srv.Shutdown(context.Background())
	ctx := context.Background()

	sloOf := func() time.Duration {
		g := groupByKey(t, srv, "varade")
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.sched.slo
	}
	waitSLO := func(want time.Duration, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for sloOf() != want {
			if time.Now().After(deadline) {
				t.Fatalf("group SLO %s = %v, want %v", what, sloOf(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// A session asking for a looser budget than the operator's floor is
	// granted the floor.
	loose, err := DialWith(ctx, addr, "", channels, stream.SessionCaps{SLOP99Ms: 200})
	if err != nil {
		t.Fatal(err)
	}
	if got := loose.Welcome().SLOP99Ms; got != 80 {
		t.Fatalf("loose request granted %gms, want the 80ms server floor", got)
	}
	waitSLO(80*time.Millisecond, "with a loose session")

	// A tighter request pulls the group budget down while it lives.
	tight, err := DialWith(ctx, addr, "", channels, stream.SessionCaps{SLOP99Ms: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := tight.Welcome().SLOP99Ms; got != 20 {
		t.Fatalf("tight request granted %gms, want 20", got)
	}
	waitSLO(20*time.Millisecond, "with a tight session")

	tight.Bye()
	tight.Close()
	waitSLO(80*time.Millisecond, "after the tight session left")
	loose.Bye()
	loose.Close()
}

// TestSLOCapabilityCompat is the new wire-compat case: v2 clients that
// do not send the SLO capability against a server with no configured SLO
// see a Welcome without the field (zero value) and the pre-SLO flushing
// behaviour (budget = FlushInterval), exactly as before this capability
// existed.
func TestSLOCapabilityCompat(t *testing.T) {
	const channels = 2
	srv, addr, _ := newFleetServer(t, channels, Config{
		FlushInterval: time.Millisecond,
		QueueDepth:    64,
	})
	defer srv.Shutdown(context.Background())
	ctx := context.Background()

	cl, err := DialWith(ctx, addr, "", channels, stream.SessionCaps{MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	welcome := cl.Welcome()
	if welcome.Proto != stream.ProtoV2 || welcome.SLOP99Ms != 0 {
		t.Fatalf("SLO-free v2 welcome %+v, want proto 2 with slo_p99_ms absent", welcome)
	}
	g := groupByKey(t, srv, "varade")
	g.mu.Lock()
	slo, budget := g.sched.slo, g.deadlineBudgetLocked()
	g.mu.Unlock()
	if slo != 0 {
		t.Fatalf("group has SLO %v, want none", slo)
	}
	if budget != srv.cfg.FlushInterval {
		t.Fatalf("deadline budget %v, want the FlushInterval %v fallback", budget, srv.cfg.FlushInterval)
	}
}

// TestIdleGroupParksFlusher is the idle-wakeup satellite: with no
// pending windows the flusher must park (no free-running tick), wake on
// the first admission, score, and park again.
func TestIdleGroupParksFlusher(t *testing.T) {
	const channels = 2
	srv, addr, model := newFleetServer(t, channels, Config{
		FlushInterval: time.Millisecond, // the old ticker would fire ~100× below
		QueueDepth:    64,
	})
	defer srv.Shutdown(context.Background())
	ctx := context.Background()

	cl, err := DialWith(ctx, addr, "", channels, stream.SessionCaps{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Pristine idle: a connected session that has sent nothing. The old
	// ticker design would have woken the flusher ~100 times here.
	time.Sleep(100 * time.Millisecond)
	ss := schedulerOf(t, srv, "varade")
	if ss.EmptyWakeups != 0 {
		t.Fatalf("idle group saw %d empty wakeups, want 0 (flusher not parked?)", ss.EmptyWakeups)
	}
	if srv.Metrics().Batches != 0 {
		t.Fatal("idle group flushed batches")
	}

	// The parked flusher must still wake on admission and score.
	w := model.WindowSize()
	rows := make([][]float64, w+3)
	for i := range rows {
		rows[i] = make([]float64, channels)
		rows[i][0] = float64(i)
	}
	if err := cl.Send(rows); err != nil {
		t.Fatal(err)
	}
	if err := cl.Bye(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for got < len(rows)-w+1 {
		scores, err := cl.ReadScores()
		if err != nil {
			t.Fatalf("after %d scores: %v", got, err)
		}
		got += len(scores)
	}

	// Idle again after traffic: at most a bounded handful of stale
	// kick/deadline races from the burst, and no growth while parked.
	time.Sleep(50 * time.Millisecond)
	after := schedulerOf(t, srv, "varade").EmptyWakeups
	time.Sleep(50 * time.Millisecond)
	if again := schedulerOf(t, srv, "varade").EmptyWakeups; again != after {
		t.Fatalf("empty wakeups grew %d → %d while parked", after, again)
	}
	if after > 2 {
		t.Fatalf("%d empty wakeups after one burst, want ≤ 2 (stale kick/deadline at most)", after)
	}
}

// TestFillTargetAdaptsToMeasuredCurve is the adaptation acceptance test:
// a group fed a synthetic knee-at-8 amortisation curve through its own
// telemetry converges away from the static float64 default (half the
// buffer) to the measured knee.
func TestFillTargetAdaptsToMeasuredCurve(t *testing.T) {
	const channels = 2
	srv, addr, _ := newFleetServer(t, channels, Config{QueueDepth: 64})
	defer srv.Shutdown(context.Background())
	ctx := context.Background()

	cl, err := DialWith(ctx, addr, "", channels, stream.SessionCaps{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	g := groupByKey(t, srv, "varade")
	static := srv.fillTargetFor(core.PrecisionFloat64)
	if got := g.currentFillTarget(); got != static {
		t.Fatalf("pre-adaptation fill target %d, want static default %d", got, static)
	}

	// Feed the group's own amortisation table a knee-at-8 curve (ns/window
	// 1000, 500, 250, 105, 100, 98 at batch ≤ 1..32) and force evaluation
	// windows, exactly as flush tails would.
	inject := func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		for i := 0; i < schedMinBucketWindows; i++ {
			g.obs.amort.record(1, 1000*time.Nanosecond)
			g.obs.amort.record(2, 2*500*time.Nanosecond)
			g.obs.amort.record(4, 4*250*time.Nanosecond)
			g.obs.amort.record(8, 8*105*time.Nanosecond)
			g.obs.amort.record(16, 16*100*time.Nanosecond)
			g.obs.amort.record(32, 32*98*time.Nanosecond)
		}
		g.schedEvalLocked()
	}
	for i := 0; i < schedConfirm; i++ {
		inject()
	}

	if got := g.currentFillTarget(); got != 8 {
		t.Fatalf("post-adaptation fill target %d, want the measured knee 8 (static default %d)", got, static)
	}
	ss := schedulerOf(t, srv, "varade")
	if ss.LearnedTarget != 8 || ss.TargetChanges == 0 || ss.LastChange == "" {
		t.Fatalf("scheduler status %+v: want learned_target 8 with a recorded change", ss)
	}

	// A hot swap forgets the learned target: back to the static default.
	model2, err := core.New(core.Config{Window: 8, Channels: channels, BaseMaps: 4, KLWeight: 0.1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.cfg.Registry.Register("varade", model2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload("varade"); err != nil {
		t.Fatal(err)
	}
	if got := g.currentFillTarget(); got != static {
		t.Fatalf("post-swap fill target %d, want static default %d (learned curve belongs to the old engine)", got, static)
	}
}

// TestFillTargetConcurrentJoinLeaveReload is the -race satellite:
// sessions with random frame caps join and leave while the model is
// repeatedly hot-reloaded, and the fill target must stay within
// [1, maxBatch] at every observation.
func TestFillTargetConcurrentJoinLeaveReload(t *testing.T) {
	const channels = 2
	srv, addr, _ := newFleetServer(t, channels, Config{
		FlushInterval: time.Millisecond,
		QueueDepth:    64,
	})
	defer srv.Shutdown(context.Background())
	ctx := context.Background()

	// Materialise the group so Reload always has a target.
	seed, err := DialWith(ctx, addr, "", channels, stream.SessionCaps{})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	g := groupByKey(t, srv, "varade")

	model2, err := core.New(core.Config{Window: 8, Channels: channels, BaseMaps: 4, KLWeight: 0.1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.cfg.Registry.Register("varade", model2); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churn: sessions with assorted caps join, send a little, leave.
	caps := []int{0, 1, 3, 8, 20, 1 << 19}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rows := [][]float64{{0.5, -0.5}, {1, 1}, {0, 0.25}}
			for it := 0; it < 15; it++ {
				c := stream.SessionCaps{MaxBatch: caps[(id+it)%len(caps)], SLOP99Ms: float64((id + it) % 3 * 30)}
				cl, err := DialWith(ctx, addr, "", channels, c)
				if err != nil {
					t.Error(err)
					return
				}
				cl.Send(rows)
				cl.Bye()
				cl.Close()
			}
		}(i)
	}

	// Reload churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < 20; it++ {
			if err := srv.Reload("varade"); err != nil {
				t.Errorf("reload %d: %v", it, err)
				return
			}
		}
	}()

	// Invariant watcher: 1 ≤ fillTarget ≤ maxBatch, always. It runs
	// outside the churn WaitGroup — it loops until the churn finishes.
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ft := g.currentFillTarget()
			if ft < 1 || ft > g.maxBatch {
				t.Errorf("fill target %d outside [1, %d]", ft, g.maxBatch)
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("stress goroutines did not finish")
	}
	close(stop)
	<-watcherDone

	// With only the capless seed session left, the target settles back to
	// the static default.
	seed.Bye()
	deadline := time.Now().Add(5 * time.Second)
	want := srv.fillTargetFor(core.PrecisionFloat64)
	for g.currentFillTarget() != want {
		if time.Now().After(deadline) {
			t.Fatalf("fill target %d after churn, want static default %d", g.currentFillTarget(), want)
		}
		time.Sleep(time.Millisecond)
	}
}
