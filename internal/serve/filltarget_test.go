package serve

import (
	"context"
	"testing"
	"time"

	"varade/internal/detect"
	"varade/internal/stream"
)

// The coalescer's flush trigger is precision-aware (ROADMAP "per-group
// flush tuning"): int8 groups fill the whole buffer before kicking the
// flusher — the quantized engine amortises its per-batch overhead best
// at large batches — while float groups kick at half, whose GEMM
// amortisation has already saturated. Sessions that negotiated a small
// SessionCaps.MaxBatch pull their group's target down to it.

func TestFillTargetDefaultsPerPrecision(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	mb := srv.cfg.MaxBatch // defaulted to detect.BatchChunk
	if mb != detect.BatchChunk {
		t.Fatalf("default MaxBatch = %d, want detect.BatchChunk = %d", mb, detect.BatchChunk)
	}
	for prec, want := range map[string]int{
		"float64": (mb + 1) / 2,
		"float32": (mb + 1) / 2,
		"int8":    mb,
	} {
		if got := srv.fillTargetFor(prec); got != want {
			t.Errorf("fillTargetFor(%q) = %d, want %d", prec, got, want)
		}
	}
}

func TestFillTargetOverridesAndClamp(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Registry: reg,
		MaxBatch: 64,
		FillTargets: map[string]int{
			"float64": 16,
			"int8":    100000, // clamped to the buffer capacity
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.fillTargetFor("float64"); got != 16 {
		t.Errorf("override: fillTargetFor(float64) = %d, want 16", got)
	}
	if got := srv.fillTargetFor("int8"); got != 64 {
		t.Errorf("clamp: fillTargetFor(int8) = %d, want 64", got)
	}
	if got := srv.fillTargetFor("float32"); got != 32 {
		t.Errorf("default alongside overrides: fillTargetFor(float32) = %d, want 32", got)
	}
}

// groupByKey fetches a live serving group.
func groupByKey(t *testing.T, srv *Server, key string) *modelGroup {
	t.Helper()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	g, ok := srv.groups[key]
	if !ok {
		keys := make([]string, 0, len(srv.groups))
		for k := range srv.groups {
			keys = append(keys, k)
		}
		t.Fatalf("no serving group %q (have %v)", key, keys)
	}
	return g
}

func (g *modelGroup) currentFillTarget() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fillTarget
}

// TestFillTargetFollowsNegotiatedCaps drives the full path: a derived
// int8 group starts at the whole-buffer target, a float64 group at half,
// and a session that negotiated MaxBatch=8 drags its group's trigger
// down to 8 until it disconnects.
func TestFillTargetFollowsNegotiatedCaps(t *testing.T) {
	const channels = 3
	srv, addr, _ := newFloat64FleetServer(t, channels)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	ctx := context.Background()

	cl8, err := DialWith(ctx, addr, "", channels, stream.SessionCaps{Precision: "int8"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl8.Close()
	g8 := groupByKey(t, srv, "varade:int8")
	if got, want := g8.currentFillTarget(), srv.cfg.MaxBatch; got != want {
		t.Errorf("int8 group fill target = %d, want full buffer %d", got, want)
	}

	capped, err := DialWith(ctx, addr, "", channels,
		stream.SessionCaps{Precision: "float64", MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The server welcomes the client before registering the session with
	// its group, so both the join and the leave are observed with a
	// deadline poll.
	g64 := groupByKey(t, srv, "varade:float64")
	waitFillTarget := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for g64.currentFillTarget() != want {
			if time.Now().After(deadline) {
				t.Fatalf("fill target %s = %d, want %d", what, g64.currentFillTarget(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFillTarget(8, "with a MaxBatch=8 session")

	// The session's cap leaves with it.
	capped.Bye()
	capped.Close()
	waitFillTarget((srv.cfg.MaxBatch+1)/2, "after the capped session left")
}
