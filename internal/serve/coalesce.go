package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"varade/internal/baselines/ae"
	"varade/internal/baselines/arlstm"
	"varade/internal/baselines/gbrf"
	"varade/internal/baselines/iforest"
	"varade/internal/baselines/knn"
	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/stream"
	"varade/internal/tensor"
)

// windowMeta routes one coalesced window's score back to its session.
type windowMeta struct {
	sess  *session
	index int
	ready time.Time
}

// modelGroup is the coalescing unit: every session scoring with the same
// model shares one group, and the group's flusher turns all windows that
// became ready across those sessions into a single ScoreBatch call per
// tick. Latency is bounded by the flush interval; throughput comes from
// the batched engine amortising the forward pass over the fleet.
//
// The pending buffer is double-buffered: sessions fill one (maxBatch, W,
// C) tensor while the flusher scores the other, so the scoring pass never
// blocks window assembly. When producers outrun the flusher and the fill
// buffer tops out, session pumps wait on the group's condition variable —
// backpressure that surfaces upstream as the per-session admission queue
// (a stream.Bus) dropping its oldest samples.
//
// Batches are assembled in the model's own numeric precision: a float32 or
// int8 model fills float32 buffers (half the coalescer's memory traffic)
// and scores through detect.BatchScorer32, while a float64 model keeps the
// bit-exact float64 path. The fill buffer's precision is latched while it
// holds windows, so a hot swap that changes the serving precision scores
// the in-flight batch in the precision it was assembled at.
type modelGroup struct {
	srv     *Server
	name    string
	version int  // concrete version currently loaded
	pinned  bool // session asked for an explicit version: exempt from Reload
	kind    string
	w, c    int

	maxBatch int

	mu        sync.Mutex
	cond      *sync.Cond
	det       detect.Detector
	bs        detect.BatchScorer   // nil when det has no batched path
	bs32      detect.BatchScorer32 // nil when det has no reduced-precision path
	prec      string               // det's effective precision
	use32     bool                 // assemble new batches in float32
	pending   *tensor.Tensor       // float64 fill buffer, (maxBatch, w, c); lazily allocated
	spare     *tensor.Tensor       // float64 buffer handed to the scorer on flush
	pending32 *tensor.Tensor32     // float32 fill buffer; lazily allocated
	spare32   *tensor.Tensor32
	fill32    bool // precision of the windows currently in the fill buffer
	meta      []windowMeta
	spareMeta []windowMeta
	n         int
	sessions  int
	closed    bool

	kick chan struct{}
}

func newModelGroup(srv *Server, name string, version int, pinned bool, kind string, det detect.Detector, channels int) *modelGroup {
	w := det.WindowSize()
	g := &modelGroup{
		srv:      srv,
		name:     name,
		version:  version,
		pinned:   pinned,
		kind:     kind,
		w:        w,
		c:        channels,
		maxBatch: srv.cfg.MaxBatch,
		det:      det,
		kick:     make(chan struct{}, 1),
	}
	g.cond = sync.NewCond(&g.mu)
	g.setDetectorLocked(det)
	g.fill32 = g.use32
	g.ensureBuffersLocked()
	g.meta = make([]windowMeta, g.maxBatch)
	g.spareMeta = make([]windowMeta, g.maxBatch)
	return g
}

// setDetectorLocked installs det and derives the batching mode: float32
// assembly requires both a reduced-precision detector and its batched
// entry point.
func (g *modelGroup) setDetectorLocked(det detect.Detector) {
	g.det = det
	g.bs, _ = det.(detect.BatchScorer)
	g.bs32, _ = det.(detect.BatchScorer32)
	g.prec = detect.EffectivePrecision(det)
	g.use32 = g.bs32 != nil && g.prec != "float64"
}

// ensureBuffersLocked allocates the fill/spare pair for the current fill
// precision on first use.
func (g *modelGroup) ensureBuffersLocked() {
	if g.fill32 {
		if g.pending32 == nil {
			g.pending32 = tensor.NewOf[float32](g.maxBatch, g.w, g.c)
			g.spare32 = tensor.NewOf[float32](g.maxBatch, g.w, g.c)
		}
	} else if g.pending == nil {
		g.pending = tensor.New(g.maxBatch, g.w, g.c)
		g.spare = tensor.New(g.maxBatch, g.w, g.c)
	}
}

// add enqueues one ready window (copied out of the session's ring
// buffer) for the next coalesced batch. It blocks only when the fill
// buffer is full and the flusher is still scoring the previous batch.
func (g *modelGroup) add(sess *session, index int, buf *stream.WindowBuffer) {
	g.mu.Lock()
	for g.n == g.maxBatch && !g.closed {
		g.kickNow()
		g.cond.Wait()
	}
	if g.closed {
		g.mu.Unlock()
		// The server is past its drain point; account the window as
		// emitted so the session can finish tearing down.
		sess.scoreDone()
		return
	}
	if g.n == 0 {
		// Empty buffer: latch the current serving precision for this batch.
		g.fill32 = g.use32
		g.ensureBuffersLocked()
	}
	stride := g.w * g.c
	if g.fill32 {
		buf.CopyWindowInto32(g.pending32.Data()[g.n*stride : (g.n+1)*stride])
	} else {
		buf.CopyWindowInto(g.pending.Data()[g.n*stride : (g.n+1)*stride])
	}
	g.meta[g.n] = windowMeta{sess: sess, index: index, ready: time.Now()}
	g.n++
	full := g.n == g.maxBatch
	g.mu.Unlock()
	if full {
		g.kickNow()
	}
}

// kickNow nudges the flusher without blocking.
func (g *modelGroup) kickNow() {
	select {
	case g.kick <- struct{}{}:
	default:
	}
}

// run is the group's flusher loop: it drains the pending buffer whenever
// it fills (kick) and at every flush-interval tick, bounding the
// latency any ready window waits before scoring. On context cancellation
// it performs one final drain so shutdown never strands windows.
func (g *modelGroup) run(ctx context.Context) {
	ticker := time.NewTicker(g.srv.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			g.flush()
			g.mu.Lock()
			g.closed = true
			g.mu.Unlock()
			g.cond.Broadcast()
			return
		case <-g.kick:
			g.flush()
		case <-ticker.C:
			g.flush()
		}
	}
}

// flush swaps the double buffer and scores everything pending in one
// batched call (or the per-window fallback for unbatched detectors),
// then routes each score to its session. For float64 groups scores are
// bit-identical to the per-device path: the same windows go through the
// same ScoreBatch/Score arithmetic, only the execution schedule changes.
// Reduced-precision groups score through ScoreBatch32 on the float32
// batch the sessions assembled.
func (g *modelGroup) flush() {
	g.mu.Lock()
	n := g.n
	if n == 0 {
		g.mu.Unlock()
		return
	}
	is32 := g.fill32
	var batch *tensor.Tensor
	var batch32 *tensor.Tensor32
	if is32 {
		batch32 = g.pending32
		g.pending32, g.spare32 = g.spare32, g.pending32
	} else {
		batch = g.pending
		g.pending, g.spare = g.spare, g.pending
	}
	meta := g.meta
	g.meta, g.spareMeta = g.spareMeta, g.meta
	g.n = 0
	det, bs, bs32 := g.det, g.bs, g.bs32
	g.mu.Unlock()
	g.cond.Broadcast()

	var scores []float64
	if is32 {
		wins := batch32.SliceRows(0, n)
		if bs32 != nil {
			scores = bs32.ScoreBatch32(wins)
		} else {
			// The serving model was swapped to one without a reduced-
			// precision path while this batch was in flight; widen and use
			// the float64 engine.
			scores = g.scoreF64(det, bs, tensor.Convert[float64](wins), n)
		}
	} else {
		scores = g.scoreF64(det, bs, batch.SliceRows(0, n), n)
	}
	now := time.Now()
	for i := 0; i < n; i++ {
		m := &meta[i]
		g.srv.met.observeLatency(now.Sub(m.ready))
		m.sess.emit(stream.Score{Index: m.index, Value: scores[i]})
		m.sess = nil
	}
	g.srv.met.windowsScored.Add(int64(n))
	g.srv.met.batches.Add(1)
}

// scoreF64 scores n float64 windows through the detector's batched path,
// falling back to the per-window loop for unbatched detectors.
func (g *modelGroup) scoreF64(det detect.Detector, bs detect.BatchScorer, wins *tensor.Tensor, n int) []float64 {
	if bs != nil {
		return bs.ScoreBatch(wins)
	}
	scores := make([]float64, n)
	stride := g.w * g.c
	wd := wins.Data()
	for i := 0; i < n; i++ {
		scores[i] = det.Score(tensor.FromSlice(wd[i*stride:(i+1)*stride], g.w, g.c))
	}
	return scores
}

// swap hot-swaps the group's detector on live sessions. The new model
// must keep the group's geometry — sessions own window state sized to
// (W, C) and keep it across the swap.
func (g *modelGroup) swap(det detect.Detector, version int, kind string) error {
	c, ok := detectorChannels(det)
	if !ok {
		return fmt.Errorf("serve: cannot determine channel count of %s", det.Name())
	}
	if det.WindowSize() != g.w || c != g.c {
		return fmt.Errorf("serve: model %s@v%d geometry (W=%d,C=%d) does not match serving group (W=%d,C=%d)",
			g.name, version, det.WindowSize(), c, g.w, g.c)
	}
	g.mu.Lock()
	g.setDetectorLocked(det)
	g.version = version
	g.kind = kind
	g.mu.Unlock()
	return nil
}

func (g *modelGroup) status() ModelStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	return ModelStatus{
		Model:     g.name,
		Version:   g.version,
		Kind:      g.kind,
		Window:    g.w,
		Channels:  g.c,
		Batched:   g.bs != nil,
		Precision: g.prec,
		Pending:   g.n,
		Sessions:  g.sessions,
	}
}

// detectorChannels reports the stream width a fitted detector consumes.
func detectorChannels(d detect.Detector) (int, bool) {
	switch m := d.(type) {
	case *core.Model:
		return m.Config().Channels, true
	case *ae.Model:
		return m.Config().Channels, true
	case *arlstm.Model:
		return m.Config().Channels, true
	case *gbrf.Model:
		return m.Config().Channels, true
	case *iforest.Model:
		return m.Channels(), true
	case *knn.Model:
		return m.Channels(), true
	}
	return 0, false
}
