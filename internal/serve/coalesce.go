package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"varade/internal/baselines/ae"
	"varade/internal/baselines/arlstm"
	"varade/internal/baselines/gbrf"
	"varade/internal/baselines/iforest"
	"varade/internal/baselines/knn"
	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/obs"
	"varade/internal/stream"
	"varade/internal/tensor"
)

// windowMeta routes one coalesced window's score back to its session.
// admitNs is the admission→enqueue wait computed when the window joined
// the batch (-1 when the sample carried no admission stamp); it is
// recorded at flush so the pump path pays no telemetry atomics.
type windowMeta struct {
	sess    *session
	index   int
	ready   time.Time
	admitNs int64
}

// modelGroup is the coalescing unit: every session scoring with the same
// model shares one group, and the group's flusher turns all windows that
// became ready across those sessions into a single ScoreBatch call per
// tick. Latency is bounded by the flush interval; throughput comes from
// the batched engine amortising the forward pass over the fleet.
//
// The pending buffer is double-buffered: sessions fill one (maxBatch, W,
// C) tensor while the flusher scores the other, so the scoring pass never
// blocks window assembly. When producers outrun the flusher and the fill
// buffer tops out, session pumps wait on the group's condition variable —
// backpressure that surfaces upstream as the per-session admission queue
// (a stream.Bus) dropping its oldest samples.
//
// Batches are assembled in the group's serving precision: a float32 or
// int8 scorer fills float32 buffers (half the coalescer's memory traffic)
// and scores through Scorer.ScoreBatch32, while a float64 scorer keeps the
// bit-exact float64 path. The fill buffer's precision is latched while it
// holds windows, so a hot swap that changes the serving precision scores
// the in-flight batch in the precision it was assembled at.
//
// Since protocol v2, groups are precision-specific: sessions negotiating
// "int8" against a float64 registry entry land in a derived group whose
// scorer was re-targeted at load time, keyed "name@vN:int8" so they never
// share arithmetic with the float64 sessions of the same entry.
type modelGroup struct {
	srv     *Server
	key     string // group map key, e.g. "varade", "varade@v2:int8"
	name    string
	version int    // concrete version currently loaded
	pinned  bool   // session asked for an explicit version: exempt from Reload
	reqPrec string // negotiated precision this group serves ("" = the file's own)
	derived bool   // reqPrec re-targeted the scorer away from the file's precision
	kind    string
	w, c    int

	maxBatch int

	// obs holds the group's telemetry handles (latency histogram, stage
	// timers, amortisation buckets, score sketch, drop counters) —
	// resolved once at construction, lock-free thereafter.
	obs *groupObs

	mu   sync.Mutex
	cond *sync.Cond
	// fillTarget is the batch level that triggers an immediate flush
	// kick, before the deadline: the controller's learned target (or the
	// server's static per-precision table until one is learned) capped by
	// the smallest SessionCaps.MaxBatch a live session negotiated. The
	// buffer still accepts up to maxBatch windows between flushes.
	fillTarget int
	// sched is the closed-loop controller state: the learned-target
	// policy, the effective SLO budget, and the windowed read-back
	// cursors over the group's own telemetry (see controller.go).
	sched      groupSched
	reqBatches map[*session]int // live sessions' requested MaxBatch (> 0 only)
	sc         detect.Scorer
	caps       detect.Capabilities
	use32      bool             // assemble new batches in float32
	pending    *tensor.Tensor   // float64 fill buffer, (maxBatch, w, c); lazily allocated
	spare      *tensor.Tensor   // float64 buffer handed to the scorer on flush
	pending32  *tensor.Tensor32 // float32 fill buffer; lazily allocated
	spare32    *tensor.Tensor32
	fill32     bool // precision of the windows currently in the fill buffer
	meta       []windowMeta
	spareMeta  []windowMeta
	n          int
	sessions   int
	closed     bool

	// kick asks the flusher to flush now (fill target reached, tail
	// drain, backpressure); wake tells a parked flusher the buffer went
	// empty→non-empty so it can arm the oldest window's deadline.
	kick chan struct{}
	wake chan struct{}
}

func newModelGroup(srv *Server, key, name string, version int, pinned bool, reqPrec string, derived bool, kind string, sc detect.Scorer, channels int) *modelGroup {
	w := sc.WindowSize()
	g := &modelGroup{
		srv:      srv,
		key:      key,
		name:     name,
		version:  version,
		pinned:   pinned,
		reqPrec:  reqPrec,
		derived:  derived,
		kind:     kind,
		w:        w,
		c:        channels,
		maxBatch: srv.cfg.MaxBatch,
		kick:     make(chan struct{}, 1),
		wake:     make(chan struct{}, 1),
	}
	g.obs = newGroupObs(srv.met, key, sc.Capabilities().Precision, g.maxBatch)
	g.cond = sync.NewCond(&g.mu)
	g.reqBatches = make(map[*session]int)
	g.sched.policy.maxBatch = g.maxBatch
	g.sched.reqSLO = make(map[*session]time.Duration)
	g.sched.amortCur = newAmortCursors(g.obs.amort)
	g.sched.scoreCur = obs.NewStageCursor(g.obs.score)
	g.sched.emitCur = obs.NewStageCursor(g.obs.emit)
	g.setScorerLocked(sc)
	g.recomputeFillTargetLocked()
	g.recomputeSLOLocked()
	g.fill32 = g.use32
	g.ensureBuffersLocked()
	g.meta = make([]windowMeta, g.maxBatch)
	g.spareMeta = make([]windowMeta, g.maxBatch)
	return g
}

// setScorerLocked installs sc and derives the batching mode: float32
// assembly requires a reduced-precision engine actually running below
// float64.
func (g *modelGroup) setScorerLocked(sc detect.Scorer) {
	g.sc = sc
	g.caps = sc.Capabilities()
	g.use32 = g.caps.Reduced && g.caps.Precision != "float64"
}

// ensureBuffersLocked allocates the fill/spare pair for the current fill
// precision on first use.
func (g *modelGroup) ensureBuffersLocked() {
	if g.fill32 {
		if g.pending32 == nil {
			g.pending32 = tensor.NewOf[float32](g.maxBatch, g.w, g.c)
			g.spare32 = tensor.NewOf[float32](g.maxBatch, g.w, g.c)
		}
	} else if g.pending == nil {
		g.pending = tensor.New(g.maxBatch, g.w, g.c)
		g.spare = tensor.New(g.maxBatch, g.w, g.c)
	}
}

// add enqueues one ready window (copied out of the session's ring
// buffer) for the next coalesced batch. It blocks only when the fill
// buffer is full and the flusher is still scoring the previous batch.
// admitAt is the completing sample's admission timestamp; the gap to
// the window's ready time is the admit_wait stage (reader → bus queue →
// pump → coalesce buffer).
func (g *modelGroup) add(sess *session, index int, buf *stream.WindowBuffer, admitAt time.Time) {
	g.mu.Lock()
	for g.n == g.maxBatch && !g.closed {
		g.kickNow()
		g.cond.Wait()
	}
	if g.closed {
		g.mu.Unlock()
		// The server is past its drain point; account the window as
		// emitted so the session can finish tearing down.
		sess.scoreDone()
		return
	}
	// Admission-plane shedding (opt-in): a window whose age already
	// exceeds the group's SLO budget is doomed — any batch it joins
	// emits past its deadline — so shed it now rather than queueing
	// dead work ahead of windows that can still make their deadline.
	// Gated on Config.ShedAdmission because it breaks the
	// every-window-is-owed-a-score contract exact-count consumers rely
	// on; without the gate every window is scored eventually, however
	// late.
	if g.srv.cfg.ShedAdmission && g.sched.slo > 0 && !admitAt.IsZero() && time.Since(admitAt) > g.sched.slo {
		g.obs.shedTotal.Inc()
		g.mu.Unlock()
		sess.scoreDone()
		return
	}
	if g.n == 0 {
		// Empty buffer: latch the current serving precision for this batch.
		g.fill32 = g.use32
		g.ensureBuffersLocked()
	}
	stride := g.w * g.c
	if g.fill32 {
		buf.CopyWindowInto32(g.pending32.Data()[g.n*stride : (g.n+1)*stride])
	} else {
		buf.CopyWindowInto(g.pending.Data()[g.n*stride : (g.n+1)*stride])
	}
	ready := time.Now()
	admitNs := int64(-1)
	if !admitAt.IsZero() {
		admitNs = ready.Sub(admitAt).Nanoseconds()
	}
	g.meta[g.n] = windowMeta{sess: sess, index: index, ready: ready, admitNs: admitNs}
	g.n++
	wake := g.n == 1
	kick := g.n >= g.fillTarget
	g.mu.Unlock()
	if wake {
		// Buffer went non-empty: un-park the flusher so it arms this
		// window's deadline.
		g.wakeNow()
	}
	if kick {
		g.kickNow()
	}
}

// recomputeFillTargetLocked re-derives the group's flush trigger from
// the controller's current base target (learned knee or static
// per-precision default) and the live sessions' negotiated frame caps:
// a session that asked for at most B scores per frame gets batches
// flushed at B, so its negotiated cap bounds its coalescing latency
// instead of only splitting outbound frames.
func (g *modelGroup) recomputeFillTargetLocked() {
	t := g.currentTargetLocked()
	for _, b := range g.reqBatches {
		if b < t {
			t = b
		}
	}
	g.fillTarget = max(1, min(t, g.maxBatch))
	g.obs.fillTargetGauge.Set(float64(g.fillTarget))
}

// sessionJoined/sessionLeft maintain the negotiated-cap view the fill
// target and the latency budget derive from. reqBatch ≤ 0 means the
// session did not request a frame cap; reqSLO ≤ 0 means it did not
// request a latency budget.
func (g *modelGroup) sessionJoined(sess *session, reqBatch int, reqSLO time.Duration) {
	g.mu.Lock()
	g.sessions++
	if reqBatch > 0 {
		g.reqBatches[sess] = reqBatch
	}
	if reqSLO > 0 {
		g.sched.reqSLO[sess] = reqSLO
	}
	g.recomputeFillTargetLocked()
	g.recomputeSLOLocked()
	g.mu.Unlock()
}

func (g *modelGroup) sessionLeft(sess *session) {
	g.mu.Lock()
	g.sessions--
	delete(g.reqBatches, sess)
	delete(g.sched.reqSLO, sess)
	g.recomputeFillTargetLocked()
	g.recomputeSLOLocked()
	g.mu.Unlock()
}

// kickNow nudges the flusher without blocking.
func (g *modelGroup) kickNow() {
	select {
	case g.kick <- struct{}{}:
	default:
	}
}

// wakeNow un-parks the flusher without blocking.
func (g *modelGroup) wakeNow() {
	select {
	case g.wake <- struct{}{}:
	default:
	}
}

// run is the group's flusher loop. It fires at min(fill target reached,
// oldest admitted window's deadline): a kick means the fill target was
// hit and the batch is worth scoring now; otherwise a one-shot timer is
// armed to the oldest pending window's latency budget (the negotiated
// p99 SLO minus the smoothed flush cost, or the flush interval when no
// SLO is in force), so no ready window ever waits past its deadline.
// An empty group parks with the timer disarmed — no free-running tick —
// until an admission's wake re-arms it. On context cancellation it
// performs one final drain so shutdown never strands windows.
func (g *modelGroup) run(ctx context.Context) {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	disarm := func() {
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
	}
	defer disarm()
	for {
		disarm()
		var deadline <-chan time.Time
		g.mu.Lock()
		if g.n > 0 {
			d := time.Until(g.meta[0].ready.Add(g.deadlineBudgetLocked()))
			g.mu.Unlock()
			if d < 0 {
				d = 0
			}
			timer.Reset(d)
			armed = true
			deadline = timer.C
		} else {
			g.mu.Unlock()
		}
		select {
		case <-ctx.Done():
			g.flush(trigDrain)
			g.mu.Lock()
			g.closed = true
			g.mu.Unlock()
			g.cond.Broadcast()
			return
		case <-g.kick:
			g.flush(trigFill)
		case <-g.wake:
			// Buffer went non-empty: loop around and arm the deadline.
		case <-deadline:
			armed = false
			g.flush(trigDeadline)
		}
	}
}

// flush swaps the double buffer and scores everything pending in one
// batched call (or the per-window fallback for unbatched detectors),
// then routes each score to its session. For float64 groups scores are
// bit-identical to the per-device path: the same windows go through the
// same ScoreBatch/Score arithmetic, only the execution schedule changes.
// Reduced-precision groups score through ScoreBatch32 on the float32
// batch the sessions assembled.
func (g *modelGroup) flush(trigger int) {
	g.mu.Lock()
	n := g.n
	if n == 0 {
		g.mu.Unlock()
		if trigger != trigDrain {
			// A kick or deadline raced an earlier flush that already
			// emptied the buffer. During genuine idle this stays at zero:
			// the parked flusher never wakes on its own.
			g.obs.emptyWakeups.Inc()
		}
		return
	}
	g.obs.flushTrig[trigger].Inc()
	is32 := g.fill32
	var batch *tensor.Tensor
	var batch32 *tensor.Tensor32
	if is32 {
		batch32 = g.pending32
		g.pending32, g.spare32 = g.spare32, g.pending32
	} else {
		batch = g.pending
		g.pending, g.spare = g.spare, g.pending
	}
	meta := g.meta
	g.meta, g.spareMeta = g.spareMeta, g.meta
	g.n = 0
	sc := g.sc
	g.mu.Unlock()
	g.cond.Broadcast()

	// The Scorer surface absorbs every engine mismatch: a float32 batch
	// against a scorer that was hot-swapped to a float64-only engine
	// widens inside ScoreBatch32, and an unbatched detector's adapter
	// loops Score per window inside ScoreBatch.
	scoreStart := time.Now()
	var scores []float64
	if is32 {
		scores = sc.ScoreBatch32(batch32.SliceRows(0, n))
	} else {
		scores = sc.ScoreBatch(batch.SliceRows(0, n))
	}
	now := time.Now()
	scoreD := now.Sub(scoreStart)
	g.obs.score.Observe(scoreD, n)
	g.obs.amort.record(n, scoreD)
	g.obs.sketch.AddBatch(scores[:n])
	// The per-window loop keeps only histogram records hot (one atomic
	// triple each); the counter halves of the fill_wait/admit_wait stage
	// timers are summed locally and added once per flush, and session
	// sketches fold same-session runs of the batch under one lock.
	var fillNs, admitNs, admitN int64
	runStart := 0
	for i := 0; i < n; i++ {
		m := &meta[i]
		sess := m.sess
		// fill_wait: how long the window sat in the coalesce buffer before
		// scoring began; coalesce latency: ready → emitted, the end-to-end
		// figure the old global ring measured, now per group.
		fw := scoreStart.Sub(m.ready).Nanoseconds()
		if fw < 0 {
			fw = 0
		}
		fillNs += fw
		g.obs.fillWait.PerWindow.Record(fw)
		g.obs.coalesce.Record(now.Sub(m.ready).Nanoseconds())
		if m.admitNs >= 0 {
			admitNs += m.admitNs
			admitN++
			g.obs.admitWait.PerWindow.Record(m.admitNs)
		}
		if i+1 == n || meta[i+1].sess != sess {
			sess.sketch.AddBatch(scores[runStart : i+1])
			runStart = i + 1
		}
		sess.emit(stream.Score{Index: m.index, Value: scores[i]})
		m.sess = nil
	}
	g.obs.fillWait.Ns.Add(fillNs)
	g.obs.fillWait.Calls.Inc()
	g.obs.fillWait.Windows.Add(int64(n))
	if admitN > 0 {
		g.obs.admitWait.Ns.Add(admitNs)
		g.obs.admitWait.Calls.Inc()
		g.obs.admitWait.Windows.Add(admitN)
	}
	g.obs.emit.Observe(time.Since(now), n)
	g.srv.met.windowsScored.Add(int64(n))
	g.srv.met.batches.Add(1)

	// Controller tail: account the freshly scored windows and, once a
	// full evaluation window has accrued, read back the amortisation
	// curve and let the policy adjust the fill target.
	g.mu.Lock()
	g.schedAfterFlushLocked(n)
	g.mu.Unlock()
}

// checkGeometry verifies a replacement scorer keeps the group's (W, C) —
// sessions own window state sized to it and keep that state across swaps.
func (g *modelGroup) checkGeometry(sc detect.Scorer, version int) error {
	c, ok := detectorChannels(sc)
	if !ok {
		return fmt.Errorf("serve: cannot determine channel count of %s", sc.Name())
	}
	if sc.WindowSize() != g.w || c != g.c {
		return fmt.Errorf("serve: model %s@v%d geometry (W=%d,C=%d) does not match serving group (W=%d,C=%d)",
			g.name, version, sc.WindowSize(), c, g.w, g.c)
	}
	return nil
}

// swap hot-swaps the group's scorer on live sessions. Callers must have
// validated geometry (checkGeometry) and re-derived the group's
// negotiated precision on the new instance, so swap itself cannot fail —
// Reload uses that to move every derived-precision group of one model in
// a single all-or-nothing step. derived tracks whether the NEW instance
// was re-targeted: a group that negotiated int8 against a float64 v1
// stops being derived when v2 is imported as a native int8 container.
func (g *modelGroup) swap(sc detect.Scorer, version int, kind string, derived bool) {
	g.mu.Lock()
	g.setScorerLocked(sc)
	// The learned target was fitted to the old engine's amortisation
	// curve; forget it and fall back to the static default until the new
	// engine has produced an evaluation window of its own.
	g.sched.policy.reset()
	g.sched.sinceEval = 0
	g.recomputeFillTargetLocked() // the serving precision may have moved
	g.version = version
	g.kind = kind
	g.derived = derived
	g.mu.Unlock()
}

// servingPrecision reports the precision the group's engine currently
// runs — the value a v2 Welcome echoes.
func (g *modelGroup) servingPrecision() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.caps.Precision
}

// servingVersion reports the concrete version currently loaded. Like
// servingPrecision it exists for the handshake path, which races an
// operator Reload: name/geometry are immutable after construction, but
// version swaps under the group lock.
func (g *modelGroup) servingVersion() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.version
}

func (g *modelGroup) status() ModelStatus {
	g.mu.Lock()
	st := ModelStatus{
		Key:        g.key,
		Model:      g.name,
		Version:    g.version,
		Kind:       g.kind,
		Window:     g.w,
		Channels:   g.c,
		Batched:    g.caps.Batched,
		Precision:  g.caps.Precision,
		Requested:  g.reqPrec,
		Derived:    g.derived,
		Pending:    g.n,
		FillTarget: g.fillTarget,
		Sessions:   g.sessions,
		Scheduler:  g.schedulerStatusLocked(),
	}
	g.mu.Unlock()
	stages := map[string]*obs.StageTimer{
		"admit_wait": g.obs.admitWait,
		"fill_wait":  g.obs.fillWait,
		"score":      g.obs.score,
		"emit":       g.obs.emit,
	}
	for name, t := range stages {
		if t.Calls.Load() == 0 {
			continue
		}
		if st.Stages == nil {
			st.Stages = make(map[string]StageStats, len(stages))
		}
		st.Stages[name] = stageStats(t)
	}
	st.Amortization = g.obs.amort.rows()
	st.ScoreDist = scoreDist(g.obs.sketch.Snapshot(), st.Kind)
	return st
}

// detectorChannels reports the stream width a fitted detector consumes.
func detectorChannels(d detect.Detector) (int, bool) {
	switch m := d.(type) {
	case *core.Model:
		return m.Config().Channels, true
	case *ae.Model:
		return m.Config().Channels, true
	case *arlstm.Model:
		return m.Config().Channels, true
	case *gbrf.Model:
		return m.Config().Channels, true
	case *iforest.Model:
		return m.Channels(), true
	case *knn.Model:
		return m.Channels(), true
	}
	return 0, false
}
