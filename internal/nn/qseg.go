package nn

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"varade/internal/obs"
	"varade/internal/tensor"
)

// opQuantSeg is the true-int8 inference lane: a maximal run of
// {Conv1D, ReLU, Flatten, Dense} layers executed as one segment whose
// inter-stage activations stay int8. Each stage quantizes nothing on its
// own — the segment input is quantized once through the first stage's
// ActQuant, every GEMM is int8×int8 with exact int32 accumulation
// (tensor.QGemmTransB), and each stage requantizes its int32 tile
// directly to the next stage's int8 domain (fusing ReLU, which is exact
// there: the 0-anchored ranges map x = 0 to the zero point, so
// max(x, 0) is max(q, zero)). Only the head stage dequantizes, back to
// float32.
//
// The requantization applies the affine identity for per-channel weights
// (scale sw, zero zw) against per-tensor activations (sx, zx):
//
//	y[i,r] = sw[r]·sx·(Σ_c qx·qw − zw[r]·rsX[i] − zx·rsW[r] + K·zw[r]·zx) + b[r]
//
// where rsX/rsW are activation/weight row sums and K the inner extent.
// Everything except the raw Σ qx·qw is folded into per-channel constants
// at calibration time (qStagePrep), so the hot loop is one multiply-add
// and a clamp per output element. rsX is never computed separately: the
// weight panels carry a synthetic all-ones output channel
// (QuantTensor.panels), so each stage's GEMM emits its activation row
// sums as output column Rows — every acc tile here is (m, Rows+1) with
// the row sum in the last column.
//
// Scales calibrate on the first batch the segment sees: a float-lane
// pass (the same arithmetic legacy containers serve) observes every
// stage input's range, the scales latch, and the batch then re-runs
// through the int8 lane — so the calibration batch itself scores
// identically to every later batch and to a reloaded container.

const (
	stageConv = iota
	stageDense
)

// qStage is one GEMM-bearing stage of a quantized segment.
type qStage struct {
	kind    int
	q       *QuantTensor
	b       []float32
	g       convGeom // conv stages only
	relu    bool     // fused ReLU on the stage output
	flatten bool     // (b, C, L) → (b, C·L) reshape after the stage
	in      *ActQuant
}

// applyFloat runs the stage in the float32-accumulating fallback lane —
// the calibration pass and the arithmetic uncalibrated (legacy) models
// would serve.
func (st *qStage) applyFloat(x *tensor.Tensor32) *tensor.Tensor32 {
	var out *tensor.Tensor32
	if st.kind == stageConv {
		out = opConv1DQ{q: st.q, b: st.b, g: st.g}.Apply(x)
	} else {
		out = opDenseQ{q: st.q, b: st.b}.Apply(x)
	}
	if st.relu {
		od := out.Data()
		for i, v := range od {
			if v < 0 {
				od[i] = 0
			}
		}
	}
	if st.flatten {
		out = out.Reshape(out.Dim(0), -1)
	}
	return out
}

// qStagePrep is the per-channel requantization table derived once at
// calibration: corr = acc − zw[r]·rsX + cw[r], then m[r]·corr + c[r] is
// the next stage's quantized value (mid stages, with zn its zero point)
// or the dequantized float32 output (head stage).
type qStagePrep struct {
	zw []int32   // weight zero points, widened
	cw []int32   // K·zw·zx − zx·rsW, per channel
	m  []float32 // sw·sx/s_next (mid) or sw·sx (head)
	c  []float32 // b/s_next + z_next (mid) or b (head)
	zn int8      // next stage's zero point (mid stages)
}

type opQuantSeg struct {
	acts   *ActSet
	stages []*qStage
	ready  atomic.Bool
	prep   []qStagePrep
}

func (o *opQuantSeg) Apply(x *tensor.Tensor32) *tensor.Tensor32 {
	if !o.ready.Load() {
		o.calibrate(x)
	}
	return o.forwardInt8(x)
}

func (o *opQuantSeg) weightBytes() int {
	total := 0
	for _, st := range o.stages {
		total += st.q.NumBytes() + 4*len(st.b)
	}
	return total
}

// calibrate latches activation scales (observing x through the float
// lane when the container did not carry them) and builds the requant
// tables. Runs once, under the ActSet mutex; the ready flag's atomic
// Store/Load pair publishes the tables to lock-free readers.
func (o *opQuantSeg) calibrate(x *tensor.Tensor32) {
	o.acts.mu.Lock()
	defer o.acts.mu.Unlock()
	if o.ready.Load() {
		return
	}
	needObs := false
	for _, st := range o.stages {
		if !st.in.Calibrated() {
			needObs = true
			break
		}
	}
	if needObs {
		cur := x
		for _, st := range o.stages {
			if !st.in.Calibrated() {
				st.in.observe(cur.Data())
			}
			cur = st.applyFloat(cur)
		}
		for _, st := range o.stages {
			if !st.in.Calibrated() {
				st.in.latch()
			}
		}
	}
	o.buildPrep()
	o.ready.Store(true)
}

func (o *opQuantSeg) buildPrep() {
	o.prep = make([]qStagePrep, len(o.stages))
	for i, st := range o.stages {
		q := st.q
		k := int32(q.Cols)
		rsW := q.RowSums()
		sx := st.in.Scale
		zx := int32(st.in.Zero)
		p := qStagePrep{
			zw: make([]int32, q.Rows),
			cw: make([]int32, q.Rows),
			m:  make([]float32, q.Rows),
			c:  make([]float32, q.Rows),
		}
		var next *ActQuant
		if i+1 < len(o.stages) {
			next = o.stages[i+1].in
			p.zn = next.Zero
		}
		for r := 0; r < q.Rows; r++ {
			zw := int32(q.Zero[r])
			p.zw[r] = zw
			p.cw[r] = k*zw*zx - zx*rsW[r]
			mf := q.Scale[r] * sx
			var bias float32
			if st.b != nil {
				bias = st.b[r]
			}
			if next != nil {
				p.m[r] = mf / next.Scale
				p.c[r] = bias/next.Scale + float32(next.Zero)
			} else {
				p.m[r] = mf
				p.c[r] = bias
			}
		}
		o.prep[i] = p
	}
}

// qScratch holds one forward pass's working buffers: the current and
// next stages' int8 A-matrices (ping-ponged), a spare channel-major
// int8 tensor for the im2col fallback, and the int32 GEMM accumulator.
// Pooled so steady-state batch scoring allocates nothing per pass.
type qScratch struct {
	a, a2, xq []int8
	acc       []int32
}

var qScratchPool = sync.Pool{New: func() any { return new(qScratch) }}

// i8Buf / i32Buf resize a pooled buffer to n elements, reallocating only
// on growth. Contents are unspecified — every caller fully overwrites.
func i8Buf(buf *[]int8, n int) []int8 {
	if cap(*buf) < n {
		*buf = make([]int8, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func i32Buf(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// forwardInt8 is the hot lane. Between stages the activations live as
// the NEXT stage's A-matrix: the segment input is quantized straight
// into the first stage's im2col layout, and each mid stage's requant
// writes directly into its successor's layout — im2col rows for a
// non-overlapping unpadded conv (one slot per value, the VARADE
// geometry), flattened dense rows after a conv+flatten. Only convs with
// overlapping or padded windows fall back to a materialised
// channel-major tensor plus the standalone int8 im2col. Every GEMM runs
// at rows = Rows+1 against the ones-augmented panels, so each acc tile
// carries its activation row sums in the last column and no requant
// pass needs them precomputed.
func (o *opQuantSeg) forwardInt8(x *tensor.Tensor32) *tensor.Tensor32 {
	batch := x.Dim(0)
	l := 0
	if len(x.Shape()) == 3 {
		l = x.Dim(2)
	}
	s := qScratchPool.Get().(*qScratch)
	defer qScratchPool.Put(s)
	tQ := time.Now() // stage timers: one Observe per batch, per stage kind
	var a []int8     // current stage's (m, k) GEMM input
	st0 := o.stages[0]
	if st0.kind == stageConv {
		g := st0.g
		lo := g.outLen(l)
		if lo <= 0 {
			panic(fmt.Sprintf("nn: quantized Conv1D input length %d too short for k=%d s=%d p=%d", l, g.kernel, g.stride, g.pad))
		}
		kw := g.inC * g.kernel
		a = i8Buf(&s.a, batch*lo*kw)
		if g.inC == 1 && g.kernel == g.stride && g.pad == 0 && lo*g.stride == l {
			// Single-channel non-overlapping unpadded conv: the im2col IS
			// the input layout, so quantize straight into the A-matrix.
			quantizeInput(a, x.Data(), st0.in)
		} else {
			xq := i8Buf(&s.xq, batch*g.inC*l)
			quantizeInput(xq, x.Data(), st0.in)
			im2colRowsI8(a, xq, batch, g.inC, l, lo, g.kernel, g.stride, g.pad, st0.in.Zero)
		}
	} else {
		a = i8Buf(&s.a, batch*st0.q.Cols)
		quantizeInput(a, x.Data(), st0.in)
	}
	int8QuantTimer.Observe(time.Since(tQ), batch)
	var gemmD, requantD time.Duration
	var out *tensor.Tensor32
	for i, st := range o.stages {
		p := &o.prep[i]
		last := i == len(o.stages)-1
		var next *qStage
		if !last {
			next = o.stages[i+1]
		}
		switch st.kind {
		case stageConv:
			g := st.g
			lo := g.outLen(l)
			m := batch * lo
			r1 := g.outC + 1 // + the synthetic row-sum column
			acc := i32Buf(&s.acc, m*r1)
			tG := time.Now()
			tensor.QGemmTransB(acc, a, st.q.panels(), m, g.inC*g.kernel, r1)
			tR := time.Now()
			gemmD += tR.Sub(tG)
			switch {
			case last:
				out = tensor.NewOf[float32](batch, g.outC, lo)
				requantConvHead(out.Data(), acc, p, st.relu, batch, lo, g.outC)
			case next.kind == stageConv && next.g.kernel == next.g.stride && next.g.pad == 0:
				g2 := next.g
				lo2 := g2.outLen(lo)
				a2 := i8Buf(&s.a2, batch*lo2*g2.inC*g2.kernel)
				requantConvToCols(a2, acc, p, st.relu, next.in, batch, lo, g.outC, g2.stride, lo2)
				a = a2
				s.a, s.a2 = s.a2, s.a
			case next.kind == stageDense:
				// The channel-major (b, outC, lo) write order IS the dense
				// row layout after the fused flatten.
				a2 := i8Buf(&s.a2, batch*g.outC*lo)
				requantConvFlat(a2, acc, p, st.relu, next.in, batch, lo, g.outC)
				a = a2
				s.a, s.a2 = s.a2, s.a
			default:
				nxt := i8Buf(&s.xq, batch*g.outC*lo)
				requantConvFlat(nxt, acc, p, st.relu, next.in, batch, lo, g.outC)
				g2 := next.g
				lo2 := g2.outLen(lo)
				kw2 := g2.inC * g2.kernel
				a2 := i8Buf(&s.a2, batch*lo2*kw2)
				im2colRowsI8(a2, nxt, batch, g2.inC, lo, lo2, g2.kernel, g2.stride, g2.pad, next.in.Zero)
				a = a2
				s.a, s.a2 = s.a2, s.a
			}
			requantD += time.Since(tR)
			l = lo
		default:
			f := st.q.Cols
			rows := st.q.Rows
			r1 := rows + 1
			acc := i32Buf(&s.acc, batch*r1)
			tG := time.Now()
			tensor.QGemmTransB(acc, a, st.q.panels(), batch, f, r1)
			tR := time.Now()
			gemmD += tR.Sub(tG)
			if last {
				out = tensor.NewOf[float32](batch, rows)
				requantRowsHead(out.Data(), acc, p, st.relu, batch, rows)
			} else {
				a2 := i8Buf(&s.a2, batch*rows)
				requantRowsMid(a2, acc, p, st.relu, next.in, batch, rows)
				a = a2
				s.a, s.a2 = s.a2, s.a
			}
			requantD += time.Since(tR)
		}
		if last && st.flatten {
			out = out.Reshape(batch, -1)
		}
	}
	int8GemmTimer.Observe(gemmD, batch)
	int8RequantTimer.Observe(requantD, batch)
	return out
}

// Compute-stage timers for the int8 lane, resolved once: forwardInt8
// records three Observes (4 atomic adds each) per batch, independent of
// batch size.
var (
	int8QuantTimer   = obs.ComputeStage("quantize", "int8")
	int8GemmTimer    = obs.ComputeStage("gemm", "int8")
	int8RequantTimer = obs.ComputeStage("requant", "int8")
)

// requantConvToCols turns a conv stage's int32 GEMM output
// (batch·lo, outC+1) directly into the NEXT conv stage's A-matrix: with
// kernel == stride == s2 and no padding, output value (b, oc, t) owns
// exactly one im2col slot — row b·lo2 + t/s2, column oc·s2 + t%s2 — so
// the requant write (bias, ReLU, zero-point offset fused) doubles as the
// im2col. Trailing positions the next conv drops (t ≥ lo2·s2) are never
// produced. For the stride-2 16-lane-aligned geometry (every VARADE
// trunk stage) the whole transform is one tensor.RequantPairs2 call —
// the SIMD-dispatched fused requant+interleave.
func requantConvToCols(cols []int8, acc []int32, p *qStagePrep, relu bool, next *ActQuant, batch, lo, outC, s2, lo2 int) {
	ld := outC + 1
	kw2 := outC * s2
	if s2 == 2 && outC%16 == 0 {
		if lo == 2*lo2 {
			// No dropped tail: all acc rows are consumed in order, so the
			// batch dimension merges into one pair run per shard.
			tensor.Parallel(batch, func(blo, bhi int) {
				pairs := (bhi - blo) * lo2
				clipped := tensor.RequantPairs2(cols[blo*lo2*kw2:], acc[blo*lo*ld:], ld, pairs, outC,
					p.zw, p.cw, p.m, p.c, p.zn, relu)
				next.noteClipped(clipped, pairs*2*outC)
			})
		} else {
			tensor.Parallel(batch, func(blo, bhi int) {
				clipped := 0
				for b := blo; b < bhi; b++ {
					clipped += tensor.RequantPairs2(cols[b*lo2*kw2:(b+1)*lo2*kw2], acc[b*lo*ld:], ld, lo2, outC,
						p.zw, p.cw, p.m, p.c, p.zn, relu)
				}
				next.noteClipped(clipped, (bhi-blo)*lo2*2*outC)
			})
		}
		return
	}
	zn := p.zn
	tensor.Parallel(batch, func(blo, bhi int) {
		clipped, total := 0, 0
		for b := blo; b < bhi; b++ {
			for t := 0; t < lo2*s2; t++ {
				row := acc[(b*lo+t)*ld : (b*lo+t)*ld+outC]
				rs := acc[(b*lo+t)*ld+outC]
				r2 := b*lo2 + t/s2
				dst := cols[r2*kw2 : (r2+1)*kw2]
				off := t % s2
				for oc, a := range row {
					corr := a - p.zw[oc]*rs + p.cw[oc]
					q, cl := tensor.QuantClamp(p.m[oc]*float32(corr) + p.c[oc])
					// A low-side clip under a fused ReLU is exact — the
					// float lane floors the value to 0 (= zn) too — so
					// only lossy saturations count.
					if cl && (!relu || q == 127) {
						clipped++
					}
					if relu && q < zn {
						q = zn
					}
					dst[oc*s2+off] = q
				}
				total += outC
			}
		}
		next.noteClipped(clipped, total)
	})
}

// requantConvFlat turns a conv stage's int32 GEMM output
// (batch·lo, outC+1) into channel-major int8 activations
// (batch, outC, lo), fusing bias, ReLU and the zero-point offset — the
// flattened dense rows a conv+flatten stage feeds, or the materialised
// tensor the standalone im2col fallback consumes.
func requantConvFlat(dst []int8, acc []int32, p *qStagePrep, relu bool, next *ActQuant, batch, lo, outC int) {
	zn := p.zn
	ld := outC + 1
	tensor.Parallel(batch, func(blo, bhi int) {
		clipped, total := 0, 0
		for b := blo; b < bhi; b++ {
			ob := dst[b*outC*lo : (b+1)*outC*lo]
			for t := 0; t < lo; t++ {
				row := acc[(b*lo+t)*ld : (b*lo+t)*ld+outC]
				rs := acc[(b*lo+t)*ld+outC]
				for oc, a := range row {
					corr := a - p.zw[oc]*rs + p.cw[oc]
					q, cl := tensor.QuantClamp(p.m[oc]*float32(corr) + p.c[oc])
					// See requantConvToCols on the ReLU clip rule.
					if cl && (!relu || q == 127) {
						clipped++
					}
					if relu && q < zn {
						q = zn
					}
					ob[oc*lo+t] = q
				}
				total += outC
			}
		}
		next.noteClipped(clipped, total)
	})
}

// requantConvHead dequantizes the final conv stage to float32,
// channel-major.
func requantConvHead(dst []float32, acc []int32, p *qStagePrep, relu bool, batch, lo, outC int) {
	ld := outC + 1
	tensor.Parallel(batch, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			ob := dst[b*outC*lo : (b+1)*outC*lo]
			for t := 0; t < lo; t++ {
				row := acc[(b*lo+t)*ld : (b*lo+t)*ld+outC]
				rs := acc[(b*lo+t)*ld+outC]
				for oc, a := range row {
					corr := a - p.zw[oc]*rs + p.cw[oc]
					y := p.m[oc]*float32(corr) + p.c[oc]
					if relu && y < 0 {
						y = 0
					}
					ob[oc*lo+t] = y
				}
			}
		}
	})
}

// requantRowsMid requantizes a dense stage's (batch, rows+1) int32
// output to the next stage's int8 domain.
func requantRowsMid(dst []int8, acc []int32, p *qStagePrep, relu bool, next *ActQuant, batch, rows int) {
	zn := p.zn
	ld := rows + 1
	tensor.Parallel(batch, func(blo, bhi int) {
		clipped := 0
		for i := blo; i < bhi; i++ {
			row := acc[i*ld : i*ld+rows]
			rs := acc[i*ld+rows]
			orow := dst[i*rows : (i+1)*rows]
			for r, a := range row {
				corr := a - p.zw[r]*rs + p.cw[r]
				q, cl := tensor.QuantClamp(p.m[r]*float32(corr) + p.c[r])
				// See requantConvToCols on the ReLU clip rule.
				if cl && (!relu || q == 127) {
					clipped++
				}
				if relu && q < zn {
					q = zn
				}
				orow[r] = q
			}
		}
		next.noteClipped(clipped, (bhi-blo)*rows)
	})
}

// requantRowsHead dequantizes the final dense stage to float32 rows.
func requantRowsHead(dst []float32, acc []int32, p *qStagePrep, relu bool, batch, rows int) {
	ld := rows + 1
	tensor.Parallel(batch, func(blo, bhi int) {
		for i := blo; i < bhi; i++ {
			row := acc[i*ld : i*ld+rows]
			rs := acc[i*ld+rows]
			orow := dst[i*rows : (i+1)*rows]
			for r, a := range row {
				corr := a - p.zw[r]*rs + p.cw[r]
				y := p.m[r]*float32(corr) + p.c[r]
				if relu && y < 0 {
					y = 0
				}
				orow[r] = y
			}
		}
	})
}

// compileQuantSegments is the acts-aware quantized compile: maximal runs
// of {Conv1D, ReLU, Flatten, Dense} in the flattened layer list become
// opQuantSeg programs; everything else (residual blocks, transpose
// convolutions, LSTMs, standalone activations) falls back to the
// per-layer quantized or float32 ops and breaks the segment.
func compileQuantSegments(net *InferenceNet[float32], cache QuantCache, acts *ActSet, layers []Layer) error {
	convIdx, denseIdx := 0, 0
	i := 0
	for i < len(layers) {
		var probe *qStage
		switch v := layers[i].(type) {
		case *Conv1D:
			q := quantFor(cache, v.W, v.OutC, v.InC*v.Kernel)
			probe = &qStage{kind: stageConv, q: q, b: f32s(v.B), g: v.geom(),
				in: acts.next(fmt.Sprintf("conv%d.in", convIdx))}
			convIdx++
		case *Dense:
			q := quantFor(cache, v.W, v.OutFeatures(), v.InFeatures())
			probe = &qStage{kind: stageDense, q: q, b: f32s(v.B),
				in: acts.next(fmt.Sprintf("dense%d.in", denseIdx))}
			denseIdx++
		}
		if probe == nil {
			if err := compileQuantInto(net, cache, layers[i]); err != nil {
				return err
			}
			i++
			continue
		}
		seg := &opQuantSeg{acts: acts}
		for probe != nil {
			i++
		fuse:
			for i < len(layers) {
				switch layers[i].(type) {
				case *ReLU:
					probe.relu = true
				case *Flatten:
					probe.flatten = true
				default:
					break fuse
				}
				i++
			}
			seg.stages = append(seg.stages, probe)
			probe = nil
			if i < len(layers) {
				switch v := layers[i].(type) {
				case *Conv1D:
					q := quantFor(cache, v.W, v.OutC, v.InC*v.Kernel)
					probe = &qStage{kind: stageConv, q: q, b: f32s(v.B), g: v.geom(),
						in: acts.next(fmt.Sprintf("conv%d.in", convIdx))}
					convIdx++
				case *Dense:
					q := quantFor(cache, v.W, v.OutFeatures(), v.InFeatures())
					probe = &qStage{kind: stageDense, q: q, b: f32s(v.B),
						in: acts.next(fmt.Sprintf("dense%d.in", denseIdx))}
					denseIdx++
				}
			}
		}
		net.ops = append(net.ops, seg)
	}
	return nil
}

// flattenLayers expands Sequential containers so the segment grouping
// sees the true layer sequence. Residual blocks stay opaque units.
func flattenLayers(ls []Layer) []Layer {
	var out []Layer
	for _, l := range ls {
		if s, ok := l.(*Sequential); ok {
			out = append(out, flattenLayers(s.Layers)...)
		} else {
			out = append(out, l)
		}
	}
	return out
}
