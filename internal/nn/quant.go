package nn

import (
	"fmt"
	"math"
	"sync"

	"varade/internal/tensor"
)

// Post-training per-channel affine int8 quantization for Dense/Conv
// weights. Each output channel r of a weight matrix is mapped to int8 via
//
//	q = clamp(round(w/scale[r]) + zero[r], -128, 127)
//	w ≈ (q - zero[r]) · scale[r]
//
// with the range anchored so that w = 0 is exactly representable (the zero
// point is always in range). When activation scales are calibrated (see
// ActSet) inference runs int8×int8 through the tensor qGEMM engine;
// without them — legacy containers, residual branches — it dequantises on
// the fly and accumulates in float32.

// QuantTensor is a per-channel affine int8 quantization of a weight
// tensor, viewed as a (Rows, Cols) matrix whose rows are output channels.
type QuantTensor struct {
	Rows, Cols int
	Scale      []float32 // per-row scale, len Rows
	Zero       []int8    // per-row zero point, len Rows
	Q          []int8    // quantized values, Rows*Cols, row-major
	shape      []int     // original tensor shape

	// packed is the qGEMM B-panel layout of Q (tensor.QGemmPackB), built
	// lazily once — weights are immutable after quantization.
	packOnce sync.Once
	packed   []int8

	// rowSums is Σ_c Q[r,c] per output row, the rsW term of the affine
	// qGEMM correction; lazy for the same reason.
	rsOnce  sync.Once
	rowSums []int32
}

// Shape returns the original (pre-flattening) tensor shape.
func (q *QuantTensor) Shape() []int { return q.shape }

// NumBytes returns the serving-resident size of the quantized
// representation: the stored values, the per-channel parameters, and the
// packed panel copy the qGEMM kernels consume (~1 extra byte per
// parameter; packed with the synthetic row-sum channel panels appends) —
// the figure edge.ModelBytesFor projections budget against.
func (q *QuantTensor) NumBytes() int {
	return len(q.Q) + tensor.QGemmPackedLen(q.Rows+1, q.Cols) + 5*q.Rows
}

// SliceRows returns a view of output-channel rows [lo, hi): the exact
// stored quantization of those channels, with no requantization. The
// backing slices are shared.
func (q *QuantTensor) SliceRows(lo, hi int) *QuantTensor {
	if lo < 0 || hi > q.Rows || lo > hi {
		panic(fmt.Sprintf("nn: QuantTensor.SliceRows [%d,%d) out of range for %d rows", lo, hi, q.Rows))
	}
	return &QuantTensor{
		Rows:  hi - lo,
		Cols:  q.Cols,
		Scale: q.Scale[lo:hi],
		Zero:  q.Zero[lo:hi],
		Q:     q.Q[lo*q.Cols : hi*q.Cols],
		shape: []int{hi - lo, q.Cols},
	}
}

// Ensure returns the cache's quantization of p, quantizing (rows, cols)
// and recording it on first use.
func (c QuantCache) Ensure(p *Param, rows, cols int) *QuantTensor {
	return quantFor(c, p, rows, cols)
}

// QuantizeRows quantizes w, viewed as (rows, cols) with rows = output
// channels, to per-channel affine int8.
func QuantizeRows(w *tensor.Tensor, rows, cols int) *QuantTensor {
	if rows*cols != w.Len() {
		panic(fmt.Sprintf("nn: QuantizeRows %dx%d incompatible with %d elements", rows, cols, w.Len()))
	}
	q := &QuantTensor{
		Rows:  rows,
		Cols:  cols,
		Scale: make([]float32, rows),
		Zero:  make([]int8, rows),
		Q:     make([]int8, rows*cols),
		shape: append([]int(nil), w.Shape()...),
	}
	wd := w.Data()
	for r := 0; r < rows; r++ {
		row := wd[r*cols : (r+1)*cols]
		// Anchor the range at zero so zero weights stay exact.
		lo, hi := 0.0, 0.0
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		scale := (hi - lo) / 255
		if scale <= 0 {
			q.Scale[r], q.Zero[r] = 1, 0
			continue // all-zero row quantizes to zero
		}
		zp := math.Round(-128 - lo/scale)
		if zp < -128 {
			zp = -128
		} else if zp > 127 {
			zp = 127
		}
		q.Scale[r] = float32(scale)
		q.Zero[r] = int8(zp)
		for c, v := range row {
			qv := math.Round(v/scale) + zp
			if qv < -128 {
				qv = -128
			} else if qv > 127 {
				qv = 127
			}
			q.Q[r*cols+c] = int8(qv)
		}
	}
	return q
}

// Dequantize reconstructs the float64 weight tensor in its original shape.
func (q *QuantTensor) Dequantize() *tensor.Tensor {
	out := tensor.New(q.shape...)
	od := out.Data()
	for r := 0; r < q.Rows; r++ {
		s, z := float64(q.Scale[r]), float64(q.Zero[r])
		for c := 0; c < q.Cols; c++ {
			od[r*q.Cols+c] = (float64(q.Q[r*q.Cols+c]) - z) * s
		}
	}
	return out
}

// MaxAbsError returns the largest |w - dequant(quant(w))| over all
// elements — the quantization noise floor, useful for tolerance checks.
func (q *QuantTensor) MaxAbsError(w *tensor.Tensor) float64 {
	wd, dd := w.Data(), q.Dequantize().Data()
	worst := 0.0
	for i := range wd {
		if d := math.Abs(wd[i] - dd[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// quantKBlock is the k-extent tile of the blocked float-accumulating
// fallback GEMM: a block of the input row (4·quantKBlock B) plus the
// matching int8 sub-row (quantKBlock B) stays L1-resident while every
// output row's sub-dot runs over it.
const quantKBlock = 2048

// panels returns (building lazily, once — quantized weights are
// immutable) the qGEMM B-panel layout of Q augmented with one trailing
// all-ones output channel, exactly the format tensor.QGemmTransB
// consumes at rows = Rows+1. The synthetic channel makes the GEMM's
// extra output column Σ_c qx[i,c] — the rsX term of the affine
// correction — so the row sums of every activation matrix come out of
// the same kernel pass that computes the dots, and nothing downstream
// ever re-walks the int8 activations. The pack is a second resident
// copy of the int8 values (~1 extra byte per parameter while serving,
// which NumBytes counts), paid only by instances that actually run the
// int8 GEMM.
func (q *QuantTensor) panels() []int8 {
	q.packOnce.Do(func() {
		wq := make([]int8, (q.Rows+1)*q.Cols)
		copy(wq, q.Q)
		ones := wq[q.Rows*q.Cols:]
		for i := range ones {
			ones[i] = 1
		}
		p := make([]int8, tensor.QGemmPackedLen(q.Rows+1, q.Cols))
		tensor.QGemmPackB(p, wq, q.Rows+1, q.Cols)
		q.packed = p
	})
	return q.packed
}

// RowSums returns (building lazily, once) Σ_c Q[r,c] per output row: the
// rsW term that corrects the raw integer dot for the activation zero
// point in the quantized GEMM identity.
func (q *QuantTensor) RowSums() []int32 {
	q.rsOnce.Do(func() {
		rs := make([]int32, q.Rows)
		for r := 0; r < q.Rows; r++ {
			var s int32
			for _, v := range q.Q[r*q.Cols : (r+1)*q.Cols] {
				s += int32(v)
			}
			rs[r] = s
		}
		q.rowSums = rs
	})
	return q.rowSums
}

// quantGEMMTransB computes dst = x·dequant(q)ᵀ + bias with float32
// accumulation off float32 activations: x is (n, Cols), dst is
// (n, Rows). This is the fallback lane — calibration passes, residual
// branches, anything without activation scales; the calibrated hot path
// goes through tensor.QGemmTransB instead. Because the affine
// dequantisation is per output row, the inner product folds to
//
//	y[i,r] = scale[r]·(Σ_c q[r,c]·x[i,c] − zero[r]·Σ_c x[i,c]) + bias[r]
//
// so each pass needs one int8 weight scan plus an input row sum that is
// computed once per input row and shared by every output row.
func quantGEMMTransB(dst, x *tensor.Tensor32, q *QuantTensor, bias []float32) {
	quantGEMMTransBBlocked(dst, x, q, bias, quantKBlock)
}

// quantGEMMTransBBlocked is quantGEMMTransB with an explicit k-block
// size, separated so tests can force the multi-block path on small
// shapes. Each k block of x stays L1-resident while every output row's
// int8 sub-row streams past it.
func quantGEMMTransBBlocked(dst, x *tensor.Tensor32, q *QuantTensor, bias []float32, kblock int) {
	n, cols := x.Dim(0), x.Dim(1)
	if cols != q.Cols {
		panic(fmt.Sprintf("nn: quantGEMM inner dims %d vs %d", cols, q.Cols))
	}
	xd, od := x.Data(), dst.Data()
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xrow := xd[i*cols : (i+1)*cols]
			orow := od[i*q.Rows : (i+1)*q.Rows]
			clear(orow)
			var sx float32
			for k0 := 0; k0 < cols; k0 += kblock {
				k1 := min(k0+kblock, cols)
				xsub := xrow[k0:k1]
				// The row sum rides the same block pass as the dots, so
				// xsub is scanned while hot and never re-read.
				sx += rowSum(xsub)
				for r := 0; r < q.Rows; r++ {
					orow[r] += dotQRow(q.Q[r*cols+k0:r*cols+k1], xsub)
				}
			}
			for r := 0; r < q.Rows; r++ {
				orow[r] = finishQuantDot(q, bias, r, orow[r], sx)
			}
		}
	})
}

// dotQRow accumulates one int8 weight sub-row against the x block with
// four independent float32 chains.
func dotQRow(qrow []int8, x []float32) float32 {
	var s0, s1, s2, s3 float32
	c := 0
	for ; c+4 <= len(x); c += 4 {
		s0 += float32(qrow[c]) * x[c]
		s1 += float32(qrow[c+1]) * x[c+1]
		s2 += float32(qrow[c+2]) * x[c+2]
		s3 += float32(qrow[c+3]) * x[c+3]
	}
	for ; c < len(x); c++ {
		s0 += float32(qrow[c]) * x[c]
	}
	return (s0 + s1) + (s2 + s3)
}

// rowSum totals one (sub-)row of the input.
func rowSum(x []float32) float32 {
	var s0, s1, s2, s3 float32
	c := 0
	for ; c+4 <= len(x); c += 4 {
		s0 += x[c]
		s1 += x[c+1]
		s2 += x[c+2]
		s3 += x[c+3]
	}
	for ; c < len(x); c++ {
		s0 += x[c]
	}
	return (s0 + s1) + (s2 + s3)
}

// finishQuantDot applies the per-row affine correction and bias to a
// completed raw dot product.
func finishQuantDot(q *QuantTensor, bias []float32, r int, acc, sx float32) float32 {
	y := q.Scale[r] * (acc - float32(q.Zero[r])*sx)
	if bias != nil {
		y += bias[r]
	}
	return y
}
