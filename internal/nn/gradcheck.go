package nn

import (
	"math"

	"varade/internal/tensor"
)

// NumericGradParam estimates dLoss/dParam by central finite differences.
// loss must recompute the scalar loss from scratch (including the forward
// pass) on every call. Used by the test suite to validate every layer's
// analytic backward pass.
func NumericGradParam(p *Param, loss func() float64, eps float64) *tensor.Tensor {
	grad := tensor.New(p.Value.Shape()...)
	data := p.Value.Data()
	gd := grad.Data()
	for i := range data {
		orig := data[i]
		data[i] = orig + eps
		lp := loss()
		data[i] = orig - eps
		lm := loss()
		data[i] = orig
		gd[i] = (lp - lm) / (2 * eps)
	}
	return grad
}

// NumericGradInput estimates dLoss/dInput by central finite differences on
// the input tensor x.
func NumericGradInput(x *tensor.Tensor, loss func() float64, eps float64) *tensor.Tensor {
	grad := tensor.New(x.Shape()...)
	data := x.Data()
	gd := grad.Data()
	for i := range data {
		orig := data[i]
		data[i] = orig + eps
		lp := loss()
		data[i] = orig - eps
		lm := loss()
		data[i] = orig
		gd[i] = (lp - lm) / (2 * eps)
	}
	return grad
}

// MaxRelDiff returns the largest elementwise relative difference between a
// and b, using max(1, |a|, |b|) as denominator so tiny gradients compare
// absolutely.
func MaxRelDiff(a, b *tensor.Tensor) float64 {
	ad, bd := a.Data(), b.Data()
	worst := 0.0
	for i := range ad {
		den := math.Max(1, math.Max(math.Abs(ad[i]), math.Abs(bd[i])))
		d := math.Abs(ad[i]-bd[i]) / den
		if d > worst {
			worst = d
		}
	}
	return worst
}
