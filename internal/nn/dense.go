package nn

import (
	"fmt"

	"varade/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b, with x of shape
// (batch, in) and y of shape (batch, out). W is stored as (out, in).
type Dense struct {
	W, B *Param
	in   *tensor.Tensor // cached input for the backward pass
}

// NewDense returns a Dense layer with He-normal weights and zero bias.
func NewDense(in, out int, rng *tensor.RNG) *Dense {
	return &Dense{
		W: newParam("dense.w", HeNormal(rng, out, in)),
		B: newParam("dense.b", tensor.New(out)),
	}
}

// InFeatures returns the input width.
func (d *Dense) InFeatures() int { return d.W.Value.Dim(1) }

// OutFeatures returns the output width.
func (d *Dense) OutFeatures() int { return d.W.Value.Dim(0) }

// Forward computes x·Wᵀ + b through the generic denseForward kernel (the
// same code the float32 inference programs instantiate).
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != d.InFeatures() {
		panic(fmt.Sprintf("nn: Dense forward shape %v, want (batch,%d)", x.Shape(), d.InFeatures()))
	}
	d.in = x
	return denseForward(x, d.W.Value, d.B.Value)
}

// Backward accumulates dW = gradᵀ·x and db = Σ grad rows, and returns
// dX = grad·W.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	tensor.AddInPlace(d.W.Grad, tensor.MatMulTransA(grad, d.in))
	batch, of := grad.Dim(0), grad.Dim(1)
	gd, bg := grad.Data(), d.B.Grad.Data()
	for i := 0; i < batch; i++ {
		row := gd[i*of : (i+1)*of]
		for j, v := range row {
			bg[j] += v
		}
	}
	return tensor.MatMul(grad, d.W.Value)
}

// Params returns the weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }
