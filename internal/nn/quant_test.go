package nn

import (
	"math"
	"testing"

	"varade/internal/tensor"
)

// refQuantGEMM is the float64 reference: x·dequant(q)ᵀ + bias evaluated
// in the obvious order.
func refQuantGEMM(x *tensor.Tensor32, q *QuantTensor, bias []float32) []float64 {
	n, cols := x.Dim(0), x.Dim(1)
	xd := x.Data()
	deq := q.Dequantize().Data()
	out := make([]float64, n*q.Rows)
	for i := 0; i < n; i++ {
		for r := 0; r < q.Rows; r++ {
			s := 0.0
			for c := 0; c < cols; c++ {
				s += float64(xd[i*cols+c]) * deq[r*q.Cols+c]
			}
			if bias != nil {
				s += float64(bias[r])
			}
			out[i*q.Rows+r] = s
		}
	}
	return out
}

// TestQuantGEMMBlockedMatchesSinglePass forces the k-blocked path on a
// shape the single-pass path also handles and checks both against the
// float64 reference: blocking may only reorder float32 additions, so
// every element stays within a tight relative tolerance.
func TestQuantGEMMBlockedMatchesSinglePass(t *testing.T) {
	const (
		n    = 7
		rows = 5
		cols = 103 // odd: exercises the unroll tails in every block
	)
	rng := tensor.NewRNG(7)
	w := tensor.RandNormal(rng, 0, 1, rows, cols)
	q := QuantizeRows(w, rows, cols)
	x := tensor.NewOf[float32](n, cols)
	xd := x.Data()
	for i := range xd {
		xd[i] = float32(rng.NormFloat64())
	}
	bias := make([]float32, rows)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}

	single := tensor.NewOf[float32](n, rows)
	quantGEMMTransBBlocked(single, x, q, bias, cols) // one block: the legacy path
	for _, kblock := range []int{1, 4, 32, 100} {
		blocked := tensor.NewOf[float32](n, rows)
		quantGEMMTransBBlocked(blocked, x, q, bias, kblock)
		ref := refQuantGEMM(x, q, bias)
		sd, bd := single.Data(), blocked.Data()
		for i := range sd {
			if d := math.Abs(float64(bd[i]) - ref[i]); d > 1e-3*(1+math.Abs(ref[i])) {
				t.Fatalf("kblock %d element %d: blocked %g vs reference %g", kblock, i, bd[i], ref[i])
			}
			if d := math.Abs(float64(bd[i] - sd[i])); d > 1e-4*(1+math.Abs(ref[i])) {
				t.Fatalf("kblock %d element %d: blocked %g vs single-pass %g", kblock, i, bd[i], sd[i])
			}
		}
	}
}

// TestQuantGEMMDefaultPath pins the production entry point (default
// block size) to the reference on a shape wider than one k-block.
func TestQuantGEMMDefaultPath(t *testing.T) {
	const (
		n    = 3
		rows = 4
		cols = quantKBlock + 513 // forces the multi-block path for real
	)
	rng := tensor.NewRNG(11)
	w := tensor.RandNormal(rng, 0, 0.1, rows, cols)
	q := QuantizeRows(w, rows, cols)
	x := tensor.NewOf[float32](n, cols)
	xd := x.Data()
	for i := range xd {
		xd[i] = float32(rng.NormFloat64())
	}

	dst := tensor.NewOf[float32](n, rows)
	quantGEMMTransB(dst, x, q, nil)
	ref := refQuantGEMM(x, q, nil)
	dd := dst.Data()
	for i := range dd {
		// float32 accumulation over ~2.5k terms: allow a scaled epsilon.
		if d := math.Abs(float64(dd[i]) - ref[i]); d > 1e-2*(1+math.Abs(ref[i])) {
			t.Fatalf("element %d: %g vs reference %g", i, dd[i], ref[i])
		}
	}
}
