package nn

import (
	"bytes"
	"math"
	"testing"

	"varade/internal/tensor"
)

func TestMSEKnownValue(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2}, 1, 2)
	target := tensor.FromSlice([]float64{0, 4}, 1, 2)
	loss, grad := MSE(pred, target)
	if math.Abs(loss-2.5) > 1e-12 { // (1 + 4)/2
		t.Fatalf("MSE=%g want 2.5", loss)
	}
	// d/dpred mean((p-t)²) = 2(p-t)/n
	if math.Abs(grad.At2(0, 0)-1) > 1e-12 || math.Abs(grad.At2(0, 1)+2) > 1e-12 {
		t.Fatalf("grad=%v", grad.Data())
	}
}

func TestGaussianNLLKnownValue(t *testing.T) {
	// μ=0, logσ²=0 (σ²=1), y=2 → ½(0 + 4) = 2.
	mu := tensor.FromSlice([]float64{0}, 1, 1)
	lv := tensor.FromSlice([]float64{0}, 1, 1)
	y := tensor.FromSlice([]float64{2}, 1, 1)
	loss, dMu, dLv := GaussianNLL(mu, lv, y)
	if math.Abs(loss-2) > 1e-12 {
		t.Fatalf("NLL=%g want 2", loss)
	}
	if math.Abs(dMu.At2(0, 0)-(-2)) > 1e-12 { // -(y-μ)/σ²
		t.Fatalf("dMu=%g want -2", dMu.At2(0, 0))
	}
	if math.Abs(dLv.At2(0, 0)-(0.5*(1-4))) > 1e-12 { // ½(1 - (y-μ)²/σ²)
		t.Fatalf("dLv=%g want -1.5", dLv.At2(0, 0))
	}
}

func TestGaussianNLLMinimisedAtTarget(t *testing.T) {
	// For fixed variance, NLL is minimal when μ = y.
	y := tensor.FromSlice([]float64{1.3}, 1, 1)
	lv := tensor.FromSlice([]float64{0}, 1, 1)
	at := func(m float64) float64 {
		mu := tensor.FromSlice([]float64{m}, 1, 1)
		l, _, _ := GaussianNLL(mu, lv, y)
		return l
	}
	if !(at(1.3) < at(1.0) && at(1.3) < at(1.6)) {
		t.Fatal("NLL not minimised at μ=y")
	}
}

func TestGaussianKLZeroAtPrior(t *testing.T) {
	mu := tensor.New(2, 3)
	lv := tensor.New(2, 3)
	d, dMu, dLv := GaussianKL(mu, lv)
	if d != 0 {
		t.Fatalf("KL at prior = %g want 0", d)
	}
	if dMu.Norm() != 0 || dLv.Norm() != 0 {
		t.Fatal("KL gradient at prior must vanish")
	}
}

func TestGaussianKLPositive(t *testing.T) {
	rng := tensor.NewRNG(1)
	for i := 0; i < 50; i++ {
		mu := tensor.RandNormal(rng, 0, 2, 1, 4)
		lv := tensor.RandNormal(rng, 0, 1, 1, 4)
		if d, _, _ := GaussianKL(mu, lv); d < 0 {
			t.Fatalf("KL=%g must be non-negative", d)
		}
	}
}

// Numeric validation of both loss gradients.
func TestLossGradientsNumeric(t *testing.T) {
	rng := tensor.NewRNG(2)
	mu := tensor.RandNormal(rng, 0, 1, 2, 3)
	lv := tensor.RandNormal(rng, 0, 0.5, 2, 3)
	y := tensor.RandNormal(rng, 0, 1, 2, 3)

	nllLoss := func() float64 { l, _, _ := GaussianNLL(mu, lv, y); return l }
	_, dMu, dLv := GaussianNLL(mu, lv, y)
	if d := MaxRelDiff(dMu, NumericGradInput(mu, nllLoss, 1e-6)); d > 1e-6 {
		t.Errorf("NLL dMu error %.2e", d)
	}
	if d := MaxRelDiff(dLv, NumericGradInput(lv, nllLoss, 1e-6)); d > 1e-6 {
		t.Errorf("NLL dLogVar error %.2e", d)
	}

	klLoss := func() float64 { l, _, _ := GaussianKL(mu, lv); return l }
	_, dMuK, dLvK := GaussianKL(mu, lv)
	if d := MaxRelDiff(dMuK, NumericGradInput(mu, klLoss, 1e-6)); d > 1e-6 {
		t.Errorf("KL dMu error %.2e", d)
	}
	if d := MaxRelDiff(dLvK, NumericGradInput(lv, klLoss, 1e-6)); d > 1e-6 {
		t.Errorf("KL dLogVar error %.2e", d)
	}
}

// trainLinear fits y = 2x₀ - 3x₁ + 1 with the given optimizer and returns
// the final MSE.
func trainLinear(t *testing.T, opt Optimizer, steps int) float64 {
	t.Helper()
	rng := tensor.NewRNG(3)
	layer := NewDense(2, 1, rng)
	x := tensor.RandNormal(rng, 0, 1, 64, 2)
	y := tensor.New(64, 1)
	for i := 0; i < 64; i++ {
		y.Set2(2*x.At2(i, 0)-3*x.At2(i, 1)+1, i, 0)
	}
	var loss float64
	for s := 0; s < steps; s++ {
		pred := layer.Forward(x)
		var grad *tensor.Tensor
		loss, grad = MSE(pred, y)
		layer.Backward(grad)
		opt.Step(layer.Params())
	}
	return loss
}

func TestSGDConverges(t *testing.T) {
	if loss := trainLinear(t, NewSGD(0.1, 0.9), 200); loss > 1e-4 {
		t.Fatalf("SGD final loss %g", loss)
	}
}

func TestAdamConverges(t *testing.T) {
	if loss := trainLinear(t, NewAdam(0.05), 300); loss > 1e-4 {
		t.Fatalf("Adam final loss %g", loss)
	}
}

func TestOptimizersClearGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	layer := NewDense(2, 2, rng)
	x := tensor.RandNormal(rng, 0, 1, 4, 2)
	_, grad := MSE(layer.Forward(x), tensor.New(4, 2))
	layer.Backward(grad)
	NewAdam(0.01).Step(layer.Params())
	for _, p := range layer.Params() {
		if p.Grad.Norm() != 0 {
			t.Fatalf("param %s gradient not cleared", p.Name)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", tensor.New(4))
	copy(p.Grad.Data(), []float64{3, 0, 4, 0}) // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %g want 5", pre)
	}
	if n := p.Grad.Norm(); math.Abs(n-1) > 1e-12 {
		t.Fatalf("post-clip norm %g want 1", n)
	}
	// Below the threshold nothing changes.
	copy(p.Grad.Data(), []float64{0.3, 0, 0.4, 0})
	ClipGradNorm([]*Param{p}, 1)
	if math.Abs(p.Grad.Norm()-0.5) > 1e-12 {
		t.Fatal("clip must not rescale small gradients")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(5)
	src := NewSequential(NewConv1D(2, 3, 2, 2, 0, rng), NewDense(4, 2, rng))
	dst := NewSequential(NewConv1D(2, 3, 2, 2, 0, tensor.NewRNG(99)), NewDense(4, 2, tensor.NewRNG(99)))

	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		if !tensor.Equal(p.Value, dst.Params()[i].Value, 0) {
			t.Fatalf("param %d differs after round trip", i)
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	rng := tensor.NewRNG(6)
	src := NewDense(3, 2, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	wrongShape := NewDense(4, 2, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), wrongShape.Params()); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	wrongCount := NewSequential(NewDense(3, 2, rng), NewDense(2, 1, rng))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), wrongCount.Params()); err == nil {
		t.Fatal("expected count mismatch error")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	rng := tensor.NewRNG(7)
	layer := NewDense(2, 2, rng)
	if err := LoadParams(bytes.NewReader([]byte("NOPE....")), layer.Params()); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.RandNormal(tensor.NewRNG(8), 0, 1, 2, 3, 4)
	y := f.Forward(x)
	if y.Dim(0) != 2 || y.Dim(1) != 12 {
		t.Fatalf("Flatten shape %v", y.Shape())
	}
	back := f.Backward(y)
	if back.Dim(2) != 4 {
		t.Fatalf("Backward shape %v", back.Shape())
	}
}

func TestHeNormalScale(t *testing.T) {
	rng := tensor.NewRNG(9)
	w := HeNormal(rng, 64, 100) // fanIn = 100 → std ≈ sqrt(0.02)
	std := math.Sqrt(tensor.Dot(w, w) / float64(w.Len()))
	want := math.Sqrt(2.0 / 100)
	if math.Abs(std-want)/want > 0.1 {
		t.Fatalf("He std %g want ≈%g", std, want)
	}
}

func TestXavierUniformBounds(t *testing.T) {
	rng := tensor.NewRNG(10)
	w := XavierUniform(rng, 30, 50)
	lim := math.Sqrt(6.0 / 80)
	if w.Max() > lim || w.Min() < -lim {
		t.Fatalf("Xavier out of ±%g", lim)
	}
}

func TestLSTMForgetBiasInit(t *testing.T) {
	l := NewLSTM(2, 4, false, tensor.NewRNG(11))
	b := l.B.Value.Data()
	for i := 4; i < 8; i++ {
		if b[i] != 1 {
			t.Fatal("forget-gate bias must initialise to 1")
		}
	}
	for i := 0; i < 4; i++ {
		if b[i] != 0 {
			t.Fatal("input-gate bias must initialise to 0")
		}
	}
}

func TestNumParams(t *testing.T) {
	rng := tensor.NewRNG(12)
	d := NewDense(3, 2, rng) // 6 weights + 2 bias
	if n := NumParams(d.Params()); n != 8 {
		t.Fatalf("NumParams=%d want 8", n)
	}
}

func TestConv1DOutLen(t *testing.T) {
	rng := tensor.NewRNG(13)
	c := NewConv1D(1, 1, 2, 2, 0, rng)
	for _, tc := range []struct{ in, want int }{{8, 4}, {9, 4}, {2, 1}} {
		if got := c.OutLen(tc.in); got != tc.want {
			t.Fatalf("OutLen(%d)=%d want %d", tc.in, got, tc.want)
		}
	}
	ct := NewConvTranspose1D(1, 1, 2, 2, 0, rng)
	if got := ct.OutLen(4); got != 8 {
		t.Fatalf("transpose OutLen(4)=%d want 8", got)
	}
}

// Conv ↔ ConvTranspose geometry inversion: for k=2 s=2 the transpose
// exactly restores the conv's input length.
func TestConvTransposeInvertsConvLength(t *testing.T) {
	rng := tensor.NewRNG(14)
	down := NewConv1D(3, 5, 2, 2, 0, rng)
	up := NewConvTranspose1D(5, 3, 2, 2, 0, rng)
	x := tensor.RandNormal(rng, 0, 1, 1, 3, 16)
	y := up.Forward(down.Forward(x))
	if y.Dim(2) != 16 || y.Dim(1) != 3 {
		t.Fatalf("round-trip shape %v", y.Shape())
	}
}
