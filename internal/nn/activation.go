package nn

import (
	"math"

	"varade/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x).
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative elements.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	xd := x.Data()
	if cap(r.mask) < len(xd) {
		r.mask = make([]bool, len(xd))
	}
	r.mask = r.mask[:len(xd)]
	out := tensor.New(x.Shape()...)
	od := out.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward passes gradient only where the input was positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	gd, od := grad.Data(), out.Data()
	for i, m := range r.mask {
		if m {
			od[i] = gd[i]
		}
	}
	return out
}

// Params returns nil.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	out *tensor.Tensor
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh elementwise.
func (t *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	t.out = tensor.Apply(x, math.Tanh)
	return t.out
}

// Backward multiplies by 1 - tanh².
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	gd, od, yd := grad.Data(), out.Data(), t.out.Data()
	for i := range gd {
		od[i] = gd[i] * (1 - yd[i]*yd[i])
	}
	return out
}

// Params returns nil.
func (t *Tanh) Params() []*Param { return nil }

// Sigmoid is the logistic activation 1/(1+e⁻ˣ).
type Sigmoid struct {
	out *tensor.Tensor
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward applies the logistic function elementwise.
func (s *Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor {
	s.out = tensor.Apply(x, sigmoid)
	return s.out
}

// Backward multiplies by σ(1-σ).
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape()...)
	gd, od, yd := grad.Data(), out.Data(), s.out.Data()
	for i := range gd {
		od[i] = gd[i] * yd[i] * (1 - yd[i])
	}
	return out
}

// Params returns nil.
func (s *Sigmoid) Params() []*Param { return nil }
