package nn

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Per-tensor affine int8 quantization of activations. Each quantized
// stage input (the network input, every inter-layer tensor inside a
// quantized segment) carries one ActQuant mapping float32 activations to
// int8 via
//
//	q = clamp(round(x/scale) + zero, -128, 127)
//	x ≈ (q - zero) · scale
//
// with the observed range anchored at zero, so x = 0 maps to the zero
// point exactly — which is what makes ReLU exact in the quantized
// domain: max(x, 0) becomes max(q, zero).
//
// Scales are calibrated once over a representative batch (the first
// batch a compiled quantized program sees, or an explicit calibration
// pass at import time), then latched: every subsequent forward runs the
// pure int8×int8 lane with fixed requantization constants, so scores are
// deterministic and survive save/load bit-for-bit.

// ActQuant is the calibrated affine quantization of one activation
// tensor, plus the observation and clipping statistics behind it.
type ActQuant struct {
	Label string  // stage label for calibration reports, e.g. "conv0.in"
	Scale float32 // 0 until calibrated
	Zero  int8

	lo, hi float64 // observed range (0-anchored) during calibration

	// clipped/total count int8 saturation events on the live lane — the
	// fraction of activation values that landed outside the calibrated
	// range and were clamped to ±127/−128.
	clipped atomic.Int64
	total   atomic.Int64
}

// observe widens the entry's 0-anchored range with one calibration
// tensor. Callers hold the owning ActSet's mutex.
func (a *ActQuant) observe(xs []float32) {
	for _, v := range xs {
		f := float64(v)
		if f < a.lo {
			a.lo = f
		}
		if f > a.hi {
			a.hi = f
		}
	}
}

// latch derives Scale/Zero from the observed range. An all-zero (or
// never-observed) range latches scale 1, zero 0 — the identity-ish
// mapping QuantizeRows uses for all-zero weight rows.
func (a *ActQuant) latch() {
	span := a.hi - a.lo
	if span <= 0 {
		a.Scale, a.Zero = 1, 0
		return
	}
	scale := span / 255
	zp := -128 - a.lo/scale
	// Round to nearest; the 0-anchored range keeps zp in [-128, 127],
	// but clamp anyway so a pathological range cannot wrap the int8.
	z := int(zp + 0.5)
	if zp < 0 {
		z = int(zp - 0.5)
	}
	if z < -128 {
		z = -128
	} else if z > 127 {
		z = 127
	}
	a.Scale, a.Zero = float32(scale), int8(z)
}

// Calibrated reports whether the entry has latched scales.
func (a *ActQuant) Calibrated() bool { return a.Scale != 0 }

// Range returns the observed calibration range. Zeroes when the entry
// was restored from a container rather than calibrated in-process.
func (a *ActQuant) Range() (lo, hi float64) { return a.lo, a.hi }

// ClippedFraction reports the fraction of live activation values clamped
// at the int8 boundary since calibration, and the total observed count.
func (a *ActQuant) ClippedFraction() (frac float64, total int64) {
	total = a.total.Load()
	if total == 0 {
		return 0, 0
	}
	return float64(a.clipped.Load()) / float64(total), total
}

// noteClipped accumulates saturation statistics from one quantization
// pass.
func (a *ActQuant) noteClipped(clipped, total int) {
	if total == 0 {
		return
	}
	a.total.Add(int64(total))
	if clipped != 0 {
		a.clipped.Add(int64(clipped))
	}
}

// ActSet owns the activation-quantization entries of one compiled model,
// in deterministic compile order — the order the container serializes.
// Entries are registered at compile time (entry), observed and latched
// under mu during the calibration pass, and read lock-free afterwards:
// each compiled segment gates its int8 lane on its own atomic ready
// flag, whose Store (inside the mu-held calibration) happens after the
// scale writes, ordering them visible to every lock-free reader.
type ActSet struct {
	mu      sync.Mutex
	entries []*ActQuant
	cursor  int // next registration slot; reset per compile pass
}

// NewActSet returns an empty set, ready for compile-time registration.
func NewActSet() *ActSet { return &ActSet{} }

// RestoreActSet rebuilds a calibrated set from container scales, in
// serialized (= compile) order.
func RestoreActSet(scales []float32, zeros []int8) *ActSet {
	s := &ActSet{}
	for i := range scales {
		s.entries = append(s.entries, &ActQuant{Scale: scales[i], Zero: zeros[i]})
	}
	return s
}

// resetCursor rewinds the registration cursor; CompileQuantizedActs
// calls it so a recompile against the same set re-binds the same slots
// in the same deterministic order.
func (s *ActSet) resetCursor() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cursor = 0
}

// next returns the registration slot at the cursor, appending a fresh
// entry when the set is being built and re-binding (with the label) when
// it was restored from a container. Compile order is the identity that
// makes restored scales land on the right stages — including the head
// stage AppendDenseQuant registers after the compile pass proper.
func (s *ActSet) next(label string) *ActQuant {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.entries) <= s.cursor {
		s.entries = append(s.entries, &ActQuant{})
	}
	e := s.entries[s.cursor]
	s.cursor++
	e.Label = label
	return e
}

// Calibrated reports whether every registered entry has latched scales —
// the signal Save uses to decide whether the container carries an
// activation-scale section.
func (s *ActSet) Calibrated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return false
	}
	for _, e := range s.entries {
		if e.Scale == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of registered entries.
func (s *ActSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Entries returns the entries in compile order for reporting and
// serialization. The slice is a copy; the pointers are live.
func (s *ActSet) Entries() []*ActQuant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*ActQuant(nil), s.entries...)
}

// Params flattens the calibrated scales and zero points in compile
// order — the container payload.
func (s *ActSet) Params() (scales []float32, zeros []int8) {
	for _, e := range s.Entries() {
		scales = append(scales, e.Scale)
		zeros = append(zeros, e.Zero)
	}
	return
}

// String summarizes calibration state for logs.
func (s *ActSet) String() string {
	return fmt.Sprintf("ActSet{entries: %d, calibrated: %v}", s.Len(), s.Calibrated())
}
