package nn

import (
	"fmt"

	"varade/internal/tensor"
)

// Conv1D is a 1-D convolution over (batch, channels, length) inputs.
// VARADE uses kernel=2 stride=2 pad=0 so the time dimension halves per
// layer (§3.1 of the paper); the implementation is general.
//
// Weight shape is (outC, inC, kernel); output length is
// (L + 2*pad - kernel)/stride + 1.
type Conv1D struct {
	W, B                *Param
	InC, OutC           int
	Kernel, Stride, Pad int
	in                  *tensor.Tensor
}

// NewConv1D returns a Conv1D with He-normal weights and zero bias.
func NewConv1D(inC, outC, kernel, stride, pad int, rng *tensor.RNG) *Conv1D {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid Conv1D geometry k=%d s=%d p=%d", kernel, stride, pad))
	}
	return &Conv1D{
		W:      newParam("conv1d.w", HeNormal(rng, outC, inC, kernel)),
		B:      newParam("conv1d.b", tensor.New(outC)),
		InC:    inC,
		OutC:   outC,
		Kernel: kernel,
		Stride: stride,
		Pad:    pad,
	}
}

// OutLen returns the output length for an input of length l.
func (c *Conv1D) OutLen(l int) int {
	return (l+2*c.Pad-c.Kernel)/c.Stride + 1
}

// Forward computes the convolution.
func (c *Conv1D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 3 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv1D forward shape %v, want (batch,%d,L)", x.Shape(), c.InC))
	}
	c.in = x
	batch, l := x.Dim(0), x.Dim(2)
	lo := c.OutLen(l)
	if lo <= 0 {
		panic(fmt.Sprintf("nn: Conv1D input length %d too short for k=%d s=%d p=%d", l, c.Kernel, c.Stride, c.Pad))
	}
	out := tensor.New(batch, c.OutC, lo)
	xd, wd, bd, od := x.Data(), c.W.Value.Data(), c.B.Value.Data(), out.Data()
	for b := 0; b < batch; b++ {
		xb := xd[b*c.InC*l : (b+1)*c.InC*l]
		ob := od[b*c.OutC*lo : (b+1)*c.OutC*lo]
		for oc := 0; oc < c.OutC; oc++ {
			orow := ob[oc*lo : (oc+1)*lo]
			bias := bd[oc]
			for t := 0; t < lo; t++ {
				orow[t] = bias
			}
			for ic := 0; ic < c.InC; ic++ {
				xrow := xb[ic*l : (ic+1)*l]
				wrow := wd[(oc*c.InC+ic)*c.Kernel : (oc*c.InC+ic+1)*c.Kernel]
				for kk := 0; kk < c.Kernel; kk++ {
					wv := wrow[kk]
					if wv == 0 {
						continue
					}
					// Input position for output t: t*stride - pad + kk.
					base := kk - c.Pad
					for t := 0; t < lo; t++ {
						p := t*c.Stride + base
						if p >= 0 && p < l {
							orow[t] += wv * xrow[p]
						}
					}
				}
			}
		}
	}
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.in
	batch, l := x.Dim(0), x.Dim(2)
	lo := grad.Dim(2)
	dx := tensor.New(batch, c.InC, l)
	xd, wd, gd := x.Data(), c.W.Value.Data(), grad.Data()
	dwd, dbd, dxd := c.W.Grad.Data(), c.B.Grad.Data(), dx.Data()
	for b := 0; b < batch; b++ {
		xb := xd[b*c.InC*l : (b+1)*c.InC*l]
		gb := gd[b*c.OutC*lo : (b+1)*c.OutC*lo]
		dxb := dxd[b*c.InC*l : (b+1)*c.InC*l]
		for oc := 0; oc < c.OutC; oc++ {
			grow := gb[oc*lo : (oc+1)*lo]
			for _, gv := range grow {
				dbd[oc] += gv
			}
			for ic := 0; ic < c.InC; ic++ {
				xrow := xb[ic*l : (ic+1)*l]
				dxrow := dxb[ic*l : (ic+1)*l]
				wrow := wd[(oc*c.InC+ic)*c.Kernel : (oc*c.InC+ic+1)*c.Kernel]
				dwrow := dwd[(oc*c.InC+ic)*c.Kernel : (oc*c.InC+ic+1)*c.Kernel]
				for kk := 0; kk < c.Kernel; kk++ {
					base := kk - c.Pad
					wv := wrow[kk]
					dw := 0.0
					for t, gv := range grow {
						if gv == 0 {
							continue
						}
						p := t*c.Stride + base
						if p >= 0 && p < l {
							dw += gv * xrow[p]
							dxrow[p] += gv * wv
						}
					}
					dwrow[kk] += dw
				}
			}
		}
	}
	return dx
}

// Params returns the kernel weights and bias.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }

// ConvTranspose1D is the transpose (fractionally strided) convolution used
// by the autoencoder decoder to double the time dimension (kernel=2,
// stride=2 inverts the matching Conv1D geometry).
//
// For input length L the output length is (L-1)*stride + kernel - 2*pad.
type ConvTranspose1D struct {
	W, B                *Param // W shape (inC, outC, kernel)
	InC, OutC           int
	Kernel, Stride, Pad int
	in                  *tensor.Tensor
}

// NewConvTranspose1D returns a ConvTranspose1D with He-normal weights.
func NewConvTranspose1D(inC, outC, kernel, stride, pad int, rng *tensor.RNG) *ConvTranspose1D {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid ConvTranspose1D geometry k=%d s=%d p=%d", kernel, stride, pad))
	}
	return &ConvTranspose1D{
		W:      newParam("convt1d.w", HeNormal(rng, inC, outC, kernel)),
		B:      newParam("convt1d.b", tensor.New(outC)),
		InC:    inC,
		OutC:   outC,
		Kernel: kernel,
		Stride: stride,
		Pad:    pad,
	}
}

// OutLen returns the output length for an input of length l.
func (c *ConvTranspose1D) OutLen(l int) int {
	return (l-1)*c.Stride + c.Kernel - 2*c.Pad
}

// Forward scatters each input step into the (stride-spaced) output.
func (c *ConvTranspose1D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 3 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: ConvTranspose1D forward shape %v, want (batch,%d,L)", x.Shape(), c.InC))
	}
	c.in = x
	batch, l := x.Dim(0), x.Dim(2)
	lo := c.OutLen(l)
	if lo <= 0 {
		panic(fmt.Sprintf("nn: ConvTranspose1D input length %d invalid for k=%d s=%d p=%d", l, c.Kernel, c.Stride, c.Pad))
	}
	out := tensor.New(batch, c.OutC, lo)
	xd, wd, bd, od := x.Data(), c.W.Value.Data(), c.B.Value.Data(), out.Data()
	for b := 0; b < batch; b++ {
		xb := xd[b*c.InC*l : (b+1)*c.InC*l]
		ob := od[b*c.OutC*lo : (b+1)*c.OutC*lo]
		for oc := 0; oc < c.OutC; oc++ {
			orow := ob[oc*lo : (oc+1)*lo]
			for t := range orow {
				orow[t] = bd[oc]
			}
			for ic := 0; ic < c.InC; ic++ {
				xrow := xb[ic*l : (ic+1)*l]
				wrow := wd[(ic*c.OutC+oc)*c.Kernel : (ic*c.OutC+oc+1)*c.Kernel]
				for kk := 0; kk < c.Kernel; kk++ {
					wv := wrow[kk]
					if wv == 0 {
						continue
					}
					base := kk - c.Pad
					for t, xv := range xrow {
						p := t*c.Stride + base
						if p >= 0 && p < lo {
							orow[p] += wv * xv
						}
					}
				}
			}
		}
	}
	return out
}

// Backward accumulates gradients; it is the adjoint of Forward (a plain
// convolution gathering from the output gradient).
func (c *ConvTranspose1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.in
	batch, l := x.Dim(0), x.Dim(2)
	lo := grad.Dim(2)
	dx := tensor.New(batch, c.InC, l)
	xd, wd, gd := x.Data(), c.W.Value.Data(), grad.Data()
	dwd, dbd, dxd := c.W.Grad.Data(), c.B.Grad.Data(), dx.Data()
	for b := 0; b < batch; b++ {
		xb := xd[b*c.InC*l : (b+1)*c.InC*l]
		gb := gd[b*c.OutC*lo : (b+1)*c.OutC*lo]
		dxb := dxd[b*c.InC*l : (b+1)*c.InC*l]
		for oc := 0; oc < c.OutC; oc++ {
			grow := gb[oc*lo : (oc+1)*lo]
			for _, gv := range grow {
				dbd[oc] += gv
			}
			for ic := 0; ic < c.InC; ic++ {
				xrow := xb[ic*l : (ic+1)*l]
				dxrow := dxb[ic*l : (ic+1)*l]
				wrow := wd[(ic*c.OutC+oc)*c.Kernel : (ic*c.OutC+oc+1)*c.Kernel]
				dwrow := dwd[(ic*c.OutC+oc)*c.Kernel : (ic*c.OutC+oc+1)*c.Kernel]
				for kk := 0; kk < c.Kernel; kk++ {
					base := kk - c.Pad
					wv := wrow[kk]
					dw := 0.0
					for t := 0; t < l; t++ {
						p := t*c.Stride + base
						if p >= 0 && p < lo {
							gv := grow[p]
							dw += gv * xrow[t]
							dxrow[t] += gv * wv
						}
					}
					dwrow[kk] += dw
				}
			}
		}
	}
	return dx
}

// Params returns the kernel weights and bias.
func (c *ConvTranspose1D) Params() []*Param { return []*Param{c.W, c.B} }
