package nn

import (
	"fmt"

	"varade/internal/tensor"
)

// The 1-D convolutions are implemented as im2col/col2im plus GEMM: the
// receptive fields of ALL batch elements and output positions are unrolled
// into one (batch·positions, taps) column matrix in arena-backed scratch,
// and the whole convolution becomes a single matrix product through the
// optimized tensor.MatMul* kernels, which shard rows across the package
// worker pool. The unrolling, bias/permute and scatter passes are
// themselves batch-parallel. The forward arithmetic lives in the generic
// kernels of fwd.go (conv1dForward/convT1dForward), shared with the
// precision-polymorphic inference programs of infer.go.
//
// Per output element the tap-accumulation order is identical for every
// batch size, so batched forwards reproduce single-window forwards bit for
// bit — the property detect.ScoreSeriesBatched relies on.

// Conv1D is a 1-D convolution over (batch, channels, length) inputs.
// VARADE uses kernel=2 stride=2 pad=0 so the time dimension halves per
// layer (§3.1 of the paper); the implementation is general.
//
// Weight shape is (outC, inC, kernel); output length is
// (L + 2*pad - kernel)/stride + 1.
type Conv1D struct {
	W, B                *Param
	InC, OutC           int
	Kernel, Stride, Pad int
	in                  *tensor.Tensor
}

// NewConv1D returns a Conv1D with He-normal weights and zero bias.
func NewConv1D(inC, outC, kernel, stride, pad int, rng *tensor.RNG) *Conv1D {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid Conv1D geometry k=%d s=%d p=%d", kernel, stride, pad))
	}
	return &Conv1D{
		W:      newParam("conv1d.w", HeNormal(rng, outC, inC, kernel)),
		B:      newParam("conv1d.b", tensor.New(outC)),
		InC:    inC,
		OutC:   outC,
		Kernel: kernel,
		Stride: stride,
		Pad:    pad,
	}
}

// geom returns the layer's shape description for the generic kernels.
func (c *Conv1D) geom() convGeom {
	return convGeom{inC: c.InC, outC: c.OutC, kernel: c.Kernel, stride: c.Stride, pad: c.Pad}
}

// OutLen returns the output length for an input of length l.
func (c *Conv1D) OutLen(l int) int {
	return (l+2*c.Pad-c.Kernel)/c.Stride + 1
}

// Forward computes the convolution as one GEMM:
// im2col(x)·Wᵀ + bias, permuted back to (batch, outC, lo).
func (c *Conv1D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 3 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv1D forward shape %v, want (batch,%d,L)", x.Shape(), c.InC))
	}
	c.in = x
	return conv1dForward(x, c.W.Value, c.B.Value, c.geom())
}

// Backward accumulates weight/bias gradients and returns the input
// gradient: dW += dY₂ᵀ·cols, dcols = dY₂·W, dx = col2im(dcols), where dY₂
// is the output gradient permuted to (batch·lo, outC) rows.
func (c *Conv1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.in
	batch, l := x.Dim(0), x.Dim(2)
	lo := grad.Dim(2)
	dx := tensor.New(batch, c.InC, l)
	wmat := c.W.Value.Reshape(c.OutC, c.InC*c.Kernel)
	dwFlat := c.W.Grad.Reshape(c.OutC, c.InC*c.Kernel)
	ar := tensor.GetArena()
	defer tensor.PutArena(ar)
	// dY permuted to rows: dy2[b·lo+t, oc] = grad[b, oc, t]; bias gradient
	// is its column sum.
	dy2 := ar.Tensor(batch*lo, c.OutC)
	gd, dyd := grad.Data(), dy2.Data()
	tensor.Parallel(batch, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			gb := gd[b*c.OutC*lo : (b+1)*c.OutC*lo]
			for t := 0; t < lo; t++ {
				row := dyd[(b*lo+t)*c.OutC : (b*lo+t+1)*c.OutC]
				for oc := range row {
					row[oc] = gb[oc*lo+t]
				}
			}
		}
	})
	dbd := c.B.Grad.Data()
	for r := 0; r < batch*lo; r++ {
		for oc, v := range dyd[r*c.OutC : (r+1)*c.OutC] {
			dbd[oc] += v
		}
	}
	cols := ar.Tensor(batch*lo, c.InC*c.Kernel)
	im2colRows(cols, x.Data(), batch, c.InC, l, lo, c.Kernel, c.Stride, c.Pad)
	tmpDW := ar.Tensor(c.OutC, c.InC*c.Kernel)
	tensor.MatMulTransAInto(tmpDW, dy2, cols)
	tensor.AddInPlace(dwFlat, tmpDW)
	dcols := cols // reuse: cols is fully consumed by the dW product above
	tensor.MatMulInto(dcols, dy2, wmat)
	col2imRowsAdd(dx.Data(), dcols, batch, c.InC, l, lo, c.Kernel, c.Stride, c.Pad)
	return dx
}

// Params returns the kernel weights and bias.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }

// ConvTranspose1D is the transpose (fractionally strided) convolution used
// by the autoencoder decoder to double the time dimension (kernel=2,
// stride=2 inverts the matching Conv1D geometry).
//
// For input length L the output length is (L-1)*stride + kernel - 2*pad.
type ConvTranspose1D struct {
	W, B                *Param // W shape (inC, outC, kernel)
	InC, OutC           int
	Kernel, Stride, Pad int
	in                  *tensor.Tensor
}

// NewConvTranspose1D returns a ConvTranspose1D with He-normal weights.
func NewConvTranspose1D(inC, outC, kernel, stride, pad int, rng *tensor.RNG) *ConvTranspose1D {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid ConvTranspose1D geometry k=%d s=%d p=%d", kernel, stride, pad))
	}
	return &ConvTranspose1D{
		W:      newParam("convt1d.w", HeNormal(rng, inC, outC, kernel)),
		B:      newParam("convt1d.b", tensor.New(outC)),
		InC:    inC,
		OutC:   outC,
		Kernel: kernel,
		Stride: stride,
		Pad:    pad,
	}
}

// geom returns the layer's shape description for the generic kernels.
func (c *ConvTranspose1D) geom() convGeom {
	return convGeom{inC: c.InC, outC: c.OutC, kernel: c.Kernel, stride: c.Stride, pad: c.Pad}
}

// OutLen returns the output length for an input of length l.
func (c *ConvTranspose1D) OutLen(l int) int {
	return (l-1)*c.Stride + c.Kernel - 2*c.Pad
}

// Forward computes cols = x₂·W (one GEMM over all positions), then
// scatters: out[b, oc, t·stride-pad+kk] += cols[b·l+t, oc·K+kk].
func (c *ConvTranspose1D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 3 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: ConvTranspose1D forward shape %v, want (batch,%d,L)", x.Shape(), c.InC))
	}
	c.in = x
	return convT1dForward(x, c.W.Value, c.B.Value, c.geom())
}

// Backward gathers dcols from the output gradient (the adjoint of the
// forward scatter), then dx₂ = dcols·Wᵀ and dW += x₂ᵀ·dcols.
func (c *ConvTranspose1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.in
	batch, l := x.Dim(0), x.Dim(2)
	lo := grad.Dim(2)
	dx := tensor.New(batch, c.InC, l)
	wmat := c.W.Value.Reshape(c.InC, c.OutC*c.Kernel)
	dwFlat := c.W.Grad.Reshape(c.InC, c.OutC*c.Kernel)
	ar := tensor.GetArena()
	defer tensor.PutArena(ar)
	// Gather dcols[b·l+t, oc·K+kk] = grad[b, oc, t·stride-pad+kk].
	kw := c.OutC * c.Kernel
	dcols := ar.Tensor(batch*l, kw)
	gd, dcd := grad.Data(), dcols.Data()
	tensor.Parallel(batch, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			gb := gd[b*c.OutC*lo : (b+1)*c.OutC*lo]
			for t := 0; t < l; t++ {
				row := dcd[(b*l+t)*kw : (b*l+t+1)*kw]
				base := t*c.Stride - c.Pad
				for oc := 0; oc < c.OutC; oc++ {
					grow := gb[oc*lo : (oc+1)*lo]
					for kk := 0; kk < c.Kernel; kk++ {
						p := base + kk
						if p >= 0 && p < lo {
							row[oc*c.Kernel+kk] = grow[p]
						} else {
							row[oc*c.Kernel+kk] = 0
						}
					}
				}
			}
		}
	})
	dbd := c.B.Grad.Data()
	for b := 0; b < batch; b++ {
		gb := gd[b*c.OutC*lo : (b+1)*c.OutC*lo]
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			for _, gv := range gb[oc*lo : (oc+1)*lo] {
				s += gv
			}
			dbd[oc] += s
		}
	}
	x2 := ar.Tensor(batch*l, c.InC)
	chanToRows(x2, x.Data(), batch, c.InC, l)
	tmpDW := ar.Tensor(c.InC, kw)
	tensor.MatMulTransAInto(tmpDW, x2, dcols)
	tensor.AddInPlace(dwFlat, tmpDW)
	dx2 := x2 // reuse: x2 is fully consumed by the dW product above
	tensor.MatMulTransBInto(dx2, dcols, wmat)
	// Permute (b·l+t, ic) rows back to channel-major dx.
	dxd, d2 := dx.Data(), dx2.Data()
	tensor.Parallel(batch, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			dxb := dxd[b*c.InC*l : (b+1)*c.InC*l]
			for t := 0; t < l; t++ {
				row := d2[(b*l+t)*c.InC : (b*l+t+1)*c.InC]
				for ic, v := range row {
					dxb[ic*l+t] = v
				}
			}
		}
	})
	return dx
}

// Params returns the kernel weights and bias.
func (c *ConvTranspose1D) Params() []*Param { return []*Param{c.W, c.B} }
