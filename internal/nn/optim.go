package nn

import (
	"math"

	"varade/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and clears its gradient.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param]*tensor.Tensor
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param]*tensor.Tensor)}
}

// Step applies v = m·v - lr·g; p += v, then zeroes the gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v := s.vel[p]
		if v == nil {
			v = tensor.New(p.Value.Shape()...)
			s.vel[p] = v
		}
		vd, gd, pd := v.Data(), p.Grad.Data(), p.Value.Data()
		for i := range vd {
			vd[i] = s.Momentum*vd[i] - s.LR*gd[i]
			pd[i] += vd[i]
		}
		p.Grad.Zero()
	}
}

// Adam implements the Adam optimizer with bias correction. The paper trains
// all neural models with Adam at a fixed 1e-5 learning rate (§3.4);
// NewAdamPaper builds that exact configuration.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]*tensor.Tensor
}

// NewAdam returns an Adam optimizer with the given learning rate and the
// customary β₁=0.9, β₂=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Tensor),
		v: make(map[*Param]*tensor.Tensor),
	}
}

// NewAdamPaper returns Adam with the paper's fixed 1e-5 learning rate.
func NewAdamPaper() *Adam { return NewAdam(1e-5) }

// Step applies one Adam update and zeroes the gradients.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, v := a.m[p], a.v[p]
		if m == nil {
			m = tensor.New(p.Value.Shape()...)
			v = tensor.New(p.Value.Shape()...)
			a.m[p], a.v[p] = m, v
		}
		md, vd, gd, pd := m.Data(), v.Data(), p.Grad.Data(), p.Value.Data()
		for i := range md {
			g := gd[i]
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*g
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*g*g
			mh := md[i] / c1
			vh := vd[i] / c2
			pd[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.Grad.Zero()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm, and returns the pre-clip norm. Used to stabilise LSTM
// training.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			tensor.ScaleInPlace(p.Grad, scale)
		}
	}
	return norm
}
