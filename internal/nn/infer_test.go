package nn

import (
	"bytes"
	"math"
	"testing"

	"varade/internal/tensor"
)

// testStack builds a small conv→relu→flatten→dense stack (the VARADE
// topology) with seeded weights.
func testStack(t *testing.T) []Layer {
	t.Helper()
	rng := tensor.NewRNG(7)
	return []Layer{
		NewConv1D(3, 8, 2, 2, 0, rng),
		NewReLU(),
		NewConv1D(8, 8, 2, 2, 0, rng),
		NewReLU(),
		NewFlatten(),
		NewDense(16, 6, rng),
	}
}

func forwardAll(layers []Layer, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range layers {
		x = l.Forward(x)
	}
	return x
}

func TestCompileFloat64BitIdentical(t *testing.T) {
	layers := testStack(t)
	net, err := Compile[float64](layers...)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(tensor.NewRNG(9), 0, 1, 4, 3, 8)
	want := forwardAll(layers, x)
	got := net.Forward(x)
	if !tensor.SameShape(want, got) {
		t.Fatalf("shape %v want %v", got.Shape(), want.Shape())
	}
	for i := range want.Data() {
		if want.Data()[i] != got.Data()[i] {
			t.Fatalf("element %d: compiled %g, layer path %g", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestCompileFloat32CloseToOracle(t *testing.T) {
	layers := testStack(t)
	net, err := Compile[float32](layers...)
	if err != nil {
		t.Fatal(err)
	}
	x64 := tensor.RandNormal(tensor.NewRNG(9), 0, 1, 4, 3, 8)
	want := forwardAll(layers, x64)
	got := net.Forward(tensor.Convert[float32](x64))
	worst := 0.0
	for i, w := range want.Data() {
		if d := math.Abs(w - float64(got.Data()[i])); d > worst {
			worst = d
		}
	}
	if worst == 0 {
		t.Fatal("float32 path suspiciously exact — is it running in float64?")
	}
	if worst > 1e-4 {
		t.Fatalf("float32 forward deviates %g from float64 oracle", worst)
	}
}

func TestCompileQuantizedWithinNoiseFloor(t *testing.T) {
	layers := testStack(t)
	cache := make(QuantCache)
	qnet, err := CompileQuantized(cache, layers...)
	if err != nil {
		t.Fatal(err)
	}
	if len(cache) != 3 { // two conv weights + one dense weight
		t.Fatalf("quantized %d weight tensors, want 3", len(cache))
	}
	x64 := tensor.RandNormal(tensor.NewRNG(9), 0, 1, 4, 3, 8)
	want := forwardAll(layers, x64)
	got := qnet.Forward(tensor.Convert[float32](x64))
	worst := 0.0
	for i, w := range want.Data() {
		if d := math.Abs(w - float64(got.Data()[i])); d > worst {
			worst = d
		}
	}
	// int8 noise: ~0.4% of the per-channel weight range per tap, summed
	// over a handful of taps; loose bound that still catches wiring bugs.
	if worst > 0.3 {
		t.Fatalf("quantized forward deviates %g from float64 oracle", worst)
	}
	// Quantized weights must be far smaller than the float64 originals.
	// NumBytes counts both resident int8 copies (stored values plus the
	// qGEMM panel pack), so the honest bound is ~2 bytes per parameter
	// against float64's 8 — a floor of ⅓ with panel/bias overhead.
	var f64Bytes int
	for _, l := range layers {
		for _, p := range l.Params() {
			f64Bytes += 8 * p.Value.Len()
		}
	}
	if qb := qnet.WeightBytes(); qb*2 > f64Bytes {
		t.Fatalf("quantized weights %dB not ≤ ½ of float64 %dB", qb, f64Bytes)
	}
}

// TestCompileQuantizedFallbackGeometries drives the int8 segment lanes
// the VARADE trunk never touches: overlapping and padded convolutions
// (the materialise+im2col fallback), conv successors off the 16-lane
// SIMD requant grid, and dense→dense mid stages. Wiring bugs in the
// fused layouts produce order-of-magnitude errors, so a loose bound
// against the float64 oracle is enough.
func TestCompileQuantizedFallbackGeometries(t *testing.T) {
	rng := tensor.NewRNG(17)
	type tc struct {
		layers []Layer
		x      *tensor.Tensor
	}
	cases := map[string]tc{
		// First conv overlapped+padded: stage 0 quantizes into a spare
		// tensor and runs the standalone int8 im2col.
		"overlap-first": {
			layers: []Layer{
				NewConv1D(3, 8, 3, 1, 1, rng), NewReLU(),
				NewConv1D(8, 8, 2, 2, 0, rng), NewReLU(),
				NewFlatten(), NewDense(32, 5, rng),
			},
			x: tensor.RandNormal(tensor.NewRNG(19), 0, 1, 4, 3, 8),
		},
		// Second conv overlapped+padded: the first stage's requant takes
		// the materialise-then-im2col default branch.
		"overlap-mid": {
			layers: []Layer{
				NewConv1D(3, 8, 2, 2, 0, rng), NewReLU(),
				NewConv1D(8, 8, 3, 1, 1, rng), NewReLU(),
				NewFlatten(), NewDense(32, 5, rng),
			},
			x: tensor.RandNormal(tensor.NewRNG(19), 0, 1, 4, 3, 8),
		},
		// Dense→dense: the mid-stage row requant (no conv anywhere).
		"dense-mid": {
			layers: []Layer{
				NewDense(24, 16, rng), NewReLU(), NewDense(16, 5, rng),
			},
			x: tensor.RandNormal(tensor.NewRNG(19), 0, 1, 4, 24),
		},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			qnet, err := CompileQuantized(make(QuantCache), c.layers...)
			if err != nil {
				t.Fatal(err)
			}
			want := forwardAll(c.layers, c.x)
			got := qnet.Forward(tensor.Convert[float32](c.x))
			if len(got.Data()) != len(want.Data()) {
				t.Fatalf("shape %v want %v", got.Shape(), want.Shape())
			}
			worst := 0.0
			for i, w := range want.Data() {
				if d := math.Abs(w - float64(got.Data()[i])); d > worst {
					worst = d
				}
			}
			if worst > 0.5 {
				t.Fatalf("quantized forward deviates %g from float64 oracle", worst)
			}
		})
	}
}

func TestQuantRoundTripExact(t *testing.T) {
	w := tensor.RandNormal(tensor.NewRNG(3), 0, 0.5, 8, 6)
	q := QuantizeRows(w, 8, 6)
	halfStep := 0.0
	for _, s := range q.Scale {
		if h := float64(s) / 2; h > halfStep {
			halfStep = h
		}
	}
	if q.MaxAbsError(w) > halfStep*1.01 {
		t.Fatalf("quantization error %g above half-step %g", q.MaxAbsError(w), halfStep)
	}
	// requantizing the dequantized weights with the same geometry must
	// reproduce the identical int8 values.
	q2 := QuantizeRows(q.Dequantize(), 8, 6)
	for i := range q.Q {
		if q.Q[i] != q2.Q[i] {
			t.Fatalf("requantization drifted at %d: %d vs %d", i, q.Q[i], q2.Q[i])
		}
	}
}

func TestParamsF32AndQuantPayloadRoundTrip(t *testing.T) {
	layers := testStack(t)
	var params []*Param
	for _, l := range layers {
		params = append(params, l.Params()...)
	}

	// float32 payload: save, reload into a zeroed copy, values match to f32.
	var buf bytes.Buffer
	if err := SaveParamsF32(&buf, params); err != nil {
		t.Fatal(err)
	}
	fresh := testStack(t)
	var freshParams []*Param
	for _, l := range fresh {
		freshParams = append(freshParams, l.Params()...)
	}
	for _, p := range freshParams {
		p.Value.Zero()
	}
	if err := LoadParamsF32(bytes.NewReader(buf.Bytes()), freshParams); err != nil {
		t.Fatal(err)
	}
	for i, p := range params {
		pd, fd := p.Value.Data(), freshParams[i].Value.Data()
		for j := range pd {
			if float64(float32(pd[j])) != fd[j] {
				t.Fatalf("param %s[%d]: %g vs %g", p.Name, j, pd[j], fd[j])
			}
		}
	}

	// quant payload: stored int8 values come back exactly.
	cache := make(QuantCache)
	if _, err := CompileQuantized(cache, layers...); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := SaveParamsQuant(&buf, params, func(p *Param) *QuantTensor { return cache[p] }, nil); err != nil {
		t.Fatal(err)
	}
	got, gotActs, err := LoadParamsQuant(bytes.NewReader(buf.Bytes()), freshParams)
	if err != nil {
		t.Fatal(err)
	}
	if gotActs != nil {
		t.Fatalf("payload written without activation scales decoded a non-nil ActSet")
	}
	n := 0
	for i, p := range params {
		if q := cache[p]; q != nil {
			g := got[freshParams[i]]
			if g == nil {
				t.Fatalf("param %s lost its quant block", p.Name)
			}
			for j := range q.Q {
				if q.Q[j] != g.Q[j] {
					t.Fatalf("param %s q[%d]: %d vs %d", p.Name, j, q.Q[j], g.Q[j])
				}
			}
			n++
		}
	}
	if n != 3 {
		t.Fatalf("round-tripped %d quant blocks, want 3", n)
	}
}
