package nn

import (
	"fmt"
	"math"
	"time"

	"varade/internal/obs"
	"varade/internal/tensor"
)

// Generic forward kernels. Every layer's inference arithmetic lives here,
// parameterised over the tensor element type: the float64 training layers
// (Dense, Conv1D, ConvTranspose1D, LSTM) delegate their Forward to these
// kernels, and the precision-polymorphic inference programs in infer.go
// instantiate the same code at float32. Because both paths share one
// implementation with one operation ordering, the float64 instantiation is
// bit-identical to the historical concrete layers, and the float32 path
// differs only by element rounding — never by algorithm.

// floatStages holds the pack/gemm compute-stage timers for one float
// precision, resolved once per instantiation via precTimers.
type floatStages struct {
	pack *obs.StageTimer
	gemm *obs.StageTimer
}

var (
	f32Stages = floatStages{pack: obs.ComputeStage("pack", "f32"), gemm: obs.ComputeStage("gemm", "f32")}
	f64Stages = floatStages{pack: obs.ComputeStage("pack", "f64"), gemm: obs.ComputeStage("gemm", "f64")}
)

// precTimers returns the stage timers for T's precision.
func precTimers[T tensor.Float]() floatStages {
	var z T
	if tensor.SizeOf(z) == 4 {
		return f32Stages
	}
	return f64Stages
}

// sigmoidT is the logistic function evaluated in float64 and rounded to T.
func sigmoidT[T tensor.Float](x T) T {
	return T(1 / (1 + math.Exp(-float64(x))))
}

// tanhT is the hyperbolic tangent evaluated in float64 and rounded to T.
func tanhT[T tensor.Float](x T) T { return T(math.Tanh(float64(x))) }

// denseForward computes x·Wᵀ + b for x (batch, in) and w (out, in).
func denseForward[T tensor.Float](x, w, bias *tensor.Dense[T]) *tensor.Dense[T] {
	tG := time.Now()
	out := tensor.MatMulTransB(x, w)
	precTimers[T]().gemm.Observe(time.Since(tG), x.Dim(0))
	batch, of := out.Dim(0), out.Dim(1)
	od, bd := out.Data(), bias.Data()
	addBias := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := od[i*of : (i+1)*of]
			for j := range row {
				row[j] += bd[j]
			}
		}
	}
	if batch*of < 16384 {
		addBias(0, batch)
	} else {
		tensor.Parallel(batch, addBias)
	}
	return out
}

// convGeom is the shape of a 1-D (transpose) convolution.
type convGeom struct {
	inC, outC           int
	kernel, stride, pad int
}

// outLen returns a Conv1D's output length for input length l.
func (g convGeom) outLen(l int) int { return (l+2*g.pad-g.kernel)/g.stride + 1 }

// outLenT returns a ConvTranspose1D's output length for input length l.
func (g convGeom) outLenT(l int) int { return (l-1)*g.stride + g.kernel - 2*g.pad }

// im2colRows unrolls a channel-major batch xd (batch, inC, l) into cols, a
// (batch·lo, inC·kernel) matrix whose row b·lo+t holds the taps of output
// position (b, t): cols[b·lo+t, ic·K+kk] = x[b, ic, t·stride-pad+kk].
// Out-of-range taps are written as zero.
func im2colRows[T tensor.Float](cols *tensor.Dense[T], xd []T, batch, inC, l, lo, kernel, stride, pad int) {
	cd := cols.Data()
	kw := inC * kernel
	tensor.Parallel(batch, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			xb := xd[b*inC*l : (b+1)*inC*l]
			for t := 0; t < lo; t++ {
				row := cd[(b*lo+t)*kw : (b*lo+t+1)*kw]
				base := t*stride - pad
				for ic := 0; ic < inC; ic++ {
					xrow := xb[ic*l : (ic+1)*l]
					for kk := 0; kk < kernel; kk++ {
						p := base + kk
						if p >= 0 && p < l {
							row[ic*kernel+kk] = xrow[p]
						} else {
							row[ic*kernel+kk] = 0
						}
					}
				}
			}
		}
	})
}

// col2imRowsAdd scatters cols (batch·lo, inC·kernel) back into the
// channel-major batch dxd (batch, inC, l) — the adjoint of im2colRows.
func col2imRowsAdd[T tensor.Float](dxd []T, cols *tensor.Dense[T], batch, inC, l, lo, kernel, stride, pad int) {
	cd := cols.Data()
	kw := inC * kernel
	tensor.Parallel(batch, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			dxb := dxd[b*inC*l : (b+1)*inC*l]
			for t := 0; t < lo; t++ {
				row := cd[(b*lo+t)*kw : (b*lo+t+1)*kw]
				base := t*stride - pad
				for ic := 0; ic < inC; ic++ {
					dxrow := dxb[ic*l : (ic+1)*l]
					for kk := 0; kk < kernel; kk++ {
						p := base + kk
						if p >= 0 && p < l {
							dxrow[p] += row[ic*kernel+kk]
						}
					}
				}
			}
		}
	})
}

// chanToRows permutes a channel-major batch (batch, ch, l) into row-major
// position rows (batch·l, ch).
func chanToRows[T tensor.Float](dst *tensor.Dense[T], xd []T, batch, ch, l int) {
	dd := dst.Data()
	tensor.Parallel(batch, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			xb := xd[b*ch*l : (b+1)*ch*l]
			for t := 0; t < l; t++ {
				row := dd[(b*l+t)*ch : (b*l+t+1)*ch]
				for ic := 0; ic < ch; ic++ {
					row[ic] = xb[ic*l+t]
				}
			}
		}
	})
}

// conv1dForward computes a Conv1D over channel-major input x (batch, inC,
// L) as one GEMM: im2col(x)·Wᵀ + bias, permuted back to (batch, outC, lo).
// w is (outC, inC, kernel).
func conv1dForward[T tensor.Float](x, w, bias *tensor.Dense[T], g convGeom) *tensor.Dense[T] {
	batch, l := x.Dim(0), x.Dim(2)
	lo := g.outLen(l)
	if lo <= 0 {
		panic(fmt.Sprintf("nn: Conv1D input length %d too short for k=%d s=%d p=%d", l, g.kernel, g.stride, g.pad))
	}
	out := tensor.NewOf[T](batch, g.outC, lo)
	wmat := w.Reshape(g.outC, g.inC*g.kernel)
	ar := tensor.GetArenaOf[T]()
	defer tensor.PutArena(ar)
	st := precTimers[T]()
	cols := ar.Tensor(batch*lo, g.inC*g.kernel)
	tP := time.Now()
	im2colRows(cols, x.Data(), batch, g.inC, l, lo, g.kernel, g.stride, g.pad)
	tG := time.Now()
	st.pack.Observe(tG.Sub(tP), batch)
	prod := ar.Tensor(batch*lo, g.outC)
	tensor.MatMulTransBInto(prod, cols, wmat)
	st.gemm.Observe(time.Since(tG), batch)
	// Permute (b·lo+t, oc) → (b, oc, t), adding the bias on the way.
	pd, bd, od := prod.Data(), bias.Data(), out.Data()
	tensor.Parallel(batch, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			ob := od[b*g.outC*lo : (b+1)*g.outC*lo]
			for t := 0; t < lo; t++ {
				prow := pd[(b*lo+t)*g.outC : (b*lo+t+1)*g.outC]
				for oc, v := range prow {
					ob[oc*lo+t] = v + bd[oc]
				}
			}
		}
	})
	return out
}

// convT1dForward computes a ConvTranspose1D over channel-major input x
// (batch, inC, L): cols = x₂·W (one GEMM over all positions), then
// scatter-add into the upsampled output. w is (inC, outC, kernel).
func convT1dForward[T tensor.Float](x, w, bias *tensor.Dense[T], g convGeom) *tensor.Dense[T] {
	batch, l := x.Dim(0), x.Dim(2)
	lo := g.outLenT(l)
	if lo <= 0 {
		panic(fmt.Sprintf("nn: ConvTranspose1D input length %d invalid for k=%d s=%d p=%d", l, g.kernel, g.stride, g.pad))
	}
	out := tensor.NewOf[T](batch, g.outC, lo)
	wmat := w.Reshape(g.inC, g.outC*g.kernel)
	ar := tensor.GetArenaOf[T]()
	defer tensor.PutArena(ar)
	x2 := ar.Tensor(batch*l, g.inC)
	chanToRows(x2, x.Data(), batch, g.inC, l)
	cols := ar.Tensor(batch*l, g.outC*g.kernel)
	tensor.MatMulInto(cols, x2, wmat)
	cd, bd, od := cols.Data(), bias.Data(), out.Data()
	kw := g.outC * g.kernel
	tensor.Parallel(batch, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			ob := od[b*g.outC*lo : (b+1)*g.outC*lo]
			for oc := 0; oc < g.outC; oc++ {
				bv := bd[oc]
				orow := ob[oc*lo : (oc+1)*lo]
				for t := range orow {
					orow[t] = bv
				}
			}
			for t := 0; t < l; t++ {
				row := cd[(b*l+t)*kw : (b*l+t+1)*kw]
				base := t*g.stride - g.pad
				for oc := 0; oc < g.outC; oc++ {
					orow := ob[oc*lo : (oc+1)*lo]
					for kk := 0; kk < g.kernel; kk++ {
						p := base + kk
						if p >= 0 && p < lo {
							orow[p] += row[oc*g.kernel+kk]
						}
					}
				}
			}
		}
	})
	return out
}

// lstmState holds the per-step intermediates an LSTM forward produces,
// recorded for backpropagation through time when requested.
type lstmState[T tensor.Float] struct {
	xs              []*tensor.Dense[T] // input at each step (batch, in)
	hs, cs          []*tensor.Dense[T] // states after each step; index 0 is the initial state
	gi, gf, gg, go_ []*tensor.Dense[T]
	tanhC           []*tensor.Dense[T]
	batch, steps    int
}

// lstmForward runs the LSTM recurrence over x (batch, T, in) with weights
// wx (4h, in), wh (4h, hidden) and bias (4h), gate order (input, forget,
// cell candidate, output). When st is non-nil every per-step intermediate
// is recorded there for BPTT; inference passes nil. When returnSeq is true
// the output is (batch, T, hidden), otherwise the final hidden state
// (batch, hidden).
func lstmForward[T tensor.Float](x, wx, wh, bias *tensor.Dense[T], in, hidden int, returnSeq bool, st *lstmState[T]) *tensor.Dense[T] {
	batch, steps := x.Dim(0), x.Dim(1)
	h := hidden
	if st != nil {
		st.batch, st.steps = batch, steps
		st.xs = make([]*tensor.Dense[T], steps)
		st.hs = make([]*tensor.Dense[T], steps+1)
		st.cs = make([]*tensor.Dense[T], steps+1)
		st.gi = make([]*tensor.Dense[T], steps)
		st.gf = make([]*tensor.Dense[T], steps)
		st.gg = make([]*tensor.Dense[T], steps)
		st.go_ = make([]*tensor.Dense[T], steps)
		st.tanhC = make([]*tensor.Dense[T], steps)
	}
	hprev := tensor.NewOf[T](batch, h)
	cprevT := tensor.NewOf[T](batch, h)
	if st != nil {
		st.hs[0], st.cs[0] = hprev, cprevT
	}

	var seq *tensor.Dense[T]
	if returnSeq {
		seq = tensor.NewOf[T](batch, steps, h)
	}
	bd := bias.Data()
	for t := 0; t < steps; t++ {
		// Gather x_t as a (batch, in) matrix.
		xt := tensor.NewOf[T](batch, in)
		xd, sd := xt.Data(), x.Data()
		for b := 0; b < batch; b++ {
			copy(xd[b*in:(b+1)*in], sd[(b*steps+t)*in:(b*steps+t+1)*in])
		}
		if st != nil {
			st.xs[t] = xt
		}

		pre := tensor.MatMulTransB(xt, wx)
		tensor.AddInPlace(pre, tensor.MatMulTransB(hprev, wh))
		pd := pre.Data()
		gi := tensor.NewOf[T](batch, h)
		gf := tensor.NewOf[T](batch, h)
		gg := tensor.NewOf[T](batch, h)
		gor := tensor.NewOf[T](batch, h)
		ct := tensor.NewOf[T](batch, h)
		ht := tensor.NewOf[T](batch, h)
		tc := tensor.NewOf[T](batch, h)
		gid, gfd, ggd, god := gi.Data(), gf.Data(), gg.Data(), gor.Data()
		ctd, htd, tcd := ct.Data(), ht.Data(), tc.Data()
		cprev := cprevT.Data()
		// The gate nonlinearities are independent across batch rows, so
		// shard them over the tensor worker pool when the batch is big
		// enough to amortise the handoff.
		gates := func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				row := pd[b*4*h : (b+1)*4*h]
				for j := 0; j < h; j++ {
					i := sigmoidT(row[j] + bd[j])
					f := sigmoidT(row[h+j] + bd[h+j])
					g := tanhT(row[2*h+j] + bd[2*h+j])
					o := sigmoidT(row[3*h+j] + bd[3*h+j])
					c := f*cprev[b*h+j] + i*g
					th := tanhT(c)
					gid[b*h+j], gfd[b*h+j], ggd[b*h+j], god[b*h+j] = i, f, g, o
					ctd[b*h+j] = c
					tcd[b*h+j] = th
					htd[b*h+j] = o * th
				}
			}
		}
		if batch*h < 4096 {
			gates(0, batch)
		} else {
			tensor.Parallel(batch, gates)
		}
		if st != nil {
			st.gi[t], st.gf[t], st.gg[t], st.go_[t] = gi, gf, gg, gor
			st.cs[t+1], st.hs[t+1], st.tanhC[t] = ct, ht, tc
		}
		hprev, cprevT = ht, ct
		if returnSeq {
			qd := seq.Data()
			for b := 0; b < batch; b++ {
				copy(qd[(b*steps+t)*h:(b*steps+t+1)*h], htd[b*h:(b+1)*h])
			}
		}
	}
	if returnSeq {
		return seq
	}
	return hprev.Clone()
}
