package nn

import (
	"testing"

	"varade/internal/tensor"
)

// sumLoss is a trivial scalar loss (Σ y²/2) whose gradient is y itself —
// convenient for driving Backward with a known output gradient.
func sumLoss(y *tensor.Tensor) (float64, *tensor.Tensor) {
	loss := 0.0
	for _, v := range y.Data() {
		loss += v * v / 2
	}
	return loss, y.Clone()
}

// checkLayerGradients validates a layer's analytic gradients (both
// parameter and input) against central finite differences.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	forwardLoss := func() float64 {
		l, _ := sumLoss(layer.Forward(x))
		return l
	}

	// Analytic pass.
	ZeroGrads(layer.Params())
	y := layer.Forward(x)
	_, gy := sumLoss(y)
	dx := layer.Backward(gy)

	for _, p := range layer.Params() {
		num := NumericGradParam(p, forwardLoss, 1e-5)
		if d := MaxRelDiff(p.Grad, num); d > tol {
			t.Errorf("param %s: max rel grad error %.3e > %.1e", p.Name, d, tol)
		}
	}
	numX := NumericGradInput(x, forwardLoss, 1e-5)
	if d := MaxRelDiff(dx, numX); d > tol {
		t.Errorf("input: max rel grad error %.3e > %.1e", d, tol)
	}
}

func TestDenseGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	layer := NewDense(4, 3, rng)
	x := tensor.RandNormal(rng, 0, 1, 5, 4)
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestConv1DGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	for _, geo := range []struct{ k, s, p int }{{2, 2, 0}, {3, 1, 1}, {1, 1, 0}, {3, 2, 1}} {
		layer := NewConv1D(3, 4, geo.k, geo.s, geo.p, rng)
		x := tensor.RandNormal(rng, 0, 1, 2, 3, 8)
		checkLayerGradients(t, layer, x, 1e-6)
	}
}

func TestConvTranspose1DGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	for _, geo := range []struct{ k, s, p int }{{2, 2, 0}, {3, 1, 1}} {
		layer := NewConvTranspose1D(3, 2, geo.k, geo.s, geo.p, rng)
		x := tensor.RandNormal(rng, 0, 1, 2, 3, 6)
		checkLayerGradients(t, layer, x, 1e-6)
	}
}

func TestActivationGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	for name, layer := range map[string]Layer{
		"tanh":    NewTanh(),
		"sigmoid": NewSigmoid(),
	} {
		x := tensor.RandNormal(rng, 0, 1, 3, 7)
		t.Run(name, func(t *testing.T) { checkLayerGradients(t, layer, x, 1e-6) })
	}
	// ReLU checked away from the kink, where it is differentiable.
	x := tensor.RandNormal(rng, 0, 1, 3, 7)
	for i, v := range x.Data() {
		if v > -0.01 && v < 0.01 {
			x.Data()[i] = 0.5
		}
	}
	checkLayerGradients(t, NewReLU(), x, 1e-6)
}

func TestResBlockGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	t.Run("identity-shortcut", func(t *testing.T) {
		layer := NewResBlock1D(3, 3, rng)
		x := tensor.RandNormal(rng, 0, 1, 2, 3, 8)
		checkLayerGradients(t, layer, x, 1e-5)
	})
	t.Run("projection-shortcut", func(t *testing.T) {
		layer := NewResBlock1D(2, 4, rng)
		x := tensor.RandNormal(rng, 0, 1, 2, 2, 8)
		checkLayerGradients(t, layer, x, 1e-5)
	})
}

func TestLSTMGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	t.Run("last-state", func(t *testing.T) {
		layer := NewLSTM(3, 4, false, rng)
		x := tensor.RandNormal(rng, 0, 1, 2, 5, 3)
		checkLayerGradients(t, layer, x, 1e-5)
	})
	t.Run("sequences", func(t *testing.T) {
		layer := NewLSTM(2, 3, true, rng)
		x := tensor.RandNormal(rng, 0, 1, 2, 4, 2)
		checkLayerGradients(t, layer, x, 1e-5)
	})
}

func TestStackedLSTMGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := NewSequential(
		NewLSTM(2, 3, true, rng),
		NewLSTM(3, 3, false, rng),
		NewDense(3, 2, rng),
	)
	x := tensor.RandNormal(rng, 0, 1, 2, 4, 2)
	checkLayerGradients(t, net, x, 1e-5)
}

func TestSequentialConvNetGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	net := NewSequential(
		NewConv1D(2, 3, 2, 2, 0, rng),
		NewReLU(),
		NewConv1D(3, 4, 2, 2, 0, rng),
		NewFlatten(),
		NewDense(8, 3, rng),
	)
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 8)
	// Nudge values away from ReLU kinks for clean finite differences.
	for i, v := range x.Data() {
		if v > -0.02 && v < 0.02 {
			x.Data()[i] = 0.3
		}
	}
	checkLayerGradients(t, net, x, 1e-5)
}
