package nn

import (
	"testing"

	"varade/internal/tensor"
)

// Conv1D benchmarks isolating the im2col/GEMM kernel at VARADE-like and
// AE-like geometries. Run with:
// go test -bench BenchmarkConv1D -benchmem ./internal/nn
func BenchmarkConv1DForward(b *testing.B) {
	for _, s := range []struct {
		name                   string
		batch, inC, outC       int
		l, kernel, stride, pad int
	}{
		{"varade-edge", 32, 17, 16, 8, 2, 2, 0},
		{"varade-paper", 1, 86, 128, 512, 2, 2, 0},
		{"resblock", 16, 16, 16, 64, 3, 1, 1},
	} {
		b.Run(s.name, func(b *testing.B) {
			rng := tensor.NewRNG(1)
			c := NewConv1D(s.inC, s.outC, s.kernel, s.stride, s.pad, rng)
			x := tensor.RandNormal(rng, 0, 1, s.batch, s.inC, s.l)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Forward(x)
			}
		})
	}
}

func BenchmarkConv1DBackward(b *testing.B) {
	rng := tensor.NewRNG(2)
	c := NewConv1D(16, 32, 2, 2, 0, rng)
	x := tensor.RandNormal(rng, 0, 1, 32, 16, 64)
	out := c.Forward(x)
	grad := tensor.RandNormal(rng, 0, 1, out.Shape()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Backward(grad)
	}
}

func BenchmarkConvTranspose1DForward(b *testing.B) {
	rng := tensor.NewRNG(3)
	c := NewConvTranspose1D(32, 16, 2, 2, 0, rng)
	x := tensor.RandNormal(rng, 0, 1, 16, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x)
	}
}
