package nn

import (
	"math"
	"testing"
	"testing/quick"

	"varade/internal/tensor"
)

// Property: Dense is linear — f(a·x) = a·f(x) − (a−1)·b for scalar a
// (bias makes it affine, so we check f(x+y) − f(0) = (f(x)−f(0)) + (f(y)−f(0))).
func TestDenseAffineProperty(t *testing.T) {
	rng := tensor.NewRNG(21)
	layer := NewDense(3, 2, rng)
	f := func(xv [3]float64, yv [3]float64) bool {
		x := tensor.FromSlice(append([]float64(nil), xv[:]...), 1, 3)
		y := tensor.FromSlice(append([]float64(nil), yv[:]...), 1, 3)
		for _, v := range append(xv[:], yv[:]...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		zero := layer.Forward(tensor.New(1, 3)).Clone()
		fx := tensor.Sub(layer.Forward(x).Clone(), zero)
		fy := tensor.Sub(layer.Forward(y).Clone(), zero)
		fxy := tensor.Sub(layer.Forward(tensor.Add(x, y)).Clone(), zero)
		tol := 1e-9 * (1 + fx.Norm() + fy.Norm())
		return tensor.Equal(fxy, tensor.Add(fx, fy), tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Conv1D is translation-covariant for stride 1: shifting the
// input by one step shifts the valid part of the output by one step.
func TestConv1DTranslationCovariance(t *testing.T) {
	rng := tensor.NewRNG(22)
	layer := NewConv1D(1, 2, 3, 1, 0, rng)
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed%1000 + 1)
		l := 12
		x := tensor.RandNormal(r, 0, 1, 1, 1, l)
		shifted := tensor.New(1, 1, l)
		copy(shifted.Data()[1:], x.Data()[:l-1])
		y := layer.Forward(x).Clone()
		ys := layer.Forward(shifted).Clone()
		// ys[t] must equal y[t-1] for t ≥ 1 (first position sees the new
		// sample and is excluded).
		lo := y.Dim(2)
		for c := 0; c < 2; c++ {
			for ts := 1; ts < lo; ts++ {
				if math.Abs(ys.At3(0, c, ts)-y.At3(0, c, ts-1)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReLU output is idempotent (ReLU(ReLU(x)) == ReLU(x)) and
// non-negative.
func TestReLUIdempotent(t *testing.T) {
	f := func(vals [16]float64) bool {
		r1, r2 := NewReLU(), NewReLU()
		x := tensor.FromSlice(append([]float64(nil), vals[:]...), 2, 8)
		y := r1.Forward(x)
		if y.Min() < 0 {
			return false
		}
		return tensor.Equal(r2.Forward(y), y, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the Gaussian NLL at (μ=y, σ²=1) is the global minimum over μ
// for fixed unit variance.
func TestNLLMinimumProperty(t *testing.T) {
	f := func(yv float64, dv float64) bool {
		if math.IsNaN(yv) || math.IsInf(yv, 0) || math.Abs(yv) > 1e3 {
			return true
		}
		if math.IsNaN(dv) || math.Abs(dv) > 1e3 {
			return true
		}
		lv := tensor.FromSlice([]float64{0}, 1, 1)
		y := tensor.FromSlice([]float64{yv}, 1, 1)
		at := func(m float64) float64 {
			mu := tensor.FromSlice([]float64{m}, 1, 1)
			l, _, _ := GaussianNLL(mu, lv, y)
			return l
		}
		return at(yv) <= at(yv+dv)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: KL(N(μ,σ²) ‖ N(0,1)) is non-negative and zero only at the
// prior.
func TestKLNonNegativityProperty(t *testing.T) {
	f := func(muV, lvV float64) bool {
		if math.IsNaN(muV) || math.IsInf(muV, 0) || math.Abs(muV) > 20 {
			return true
		}
		if math.IsNaN(lvV) || math.Abs(lvV) > 10 {
			return true
		}
		mu := tensor.FromSlice([]float64{muV}, 1, 1)
		lv := tensor.FromSlice([]float64{lvV}, 1, 1)
		d, _, _ := GaussianKL(mu, lv)
		if d < -1e-12 {
			return false
		}
		if muV == 0 && lvV == 0 {
			return d == 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: optimizer steps with zero gradients leave parameters unchanged.
func TestZeroGradientNoOp(t *testing.T) {
	for name, opt := range map[string]Optimizer{
		"sgd":  NewSGD(0.1, 0.9),
		"adam": NewAdam(0.1),
	} {
		rng := tensor.NewRNG(23)
		layer := NewDense(4, 4, rng)
		before := layer.W.Value.Clone()
		opt.Step(layer.Params())
		if !tensor.Equal(layer.W.Value, before, 0) {
			t.Errorf("%s: zero gradient changed the weights", name)
		}
	}
}
