// Package nn implements the neural-network substrate used by VARADE and the
// neural baselines: layers with hand-rolled analytic backward passes,
// losses, initialisers, optimizers and model serialization.
//
// Every Layer caches whatever it needs during Forward and consumes it in the
// matching Backward call, so the usage pattern is strictly
// Forward → Backward → optimizer Step. Layers are not safe for concurrent
// use; clone models per goroutine if needed.
package nn

import (
	"fmt"

	"varade/internal/tensor"
)

// Param is a trainable tensor together with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

func newParam(name string, v *tensor.Tensor) *Param {
	return &Param{Name: name, Value: v, Grad: tensor.New(v.Shape()...)}
}

// Layer is a differentiable unit. Forward computes outputs from inputs and
// caches intermediate state; Backward receives dLoss/dOutput and returns
// dLoss/dInput, accumulating parameter gradients into Params().
type Layer interface {
	// Forward computes the layer output for x.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward propagates the output gradient and returns the input gradient.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers, feeding each layer's output to the next.
type Sequential struct {
	Layers []Layer
}

// NewSequential returns a container running the given layers in order.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Add appends a layer.
func (s *Sequential) Add(l Layer) { s.Layers = append(s.Layers, l) }

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears the gradient accumulators of all given parameters.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar parameters.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.Value.Len()
	}
	return n
}

// Flatten reshapes (batch, d1, d2, …) inputs to (batch, d1*d2*…).
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all dimensions after the batch dimension.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() < 2 {
		panic(fmt.Sprintf("nn: Flatten needs at least 2 dims, got %v", x.Shape()))
	}
	f.inShape = append(f.inShape[:0], x.Shape()...)
	return x.Reshape(x.Dim(0), -1)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params returns nil: Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }
