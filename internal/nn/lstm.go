package nn

import (
	"fmt"

	"varade/internal/tensor"
)

// LSTM is a single recurrent layer processing (batch, T, in) sequences with
// full backpropagation through time. Gate pre-activations are computed for
// the whole batch per time step as pre = x_t·Wxᵀ + h_{t-1}·Whᵀ + b with the
// gate order (input, forget, cell candidate, output). The forward
// recurrence lives in the generic lstmForward kernel of fwd.go, shared with
// the precision-polymorphic inference programs.
//
// When ReturnSequences is true the output is (batch, T, hidden); otherwise
// it is the final hidden state (batch, hidden). The AR-LSTM baseline stacks
// five of these with ReturnSequences=true on all but the last (§3.3).
type LSTM struct {
	Wx, Wh, B       *Param
	In, Hidden      int
	ReturnSequences bool

	// st caches the per-forward intermediates for BPTT.
	st lstmState[float64]
}

// NewLSTM returns an LSTM with Xavier-uniform weights and forget-gate bias
// initialised to 1 (the standard trick to ease gradient flow early in
// training).
func NewLSTM(in, hidden int, returnSequences bool, rng *tensor.RNG) *LSTM {
	b := tensor.New(4 * hidden)
	for i := hidden; i < 2*hidden; i++ {
		b.Data()[i] = 1
	}
	return &LSTM{
		Wx:              newParam("lstm.wx", XavierUniform(rng, 4*hidden, in)),
		Wh:              newParam("lstm.wh", XavierUniform(rng, 4*hidden, hidden)),
		B:               newParam("lstm.b", b),
		In:              in,
		Hidden:          hidden,
		ReturnSequences: returnSequences,
	}
}

// Forward runs the recurrence over all time steps, caching every
// intermediate for the backward pass.
func (l *LSTM) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 3 || x.Dim(2) != l.In {
		panic(fmt.Sprintf("nn: LSTM forward shape %v, want (batch,T,%d)", x.Shape(), l.In))
	}
	return lstmForward(x, l.Wx.Value, l.Wh.Value, l.B.Value, l.In, l.Hidden, l.ReturnSequences, &l.st)
}

// Backward backpropagates through time, accumulating weight gradients, and
// returns the gradient with respect to the input sequence (batch, T, in).
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	batch, steps, h := l.st.batch, l.st.steps, l.Hidden
	dx := tensor.New(batch, steps, l.In)
	dh := tensor.New(batch, h)
	dc := tensor.New(batch, h)
	dhd, dcd := dh.Data(), dc.Data()
	gd := grad.Data()
	for t := steps - 1; t >= 0; t-- {
		// Inject the output gradient for this step.
		if l.ReturnSequences {
			for b := 0; b < batch; b++ {
				row := gd[(b*steps+t)*h : (b*steps+t+1)*h]
				for j, v := range row {
					dhd[b*h+j] += v
				}
			}
		} else if t == steps-1 {
			if grad.Dims() != 2 {
				panic(fmt.Sprintf("nn: LSTM backward grad shape %v, want (batch,hidden)", grad.Shape()))
			}
			copy(dhd, gd)
		}

		gi, gf, gg, gor := l.st.gi[t].Data(), l.st.gf[t].Data(), l.st.gg[t].Data(), l.st.go_[t].Data()
		tc := l.st.tanhC[t].Data()
		cprev := l.st.cs[t].Data()
		dpre := tensor.New(batch, 4*h)
		dpd := dpre.Data()
		bg := l.B.Grad.Data()
		// Per-row gate derivatives are independent; the bias gradient (a
		// reduction across rows) is summed afterwards so the parallel body
		// only writes disjoint dpre/dc rows.
		dgates := func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				for j := 0; j < h; j++ {
					k := b*h + j
					i, f, g, o := gi[k], gf[k], gg[k], gor[k]
					th := tc[k]
					dht := dhd[k]
					dct := dcd[k] + dht*o*(1-th*th)
					di := dct * g * i * (1 - i)
					df := dct * cprev[k] * f * (1 - f)
					dg := dct * i * (1 - g*g)
					do := dht * th * o * (1 - o)
					row := dpd[b*4*h : (b+1)*4*h]
					row[j], row[h+j], row[2*h+j], row[3*h+j] = di, df, dg, do
					dcd[k] = dct * f // carries to step t-1
				}
			}
		}
		if batch*h < 4096 {
			dgates(0, batch)
		} else {
			tensor.Parallel(batch, dgates)
		}
		for b := 0; b < batch; b++ {
			row := dpd[b*4*h : (b+1)*4*h]
			for k, v := range row {
				bg[k] += v
			}
		}
		tensor.AddInPlace(l.Wx.Grad, tensor.MatMulTransA(dpre, l.st.xs[t]))
		tensor.AddInPlace(l.Wh.Grad, tensor.MatMulTransA(dpre, l.st.hs[t]))
		dxt := tensor.MatMul(dpre, l.Wx.Value)
		dxd := dx.Data()
		xtd := dxt.Data()
		for b := 0; b < batch; b++ {
			copy(dxd[(b*steps+t)*l.In:(b*steps+t+1)*l.In], xtd[b*l.In:(b+1)*l.In])
		}
		dhPrev := tensor.MatMul(dpre, l.Wh.Value)
		copy(dhd, dhPrev.Data())
	}
	return dx
}

// Params returns the input weights, recurrent weights and bias.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
