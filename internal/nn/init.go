package nn

import (
	"math"

	"varade/internal/tensor"
)

// fanInOut derives fan-in and fan-out from a weight shape following the
// convention used by this package: Dense (out, in), Conv1D (out, in, k),
// ConvTranspose1D (in, out, k) — for initialisation the distinction between
// the two conv layouts is immaterial, both use dims[1]*k and dims[0]*k.
func fanInOut(shape []int) (fanIn, fanOut int) {
	switch len(shape) {
	case 1:
		return shape[0], shape[0]
	case 2:
		return shape[1], shape[0]
	case 3:
		return shape[1] * shape[2], shape[0] * shape[2]
	default:
		n := 1
		for _, d := range shape {
			n *= d
		}
		return n, n
	}
}

// HeNormal returns a weight tensor initialised from N(0, 2/fanIn), the
// standard initialisation for ReLU networks.
func HeNormal(rng *tensor.RNG, shape ...int) *tensor.Tensor {
	fanIn, _ := fanInOut(shape)
	std := math.Sqrt(2 / float64(fanIn))
	return tensor.RandNormal(rng, 0, std, shape...)
}

// XavierUniform returns a weight tensor initialised uniformly in
// ±sqrt(6/(fanIn+fanOut)), suited to tanh/sigmoid networks (the LSTM gates).
func XavierUniform(rng *tensor.RNG, shape ...int) *tensor.Tensor {
	fanIn, fanOut := fanInOut(shape)
	lim := math.Sqrt(6 / float64(fanIn+fanOut))
	return tensor.RandUniform(rng, -lim, lim, shape...)
}
