package nn

import (
	"varade/internal/tensor"
)

// ResBlock1D is a pre-activation residual block for 1-D feature maps,
// following He et al. [7] as used by the autoencoder baseline (§3.3):
//
//	y = conv2(ReLU(conv1(ReLU(x)))) + shortcut(x)
//
// Both convolutions are kernel-3 stride-1 same-padding; the shortcut is the
// identity when channel counts match and a 1×1 convolution otherwise.
type ResBlock1D struct {
	conv1, conv2 *Conv1D
	relu1, relu2 *ReLU
	proj         *Conv1D // nil for identity shortcut
	in           *tensor.Tensor
}

// NewResBlock1D returns a residual block mapping inC channels to outC.
func NewResBlock1D(inC, outC int, rng *tensor.RNG) *ResBlock1D {
	b := &ResBlock1D{
		conv1: NewConv1D(inC, outC, 3, 1, 1, rng),
		conv2: NewConv1D(outC, outC, 3, 1, 1, rng),
		relu1: NewReLU(),
		relu2: NewReLU(),
	}
	if inC != outC {
		b.proj = NewConv1D(inC, outC, 1, 1, 0, rng)
	}
	return b
}

// Forward computes the residual mapping plus shortcut.
func (b *ResBlock1D) Forward(x *tensor.Tensor) *tensor.Tensor {
	b.in = x
	y := b.relu1.Forward(x)
	y = b.conv1.Forward(y)
	y = b.relu2.Forward(y)
	y = b.conv2.Forward(y)
	if b.proj != nil {
		return tensor.Add(y, b.proj.Forward(x))
	}
	return tensor.Add(y, x)
}

// Backward propagates through both the residual branch and the shortcut.
func (b *ResBlock1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dy := b.conv2.Backward(grad)
	dy = b.relu2.Backward(dy)
	dy = b.conv1.Backward(dy)
	dy = b.relu1.Backward(dy)
	if b.proj != nil {
		return tensor.Add(dy, b.proj.Backward(grad))
	}
	return tensor.Add(dy, grad)
}

// Params returns the parameters of both convolutions and any projection.
func (b *ResBlock1D) Params() []*Param {
	ps := append(b.conv1.Params(), b.conv2.Params()...)
	if b.proj != nil {
		ps = append(ps, b.proj.Params()...)
	}
	return ps
}
